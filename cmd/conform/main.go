// Command conform drives the trace-replay conformance suite against the
// committed corpus under testdata/traces/.
//
// The default mode is the corpus gate: verify the sha256 manifest,
// decode every stream, replay each one standalone against the recorded
// message schedule (cycle-exact arrivals for every protocol, cycle-exact
// dispatch and occupancy for DirNNB), and run the per-block tag-machine
// checker over the traced transitions.
//
// -record re-runs every corpus pair on the full machine and compares
// the fresh recording byte-for-byte against the committed stream — the
// corpus-refresh policy: a simulator change that legitimately moves a
// message regenerates the corpus with -record -update and the diff
// shows exactly which messages moved. -diff runs the differential
// protocol matrix (same program under every protocol, identical
// application-visible memory semantics) instead of touching the corpus.
//
// Usage:
//
//	go run ./cmd/conform                      # manifest + decode + replay + tag check
//	go run ./cmd/conform -record              # re-record and compare to committed corpus
//	go run ./cmd/conform -record -update      # regenerate corpus and manifest
//	go run ./cmd/conform -diff -shards 2      # differential matrix, two shards
//	make conform
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tempest-sim/tempest/internal/conform"
)

func main() {
	dir := flag.String("dir", "testdata/traces", "corpus directory")
	record := flag.Bool("record", false, "re-record every corpus pair and compare to the committed streams")
	update := flag.Bool("update", false, "with -record: rewrite the corpus and manifest from the fresh recordings")
	diff := flag.Bool("diff", false, "run the differential protocol matrix instead of the corpus checks")
	shards := flag.Int("shards", 1, "scheduler shard count for -record and -diff runs (results are identical at every value)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "conform:", err)
		os.Exit(1)
	}
	if *update && !*record {
		fail(fmt.Errorf("-update only applies with -record"))
	}
	if *shards < 1 {
		fail(fmt.Errorf("-shards %d: shard count must be >= 1", *shards))
	}

	switch {
	case *diff:
		for _, app := range conform.DiffApps() {
			if err := conform.RunDifferential(app, *shards, nil); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "conform: differential %s ok (%d shards)\n", app, *shards)
		}

	case *record:
		for _, p := range conform.CorpusPairs() {
			got, err := conform.Record(p, conform.RecordOptions{Shards: *shards})
			if err != nil {
				fail(err)
			}
			path := conform.TracePath(*dir, p)
			if *update {
				if err := conform.SaveStream(path, got); err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "conform: wrote %s (%d events)\n", path, len(got.Events))
				continue
			}
			want, err := conform.LoadStream(path)
			if err != nil {
				fail(fmt.Errorf("%w (regenerate with -record -update)", err))
			}
			if err := conform.CompareStreams(want, got); err != nil {
				fail(fmt.Errorf("%s: %w\nSimulated message schedule changed. If intentional, regenerate with -record -update.", path, err))
			}
			fmt.Fprintf(os.Stderr, "conform: re-record matches %s\n", path)
		}
		if *update {
			if err := conform.WriteManifest(*dir); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "conform: wrote %s/%s\n", *dir, conform.ManifestName)
		}

	default:
		if err := conform.CheckManifest(*dir); err != nil {
			fail(err)
		}
		for _, p := range conform.CorpusPairs() {
			s, err := conform.LoadStream(conform.TracePath(*dir, p))
			if err != nil {
				fail(err)
			}
			if err := conform.Replay(s); err != nil {
				fail(err)
			}
			if err := conform.CheckTagMachine(s); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "conform: %s ok (%d events)\n", p.Name(), len(s.Events))
		}
	}
}
