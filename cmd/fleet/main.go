// Command fleet runs the distributed-sweep roles of the lease-based
// fleet protocol (tempest-fleet/1).
//
// A coordinator owns the sweep state: it accepts workers and remote
// clients, leases sweep points, heartbeats the leases, reassigns work
// when a worker dies or stalls, verifies every result against the
// point's canonical cache key, and serves warm-cache hits without
// leasing at all. A worker connects to a coordinator and simulates
// whatever it is leased.
//
// Usage:
//
//	fleet coordinator -addr /tmp/fleet.sock -cache-dir .cache
//	fleet worker -addr /tmp/fleet.sock -j 4
//	fig3 -fleet /tmp/fleet.sock            # any sweep binary as client
//	bench -workers-addr :7781 ...          # or embed the coordinator
//
// Both roles exit 0 on an orderly shutdown (SIGINT for the
// coordinator, coordinator close for the worker) and non-zero on
// protocol or verification failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/tempest-sim/tempest/internal/fleet"
	"github.com/tempest-sim/tempest/internal/harness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "coordinator":
		coordinator(os.Args[2:])
	case "worker":
		worker(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fleet: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  fleet coordinator -addr <addr> [-cache-dir d] [-lease-ttl d] ...
  fleet worker -addr <addr> [-j n] [-cache-dir d] ...

An <addr> containing '/' is a unix socket path; anything else is TCP.
`)
	os.Exit(2)
}

func fail(role string, err error) {
	fmt.Fprintf(os.Stderr, "fleet %s: %v\n", role, err)
	os.Exit(2)
}

func coordinator(args []string) {
	fs := flag.NewFlagSet("fleet coordinator", flag.ExitOnError)
	addr := fs.String("addr", "", "address to listen on (required)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (\"\" = in-process memory cache only)")
	noCache := fs.Bool("no-cache", false, "disable the result cache entirely")
	cacheVerify := fs.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "lease time-to-live without a heartbeat before a point is re-queued")
	maxAttempts := fs.Int("max-attempts", 5, "lease budget per point before the sweep fails")
	quiet := fs.Bool("quiet", false, "suppress lifecycle logging")
	fs.Parse(args)
	if *addr == "" {
		fail("coordinator", fmt.Errorf("-addr is required"))
	}
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail("coordinator", err)
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	co := fleet.NewCoordinator(fleet.CoordinatorOptions{
		Cache: cp, LeaseTTL: *leaseTTL, MaxAttempts: *maxAttempts, Logf: logf,
	})
	ln, err := fleet.Listen(*addr)
	if err != nil {
		fail("coordinator", err)
	}
	fmt.Fprintf(os.Stderr, "fleet coordinator: listening on %s (lease TTL %v)\n", *addr, *leaseTTL)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()
	err = co.Serve(ln)
	co.Close()
	s := co.Stats()
	fmt.Fprintf(os.Stderr,
		"fleet coordinator: %d workers, %d leases (%d reassigned, %d expired, %d rejected, %d duplicate), %d cache hits, %d completed, %d failed\n",
		s.Workers, s.Leases, s.Reassigned, s.Expired, s.Rejected, s.Duplicates, s.CacheHits, s.Completed, s.Failed)
	if err != nil {
		fail("coordinator", err)
	}
}

func worker(args []string) {
	fs := flag.NewFlagSet("fleet worker", flag.ExitOnError)
	addr := fs.String("addr", "", "coordinator address to connect to (required)")
	jobs := fs.Int("j", 1, "concurrent leases to run (0 = all cores)")
	cacheDir := fs.String("cache-dir", "", "persistent result-cache directory (share the coordinator's to compose warm caches)")
	noCache := fs.Bool("no-cache", false, "disable the result cache entirely")
	cacheVerify := fs.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]")
	connectTimeout := fs.Duration("connect-timeout", 30*time.Second, "how long to retry the initial dial (workers often start before the coordinator)")
	dieAfter := fs.Int("die-after-leases", 0, "fault-injection hook: exit(1) immediately after receiving the Nth lease (0 = never)")
	quiet := fs.Bool("quiet", false, "suppress lifecycle logging")
	fs.Parse(args)
	if *addr == "" {
		fail("worker", fmt.Errorf("-addr is required"))
	}
	if *jobs <= 0 {
		*jobs = runtime.NumCPU()
	}
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail("worker", err)
	}
	conn, err := fleet.DialRetry(*addr, *connectTimeout)
	if err != nil {
		fail("worker", err)
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	opts := fleet.WorkerOptions{Cache: cp, Slots: *jobs, Logf: logf}
	if *dieAfter > 0 {
		n := *dieAfter
		opts.OnLease = func(count int) {
			if count >= n {
				fmt.Fprintf(os.Stderr, "fleet worker: dying after lease %d (injected)\n", count)
				os.Exit(1)
			}
		}
	}
	if err := fleet.RunWorker(context.Background(), conn, opts); err != nil {
		fail("worker", err)
	}
}
