// Command ablations runs the design-choice sweeps DESIGN.md catalogues:
// coherence-block size, data placement, stache page budget, network
// latency, first-touch placement, migratory sharing, the EM3D protocol
// chain (invalidate vs. check-in vs. update), the software-Tempest
// comparison, and the contention sweep (finite link bandwidth and agent
// occupancy, DESIGN.md §9). Each sweep's points fan out across -j worker
// goroutines (0 = all cores); row order and values are identical at
// every count.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tempest-sim/tempest/internal/fleet"
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/sim"
)

func main() {
	scaleFlag := flag.String("scale", "reduced", "workload scale: reduced or paper")
	only := flag.String("only", "", "run a single ablation: blocksize, placement, budget, netlatency, firsttouch, migratory, em3d, software, contention")
	jobs := flag.Int("j", 0, "parallel simulations per sweep (0 = all cores)")
	shards := flag.Int("shards", 1, "scheduler goroutines per simulation (1..nodes; results identical at every value)")
	linkBW := flag.Int("link-bw", 0, "link bandwidth in bytes/cycle for every sweep (0 = infinite, the paper's model; the contention sweep uses its own grid)")
	occupancy := flag.Int64("occupancy", 0, "protocol-agent occupancy in cycles per message for every sweep (0 = unbounded concurrency; the contention sweep uses its own grid)")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (\"\" = in-process memory cache only)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (conflicts with -cache-dir and -cache-verify)")
	cacheVerify := flag.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]; a mismatch fails the sweep")
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(2)
	}
	sc, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fail(err)
	}
	if *jobs < 0 {
		fail(fmt.Errorf("-j %d: worker count must be >= 0", *jobs))
	}
	if nodes := harness.MachineConfig(sc, 0).Nodes; *shards < 1 || *shards > nodes {
		fail(fmt.Errorf("-shards %d: shard count must be in [1, %d] (%s scale has %d nodes)", *shards, nodes, sc, nodes))
	}
	if *linkBW < 0 {
		fail(fmt.Errorf("-link-bw %d: link bandwidth must be >= 0 bytes/cycle", *linkBW))
	}
	if *occupancy < 0 {
		fail(fmt.Errorf("-occupancy %d: agent occupancy must be >= 0 cycles", *occupancy))
	}
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	exec, fleetClose, err := fleetFlags.Executor(cp, logf)
	if err != nil {
		fail(err)
	}
	defer fleetClose()
	j := *jobs
	sp := harness.SimParams{
		Shards:            *shards,
		LinkBytesPerCycle: *linkBW,
		OccupancyCycles:   sim.Time(*occupancy),
		Cache:             cp,
		Exec:              exec,
		PointTimeout:      *fleetFlags.PointTimeout,
	}

	type ab struct {
		key   string
		title string
		run   func() ([]harness.AblationRow, error)
	}
	all := []ab{
		{"blocksize", "Coherence-block size (Typhoon/Stache, EM3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationBlockSize(sc, sp, j) }},
		{"placement", "Data placement (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationPlacement(sc, sp, j) }},
		{"budget", "Stache page budget (EM3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationStacheBudget(sc, sp, j) }},
		{"netlatency", "Network latency sensitivity (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationNetLatency(sc, sp, j) }},
		{"firsttouch", "First-touch page placement (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationFirstTouch(sc, sp, j) }},
		{"migratory", "Migratory-sharing extension (MP3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationMigratory(sc, sp, j) }},
		{"em3d", "EM3D protocol chain at 30% remote edges (paper section 4)",
			func() ([]harness.AblationRow, error) { return harness.AblationEM3DProtocols(sc, 30, sp, j) }},
		{"software", "Software Tempest (Blizzard) vs. Typhoon hardware",
			func() ([]harness.AblationRow, error) { return harness.AblationSoftwareTempest(sc, sp, j) }},
	}

	// Validate -only before running anything, not after the full sweep.
	if *only != "" {
		known := *only == "contention"
		for _, a := range all {
			if a.key == *only {
				known = true
				break
			}
		}
		if !known {
			fail(fmt.Errorf("unknown ablation %q", *only))
		}
	}
	for _, a := range all {
		if *only != "" && a.key != *only {
			continue
		}
		rows, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations: %s: %v\n", a.key, err)
			os.Exit(1)
		}
		if err := harness.RenderAblation(os.Stdout, a.title, rows); err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	// The contention sweep renders its own richer table (ratios and
	// queueing counters per cell) and sweeps its own config grid, so it
	// ignores -link-bw/-occupancy.
	if *only == "" || *only == "contention" {
		cells, err := harness.ContentionSweep(harness.ContentionOptions{
			Scale: sc, Workers: j, Shards: *shards, Cache: cp,
			Exec: exec, PointTimeout: *fleetFlags.PointTimeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablations: contention:", err)
			os.Exit(1)
		}
		if err := harness.RenderContention(os.Stdout, cells); err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if cp.Cache != nil && *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "ablations: cache %s: %s\n", *cacheDir, cp.Cache.Stats())
	}
}
