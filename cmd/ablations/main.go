// Command ablations runs the design-choice sweeps DESIGN.md catalogues:
// coherence-block size, data placement, stache page budget, network
// latency, first-touch placement, migratory sharing, the EM3D protocol
// chain (invalidate vs. check-in vs. update), and the software-Tempest
// comparison. Each sweep's points fan out across -j worker goroutines
// (0 = all cores); row order and values are identical at every count.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tempest-sim/tempest/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "reduced", "workload scale: reduced or paper")
	only := flag.String("only", "", "run a single ablation: blocksize, placement, budget, netlatency, firsttouch, migratory, em3d, software")
	jobs := flag.Int("j", 0, "parallel simulations per sweep (0 = all cores)")
	shards := flag.Int("shards", 1, "scheduler goroutines per simulation (1..nodes; results identical at every value)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(2)
	}
	sc, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fail(err)
	}
	if *jobs < 0 {
		fail(fmt.Errorf("-j %d: worker count must be >= 0", *jobs))
	}
	if nodes := harness.MachineConfig(sc, 0).Nodes; *shards < 1 || *shards > nodes {
		fail(fmt.Errorf("-shards %d: shard count must be in [1, %d] (%s scale has %d nodes)", *shards, nodes, sc, nodes))
	}
	j, sh := *jobs, *shards

	type ab struct {
		key   string
		title string
		run   func() ([]harness.AblationRow, error)
	}
	all := []ab{
		{"blocksize", "Coherence-block size (Typhoon/Stache, EM3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationBlockSize(sc, sh, j) }},
		{"placement", "Data placement (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationPlacement(sc, sh, j) }},
		{"budget", "Stache page budget (EM3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationStacheBudget(sc, sh, j) }},
		{"netlatency", "Network latency sensitivity (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationNetLatency(sc, sh, j) }},
		{"firsttouch", "First-touch page placement (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationFirstTouch(sc, sh, j) }},
		{"migratory", "Migratory-sharing extension (MP3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationMigratory(sc, sh, j) }},
		{"em3d", "EM3D protocol chain at 30% remote edges (paper section 4)",
			func() ([]harness.AblationRow, error) { return harness.AblationEM3DProtocols(sc, 30, sh, j) }},
		{"software", "Software Tempest (Blizzard) vs. Typhoon hardware",
			func() ([]harness.AblationRow, error) { return harness.AblationSoftwareTempest(sc, sh, j) }},
	}

	// Validate -only before running anything, not after the full sweep.
	if *only != "" {
		known := false
		for _, a := range all {
			if a.key == *only {
				known = true
				break
			}
		}
		if !known {
			fail(fmt.Errorf("unknown ablation %q", *only))
		}
	}
	for _, a := range all {
		if *only != "" && a.key != *only {
			continue
		}
		rows, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations: %s: %v\n", a.key, err)
			os.Exit(1)
		}
		if err := harness.RenderAblation(os.Stdout, a.title, rows); err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
