// Command ablations runs the design-choice sweeps DESIGN.md catalogues:
// coherence-block size, data placement, stache page budget, network
// latency, migratory sharing, the EM3D protocol chain (invalidate vs.
// check-in vs. update), and the software-Tempest comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tempest-sim/tempest/internal/harness"
)

func main() {
	scale := flag.String("scale", "reduced", "workload scale: reduced or paper")
	only := flag.String("only", "", "run a single ablation: blocksize, placement, budget, netlatency, migratory, em3d, software")
	flag.Parse()
	sc := harness.Scale(*scale)

	type ab struct {
		key   string
		title string
		run   func() ([]harness.AblationRow, error)
	}
	all := []ab{
		{"blocksize", "Coherence-block size (Typhoon/Stache, EM3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationBlockSize(sc) }},
		{"placement", "Data placement (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationPlacement(sc) }},
		{"budget", "Stache page budget (EM3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationStacheBudget(sc) }},
		{"netlatency", "Network latency sensitivity (Ocean small, 4 KB caches)",
			func() ([]harness.AblationRow, error) { return harness.AblationNetLatency(sc) }},
		{"migratory", "Migratory-sharing extension (MP3D small)",
			func() ([]harness.AblationRow, error) { return harness.AblationMigratory(sc) }},
		{"em3d", "EM3D protocol chain at 30% remote edges (paper section 4)",
			func() ([]harness.AblationRow, error) { return harness.AblationEM3DProtocols(sc, 30) }},
		{"software", "Software Tempest (Blizzard) vs. Typhoon hardware",
			func() ([]harness.AblationRow, error) { return harness.AblationSoftwareTempest(sc) }},
	}

	ran := 0
	for _, a := range all {
		if *only != "" && a.key != *only {
			continue
		}
		rows, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablations: %s: %v\n", a.key, err)
			os.Exit(1)
		}
		if err := harness.RenderAblation(os.Stdout, a.title, rows); err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ablations: unknown ablation %q\n", *only)
		os.Exit(1)
	}
}
