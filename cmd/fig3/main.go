// Command fig3 regenerates Figure 3 of the paper: the execution time of
// Typhoon/Stache relative to the all-hardware DirNNB system across the
// five benchmarks and dataset/cache combinations.
//
// By default it runs the reduced-scale sweep (8 nodes, scaled data sets,
// seconds of wall time). Pass -scale paper for the full Table 3 sizes on
// 32 simulated nodes (minutes of wall time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tempest-sim/tempest/internal/harness"
)

func main() {
	scale := flag.String("scale", "reduced", "workload scale: reduced or paper")
	appsFlag := flag.String("apps", "", "comma-separated benchmark subset (default: all five)")
	flag.Parse()

	opts := harness.Fig3Options{Scale: harness.Scale(*scale)}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	cells, err := harness.Figure3(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	if err := harness.RenderFigure3(os.Stdout, cells); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
}
