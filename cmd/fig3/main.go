// Command fig3 regenerates Figure 3 of the paper: the execution time of
// Typhoon/Stache relative to the all-hardware DirNNB system across the
// five benchmarks and dataset/cache combinations.
//
// By default it runs the reduced-scale sweep (8 nodes, scaled data sets,
// seconds of wall time). Pass -scale paper for the full Table 3 sizes on
// 32 simulated nodes (minutes of wall time). Simulations fan out across
// -j worker goroutines (0 = all cores); the output is bit-identical at
// every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tempest-sim/tempest/internal/fleet"
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/sim"
)

func main() {
	scaleFlag := flag.String("scale", "reduced", "workload scale: reduced or paper")
	appsFlag := flag.String("apps", "", "comma-separated benchmark subset (default: all five)")
	jobs := flag.Int("j", 0, "parallel simulations (0 = all cores)")
	shards := flag.Int("shards", 1, "scheduler goroutines per simulation (1..nodes; results identical at every value)")
	linkBW := flag.Int("link-bw", 0, "link bandwidth in bytes/cycle (0 = infinite, the paper's model)")
	occupancy := flag.Int64("occupancy", 0, "protocol-agent occupancy in cycles per message (0 = unbounded concurrency)")
	noDedup := flag.Bool("no-dedup", false, "simulate every sweep point, even ones provably identical to a smaller-cache run")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (\"\" = in-process memory cache only)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (conflicts with -cache-dir and -cache-verify)")
	cacheVerify := flag.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]; a mismatch fails the sweep")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(2)
	}
	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fail(err)
	}
	if *jobs < 0 {
		fail(fmt.Errorf("-j %d: worker count must be >= 0", *jobs))
	}
	if nodes := harness.MachineConfig(scale, 0).Nodes; *shards < 1 || *shards > nodes {
		fail(fmt.Errorf("-shards %d: shard count must be in [1, %d] (%s scale has %d nodes)", *shards, nodes, scale, nodes))
	}
	if *linkBW < 0 {
		fail(fmt.Errorf("-link-bw %d: link bandwidth must be >= 0 bytes/cycle", *linkBW))
	}
	if *occupancy < 0 {
		fail(fmt.Errorf("-occupancy %d: agent occupancy must be >= 0 cycles", *occupancy))
	}
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	exec, fleetClose, err := fleetFlags.Executor(cp, logf)
	if err != nil {
		fail(err)
	}
	defer fleetClose()
	opts := harness.Fig3Options{
		Scale:             scale,
		Workers:           *jobs,
		Shards:            *shards,
		LinkBytesPerCycle: *linkBW,
		OccupancyCycles:   sim.Time(*occupancy),
		NoDedup:           *noDedup,
		Cache:             cp,
		Exec:              exec,
		PointTimeout:      *fleetFlags.PointTimeout,
		Logf:              logf,
	}
	if *appsFlag != "" {
		for _, name := range strings.Split(*appsFlag, ",") {
			name = strings.TrimSpace(name)
			if !harness.ValidBench(name) {
				fail(fmt.Errorf("unknown benchmark %q (want one of %s)",
					name, strings.Join(harness.BenchNames, ", ")))
			}
			opts.Apps = append(opts.Apps, name)
		}
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfig3: %d/%d benchmark/system sweeps", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	cells, err := harness.Figure3(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	if cp.Cache != nil && *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "fig3: cache %s: %s\n", *cacheDir, cp.Cache.Stats())
	}
	if err := harness.RenderFigure3(os.Stdout, cells); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
}
