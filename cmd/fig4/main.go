// Command fig4 regenerates Figure 4 of the paper: EM3D cycles per edge
// versus the percentage of non-local edges, comparing DirNNB,
// Typhoon/Stache, and the custom Typhoon delayed-update protocol.
// Simulations fan out across -j worker goroutines (0 = all cores); the
// output is bit-identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tempest-sim/tempest/internal/fleet"
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/sim"
)

func main() {
	scaleFlag := flag.String("scale", "reduced", "workload scale: reduced or paper")
	setFlag := flag.String("set", "large", "data set: small or large (the paper uses large)")
	pcts := flag.String("pcts", "", "comma-separated remote-edge percentages (default 0..50 step 10)")
	jobs := flag.Int("j", 0, "parallel simulations (0 = all cores)")
	shards := flag.Int("shards", 1, "scheduler goroutines per simulation (1..nodes; results identical at every value)")
	linkBW := flag.Int("link-bw", 0, "link bandwidth in bytes/cycle (0 = infinite, the paper's model)")
	occupancy := flag.Int64("occupancy", 0, "protocol-agent occupancy in cycles per message (0 = unbounded concurrency)")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (\"\" = in-process memory cache only)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (conflicts with -cache-dir and -cache-verify)")
	cacheVerify := flag.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]; a mismatch fails the sweep")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(2)
	}
	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fail(err)
	}
	set, err := harness.ParseDataSet(*setFlag)
	if err != nil {
		fail(err)
	}
	if *jobs < 0 {
		fail(fmt.Errorf("-j %d: worker count must be >= 0", *jobs))
	}
	if nodes := harness.MachineConfig(scale, 0).Nodes; *shards < 1 || *shards > nodes {
		fail(fmt.Errorf("-shards %d: shard count must be in [1, %d] (%s scale has %d nodes)", *shards, nodes, scale, nodes))
	}
	if *linkBW < 0 {
		fail(fmt.Errorf("-link-bw %d: link bandwidth must be >= 0 bytes/cycle", *linkBW))
	}
	if *occupancy < 0 {
		fail(fmt.Errorf("-occupancy %d: agent occupancy must be >= 0 cycles", *occupancy))
	}
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	exec, fleetClose, err := fleetFlags.Executor(cp, logf)
	if err != nil {
		fail(err)
	}
	defer fleetClose()
	opts := harness.Fig4Options{
		Scale: scale, Set: set, Workers: *jobs, Shards: *shards,
		LinkBytesPerCycle: *linkBW,
		OccupancyCycles:   sim.Time(*occupancy),
		Cache:             cp,
		Exec:              exec,
		PointTimeout:      *fleetFlags.PointTimeout,
	}
	if *pcts != "" {
		for _, s := range strings.Split(*pcts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fail(fmt.Errorf("bad percentage %q", s))
			}
			if v < 0 || v > 100 {
				fail(fmt.Errorf("percentage %d outside [0, 100]", v))
			}
			opts.Pcts = append(opts.Pcts, v)
		}
	}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfig4: %d/%d simulations", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	pts, err := harness.Figure4(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
	if cp.Cache != nil && *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "fig4: cache %s: %s\n", *cacheDir, cp.Cache.Stats())
	}
	if err := harness.RenderFigure4(os.Stdout, pts); err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
}
