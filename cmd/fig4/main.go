// Command fig4 regenerates Figure 4 of the paper: EM3D cycles per edge
// versus the percentage of non-local edges, comparing DirNNB,
// Typhoon/Stache, and the custom Typhoon delayed-update protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/tempest-sim/tempest/internal/harness"
)

func main() {
	scale := flag.String("scale", "reduced", "workload scale: reduced or paper")
	set := flag.String("set", "large", "data set: small or large (the paper uses large)")
	pcts := flag.String("pcts", "", "comma-separated remote-edge percentages (default 0..50 step 10)")
	flag.Parse()

	opts := harness.Fig4Options{
		Scale: harness.Scale(*scale),
		Set:   harness.DataSet(*set),
	}
	if *pcts != "" {
		for _, s := range strings.Split(*pcts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig4: bad percentage:", s)
				os.Exit(1)
			}
			opts.Pcts = append(opts.Pcts, v)
		}
	}
	pts, err := harness.Figure4(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
	if err := harness.RenderFigure4(os.Stdout, pts); err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
}
