// Command bench runs the tier-1 simulator benchmarks with a single
// worker and appends a timing entry to BENCH_sim.json, giving the repo
// a recorded performance trajectory across PRs.
//
// Each entry records the wall-clock seconds of a per-app Figure 3 sweep
// (reduced scale, one worker — so the number measures simulator speed,
// not host parallelism) plus the reduced Figure 4 EM3D sweep, and a
// sha256 digest of the rendered tables. The digest must be identical
// between entries on the same tree shape: performance work that changes
// it has changed simulated results, not just speed.
//
// Usage:
//
//	go run ./cmd/bench -label after-heap-rework
//	go run ./cmd/bench -check testdata/bench.digest   # digest gate, no append
//	go run ./cmd/bench -cpuprofile cpu.out -label profiled
//	make bench
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/tempest-sim/tempest/internal/fleet"
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/sim"
)

// Entry is one benchmark run. Seconds maps measurement name to
// wall-clock duration; Digest fingerprints the rendered output.
type Entry struct {
	Label      string             `json:"label"`
	Date       string             `json:"date"`
	Go         string             `json:"go"`
	NumCPU     int                `json:"num_cpu"`
	GoMaxProcs int                `json:"gomaxprocs,omitempty"`
	Workers    int                `json:"workers"`
	Shards     int                `json:"shards,omitempty"`
	LinkBW     int                `json:"link_bw,omitempty"`
	Occupancy  int64              `json:"occupancy,omitempty"`
	Seconds    map[string]float64 `json:"seconds"`
	Digest     string             `json:"digest"`
	Cache      *CacheSummary      `json:"cache,omitempty"`
}

// CacheSummary records the result-cache telemetry of one bench run, so
// cold-versus-warm entries in BENCH_sim.json are self-describing.
type CacheSummary struct {
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Stores     uint64  `json:"stores"`
	Verified   uint64  `json:"verified,omitempty"`
	Corrupt    uint64  `json:"corrupt,omitempty"`
	Persistent bool    `json:"persistent,omitempty"`
	Verify     float64 `json:"verify_fraction,omitempty"`
}

// File is the BENCH_sim.json shape: newest entry last.
type File struct {
	Entries []Entry `json:"entries"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "benchmark trajectory file to append to")
	label := flag.String("label", "HEAD", "label for this entry (e.g. a PR or commit name)")
	jobs := flag.Int("j", 1, "parallel simulations (1 isolates simulator speed from host cores)")
	shards := flag.Int("shards", 1, "scheduler goroutines per simulation (1..8 reduced-scale nodes; the digest is identical at every value)")
	linkBW := flag.Int("link-bw", 0, "link bandwidth in bytes/cycle (0 = infinite; non-zero changes the digest)")
	occupancy := flag.Int64("occupancy", 0, "protocol-agent occupancy in cycles per message (0 = unbounded; non-zero changes the digest)")
	noDedup := flag.Bool("no-dedup", false, "simulate every Figure 3 point, even ones provably identical to a smaller-cache run")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (\"\" = in-process memory cache only)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (conflicts with -cache-dir and -cache-verify)")
	cacheVerify := flag.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]; a mismatch fails the run")
	expectCached := flag.Bool("expect-cached", false, "fail unless every simulation was served from the cache (requires -cache-dir; the CI warm-run assertion)")
	check := flag.String("check", "", "golden digest file: compare instead of appending, exit 1 on mismatch")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile after the sweep to this file")
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	if *jobs < 1 {
		fail(fmt.Errorf("-j %d: worker count must be >= 1", *jobs))
	}
	if nodes := harness.MachineConfig(harness.ScaleReduced, 0).Nodes; *shards < 1 || *shards > nodes {
		fail(fmt.Errorf("-shards %d: shard count must be in [1, %d] (the reduced scale has %d nodes)", *shards, nodes, nodes))
	}
	if *linkBW < 0 {
		fail(fmt.Errorf("-link-bw %d: link bandwidth must be >= 0 bytes/cycle", *linkBW))
	}
	if *occupancy < 0 {
		fail(fmt.Errorf("-occupancy %d: agent occupancy must be >= 0 cycles", *occupancy))
	}
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail(err)
	}
	if *expectCached && *cacheDir == "" {
		fail(fmt.Errorf("-expect-cached needs -cache-dir: only a persistent cache can serve a whole run"))
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "bench: result cache at %s (verify fraction %g)\n", *cacheDir, *cacheVerify)
	}
	exec, fleetClose, err := fleetFlags.Executor(cp, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	})
	if err != nil {
		fail(err)
	}
	defer fleetClose()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	seconds := make(map[string]float64)
	digest := sha256.New()
	var rendered strings.Builder

	// Per-app Figure 3 sweeps: one timing per benchmark so regressions
	// localise, all rendered into the digest.
	var cells []harness.Fig3Cell
	for _, app := range harness.BenchNames {
		start := time.Now()
		cs, err := harness.Figure3(harness.Fig3Options{
			Scale:             harness.ScaleReduced,
			Apps:              []string{app},
			Workers:           *jobs,
			Shards:            *shards,
			LinkBytesPerCycle: *linkBW,
			OccupancyCycles:   sim.Time(*occupancy),
			NoDedup:           *noDedup,
			Cache:             cp,
			Exec:              exec,
			PointTimeout:      *fleetFlags.PointTimeout,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
			},
		})
		if err != nil {
			fail(err)
		}
		seconds["figure3/"+app] = time.Since(start).Seconds()
		cells = append(cells, cs...)
		fmt.Fprintf(os.Stderr, "bench: figure3/%s %.2fs\n", app, seconds["figure3/"+app])
	}
	if err := harness.RenderFigure3(&rendered, cells); err != nil {
		fail(err)
	}

	// Reduced Figure 4: the EM3D remote-edge sweep on the small set.
	start := time.Now()
	pts, err := harness.Figure4(harness.Fig4Options{
		Scale:             harness.ScaleReduced,
		Set:               harness.SetSmall,
		Pcts:              []int{0, 20, 50},
		Workers:           *jobs,
		Shards:            *shards,
		LinkBytesPerCycle: *linkBW,
		OccupancyCycles:   sim.Time(*occupancy),
		Cache:             cp,
		Exec:              exec,
		PointTimeout:      *fleetFlags.PointTimeout,
	})
	if err != nil {
		fail(err)
	}
	seconds["figure4/em3d-small"] = time.Since(start).Seconds()
	fmt.Fprintf(os.Stderr, "bench: figure4/em3d-small %.2fs\n", seconds["figure4/em3d-small"])
	if err := harness.RenderFigure4(&rendered, pts); err != nil {
		fail(err)
	}

	var total float64
	for _, s := range seconds {
		total += s
	}
	seconds["total"] = total
	digest.Write([]byte(rendered.String()))
	sum := hex.EncodeToString(digest.Sum(nil))

	// How the engines hosted protocol activations across the whole sweep:
	// inline steps on the scheduler goroutine versus channel handoffs to a
	// context goroutine. Simulator mechanics only — results are identical
	// either way (the digest above proves it per run).
	ds := sim.FleetDispatchStats()
	if n := ds.InlineSteps + ds.GoroutineSteps; n > 0 {
		fmt.Fprintf(os.Stderr,
			"bench: dispatch: %d/%d protocol dispatches inline (%.1f%%), %d inline activations (%d suspends, %d parks avoided), %d stepper fallbacks, %d goroutine switches\n",
			ds.InlineSteps, n, 100*float64(ds.InlineSteps)/float64(n),
			ds.InlineDispatches, ds.InlineSuspends, ds.ParksAvoided,
			ds.StepperFallbacks, ds.GoroutineSwitches)
	}
	// How the sharded engines granted execution windows (zero when every
	// run was serial): adaptive lookahead batches several base windows
	// into one grant, so fewer, wider grants mean less coordination per
	// simulated cycle. Scheduler mechanics only, like the dispatch line.
	if ws := sim.FleetWindowStats(); ws.Grants > 0 {
		fmt.Fprintf(os.Stderr,
			"bench: windows: %d grants, %d batched (%.1f%%), mean width %.1f cycles\n",
			ws.Grants, ws.Batched, 100*float64(ws.Batched)/float64(ws.Grants),
			float64(ws.WidthCycles)/float64(ws.Grants))
	}
	// Result-cache fleet summary: how many simulations this run actually
	// performed versus served from memoized results. Cache activity
	// never changes the digest — hits reconstruct bit-identical results.
	var cacheSummary *CacheSummary
	if cp.Cache != nil {
		cs := cp.Cache.Stats()
		fmt.Fprintf(os.Stderr, "bench: cache: %s\n", cs)
		cacheSummary = &CacheSummary{
			Hits: cs.Hits, Misses: cs.Misses, Stores: cs.Stores,
			Verified: cs.Verified, Corrupt: cs.Corrupt,
			Persistent: cp.Cache.Persistent(), Verify: *cacheVerify,
		}
		if *expectCached && (cs.Misses > 0 || cs.Stores > 0 || cs.Corrupt > 0) {
			fmt.Fprintf(os.Stderr, "bench: EXPECTED FULLY CACHED RUN but saw %s\n", cs)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // materialise the live-heap picture
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}

	if *check != "" {
		raw, err := os.ReadFile(*check)
		if err != nil {
			fail(err)
		}
		want := strings.TrimSpace(string(raw))
		if sum != want {
			fmt.Fprintf(os.Stderr, "bench: DIGEST MISMATCH\n  golden %s (%s)\n  got    %s\nSimulated results changed. If intentional, regenerate the golden file.\n",
				want, *check, sum)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: digest ok (%s…) total %.2fs\n", sum[:12], total)
		return
	}

	entry := Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		Go:         runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *jobs,
		Shards:     *shards,
		LinkBW:     *linkBW,
		Occupancy:  *occupancy,
		Seconds:    seconds,
		Digest:     sum,
		Cache:      cacheSummary,
	}

	var f File
	if raw, err := os.ReadFile(*out); err == nil {
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &f); err != nil {
				fail(fmt.Errorf("%s: %w (fix or remove the file)", *out, err))
			}
		}
	} else if !os.IsNotExist(err) {
		fail(err)
	}
	f.Entries = append(f.Entries, entry)
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: %s total %.2fs digest %s… → %s\n",
		*label, total, entry.Digest[:12], *out)
}
