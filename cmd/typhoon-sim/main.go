// Command typhoon-sim runs one benchmark on one simulated target system
// and reports execution time and event counters.
//
// Examples:
//
//	typhoon-sim -app ocean -system typhoon-stache
//	typhoon-sim -app em3d -system typhoon-update -set large -scale paper
//	typhoon-sim -app barnes -system dirnnb -counters
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/stats"
)

func main() {
	app := flag.String("app", "ocean", "benchmark: appbt, barnes, mp3d, ocean, em3d")
	system := flag.String("system", "typhoon-stache", "target: dirnnb, typhoon-stache, typhoon-update (em3d only)")
	set := flag.String("set", "small", "data set: small or large (Table 3)")
	scale := flag.String("scale", "reduced", "workload scale: reduced or paper")
	cacheKB := flag.Int("cache", 0, "CPU cache size in KB (0 = Table 2 default)")
	nodes := flag.Int("nodes", 0, "node count (0 = scale default)")
	counters := flag.Bool("counters", false, "dump all event counters")
	flag.Parse()

	mcfg := harness.MachineConfig(harness.Scale(*scale), *cacheKB<<10)
	if *nodes > 0 {
		mcfg.Nodes = *nodes
	}

	var rr harness.RunResult
	var err error
	switch harness.System(*system) {
	case harness.SysUpdate:
		if *app != "em3d" {
			fmt.Fprintln(os.Stderr, "typhoon-sim: the update protocol only runs em3d")
			os.Exit(1)
		}
		ecfg := harness.EM3DConfig(harness.Scale(*scale), harness.DataSet(*set))
		rr, err = harness.RunEM3DUpdate(mcfg, ecfg)
	default:
		bench, mkErr := harness.MakeApp(*app, harness.Scale(*scale), harness.DataSet(*set))
		if mkErr != nil {
			fmt.Fprintln(os.Stderr, "typhoon-sim:", mkErr)
			os.Exit(1)
		}
		rr, err = harness.Run(mcfg, harness.System(*system), bench)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "typhoon-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s (%s/%s): %d nodes, %d KB caches\n",
		rr.App, rr.System, *scale, *set, mcfg.Nodes, mcfg.CacheSize>>10)
	fmt.Printf("  total cycles:    %d\n", rr.Res.Cycles)
	fmt.Printf("  measured region: %d\n", rr.Res.ROICycles)
	fmt.Printf("  result verified against sequential reference: ok\n")
	if *counters {
		t := &stats.Table{Title: "event counters", Header: []string{"counter", "value"}}
		for _, name := range rr.Res.Counters.Names() {
			if v := rr.Res.Counters.Get(name); v > 0 {
				t.AddRow(name, stats.D(v))
			}
		}
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "typhoon-sim:", err)
			os.Exit(1)
		}
	}
}
