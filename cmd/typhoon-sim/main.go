// Command typhoon-sim runs one or more benchmarks on one simulated
// target system and reports execution time and event counters. A
// comma-separated -app list fans out across -j worker goroutines
// (0 = all cores); results print in the order the apps were named.
//
// Examples:
//
//	typhoon-sim -app ocean -system typhoon-stache
//	typhoon-sim -app em3d -system typhoon-update -set large -scale paper
//	typhoon-sim -app barnes -system dirnnb -counters
//	typhoon-sim -app appbt,barnes,mp3d,ocean,em3d -j 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tempest-sim/tempest/internal/fleet"
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

func main() {
	appFlag := flag.String("app", "ocean", "benchmark, or comma-separated list: appbt, barnes, mp3d, ocean, em3d")
	system := flag.String("system", "typhoon-stache", "target: dirnnb, typhoon-stache, typhoon-update (em3d only)")
	setFlag := flag.String("set", "small", "data set: small or large (Table 3)")
	scaleFlag := flag.String("scale", "reduced", "workload scale: reduced or paper")
	cacheKB := flag.Int("cache", 0, "CPU cache size in KB (0 = Table 2 default)")
	nodes := flag.Int("nodes", 0, "node count (0 = scale default)")
	shards := flag.Int("shards", 1, "scheduler goroutines per simulation (1..nodes; results identical at every value)")
	linkBW := flag.Int("link-bw", 0, "link bandwidth in bytes/cycle (0 = infinite, the paper's model)")
	occupancy := flag.Int64("occupancy", 0, "protocol-agent occupancy in cycles per message (0 = unbounded concurrency)")
	counters := flag.Bool("counters", false, "dump all event counters")
	jobs := flag.Int("j", 0, "parallel simulations (0 = all cores)")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (\"\" = in-process memory cache only)")
	noCache := flag.Bool("no-cache", false, "disable the result cache entirely (conflicts with -cache-dir and -cache-verify)")
	cacheVerify := flag.Float64("cache-verify", 0, "fraction of cache hits to re-simulate and compare [0, 1]; a mismatch fails the run")
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "typhoon-sim:", err)
		os.Exit(2)
	}
	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fail(err)
	}
	set, err := harness.ParseDataSet(*setFlag)
	if err != nil {
		fail(err)
	}
	sys := harness.System(*system)
	switch sys {
	case harness.SysDirNNB, harness.SysStache, harness.SysUpdate:
	default:
		fail(fmt.Errorf("unknown system %q (want dirnnb, typhoon-stache, or typhoon-update)", *system))
	}
	if *jobs < 0 {
		fail(fmt.Errorf("-j %d: worker count must be >= 0", *jobs))
	}
	var names []string
	for _, name := range strings.Split(*appFlag, ",") {
		name = strings.TrimSpace(name)
		if !harness.ValidBench(name) {
			fail(fmt.Errorf("unknown benchmark %q (want one of %s)",
				name, strings.Join(harness.BenchNames, ", ")))
		}
		if sys == harness.SysUpdate && name != "em3d" {
			fail(fmt.Errorf("the update protocol only runs em3d, not %q", name))
		}
		names = append(names, name)
	}

	mcfg := harness.MachineConfig(scale, *cacheKB<<10)
	if *nodes > 0 {
		mcfg.Nodes = *nodes
	}
	if *shards < 1 || *shards > mcfg.Nodes {
		fail(fmt.Errorf("-shards %d: shard count must be in [1, %d] (the machine has %d nodes)", *shards, mcfg.Nodes, mcfg.Nodes))
	}
	if *linkBW < 0 {
		fail(fmt.Errorf("-link-bw %d: link bandwidth must be >= 0 bytes/cycle", *linkBW))
	}
	if *occupancy < 0 {
		fail(fmt.Errorf("-occupancy %d: agent occupancy must be >= 0 cycles", *occupancy))
	}
	mcfg.Shards = *shards
	mcfg.LinkBytesPerCycle = *linkBW
	mcfg.OccupancyCycles = sim.Time(*occupancy)
	cp, err := harness.NewCacheParams(*cacheDir, *noCache, *cacheVerify)
	if err != nil {
		fail(err)
	}

	exec, fleetClose, err := fleetFlags.Executor(cp, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "typhoon-sim: "+format+"\n", args...)
	})
	if err != nil {
		fail(err)
	}
	defer fleetClose()
	if exec == nil {
		exec = harness.LocalExecutor{Workers: *jobs, Cache: cp}
	}

	var points []harness.Point
	for _, name := range names {
		pt := harness.Point{Cfg: mcfg, System: sys}
		if sys == harness.SysUpdate {
			ec := harness.EM3DConfig(scale, set)
			pt.EM3D = &ec
		} else {
			pt.Bench, pt.Scale, pt.Set = name, scale, set
		}
		points = append(points, pt)
	}
	results, err := exec.Submit(context.Background(), harness.Batch{
		Points:       points,
		PointTimeout: *fleetFlags.PointTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "typhoon-sim:", err)
		os.Exit(1)
	}

	if cp.Cache != nil && *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "typhoon-sim: cache %s: %s\n", *cacheDir, cp.Cache.Stats())
	}
	for i, rr := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s on %s (%s/%s): %d nodes, %d KB caches\n",
			rr.App, rr.System, scale, set, mcfg.Nodes, mcfg.CacheSize>>10)
		fmt.Printf("  total cycles:    %d\n", rr.Res.Cycles)
		fmt.Printf("  measured region: %d\n", rr.Res.ROICycles)
		fmt.Printf("  result verified against sequential reference: ok (at simulation time; cached results are reused verified)\n")
		if *counters {
			t := &stats.Table{Title: "event counters", Header: []string{"counter", "value"}}
			for _, name := range rr.Res.Counters.Names() {
				if v := rr.Res.Counters.Get(name); v > 0 {
					t.AddRow(name, stats.D(v))
				}
			}
			fmt.Println()
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "typhoon-sim:", err)
				os.Exit(1)
			}
		}
	}
	// The result-cache telemetry rides the same counter plumbing as the
	// simulation events (cache.hits, cache.misses, ...).
	if *counters && cp.Cache != nil {
		t := &stats.Table{Title: "result-cache counters", Header: []string{"counter", "value"}}
		ctr := cp.Cache.Counters()
		for _, name := range ctr.Names() {
			t.AddRow(name, stats.D(ctr.Get(name)))
		}
		fmt.Println()
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "typhoon-sim:", err)
			os.Exit(1)
		}
	}
}
