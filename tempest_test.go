package tempest_test

import (
	"testing"

	tempest "github.com/tempest-sim/tempest"
)

func smallCfg(nodes int) tempest.Config {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CacheSize = 4 << 10
	return cfg
}

// TestPublicAPIQuickstart runs the package-documentation example shape
// end to end on both systems.
func TestPublicAPIQuickstart(t *testing.T) {
	build := []func() *tempest.Machine{
		func() *tempest.Machine { return tempest.NewDirNNB(smallCfg(4)) },
		func() *tempest.Machine { m, _ := tempest.NewTyphoonStache(smallCfg(4)); return m },
	}
	for _, mk := range build {
		m := mk()
		data := m.AllocShared("data", 4096, tempest.RoundRobin{}, 0)
		got := make([]uint64, 4)
		res, err := m.Run(func(p *tempest.Proc) {
			p.WriteU64(data.At(uint64(8*p.ID())), uint64(p.ID()*11))
			p.Barrier()
			got[p.ID()] = p.ReadU64(data.At(uint64(8 * ((p.ID() + 1) % p.N()))))
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Sys.Name(), err)
		}
		for i, v := range got {
			if want := uint64(((i + 1) % 4) * 11); v != want {
				t.Errorf("%s: node %d read %d, want %d", m.Sys.Name(), i, v, want)
			}
		}
		if res.Cycles == 0 {
			t.Errorf("%s: zero cycles", m.Sys.Name())
		}
	}
}

func TestTyphoonOf(t *testing.T) {
	m, _ := tempest.NewTyphoonStache(smallCfg(2))
	if tempest.TyphoonOf(m) == nil {
		t.Fatal("TyphoonOf returned nil for a Typhoon machine")
	}
	d := tempest.NewDirNNB(smallCfg(2))
	if tempest.TyphoonOf(d) != nil {
		t.Fatal("TyphoonOf returned non-nil for DirNNB")
	}
}

func TestStacheMaxPagesOption(t *testing.T) {
	m, st := tempest.NewTyphoonStache(smallCfg(2), tempest.StacheMaxPages(2))
	data := m.AllocShared("data", 8*tempest.PageSize, tempest.OnNode{Node: 0}, 0)
	res, err := m.Run(func(p *tempest.Proc) {
		if p.ID() != 1 {
			return
		}
		for pg := 0; pg < 8; pg++ {
			p.WriteU64(data.At(uint64(pg*tempest.PageSize)), uint64(pg))
		}
		for pg := 0; pg < 8; pg++ {
			if got := p.ReadU64(data.At(uint64(pg * tempest.PageSize))); got != uint64(pg) {
				t.Errorf("page %d = %d", pg, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("stache.replacements") == 0 {
		t.Error("budget of 2 pages should force replacements")
	}
}

// TestDeterministicPublicRuns pins bit-identical repeatability at the
// public API level.
func TestDeterministicPublicRuns(t *testing.T) {
	exec := func() uint64 {
		m, _ := tempest.NewTyphoonStache(smallCfg(4))
		data := m.AllocShared("data", 64<<10, tempest.RoundRobin{}, 0)
		res, err := m.Run(func(p *tempest.Proc) {
			for i := 0; i < 200; i++ {
				off := uint64(((i*13 + p.ID()*29) % 8000) * 8)
				if i%4 == 0 {
					p.WriteU64(data.At(off), uint64(i))
				} else {
					p.ReadU64(data.At(off))
				}
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.Cycles)
	}
	if a, b := exec(), exec(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
