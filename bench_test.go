// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure (DESIGN.md §5 maps each to its experiment), plus
// microbenchmarks of the simulator substrates. The macro benchmarks run
// the reduced-scale experiments by default so `go test -bench=.`
// finishes in minutes; cmd/fig3 and cmd/fig4 regenerate the figures at
// any scale.
package tempest_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	tempest "github.com/tempest-sim/tempest"
	"github.com/tempest-sim/tempest/internal/harness"
)

// BenchmarkTable1TagOps measures the fine-grain access-control substrate
// (Table 1): tag-checked accesses through the full CPU reference path.
func BenchmarkTable1TagOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := tempest.DefaultConfig()
		cfg.Nodes = 1
		cfg.CacheSize = 4 << 10
		m, _ := tempest.NewTyphoonStache(cfg)
		seg := m.AllocShared("x", 64<<10, tempest.OnNode{Node: 0}, 0)
		res, err := m.Run(func(p *tempest.Proc) {
			for off := uint64(0); off < 64<<10; off += 8 {
				p.WriteU64(seg.At(off), off)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}

// BenchmarkTable2MissLatencies measures the Table 2 latency composition:
// the steady-state coherence refetch on both systems, reporting the
// ratio the paper's +-30% claim rests on.
func BenchmarkTable2MissLatencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.MachineConfig(harness.ScaleReduced, 4<<10)
		lat, err := harness.MeasureRefetchAll([]harness.RefetchProbe{
			{Config: cfg, System: harness.SysDirNNB},
			{Config: cfg, System: harness.SysStache},
		}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lat[0]), "dirnnb-cycles")
		b.ReportMetric(float64(lat[1]), "stache-cycles")
		b.ReportMetric(float64(lat[1])/float64(lat[0]), "ratio")
	}
}

// BenchmarkTable3DataSets builds every Table 3 instance at paper scale,
// including full workload construction (graph/grid/particle layout and
// shared-segment allocation on a 32-node machine; no simulation).
func BenchmarkTable3DataSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range harness.BenchNames {
			for _, set := range []harness.DataSet{harness.SetSmall, harness.SetLarge} {
				app, err := harness.MakeApp(name, harness.ScalePaper, set)
				if err != nil {
					b.Fatal(err)
				}
				m := tempest.NewDirNNB(harness.MachineConfig(harness.ScalePaper, 0))
				app.Setup(m)
			}
		}
	}
}

// benchFig3 runs one benchmark's Figure 3 row at reduced scale and
// reports each bar's relative execution time. Workers is pinned to 1 so
// the metric trajectory stays comparable across machines; see
// BenchmarkFigure3ParallelSpeedup for the parallel-runner measurement.
func benchFig3(b *testing.B, app string) {
	for i := 0; i < b.N; i++ {
		cells, err := harness.Figure3(harness.Fig3Options{
			Scale:   harness.ScaleReduced,
			Apps:    []string{app},
			Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			b.ReportMetric(c.Relative, fmt.Sprintf("rel-%s-%dK", c.Set, c.CacheKB))
		}
	}
}

// One Figure 3 benchmark per application (the figure's five groups).
func BenchmarkFigure3Appbt(b *testing.B)  { benchFig3(b, "appbt") }
func BenchmarkFigure3Barnes(b *testing.B) { benchFig3(b, "barnes") }
func BenchmarkFigure3MP3D(b *testing.B)   { benchFig3(b, "mp3d") }
func BenchmarkFigure3Ocean(b *testing.B)  { benchFig3(b, "ocean") }
func BenchmarkFigure3EM3D(b *testing.B)   { benchFig3(b, "em3d") }

// BenchmarkFigure4 runs the EM3D remote-edge sweep and reports
// cycles/edge for each system at each point.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := harness.Figure4(harness.Fig4Options{
			Scale:   harness.ScaleReduced,
			Set:     harness.SetSmall,
			Pcts:    []int{0, 20, 50},
			Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.DirNNB, fmt.Sprintf("dirnnb-%d", p.PctRemote))
			b.ReportMetric(p.Stache, fmt.Sprintf("stache-%d", p.PctRemote))
			b.ReportMetric(p.Update, fmt.Sprintf("update-%d", p.PctRemote))
		}
	}
}

// metricName makes an ablation label a legal benchmark-metric unit
// (no whitespace).
func metricName(label string) string {
	return strings.ReplaceAll(label, " ", "-")
}

// Ablation benchmarks (DESIGN.md §5): design-choice sweeps.

func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationBlockSize(harness.ScaleReduced, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label))
		}
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationPlacement(harness.ScaleReduced, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label))
		}
	}
}

func BenchmarkAblationStacheBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationStacheBudget(harness.ScaleReduced, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label))
		}
	}
}

func BenchmarkAblationNetLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationNetLatency(harness.ScaleReduced, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label))
		}
	}
}

// Substrate microbenchmarks: simulator throughput (host performance,
// not simulated time).

func BenchmarkSimReferenceThroughput(b *testing.B) {
	// A machine runs once, so each benchmark invocation builds a fresh
	// one and issues b.N references inside a single simulated run.
	cfg := tempest.DefaultConfig()
	cfg.Nodes = 1
	m, _ := tempest.NewTyphoonStache(cfg)
	seg := m.AllocShared("x", 1<<20, tempest.OnNode{Node: 0}, 0)
	b.ResetTimer()
	if _, err := m.Run(func(p *tempest.Proc) {
		for i := 0; i < b.N; i++ {
			p.ReadU64(seg.At(uint64(i%(1<<17)) * 8))
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

func BenchmarkSimBarrierThroughput(b *testing.B) {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = 8
	m := tempest.NewDirNNB(cfg)
	b.ResetTimer()
	if _, err := m.Run(func(p *tempest.Proc) {
		for i := 0; i < b.N; i++ {
			p.Barrier()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationEM3DProtocols reproduces the paper's §4 protocol
// comparison: plain Stache vs. check-in annotations vs. the custom
// update protocol, in network messages and cycles.
func BenchmarkAblationEM3DProtocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationEM3DProtocols(harness.ScaleReduced, 30, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label)+"-cycles")
			if v, ok := r.Extra["net-messages"]; ok {
				b.ReportMetric(float64(v), metricName(r.Label)+"-msgs")
			}
		}
	}
}

// BenchmarkAblationMigratory measures the migratory-sharing protocol
// extension on MP3D's scattered read-modify-write pattern.
func BenchmarkAblationMigratory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationMigratory(harness.ScaleReduced, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label))
		}
	}
}

// BenchmarkAblationSoftwareTempest compares the unmodified Stache
// library on Typhoon hardware versus the software Tempest (Blizzard)
// implementation — the paper's §2 portability claim, priced.
func BenchmarkAblationSoftwareTempest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationSoftwareTempest(harness.ScaleReduced, harness.SimParams{Shards: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Cycles), metricName(r.Label))
		}
	}
}

// BenchmarkFigure3ParallelSpeedup times the reduced Figure 3 sweep on
// the serial path (-j 1) against the parallel runner at -j 4 and reports
// the wall-clock speedup. Results are bit-identical at both settings
// (TestParallelDeterminism); the speedup metric reflects the host's
// available cores.
func BenchmarkFigure3ParallelSpeedup(b *testing.B) {
	if runtime.NumCPU() == 1 {
		b.Skip("single-CPU host: -j 4 cannot run simulations concurrently, so the speedup ratio would only measure scheduling overhead")
	}
	opts := harness.Fig3Options{Scale: harness.ScaleReduced}
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		opts.Workers = 1
		if _, err := harness.Figure3(opts); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)

		t0 = time.Now()
		opts.Workers = 4
		if _, err := harness.Figure3(opts); err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t0)

		b.ReportMetric(serial.Seconds(), "serial-s")
		b.ReportMetric(parallel.Seconds(), "parallel-j4-s")
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-j4")
	}
}
