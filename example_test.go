package tempest_test

import (
	"fmt"

	tempest "github.com/tempest-sim/tempest"
)

// A parallel reduction over transparent shared memory: each processor
// writes a slot, then processor 0 sums them. Stache fetches the remote
// slots on demand; the run is deterministic.
func ExampleNewTyphoonStache() {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = 4

	m, _ := tempest.NewTyphoonStache(cfg)
	slots := m.AllocShared("slots", uint64(cfg.Nodes*8), tempest.RoundRobin{}, 0)

	var total uint64
	_, err := m.Run(func(p *tempest.Proc) {
		p.WriteU64(slots.At(uint64(8*p.ID())), uint64((p.ID()+1)*10))
		p.Barrier()
		if p.ID() == 0 {
			for n := 0; n < p.N(); n++ {
				total += p.ReadU64(slots.At(uint64(8 * n)))
			}
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", total)
	// Output: sum: 100
}

// The same program runs unmodified on the all-hardware baseline.
func ExampleNewDirNNB() {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = 4

	m := tempest.NewDirNNB(cfg)
	slots := m.AllocShared("slots", uint64(cfg.Nodes*8), tempest.RoundRobin{}, 0)

	var total uint64
	if _, err := m.Run(func(p *tempest.Proc) {
		p.WriteU64(slots.At(uint64(8*p.ID())), uint64((p.ID()+1)*10))
		p.Barrier()
		if p.ID() == 0 {
			for n := 0; n < p.N(); n++ {
				total += p.ReadU64(slots.At(uint64(8 * n)))
			}
		}
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", total)
	// Output: sum: 100
}

// User-level synchronization: a fetch-and-add counter served by an NP
// handler distributes unique tickets.
func ExampleNewSync() {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = 4

	m, _ := tempest.NewTyphoonStache(cfg)
	sync := tempest.NewSync(tempest.TyphoonOf(m), 1, 1)

	tickets := make([]uint64, cfg.Nodes)
	if _, err := m.Run(func(p *tempest.Proc) {
		tickets[p.ID()] = sync.FetchAdd(p, 0, 1)
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	unique := map[uint64]bool{}
	for _, t := range tickets {
		unique[t] = true
	}
	fmt.Println("unique tickets:", len(unique))
	// Output: unique tickets: 4
}
