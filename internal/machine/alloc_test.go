package machine

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/mem"
)

// TestAllocFreeCacheHit asserts the flattened reference fast path — one
// instruction cycle, TLB lookup, cached translation, cache probe hit,
// DRAM read — allocates nothing. Cache hits dominate every workload in
// the paper, so an allocation here would dwarf everything else the
// simulator does.
func TestAllocFreeCacheHit(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 1, CacheSize: 4096, Seed: 1, Quantum: 1 << 62})
	va := m.AllocPrivate(0, mem.PageSize)

	var allocs float64
	if _, err := m.Run(func(p *Proc) {
		p.WriteU64(va, 42) // warm the TLB, translation cache, and cache line
		if got := p.ReadU64(va); got != 42 {
			t.Errorf("read back %d, want 42", got)
			return
		}
		allocs = testing.AllocsPerRun(200, func() {
			p.ReadU64(va)
		})
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Errorf("cache-hit reference allocates %.1f times per run, want 0", allocs)
	}
}
