// Package machine assembles the simulated parallel computer both target
// systems share: workstation-like nodes (CPU + cache + TLB + DRAM) on a
// point-to-point network with a hardware barrier (paper §5, Figure 1, and
// the "Common" rows of Table 2). The memory system behind a cache miss is
// pluggable: internal/typhoon provides the Tempest/Typhoon node and
// internal/dirnnb the all-hardware directory baseline.
package machine

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/vm"
)

// Config carries the Table 2 simulation parameters common to both target
// systems, plus simulator housekeeping (quantum, seed, DRAM budget).
type Config struct {
	// Nodes is the number of processing nodes (the paper simulates 32).
	Nodes int
	// CacheSize is the CPU cache capacity in bytes (Figure 3 sweeps 4 KB
	// to 256 KB).
	CacheSize int
	// CacheWays is the CPU cache associativity (Table 2: 4-way).
	CacheWays int
	// BlockSize is the coherence-block and cache-line size (Table 2: 32).
	BlockSize int
	// TLBEntries is the CPU (and NP) TLB capacity (Table 2: 64).
	TLBEntries int

	// LocalMissCycles is a cache miss satisfied from local DRAM (29).
	LocalMissCycles sim.Time
	// TLBMissCycles is the TLB refill penalty (25).
	TLBMissCycles sim.Time
	// NetLatency is the end-to-end network latency (11).
	NetLatency sim.Time
	// BarrierLatency is the hardware barrier latency (11).
	BarrierLatency sim.Time

	// LinkBytesPerCycle enables the network contention model: finite
	// per-port link bandwidth in bytes per cycle (packets serialise
	// through their injection and ejection ports for
	// ceil(payload/bandwidth) cycles, queueing FIFO behind each other).
	// Zero models infinite bandwidth — the paper's simplification and
	// the behaviour every pinned digest assumes.
	LinkBytesPerCycle int
	// OccupancyCycles enables the agent contention model: every protocol
	// agent (Typhoon NP, DirNNB directory controller) is busy for this
	// many cycles after dispatching a message, so back-to-back dispatches
	// serialise and hot-home queueing becomes visible (paper §6 names NP
	// occupancy, not latency, as the real bottleneck). Zero restores the
	// legacy unbounded-concurrency behaviour.
	OccupancyCycles sim.Time

	// MemPagesPerNode bounds each node's DRAM in 4 KB frames. Zero means
	// unbounded. Stache replacement only triggers under a bound.
	MemPagesPerNode int
	// Quantum is the scheduler run-ahead bound; zero keeps the default.
	Quantum sim.Time
	// Seed drives random cache replacement.
	Seed uint64
	// GoroutineDispatch forces every stepper context (NP dispatch loops)
	// through its standby goroutine instead of inline dispatch — the
	// pre-stepper execution model. Results are bit-identical either way;
	// the flag exists for equivalence tests and A/B measurement.
	GoroutineDispatch bool
	// Shards runs the simulation itself in parallel: nodes are
	// partitioned across this many scheduler goroutines executing
	// conservative time windows. The engine plans adaptive per-shard
	// windows bounded below by min(NetLatency, BarrierLatency) cycles —
	// the machine's cross-node interaction latency floor. Results are
	// bit-identical for every value. Zero means 1 (serial); values
	// outside [1, Nodes] are rejected by New.
	Shards int
	// FixedWindow pins every shard window to the legacy fixed
	// min(NetLatency, BarrierLatency) lockstep grant instead of the
	// adaptive per-shard bounds. Results are bit-identical either way;
	// the flag exists for A/B equivalence tests and overhead
	// measurement.
	FixedWindow bool
}

// DefaultConfig returns the Table 2 parameters: 32 nodes, 256 KB 4-way
// CPU caches, 32-byte blocks, 64-entry TLBs, 29/25/11/11-cycle latencies.
func DefaultConfig() Config {
	return Config{
		Nodes:           32,
		CacheSize:       256 << 10,
		CacheWays:       4,
		BlockSize:       32,
		TLBEntries:      64,
		LocalMissCycles: 29,
		TLBMissCycles:   25,
		NetLatency:      11,
		BarrierLatency:  11,
		Seed:            1,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.CacheSize == 0 {
		c.CacheSize = d.CacheSize
	}
	if c.CacheWays == 0 {
		c.CacheWays = d.CacheWays
	}
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.TLBEntries == 0 {
		c.TLBEntries = d.TLBEntries
	}
	if c.LocalMissCycles == 0 {
		c.LocalMissCycles = d.LocalMissCycles
	}
	if c.TLBMissCycles == 0 {
		c.TLBMissCycles = d.TLBMissCycles
	}
	if c.NetLatency == 0 {
		c.NetLatency = d.NetLatency
	}
	if c.BarrierLatency == 0 {
		c.BarrierLatency = d.BarrierLatency
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
}

// Normalized returns the configuration with defaults applied — the
// canonical form the result cache keys on, where an explicit
// Table 2 value and a zero that defaults to it digest identically.
func (c Config) Normalized() Config {
	c.applyDefaults()
	return c
}

// MemSystem is the pluggable memory system behind the CPU cache: the
// Typhoon node (tags + NP + user-level protocol) or the DirNNB hardware
// directory.
type MemSystem interface {
	// Name identifies the system in reports ("Typhoon/Stache", "DirNNB").
	Name() string

	// SetupSegment prepares a freshly allocated shared segment: DirNNB
	// eagerly places frames at each page's home; Typhoon protocols build
	// home pages and directories.
	SetupSegment(seg *vm.Segment)

	// PageFault services an access to a page unmapped on p's node. When
	// it returns, the reference is retried; the handler must have
	// installed a translation (or the retry bound aborts the run).
	PageFault(p *Proc, va mem.VA, write bool)

	// ServiceMiss services the bus transaction of a reference that
	// missed (or, with upgrade set, hit a Shared line it must own to
	// write). It blocks in simulated time until the access may proceed
	// and returns the cache state to install. Returning cache.LineInvalid
	// asks the machine to retry the whole reference, e.g. after a block
	// access fault handler remapped or re-tagged the page.
	ServiceMiss(p *Proc, va mem.VA, pa mem.PA, pte vm.PTE, write, upgrade bool) cache.LineState

	// Evicted tells the system a valid line left p's cache so it can
	// charge replacement costs and update hardware directory state.
	Evicted(p *Proc, victim mem.PA, state cache.LineState)

	// Counters exposes the system's event counts for reports.
	Counters() *stats.Counters
}

// Machine is one simulated target system.
type Machine struct {
	Cfg Config
	Eng *sim.Engine
	Net *network.Network
	VM  *vm.System

	Mems   []*mem.Memory
	Caches []*cache.Cache
	TLBs   []*cache.TLB
	Bar    *sim.Barrier

	Sys   MemSystem
	Procs []*Proc

	// PerRefOverhead is charged on every shared-segment reference, even
	// cache hits — the inline software access-check cost of a software
	// Tempest implementation (zero on Typhoon, whose RTLB checks tags in
	// hardware off the critical path).
	PerRefOverhead sim.Time
	// stalls accumulates protocol-handler cycles stolen from each
	// node's compute processor (software Tempest runs handlers on the
	// main CPU); the processor absorbs them at its next reference.
	stalls []sim.Time

	ran bool
}

// New builds a machine from cfg. A MemSystem must be attached with
// SetMemSystem before allocating shared segments or running.
func New(cfg Config) *Machine {
	cfg.applyDefaults()
	if cfg.Shards < 1 || cfg.Shards > cfg.Nodes {
		panic(fmt.Sprintf("machine: %d shards outside [1, %d nodes]", cfg.Shards, cfg.Nodes))
	}
	if cfg.LinkBytesPerCycle < 0 {
		panic(fmt.Sprintf("machine: negative link bandwidth %d", cfg.LinkBytesPerCycle))
	}
	engOpts := []sim.Option{sim.WithQuantum(cfg.Quantum)}
	if cfg.GoroutineDispatch {
		engOpts = append(engOpts, sim.WithGoroutineDispatch())
	}
	netCfg := network.Config{
		Nodes:             cfg.Nodes,
		Latency:           cfg.NetLatency,
		LinkBytesPerCycle: cfg.LinkBytesPerCycle,
	}
	// The lookahead window: nodes interact only through the network and
	// the barrier, so the smallest cross-node interaction latency bounds
	// how far one shard can run without seeing another shard's effects.
	// The network term is its earliest possible contended delivery —
	// which the contention model keeps at the wire latency, since port
	// queueing only ever pushes a delivery later (see
	// network.Config.MinCrossShardDelivery); sim's window-safety
	// assertion enforces the claim at run time.
	window := netCfg.MinCrossShardDelivery()
	if cfg.BarrierLatency < window {
		window = cfg.BarrierLatency
	}
	engOpts = append(engOpts, sim.WithShards(cfg.Shards, cfg.Nodes, window),
		// The adaptive planner's lookahead: only the network delivers
		// cross-shard events (barrier arrivals merge separately), so its
		// earliest contended delivery — the wire latency — bounds every
		// cross-shard event's distance, even when the barrier latency
		// pulls the base window below it.
		sim.WithCrossShardDelivery(netCfg.MinCrossShardDelivery()))
	if cfg.FixedWindow {
		engOpts = append(engOpts, sim.WithFixedWindows())
	}
	eng := sim.NewEngine(engOpts...)
	m := &Machine{
		Cfg: cfg,
		Eng: eng,
		Net: network.New(eng, netCfg),
		VM:  vm.NewSystem(cfg.Nodes),
		Bar: sim.NewBarrier(eng, cfg.Nodes, cfg.BarrierLatency),
	}
	m.stalls = make([]sim.Time, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		m.Mems = append(m.Mems, mem.New(i, mem.Config{
			BlockSize: cfg.BlockSize,
			MaxFrames: cfg.MemPagesPerNode,
		}))
		m.Caches = append(m.Caches, cache.New(cfg.CacheSize, cfg.CacheWays, cfg.BlockSize, cfg.Seed+uint64(i)*0x9E37))
		m.TLBs = append(m.TLBs, cache.NewTLB(cfg.TLBEntries))
		m.Procs = append(m.Procs, &Proc{
			m: m, node: i,
			tlb: m.TLBs[i], cc: m.Caches[i], pt: m.VM.Table(i),
			trGen: ^uint64(0), // no cached translation yet
		})
	}
	return m
}

// SetMemSystem attaches the memory system. It must be called exactly once
// before AllocShared or Run.
func (m *Machine) SetMemSystem(sys MemSystem) {
	if m.Sys != nil {
		panic("machine: memory system already attached")
	}
	m.Sys = sys
}

// AllocShared reserves a shared segment and lets the memory system
// prepare it (home frames, directories). Allocation is a setup-time
// operation and costs no simulated cycles, mirroring the paper's
// unmeasured initialisation.
func (m *Machine) AllocShared(name string, size uint64, place vm.Placement, mode int) *vm.Segment {
	if m.Sys == nil {
		panic("machine: AllocShared before SetMemSystem")
	}
	if mode == 0 {
		mode = vm.ModeUser // the memory system's default protocol mode
	}
	seg := m.VM.AllocShared(name, size, place, mode)
	m.Sys.SetupSegment(seg)
	return seg
}

// AllocPrivate reserves node-private memory mapped from the node's DRAM.
func (m *Machine) AllocPrivate(node int, size uint64) mem.VA {
	va, err := m.VM.AllocPrivate(node, size, m.Mems[node])
	if err != nil {
		panic(fmt.Sprintf("machine: %v", err))
	}
	return va
}

// StealCycles charges n cycles of protocol work against node's compute
// processor, to be absorbed at its next reference. Software Tempest
// implementations use it: their handlers run on the main CPU.
func (m *Machine) StealCycles(node int, n sim.Time) {
	m.stalls[node] += n
}

// Result summarises one run.
type Result struct {
	// Cycles is the full execution time: the latest cycle any processor
	// reached.
	Cycles sim.Time
	// ROICycles is the measured region (between ROIStart and ROIEnd), or
	// Cycles when no region was marked.
	ROICycles sim.Time
	// Counters aggregates processor, memory-system, and network events.
	Counters *stats.Counters
	// Net is the interconnect traffic summary.
	Net network.Stats
	// ObsHashes and ObsOps record each processor's final observation
	// (hash and folded-op count) in node order when observation was
	// enabled — nil otherwise. The differential harness and the result
	// cache both read them from here rather than re-walking Procs.
	ObsHashes, ObsOps []uint64
}

// Run executes body once per node as an SPMD program and returns the
// result. It can only be called once per machine.
func (m *Machine) Run(body func(*Proc)) (Result, error) {
	if m.Sys == nil {
		return Result{}, fmt.Errorf("machine: Run before SetMemSystem")
	}
	if m.ran {
		return Result{}, fmt.Errorf("machine: Run called twice")
	}
	m.ran = true
	for _, p := range m.Procs {
		p := p
		p.Ctx = m.Eng.SpawnOn(p.node, fmt.Sprintf("cpu%d", p.node), func(c *sim.Context) {
			body(p)
		})
	}
	if err := m.Eng.Run(); err != nil {
		return Result{}, err
	}
	var res Result
	var roiStart, roiEnd sim.Time
	for _, p := range m.Procs {
		if p.Ctx.Time() > res.Cycles {
			res.Cycles = p.Ctx.Time()
		}
		if p.roiStart > roiStart {
			roiStart = p.roiStart
		}
		if p.roiEnd > roiEnd {
			roiEnd = p.roiEnd
		}
	}
	res.ROICycles = res.Cycles
	if roiEnd > roiStart {
		res.ROICycles = roiEnd - roiStart
	}
	res.Counters = stats.NewCounters()
	for _, p := range m.Procs {
		p.foldCounters(res.Counters)
	}
	if m.Procs[0].obs != nil {
		res.ObsHashes = make([]uint64, len(m.Procs))
		res.ObsOps = make([]uint64, len(m.Procs))
		for i, p := range m.Procs {
			res.ObsHashes[i], res.ObsOps[i] = p.Observation()
		}
	}
	res.Counters.Merge(m.Sys.Counters())
	res.Net = m.Net.Stats()
	res.Counters.Add("net.packets.request", res.Net.VNets[network.VNetRequest].Packets)
	res.Counters.Add("net.packets.reply", res.Net.VNets[network.VNetReply].Packets)
	res.Counters.Add("net.queueing.request", res.Net.VNets[network.VNetRequest].QueueingCycles)
	res.Counters.Add("net.queueing.reply", res.Net.VNets[network.VNetReply].QueueingCycles)
	res.Counters.Add("net.max_queue.request", res.Net.VNets[network.VNetRequest].MaxQueueDepth)
	res.Counters.Add("net.max_queue.reply", res.Net.VNets[network.VNetReply].MaxQueueDepth)
	// Engine dispatch counters: how protocol activations were hosted.
	// These describe simulator mechanics, not simulated behaviour —
	// equivalence tests that compare across dispatch hosts (inline vs
	// goroutine) exclude them, while the serial-vs-sharded tests compare
	// them too, since each shard's sub-schedule is the serial schedule
	// restricted to its nodes.
	ds := m.Eng.DispatchStats()
	res.Counters.Add("engine.inline_dispatches", ds.InlineDispatches)
	res.Counters.Add("engine.inline_steps", ds.InlineSteps)
	res.Counters.Add("engine.goroutine_steps", ds.GoroutineSteps)
	res.Counters.Add("engine.inline_suspends", ds.InlineSuspends)
	res.Counters.Add("engine.goroutine_switches", ds.GoroutineSwitches)
	res.Counters.Add("engine.stepper_fallbacks", ds.StepperFallbacks)
	res.Counters.Add("engine.parks_avoided", ds.ParksAvoided)
	// Window-grant counters: how the sharded scheduler batched execution
	// windows. Unlike the dispatch counters above — identical for every
	// shard count — these depend on the shard count and window planner by
	// nature (a serial run grants none), so equivalence tests skip the
	// engine.window. prefix when comparing counter maps.
	ws := m.Eng.WindowStats()
	res.Counters.Add("engine.window.grants", ws.Grants)
	res.Counters.Add("engine.window.batched", ws.Batched)
	res.Counters.Add("engine.window.width_cycles", ws.WidthCycles)
	if ws.Grants > 0 {
		res.Counters.Add("engine.window.mean_width", ws.WidthCycles/ws.Grants)
	}
	return res, nil
}
