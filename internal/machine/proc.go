package machine

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/vm"
)

// maxRetries bounds how many times one reference may be retried after
// fault service before the run aborts; it exists to turn protocol
// livelock bugs into diagnostics instead of hangs.
const maxRetries = 10000

// ProcStats are the hot-path per-processor event counts, kept as plain
// fields so the reference path stays allocation- and hash-free.
type ProcStats struct {
	Loads       uint64
	Stores      uint64
	TLBMisses   uint64
	CacheMisses uint64
	Upgrades    uint64
	Evictions   uint64 // valid lines displaced by cache fills
	PageFaults  uint64
	BlockFaults uint64 // retries signalled by the memory system
	Computes    uint64 // cycles charged via Compute
	Barriers    uint64
}

// Proc is one simulated processor: the handle SPMD application code
// programs against. All of its operations charge simulated time.
type Proc struct {
	m    *Machine
	node int

	// Ctx is the processor's compute thread. Protocol code uses it to
	// suspend and resume the processor (Tempest's read/write fault and
	// resume semantics).
	Ctx *sim.Context

	// Flattened fast path: the node's TLB, cache, and page table, cached
	// at construction so a hit-path reference chases no Machine slices.
	tlb *cache.TLB
	cc  *cache.Cache
	pt  *vm.PageTable

	// One-entry translation cache, valid while the page table's
	// generation is unchanged. It only skips the page-table map lookup —
	// the TLB model (and its statistics) still sees every reference — so
	// timing and counters are bit-identical with or without a hit.
	trVPN uint64
	trGen uint64 // page-table generation trPTE was read at
	trPTE vm.PTE

	// roiStart/roiEnd are this processor's ROI marks; Run folds the
	// per-processor maxima, so the result matches the old machine-global
	// max while each mark is written only by its own context (shard).
	roiStart, roiEnd sim.Time

	// obs, when non-nil, accumulates the processor's application-visible
	// memory history (see Observation). Nil unless
	// Machine.EnableObservation ran; the data ops pay one nil check.
	obs *Observation

	Stats ProcStats
}

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// ID returns the processor's node number.
func (p *Proc) ID() int { return p.node }

// N returns the number of processors.
func (p *Proc) N() int { return p.m.Cfg.Nodes }

// Compute charges n cycles of non-memory instructions (the 1
// cycle/instruction model of paper §6).
func (p *Proc) Compute(n int) {
	p.Stats.Computes += uint64(n)
	p.Ctx.Advance(sim.Time(n))
}

// Barrier joins the machine-wide hardware barrier. Like memory
// references, it first absorbs any protocol-handler cycles stolen from
// this processor (software Tempest), so compute-only phases cannot end a
// run without paying for the handlers they hosted.
func (p *Proc) Barrier() {
	p.Stats.Barriers++
	p.Ctx.Advance(1)
	if st := p.m.stalls[p.node]; st > 0 {
		p.m.stalls[p.node] = 0
		p.Ctx.Advance(st)
	}
	p.m.Bar.Arrive(p.Ctx)
}

// ROIStart marks the beginning of the measured region. Call it on every
// processor immediately after a barrier; the latest caller defines the
// region start.
func (p *Proc) ROIStart() {
	if p.Ctx.Time() > p.roiStart {
		p.roiStart = p.Ctx.Time()
	}
}

// ROIEnd marks the end of the measured region; the latest caller defines
// the region end.
func (p *Proc) ROIEnd() {
	if p.Ctx.Time() > p.roiEnd {
		p.roiEnd = p.Ctx.Time()
	}
}

// access runs one tag-checked reference through the node: one instruction
// cycle, TLB, translation (with page-fault service), cache probe, and —
// on a miss or upgrade — the pluggable memory system. It returns the
// physical address the reference resolved to.
func (p *Proc) access(va mem.VA, write bool) mem.PA {
	p.Ctx.Advance(1)
	if st := p.m.stalls[p.node]; st > 0 {
		// Absorb protocol-handler cycles stolen from this processor
		// (software Tempest implementations only).
		p.m.stalls[p.node] = 0
		p.Ctx.Advance(st)
	}
	if p.m.PerRefOverhead > 0 && vm.IsShared(va) {
		// Inline software access check (software Tempest).
		p.Ctx.AdvanceAtomic(p.m.PerRefOverhead)
	}
	if write {
		p.Stats.Stores++
	} else {
		p.Stats.Loads++
	}
	cfg := &p.m.Cfg
	for attempt := 0; ; attempt++ {
		if attempt == maxRetries {
			panic(fmt.Sprintf("machine: cpu%d reference %#x (write=%v) retried %d times; protocol livelock?",
				p.node, va, write, maxRetries))
		}
		vpn := va.VPN()
		if !p.tlb.Lookup(vpn) {
			p.Stats.TLBMisses++
			p.Ctx.Advance(cfg.TLBMissCycles)
		}
		var pte vm.PTE
		if g := p.pt.Gen(); p.trGen == g && p.trVPN == vpn {
			pte = p.trPTE
		} else {
			var ok bool
			pte, ok = p.pt.Lookup(vpn)
			if !ok {
				p.Stats.PageFaults++
				p.m.Sys.PageFault(p, va, write)
				continue
			}
			p.trGen, p.trVPN, p.trPTE = g, vpn, pte
		}
		if write && !pte.Writable {
			p.Stats.PageFaults++
			p.m.Sys.PageFault(p, va, write)
			continue
		}
		pa := pte.PA.FrameBase() + mem.PA(va.PageOffset())
		hit, upgrade := p.cc.Probe(pa, write)
		if hit {
			return pa
		}
		if upgrade {
			p.Stats.Upgrades++
		} else {
			p.Stats.CacheMisses++
		}
		state := p.m.Sys.ServiceMiss(p, va, pa, pte, write, upgrade)
		if state == cache.LineInvalid {
			p.Stats.BlockFaults++
			continue // fault serviced; re-run the reference
		}
		if upgrade {
			if p.cc.Lookup(pa) == cache.LineInvalid {
				// The Shared line was invalidated while the upgrade
				// was in flight (another writer won): retry as a full
				// miss, as the bus would.
				continue
			}
			p.cc.Upgrade(pa)
		} else {
			victim, vs := p.cc.Fill(pa, state)
			if vs != cache.LineInvalid {
				p.Stats.Evictions++
				p.m.Sys.Evicted(p, victim, vs)
			}
		}
		return pa
	}
}

// ReadU64 performs a tag-checked 8-byte load from the shared or private
// address va and returns the value.
func (p *Proc) ReadU64(va mem.VA) uint64 {
	pa := p.access(va, false)
	v := p.m.Mems[pa.Node()].ReadU64(pa)
	if p.obs != nil {
		p.obs.note(obsRead, va, v)
	}
	return v
}

// WriteU64 performs a tag-checked 8-byte store.
func (p *Proc) WriteU64(va mem.VA, v uint64) {
	pa := p.access(va, true)
	p.m.Mems[pa.Node()].WriteU64(pa, v)
	if p.obs != nil {
		p.obs.note(obsWrite, va, v)
	}
}

// ReadF64 performs a tag-checked float64 load.
func (p *Proc) ReadF64(va mem.VA) float64 {
	pa := p.access(va, false)
	if p.obs != nil {
		p.obs.note(obsRead, va, p.m.Mems[pa.Node()].ReadU64(pa))
	}
	return p.m.Mems[pa.Node()].ReadF64(pa)
}

// WriteF64 performs a tag-checked float64 store.
func (p *Proc) WriteF64(va mem.VA, v float64) {
	pa := p.access(va, true)
	p.m.Mems[pa.Node()].WriteF64(pa, v)
	if p.obs != nil {
		p.obs.note(obsWrite, va, p.m.Mems[pa.Node()].ReadU64(pa))
	}
}

// Touch performs a tag-checked reference without transferring data; apps
// use it where only the coherence traffic of an access matters.
func (p *Proc) Touch(va mem.VA, write bool) {
	p.access(va, write)
	if p.obs != nil {
		kind := obsTouchRead
		if write {
			kind = obsTouchWrite
		}
		p.obs.note(kind, va, 0)
	}
}

func (p *Proc) foldCounters(c *stats.Counters) {
	c.Add("cpu.loads", p.Stats.Loads)
	c.Add("cpu.stores", p.Stats.Stores)
	c.Add("cpu.tlb_misses", p.Stats.TLBMisses)
	c.Add("cpu.cache_misses", p.Stats.CacheMisses)
	c.Add("cpu.upgrades", p.Stats.Upgrades)
	c.Add("cpu.evictions", p.Stats.Evictions)
	c.Add("cpu.page_faults", p.Stats.PageFaults)
	c.Add("cpu.block_fault_retries", p.Stats.BlockFaults)
	c.Add("cpu.compute_cycles", p.Stats.Computes)
	c.Add("cpu.barriers", p.Stats.Barriers)
}
