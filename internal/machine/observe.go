package machine

import "github.com/tempest-sim/tempest/internal/mem"

// Observation op kinds, folded into the hash with each reference.
const (
	obsRead uint8 = iota
	obsWrite
	obsTouchRead
	obsTouchWrite
)

// Observation is a processor's application-visible memory history,
// folded into a running hash: every tag-checked data operation the
// program performs (address, value, read/write) in program order. Two
// runs of the same data-race-free program under different protocols must
// produce identical per-processor observations — the differential
// harness's definition of "identical application-visible memory
// semantics". The hash is order-sensitive (splitmix-style chaining), so
// a reordered or altered read value changes it.
type Observation struct {
	hash uint64
	ops  uint64
}

func obsMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (o *Observation) note(kind uint8, va mem.VA, val uint64) {
	o.ops++
	h := o.hash
	h = obsMix(h ^ (uint64(kind) + 0x9e3779b97f4a7c15))
	h = obsMix(h ^ uint64(va))
	h = obsMix(h ^ val)
	o.hash = h
}

// EnableObservation attaches an Observation to every processor. Call
// before Run; the data-op hot paths pay only a nil check when
// observation is off (the default).
func (m *Machine) EnableObservation() {
	for _, p := range m.Procs {
		p.obs = &Observation{}
	}
}

// Observation returns the processor's current observation hash and the
// number of operations folded into it (zero values when observation is
// not enabled). Each processor's observation is written only by its own
// context, so mid-run reads are safe exactly where reading its memory
// would be: from the same shard, or machine-wide at a barrier release
// (sim.Barrier.OnRelease, every context parked).
func (p *Proc) Observation() (hash, ops uint64) {
	if p.obs == nil {
		return 0, 0
	}
	return p.obs.hash, p.obs.ops
}
