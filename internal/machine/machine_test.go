package machine

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/vm"
)

// flatSys is a minimal memory system: every shared page is eagerly homed
// and globally mapped; misses cost the local miss latency.
type flatSys struct {
	m *Machine
	c *stats.Counters
}

func newFlat(cfg Config) (*Machine, *flatSys) {
	m := New(cfg)
	s := &flatSys{m: m, c: stats.NewCounters()}
	m.SetMemSystem(s)
	return m, s
}

func (s *flatSys) Name() string              { return "flat" }
func (s *flatSys) Counters() *stats.Counters { return s.c }
func (s *flatSys) SetupSegment(seg *vm.Segment) {
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + mem.VA(i*mem.PageSize)
		home := s.m.VM.Home(va)
		pa, err := s.m.Mems[home].AllocFrame(mem.TagReadWrite)
		if err != nil {
			panic(err)
		}
		for n := 0; n < s.m.Cfg.Nodes; n++ {
			s.m.VM.Table(n).Map(va.VPN(), vm.PTE{PA: pa, Writable: true, Mode: seg.Mode})
		}
	}
}
func (s *flatSys) PageFault(p *Proc, va mem.VA, write bool) {
	panic("flatSys: page fault")
}
func (s *flatSys) ServiceMiss(p *Proc, va mem.VA, pa mem.PA, pte vm.PTE, write, upgrade bool) cache.LineState {
	p.Ctx.Advance(s.m.Cfg.LocalMissCycles)
	s.c.Inc("flat.misses")
	return cache.LineExclusive
}
func (s *flatSys) Evicted(p *Proc, victim mem.PA, state cache.LineState) {}

// TestTable2Defaults pins the paper's Table 2 simulation parameters.
func TestTable2Defaults(t *testing.T) {
	cfg := DefaultConfig()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"nodes", uint64(cfg.Nodes), 32},
		{"cache ways", uint64(cfg.CacheWays), 4},
		{"block size", uint64(cfg.BlockSize), 32},
		{"TLB entries", uint64(cfg.TLBEntries), 64},
		{"page size", uint64(mem.PageSize), 4096},
		{"local miss", uint64(cfg.LocalMissCycles), 29},
		{"TLB miss", uint64(cfg.TLBMissCycles), 25},
		{"network latency", uint64(cfg.NetLatency), 11},
		{"barrier latency", uint64(cfg.BarrierLatency), 11},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table 2)", c.name, c.got, c.want)
		}
	}
}

func TestRunRequiresMemSystem(t *testing.T) {
	m := New(Config{Nodes: 1, CacheSize: 4096})
	if _, err := m.Run(func(p *Proc) {}); err == nil {
		t.Fatal("Run without a memory system must fail")
	}
}

func TestRunTwiceFails(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 1, CacheSize: 4096})
	if _, err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {}); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestAllocSharedNormalisesMode(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 2, CacheSize: 4096})
	seg := m.AllocShared("x", 100, vm.RoundRobin{}, 0)
	if seg.Mode != vm.ModeUser {
		t.Fatalf("mode = %d, want normalised to %d", seg.Mode, vm.ModeUser)
	}
}

func TestReferencePathCharges(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 1, CacheSize: 4096})
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res, err := m.Run(func(p *Proc) {
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(0)) // 1 + TLB 25 + miss 29
		if d := p.Ctx.Time() - t0; d != 55 {
			t.Errorf("cold read = %d, want 55", d)
		}
		t0 = p.Ctx.Time()
		p.ReadU64(seg.At(8)) // same block: 1
		if d := p.Ctx.Time() - t0; d != 1 {
			t.Errorf("hit = %d, want 1", d)
		}
		p.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("cpu.loads") != 2 {
		t.Errorf("loads = %d", res.Counters.Get("cpu.loads"))
	}
	if res.Counters.Get("cpu.compute_cycles") != 10 {
		t.Errorf("compute = %d", res.Counters.Get("cpu.compute_cycles"))
	}
	if res.Counters.Get("flat.misses") != 1 {
		t.Errorf("misses = %d", res.Counters.Get("flat.misses"))
	}
}

func TestROIWindow(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 2, CacheSize: 4096})
	res, err := m.Run(func(p *Proc) {
		p.Compute(100) // setup, not measured
		p.Barrier()
		p.ROIStart()
		p.Compute(50)
		p.ROIEnd()
		p.Compute(500) // teardown, not measured
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ROICycles >= res.Cycles {
		t.Fatalf("ROI %d not smaller than total %d", res.ROICycles, res.Cycles)
	}
	if res.ROICycles != 50 {
		t.Fatalf("ROI = %d, want 50", res.ROICycles)
	}
}

func TestBarrierLatencyCharged(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 2, CacheSize: 4096})
	if _, err := m.Run(func(p *Proc) {
		t0 := p.Ctx.Time()
		p.Barrier()
		// 1 instruction + 11 release latency (both arrive at ~0).
		if d := p.Ctx.Time() - t0; d < 12 {
			t.Errorf("barrier cost %d, want >= 12", d)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTouchChargesWithoutData(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 1, CacheSize: 4096})
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res, err := m.Run(func(p *Proc) {
		p.Touch(seg.At(0), true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("cpu.stores") != 1 {
		t.Errorf("stores = %d, want 1", res.Counters.Get("cpu.stores"))
	}
}

func TestPrivateMemoryIsPerNode(t *testing.T) {
	m, _ := newFlat(Config{Nodes: 2, CacheSize: 4096})
	va0 := m.AllocPrivate(0, 64)
	va1 := m.AllocPrivate(1, 64)
	if _, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.WriteU64(va0, 111)
		} else {
			p.WriteU64(va1, 222)
		}
	}); err != nil {
		t.Fatal(err)
	}
	pa0, _, _ := m.VM.Translate(0, va0)
	pa1, _, _ := m.VM.Translate(1, va1)
	if m.Mems[0].ReadU64(pa0) != 111 || m.Mems[1].ReadU64(pa1) != 222 {
		t.Fatal("private values wrong")
	}
}

func TestLivelockGuardFires(t *testing.T) {
	m := New(Config{Nodes: 1, CacheSize: 4096})
	s := &retrySys{flatSys{m: m, c: stats.NewCounters()}}
	m.SetMemSystem(s)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	_, err := m.Run(func(p *Proc) {
		p.ReadU64(seg.At(0))
	})
	if err == nil {
		t.Fatal("expected livelock diagnostic")
	}
}

// retrySys always asks for a retry, triggering the livelock guard.
type retrySys struct{ flatSys }

func (s *retrySys) ServiceMiss(p *Proc, va mem.VA, pa mem.PA, pte vm.PTE, write, upgrade bool) cache.LineState {
	p.Ctx.Advance(1)
	return cache.LineInvalid
}
