// Package fleet distributes sweep points across worker processes: a
// coordinator leases points to workers over a versioned line protocol,
// heartbeats the leases, reassigns points on worker loss or lease
// expiry, retries with capped backoff, deduplicates double-completions
// (first valid result per point key wins), and verifies every remote
// result against the result cache's canonical key/digest machinery
// before accepting it. The coordinator implements harness.Executor, so
// every sweep runs on a fleet exactly as it runs on the in-process
// pool — bit-identically, by the repo's determinism guarantee.
package fleet

import "fmt"

// Error is the package's structured error: every protocol violation,
// verification failure, and exhausted retry surfaces as one, naming
// the operation, the peer, and the sweep point involved.
type Error struct {
	// Op is the failing operation ("decode", "handshake", "lease",
	// "verify", "submit", ...).
	Op string
	// Worker names the peer connection when one is involved.
	Worker string
	// Point labels the sweep point when one is involved.
	Point string
	// Msg describes the failure.
	Msg string
}

func (e *Error) Error() string {
	s := "fleet: " + e.Op
	if e.Worker != "" {
		s += " " + e.Worker
	}
	if e.Point != "" {
		s += " [" + e.Point + "]"
	}
	return s + ": " + e.Msg
}

// errf builds an *Error in place.
func errf(op, worker, point, format string, args ...any) *Error {
	return &Error{Op: op, Worker: worker, Point: point, Msg: fmt.Sprintf(format, args...)}
}
