package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/resultcache"
)

// tinyPoint is a fast, distinct-per-seed sweep point.
func tinyPoint(seed uint64) harness.Point {
	ecfg := em3d.Tiny()
	ecfg.Seed = seed
	cfg := machine.DefaultConfig()
	cfg.Nodes = 4
	return harness.Point{Cfg: cfg, System: harness.SysStache, EM3D: &ecfg}
}

func memCache(t *testing.T) harness.CacheParams {
	t.Helper()
	cp, err := harness.NewCacheParams("", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// fastOpts is a coordinator tuned for test-speed fault handling.
func fastOpts(cp harness.CacheParams) CoordinatorOptions {
	return CoordinatorOptions{
		Cache:       cp,
		LeaseTTL:    60 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
	}
}

func newTestCoordinator(t *testing.T, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	if testing.Verbose() {
		opts.Logf = t.Logf
	}
	co := NewCoordinator(opts)
	t.Cleanup(func() { co.Close() })
	return co
}

// startWorker attaches an in-process worker over a pipe.
func startWorker(t *testing.T, co *Coordinator, opts WorkerOptions) {
	t.Helper()
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 10 * time.Millisecond
	}
	a, b := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go co.ServeConn(a)
	go RunWorker(ctx, b, opts)
}

// script is a hand-driven protocol peer for fault injection.
type script struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

// connectScript opens a raw connection to the coordinator and completes
// the handshake in the given role.
func connectScript(t *testing.T, co *Coordinator, role string) *script {
	t.Helper()
	a, b := net.Pipe()
	go co.ServeConn(a)
	b.SetDeadline(time.Now().Add(10 * time.Second))
	t.Cleanup(func() { b.Close() })
	s := &script{t: t, conn: b, br: bufio.NewReader(b)}
	s.send(Msg{Verb: "hello", Args: []string{Proto, role, harness.CodeID()}})
	if m := s.read(); m.Verb != "welcome" {
		t.Fatalf("handshake: got %s, want welcome", m.Verb)
	}
	return s
}

func (s *script) send(m Msg) {
	s.t.Helper()
	if _, err := s.conn.Write(m.Encode()); err != nil {
		s.t.Fatalf("script write: %v", err)
	}
}

func (s *script) read() Msg {
	s.t.Helper()
	m, err := ReadMsg(s.br)
	if err != nil {
		s.t.Fatalf("script read: %v", err)
	}
	return m
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sameRun compares the simulated content of two results, ignoring the
// engine.* counters a local fresh run carries and a wire entry (by
// design) does not.
func sameRun(t *testing.T, label string, got, want harness.RunResult) {
	t.Helper()
	if got.System != want.System || got.App != want.App {
		t.Errorf("%s: identity differs: %s/%s vs %s/%s", label, got.System, got.App, want.System, want.App)
	}
	if got.Res.Cycles != want.Res.Cycles || got.Res.ROICycles != want.Res.ROICycles {
		t.Errorf("%s: cycles differ: %d/%d vs %d/%d", label,
			got.Res.Cycles, got.Res.ROICycles, want.Res.Cycles, want.Res.ROICycles)
	}
	ctrs := func(rr harness.RunResult) map[string]uint64 {
		m := make(map[string]uint64)
		for _, name := range rr.Res.Counters.Names() {
			if !strings.HasPrefix(name, "engine.") {
				m[name] = rr.Res.Counters.Get(name)
			}
		}
		return m
	}
	if g, w := ctrs(got), ctrs(want); !reflect.DeepEqual(g, w) {
		t.Errorf("%s: counters differ:\n%v\n%v", label, g, w)
	}
	if !reflect.DeepEqual(got.Res.Net, want.Res.Net) {
		t.Errorf("%s: network stats differ", label)
	}
}

// localBaseline runs the same points on the in-process pool.
func localBaseline(t *testing.T, pts []harness.Point) []harness.PointResult {
	t.Helper()
	res, err := harness.LocalExecutor{Workers: 2}.Submit(context.Background(), harness.Batch{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFleetMatchesLocal(t *testing.T) {
	pts := []harness.Point{tinyPoint(1), tinyPoint(2), tinyPoint(3), tinyPoint(4)}
	co := newTestCoordinator(t, fastOpts(memCache(t)))
	startWorker(t, co, WorkerOptions{})
	startWorker(t, co, WorkerOptions{})
	got, err := co.Submit(context.Background(), harness.Batch{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	want := localBaseline(t, pts)
	for i := range pts {
		sameRun(t, pts[i].Label(), got[i].RunResult, want[i].RunResult)
	}
	if s := co.Stats(); s.Completed != 4 || s.Failed != 0 {
		t.Errorf("stats: %+v", s)
	}
}

// TestFleetFaultPaths drives each injected failure through a scripted
// first worker and checks the sweep still converges, on a healthy
// second worker, to the same results the local pool produces.
func TestFleetFaultPaths(t *testing.T) {
	pts := []harness.Point{tinyPoint(11), tinyPoint(12), tinyPoint(13)}
	want := localBaseline(t, pts)

	divergent := func() []byte {
		e := &resultcache.Entry{Code: harness.CodeID(), System: "typhoon-stache", App: "em3d",
			Cycles: 1, ROI: 1, Counters: map[string]uint64{}}
		e.Key = resultcache.Key{0xde, 0xad}
		return e.Encode()
	}

	cases := []struct {
		name string
		// respond handles one lease on the scripted worker; returning
		// false stops the script (connection stays open but silent).
		respond func(s *script, id string, payload []byte) bool
		check   func(t *testing.T, s Stats)
	}{
		{
			name: "kill-worker-mid-lease",
			respond: func(s *script, id string, payload []byte) bool {
				s.conn.Close()
				return false
			},
			check: func(t *testing.T, s Stats) {
				if s.Reassigned == 0 {
					t.Errorf("no reassignment recorded: %+v", s)
				}
			},
		},
		{
			name: "lease-expiry-under-stalled-worker",
			respond: func(s *script, id string, payload []byte) bool {
				return false // hold the lease silently; no heartbeat, no result
			},
			check: func(t *testing.T, s Stats) {
				if s.Expired == 0 {
					t.Errorf("no expiry recorded: %+v", s)
				}
			},
		},
		{
			name: "corrupted-result",
			respond: func(s *script, id string, payload []byte) bool {
				s.send(Msg{Verb: "result", Args: []string{id}, Payload: []byte("not an entry")})
				return false
			},
			check: func(t *testing.T, s Stats) {
				if s.Rejected == 0 {
					t.Errorf("no rejection recorded: %+v", s)
				}
			},
		},
		{
			name: "divergent-result",
			respond: func(s *script, id string, payload []byte) bool {
				s.send(Msg{Verb: "result", Args: []string{id}, Payload: divergent()})
				return false
			},
			check: func(t *testing.T, s Stats) {
				if s.Rejected == 0 {
					t.Errorf("no rejection recorded: %+v", s)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			co := newTestCoordinator(t, fastOpts(memCache(t)))
			s := connectScript(t, co, "worker")
			s.send(Msg{Verb: "ready", Args: []string{"1"}})
			// The scripted worker must hold a lease before the healthy
			// worker joins, so the injected fault is actually exercised.
			leased := make(chan struct{})
			go func() {
				m, err := ReadMsg(s.br)
				if err != nil || m.Verb != "lease" {
					close(leased)
					return
				}
				close(leased)
				tc.respond(s, m.Args[0], m.Payload)
			}()
			results := make(chan error, 1)
			var got []harness.PointResult
			go func() {
				var err error
				got, err = co.Submit(context.Background(), harness.Batch{Points: pts})
				results <- err
			}()
			<-leased
			startWorker(t, co, WorkerOptions{Slots: 2})
			if err := <-results; err != nil {
				t.Fatal(err)
			}
			for i := range pts {
				sameRun(t, pts[i].Label(), got[i].RunResult, want[i].RunResult)
			}
			tc.check(t, co.Stats())
		})
	}
}

// TestFleetDuplicateCompletion has a slow worker answer a lease the
// coordinator already re-assigned and saw completed: the late valid
// result is counted as a duplicate and the first result stands.
func TestFleetDuplicateCompletion(t *testing.T) {
	pt := tinyPoint(21)
	co := newTestCoordinator(t, fastOpts(memCache(t)))
	s := connectScript(t, co, "worker")
	s.send(Msg{Verb: "ready", Args: []string{"1"}})
	done := make(chan error, 1)
	go func() {
		_, err := co.Submit(context.Background(), harness.Batch{Points: []harness.Point{pt}})
		done <- err
	}()
	m := s.read()
	if m.Verb != "lease" {
		t.Fatalf("got %s, want lease", m.Verb)
	}
	// Stall past the TTL, let a healthy worker complete the point...
	waitFor(t, "lease expiry", func() bool { return co.Stats().Expired >= 1 })
	startWorker(t, co, WorkerOptions{})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// ...then deliver the stalled worker's (valid) result late.
	leasedPt, err := harness.DecodePoint(m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	_, entry, err := harness.RunPointEntry(harness.CacheParams{}, leasedPt)
	if err != nil {
		t.Fatal(err)
	}
	s.send(Msg{Verb: "result", Args: []string{m.Args[0]}, Payload: entry.Encode()})
	waitFor(t, "duplicate accounting", func() bool { return co.Stats().Duplicates >= 1 })
	if s := co.Stats(); s.Completed != 1 {
		t.Errorf("first valid result should win exactly once: %+v", s)
	}
}

// TestFleetMaxAttemptsExhausted: every worker returns garbage, so the
// point burns its lease budget and the sweep fails with a structured
// error naming the point.
func TestFleetMaxAttemptsExhausted(t *testing.T) {
	pt := tinyPoint(31)
	opts := fastOpts(memCache(t))
	opts.MaxAttempts = 2
	co := newTestCoordinator(t, opts)
	for i := 0; i < 2; i++ {
		s := connectScript(t, co, "worker")
		s.send(Msg{Verb: "ready", Args: []string{"1"}})
		go func(s *script) {
			m, err := ReadMsg(s.br)
			if err != nil || m.Verb != "lease" {
				return
			}
			s.send(Msg{Verb: "result", Args: []string{m.Args[0]}, Payload: []byte("garbage")})
		}(s)
	}
	_, err := co.Submit(context.Background(), harness.Batch{Points: []harness.Point{pt}})
	if err == nil {
		t.Fatal("sweep succeeded on garbage results")
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err = %T %v, want *fleet.Error", err, err)
	}
	if !strings.Contains(err.Error(), "gave up after 2 attempts") || !strings.Contains(err.Error(), pt.Label()) {
		t.Errorf("error should name the point and the exhausted budget: %v", err)
	}
}

func TestFleetObservedPointsRejected(t *testing.T) {
	pt := tinyPoint(41)
	pt.Observed = true
	pt.NoCache = true
	co := newTestCoordinator(t, fastOpts(harness.CacheParams{}))
	if _, err := co.Submit(context.Background(), harness.Batch{Points: []harness.Point{pt}}); err == nil ||
		!strings.Contains(err.Error(), "local-only") {
		t.Errorf("coordinator: %v", err)
	}
	// The client rejects before even dialing.
	cl := &Client{Addr: "127.0.0.1:1"}
	if _, err := cl.Submit(context.Background(), harness.Batch{Points: []harness.Point{pt}}); err == nil ||
		!strings.Contains(err.Error(), "local-only") {
		t.Errorf("client: %v", err)
	}
}

func TestFleetHandshakeRejects(t *testing.T) {
	co := newTestCoordinator(t, fastOpts(harness.CacheParams{}))
	cases := []struct {
		name  string
		hello Msg
		want  string
	}{
		{"protocol skew", Msg{Verb: "hello", Args: []string{"tempest-fleet/9", "worker", harness.CodeID()}}, "protocol mismatch"},
		{"code skew", Msg{Verb: "hello", Args: []string{Proto, "worker", "0123456789abcdef"}}, "code digest mismatch"},
		{"unknown role", Msg{Verb: "hello", Args: []string{Proto, "gopher", harness.CodeID()}}, "unknown role"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := net.Pipe()
			go co.ServeConn(a)
			defer b.Close()
			b.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := b.Write(tc.hello.Encode()); err != nil {
				t.Fatal(err)
			}
			m, err := ReadMsg(bufio.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			if m.Verb != "reject" || !strings.Contains(string(m.Payload), tc.want) {
				t.Errorf("got %s %q, want reject mentioning %q", m.Verb, m.Payload, tc.want)
			}
		})
	}
}

// TestFleetCacheHitsServeWithoutLeasing: a warm coordinator cache
// answers a whole batch with zero leases — the warm-cache compose the
// flags are documented to support.
func TestFleetCacheHitsServeWithoutLeasing(t *testing.T) {
	pts := []harness.Point{tinyPoint(51), tinyPoint(52)}
	co := newTestCoordinator(t, fastOpts(memCache(t)))
	startWorker(t, co, WorkerOptions{})
	if _, err := co.Submit(context.Background(), harness.Batch{Points: pts}); err != nil {
		t.Fatal(err)
	}
	leases := co.Stats().Leases
	if _, err := co.Submit(context.Background(), harness.Batch{Points: pts}); err != nil {
		t.Fatal(err)
	}
	s := co.Stats()
	if s.Leases != leases {
		t.Errorf("warm resubmit leased points: %+v", s)
	}
	if s.CacheHits < 2 {
		t.Errorf("warm resubmit should be all cache hits: %+v", s)
	}
}

// TestFleetDedupsConcurrentIdenticalPoints: two ungrouped identical
// points in one batch share a single lease (in-flight dedup by point
// key); a grouped identical pair runs sequentially, so the second is a
// cache hit instead.
func TestFleetDedupsConcurrentIdenticalPoints(t *testing.T) {
	pt := tinyPoint(61)
	co := newTestCoordinator(t, fastOpts(memCache(t)))
	startWorker(t, co, WorkerOptions{Slots: 2})
	got, err := co.Submit(context.Background(), harness.Batch{Points: []harness.Point{pt, pt}})
	if err != nil {
		t.Fatal(err)
	}
	if s := co.Stats(); s.Leases != 1 || s.Completed != 1 {
		t.Errorf("identical points should share one lease: %+v", s)
	}
	sameRun(t, "dedup pair", got[0].RunResult, got[1].RunResult)

	g := tinyPoint(62)
	g.Group = "seq"
	co2 := newTestCoordinator(t, fastOpts(memCache(t)))
	startWorker(t, co2, WorkerOptions{Slots: 2})
	if _, err := co2.Submit(context.Background(), harness.Batch{Points: []harness.Point{g, g}}); err != nil {
		t.Fatal(err)
	}
	if s := co2.Stats(); s.Leases != 1 || s.CacheHits != 1 {
		t.Errorf("grouped pair should lease once then hit the cache: %+v", s)
	}
}

// TestFleetPointTimeout: the coordinator forwards the batch's point
// timeout; the worker enforces it and the sweep fails with an error
// naming the point.
func TestFleetPointTimeout(t *testing.T) {
	ecfg := em3d.Tiny()
	ecfg.Iters = 100000 // long enough to trip a 1ms budget reliably
	cfg := machine.DefaultConfig()
	cfg.Nodes = 4
	pt := harness.Point{Cfg: cfg, System: harness.SysStache, EM3D: &ecfg}
	co := newTestCoordinator(t, fastOpts(harness.CacheParams{}))
	startWorker(t, co, WorkerOptions{})
	_, err := co.Submit(context.Background(), harness.Batch{
		Points:       []harness.Point{pt},
		PointTimeout: time.Millisecond,
	})
	if err == nil {
		t.Fatal("timeout did not fire")
	}
	if !strings.Contains(err.Error(), pt.Label()) || !strings.Contains(err.Error(), "timeout") {
		t.Errorf("error should name the point and the timeout: %v", err)
	}
}

// TestFleetClientEndToEnd exercises the full remote-submission path
// over a Unix socket: client -> coordinator -> worker and back, with
// progress streaming and client-side verification.
func TestFleetClientEndToEnd(t *testing.T) {
	pts := []harness.Point{tinyPoint(71), tinyPoint(72), tinyPoint(73)}
	want := localBaseline(t, pts)
	sock := filepath.Join(t.TempDir(), "fleet.sock")
	exec, closer, err := NewExecutor("", sock, memCache(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closer() })
	co := exec.(*Coordinator)
	wconn, err := DialRetry(sock, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go RunWorker(ctx, wconn, WorkerOptions{Slots: 2, HeartbeatEvery: 10 * time.Millisecond})

	var progressed atomic.Int32
	cl := &Client{Addr: sock}
	got, err := cl.Submit(context.Background(), harness.Batch{
		Points:   pts,
		Progress: func(done, total int) { progressed.Store(int32(done)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		sameRun(t, pts[i].Label(), got[i].RunResult, want[i].RunResult)
	}
	if progressed.Load() != int32(len(pts)) {
		t.Errorf("progress reached %d, want %d", progressed.Load(), len(pts))
	}
	if s := co.Stats(); s.Completed != uint64(len(pts)) {
		t.Errorf("stats: %+v", s)
	}
}

// TestFleetTCPEndToEnd repeats the remote path over TCP loopback.
func TestFleetTCPEndToEnd(t *testing.T) {
	pt := tinyPoint(81)
	co := newTestCoordinator(t, fastOpts(memCache(t)))
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go co.Serve(ln)
	addr := ln.Addr().String()
	wconn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go RunWorker(ctx, wconn, WorkerOptions{})
	got, err := (&Client{Addr: addr}).Submit(context.Background(), harness.Batch{Points: []harness.Point{pt}})
	if err != nil {
		t.Fatal(err)
	}
	want := localBaseline(t, []harness.Point{pt})
	sameRun(t, pt.Label(), got[0].RunResult, want[0].RunResult)
}

// TestNewExecutorFlagPairs pins the flag-wiring contract.
func TestNewExecutorFlagPairs(t *testing.T) {
	if _, _, err := NewExecutor("a:1", "b:2", harness.CacheParams{}, nil); err == nil {
		t.Error("both flags set should be rejected")
	}
	exec, closer, err := NewExecutor("", "", harness.CacheParams{}, nil)
	if err != nil || exec != nil {
		t.Errorf("no flags: exec=%v err=%v, want nil executor", exec, err)
	}
	closer()
	exec, closer, err = NewExecutor("somewhere:1", "", harness.CacheParams{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exec.(*Client); !ok {
		t.Errorf("fleet addr should build a *Client, got %T", exec)
	}
	closer()
}

// TestFleetWorkerLogs smoke-tests the fmt verbs in log lines (a
// mis-paired Logf panics under test via t.Logf's vet pass otherwise
// going unnoticed).
func TestFleetWorkerLogs(t *testing.T) {
	pt := tinyPoint(91)
	co := newTestCoordinator(t, CoordinatorOptions{
		Cache: memCache(t),
		Logf:  func(format string, args ...any) { _ = fmt.Sprintf(format, args...) },
	})
	a, b := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go co.ServeConn(a)
	go RunWorker(ctx, b, WorkerOptions{Logf: func(format string, args ...any) { _ = fmt.Sprintf(format, args...) }})
	if _, err := co.Submit(context.Background(), harness.Batch{Points: []harness.Point{pt}}); err != nil {
		t.Fatal(err)
	}
}
