package fleet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// sampleMsgs covers every verb in the vocabulary.
func sampleMsgs() []Msg {
	return []Msg{
		{Verb: "hello", Args: []string{Proto, "worker", "abc123"}},
		{Verb: "welcome", Args: []string{"abc123"}},
		{Verb: "reject", Payload: []byte("no thanks")},
		{Verb: "ready", Args: []string{"2"}},
		{Verb: "lease", Args: []string{"1", "0"}, Payload: []byte("tempest-point v1\n")},
		{Verb: "heartbeat", Args: []string{"7"}},
		{Verb: "result", Args: []string{"1"}, Payload: []byte("abc")},
		{Verb: "fail", Args: []string{"2"}, Payload: []byte("oops")},
		{Verb: "submit", Args: []string{"3", "1000"}},
		{Verb: "point", Args: []string{"0"}, Payload: []byte("hi")},
		{Verb: "end"},
		{Verb: "prog", Args: []string{"1", "3"}},
		{Verb: "done", Args: []string{"0"}, Payload: []byte{}},
		{Verb: "perr", Args: []string{"0"}, Payload: []byte("bad")},
		{Verb: "complete"},
		{Verb: "bye"},
	}
}

func TestWireRoundTrip(t *testing.T) {
	// Each message individually, then the whole conversation as one
	// stream — framing must self-delimit.
	var stream bytes.Buffer
	for _, m := range sampleMsgs() {
		stream.Write(m.Encode())
	}
	br := bufio.NewReader(&stream)
	for i, want := range sampleMsgs() {
		got, err := ReadMsg(br)
		if err != nil {
			t.Fatalf("msg %d (%s): %v", i, want.Verb, err)
		}
		if got.Verb != want.Verb || !reflect.DeepEqual(got.Args, want.Args) || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("msg %d round trip changed: %+v -> %+v", i, want, got)
		}
		if !bytes.Equal(got.Encode(), want.Encode()) {
			t.Errorf("msg %d re-encode differs", i)
		}
	}
	if _, err := ReadMsg(br); err != io.EOF {
		t.Errorf("stream end: got %v, want io.EOF", err)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown verb":       "frobnicate 1\n",
		"missing args":       "hello tempest-fleet/1\n",
		"extra args":         "end now\n",
		"double space":       "ready  2\n",
		"trailing space":     "ready 2 \n",
		"leading space":      " ready 2\n",
		"noncanonical len":   "result 1 03\nabc\n",
		"negative length":    "result 1 -3\nabc\n",
		"huge payload":       "result 1 999999999999\n",
		"unterminated":       "result 1 3\nabcX",
		"carriage return":    "ready 2\r\n",
		"oversized line":     "ready " + strings.Repeat("9", maxLine) + "\n",
		"empty line":         "\n",
		"payload no newline": "result 1 3\nab",
	}
	for name, in := range cases {
		_, err := ReadMsg(bufio.NewReader(strings.NewReader(in)))
		if err == nil {
			t.Errorf("%s: decoded without error", name)
			continue
		}
		var fe *Error
		if !errors.As(err, &fe) && err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Errorf("%s: unstructured error %T: %v", name, err, err)
		}
	}
}

func TestErrorFormat(t *testing.T) {
	e := errf("verify", "worker-1", "em3d/typhoon-stache/4K", "key mismatch")
	for _, want := range []string{"fleet:", "verify", "worker-1", "em3d/typhoon-stache/4K", "key mismatch"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
}

// FuzzFleetMessage pins that decoding is total: arbitrary bytes produce
// either a structured *Error (or clean EOF), or a message whose
// canonical re-encoding is exactly the bytes consumed — never a panic,
// never a lossy parse.
func FuzzFleetMessage(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte("frobnicate 1\n"))
	f.Add([]byte("result 1 99\nabc\n"))
	f.Add([]byte("ready 007\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMsg(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) && err != io.EOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			return
		}
		enc := m.Encode() // must not panic on anything ReadMsg accepted
		if !bytes.HasPrefix(data, enc) {
			t.Fatalf("re-encode is not the consumed prefix:\ninput %q\nenc   %q", data, enc)
		}
	})
}
