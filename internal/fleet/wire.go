package fleet

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Proto is the protocol version string exchanged in the handshake.
// Any mismatch is rejected before work is leased: a mixed-version
// fleet fails loudly at connect time, never silently mid-sweep.
const Proto = "tempest-fleet/1"

// Wire format: one message is a single line of space-separated tokens
//
//	verb arg1 ... argN [payloadLen]\n
//
// followed, for payload-bearing verbs, by exactly payloadLen raw bytes
// and a trailing '\n'. Lines are capped at maxLine bytes and payloads
// at maxPayload; the payload length is the line's final token and must
// be a canonical decimal. Tokens are non-empty and contain neither
// spaces nor control characters, so Encode∘ReadMsg is the identity on
// every valid message — the property FuzzFleetMessage pins.
const (
	maxLine    = 4096
	maxPayload = 16 << 20
)

// verbSpec fixes each verb's argument count (excluding the payload
// length token) and whether it carries a payload.
type verbSpec struct {
	args    int
	payload bool
}

// verbs is the full protocol vocabulary.
//
//	worker → coordinator: hello, ready, heartbeat, result, fail, bye
//	coordinator → worker: welcome, reject, lease, bye
//	client → coordinator: hello, submit, point, end, bye
//	coordinator → client: welcome, reject, prog, done, perr, complete
var verbs = map[string]verbSpec{
	"hello":     {args: 3, payload: false}, // hello <proto> <role> <code>
	"welcome":   {args: 1, payload: false}, // welcome <code>
	"reject":    {args: 0, payload: true},  // reject <len> + reason
	"ready":     {args: 1, payload: false}, // ready <slots>
	"lease":     {args: 2, payload: true},  // lease <id> <timeout-ms> <len> + point
	"heartbeat": {args: 1, payload: false}, // heartbeat <id>
	"result":    {args: 1, payload: true},  // result <id> <len> + cache entry
	"fail":      {args: 1, payload: true},  // fail <id> <len> + error text
	"submit":    {args: 2, payload: false}, // submit <n> <timeout-ms>
	"point":     {args: 1, payload: true},  // point <index> <len> + point
	"end":       {args: 0, payload: false}, // end (batch fully sent)
	"prog":      {args: 2, payload: false}, // prog <done> <total>
	"done":      {args: 1, payload: true},  // done <index> <len> + cache entry
	"perr":      {args: 1, payload: true},  // perr <index> <len> + error text
	"complete":  {args: 0, payload: false}, // complete (batch finished)
	"bye":       {args: 0, payload: false}, // bye (orderly close)
}

// Msg is one decoded protocol message.
type Msg struct {
	Verb    string
	Args    []string
	Payload []byte
}

// validToken reports whether s may appear as a wire token: non-empty,
// no separators, no control bytes.
func validToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] == 0x7f {
			return false
		}
	}
	return true
}

// Encode renders the message in canonical wire form. It panics on a
// message this package could not itself have produced (unknown verb,
// wrong arity, invalid token) — encoding is always of locally built
// messages, so that is a programming error, not input.
func (m Msg) Encode() []byte {
	spec, ok := verbs[m.Verb]
	if !ok {
		panic("fleet: encode: unknown verb " + m.Verb)
	}
	if len(m.Args) != spec.args {
		panic(fmt.Sprintf("fleet: encode: %s takes %d args, got %d", m.Verb, spec.args, len(m.Args)))
	}
	if !spec.payload && m.Payload != nil {
		panic("fleet: encode: " + m.Verb + " carries no payload")
	}
	var b bytes.Buffer
	b.WriteString(m.Verb)
	for _, a := range m.Args {
		if !validToken(a) {
			panic(fmt.Sprintf("fleet: encode: invalid %s argument %q", m.Verb, a))
		}
		b.WriteByte(' ')
		b.WriteString(a)
	}
	if spec.payload {
		if len(m.Payload) > maxPayload {
			panic(fmt.Sprintf("fleet: encode: %s payload of %d bytes exceeds cap", m.Verb, len(m.Payload)))
		}
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(len(m.Payload)))
	}
	b.WriteByte('\n')
	if b.Len() > maxLine {
		panic(fmt.Sprintf("fleet: encode: %s line of %d bytes exceeds cap", m.Verb, b.Len()))
	}
	if spec.payload {
		b.Write(m.Payload)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// readLine reads one '\n'-terminated line of at most maxLine bytes
// (newline included). io.EOF at a message boundary is returned as-is;
// EOF mid-line becomes io.ErrUnexpectedEOF.
func readLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		b, err := r.ReadByte()
		if err == io.EOF {
			if len(line) == 0 {
				return "", io.EOF
			}
			return "", io.ErrUnexpectedEOF
		}
		if err != nil {
			return "", err
		}
		if b == '\n' {
			return string(line), nil
		}
		line = append(line, b)
		if len(line) >= maxLine {
			return "", errf("decode", "", "", "line exceeds %d bytes", maxLine)
		}
	}
}

// canonUint parses a canonical decimal: digits only, no leading zeros
// (except "0" itself), within cap.
func canonUint(s string, limit uint64) (uint64, error) {
	if s == "" || (len(s) > 1 && s[0] == '0') {
		return 0, fmt.Errorf("non-canonical integer %q", s)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("non-canonical integer %q", s)
	}
	if v > limit {
		return 0, fmt.Errorf("%d exceeds cap %d", v, limit)
	}
	return v, nil
}

// ReadMsg decodes the next message from r. Decoding is total: every
// input yields a Msg, a structured *Error, or io.EOF / io.ErrUnexpectedEOF
// at stream end — never a panic. A returned Msg re-encodes to exactly
// the bytes consumed.
func ReadMsg(r *bufio.Reader) (Msg, error) {
	line, err := readLine(r)
	if err != nil {
		if _, ok := err.(*Error); ok || err == io.EOF || err == io.ErrUnexpectedEOF {
			return Msg{}, err
		}
		return Msg{}, errf("decode", "", "", "read: %v", err)
	}
	toks := splitTokens(line)
	if toks == nil {
		return Msg{}, errf("decode", "", "", "malformed line %q", line)
	}
	spec, ok := verbs[toks[0]]
	if !ok {
		return Msg{}, errf("decode", "", "", "unknown verb %q", toks[0])
	}
	want := spec.args
	if spec.payload {
		want++
	}
	if len(toks)-1 != want {
		return Msg{}, errf("decode", "", "", "%s takes %d tokens, got %d", toks[0], want, len(toks)-1)
	}
	m := Msg{Verb: toks[0]}
	if spec.args > 0 {
		m.Args = toks[1 : 1+spec.args]
	}
	if spec.payload {
		n, err := canonUint(toks[len(toks)-1], maxPayload)
		if err != nil {
			return Msg{}, errf("decode", "", "", "%s payload length: %v", toks[0], err)
		}
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return Msg{}, io.ErrUnexpectedEOF
		}
		switch b, err := r.ReadByte(); {
		case err != nil:
			return Msg{}, io.ErrUnexpectedEOF
		case b != '\n':
			return Msg{}, errf("decode", "", "", "%s payload not newline-terminated", toks[0])
		}
	}
	return m, nil
}

// splitTokens splits a line on single spaces, rejecting empty or
// invalid tokens (doubled/leading/trailing spaces, control bytes).
func splitTokens(line string) []string {
	if line == "" {
		return nil
	}
	var toks []string
	for len(line) > 0 {
		i := 0
		for i < len(line) && line[i] != ' ' {
			i++
		}
		tok := line[:i]
		if !validToken(tok) {
			return nil
		}
		toks = append(toks, tok)
		if i == len(line) {
			break
		}
		line = line[i+1:]
		if line == "" { // trailing space
			return nil
		}
	}
	return toks
}
