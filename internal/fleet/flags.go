package fleet

import (
	"flag"
	"time"

	"github.com/tempest-sim/tempest/internal/harness"
)

// Flags is the standard distributed-sweep flag triple every sweep
// binary exposes. Register with RegisterFlags, then build the executor
// after the cache flags are resolved.
type Flags struct {
	Fleet        *string
	WorkersAddr  *string
	PointTimeout *time.Duration
}

// RegisterFlags installs -fleet, -workers-addr, and -point-timeout on
// fs (use flag.CommandLine from main).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		Fleet: fs.String("fleet", "",
			"submit the sweep to the fleet coordinator at this address (host:port, or a unix socket path containing '/')"),
		WorkersAddr: fs.String("workers-addr", "",
			"run an embedded fleet coordinator for this sweep, listening for workers on this address"),
		PointTimeout: fs.Duration("point-timeout", 0,
			"per-point wall-clock limit (0 = none); a point exceeding it fails the sweep with an error naming the point"),
	}
}

// Executor resolves the flags into an executor (nil = use the local
// pool) and a closer to defer.
func (f *Flags) Executor(cp harness.CacheParams, logf func(string, ...any)) (harness.Executor, func() error, error) {
	return NewExecutor(*f.Fleet, *f.WorkersAddr, cp, logf)
}
