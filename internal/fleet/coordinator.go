package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/resultcache"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Cache is the coordinator's result cache. Hits are served directly
	// at submit time — a warm cache means points never lease at all —
	// and every accepted remote result is stored back, witness aliases
	// included, so distributed and local sweeps share one store.
	Cache harness.CacheParams
	// LeaseTTL bounds how long a lease may go without a heartbeat before
	// its point is re-queued (default 10s).
	LeaseTTL time.Duration
	// MaxAttempts caps how many leases one point may consume across
	// worker losses, expiries, and rejections before the sweep fails
	// (default 5).
	MaxAttempts int
	// BackoffBase/BackoffCap shape the re-lease delay after a failed
	// attempt: base << (attempt-1), capped (defaults 100ms / 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Logf, when non-nil, receives fleet lifecycle events.
	Logf func(format string, args ...any)
}

// Stats counts coordinator events; read a snapshot with Coordinator.Stats.
type Stats struct {
	// Workers is the total number of worker connections ever accepted.
	Workers uint64
	// Leases counts leases granted (including re-leases).
	Leases uint64
	// Reassigned counts points re-queued because their worker vanished.
	Reassigned uint64
	// Expired counts leases that outlived their TTL without a heartbeat.
	Expired uint64
	// Rejected counts results that failed verification (corrupt bytes or
	// key/code divergence).
	Rejected uint64
	// Duplicates counts valid completions that arrived after the point
	// was already settled; the first valid result won.
	Duplicates uint64
	// CacheHits counts points served from the coordinator's cache
	// without leasing.
	CacheHits uint64
	// Completed/Failed count settled points.
	Completed uint64
	Failed    uint64
}

const (
	taskPending = iota
	taskLeased
	taskDone
	taskFailed
)

// task is one sweep point's lifecycle on the coordinator.
type task struct {
	key       resultcache.Key
	pt        harness.Point
	enc       []byte
	label     string
	noCache   bool
	timeoutMS uint64

	state     int
	attempts  int
	notBefore time.Time
	queued    bool
	entry     *resultcache.Entry
	err       error
	doneCh    chan struct{}
}

// lease is one grant of a task to a worker. It stays registered until
// the worker answers or vanishes — even past expiry — so a late valid
// result from a slow worker is still usable when the point is not yet
// settled.
type lease struct {
	id       uint64
	t        *task
	w        *workerConn
	deadline time.Time
	expired  bool
}

// workerConn is one connected worker.
type workerConn struct {
	name     string
	conn     io.ReadWriteCloser
	out      chan []byte
	quit     chan struct{}
	slots    int
	inflight int
	gone     bool
}

// Coordinator leases sweep points to workers and implements
// harness.Executor, so any sweep runs on a fleet by setting its Exec.
// All submissions — local Submit calls and remote protocol clients —
// share one task table: identical concurrent points dedup to one lease.
type Coordinator struct {
	opts CoordinatorOptions
	code string

	mu       sync.Mutex
	tasks    map[resultcache.Key]*task
	all      []*task
	queue    []*task
	workers  []*workerConn
	leases   map[uint64]*lease
	nextID   uint64
	nWorkers int
	stats    Stats
	closed   bool

	wake chan struct{}
	quit chan struct{}
}

// NewCoordinator builds a coordinator and starts its scheduler.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Millisecond
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = 5 * time.Second
	}
	c := &Coordinator{
		opts:   opts,
		code:   harness.CodeID(),
		tasks:  make(map[resultcache.Key]*task),
		leases: make(map[uint64]*lease),
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	go c.scheduler()
	return c
}

var _ harness.Executor = (*Coordinator)(nil)

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close shuts the coordinator down: pending points fail, workers are
// disconnected, the scheduler stops. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.quit)
	for _, t := range c.all {
		if t.state == taskPending || t.state == taskLeased {
			c.failLocked(t, errf("submit", "", t.label, "coordinator closed"))
		}
	}
	workers := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()
	for _, w := range workers {
		w.conn.Close()
	}
	return nil
}

// Submit implements harness.Executor: the batch's points are leased to
// the connected workers (cache hits short-circuit), honouring the
// executor contract — results slotted by index, groups sequential in
// submission order, first failure fails the batch.
func (c *Coordinator) Submit(ctx context.Context, batch harness.Batch) ([]harness.PointResult, error) {
	results, _, err := c.submit(ctx, batch)
	return results, err
}

// submit is Submit plus the per-point cache entries, which the protocol
// server ships to remote clients.
func (c *Coordinator) submit(ctx context.Context, batch harness.Batch) ([]harness.PointResult, []*resultcache.Entry, error) {
	pts := batch.Points
	results := make([]harness.PointResult, len(pts))
	entries := make([]*resultcache.Entry, len(pts))

	// Chain points exactly as LocalExecutor does: a Group is one
	// sequential chain (so earlier points' entries and witness aliases
	// serve later ones); ungrouped points are independent.
	type chainSpec struct {
		idxs  []int
		label string
	}
	var chains []chainSpec
	groupAt := make(map[string]int)
	for i, pt := range pts {
		if pt.Group == "" {
			chains = append(chains, chainSpec{idxs: []int{i}, label: pt.Label()})
			continue
		}
		gi, ok := groupAt[pt.Group]
		if !ok {
			gi = len(chains)
			groupAt[pt.Group] = gi
			chains = append(chains, chainSpec{label: pt.Group})
		}
		chains[gi].idxs = append(chains[gi].idxs, i)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	done := 0
	errs := make([]error, len(chains))
	var wg sync.WaitGroup
	for ci := range chains {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for _, i := range chains[ci].idxs {
				pr, e, err := c.runOne(cctx, pts[i], batch.PointTimeout)
				if err != nil {
					errs[ci] = err
					cancel()
					return
				}
				results[i] = pr
				entries[i] = e
				if batch.Progress != nil {
					mu.Lock()
					done++
					batch.Progress(done, len(pts))
					mu.Unlock()
				}
			}
		}(ci)
	}
	wg.Wait()
	if err := joinChainErrors(errs); err != nil {
		return nil, nil, err
	}
	return results, entries, nil
}

// joinChainErrors folds per-chain failures into one error, dropping the
// cancellations that fail-fast induced in sibling chains when a real
// failure exists.
func joinChainErrors(errs []error) error {
	var real, canceled []error
	seen := make(map[string]bool)
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) {
			canceled = append(canceled, e)
			continue
		}
		if !seen[e.Error()] {
			seen[e.Error()] = true
			real = append(real, e)
		}
	}
	if len(real) > 0 {
		return errors.Join(real...)
	}
	if len(canceled) > 0 {
		return canceled[0]
	}
	return nil
}

// runOne resolves one point: cache hit, dedup against an in-flight
// identical point, or a fresh task leased to the fleet.
func (c *Coordinator) runOne(ctx context.Context, pt harness.Point, timeout time.Duration) (harness.PointResult, *resultcache.Entry, error) {
	if err := pt.Validate(); err != nil {
		return harness.PointResult{}, nil, err
	}
	if pt.Observed {
		return harness.PointResult{}, nil,
			errf("submit", "", pt.Label(), "observed points are local-only; run them without a fleet")
	}
	key, err := harness.PointKey(c.code, pt)
	if err != nil {
		return harness.PointResult{}, nil, err
	}
	cp := c.opts.Cache
	if cp.Cache != nil && !pt.NoCache {
		if entry, _ := cp.Cache.Get(key); entry != nil {
			c.mu.Lock()
			c.stats.CacheHits++
			c.mu.Unlock()
			return harness.PointResult{RunResult: harness.ResultFromEntry(entry), Origin: entry.Origin}, entry, nil
		}
	}
	var tmoMS uint64
	if timeout > 0 {
		tmoMS = uint64((timeout + time.Millisecond - 1) / time.Millisecond)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return harness.PointResult{}, nil, errf("submit", "", pt.Label(), "coordinator closed")
	}
	var t *task
	if !pt.NoCache {
		t = c.tasks[key]
	}
	if t == nil {
		t = &task{
			key: key, pt: pt, enc: pt.Encode(), label: pt.Label(),
			noCache: pt.NoCache, timeoutMS: tmoMS,
			state: taskPending, queued: true,
			doneCh: make(chan struct{}),
		}
		if !pt.NoCache {
			c.tasks[key] = t
		}
		c.all = append(c.all, t)
		c.queue = append(c.queue, t)
	}
	c.mu.Unlock()
	c.wakeUp()
	select {
	case <-ctx.Done():
		return harness.PointResult{}, nil, ctx.Err()
	case <-t.doneCh:
	}
	c.mu.Lock()
	entry, terr := t.entry, t.err
	c.mu.Unlock()
	if terr != nil {
		return harness.PointResult{}, nil, terr
	}
	return harness.PointResult{RunResult: harness.ResultFromEntry(entry), Origin: entry.Origin}, entry, nil
}

// --- scheduler ---

func (c *Coordinator) wakeUp() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *Coordinator) scheduler() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-c.wake:
		case <-timer.C:
		}
		c.mu.Lock()
		next := c.scheduleLocked(time.Now())
		c.mu.Unlock()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(next)
	}
}

// scheduleLocked expires stale leases, assigns runnable tasks to free
// worker slots, and returns how long the scheduler may sleep.
func (c *Coordinator) scheduleLocked(now time.Time) time.Duration {
	// Expire leases whose heartbeat lapsed: the point goes back in the
	// queue; the lease record stays so a late result is still honoured.
	for _, l := range c.leases {
		if !l.expired && now.After(l.deadline) {
			l.expired = true
			c.stats.Expired++
			c.logf("fleet: lease %d (%s) on %s expired; re-queueing", l.id, l.t.label, l.w.name)
			c.requeueLocked(l.t, now, "lease expired")
		}
	}
	// Compact settled tasks out of the queue, then assign.
	live := c.queue[:0]
	for _, t := range c.queue {
		if t.state == taskDone || t.state == taskFailed {
			t.queued = false
			continue
		}
		live = append(live, t)
	}
	c.queue = live
	for {
		ti := -1
		for i, t := range c.queue {
			if t.state == taskPending && !t.notBefore.After(now) {
				ti = i
				break
			}
		}
		if ti < 0 {
			break
		}
		var w *workerConn
		for _, cand := range c.workers {
			if !cand.gone && cand.inflight < cand.slots {
				w = cand
				break
			}
		}
		if w == nil {
			break
		}
		t := c.queue[ti]
		c.queue = append(c.queue[:ti], c.queue[ti+1:]...)
		t.queued = false
		c.leaseLocked(t, w, now)
	}
	// Sleep until the next deadline in play.
	next := time.Hour
	for _, l := range c.leases {
		if !l.expired {
			if d := l.deadline.Sub(now); d < next {
				next = d
			}
		}
	}
	for _, t := range c.queue {
		if t.state == taskPending && t.notBefore.After(now) {
			if d := t.notBefore.Sub(now); d < next {
				next = d
			}
		}
	}
	if next < time.Millisecond {
		next = time.Millisecond
	}
	return next
}

func (c *Coordinator) leaseLocked(t *task, w *workerConn, now time.Time) {
	c.nextID++
	l := &lease{id: c.nextID, t: t, w: w, deadline: now.Add(c.opts.LeaseTTL)}
	c.leases[l.id] = l
	t.state = taskLeased
	t.attempts++
	w.inflight++
	c.stats.Leases++
	c.logf("fleet: lease %d: %s -> %s (attempt %d)", l.id, t.label, w.name, t.attempts)
	c.sendLocked(w, Msg{Verb: "lease", Args: []string{fu(l.id), fu(t.timeoutMS)}, Payload: t.enc})
}

// requeueLocked puts an unsettled task back in the queue with backoff,
// failing it once its lease budget is exhausted.
func (c *Coordinator) requeueLocked(t *task, now time.Time, why string) {
	if t.state == taskDone || t.state == taskFailed {
		return
	}
	if t.attempts >= c.opts.MaxAttempts {
		c.failLocked(t, errf("lease", "", t.label, "gave up after %d attempts (%s)", t.attempts, why))
		return
	}
	t.state = taskPending
	backoff := c.opts.BackoffBase << uint(t.attempts-1)
	if backoff > c.opts.BackoffCap || backoff <= 0 {
		backoff = c.opts.BackoffCap
	}
	t.notBefore = now.Add(backoff)
	if !t.queued {
		t.queued = true
		c.queue = append(c.queue, t)
	}
}

func (c *Coordinator) failLocked(t *task, err error) {
	t.err = err
	t.state = taskFailed
	c.stats.Failed++
	close(t.doneCh)
}

// completeLocked settles a task with its verified entry, feeding the
// coordinator cache and publishing the point's witness aliases.
func (c *Coordinator) completeLocked(t *task, entry *resultcache.Entry) {
	if cp := c.opts.Cache; cp.Cache != nil && !t.noCache {
		cp.Cache.Put(entry)
		harness.StoreWitnessAliases(cp.Cache, t.pt, entry)
	}
	t.entry = entry
	t.state = taskDone
	c.stats.Completed++
	close(t.doneCh)
}

// sendLocked queues a message on a worker's writer; a full queue means
// the worker stopped draining and is dropped.
func (c *Coordinator) sendLocked(w *workerConn, m Msg) {
	select {
	case w.out <- m.Encode():
	default:
		c.markGoneLocked(w, "write queue overflow")
	}
}

// markGoneLocked removes a worker and re-queues everything it held.
func (c *Coordinator) markGoneLocked(w *workerConn, why string) {
	if w.gone {
		return
	}
	w.gone = true
	for i, cand := range c.workers {
		if cand == w {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	now := time.Now()
	for id, l := range c.leases {
		if l.w != w {
			continue
		}
		delete(c.leases, id)
		if l.t.state == taskDone || l.t.state == taskFailed {
			continue
		}
		c.stats.Reassigned++
		c.requeueLocked(l.t, now, "worker lost: "+why)
	}
	close(w.quit)
	w.conn.Close()
	c.logf("fleet: %s gone (%s)", w.name, why)
	c.wakeLocked()
}

func (c *Coordinator) wakeLocked() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *Coordinator) dropWorker(w *workerConn, why string) {
	c.mu.Lock()
	c.markGoneLocked(w, why)
	c.mu.Unlock()
}

// --- worker-facing protocol ---

// handleResult verifies and settles a completed lease. A non-nil error
// drops the worker: it shipped bytes that failed decode or digest
// verification, and an untrustworthy worker gets no more leases.
func (c *Coordinator) handleResult(w *workerConn, id uint64, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[id]
	if !ok || l.w != w {
		return errf("result", w.name, "", "unknown lease %d", id)
	}
	delete(c.leases, id)
	w.inflight--
	t := l.t
	defer c.wakeLocked()
	entry, err := resultcache.Decode(payload)
	if err != nil {
		c.stats.Rejected++
		c.requeueLocked(t, time.Now(), "corrupt result")
		return errf("verify", w.name, t.label, "corrupt result entry: %v", err)
	}
	// The canonical key/digest check: the entry must carry exactly the
	// key this coordinator derived for the point, under the same code
	// digest. Anything else is a divergent simulation or a mixed build.
	if entry.Key != t.key || entry.Code != c.code {
		c.stats.Rejected++
		c.requeueLocked(t, time.Now(), "divergent result")
		return errf("verify", w.name, t.label, "result does not verify: key %s code %.12s (want key %s code %.12s)",
			entry.Key, entry.Code, t.key, c.code)
	}
	if t.state == taskDone || t.state == taskFailed {
		c.stats.Duplicates++
		return nil
	}
	c.completeLocked(t, entry)
	return nil
}

// handleFail settles a lease whose point failed on the worker. A
// simulation failure is deterministic — every worker would fail the
// same way — so it is terminal, not retried.
func (c *Coordinator) handleFail(w *workerConn, id uint64, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[id]
	if !ok || l.w != w {
		return errf("fail", w.name, "", "unknown lease %d", id)
	}
	delete(c.leases, id)
	w.inflight--
	t := l.t
	defer c.wakeLocked()
	if t.state == taskDone || t.state == taskFailed {
		c.stats.Duplicates++
		return nil
	}
	c.failLocked(t, errf("run", w.name, t.label, "%s", payload))
	return nil
}

func (c *Coordinator) heartbeat(w *workerConn, id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.leases[id]; ok && l.w == w && !l.expired {
		l.deadline = time.Now().Add(c.opts.LeaseTTL)
	}
}

// --- connection serving ---

// Serve accepts connections until the listener closes.
func (c *Coordinator) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.ServeConn(conn)
	}
}

// ServeConn runs the protocol handshake on one connection and serves
// it in its declared role (worker or client). Usable directly with
// in-memory pipes for tests.
func (c *Coordinator) ServeConn(conn io.ReadWriteCloser) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	m, err := ReadMsg(br)
	if err != nil {
		return errf("handshake", "", "", "reading hello: %v", err)
	}
	if m.Verb != "hello" {
		return errf("handshake", "", "", "expected hello, got %s", m.Verb)
	}
	proto, role, code := m.Args[0], m.Args[1], m.Args[2]
	reject := func(format string, args ...any) error {
		e := errf("handshake", "", "", format, args...)
		conn.Write(Msg{Verb: "reject", Payload: []byte(e.Msg)}.Encode())
		c.logf("fleet: rejecting %s: %s", role, e.Msg)
		return e
	}
	if proto != Proto {
		return reject("protocol mismatch: coordinator speaks %s, peer speaks %s", Proto, proto)
	}
	if code != c.code {
		return reject("code digest mismatch: coordinator runs %.12s, peer runs %.12s (rebuild the peer from the same tree)", c.code, code)
	}
	if role != "worker" && role != "client" {
		return reject("unknown role %q", role)
	}
	if _, err := conn.Write(Msg{Verb: "welcome", Args: []string{c.code}}.Encode()); err != nil {
		return errf("handshake", "", "", "writing welcome: %v", err)
	}
	c.mu.Lock()
	c.nWorkers++
	name := fmt.Sprintf("%s-%d", role, c.nWorkers)
	c.mu.Unlock()
	// Unix-socket peers have empty (or "@"-anonymous) remote addresses;
	// only a real address adds information to the name.
	if nc, ok := conn.(net.Conn); ok && nc.RemoteAddr() != nil {
		if a := nc.RemoteAddr().String(); a != "" && a != "@" {
			name += "@" + a
		}
	}
	if role == "worker" {
		return c.serveWorker(conn, br, name)
	}
	return c.serveClient(conn, br, name)
}

func (c *Coordinator) serveWorker(conn io.ReadWriteCloser, br *bufio.Reader, name string) error {
	w := &workerConn{name: name, conn: conn, out: make(chan []byte, 256), quit: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errf("serve", name, "", "coordinator closed")
	}
	c.workers = append(c.workers, w)
	c.stats.Workers++
	c.mu.Unlock()
	c.logf("fleet: %s connected", name)
	go func() {
		for {
			select {
			case <-w.quit:
				return
			case b := <-w.out:
				if _, err := conn.Write(b); err != nil {
					c.dropWorker(w, "write: "+err.Error())
					return
				}
			}
		}
	}()
	for {
		m, err := ReadMsg(br)
		if err != nil {
			why := "disconnected"
			if err != io.EOF {
				why = "read: " + err.Error()
			}
			c.dropWorker(w, why)
			if err == io.EOF {
				return nil
			}
			return err
		}
		var herr error
		switch m.Verb {
		case "ready":
			n, err := canonUint(m.Args[0], 1024)
			if err != nil || n == 0 {
				herr = errf("serve", w.name, "", "bad slot count %q", m.Args[0])
				break
			}
			c.mu.Lock()
			w.slots = int(n)
			c.mu.Unlock()
			c.wakeUp()
		case "heartbeat":
			id, err := canonUint(m.Args[0], ^uint64(0))
			if err != nil {
				herr = errf("serve", w.name, "", "bad heartbeat id %q", m.Args[0])
				break
			}
			c.heartbeat(w, id)
		case "result", "fail":
			id, err := canonUint(m.Args[0], ^uint64(0))
			if err != nil {
				herr = errf("serve", w.name, "", "bad lease id %q", m.Args[0])
				break
			}
			if m.Verb == "result" {
				herr = c.handleResult(w, id, m.Payload)
			} else {
				herr = c.handleFail(w, id, m.Payload)
			}
		case "bye":
			c.dropWorker(w, "bye")
			return nil
		default:
			herr = errf("serve", w.name, "", "unexpected %s from a worker", m.Verb)
		}
		if herr != nil {
			c.logf("fleet: dropping %s: %v", w.name, herr)
			c.dropWorker(w, herr.Error())
			return herr
		}
	}
}

// serveClient receives a remote batch, runs it through submit (sharing
// the task table and cache with every other submission), and streams
// back progress, per-point entries, and completion.
func (c *Coordinator) serveClient(conn io.ReadWriteCloser, br *bufio.Reader, name string) error {
	var wmu sync.Mutex
	send := func(m Msg) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := conn.Write(m.Encode())
		return err
	}
	m, err := ReadMsg(br)
	if err != nil {
		return errf("serve", name, "", "reading submit: %v", err)
	}
	if m.Verb != "submit" {
		return errf("serve", name, "", "expected submit, got %s", m.Verb)
	}
	n, err := canonUint(m.Args[0], 1<<20)
	if err != nil {
		return errf("serve", name, "", "bad batch size %q", m.Args[0])
	}
	tmoMS, err := canonUint(m.Args[1], ^uint64(0))
	if err != nil {
		return errf("serve", name, "", "bad timeout %q", m.Args[1])
	}
	pts := make([]harness.Point, n)
	for i := uint64(0); i < n; i++ {
		m, err := ReadMsg(br)
		if err != nil {
			return errf("serve", name, "", "reading point %d: %v", i, err)
		}
		if m.Verb != "point" {
			return errf("serve", name, "", "expected point %d, got %s", i, m.Verb)
		}
		if idx, err := canonUint(m.Args[0], n-1); err != nil || idx != i {
			return errf("serve", name, "", "out-of-order point %s (want %d)", m.Args[0], i)
		}
		pt, err := harness.DecodePoint(m.Payload)
		if err != nil {
			e := errf("serve", name, "", "point %d: %v", i, err)
			send(Msg{Verb: "perr", Args: []string{fu(i)}, Payload: []byte(e.Msg)})
			return e
		}
		pts[i] = pt
	}
	if m, err := ReadMsg(br); err != nil || m.Verb != "end" {
		return errf("serve", name, "", "expected end (err=%v)", err)
	}
	c.logf("fleet: %s submitted %d points", name, n)
	batch := harness.Batch{
		Points:       pts,
		PointTimeout: time.Duration(tmoMS) * time.Millisecond,
		Progress: func(done, total int) {
			send(Msg{Verb: "prog", Args: []string{strconv.Itoa(done), strconv.Itoa(total)}})
		},
	}
	_, entries, err := c.submit(context.Background(), batch)
	if err != nil {
		send(Msg{Verb: "perr", Args: []string{"0"}, Payload: []byte(err.Error())})
		return errf("serve", name, "", "batch failed: %v", err)
	}
	for i, e := range entries {
		if err := send(Msg{Verb: "done", Args: []string{strconv.Itoa(i)}, Payload: e.Encode()}); err != nil {
			return errf("serve", name, "", "writing result %d: %v", i, err)
		}
	}
	if err := send(Msg{Verb: "complete"}); err != nil {
		return errf("serve", name, "", "writing complete: %v", err)
	}
	ReadMsg(br) // wait for bye or EOF; content irrelevant
	return nil
}

// fu formats a uint64 wire token.
func fu(v uint64) string { return strconv.FormatUint(v, 10) }
