package fleet

import (
	"bufio"
	"context"
	"io"
	"sync"
	"time"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/resultcache"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Cache is the worker's own result cache (zero value = simulate
	// every lease). Pointing it at the same -cache-dir as the
	// coordinator composes: either side's prior runs serve the other.
	Cache harness.CacheParams
	// Slots is how many leases the worker runs concurrently (default 1).
	Slots int
	// HeartbeatEvery is the per-lease heartbeat period (default 1s; keep
	// it well under the coordinator's lease TTL).
	HeartbeatEvery time.Duration
	// OnLease, when non-nil, is called with the 1-based lease ordinal
	// before the point runs — the fault-injection hook (a test or
	// -die-after-leases kills the worker from here).
	OnLease func(n int)
	// Logf, when non-nil, receives worker lifecycle events.
	Logf func(format string, args ...any)
}

// RunWorker speaks the worker side of the protocol on conn: handshake,
// then run leased points and stream back results (as canonical cache
// entries) or failures until the coordinator says bye or the connection
// drops. Returns nil on an orderly shutdown.
func RunWorker(ctx context.Context, conn io.ReadWriteCloser, opts WorkerOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	var wmu sync.Mutex
	send := func(m Msg) error {
		wmu.Lock()
		defer wmu.Unlock()
		_, err := conn.Write(m.Encode())
		return err
	}
	br := bufio.NewReader(conn)
	code := harness.CodeID()
	if err := send(Msg{Verb: "hello", Args: []string{Proto, "worker", code}}); err != nil {
		return errf("handshake", "", "", "writing hello: %v", err)
	}
	m, err := ReadMsg(br)
	if err != nil {
		return errf("handshake", "", "", "reading welcome: %v", err)
	}
	switch m.Verb {
	case "welcome":
	case "reject":
		return errf("handshake", "", "", "rejected: %s", m.Payload)
	default:
		return errf("handshake", "", "", "expected welcome, got %s", m.Verb)
	}
	if err := send(Msg{Verb: "ready", Args: []string{fu(uint64(opts.Slots))}}); err != nil {
		return errf("handshake", "", "", "writing ready: %v", err)
	}
	logf("fleet: worker ready (%d slots, code %.12s)", opts.Slots, code)

	var wg sync.WaitGroup
	defer wg.Wait()
	leaseN := 0
	for {
		m, err := ReadMsg(br)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err == io.EOF {
				return nil
			}
			return errf("read", "", "", "%v", err)
		}
		switch m.Verb {
		case "lease":
			id, err := canonUint(m.Args[0], ^uint64(0))
			if err != nil {
				return errf("lease", "", "", "bad lease id %q", m.Args[0])
			}
			tmoMS, err := canonUint(m.Args[1], ^uint64(0))
			if err != nil {
				return errf("lease", "", "", "bad timeout %q", m.Args[1])
			}
			leaseN++
			if opts.OnLease != nil {
				opts.OnLease(leaseN)
			}
			pt, perr := harness.DecodePoint(m.Payload)
			if perr != nil {
				send(Msg{Verb: "fail", Args: []string{fu(id)}, Payload: []byte(perr.Error())})
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				logf("fleet: running lease %d: %s", id, pt.Label())
				hbStop := make(chan struct{})
				var hbWG sync.WaitGroup
				hbWG.Add(1)
				go func() {
					defer hbWG.Done()
					t := time.NewTicker(opts.HeartbeatEvery)
					defer t.Stop()
					for {
						select {
						case <-hbStop:
							return
						case <-t.C:
							send(Msg{Verb: "heartbeat", Args: []string{fu(id)}})
						}
					}
				}()
				entry, err := runLeased(opts.Cache, pt, time.Duration(tmoMS)*time.Millisecond)
				close(hbStop)
				hbWG.Wait()
				if err != nil {
					send(Msg{Verb: "fail", Args: []string{fu(id)}, Payload: []byte(err.Error())})
					return
				}
				send(Msg{Verb: "result", Args: []string{fu(id)}, Payload: entry.Encode()})
			}()
		case "bye":
			return nil
		default:
			return errf("read", "", "", "unexpected %s from coordinator", m.Verb)
		}
	}
}

// runLeased runs one leased point, enforcing the coordinator's
// per-point timeout. A timed-out simulation is abandoned on its own
// goroutine, exactly as the local executor abandons one.
func runLeased(cp harness.CacheParams, pt harness.Point, tmo time.Duration) (*resultcache.Entry, error) {
	if tmo <= 0 {
		_, entry, err := harness.RunPointEntry(cp, pt)
		return entry, err
	}
	type outcome struct {
		entry *resultcache.Entry
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		_, entry, err := harness.RunPointEntry(cp, pt)
		ch <- outcome{entry, err}
	}()
	timer := time.NewTimer(tmo)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.entry, o.err
	case <-timer.C:
		return nil, &harness.PointTimeoutError{Point: pt.Label(), Timeout: tmo}
	}
}
