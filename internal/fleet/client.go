package fleet

import (
	"bufio"
	"context"
	"strconv"
	"time"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/resultcache"
)

// Client is the harness.Executor that ships a batch to a remote
// coordinator (-fleet addr). Every returned entry is re-verified
// locally against the point's canonical key before it becomes a result
// — the client does not have to trust the coordinator any more than
// the coordinator trusts its workers.
type Client struct {
	Addr string
	// DialTimeout bounds how long Submit retries the initial dial —
	// sweep binaries routinely start alongside the coordinator they
	// target. 0 means the 10-second default; negative means a single
	// dial attempt.
	DialTimeout time.Duration
	// Logf, when non-nil, receives client lifecycle events.
	Logf func(format string, args ...any)
}

var _ harness.Executor = (*Client)(nil)

// Submit implements harness.Executor.
func (cl *Client) Submit(ctx context.Context, batch harness.Batch) ([]harness.PointResult, error) {
	for _, pt := range batch.Points {
		if pt.Observed {
			return nil, errf("submit", "", pt.Label(), "observed points are local-only; run them without -fleet")
		}
	}
	dialTmo := cl.DialTimeout
	if dialTmo == 0 {
		dialTmo = 10 * time.Second
	}
	conn, err := DialRetry(cl.Addr, dialTmo)
	if err != nil {
		return nil, errf("dial", cl.Addr, "", "%v", err)
	}
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	send := func(m Msg) error {
		if _, err := conn.Write(m.Encode()); err != nil {
			return errf("write", cl.Addr, "", "%v", err)
		}
		return nil
	}
	br := bufio.NewReader(conn)
	code := harness.CodeID()
	if err := send(Msg{Verb: "hello", Args: []string{Proto, "client", code}}); err != nil {
		return nil, err
	}
	m, err := ReadMsg(br)
	if err != nil {
		return nil, errf("handshake", cl.Addr, "", "reading welcome: %v", err)
	}
	switch m.Verb {
	case "welcome":
	case "reject":
		return nil, errf("handshake", cl.Addr, "", "rejected: %s", m.Payload)
	default:
		return nil, errf("handshake", cl.Addr, "", "expected welcome, got %s", m.Verb)
	}
	var tmoMS uint64
	if batch.PointTimeout > 0 {
		tmoMS = uint64((batch.PointTimeout + time.Millisecond - 1) / time.Millisecond)
	}
	n := len(batch.Points)
	if err := send(Msg{Verb: "submit", Args: []string{strconv.Itoa(n), fu(tmoMS)}}); err != nil {
		return nil, err
	}
	for i, pt := range batch.Points {
		if err := send(Msg{Verb: "point", Args: []string{strconv.Itoa(i)}, Payload: pt.Encode()}); err != nil {
			return nil, err
		}
	}
	if err := send(Msg{Verb: "end"}); err != nil {
		return nil, err
	}
	if cl.Logf != nil {
		cl.Logf("fleet: submitted %d points to %s", n, cl.Addr)
	}
	results := make([]harness.PointResult, n)
	got := make([]bool, n)
	for {
		m, err := ReadMsg(br)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, errf("read", cl.Addr, "", "connection lost mid-batch: %v", err)
		}
		switch m.Verb {
		case "prog":
			if batch.Progress != nil {
				done, err1 := canonUint(m.Args[0], uint64(n))
				total, err2 := canonUint(m.Args[1], uint64(n))
				if err1 == nil && err2 == nil {
					batch.Progress(int(done), int(total))
				}
			}
		case "done":
			i, err := canonUint(m.Args[0], uint64(n)-1)
			if err != nil {
				return nil, errf("read", cl.Addr, "", "bad result index %q", m.Args[0])
			}
			pt := batch.Points[i]
			entry, err := resultcache.Decode(m.Payload)
			if err != nil {
				return nil, errf("verify", cl.Addr, pt.Label(), "corrupt result entry: %v", err)
			}
			key, err := harness.PointKey(code, pt)
			if err != nil {
				return nil, err
			}
			if entry.Key != key || entry.Code != code {
				return nil, errf("verify", cl.Addr, pt.Label(),
					"result does not verify: key %s code %.12s (want key %s code %.12s)",
					entry.Key, entry.Code, key, code)
			}
			results[i] = harness.PointResult{RunResult: harness.ResultFromEntry(entry), Origin: entry.Origin}
			got[i] = true
		case "perr":
			return nil, errf("submit", cl.Addr, "", "%s", m.Payload)
		case "complete":
			for i := range got {
				if !got[i] {
					return nil, errf("read", cl.Addr, batch.Points[i].Label(), "batch completed without this point's result")
				}
			}
			send(Msg{Verb: "bye"}) // best effort
			return results, nil
		default:
			return nil, errf("read", cl.Addr, "", "unexpected %s from coordinator", m.Verb)
		}
	}
}
