package fleet

import (
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"github.com/tempest-sim/tempest/internal/harness"
)

// network picks the transport by address shape: anything containing a
// "/" is a Unix socket path, everything else is a TCP host:port. Tests
// and CI use sockets to dodge port collisions; real fleets use TCP.
func network(addr string) string {
	if strings.Contains(addr, "/") {
		return "unix"
	}
	return "tcp"
}

// Listen opens the coordinator's listener, clearing a stale socket file
// left by a killed run.
func Listen(addr string) (net.Listener, error) {
	nw := network(addr)
	if nw == "unix" {
		if fi, err := os.Stat(addr); err == nil && fi.Mode()&os.ModeSocket != 0 {
			os.Remove(addr)
		}
	}
	return net.Listen(nw, addr)
}

// Dial connects to a coordinator address.
func Dial(addr string) (net.Conn, error) {
	return net.Dial(network(addr), addr)
}

// DialRetry dials until the coordinator is listening or the deadline
// passes — workers typically start in parallel with the coordinator.
func DialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := Dial(addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, errf("dial", addr, "", "no coordinator after %v: %v", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// NewExecutor wires the -fleet/-workers-addr flag pair every binary
// exposes into an executor:
//
//   - -fleet addr: ship batches to the remote coordinator at addr.
//   - -workers-addr addr: run an embedded coordinator here, listening
//     for workers (and remote clients) on addr; the sweep's own points
//     go straight onto its task table.
//   - neither: return a nil executor — the sweep uses the local pool.
//
// The returned closer releases whatever was started; call it when the
// sweep finishes.
func NewExecutor(fleetAddr, workersAddr string, cp harness.CacheParams, logf func(string, ...any)) (harness.Executor, func() error, error) {
	noop := func() error { return nil }
	switch {
	case fleetAddr != "" && workersAddr != "":
		return nil, nil, fmt.Errorf("fleet: -fleet and -workers-addr are mutually exclusive (be a client or a coordinator, not both)")
	case fleetAddr != "":
		return &Client{Addr: fleetAddr, Logf: logf}, noop, nil
	case workersAddr != "":
		co := NewCoordinator(CoordinatorOptions{Cache: cp, Logf: logf})
		ln, err := Listen(workersAddr)
		if err != nil {
			co.Close()
			return nil, nil, fmt.Errorf("fleet: listen %s: %w", workersAddr, err)
		}
		go co.Serve(ln)
		closer := func() error {
			ln.Close()
			co.Close()
			if logf != nil {
				s := co.Stats()
				logf("fleet: %d workers, %d leases (%d reassigned, %d expired, %d rejected, %d duplicate), %d cache hits, %d completed, %d failed",
					s.Workers, s.Leases, s.Reassigned, s.Expired, s.Rejected, s.Duplicates, s.CacheHits, s.Completed, s.Failed)
			}
			return nil
		}
		return co, closer, nil
	}
	return nil, noop, nil
}
