// Package dirnnb implements the paper's baseline: a conventional,
// all-hardware DirNNB (full-map, no-broadcast) directory cache-coherence
// protocol with latencies composed from the "DirNNB Only" rows of
// Table 2, loosely modeled on the DASH prototype. Every shared page is
// globally mapped (a cache-coherent NUMA machine); misses to remote homes
// pay the remote-access formula, and writes invalidate remote sharers
// through the home directory. As in the paper, network and bus contention
// are not modeled: the directory is a hardware state machine evaluated
// atomically with its latency charged to the requesting processor.
package dirnnb

import (
	"fmt"
	"math/bits"

	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/vm"
)

// Latency components from Table 2 ("DirNNB Only").
const (
	// RemoteIssue is the cost to launch a remote miss (23 cycles).
	RemoteIssue sim.Time = 23
	// RemoteFill is the cost to fill the cache when the response arrives
	// (34 cycles).
	RemoteFill sim.Time = 34
	// ReplShared / ReplExclusive is the extra replacement cost when a
	// miss displaces a shared (5) or exclusive (16) remote block.
	ReplShared    sim.Time = 5
	ReplExclusive sim.Time = 16
	// DirBase is the base directory operation cost (16 cycles).
	DirBase sim.Time = 16
	// DirBlockRecv is added when the directory receives a block (11).
	DirBlockRecv sim.Time = 11
	// DirPerMsg is added per message the directory sends (5).
	DirPerMsg sim.Time = 5
	// DirBlockSend is added when the directory sends a block (11).
	DirBlockSend sim.Time = 11
	// InvalProc is a remote cache's cost to process an invalidation (8).
	InvalProc sim.Time = 8
)

// entry is one block's directory state at its home.
type entry struct {
	owner   int // node holding an exclusive copy, or -1
	sharers nodeSet
}

// System is the DirNNB memory system.
type System struct {
	m   *machine.Machine
	dir map[mem.PA]*entry // keyed by block-aligned home PA

	c *stats.Counters
}

var _ machine.MemSystem = (*System)(nil)

// New attaches a DirNNB memory system to m. The machine must be serial
// (Shards <= 1): the directory model mutates global state and remote
// caches directly from the requesting CPU's context.
func New(m *machine.Machine) *System {
	if m.Eng.Shards() > 1 {
		panic("dirnnb: requires a single-shard machine (directory state is mutated cross-node)")
	}
	s := &System{m: m, dir: make(map[mem.PA]*entry), c: stats.NewCounters()}
	m.SetMemSystem(s)
	return s
}

// Name implements machine.MemSystem.
func (s *System) Name() string { return "DirNNB" }

// Counters implements machine.MemSystem.
func (s *System) Counters() *stats.Counters { return s.c }

// SetupSegment eagerly allocates each page's frame at its home node and
// installs the translation in every node's page table — the global
// physical address map of a hardware DSM machine. First-touch pages are
// deferred to the page-fault path.
func (s *System) SetupSegment(seg *vm.Segment) {
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + mem.VA(i*mem.PageSize)
		home := s.m.VM.Home(va)
		if home < 0 {
			continue // first touch: resolved at fault time
		}
		s.mapPage(va, home, seg.Mode)
	}
}

func (s *System) mapPage(va mem.VA, home, mode int) {
	pa, err := s.m.Mems[home].AllocFrame(mem.TagReadWrite)
	if err != nil {
		panic(fmt.Sprintf("dirnnb: home %d out of frames: %v", home, err))
	}
	pte := vm.PTE{PA: pa, Writable: true, Mode: mode}
	for n := 0; n < s.m.Cfg.Nodes; n++ {
		s.m.VM.Table(n).Map(va.VPN(), pte)
	}
}

// PageFault implements machine.MemSystem: only first-touch pages fault;
// the faulting node becomes the home.
func (s *System) PageFault(p *machine.Proc, va mem.VA, write bool) {
	if !vm.IsShared(va) {
		panic(fmt.Sprintf("dirnnb: page fault on non-shared address %#x", va))
	}
	home := s.m.VM.ClaimHome(va, p.ID())
	if _, _, ok := s.m.VM.Translate(p.ID(), va); ok {
		return // another processor mapped it first
	}
	s.c.Inc("dirnnb.first_touch_claims")
	// Find the segment mode for this page.
	mode := vm.ModeUser
	for _, seg := range s.m.VM.Segments() {
		if va >= seg.Base && va < seg.End() {
			mode = seg.Mode
			break
		}
	}
	s.mapPage(va, home, mode)
}

func (s *System) entryFor(block mem.PA) *entry {
	e, ok := s.dir[block]
	if !ok {
		e = &entry{owner: -1, sharers: newNodeSet(s.m.Cfg.Nodes)}
		s.dir[block] = e
	}
	return e
}

// ServiceMiss implements machine.MemSystem. The whole coherence action is
// evaluated atomically; its latency — composed from the Table 2 terms —
// is charged to the requesting processor before it proceeds.
func (s *System) ServiceMiss(p *machine.Proc, va mem.VA, pa mem.PA, pte vm.PTE, write, upgrade bool) cache.LineState {
	// Private pages bypass the directory entirely.
	if pte.Mode == vm.ModePrivate {
		p.Ctx.Advance(s.m.Cfg.LocalMissCycles)
		s.c.Inc("dirnnb.private_misses")
		return cache.LineExclusive
	}
	// The directory evaluation below is a run-to-completion coherence
	// action (it charges latency but never blocks on another context);
	// assert that so a future edit cannot silently introduce a park.
	p.Ctx.BeginNoBlock()
	defer p.Ctx.EndNoBlock()

	block := s.m.Mems[pa.Node()].BlockBase(pa)
	e := s.entryFor(block)
	req := p.ID()
	home := pa.Node()
	local := req == home
	net := s.m.Cfg.NetLatency

	var latency sim.Time
	dirMsgs := 0 // messages the directory sends (5 cycles each)
	dirRecvBlock := false
	dirSendBlock := !upgrade && !local // data travels home->requester

	// Recall a dirty copy held by another cache. When the owner is the
	// home node's own cache, the recall is a local bus transaction with
	// no network legs.
	if e.owner >= 0 && e.owner != req {
		s.c.Inc("dirnnb.dirty_recalls")
		dirRecvBlock = true
		if e.owner == home {
			latency += InvalProc
		} else {
			dirMsgs++                        // recall message
			latency += net + InvalProc + net // round trip to the owner
		}
		if write {
			s.m.Caches[e.owner].Invalidate(block)
		} else {
			s.m.Caches[e.owner].Downgrade(block)
			e.sharers.add(e.owner)
		}
		e.owner = -1
	}

	// Invalidate other sharers on a write. Invalidations fan out in
	// parallel; the writer waits for the slowest: a network round trip
	// when any target is remote to the home, a bus transaction when the
	// only copy is in the home node's own cache.
	if write {
		invals, remoteInvals := 0, 0
		for _, n := range e.sharers.members() {
			if n == req {
				continue
			}
			s.m.Caches[n].Invalidate(block)
			e.sharers.remove(n)
			invals++
			if n != home {
				remoteInvals++
			}
		}
		if invals > 0 {
			s.c.Add("dirnnb.invalidations", uint64(invals))
			dirMsgs += remoteInvals
			if remoteInvals > 0 {
				latency += net + InvalProc + net
			} else {
				latency += InvalProc
			}
		}
	}

	// Directory bookkeeping for the requester.
	if write {
		e.owner = req
		e.sharers.clear()
	} else {
		e.sharers.add(req)
	}

	fill := cache.LineShared
	if write || (e.owner == req) || (e.sharers.count() == 1 && e.sharers.has(req) && e.owner < 0) {
		// MBus-style ownership: a read with no other cached copies
		// returns an owned (Exclusive) copy, as on Typhoon (§5.4).
		fill = cache.LineExclusive
		if !write {
			e.owner = req
			e.sharers.clear()
		}
	}

	dirOp := DirBase + DirPerMsg*sim.Time(dirMsgs+1) // +1: the response itself
	if dirRecvBlock {
		dirOp += DirBlockRecv
	}
	if dirSendBlock {
		dirOp += DirBlockSend
	}

	switch {
	case local && latency == 0 && !upgrade:
		// Pure local miss: memory responds directly (Table 2 common).
		latency = s.m.Cfg.LocalMissCycles
		s.c.Inc("dirnnb.local_misses")
	case local:
		// Local access that needed directory work (recall/invalidate).
		latency += s.m.Cfg.LocalMissCycles + dirOp
		s.c.Inc("dirnnb.local_dir_misses")
	case upgrade:
		// Ownership-only request: no data transfer, no fill cost.
		latency += RemoteIssue + net + dirOp + net
		s.c.Inc("dirnnb.remote_upgrades")
	default:
		latency += RemoteIssue + net + dirOp + net + RemoteFill
		s.c.Inc("dirnnb.remote_misses")
	}
	s.c.Add("dirnnb.dir_messages", uint64(dirMsgs+1))
	p.Ctx.Advance(latency)
	return fill
}

// Evicted implements machine.MemSystem: it updates the directory for the
// displaced block and charges the Table 2 replacement cost when the
// victim's home is remote.
func (s *System) Evicted(p *machine.Proc, victim mem.PA, state cache.LineState) {
	e, ok := s.dir[victim]
	if ok {
		e.sharers.remove(p.ID())
		if e.owner == p.ID() {
			e.owner = -1
		}
	}
	if victim.Node() != p.ID() {
		if state == cache.LineExclusive {
			p.Ctx.AdvanceAtomic(ReplExclusive)
			s.c.Inc("dirnnb.repl_exclusive")
		} else {
			p.Ctx.AdvanceAtomic(ReplShared)
			s.c.Inc("dirnnb.repl_shared")
		}
	}
}

// nodeSet is a bit set of node IDs.
type nodeSet []uint64

func newNodeSet(n int) nodeSet { return make(nodeSet, (n+63)/64) }

func (ns nodeSet) add(n int)      { ns[n/64] |= 1 << (n % 64) }
func (ns nodeSet) remove(n int)   { ns[n/64] &^= 1 << (n % 64) }
func (ns nodeSet) has(n int) bool { return ns[n/64]&(1<<(n%64)) != 0 }
func (ns nodeSet) clear() {
	for i := range ns {
		ns[i] = 0
	}
}
func (ns nodeSet) count() int {
	c := 0
	for _, w := range ns {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}
func (ns nodeSet) members() []int {
	var out []int
	for i, w := range ns {
		for w != 0 {
			b := i*64 + bits.TrailingZeros64(w)
			out = append(out, b)
			w &= w - 1
		}
	}
	return out
}
