// Package dirnnb implements the paper's baseline: a conventional,
// all-hardware DirNNB (full-map, no-broadcast) directory cache-coherence
// protocol with latencies composed from the "DirNNB Only" rows of
// Table 2, loosely modeled on the DASH prototype. Every shared page is
// globally mapped (a cache-coherent NUMA machine); misses to remote homes
// pay the remote-access formula, and writes invalidate remote sharers
// through the home directory. As in the paper, network and bus contention
// are not modeled.
//
// The directory is a protocol agent (internal/agent) per node: each home
// node's agent owns the directory entries for the blocks homed there and
// every coherence action — lookup, invalidation, recall, fill, eviction
// notice, first-touch page claim — is a message delivered to the owning
// node's shard through internal/network. The agents charge no occupancy
// of their own (a hardware state machine, not a software NP); the
// Table 2 terms are composed onto the messages as send-side delays, so
// the end-to-end cost a requesting processor observes is exactly the
// closed-form latency of the old atomically-evaluated model. What moves
// relative to that model is only *when* third parties observe a
// transaction's side effects: directory state still changes atomically
// at the home, but at the home's clock (one network latency after the
// request issued) rather than instantaneously at the requester's, and
// remote cache invalidations land one further hop later. Both shifts are
// deterministic and identical at every shard count.
package dirnnb

import (
	"fmt"
	"math/bits"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/vm"
)

// Latency components from Table 2 ("DirNNB Only").
const (
	// RemoteIssue is the cost to launch a remote miss (23 cycles).
	RemoteIssue sim.Time = 23
	// RemoteFill is the cost to fill the cache when the response arrives
	// (34 cycles).
	RemoteFill sim.Time = 34
	// ReplShared / ReplExclusive is the extra replacement cost when a
	// miss displaces a shared (5) or exclusive (16) remote block.
	ReplShared    sim.Time = 5
	ReplExclusive sim.Time = 16
	// DirBase is the base directory operation cost (16 cycles).
	DirBase sim.Time = 16
	// DirBlockRecv is added when the directory receives a block (11).
	DirBlockRecv sim.Time = 11
	// DirPerMsg is added per message the directory sends (5).
	DirPerMsg sim.Time = 5
	// DirBlockSend is added when the directory sends a block (11).
	DirBlockSend sim.Time = 11
	// InvalProc is a remote cache's cost to process an invalidation (8).
	InvalProc sim.Time = 8
)

// Directory message handler IDs. The directory hardware's messages live
// in their own namespace (there is no NP handler registry to share).
const (
	// hReq asks block's home to service a miss: args block, flags.
	hReq uint32 = iota + 1
	// hReply completes a miss at the requester: args block, fill state.
	hReply
	// hInval invalidates the target's copy: args block, txn id.
	hInval
	// hRecall recalls/downgrades the owning cache: args block, txn id,
	// write flag.
	hRecall
	// hAck acknowledges an invalidation or recall: args txn id.
	hAck
	// hEvict notifies a home that the sender dropped its copy: args block.
	hEvict
	// hClaim asks a page's arbiter to resolve a first touch: args vpn.
	hClaim
	// hGrantHome tells the claimant it is the page's home: args vpn.
	hGrantHome
	// hGrant tells a later claimant the page's frame: args vpn, pa.
	hGrant
	// hMapped reports the home's allocated frame to the arbiter: args
	// vpn, pa.
	hMapped
)

// reqWrite / reqUpgrade are the hReq flag bits.
const (
	reqWrite   = 1 << 0
	reqUpgrade = 1 << 1
)

// entry is one block's directory state at its home.
type entry struct {
	owner   int // node holding an exclusive copy, or -1
	sharers nodeSet
}

// txn is one in-flight coherence action at a home: the directory has
// been updated and invalidations/recalls are out; when the last ack
// arrives the reply (or the parked local processor) is released.
type txn struct {
	block    mem.PA
	req      int
	write    bool
	acksLeft int
	fill     cache.LineState
	// replyExtra is the send-side delay of the eventual reply (issue +
	// directory occupancy); unused for a local requester, which charges
	// its own terms after waking.
	replyExtra sim.Time
}

// claim is one first-touch page's arbitration state.
type claim struct {
	vpn     uint64
	home    int
	pa      mem.PA
	mapped  bool
	waiters []int
}

// hotStats is a node's counter block (plain fields on the node's shard,
// delta-folded into the system counters at report time).
type hotStats struct {
	privateMisses    uint64
	localMisses      uint64
	localDirMisses   uint64
	remoteUpgrades   uint64
	remoteMisses     uint64
	dirtyRecalls     uint64
	invalidations    uint64
	dirMessages      uint64
	replShared       uint64
	replExclusive    uint64
	firstTouchClaims uint64
}

// nodeState is one node's slice of the protocol: its directory (for
// blocks homed here), in-flight transactions, first-touch arbitration
// state (for pages it arbitrates), and the reply slot its own parked
// processor waits on. Everything is touched only from the node's shard —
// by its agent or its CPU.
type nodeState struct {
	sys  *System
	node int
	core *agent.Core

	dir     map[mem.PA]*entry // keyed by block-aligned PA homed here
	txns    map[uint64]*txn
	nextTxn uint64

	claims map[uint64]*claim // by VPN, for pages arbitrated here

	// fill is the reply slot for this node's single outstanding miss.
	fill      cache.LineState
	fillValid bool

	hot      hotStats
	lastFold hotStats
	// lastOccWaits/lastOccWaitCycles delta-fold the agent core's
	// occupancy-queueing stats, like lastFold does for hot.
	lastOccWaits      uint64
	lastOccWaitCycles uint64
}

// System is the DirNNB memory system.
type System struct {
	m     *machine.Machine
	nodes []*nodeState
	c     *stats.Counters
}

var _ machine.MemSystem = (*System)(nil)
var _ agent.Dispatcher = (*nodeState)(nil)

// New attaches a DirNNB memory system to m. One directory agent is
// spawned per node (before the compute processors, in node order, so
// context identity is deterministic); the system runs at any shard
// count.
func New(m *machine.Machine) *System {
	s := &System{m: m, c: stats.NewCounters()}
	for i := 0; i < m.Cfg.Nodes; i++ {
		ns := &nodeState{
			sys:    s,
			node:   i,
			dir:    make(map[mem.PA]*entry),
			txns:   make(map[uint64]*txn),
			claims: make(map[uint64]*claim),
		}
		s.nodes = append(s.nodes, ns)
	}
	for _, ns := range s.nodes {
		ns.core = agent.Spawn(m.Eng, m.Net, ns.node, fmt.Sprintf("dir%d", ns.node), "directory idle", m.Cfg.OccupancyCycles, ns, nil)
	}
	m.SetMemSystem(s)
	return s
}

// Name implements machine.MemSystem.
func (s *System) Name() string { return "DirNNB" }

// Counters implements machine.MemSystem: it folds the per-node hot
// counters and publishes first-touch home assignments into the VM's
// placement map (read by reporting code; never read by the protocol at
// run time, so the fold is safe once the machine is quiescent).
func (s *System) Counters() *stats.Counters {
	for _, ns := range s.nodes {
		ns.fold(s.c)
		for vpn, cl := range ns.claims {
			s.m.VM.ClaimHome(mem.VA(vpn*mem.PageSize), cl.home)
		}
	}
	return s.c
}

func (ns *nodeState) fold(c *stats.Counters) {
	d, l := ns.hot, ns.lastFold
	c.Add("dirnnb.private_misses", d.privateMisses-l.privateMisses)
	c.Add("dirnnb.local_misses", d.localMisses-l.localMisses)
	c.Add("dirnnb.local_dir_misses", d.localDirMisses-l.localDirMisses)
	c.Add("dirnnb.remote_upgrades", d.remoteUpgrades-l.remoteUpgrades)
	c.Add("dirnnb.remote_misses", d.remoteMisses-l.remoteMisses)
	c.Add("dirnnb.dirty_recalls", d.dirtyRecalls-l.dirtyRecalls)
	c.Add("dirnnb.invalidations", d.invalidations-l.invalidations)
	c.Add("dirnnb.dir_messages", d.dirMessages-l.dirMessages)
	c.Add("dirnnb.repl_shared", d.replShared-l.replShared)
	c.Add("dirnnb.repl_exclusive", d.replExclusive-l.replExclusive)
	c.Add("dirnnb.first_touch_claims", d.firstTouchClaims-l.firstTouchClaims)
	ns.lastFold = d
	w, wc := ns.core.OccStats()
	c.Add("dirnnb.occ_waits", w-ns.lastOccWaits)
	c.Add("dirnnb.occ_wait_cycles", wc-ns.lastOccWaitCycles)
	ns.lastOccWaits, ns.lastOccWaitCycles = w, wc
}

// SetupSegment eagerly allocates each page's frame at its home node and
// installs the translation in every node's page table — the global
// physical address map of a hardware DSM machine. This runs before the
// engine starts, so the cross-node table writes are safe. First-touch
// pages are deferred to the page-fault path.
func (s *System) SetupSegment(seg *vm.Segment) {
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + mem.VA(i*mem.PageSize)
		home := s.m.VM.Home(va)
		if home < 0 {
			continue // first touch: resolved at fault time
		}
		pa, err := s.m.Mems[home].AllocFrame(mem.TagReadWrite)
		if err != nil {
			panic(&Error{Op: "alloc-frame", Node: home, VA: va, Msg: err.Error()})
		}
		pte := vm.PTE{PA: pa, Writable: true, Mode: seg.Mode}
		for n := 0; n < s.m.Cfg.Nodes; n++ {
			s.m.VM.Table(n).Map(va.VPN(), pte)
		}
	}
}

// segMode returns the segment mode covering va (ModeUser when no
// segment matches, as the old fault path did).
func (s *System) segMode(va mem.VA) int {
	for _, seg := range s.m.VM.Segments() {
		if va >= seg.Base && va < seg.End() {
			return seg.Mode
		}
	}
	return vm.ModeUser
}

// PageFault implements machine.MemSystem: only first-touch pages fault.
// The faulting processor asks the page's arbiter (a static function of
// the VPN, so all claimants agree without shared state) to resolve the
// home, and parks until its own agent has installed the translation.
// The first claimant becomes the home and allocates the frame from its
// own memory; later claimants are granted the winner's frame.
func (s *System) PageFault(p *machine.Proc, va mem.VA, write bool) {
	if !vm.IsShared(va) {
		panic(&Error{Op: "page-fault", Node: p.ID(), VA: va, Msg: "page fault on non-shared address"})
	}
	arb := int(va.VPN() % uint64(s.m.Cfg.Nodes))
	s.m.Net.Send(&network.Packet{
		Src: p.ID(), Dst: arb, VNet: network.VNetRequest,
		Handler: hClaim, Args: []uint64{va.VPN()},
	})
	p.Ctx.Park("dirnnb page fault")
	// The translation is installed (by this node's agent) before the
	// unpark, so the caller's retry succeeds.
}

func (ns *nodeState) entryFor(block mem.PA) *entry {
	e, ok := ns.dir[block]
	if !ok {
		e = &entry{owner: -1, sharers: newNodeSet(ns.sys.m.Cfg.Nodes)}
		ns.dir[block] = e
	}
	return e
}

// coherTarget is one remote cache a coherence action must reach.
type coherTarget struct {
	node   int
	recall bool
}

// evalOut is what one directory evaluation owes the requester.
type evalOut struct {
	fill cache.LineState
	// dirOp is the directory occupancy (DirBase + per-message and block
	// transfer terms).
	dirOp sim.Time
	// coherLocal: the only coherence target was the home node's own
	// cache — a local bus transaction (InvalProc), no network legs.
	coherLocal bool
	// hadCoher: some coherence work (recall or invalidation) happened.
	hadCoher bool
	// targets are the remote caches that must ack before the requester
	// may proceed (a network round trip plus InvalProc, paid once — the
	// fan-out is parallel and the requester waits for the slowest).
	targets []coherTarget
}

// evaluate runs one atomic directory evaluation at block's home — on the
// home's shard: from the home agent for remote requesters, or directly
// from the CPU when the requester is the home. Directory bookkeeping
// (including the requester's new state) applies immediately; remote
// cache copies are touched via the returned targets. The counter bumps
// and the latency terms mirror the pre-agent atomic model exactly.
func (s *System) evaluate(home int, block mem.PA, req int, write, upgrade bool) evalOut {
	ns := s.nodes[home]
	e := ns.entryFor(block)
	local := req == home
	var out evalOut
	dirMsgs := 0 // messages the directory sends (5 cycles each)
	dirRecvBlock := false
	dirSendBlock := !upgrade && !local // data travels home->requester

	// Recall a dirty copy held by another cache. When the owner is the
	// home node's own cache, the recall is a local bus transaction with
	// no network legs.
	if e.owner >= 0 && e.owner != req {
		ns.hot.dirtyRecalls++
		dirRecvBlock = true
		out.hadCoher = true
		if e.owner == home {
			out.coherLocal = true
			if write {
				s.m.Caches[home].Invalidate(block)
			} else {
				s.m.Caches[home].Downgrade(block)
			}
		} else {
			dirMsgs++ // recall message
			out.targets = append(out.targets, coherTarget{node: e.owner, recall: true})
		}
		if !write {
			e.sharers.add(e.owner)
		}
		e.owner = -1
	}

	// Invalidate other sharers on a write. Invalidations fan out in
	// parallel; the writer waits for the slowest: a network round trip
	// when any target is remote to the home, a bus transaction when the
	// only copy is in the home node's own cache.
	if write {
		invals, remoteInvals := 0, 0
		for _, n := range e.sharers.members() {
			if n == req {
				continue
			}
			if n == home {
				s.m.Caches[home].Invalidate(block)
			} else {
				out.targets = append(out.targets, coherTarget{node: n})
				remoteInvals++
			}
			e.sharers.remove(n)
			invals++
		}
		if invals > 0 {
			ns.hot.invalidations += uint64(invals)
			dirMsgs += remoteInvals
			out.hadCoher = true
			if remoteInvals == 0 {
				out.coherLocal = true
			}
		}
	}

	// Directory bookkeeping for the requester.
	if write {
		e.owner = req
		e.sharers.clear()
	} else {
		e.sharers.add(req)
	}

	out.fill = cache.LineShared
	if write || (e.owner == req) || (e.sharers.count() == 1 && e.sharers.has(req) && e.owner < 0) {
		// MBus-style ownership: a read with no other cached copies
		// returns an owned (Exclusive) copy, as on Typhoon (§5.4).
		out.fill = cache.LineExclusive
		if !write {
			e.owner = req
			e.sharers.clear()
		}
	}

	out.dirOp = DirBase + DirPerMsg*sim.Time(dirMsgs+1) // +1: the response itself
	if dirRecvBlock {
		out.dirOp += DirBlockRecv
	}
	if dirSendBlock {
		out.dirOp += DirBlockSend
	}

	switch {
	case local && !out.hadCoher && !upgrade:
		ns.hot.localMisses++
	case local:
		ns.hot.localDirMisses++
	case upgrade:
		ns.hot.remoteUpgrades++
	default:
		ns.hot.remoteMisses++
	}
	ns.hot.dirMessages += uint64(dirMsgs + 1)
	return out
}

// sendCoher launches the invalidations/recalls of one evaluation and
// registers the transaction awaiting their acks. Runs at the home (CPU
// or agent); the messages carry the action and the acks carry the txn id
// back. A write request's recall invalidates the old owner's copy, a
// read request's recall downgrades it — matching the cache operations
// the old atomic model applied in place.
func (s *System) sendCoher(home int, block mem.PA, out evalOut, tx *txn) {
	ns := s.nodes[home]
	id := ns.nextTxn
	ns.nextTxn++
	tx.block = block
	tx.fill = out.fill
	tx.acksLeft = len(out.targets)
	ns.txns[id] = tx
	var recallWrite uint64
	if tx.write {
		recallWrite = 1
	}
	for _, t := range out.targets {
		if t.recall {
			s.m.Net.Send(&network.Packet{
				Src: home, Dst: t.node, VNet: network.VNetReply,
				Handler: hRecall, Args: []uint64{uint64(block), id, recallWrite},
			})
		} else {
			s.m.Net.Send(&network.Packet{
				Src: home, Dst: t.node, VNet: network.VNetReply,
				Handler: hInval, Args: []uint64{uint64(block), id},
			})
		}
	}
}

// ServiceMiss implements machine.MemSystem. The request travels to the
// block's home as a message; the home agent evaluates the directory
// atomically at its own clock and the composed Table 2 latency comes
// back on the reply's delivery time. The requesting processor parks for
// exactly the closed-form latency of the old synchronous model.
func (s *System) ServiceMiss(p *machine.Proc, va mem.VA, pa mem.PA, pte vm.PTE, write, upgrade bool) cache.LineState {
	// Private pages bypass the directory entirely.
	if pte.Mode == vm.ModePrivate {
		p.Ctx.Advance(s.m.Cfg.LocalMissCycles)
		s.nodes[p.ID()].hot.privateMisses++
		return cache.LineExclusive
	}
	req := p.ID()
	home := pa.Node()
	block := s.m.Mems[home].BlockBase(pa)
	cfg := &s.m.Cfg

	if req == home {
		// Local requester: the CPU is on the home's shard and evaluates
		// the directory directly, like the hardware it shares a bus with.
		out := s.evaluate(home, block, req, write, upgrade)
		if len(out.targets) == 0 {
			// No remote copies to chase: the whole action is synchronous.
			// (A home-local coherence target is impossible here — the
			// only local cache is the requester's own.)
			if !out.hadCoher && !upgrade {
				p.Ctx.Advance(cfg.LocalMissCycles) // pure local miss
			} else {
				p.Ctx.Advance(cfg.LocalMissCycles + out.dirOp)
			}
			return out.fill
		}
		// Remote copies must be invalidated/recalled first: launch the
		// messages and park; the home agent wakes the CPU on the last
		// ack (one round trip + InvalProc later), after which the local
		// miss and directory occupancy are charged.
		ns := s.nodes[req]
		ns.fillValid = false
		s.sendCoher(home, block, out, &txn{req: req, write: write})
		p.Ctx.Park("dirnnb miss")
		if !ns.fillValid {
			panic(fmt.Sprintf("dirnnb: node %d woke from local miss without a fill", req))
		}
		p.Ctx.Advance(cfg.LocalMissCycles + out.dirOp)
		return ns.fill
	}

	// Remote requester: issue the request and park until the reply. The
	// reply's delivery time carries the whole formula: RemoteIssue +
	// net + dirOp (+ coherence) + net, with RemoteFill charged on wake.
	ns := s.nodes[req]
	ns.fillValid = false
	var flags uint64
	if write {
		flags |= reqWrite
	}
	if upgrade {
		flags |= reqUpgrade
	}
	s.m.Net.Send(&network.Packet{
		Src: req, Dst: home, VNet: network.VNetRequest,
		Handler: hReq, Args: []uint64{uint64(block), flags},
	})
	p.Ctx.Advance(RemoteIssue)
	p.Ctx.Park("dirnnb miss")
	if !ns.fillValid {
		panic(fmt.Sprintf("dirnnb: node %d woke from remote miss without a fill", req))
	}
	if !upgrade {
		p.Ctx.Advance(RemoteFill)
	}
	return ns.fill
}

// Evicted implements machine.MemSystem: it updates the directory for the
// displaced block — directly when this node is the home, else with an
// eviction notice to the home agent — and charges the Table 2
// replacement cost when the victim's home is remote.
func (s *System) Evicted(p *machine.Proc, victim mem.PA, state cache.LineState) {
	me := p.ID()
	home := victim.Node()
	if home == me {
		s.nodes[me].applyEvict(victim, me)
		return
	}
	s.m.Net.Send(&network.Packet{
		Src: me, Dst: home, VNet: network.VNetRequest,
		Handler: hEvict, Args: []uint64{uint64(victim)},
	})
	ns := s.nodes[me]
	if state == cache.LineExclusive {
		p.Ctx.AdvanceAtomic(ReplExclusive)
		ns.hot.replExclusive++
	} else {
		p.Ctx.AdvanceAtomic(ReplShared)
		ns.hot.replShared++
	}
}

// applyEvict removes node's residency from the victim's directory entry.
func (ns *nodeState) applyEvict(victim mem.PA, node int) {
	if e, ok := ns.dir[victim]; ok {
		e.sharers.remove(node)
		if e.owner == node {
			e.owner = -1
		}
	}
}

// DispatchMessage implements agent.Dispatcher: one directory-hardware
// message. The agent charges no occupancy here — directory and
// invalidation processing costs ride on the response messages' send
// delays (network.SendAfter), composing the closed-form latencies while
// the state change itself happens atomically at dispatch.
func (ns *nodeState) DispatchMessage(c *sim.Context, pkt *network.Packet) {
	s := ns.sys
	switch pkt.Handler {
	case hReq:
		block := mem.PA(pkt.Args[0])
		flags := pkt.Args[1]
		req := pkt.Src
		write := flags&reqWrite != 0
		upgrade := flags&reqUpgrade != 0
		out := s.evaluate(ns.node, block, req, write, upgrade)
		extra := RemoteIssue + out.dirOp
		if len(out.targets) == 0 {
			if out.coherLocal {
				extra += InvalProc
			}
			ns.reply(req, block, out.fill, extra)
			return
		}
		s.sendCoher(ns.node, block, out, &txn{req: req, write: write, replyExtra: extra})

	case hReply:
		ns.fill = cache.LineState(pkt.Args[1])
		ns.fillValid = true
		s.m.Procs[ns.node].Ctx.Unpark(c.Time())

	case hInval:
		s.m.Caches[ns.node].Invalidate(mem.PA(pkt.Args[0]))
		ns.ack(pkt.Src, pkt.Args[1])

	case hRecall:
		block := mem.PA(pkt.Args[0])
		if pkt.Args[2] != 0 {
			s.m.Caches[ns.node].Invalidate(block)
		} else {
			s.m.Caches[ns.node].Downgrade(block)
		}
		ns.ack(pkt.Src, pkt.Args[1])

	case hAck:
		id := pkt.Args[0]
		tx := ns.txns[id]
		if tx == nil {
			panic(fmt.Sprintf("dirnnb: node %d acked unknown txn %d", ns.node, id))
		}
		tx.acksLeft--
		if tx.acksLeft > 0 {
			return
		}
		delete(ns.txns, id)
		if tx.req == ns.node {
			// Local requester: wake the parked CPU; it charges its own
			// local-miss and directory terms.
			ns.fill = tx.fill
			ns.fillValid = true
			s.m.Procs[ns.node].Ctx.Unpark(c.Time())
			return
		}
		ns.reply(tx.req, tx.block, tx.fill, tx.replyExtra)

	case hEvict:
		ns.applyEvict(mem.PA(pkt.Args[0]), pkt.Src)

	case hClaim:
		ns.handleClaim(c, pkt.Args[0], pkt.Src)

	case hGrantHome:
		// This node won the first touch: allocate the frame from its own
		// memory, install its own translation, wake its processor, and
		// report the frame to the arbiter for later claimants.
		vpn := pkt.Args[0]
		pa := ns.mapOwn(vpn, 0, true)
		s.m.Net.Send(&network.Packet{
			Src: ns.node, Dst: pkt.Src, VNet: network.VNetRequest,
			Handler: hMapped, Args: []uint64{vpn, uint64(pa)},
		})
		s.m.Procs[ns.node].Ctx.Unpark(c.Time())

	case hGrant:
		ns.mapOwn(pkt.Args[0], mem.PA(pkt.Args[1]), false)
		s.m.Procs[ns.node].Ctx.Unpark(c.Time())

	case hMapped:
		vpn := pkt.Args[0]
		cl := ns.claims[vpn]
		cl.pa = mem.PA(pkt.Args[1])
		cl.mapped = true
		for _, w := range cl.waiters {
			ns.grant(c, cl, w)
		}
		cl.waiters = nil

	default:
		panic(fmt.Sprintf("dirnnb: node %d received unknown handler %d", ns.node, pkt.Handler))
	}
}

// reply sends the miss response, its delivery delayed by the modeled
// issue + directory (+ local coherence) occupancy.
func (ns *nodeState) reply(req int, block mem.PA, fill cache.LineState, extra sim.Time) {
	ns.sys.m.Net.SendAfter(&network.Packet{
		Src: ns.node, Dst: req, VNet: network.VNetReply,
		Handler: hReply, Args: []uint64{uint64(block), uint64(fill)},
	}, extra)
}

// ack answers an invalidation/recall after the cache's InvalProc cycles.
func (ns *nodeState) ack(home int, id uint64) {
	ns.sys.m.Net.SendAfter(&network.Packet{
		Src: ns.node, Dst: home, VNet: network.VNetReply,
		Handler: hAck, Args: []uint64{id},
	}, InvalProc)
}

// handleClaim arbitrates one first-touch claim at the page's arbiter.
func (ns *nodeState) handleClaim(c *sim.Context, vpn uint64, claimant int) {
	cl, ok := ns.claims[vpn]
	if !ok {
		// First claimant wins: it becomes the home.
		ns.hot.firstTouchClaims++
		cl = &claim{vpn: vpn, home: claimant}
		ns.claims[vpn] = cl
		if claimant == ns.node {
			// Arbiter, claimant and home are all this node.
			cl.pa = ns.mapOwn(vpn, 0, true)
			cl.mapped = true
			ns.sys.m.Procs[ns.node].Ctx.Unpark(c.Time())
			return
		}
		ns.sys.m.Net.Send(&network.Packet{
			Src: ns.node, Dst: claimant, VNet: network.VNetReply,
			Handler: hGrantHome, Args: []uint64{vpn},
		})
		return
	}
	if cl.mapped {
		ns.grant(c, cl, claimant)
		return
	}
	cl.waiters = append(cl.waiters, claimant)
}

// grant delivers a resolved first-touch frame to a later claimant —
// directly when the claimant is the arbiter itself, else as an hGrant
// message to the claimant's agent.
func (ns *nodeState) grant(c *sim.Context, cl *claim, claimant int) {
	if claimant == ns.node {
		ns.mapOwn(cl.vpn, cl.pa, false)
		ns.sys.m.Procs[ns.node].Ctx.Unpark(c.Time())
		return
	}
	ns.sys.m.Net.Send(&network.Packet{
		Src: ns.node, Dst: claimant, VNet: network.VNetReply,
		Handler: hGrant, Args: []uint64{cl.vpn, uint64(cl.pa)},
	})
}

// mapOwn installs this node's translation for vpn. With alloc set the
// node is the page's home and allocates the frame from its own memory.
func (ns *nodeState) mapOwn(vpn uint64, pa mem.PA, alloc bool) mem.PA {
	s := ns.sys
	va := mem.VA(vpn * mem.PageSize)
	if alloc {
		var err error
		pa, err = s.m.Mems[ns.node].AllocFrame(mem.TagReadWrite)
		if err != nil {
			panic(&Error{Op: "alloc-frame", Node: ns.node, VA: va, Msg: err.Error()})
		}
	}
	s.m.VM.Table(ns.node).MapPage(va, pa, s.segMode(va))
	return pa
}

// nodeSet is a bit set of node IDs.
type nodeSet []uint64

func newNodeSet(n int) nodeSet { return make(nodeSet, (n+63)/64) }

func (ns nodeSet) add(n int)      { ns[n/64] |= 1 << (n % 64) }
func (ns nodeSet) remove(n int)   { ns[n/64] &^= 1 << (n % 64) }
func (ns nodeSet) has(n int) bool { return ns[n/64]&(1<<(n%64)) != 0 }
func (ns nodeSet) clear() {
	for i := range ns {
		ns[i] = 0
	}
}
func (ns nodeSet) count() int {
	c := 0
	for _, w := range ns {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}
func (ns nodeSet) members() []int {
	var out []int
	for i, w := range ns {
		for w != 0 {
			b := i*64 + bits.TrailingZeros64(w)
			out = append(out, b)
			w &= w - 1
		}
	}
	return out
}
