package dirnnb

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/vm"
)

func newM(t *testing.T, nodes int) (*machine.Machine, *System) {
	t.Helper()
	m := machine.New(machine.Config{
		Nodes:     nodes,
		CacheSize: 4096,
		Seed:      1,
	})
	s := New(m)
	return m, s
}

// run executes body SPMD and fails the test on simulator errors.
func run(t *testing.T, m *machine.Machine, body func(p *machine.Proc)) machine.Result {
	t.Helper()
	res, err := m.Run(body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestLocalMissLatency(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	run(t, m, func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(0))
		// 1 instruction + 25 TLB miss + 29 local miss.
		if got := p.Ctx.Time() - t0; got != 1+25+29 {
			t.Errorf("local cold read cost %d, want 55", got)
		}
		t1 := p.Ctx.Time()
		p.ReadU64(seg.At(8)) // same block, same page: pure cache hit
		if got := p.Ctx.Time() - t1; got != 1 {
			t.Errorf("cached read cost %d, want 1", got)
		}
	})
}

func TestRemoteCleanReadMissLatency(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	run(t, m, func(p *machine.Proc) {
		if p.ID() != 1 {
			return
		}
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(0))
		// 1 + TLB 25 + [23 issue + 11 net + dirOp(16 + 5*1 + 11 blockSend)
		// + 11 net + 34 fill] = 1 + 25 + 111.
		if got := p.Ctx.Time() - t0; got != 1+25+111 {
			t.Errorf("remote clean read cost %d, want %d", got, 1+25+111)
		}
	})
}

func TestReadAfterRemoteWriteSeesValue(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	var got uint64
	run(t, m, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 777)
		}
		p.Barrier()
		if p.ID() == 1 {
			got = p.ReadU64(seg.At(0))
		}
	})
	if got != 777 {
		t.Fatalf("node 1 read %d, want 777", got)
	}
}

func TestWriteInvalidatesRemoteSharers(t *testing.T) {
	m, _ := newM(t, 4)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	vals := make([]uint64, 4)
	res := run(t, m, func(p *machine.Proc) {
		p.ReadU64(seg.At(0)) // everyone caches the block
		p.Barrier()
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 42)
		}
		p.Barrier()
		vals[p.ID()] = p.ReadU64(seg.At(0)) // sharers must refetch
	})
	for n, v := range vals {
		if v != 42 {
			t.Errorf("node %d read %d, want 42", n, v)
		}
	}
	if res.Counters.Get("dirnnb.invalidations") == 0 {
		t.Error("write to shared block produced no invalidations")
	}
}

func TestDirtyRecallOnRemoteRead(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	var got uint64
	res := run(t, m, func(p *machine.Proc) {
		if p.ID() == 1 {
			p.WriteU64(seg.At(0), 99) // node 1 holds the block dirty
		}
		p.Barrier()
		if p.ID() == 0 {
			got = p.ReadU64(seg.At(0)) // home must recall from node 1
		}
	})
	if got != 99 {
		t.Fatalf("home read %d, want 99", got)
	}
	if res.Counters.Get("dirnnb.dirty_recalls") == 0 {
		t.Error("no dirty recall recorded")
	}
}

func TestUpgradeChargesOwnershipOnly(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	run(t, m, func(p *machine.Proc) {
		// Both nodes read first so node 1 holds the block Shared.
		p.ReadU64(seg.At(0))
		p.Barrier()
		if p.ID() != 1 {
			return
		}
		t0 := p.Ctx.Time()
		p.WriteU64(seg.At(0), 5)
		cost := p.Ctx.Time() - t0
		// Upgrade: 1 + 23 + 11 + dirOp + 11, no 34 fill. The only
		// sharer to invalidate is node 0, the home itself: a local bus
		// transaction (8 cycles), not a network round trip.
		want := sim.Time(1) + RemoteIssue + 11 + (DirBase + DirPerMsg) + 11 + InvalProc
		if cost != want {
			t.Errorf("upgrade cost %d, want %d", cost, want)
		}
	})
}

func TestExclusiveFillOnUnsharedRead(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	run(t, m, func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		p.ReadU64(seg.At(0))
		t0 := p.Ctx.Time()
		p.WriteU64(seg.At(0), 1) // E-state: silent write, 1 cycle
		if got := p.Ctx.Time() - t0; got != 1 {
			t.Errorf("write after unshared read cost %d, want 1 (E-state)", got)
		}
	})
}

func TestPrivatePagesBypassDirectory(t *testing.T) {
	m, _ := newM(t, 2)
	var va mem.VA
	run(t, m, func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		va = p.Machine().AllocPrivate(0, mem.PageSize)
		t0 := p.Ctx.Time()
		p.WriteU64(va, 3)
		// 1 + TLB 25 + 29 local miss, Exclusive fill: next write 1 cycle.
		if got := p.Ctx.Time() - t0; got != 55 {
			t.Errorf("private cold write cost %d, want 55", got)
		}
		t1 := p.Ctx.Time()
		p.WriteU64(va, 4)
		if got := p.Ctx.Time() - t1; got != 1 {
			t.Errorf("private warm write cost %d, want 1", got)
		}
	})
}

func TestRoundRobinPlacementSpreadsHomes(t *testing.T) {
	m, _ := newM(t, 4)
	seg := m.AllocShared("arr", 8*mem.PageSize, vm.RoundRobin{}, vm.ModeUser)
	counts := make(map[int]int)
	for i := 0; i < 8; i++ {
		counts[m.VM.Home(seg.At(uint64(i*mem.PageSize)))]++
	}
	for n := 0; n < 4; n++ {
		if counts[n] != 2 {
			t.Fatalf("node %d homes %d pages, want 2", n, counts[n])
		}
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	m, _ := newM(t, 2)
	seg := m.AllocShared("ft", 2*mem.PageSize, vm.FirstTouch{}, vm.ModeUser)
	res := run(t, m, func(p *machine.Proc) {
		// Node n touches page n first.
		p.WriteU64(seg.At(uint64(p.ID()*mem.PageSize)), uint64(p.ID()))
		p.Barrier()
		// After first touch, the page is home-local: a capacity-evicted
		// reread would be a local miss. Just verify values and homes.
		if got := p.ReadU64(seg.At(uint64(p.ID() * mem.PageSize))); got != uint64(p.ID()) {
			t.Errorf("node %d read %d", p.ID(), got)
		}
	})
	if m.VM.Home(seg.At(0)) != 0 || m.VM.Home(seg.At(mem.PageSize)) != 1 {
		t.Errorf("homes = %d,%d; want 0,1", m.VM.Home(seg.At(0)), m.VM.Home(seg.At(mem.PageSize)))
	}
	if res.Counters.Get("dirnnb.first_touch_claims") != 2 {
		t.Errorf("claims = %d, want 2", res.Counters.Get("dirnnb.first_touch_claims"))
	}
}

func TestEvictionChargesReplacementAndCleansDirectory(t *testing.T) {
	// Cache: 4096 bytes, 4-way, 32B lines -> 32 sets; addresses 1024
	// bytes apart collide in one set.
	m, s := newM(t, 2)
	seg := m.AllocShared("big", 16*mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	res := run(t, m, func(p *machine.Proc) {
		if p.ID() != 1 {
			return
		}
		// Write 5 conflicting blocks: the 5th must evict a dirty one.
		for i := 0; i < 5; i++ {
			p.WriteU64(seg.At(uint64(i*1024)), uint64(i))
		}
	})
	if res.Counters.Get("dirnnb.repl_exclusive") == 0 {
		t.Error("no exclusive replacement charged")
	}
	// Directory must no longer list node 1 as owner of the victim. The
	// segment is homed on node 0, so its entries live in node 0's slice
	// of the directory.
	owners := 0
	for _, e := range s.nodes[0].dir {
		if e.owner == 1 {
			owners++
		}
	}
	if owners != 4 {
		t.Errorf("node 1 owns %d blocks in directory, want 4 after eviction", owners)
	}
}

// TestSequentialEquivalence runs a small parallel reduction and checks
// the result against the serial computation — the end-to-end coherence
// correctness check.
func TestSequentialEquivalence(t *testing.T) {
	const nodes, elems = 4, 256
	m, _ := newM(t, nodes)
	data := m.AllocShared("data", elems*8, vm.RoundRobin{}, vm.ModeUser)
	partial := m.AllocShared("partial", nodes*8, vm.OnNode{Node: 0}, vm.ModeUser)
	var total uint64
	run(t, m, func(p *machine.Proc) {
		// Each node initialises its stripe.
		for i := p.ID(); i < elems; i += nodes {
			p.WriteU64(data.At(uint64(i*8)), uint64(i))
		}
		p.Barrier()
		// Each node sums a different stripe (forcing remote reads).
		var sum uint64
		for i := (p.ID() + 1) % nodes; i < elems; i += nodes {
			sum += p.ReadU64(data.At(uint64(i * 8)))
		}
		p.WriteU64(partial.At(uint64(p.ID()*8)), sum)
		p.Barrier()
		if p.ID() == 0 {
			for n := 0; n < nodes; n++ {
				total += p.ReadU64(partial.At(uint64(n * 8)))
			}
		}
	})
	want := uint64(elems * (elems - 1) / 2)
	if total != want {
		t.Fatalf("parallel sum = %d, want %d", total, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	exec := func() sim.Time {
		m, _ := newM(t, 4)
		seg := m.AllocShared("x", 4*mem.PageSize, vm.RoundRobin{}, vm.ModeUser)
		res := run(t, m, func(p *machine.Proc) {
			for i := 0; i < 64; i++ {
				idx := uint64(((i*7 + p.ID()*13) % 512) * 8)
				if i%3 == 0 {
					p.WriteU64(seg.At(idx), uint64(i))
				} else {
					p.ReadU64(seg.At(idx))
				}
			}
			p.Barrier()
		})
		return res.Cycles
	}
	a, b := exec(), exec()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}
