package dirnnb

import (
	"hash/fnv"
	"sort"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/mem"
)

// AgentCore returns node's directory-agent core. The conformance
// recorder uses it to tap message dispatches (agent.Core.OnDispatch) and
// to cross-check occupancy accounting against a standalone replay.
func (s *System) AgentCore(node int) *agent.Core { return s.nodes[node].core }

// StateDigest folds the directory's full coherence state — every home's
// per-block entries (owner, sharers), in-flight transactions, and
// first-touch claims — into one hash, visiting nodes in order and map
// keys sorted so the value is independent of map iteration order. Equal
// digests mean equal directory state. Call only while the machine is
// not running; the conformance suite records it after Run as part of a
// trace's footer.
func (s *System) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, ns := range s.nodes {
		w(uint64(ns.node))
		blocks := make([]mem.PA, 0, len(ns.dir))
		for pa := range ns.dir {
			blocks = append(blocks, pa)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, pa := range blocks {
			e := ns.dir[pa]
			w(uint64(pa))
			w(uint64(uint32(e.owner)) + 1)
			for _, m := range e.sharers.members() {
				w(uint64(m) + 1)
			}
			w(^uint64(0)) // sharer-list terminator
		}
		// In-flight transactions and claims are keyed by monotonically
		// assigned IDs / VPNs; sort for determinism. A quiescent machine
		// (post-Run) has none, but a digest taken at a barrier must not
		// depend on map order either.
		txids := make([]uint64, 0, len(ns.txns))
		for id := range ns.txns {
			txids = append(txids, id)
		}
		sort.Slice(txids, func(i, j int) bool { return txids[i] < txids[j] })
		for _, id := range txids {
			tx := ns.txns[id]
			w(id)
			w(uint64(tx.block))
			w(uint64(uint32(tx.req))<<32 | uint64(uint16(tx.acksLeft))<<16 | uint64(tx.fill)<<8 |
				map[bool]uint64{false: 0, true: 1}[tx.write])
		}
		w(^uint64(0))
		vpns := make([]uint64, 0, len(ns.claims))
		for vpn := range ns.claims {
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			cl := ns.claims[vpn]
			w(vpn)
			w(uint64(uint32(cl.home))<<32 | uint64(cl.pa)&0xFFFFFFFF)
			for _, wt := range cl.waiters {
				w(uint64(wt) + 1)
			}
			w(^uint64(0))
		}
	}
	return h.Sum64()
}
