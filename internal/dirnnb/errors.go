package dirnnb

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/mem"
)

// Error is a structured DirNNB failure on a user-reachable condition —
// a page fault outside the shared segment, or a home node running out of
// frames. Protocol code panics with an *Error; the engine's context
// recovery wraps (not flattens) error values, so harness.Run can
// errors.As the failure out of the run error and report it per sweep
// point instead of crashing a whole sweep.
type Error struct {
	// Op names the failing operation: "page-fault" or "alloc-frame".
	Op string
	// Node is the node the failure occurred on (-1 at setup time).
	Node int
	// VA is the faulting virtual address, when the failure has one.
	VA mem.VA
	// Msg describes the condition.
	Msg string
}

func (e *Error) Error() string {
	if e.VA != 0 {
		return fmt.Sprintf("dirnnb: %s on node %d (va %#x): %s", e.Op, e.Node, e.VA, e.Msg)
	}
	return fmt.Sprintf("dirnnb: %s on node %d: %s", e.Op, e.Node, e.Msg)
}
