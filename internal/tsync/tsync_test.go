package tsync

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

func newM(t *testing.T, nodes int) (*machine.Machine, *Manager, *stache.Protocol) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, CacheSize: 4096, Seed: 1})
	st := stache.New()
	sys := typhoon.New(m, st)
	mgr := New(sys, 4, 4)
	return m, mgr, st
}

// TestMutualExclusion increments a shared counter non-atomically under a
// lock: without mutual exclusion updates would be lost (the unprotected
// version provably loses them in TestRacyBaselineLosesUpdates).
func TestMutualExclusion(t *testing.T) {
	const nodes, iters = 6, 8
	m, mgr, st := newM(t, nodes)
	seg := m.AllocShared("ctr", mem.PageSize, vm.OnNode{Node: 0}, 0)
	_, err := m.Run(func(p *machine.Proc) {
		for i := 0; i < iters; i++ {
			mgr.Acquire(p, 0)
			v := p.ReadU64(seg.At(0))
			p.Compute(5)
			p.WriteU64(seg.At(0), v+1)
			mgr.Release(p, 0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := apps.ReadBackU64(m, seg.At(0)); got != nodes*iters {
		t.Fatalf("counter = %d, want %d", got, nodes*iters)
	}
}

// TestRacyBaselineLosesUpdates demonstrates why the lock matters: the
// same increment loop without the lock loses updates.
func TestRacyBaselineLosesUpdates(t *testing.T) {
	const nodes, iters = 6, 8
	m, _, _ := newM(t, nodes)
	seg := m.AllocShared("ctr", mem.PageSize, vm.OnNode{Node: 0}, 0)
	if _, err := m.Run(func(p *machine.Proc) {
		for i := 0; i < iters; i++ {
			v := p.ReadU64(seg.At(0))
			p.Compute(5)
			p.WriteU64(seg.At(0), v+1)
		}
		p.Barrier()
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := apps.ReadBackU64(m, seg.At(0)); got >= nodes*iters {
		t.Skipf("racy run coincidentally lost nothing (%d)", got)
	}
}

// TestLockFIFOFairness: waiters are granted in arrival order.
func TestLockFIFOFairness(t *testing.T) {
	const nodes = 5
	m, mgr, _ := newM(t, nodes)
	var order []int
	_, err := m.Run(func(p *machine.Proc) {
		// Stagger arrivals deterministically.
		p.Compute(10 * (p.ID() + 1))
		mgr.Acquire(p, 1)
		order = append(order, p.ID())
		p.Compute(200) // hold long enough that everyone queues
		mgr.Release(p, 1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != nodes {
		t.Fatalf("grants = %v", order)
	}
	// Arrival order is by staggered compute: 0,1,2,...
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order = %v, want FIFO by arrival", order)
		}
	}
}

// TestFetchAddTotalsExactly: concurrent fetch-and-adds never lose
// updates and return unique pre-images.
func TestFetchAddTotalsExactly(t *testing.T) {
	const nodes, iters = 8, 5
	m, mgr, _ := newM(t, nodes)
	seen := make(map[uint64]bool)
	_, err := m.Run(func(p *machine.Proc) {
		for i := 0; i < iters; i++ {
			old := mgr.FetchAdd(p, 2, 1)
			if seen[old] {
				t.Errorf("duplicate pre-image %d", old)
			}
			seen[old] = true
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != nodes*iters {
		t.Fatalf("pre-images = %d, want %d", len(seen), nodes*iters)
	}
	for v := uint64(0); v < nodes*iters; v++ {
		if !seen[v] {
			t.Fatalf("missing pre-image %d", v)
		}
	}
}

// TestMultipleLocksIndependent: different locks do not serialize each
// other (they live on different home nodes).
func TestMultipleLocksIndependent(t *testing.T) {
	m, mgr, _ := newM(t, 4)
	_, err := m.Run(func(p *machine.Proc) {
		id := p.ID() % 4
		for i := 0; i < 5; i++ {
			mgr.Acquire(p, id)
			p.Compute(10)
			mgr.Release(p, id)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestLockOutOfRangePanics(t *testing.T) {
	m, mgr, _ := newM(t, 2)
	_, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
				panic("rethrow to end context cleanly")
			}()
			mgr.Acquire(p, 99)
		}
	})
	if err == nil {
		t.Fatal("expected run error from rethrown panic")
	}
}
