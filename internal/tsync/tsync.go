// Package tsync implements synchronization primitives as user-level
// Tempest code — the extension the paper's §2 footnote flags as future
// work ("we are investigating adding a set of synchronization
// primitives, to allow aggressive hardware implementations of common
// operations"). Each primitive is managed by an NP handler at a home
// node: a FIFO queue lock granted by message, and a fetch-and-add
// counter, both built purely from the active-message mechanism —
// no shared-memory polling, no extra hardware.
package tsync

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// DefaultHandlerBase is where tsync registers its four message handlers
// unless configured otherwise; protocols below it (Stache uses 16-26,
// the EM3D update protocol 27-31) stay clear.
const DefaultHandlerBase uint32 = 48

// Manager serves a fixed set of locks and counters, each homed on
// lockID % nodes (respectively counterID % nodes).
type Manager struct {
	sys  *typhoon.System
	base uint32

	locks    []lockState
	counters []uint64

	// Per-node wakeup state: at most one outstanding acquire or
	// fetch-and-add per compute thread.
	granted []bool
	fetched []uint64
	waiter  []*machine.Proc
}

type lockState struct {
	held  bool
	queue []int32 // waiting nodes, FIFO
}

// New registers a manager for nLocks locks and nCounters counters on
// sys. Call before the machine runs.
func New(sys *typhoon.System, nLocks, nCounters int) *Manager {
	return NewAt(sys, nLocks, nCounters, DefaultHandlerBase)
}

// NewAt is New with an explicit handler-ID base (four consecutive IDs).
func NewAt(sys *typhoon.System, nLocks, nCounters int, base uint32) *Manager {
	nodes := sys.M.Cfg.Nodes
	m := &Manager{
		sys:      sys,
		base:     base,
		locks:    make([]lockState, nLocks),
		counters: make([]uint64, nCounters),
		granted:  make([]bool, nodes),
		fetched:  make([]uint64, nodes),
		waiter:   make([]*machine.Proc, nodes),
	}
	sys.RegisterHandler(base+0, m.handleAcquire)
	sys.RegisterHandler(base+1, m.handleGrant)
	sys.RegisterHandler(base+2, m.handleRelease)
	sys.RegisterHandler(base+3, m.handleFetchAdd)
	sys.RegisterHandler(base+4, m.handleFetchAddReply)
	return m
}

func (m *Manager) lockHome(id int) int { return id % m.sys.M.Cfg.Nodes }

// Acquire takes lock id, blocking the calling processor until the home
// NP grants it. Grants are FIFO.
func (m *Manager) Acquire(p *machine.Proc, id int) {
	if id < 0 || id >= len(m.locks) {
		panic(fmt.Sprintf("tsync: lock %d out of range", id))
	}
	node := p.ID()
	m.granted[node] = false
	m.waiter[node] = p
	m.sys.Send(p, network.VNetRequest, m.lockHome(id), m.base+0,
		[]uint64{uint64(id), uint64(node)}, nil)
	for !m.granted[node] {
		p.Ctx.Park(fmt.Sprintf("lock %d", id))
	}
	m.waiter[node] = nil
}

// Release returns lock id; the home NP hands it to the next waiter.
func (m *Manager) Release(p *machine.Proc, id int) {
	m.sys.Send(p, network.VNetRequest, m.lockHome(id), m.base+2,
		[]uint64{uint64(id)}, nil)
}

// FetchAdd atomically adds delta to counter id at its home NP and
// returns the previous value, blocking the caller for the round trip.
func (m *Manager) FetchAdd(p *machine.Proc, id int, delta uint64) uint64 {
	if id < 0 || id >= len(m.counters) {
		panic(fmt.Sprintf("tsync: counter %d out of range", id))
	}
	node := p.ID()
	m.granted[node] = false
	m.waiter[node] = p
	m.sys.Send(p, network.VNetRequest, m.lockHome(id), m.base+3,
		[]uint64{uint64(id), uint64(node), delta}, nil)
	for !m.granted[node] {
		p.Ctx.Park(fmt.Sprintf("fetch-add %d", id))
	}
	m.waiter[node] = nil
	return m.fetched[node]
}

// --- NP handlers (home side) ---

func (m *Manager) handleAcquire(np *typhoon.NP, pkt *network.Packet) {
	id := int(pkt.Args[0])
	requester := int(pkt.Args[1])
	l := &m.locks[id]
	np.Charge(6)
	if l.held {
		l.queue = append(l.queue, int32(requester))
		return
	}
	l.held = true
	np.SendReply(requester, m.base+1, []uint64{uint64(id)}, nil)
}

func (m *Manager) handleRelease(np *typhoon.NP, pkt *network.Packet) {
	id := int(pkt.Args[0])
	l := &m.locks[id]
	np.Charge(6)
	if !l.held {
		panic(fmt.Sprintf("tsync: release of free lock %d", id))
	}
	if len(l.queue) == 0 {
		l.held = false
		return
	}
	next := int(l.queue[0])
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	np.SendReply(next, m.base+1, []uint64{uint64(id)}, nil)
}

func (m *Manager) handleFetchAdd(np *typhoon.NP, pkt *network.Packet) {
	id := int(pkt.Args[0])
	requester := int(pkt.Args[1])
	delta := pkt.Args[2]
	np.Charge(6)
	old := m.counters[id]
	m.counters[id] += delta
	np.SendReply(requester, m.base+4, []uint64{old}, nil)
}

// --- NP handlers (requester side) ---

func (m *Manager) handleGrant(np *typhoon.NP, pkt *network.Packet) {
	node := np.Node()
	m.granted[node] = true
	np.Charge(3)
	if w := m.waiter[node]; w != nil {
		w.Ctx.Unpark(np.Time())
	}
}

func (m *Manager) handleFetchAddReply(np *typhoon.NP, pkt *network.Packet) {
	node := np.Node()
	m.fetched[node] = pkt.Args[0]
	m.granted[node] = true
	np.Charge(3)
	if w := m.waiter[node]; w != nil {
		w.Ctx.Unpark(np.Time())
	}
}
