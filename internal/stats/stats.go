// Package stats provides the counter sets and plain-text table rendering
// the simulator and benchmark harness use to report results.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counters is a named set of monotonic event counts. The zero value is
// ready to use; the map is allocated on first write.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Add increments a counter by n.
func (c *Counters) Add(name string, n uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += n
}

// Inc increments a counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns a counter's value (zero if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Merge adds every counter in other into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.m {
		c.Add(k, v)
	}
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the underlying map.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Table is a plain-text table with a title, for harness output that
// mirrors the paper's tables and figure series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table, column-aligned, to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// A row may carry more cells than the header; cells past the
			// last column print unpadded instead of panicking.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with three significant decimals for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// D formats an integer counter for table cells.
func D(v uint64) string { return fmt.Sprintf("%d", v) }
