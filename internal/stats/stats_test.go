package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("a", 2)
	c.Add("b", 5)
	if c.Get("a") != 3 || c.Get("b") != 5 || c.Get("missing") != 0 {
		t.Fatalf("values: a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merged: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
	if b.Get("x") != 2 {
		t.Fatal("merge mutated source")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	c := NewCounters()
	c.Add("k", 7)
	snap := c.Snapshot()
	snap["k"] = 99
	if c.Get("k") != 7 {
		t.Fatal("snapshot aliases the counter map")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "23456")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	// All data rows align: the value column starts at the same offset.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:] {
		if len(ln) < idx {
			t.Errorf("row too short: %q", ln)
		}
	}
	if !strings.Contains(out, "-----") {
		t.Error("missing rule line")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if D(42) != "42" {
		t.Errorf("D = %q", D(42))
	}
}

// Property: merge is additive for any pair of counter sets.
func TestMergeProperty(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a, b := NewCounters(), NewCounters()
		var sum uint64
		for _, v := range av {
			a.Add("k", uint64(v))
			sum += uint64(v)
		}
		for _, v := range bv {
			b.Add("k", uint64(v))
			sum += uint64(v)
		}
		a.Merge(b)
		return a.Get("k") == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTableRenderWideRow is the regression test for the writeRow panic:
// a row carrying more cells than the header must render (extra cells
// unpadded), not index past the widths slice.
func TestTableRenderWideRow(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2", "3-beyond-the-header", "4")
	tab.AddRow("5")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"3-beyond-the-header", "4", "5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render dropped cell %q:\n%s", want, out)
		}
	}
}

// TestCountersZeroValue pins that the zero value of Counters is usable:
// Add, Inc, Merge, Get, Names, and Snapshot all work without NewCounters.
func TestCountersZeroValue(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("Get on zero value")
	}
	c.Inc("x")
	c.Add("x", 2)
	if c.Get("x") != 3 {
		t.Fatalf("x = %d, want 3", c.Get("x"))
	}

	var dst Counters
	src := NewCounters()
	src.Add("y", 5)
	dst.Merge(src)
	if dst.Get("y") != 5 {
		t.Fatalf("merged y = %d, want 5", dst.Get("y"))
	}

	var empty Counters
	if len(empty.Names()) != 0 || len(empty.Snapshot()) != 0 {
		t.Fatal("zero value should enumerate as empty")
	}
	empty.Merge(&Counters{}) // merging two zero values must not panic
}
