package stats

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTableRender feeds Table.Render arbitrary header and row shapes —
// empty headers, rows wider and narrower than the header, empty cells,
// control characters in content — and requires that rendering never
// panics and never errors on an in-memory writer. (A wide-row panic in
// writeRow was a real bug fixed in PR 1; this locks the whole shape
// space.)
func FuzzTableRender(f *testing.F) {
	f.Add("Title", "a,b,c", "1,2,3;4,5,6")
	f.Add("", "", "")                          // fully empty table
	f.Add("t", "one", "1,2,3,4,5")             // row much wider than header
	f.Add("t", "a,b,c,d,e", "1")               // row narrower than header
	f.Add("\x00\n", ",,,", ";;;")              // degenerate separators
	f.Add("wide", "h", strings.Repeat("x,", 60)+";"+strings.Repeat("y", 300))
	f.Fuzz(func(t *testing.T, title, headerSpec, rowSpec string) {
		tbl := &Table{Title: title}
		if headerSpec != "" {
			tbl.Header = strings.Split(headerSpec, ",")
		}
		if rowSpec != "" {
			for _, row := range strings.Split(rowSpec, ";") {
				tbl.AddRow(strings.Split(row, ",")...)
			}
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatalf("Render: %v", err)
		}
	})
}
