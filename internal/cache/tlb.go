package cache

// TLB is a fully associative translation buffer with FIFO replacement
// (Table 2: 64 entries for the CPU TLB, NP TLB, and RTLB alike). It
// caches only the presence of a translation; the translation itself is
// read from the page table by the caller, which charges the miss penalty.
// The same structure serves the RTLB by keying on physical page numbers.
type TLB struct {
	capacity int
	slots    []uint64
	valid    []bool
	fifo     int
	index    map[uint64]int

	hits, misses uint64
}

// NewTLB returns an empty TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		panic("cache: TLB needs at least one entry")
	}
	return &TLB{
		capacity: entries,
		slots:    make([]uint64, entries),
		valid:    make([]bool, entries),
		index:    make(map[uint64]int, entries),
	}
}

// Lookup reports whether the page number is cached, inserting it (with
// FIFO replacement) on a miss. The caller charges the miss penalty when
// it returns false.
func (t *TLB) Lookup(pn uint64) bool {
	if i, ok := t.index[pn]; ok && t.valid[i] && t.slots[i] == pn {
		t.hits++
		return true
	}
	t.misses++
	t.insert(pn)
	return false
}

// Contains reports residency without side effects.
func (t *TLB) Contains(pn uint64) bool {
	i, ok := t.index[pn]
	return ok && t.valid[i] && t.slots[i] == pn
}

func (t *TLB) insert(pn uint64) {
	i := t.fifo
	t.fifo = (t.fifo + 1) % t.capacity
	if t.valid[i] {
		delete(t.index, t.slots[i])
	}
	t.slots[i] = pn
	t.valid[i] = true
	t.index[pn] = i
}

// InvalidateEntry drops a single page number (page remap or unmap).
func (t *TLB) InvalidateEntry(pn uint64) {
	if i, ok := t.index[pn]; ok {
		t.valid[i] = false
		delete(t.index, pn)
	}
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
	t.index = make(map[uint64]int, t.capacity)
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }
