// Package cache models the hardware caches and TLBs of a Typhoon or
// DirNNB node (paper Table 2): a set-associative, randomly replaced CPU
// cache whose lines carry a Shared/Exclusive ownership state (the MBus
// distinction Typhoon's NP exploits), and a fully associative,
// FIFO-replaced TLB. Replacement randomness comes from a per-cache seeded
// xorshift generator so simulations stay deterministic.
package cache

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/mem"
)

// LineState is the ownership state of a resident cache line.
type LineState uint8

// Line states. Exclusive corresponds to an MBus "owned" copy: the CPU may
// write it silently. Shared lines require a bus upgrade before a write,
// which is the hook Typhoon's NP uses to enforce ReadOnly tags.
const (
	LineInvalid LineState = iota
	LineShared
	LineExclusive
)

func (s LineState) String() string {
	switch s {
	case LineInvalid:
		return "Invalid"
	case LineShared:
		return "Shared"
	case LineExclusive:
		return "Exclusive"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

type line struct {
	tag   uint64 // block number (pa / blockSize)
	state LineState
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Upgrades    uint64 // writes that hit a Shared line
	Evictions   uint64 // replacements of a valid line
	DirtyEvicts uint64 // replacements of an Exclusive line
	Invals      uint64 // external invalidations that hit
}

// Cache is a set-associative cache with random replacement.
type Cache struct {
	blockSize int
	ways      int
	numSets   int
	sets      []line // numSets * ways, row-major
	rng       uint64
	stats     Stats
}

// New returns a cache of size bytes with the given associativity and
// block size. Size must divide evenly into sets.
func New(size, ways, blockSize int, seed uint64) *Cache {
	if size <= 0 || ways <= 0 || blockSize <= 0 {
		panic("cache: size, ways and blockSize must be positive")
	}
	numSets := size / (ways * blockSize)
	if numSets == 0 || size%(ways*blockSize) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d-way sets of %d-byte blocks", size, ways, blockSize))
	}
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Cache{
		blockSize: blockSize,
		ways:      ways,
		numSets:   numSets,
		sets:      make([]line, numSets*ways),
		rng:       seed,
	}
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockSize returns the line size in bytes.
func (c *Cache) BlockSize() int { return c.blockSize }

// Size returns the cache capacity in bytes.
func (c *Cache) Size() int { return c.numSets * c.ways * c.blockSize }

func (c *Cache) index(pa mem.PA) (setBase int, tag uint64) {
	block := uint64(pa) / uint64(c.blockSize)
	return int(block%uint64(c.numSets)) * c.ways, block
}

func (c *Cache) next() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x
}

// Probe looks up pa for the given access type without changing cache
// contents. It reports whether the access hits silently and, if not,
// whether the line is present in Shared state so a write needs only a bus
// upgrade rather than a full miss.
func (c *Cache) Probe(pa mem.PA, write bool) (hit, upgrade bool) {
	base, tag := c.index(pa)
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.state == LineInvalid || l.tag != tag {
			continue
		}
		if write && l.state == LineShared {
			c.stats.Upgrades++
			return false, true
		}
		c.stats.Hits++
		return true, false
	}
	c.stats.Misses++
	return false, false
}

// Lookup returns the state of pa's line without touching statistics.
func (c *Cache) Lookup(pa mem.PA) LineState {
	base, tag := c.index(pa)
	for w := 0; w < c.ways; w++ {
		l := c.sets[base+w]
		if l.state != LineInvalid && l.tag == tag {
			return l.state
		}
	}
	return LineInvalid
}

// Fill inserts pa's block in the given state, choosing a random victim if
// the set is full. It returns the physical address and state of the
// evicted line (victimState is LineInvalid when nothing was evicted).
func (c *Cache) Fill(pa mem.PA, state LineState) (victim mem.PA, victimState LineState) {
	if state == LineInvalid {
		panic("cache: Fill with LineInvalid")
	}
	base, tag := c.index(pa)
	// Reuse an existing or invalid way first.
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.state != LineInvalid && l.tag == tag {
			l.state = state
			return 0, LineInvalid
		}
	}
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.state == LineInvalid {
			l.tag = tag
			l.state = state
			return 0, LineInvalid
		}
	}
	// Random replacement.
	w := int(c.next() % uint64(c.ways))
	l := &c.sets[base+w]
	victim = mem.PA(l.tag * uint64(c.blockSize))
	victimState = l.state
	c.stats.Evictions++
	if victimState == LineExclusive {
		c.stats.DirtyEvicts++
	}
	l.tag = tag
	l.state = state
	return victim, victimState
}

// Upgrade promotes pa's line to Exclusive. It panics if the line is not
// resident (the caller must have probed first).
func (c *Cache) Upgrade(pa mem.PA) {
	base, tag := c.index(pa)
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.state != LineInvalid && l.tag == tag {
			l.state = LineExclusive
			return
		}
	}
	panic(fmt.Sprintf("cache: Upgrade of non-resident block %#x", pa))
}

// Downgrade demotes pa's line to Shared if resident (a remote read of an
// exclusively held block). It returns the previous state.
func (c *Cache) Downgrade(pa mem.PA) LineState {
	base, tag := c.index(pa)
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.state != LineInvalid && l.tag == tag {
			prev := l.state
			l.state = LineShared
			return prev
		}
	}
	return LineInvalid
}

// Invalidate removes pa's line and returns its previous state. Typhoon's
// invalidate tag operation and DirNNB's invalidation messages use it.
func (c *Cache) Invalidate(pa mem.PA) LineState {
	base, tag := c.index(pa)
	for w := 0; w < c.ways; w++ {
		l := &c.sets[base+w]
		if l.state != LineInvalid && l.tag == tag {
			prev := l.state
			l.state = LineInvalid
			c.stats.Invals++
			return prev
		}
	}
	return LineInvalid
}

// InvalidatePage removes every line belonging to pa's physical page and
// returns how many lines were dropped (Stache page replacement).
func (c *Cache) InvalidatePage(pa mem.PA) int {
	first := uint64(pa.FrameBase()) / uint64(c.blockSize)
	n := mem.PageSize / c.blockSize
	dropped := 0
	for b := uint64(0); b < uint64(n); b++ {
		block := first + b
		base := int(block%uint64(c.numSets)) * c.ways
		for w := 0; w < c.ways; w++ {
			l := &c.sets[base+w]
			if l.state != LineInvalid && l.tag == block {
				l.state = LineInvalid
				dropped++
			}
		}
	}
	return dropped
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i].state = LineInvalid
	}
}
