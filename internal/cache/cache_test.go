package cache

import (
	"testing"
	"testing/quick"

	"github.com/tempest-sim/tempest/internal/mem"
)

func newSmall() *Cache { return New(4096, 4, 32, 1) } // 32 sets

func TestMissThenHit(t *testing.T) {
	c := newSmall()
	pa := mem.PA(0x1000)
	if hit, up := c.Probe(pa, false); hit || up {
		t.Fatal("cold probe must miss")
	}
	c.Fill(pa, LineExclusive)
	if hit, _ := c.Probe(pa, false); !hit {
		t.Fatal("probe after fill must hit")
	}
	if hit, _ := c.Probe(pa+31, true); !hit {
		t.Fatal("whole block must hit")
	}
	if hit, _ := c.Probe(pa+32, false); hit {
		t.Fatal("next block must miss")
	}
}

func TestWriteToSharedNeedsUpgrade(t *testing.T) {
	c := newSmall()
	pa := mem.PA(0x2000)
	c.Fill(pa, LineShared)
	if hit, _ := c.Probe(pa, false); !hit {
		t.Fatal("read of Shared line must hit")
	}
	hit, up := c.Probe(pa, true)
	if hit || !up {
		t.Fatalf("write to Shared line: hit=%v upgrade=%v, want upgrade", hit, up)
	}
	c.Upgrade(pa)
	if hit, _ := c.Probe(pa, true); !hit {
		t.Fatal("write after upgrade must hit")
	}
	if c.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", c.Stats().Upgrades)
	}
}

func TestEvictionOnFullSet(t *testing.T) {
	c := newSmall() // 32 sets * 32B blocks: same set every 1024 bytes
	base := mem.PA(0)
	for i := 0; i < 4; i++ {
		c.Fill(base+mem.PA(i*1024), LineExclusive)
	}
	victim, vs := c.Fill(base+mem.PA(4*1024), LineExclusive)
	if vs != LineExclusive {
		t.Fatalf("victim state = %v, want Exclusive", vs)
	}
	if victim%1024 != 0 || victim >= 4*1024 {
		t.Fatalf("victim = %#x, want one of the four original blocks", victim)
	}
	if c.Lookup(victim) != LineInvalid {
		t.Fatal("victim still resident")
	}
	if c.Stats().Evictions != 1 || c.Stats().DirtyEvicts != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestFillExistingLineJustChangesState(t *testing.T) {
	c := newSmall()
	pa := mem.PA(0x3000)
	c.Fill(pa, LineShared)
	victim, vs := c.Fill(pa, LineExclusive)
	if victim != 0 || vs != LineInvalid {
		t.Fatal("refill of resident line must not evict")
	}
	if c.Lookup(pa) != LineExclusive {
		t.Fatal("state not updated")
	}
}

func TestInvalidate(t *testing.T) {
	c := newSmall()
	pa := mem.PA(0x4000)
	c.Fill(pa, LineExclusive)
	if prev := c.Invalidate(pa); prev != LineExclusive {
		t.Fatalf("prev = %v, want Exclusive", prev)
	}
	if prev := c.Invalidate(pa); prev != LineInvalid {
		t.Fatalf("second invalidate prev = %v, want Invalid", prev)
	}
	if c.Lookup(pa) != LineInvalid {
		t.Fatal("line still resident")
	}
}

func TestDowngrade(t *testing.T) {
	c := newSmall()
	pa := mem.PA(0x5000)
	c.Fill(pa, LineExclusive)
	if prev := c.Downgrade(pa); prev != LineExclusive {
		t.Fatalf("prev = %v", prev)
	}
	if c.Lookup(pa) != LineShared {
		t.Fatal("line not Shared after downgrade")
	}
	if prev := c.Downgrade(mem.PA(0x6000)); prev != LineInvalid {
		t.Fatalf("downgrade of absent line = %v", prev)
	}
}

func TestInvalidatePage(t *testing.T) {
	c := New(16384, 4, 32, 1)
	page := mem.PA(0x10000)
	for i := 0; i < 16; i++ {
		c.Fill(page+mem.PA(i*32), LineExclusive)
	}
	c.Fill(page+mem.PageSize, LineExclusive) // next page, must survive
	if n := c.InvalidatePage(page + 100); n != 16 {
		t.Fatalf("dropped %d lines, want 16", n)
	}
	if c.Lookup(page) != LineInvalid {
		t.Fatal("page line survived")
	}
	if c.Lookup(page+mem.PageSize) == LineInvalid {
		t.Fatal("neighbouring page was wrongly invalidated")
	}
}

func TestFlush(t *testing.T) {
	c := newSmall()
	c.Fill(0x100, LineExclusive)
	c.Fill(0x2100, LineShared)
	c.Flush()
	if c.Lookup(0x100) != LineInvalid || c.Lookup(0x2100) != LineInvalid {
		t.Fatal("flush left resident lines")
	}
}

func TestDeterministicReplacement(t *testing.T) {
	run := func() []mem.PA {
		c := New(1024, 2, 32, 7)
		var victims []mem.PA
		for i := 0; i < 64; i++ {
			v, vs := c.Fill(mem.PA(i*1024), LineExclusive)
			if vs != LineInvalid {
				victims = append(victims, v)
			}
		}
		return victims
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("victim counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestCapacityObserved(t *testing.T) {
	c := New(4096, 4, 32, 1)
	if c.Size() != 4096 {
		t.Fatalf("Size = %d", c.Size())
	}
	// Fill 128 distinct blocks (exactly capacity); with random
	// replacement inside sets every set holds its own 4 blocks since we
	// touch each set exactly 4 times.
	for i := 0; i < 128; i++ {
		c.Fill(mem.PA(i*32), LineExclusive)
	}
	for i := 0; i < 128; i++ {
		if c.Lookup(mem.PA(i*32)) == LineInvalid {
			t.Fatalf("block %d missing though cache holds exactly capacity", i)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100, 3, 32, 1)
}

// Property: a resident block stays resident across fills that map to
// other sets.
func TestSetIsolationProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		c := New(2048, 2, 32, 3)
		paA := mem.PA(a) * 32
		paB := mem.PA(b) * 32
		sameSet := (uint64(paA)/32)%32 == (uint64(paB)/32)%32
		c.Fill(paA, LineExclusive)
		c.Fill(paB, LineShared)
		if sameSet {
			return true // may or may not evict paA
		}
		return c.Lookup(paA) != LineInvalid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBFIFOReplacement(t *testing.T) {
	tlb := NewTLB(4)
	for pn := uint64(0); pn < 4; pn++ {
		if tlb.Lookup(pn) {
			t.Fatalf("cold lookup of %d hit", pn)
		}
	}
	for pn := uint64(0); pn < 4; pn++ {
		if !tlb.Lookup(pn) {
			t.Fatalf("warm lookup of %d missed", pn)
		}
	}
	// Insert a 5th entry: FIFO evicts pn 0 (oldest), not the LRU-est.
	tlb.Lookup(4)
	if tlb.Contains(0) {
		t.Fatal("FIFO should have evicted page 0")
	}
	if !tlb.Contains(1) || !tlb.Contains(4) {
		t.Fatal("wrong entry evicted")
	}
}

func TestTLBInvalidateEntry(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Lookup(7)
	tlb.InvalidateEntry(7)
	if tlb.Contains(7) {
		t.Fatal("entry survived invalidation")
	}
	if tlb.Lookup(7) {
		t.Fatal("lookup after invalidation must miss")
	}
}

func TestTLBFlushAndCounters(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Lookup(1)
	tlb.Lookup(1)
	tlb.Flush()
	if tlb.Contains(1) {
		t.Fatal("flush left entries")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", tlb.Hits(), tlb.Misses())
	}
}

// Property: the TLB never holds more than its capacity and a lookup
// immediately after a miss hits.
func TestTLBCapacityProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		tlb := NewTLB(16)
		resident := 0
		for _, p := range pages {
			tlb.Lookup(uint64(p))
			if !tlb.Contains(uint64(p)) {
				return false
			}
			resident = 0
			for pn := uint64(0); pn <= 0xFFFF; pn += 1 {
				_ = pn
				break // counting all pages is too slow; rely on index size
			}
			_ = resident
			if len(tlb.index) > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
