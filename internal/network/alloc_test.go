package network

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/sim"
)

// TestAllocFreePacketCycle asserts the full packet round trip —
// Send (copy into a pooled packet), delivery event, Dequeue, Free —
// allocates nothing once the free list and receive rings are warm. A
// huge quantum keeps the sender context from yielding anywhere except
// its explicit Sleep, so the measurement sees exactly one send/receive
// cycle per run.
func TestAllocFreePacketCycle(t *testing.T) {
	eng := sim.NewEngine(sim.WithQuantum(1 << 62))
	net := New(eng, Config{Nodes: 2, Latency: 11})
	dst := net.Endpoint(1)

	args := []uint64{0xA, 0xB, 0xC}
	data := make([]byte, 32)
	var p Packet
	var allocs float64
	eng.Spawn("sender", func(c *sim.Context) {
		cycle := func() {
			p = Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: 7, Args: args, Data: data}
			net.Send(&p)
			c.Sleep(net.Latency() + 1) // let the delivery event fire
			q := dst.Dequeue()
			if q == nil {
				t.Error("packet not delivered")
				return
			}
			net.Free(q)
		}
		for i := 0; i < 64; i++ {
			cycle() // warm the free list, receive ring, and event heap
		}
		allocs = testing.AllocsPerRun(100, cycle)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Errorf("packet send/receive/free cycle allocates %.1f times per run, want 0", allocs)
	}
}
