// Package network models the point-to-point interconnect of the simulated
// machines: a CM-5-style network (paper §5) with two independent virtual
// networks for deadlock avoidance, a fixed end-to-end latency (Table 2:
// 11 cycles), a bounded packet payload (twenty 32-bit words), and
// in-order per-sender delivery into per-node receive queues.
//
// Link contention is modeled when Config.LinkBytesPerCycle is non-zero:
// each endpoint owns one injection and one ejection port per virtual
// network, and a packet occupies both for ceil(PayloadBytes/
// LinkBytesPerCycle) cycles — first the source injection port (serialising
// sends behind in-flight packets, FIFO in issue order), then, after the
// wire latency, the destination ejection port (serialising arrivals, FIFO
// in arrival order with ties broken by the engine's stable event key).
// Port waits accumulate in the per-VNet QueueingCycles counter. With
// LinkBytesPerCycle zero the network has infinite bandwidth and a send
// costs exactly the fixed latency — the paper's stated simulation
// simplification, and the legacy behaviour every pinned digest assumes.
//
// The dataplane is allocation-free in steady state: Send copies the
// caller's packet into a pooled packet whose argument and data storage
// are fixed-size arrays (the payload bound makes that possible), the
// pooled packet schedules its own delivery as a sim.Event, and receivers
// hand it back with Network.Free once the handler is done. The free list
// is an explicit LIFO touched only while holding the conch, so reuse
// order is a pure function of simulated history — unlike sync.Pool,
// whose per-P caches would make packet identity depend on the host
// scheduler.
package network

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/sim"
)

// VNet selects one of the two independent virtual networks. Requests
// travel on the low-priority network and replies on the high-priority
// one, so a pure request/response protocol is deadlock-free (paper §5.1).
type VNet uint8

// Virtual networks.
const (
	VNetRequest VNet = iota
	VNetReply
	numVNets
)

func (v VNet) String() string {
	switch v {
	case VNetRequest:
		return "request"
	case VNetReply:
		return "reply"
	}
	return fmt.Sprintf("VNet(%d)", uint8(v))
}

// MaxPayloadBytes is the maximum packet payload: twenty 32-bit words
// (paper §5), which fits a handler PC, a 64-bit address, 64 bytes of
// data, and two words to spare.
const MaxPayloadBytes = 20 * 4

// handlerBytes is the payload cost of the receive-handler PC word.
const handlerBytes = 4

// maxArgs and maxDataBytes bound the in-packet storage of a pooled
// packet. Each is the most the payload limit admits for that field
// alone; a packet near both bounds at once would fail the limit check.
const (
	maxArgs      = (MaxPayloadBytes - handlerBytes) / 8
	maxDataBytes = MaxPayloadBytes - handlerBytes
)

// Packet is one active message: the first word names the receive handler
// and the rest is its arguments (paper §2.1 and §5.1).
//
// Senders build a Packet (typically a stack-allocated literal — Send does
// not retain its argument) and the network delivers a pooled copy; Args
// and Data on a delivered packet alias packet-owned storage that is valid
// until the packet is passed to Network.Free.
type Packet struct {
	Src, Dst int
	VNet     VNet
	Handler  uint32   // receive-handler identifier (the "handler PC")
	Args     []uint64 // scalar arguments (addresses, counts, values)
	Data     []byte   // optional raw block payload

	SentAt      sim.Time
	DeliveredAt sim.Time

	// Pooled-packet internals. A packet owned by a Network's free list
	// stores its payload inline and carries its own delivery event state.
	argStore  [maxArgs]uint64
	dataStore [maxDataBytes]byte
	dst       *Endpoint // delivery target while in flight, nil otherwise
	next      *Packet   // free-list link
	linkOcc   sim.Time  // per-port occupancy cycles; 0 = infinite bandwidth
	pooled    bool      // allocated by Network.alloc; safe to Free
	ejected   bool      // ejection port claimed; next Fire is the enqueue
}

// PayloadBytes returns the packet's size against the payload limit.
func (p *Packet) PayloadBytes() int {
	return handlerBytes + 8*len(p.Args) + len(p.Data)
}

// Fire delivers the packet: it runs as a sim.Event at the delivery time,
// enqueues the packet at its destination, and wakes the receiver. Using
// the packet itself as the event avoids a closure allocation per send.
// DeliveredAt is fixed at send time (the time the delivery event fires
// at), so Fire never consults a global clock — under sharded execution
// the packet may fire on a different shard than it was sent from.
//
// Under the finite-bandwidth model a remote packet fires twice: the
// first firing, at head arrival, claims the destination ejection port
// (FIFO behind whatever is draining through it — arrivals in the same
// cycle are ordered by the engine's stable event key, so the claim order
// is identical at every shard count) and reschedules the packet for when
// the port has drained it; the second firing enqueues it. Both firings
// and the port state are owned by the destination's shard.
func (p *Packet) Fire() {
	dst := p.dst
	if p.linkOcc > 0 && !p.ejected {
		arr := p.DeliveredAt // head arrival at the ejection port
		start := arr
		if busy := dst.ejBusy[p.VNet]; busy > start {
			start = busy
			net := dst.net
			net.sh[net.eng.ShardOf(dst.node)].stats.VNets[p.VNet].QueueingCycles += uint64(start - arr)
		}
		dst.ejBusy[p.VNet] = start + p.linkOcc
		p.ejected = true
		p.DeliveredAt = start + p.linkOcc
		dst.net.eng.AtEventFromTo(p.DeliveredAt, dst.node, dst.node, p)
		return
	}
	p.ejected = false
	p.linkOcc = 0
	p.dst = nil
	if dst.net.OnDeliver != nil {
		dst.net.OnDeliver(p)
	}
	dst.queues[p.VNet].push(p)
	if dst.Notify != nil {
		dst.Notify(p.DeliveredAt)
	}
}

// VNetStats counts one virtual network's traffic. The per-VNet counters
// live in an array indexed by VNet so a new counter is automatically
// carried for every network — they cannot desync from the VNet enum.
type VNetStats struct {
	Packets      uint64
	PayloadBytes uint64
	// QueueingCycles is the total cycles packets spent waiting for busy
	// injection or ejection ports. Always zero with infinite bandwidth.
	QueueingCycles uint64
	// MaxQueueDepth is the high-water depth of the per-endpoint receive
	// FIFOs — how far behind the worst consumer (NP dispatch loop,
	// directory agent) fell. Non-zero even with infinite bandwidth.
	MaxQueueDepth uint64
}

// Stats counts network traffic.
type Stats struct {
	VNets      [numVNets]VNetStats
	LocalSends uint64 // CPU-to-own-NP short circuits
}

// pktRing is a growable power-of-two ring buffer of packets: a FIFO
// whose push and pop are allocation-free once the ring has reached its
// high-water size (the old slice FIFO paid a copy-shift per dequeue).
type pktRing struct {
	buf        []*Packet
	head, tail int // head = next pop, tail = next push
	n          int
	hw         int // high-water depth, for Stats.MaxQueueDepth
}

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = p
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
	if r.n > r.hw {
		r.hw = r.n
	}
}

func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *pktRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head, r.tail = buf, 0, r.n
}

// Endpoint is one node's network interface: two receive FIFOs plus a
// wakeup callback for the entity that drains them (the NP dispatch loop,
// or the DirNNB hardware controller).
type Endpoint struct {
	node   int
	net    *Network
	queues [numVNets]pktRing
	// injBusy/ejBusy are the per-VNet port-free times of the finite-
	// bandwidth model: a packet occupies its source injection port and
	// destination ejection port for its serialisation time, and later
	// packets queue FIFO behind it. injBusy is touched at send time on
	// the sender's shard; ejBusy at arrival time on the receiver's shard
	// — both node-local, so the model is shard-safe by construction.
	// Unused (always zero) with infinite bandwidth.
	injBusy [numVNets]sim.Time
	ejBusy  [numVNets]sim.Time
	// Notify is invoked (while holding the conch) whenever a packet is
	// delivered, with the delivery time. The NP uses it to unpark its
	// dispatch loop.
	Notify func(at sim.Time)
}

// Node returns the endpoint's node ID.
func (e *Endpoint) Node() int { return e.node }

// Pending returns the number of queued packets across both networks.
func (e *Endpoint) Pending() int { return e.queues[VNetRequest].n + e.queues[VNetReply].n }

// PendingOn returns the number of queued packets on one network.
func (e *Endpoint) PendingOn(v VNet) int { return e.queues[v].n }

// Dequeue pops the next packet, draining the reply network before the
// request network so request handlers can never starve response handlers
// (paper §5.1). It returns nil when both queues are empty. The caller
// owns the packet until it passes it to Network.Free.
func (e *Endpoint) Dequeue() *Packet {
	if e.queues[VNetReply].n > 0 {
		return e.queues[VNetReply].pop()
	}
	if e.queues[VNetRequest].n > 0 {
		return e.queues[VNetRequest].pop()
	}
	return nil
}

// Network connects n endpoints with fixed latency.
type Network struct {
	eng          *sim.Engine
	latency      sim.Time
	localLatency sim.Time
	linkBW       int // bytes per cycle per port; 0 = infinite bandwidth
	endpoints    []*Endpoint

	// OnSend, when non-nil, observes every injected packet (the pooled
	// copy, before it can fire) at issue time: issued is the sender's
	// clock when Send/SendAfter was called and extra the SendAfter delay,
	// so issued+extra is the packet's SentAt. The callback runs on the
	// sender's shard while holding the conch; it must not retain the
	// packet. Set before Engine.Run (the conformance recorder's tap) —
	// the hot path pays a nil check otherwise.
	OnSend func(p *Packet, issued, extra sim.Time)
	// OnDeliver, when non-nil, observes every packet as it is enqueued
	// at its destination endpoint — after the wire latency and, with
	// finite bandwidth, the ejection-port serialisation, so
	// p.DeliveredAt is final. It runs on the destination's shard during
	// event processing and must not retain the packet. Set before
	// Engine.Run (the conformance recorder's arrival tap).
	OnDeliver func(p *Packet)
	// sh holds the per-shard dataplane state: traffic counters (bumped at
	// send time, on the sender's shard) and the pooled-packet free list
	// (packets are allocated on the sender's shard and freed on the
	// receiver's, so each list is touched only under its shard's conch).
	// One entry on a serial engine.
	sh []netShard
}

// netShard is one shard's slice of the network state.
type netShard struct {
	stats Stats
	free  *Packet // LIFO free list of pooled packets
}

func (s *Stats) add(o Stats) {
	for v := range s.VNets {
		s.VNets[v].Packets += o.VNets[v].Packets
		s.VNets[v].PayloadBytes += o.VNets[v].PayloadBytes
		s.VNets[v].QueueingCycles += o.VNets[v].QueueingCycles
		if o.VNets[v].MaxQueueDepth > s.VNets[v].MaxQueueDepth {
			s.VNets[v].MaxQueueDepth = o.VNets[v].MaxQueueDepth
		}
	}
	s.LocalSends += o.LocalSends
}

// Config configures a Network.
type Config struct {
	Nodes int
	// Latency is the end-to-end packet latency in cycles (Table 2: 11).
	Latency sim.Time
	// LocalLatency is the CPU-to-own-NP short-circuit latency (paper
	// §5.1: the CPU can send directly to its local NP). Zero means 1.
	LocalLatency sim.Time
	// LinkBytesPerCycle is the per-port link bandwidth of the contention
	// model: a packet occupies its injection and ejection ports for
	// ceil(PayloadBytes/LinkBytesPerCycle) cycles each. Zero models
	// infinite bandwidth (the paper's simplification; legacy behaviour).
	LinkBytesPerCycle int
}

// MinCrossShardDelivery returns the earliest a packet sent now can take
// effect on another node: the wire latency to the head's arrival. The
// contention model only ever adds delay after that point (injection
// waits push the whole timeline later; ejection serialisation is charged
// on the destination's shard after the head arrives), so the bound — and
// with it the conservative shard window — is the same with or without
// finite bandwidth.
//
// This is also the earliest-send bound the engine's adaptive window
// planner consumes (sim.WithCrossShardDelivery): every cross-shard
// delivery the network schedules lands at least this far past the
// sender's clock, so a shard whose peers have nothing pending before
// time T cannot be affected before T + MinCrossShardDelivery. The
// engine's window-safety assertion re-checks the claim on every
// cross-shard event, so a timing-model change that broke it would fail
// loudly rather than corrupt determinism.
func (c Config) MinCrossShardDelivery() sim.Time { return c.Latency }

// New builds a network.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("network: need at least one node")
	}
	if cfg.LinkBytesPerCycle < 0 {
		panic(fmt.Sprintf("network: negative link bandwidth %d", cfg.LinkBytesPerCycle))
	}
	ll := cfg.LocalLatency
	if ll == 0 {
		ll = 1
	}
	n := &Network{
		eng:          eng,
		latency:      cfg.Latency,
		localLatency: ll,
		linkBW:       cfg.LinkBytesPerCycle,
		sh:           make([]netShard, eng.Shards()),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n.endpoints = append(n.endpoints, &Endpoint{node: i, net: n})
	}
	return n
}

// Endpoint returns node's endpoint.
func (n *Network) Endpoint(node int) *Endpoint { return n.endpoints[node] }

// Latency returns the configured end-to-end latency.
func (n *Network) Latency() sim.Time { return n.latency }

// Stats returns a copy of the traffic counters, summed across shards
// (MaxQueueDepth folds by max, over the endpoints' receive-ring
// high-water marks). During a sharded run only the calling shard's slice
// is coherent; the full sum is for after Run (or between windows).
func (n *Network) Stats() Stats {
	s := n.sh[0].stats
	for i := 1; i < len(n.sh); i++ {
		s.add(n.sh[i].stats)
	}
	for _, ep := range n.endpoints {
		for v := range ep.queues {
			if hw := uint64(ep.queues[v].hw); hw > s.VNets[v].MaxQueueDepth {
				s.VNets[v].MaxQueueDepth = hw
			}
		}
	}
	return s
}

// alloc takes a packet from the given shard's free list, or mints one.
func (n *Network) alloc(sh *netShard) *Packet {
	if p := sh.free; p != nil {
		sh.free = p.next
		p.next = nil
		return p
	}
	return &Packet{pooled: true}
}

// Free returns a delivered packet to the network's free list. Receivers
// call it after the message handler is done with the packet's payload;
// the packet's Args and Data are invalid afterwards. Free ignores
// packets the pool did not produce (caller-constructed packets) and
// packets still in flight, so over-freeing is harmless but aliasing a
// freed payload is not.
// Free runs on the receiver, so the packet joins the free list of the
// destination node's shard; its next reuse is by a sender on that same
// shard. Reuse order therefore stays a pure function of simulated
// history under any shard count.
func (n *Network) Free(p *Packet) {
	if p == nil || !p.pooled || p.dst != nil {
		return
	}
	sh := &n.sh[n.eng.ShardOf(p.Dst)]
	p.Args = nil
	p.Data = nil
	p.next = sh.free
	sh.free = p
}

// maxSendDelay bounds SendAfter's extra. sim.Time is unsigned, so
// negative delay arithmetic in a caller does not produce a value below
// zero — it wraps to one near 2^64, which used to schedule the delivery
// in the unreachable far future and hang the run. Any delay above this
// bound can only come from such a wrap (2^62 cycles is ~36 years of
// simulated time at a nanosecond clock) and is rejected as an *Error.
const maxSendDelay = sim.Time(1) << 62

// Send injects a packet. It must be called while holding the conch; the
// packet is delivered (enqueued and Notify'd) latency cycles after the
// current global time, plus its port-serialisation time under the
// finite-bandwidth model. Messages from one node to its own NP
// short-circuit the network (paper §5.1) and bypass the ports. Send
// panics with an *Error if the payload exceeds the twenty-word limit —
// protocol code must packetise larger transfers — or if the destination
// is not a node of this machine.
//
// Send copies p — the caller's packet is not retained and may be reused
// (or live on the caller's stack) immediately.
func (n *Network) Send(p *Packet) {
	n.SendAfter(p, 0)
}

// SendAfter injects a packet whose transmission begins extra cycles after
// the sender's current time: the packet reaches its destination's
// injection port then, queues FIFO (in send-issue order) behind packets
// still draining through it when bandwidth is finite, and is delivered a
// wire latency plus an ejection-port serialisation later. Protocol agents
// use it to charge occupancy (directory access, invalidation processing)
// to a response without suspending: the agent stays available for other
// messages while the modeled hardware is busy, and the delay composes
// with the wire latency exactly as a synchronous Advance before Send
// would. The head of a remote packet never crosses shards sooner than
// one full network latency (≥ one conservative window) in the future —
// injection waits and extra only push it later — so SendAfter is
// cross-shard safe for any extra. A wrapped-negative extra (unsigned
// underflow in caller arithmetic) panics with an *Error instead of
// silently scheduling the delivery ~2^64 cycles out.
func (n *Network) SendAfter(p *Packet, extra sim.Time) {
	if p.Dst < 0 || p.Dst >= len(n.endpoints) {
		panic(&Error{Op: "send", Node: p.Src,
			Msg: fmt.Sprintf("destination node %d outside [0, %d)", p.Dst, len(n.endpoints))})
	}
	if sz := p.PayloadBytes(); sz > MaxPayloadBytes {
		panic(&Error{Op: "send", Node: p.Src,
			Msg: fmt.Sprintf("packet payload %d bytes exceeds %d-byte limit", sz, MaxPayloadBytes)})
	}
	if extra > maxSendDelay {
		panic(&Error{Op: "send-after", Node: p.Src,
			Msg: fmt.Sprintf("delay %d wrapped negative (unsigned underflow in delay arithmetic)", extra)})
	}
	sh := &n.sh[n.eng.ShardOf(p.Src)]
	lat := n.latency
	local := p.Src == p.Dst
	if local {
		lat = n.localLatency
		sh.stats.LocalSends++
	}
	sh.stats.VNets[p.VNet].Packets++
	sh.stats.VNets[p.VNet].PayloadBytes += uint64(p.PayloadBytes())

	q := n.alloc(sh)
	q.Src, q.Dst, q.VNet, q.Handler = p.Src, p.Dst, p.VNet, p.Handler
	q.Args = append(q.argStore[:0], p.Args...)
	q.Data = append(q.dataStore[:0], p.Data...)
	issued := n.eng.NowFor(p.Src)
	q.SentAt = issued + extra
	if n.OnSend != nil {
		n.OnSend(q, issued, extra)
	}
	start := q.SentAt
	if n.linkBW > 0 && !local {
		// Claim the source injection port: the packet serialises onto the
		// wire for its occupancy, behind any packet still injecting.
		q.linkOcc = sim.Time((q.PayloadBytes() + n.linkBW - 1) / n.linkBW)
		src := n.endpoints[p.Src]
		if busy := src.injBusy[p.VNet]; busy > start {
			sh.stats.VNets[p.VNet].QueueingCycles += uint64(busy - start)
			start = busy
		}
		src.injBusy[p.VNet] = start + q.linkOcc
	} else {
		q.linkOcc = 0
	}
	// DeliveredAt is the head's arrival; with finite bandwidth the first
	// Fire claims the ejection port and defers the enqueue (see
	// Packet.Fire), so end-to-end cost is latency + serialisation +
	// queueing. With infinite bandwidth it is the final delivery time.
	q.DeliveredAt = start + lat
	q.dst = n.endpoints[p.Dst]
	n.eng.AtEventFromTo(q.DeliveredAt, q.Src, q.Dst, q)
}
