// Package network models the point-to-point interconnect of the simulated
// machines: a CM-5-style network (paper §5) with two independent virtual
// networks for deadlock avoidance, a fixed end-to-end latency (Table 2:
// 11 cycles), a bounded packet payload (twenty 32-bit words), and
// in-order per-sender delivery into per-node receive queues. Contention
// is not modeled, matching the paper's stated simulation limitations.
package network

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/sim"
)

// VNet selects one of the two independent virtual networks. Requests
// travel on the low-priority network and replies on the high-priority
// one, so a pure request/response protocol is deadlock-free (paper §5.1).
type VNet uint8

// Virtual networks.
const (
	VNetRequest VNet = iota
	VNetReply
	numVNets
)

func (v VNet) String() string {
	switch v {
	case VNetRequest:
		return "request"
	case VNetReply:
		return "reply"
	}
	return fmt.Sprintf("VNet(%d)", uint8(v))
}

// MaxPayloadBytes is the maximum packet payload: twenty 32-bit words
// (paper §5), which fits a handler PC, a 64-bit address, 64 bytes of
// data, and two words to spare.
const MaxPayloadBytes = 20 * 4

// handlerBytes is the payload cost of the receive-handler PC word.
const handlerBytes = 4

// Packet is one active message: the first word names the receive handler
// and the rest is its arguments (paper §2.1 and §5.1).
type Packet struct {
	Src, Dst int
	VNet     VNet
	Handler  uint32   // receive-handler identifier (the "handler PC")
	Args     []uint64 // scalar arguments (addresses, counts, values)
	Data     []byte   // optional raw block payload

	SentAt      sim.Time
	DeliveredAt sim.Time
}

// PayloadBytes returns the packet's size against the payload limit.
func (p *Packet) PayloadBytes() int {
	return handlerBytes + 8*len(p.Args) + len(p.Data)
}

// Stats counts network traffic.
type Stats struct {
	Packets      [2]uint64 // by VNet
	PayloadBytes [2]uint64
	LocalSends   uint64 // CPU-to-own-NP short circuits
}

// Endpoint is one node's network interface: two receive FIFOs plus a
// wakeup callback for the entity that drains them (the NP dispatch loop,
// or the DirNNB hardware controller).
type Endpoint struct {
	node   int
	queues [numVNets][]*Packet
	// Notify is invoked (while holding the conch) whenever a packet is
	// delivered, with the delivery time. The NP uses it to unpark its
	// dispatch loop.
	Notify func(at sim.Time)
}

// Node returns the endpoint's node ID.
func (e *Endpoint) Node() int { return e.node }

// Pending returns the number of queued packets across both networks.
func (e *Endpoint) Pending() int { return len(e.queues[VNetRequest]) + len(e.queues[VNetReply]) }

// PendingOn returns the number of queued packets on one network.
func (e *Endpoint) PendingOn(v VNet) int { return len(e.queues[v]) }

// Dequeue pops the next packet, draining the reply network before the
// request network so request handlers can never starve response handlers
// (paper §5.1). It returns nil when both queues are empty.
func (e *Endpoint) Dequeue() *Packet {
	for _, v := range []VNet{VNetReply, VNetRequest} {
		if q := e.queues[v]; len(q) > 0 {
			p := q[0]
			copy(q, q[1:])
			q[len(q)-1] = nil
			e.queues[v] = q[:len(q)-1]
			return p
		}
	}
	return nil
}

// Network connects n endpoints with fixed latency.
type Network struct {
	eng          *sim.Engine
	latency      sim.Time
	localLatency sim.Time
	endpoints    []*Endpoint
	stats        Stats
}

// Config configures a Network.
type Config struct {
	Nodes int
	// Latency is the end-to-end packet latency in cycles (Table 2: 11).
	Latency sim.Time
	// LocalLatency is the CPU-to-own-NP short-circuit latency (paper
	// §5.1: the CPU can send directly to its local NP). Zero means 1.
	LocalLatency sim.Time
}

// New builds a network.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("network: need at least one node")
	}
	ll := cfg.LocalLatency
	if ll == 0 {
		ll = 1
	}
	n := &Network{eng: eng, latency: cfg.Latency, localLatency: ll}
	for i := 0; i < cfg.Nodes; i++ {
		n.endpoints = append(n.endpoints, &Endpoint{node: i})
	}
	return n
}

// Endpoint returns node's endpoint.
func (n *Network) Endpoint(node int) *Endpoint { return n.endpoints[node] }

// Latency returns the configured end-to-end latency.
func (n *Network) Latency() sim.Time { return n.latency }

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Send injects a packet. It must be called while holding the conch; the
// packet is delivered (enqueued and Notify'd) latency cycles after the
// current global time. Messages from one node to its own NP short-circuit
// the network (paper §5.1). Send panics if the payload exceeds the
// twenty-word limit — protocol code must packetise larger transfers.
func (n *Network) Send(p *Packet) {
	if p.Dst < 0 || p.Dst >= len(n.endpoints) {
		panic(fmt.Sprintf("network: send to invalid node %d", p.Dst))
	}
	if sz := p.PayloadBytes(); sz > MaxPayloadBytes {
		panic(fmt.Sprintf("network: packet payload %d bytes exceeds %d-byte limit", sz, MaxPayloadBytes))
	}
	lat := n.latency
	if p.Src == p.Dst {
		lat = n.localLatency
		n.stats.LocalSends++
	}
	n.stats.Packets[p.VNet]++
	n.stats.PayloadBytes[p.VNet] += uint64(p.PayloadBytes())
	p.SentAt = n.eng.Now()
	dst := n.endpoints[p.Dst]
	n.eng.After(lat, func() {
		p.DeliveredAt = n.eng.Now()
		dst.queues[p.VNet] = append(dst.queues[p.VNet], p)
		if dst.Notify != nil {
			dst.Notify(p.DeliveredAt)
		}
	})
}
