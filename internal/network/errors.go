package network

import "fmt"

// Error is a structured network failure on a user-reachable condition —
// an oversized payload (protocol code must packetise larger transfers),
// a send to a node outside the machine, or a SendAfter delay produced by
// negative arithmetic that wrapped to a huge unsigned value (e.g. bad
// -link-bw math in a config sweep). Send panics with an *Error; the
// engine's context recovery wraps (not flattens) error values, so
// harness.Run can errors.As the failure out of the run error and report
// it per sweep point instead of crashing a whole sweep — the same
// contract as *dirnnb.Error.
type Error struct {
	// Op names the failing operation: "send" or "send-after".
	Op string
	// Node is the sending node.
	Node int
	// Msg describes the condition.
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("network: %s on node %d: %s", e.Op, e.Node, e.Msg)
}
