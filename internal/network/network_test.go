package network

import (
	"testing"
	"testing/quick"

	"github.com/tempest-sim/tempest/internal/sim"
)

// runWith spins up an engine with a single context that executes body and
// then lets the event queue drain.
func runWith(t *testing.T, build func(eng *sim.Engine) (*Network, func(c *sim.Context))) {
	t.Helper()
	eng := sim.NewEngine()
	_, body := build(eng)
	eng.Spawn("driver", body)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeliveryAfterLatency(t *testing.T) {
	var deliveredAt sim.Time
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		n.Endpoint(1).Notify = func(at sim.Time) { deliveredAt = at }
		return n, func(c *sim.Context) {
			c.Advance(100)
			c.Yield()
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: 7})
			c.Sleep(50)
			p := n.Endpoint(1).Dequeue()
			if p == nil || p.Handler != 7 {
				t.Errorf("packet not delivered: %+v", p)
			}
		}
	})
	if deliveredAt != 111 {
		t.Fatalf("delivered at %d, want 111", deliveredAt)
	}
}

func TestLocalShortCircuit(t *testing.T) {
	var deliveredAt sim.Time
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11, LocalLatency: 1})
		n.Endpoint(0).Notify = func(at sim.Time) { deliveredAt = at }
		return n, func(c *sim.Context) {
			c.Advance(10)
			c.Yield()
			n.Send(&Packet{Src: 0, Dst: 0, VNet: VNetRequest})
			c.Sleep(10)
		}
	})
	if deliveredAt != 11 {
		t.Fatalf("local send delivered at %d, want 11", deliveredAt)
	}
}

func TestReplyNetworkHasPriority(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: 1})
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetReply, Handler: 2})
			c.Sleep(20)
			ep := n.Endpoint(1)
			if ep.Pending() != 2 {
				t.Fatalf("pending = %d, want 2", ep.Pending())
			}
			first := ep.Dequeue()
			second := ep.Dequeue()
			if first.Handler != 2 || second.Handler != 1 {
				t.Errorf("dequeue order = %d,%d; want reply (2) before request (1)", first.Handler, second.Handler)
			}
			if ep.Dequeue() != nil {
				t.Error("queue should be empty")
			}
		}
	})
}

func TestInOrderDeliveryPerSender(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			for i := uint32(0); i < 10; i++ {
				n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: i})
				c.Advance(1)
				c.Yield()
			}
			c.Sleep(30)
			ep := n.Endpoint(1)
			for i := uint32(0); i < 10; i++ {
				p := ep.Dequeue()
				if p == nil || p.Handler != i {
					t.Fatalf("packet %d out of order: %+v", i, p)
				}
			}
		}
	})
}

func TestPayloadLimitEnforced(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			// Maximum legal packet: handler(4) + addr(8) + 64B data + 4B slack = 80.
			ok := &Packet{Src: 0, Dst: 1, Args: []uint64{0xFEED}, Data: make([]byte, 64)}
			if ok.PayloadBytes() != 76 {
				t.Errorf("PayloadBytes = %d, want 76", ok.PayloadBytes())
			}
			n.Send(ok)
			defer func() {
				if recover() == nil {
					t.Error("oversized packet must panic")
				}
			}()
			n.Send(&Packet{Src: 0, Dst: 1, Data: make([]byte, 128)})
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 3, Latency: 11})
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Args: []uint64{1}})
			n.Send(&Packet{Src: 1, Dst: 2, VNet: VNetReply, Data: make([]byte, 32)})
			n.Send(&Packet{Src: 2, Dst: 2, VNet: VNetReply})
			c.Sleep(20)
			s := n.Stats()
			if s.Packets[VNetRequest] != 1 || s.Packets[VNetReply] != 2 {
				t.Errorf("packets = %v", s.Packets)
			}
			if s.LocalSends != 1 {
				t.Errorf("local sends = %d, want 1", s.LocalSends)
			}
			if s.PayloadBytes[VNetRequest] != 12 { // handler 4 + one arg 8
				t.Errorf("request bytes = %d, want 12", s.PayloadBytes[VNetRequest])
			}
		}
	})
}

func TestDataIntegrity(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			data := make([]byte, 32)
			for i := range data {
				data[i] = byte(i * 3)
			}
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetReply, Args: []uint64{42, 99}, Data: data})
			c.Sleep(20)
			p := n.Endpoint(1).Dequeue()
			if p.Args[0] != 42 || p.Args[1] != 99 {
				t.Fatalf("args = %v", p.Args)
			}
			for i := range p.Data {
				if p.Data[i] != byte(i*3) {
					t.Fatalf("data[%d] = %d", i, p.Data[i])
				}
			}
		}
	})
}

// Property: for any send schedule from a single context, every packet is
// delivered exactly latency cycles after its send time, in send order per
// virtual network.
func TestDeliveryTimeProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 || len(gaps) > 50 {
			return true
		}
		eng := sim.NewEngine()
		n := New(eng, Config{Nodes: 2, Latency: 11})
		sent := make([]sim.Time, 0, len(gaps))
		eng.Spawn("sender", func(c *sim.Context) {
			for i, g := range gaps {
				c.Advance(sim.Time(g))
				c.Yield()
				sent = append(sent, c.Time())
				n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: uint32(i)})
			}
			c.Sleep(100)
		})
		if err := eng.Run(); err != nil {
			return false
		}
		ep := n.Endpoint(1)
		for i := range gaps {
			p := ep.Dequeue()
			if p == nil || p.Handler != uint32(i) {
				return false
			}
			if p.DeliveredAt != sent[i]+11 {
				return false
			}
		}
		return ep.Dequeue() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVNetStrings(t *testing.T) {
	if VNetRequest.String() != "request" || VNetReply.String() != "reply" {
		t.Fatal("vnet strings wrong")
	}
	if VNet(9).String() == "" {
		t.Fatal("unknown vnet should still format")
	}
}

func TestLatencyAccessor(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Nodes: 1, Latency: 17})
	if n.Latency() != 17 {
		t.Fatalf("latency = %d", n.Latency())
	}
	if n.Endpoint(0).Node() != 0 {
		t.Fatal("endpoint node wrong")
	}
}
