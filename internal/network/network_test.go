package network

import (
	"testing"
	"testing/quick"

	"github.com/tempest-sim/tempest/internal/sim"
)

// runWith spins up an engine with a single context that executes body and
// then lets the event queue drain.
func runWith(t *testing.T, build func(eng *sim.Engine) (*Network, func(c *sim.Context))) {
	t.Helper()
	eng := sim.NewEngine()
	_, body := build(eng)
	eng.Spawn("driver", body)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeliveryAfterLatency(t *testing.T) {
	var deliveredAt sim.Time
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		n.Endpoint(1).Notify = func(at sim.Time) { deliveredAt = at }
		return n, func(c *sim.Context) {
			c.Advance(100)
			c.Yield()
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: 7})
			c.Sleep(50)
			p := n.Endpoint(1).Dequeue()
			if p == nil || p.Handler != 7 {
				t.Errorf("packet not delivered: %+v", p)
			}
		}
	})
	if deliveredAt != 111 {
		t.Fatalf("delivered at %d, want 111", deliveredAt)
	}
}

func TestLocalShortCircuit(t *testing.T) {
	var deliveredAt sim.Time
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11, LocalLatency: 1})
		n.Endpoint(0).Notify = func(at sim.Time) { deliveredAt = at }
		return n, func(c *sim.Context) {
			c.Advance(10)
			c.Yield()
			n.Send(&Packet{Src: 0, Dst: 0, VNet: VNetRequest})
			c.Sleep(10)
		}
	})
	if deliveredAt != 11 {
		t.Fatalf("local send delivered at %d, want 11", deliveredAt)
	}
}

func TestReplyNetworkHasPriority(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: 1})
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetReply, Handler: 2})
			c.Sleep(20)
			ep := n.Endpoint(1)
			if ep.Pending() != 2 {
				t.Fatalf("pending = %d, want 2", ep.Pending())
			}
			first := ep.Dequeue()
			second := ep.Dequeue()
			if first.Handler != 2 || second.Handler != 1 {
				t.Errorf("dequeue order = %d,%d; want reply (2) before request (1)", first.Handler, second.Handler)
			}
			if ep.Dequeue() != nil {
				t.Error("queue should be empty")
			}
		}
	})
}

func TestInOrderDeliveryPerSender(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			for i := uint32(0); i < 10; i++ {
				n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: i})
				c.Advance(1)
				c.Yield()
			}
			c.Sleep(30)
			ep := n.Endpoint(1)
			for i := uint32(0); i < 10; i++ {
				p := ep.Dequeue()
				if p == nil || p.Handler != i {
					t.Fatalf("packet %d out of order: %+v", i, p)
				}
			}
		}
	})
}

func TestPayloadLimitEnforced(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			// Maximum legal packet: handler(4) + addr(8) + 64B data + 4B slack = 80.
			ok := &Packet{Src: 0, Dst: 1, Args: []uint64{0xFEED}, Data: make([]byte, 64)}
			if ok.PayloadBytes() != 76 {
				t.Errorf("PayloadBytes = %d, want 76", ok.PayloadBytes())
			}
			n.Send(ok)
			defer func() {
				nerr, okType := recover().(*Error)
				if !okType {
					t.Error("oversized packet must panic with *network.Error")
				} else if nerr.Op != "send" {
					t.Errorf("error op = %q, want send", nerr.Op)
				}
			}()
			n.Send(&Packet{Src: 0, Dst: 1, Data: make([]byte, 128)})
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 3, Latency: 11})
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Args: []uint64{1}})
			n.Send(&Packet{Src: 1, Dst: 2, VNet: VNetReply, Data: make([]byte, 32)})
			n.Send(&Packet{Src: 2, Dst: 2, VNet: VNetReply})
			c.Sleep(20)
			s := n.Stats()
			if s.VNets[VNetRequest].Packets != 1 || s.VNets[VNetReply].Packets != 2 {
				t.Errorf("packets = %+v", s.VNets)
			}
			if s.LocalSends != 1 {
				t.Errorf("local sends = %d, want 1", s.LocalSends)
			}
			if s.VNets[VNetRequest].PayloadBytes != 12 { // handler 4 + one arg 8
				t.Errorf("request bytes = %d, want 12", s.VNets[VNetRequest].PayloadBytes)
			}
			if s.VNets[VNetRequest].QueueingCycles != 0 || s.VNets[VNetReply].QueueingCycles != 0 {
				t.Errorf("infinite bandwidth must not queue: %+v", s.VNets)
			}
			if s.VNets[VNetRequest].MaxQueueDepth != 1 {
				t.Errorf("request max queue depth = %d, want 1", s.VNets[VNetRequest].MaxQueueDepth)
			}
		}
	})
}

func TestDataIntegrity(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			data := make([]byte, 32)
			for i := range data {
				data[i] = byte(i * 3)
			}
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetReply, Args: []uint64{42, 99}, Data: data})
			c.Sleep(20)
			p := n.Endpoint(1).Dequeue()
			if p.Args[0] != 42 || p.Args[1] != 99 {
				t.Fatalf("args = %v", p.Args)
			}
			for i := range p.Data {
				if p.Data[i] != byte(i*3) {
					t.Fatalf("data[%d] = %d", i, p.Data[i])
				}
			}
		}
	})
}

// Property: for any send schedule from a single context, every packet is
// delivered exactly latency cycles after its send time, in send order per
// virtual network.
func TestDeliveryTimeProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 || len(gaps) > 50 {
			return true
		}
		eng := sim.NewEngine()
		n := New(eng, Config{Nodes: 2, Latency: 11})
		sent := make([]sim.Time, 0, len(gaps))
		eng.Spawn("sender", func(c *sim.Context) {
			for i, g := range gaps {
				c.Advance(sim.Time(g))
				c.Yield()
				sent = append(sent, c.Time())
				n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: uint32(i)})
			}
			c.Sleep(100)
		})
		if err := eng.Run(); err != nil {
			return false
		}
		ep := n.Endpoint(1)
		for i := range gaps {
			p := ep.Dequeue()
			if p == nil || p.Handler != uint32(i) {
				return false
			}
			if p.DeliveredAt != sent[i]+11 {
				return false
			}
		}
		return ep.Dequeue() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVNetStrings(t *testing.T) {
	if VNetRequest.String() != "request" || VNetReply.String() != "reply" {
		t.Fatal("vnet strings wrong")
	}
	if VNet(9).String() == "" {
		t.Fatal("unknown vnet should still format")
	}
}

func TestLatencyAccessor(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Nodes: 1, Latency: 17})
	if n.Latency() != 17 {
		t.Fatalf("latency = %d", n.Latency())
	}
	if n.Endpoint(0).Node() != 0 {
		t.Fatal("endpoint node wrong")
	}
}

func TestWrappedNegativeDelayRejected(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			defer func() {
				nerr, ok := recover().(*Error)
				if !ok {
					t.Error("wrapped-negative delay must panic with *network.Error")
				} else if nerr.Op != "send-after" {
					t.Errorf("error op = %q, want send-after", nerr.Op)
				}
			}()
			// The classic bug: a sim.Time difference that went negative
			// wraps to ~2^64 and used to schedule the delivery in the
			// unreachable far future, hanging the run.
			var base sim.Time
			n.SendAfter(&Packet{Src: 0, Dst: 1, VNet: VNetRequest}, base-5)
		}
	})
}

func TestInvalidDestinationRejected(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11})
		return n, func(c *sim.Context) {
			defer func() {
				if _, ok := recover().(*Error); !ok {
					t.Error("out-of-range destination must panic with *network.Error")
				}
			}()
			n.Send(&Packet{Src: 0, Dst: 7, VNet: VNetRequest})
		}
	})
}

// TestSendAfterZeroExtra pins the extra=0 edge: SendAfter(p, 0) must be
// exactly Send, in both bandwidth models.
func TestSendAfterZeroExtra(t *testing.T) {
	for _, bw := range []int{0, 4} {
		var got, want sim.Time
		runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
			n := New(eng, Config{Nodes: 3, Latency: 11, LinkBytesPerCycle: bw})
			return n, func(c *sim.Context) {
				c.Advance(100)
				c.Yield()
				n.Send(&Packet{Src: 0, Dst: 2, VNet: VNetRequest})
				n.SendAfter(&Packet{Src: 1, Dst: 2, VNet: VNetReply}, 0)
				c.Sleep(50)
				ep := n.Endpoint(2)
				want = ep.Dequeue().DeliveredAt // the reply (priority)
				got = ep.Dequeue().DeliveredAt  // the request
			}
		})
		if got != want {
			t.Errorf("bw=%d: SendAfter(p, 0) delivered at %d, Send at %d", bw, got, want)
		}
	}
}

// TestFiniteBandwidthSerialization pins the uncontended contended-mode
// cost: latency plus ceil(payload/bandwidth) cycles of port time.
func TestFiniteBandwidthSerialization(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11, LinkBytesPerCycle: 4})
		return n, func(c *sim.Context) {
			// handler(4) + one arg(8) = 12 bytes → ceil(12/4) = 3 cycles.
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Args: []uint64{1}})
			c.Sleep(50)
			p := n.Endpoint(1).Dequeue()
			if p == nil || p.DeliveredAt != 14 {
				t.Fatalf("delivered at %v, want 14 (11 wire + 3 serialisation)", p)
			}
			s := n.Stats()
			if s.VNets[VNetRequest].QueueingCycles != 0 {
				t.Errorf("uncontended send queued %d cycles", s.VNets[VNetRequest].QueueingCycles)
			}
		}
	})
}

// TestInjectionPortQueueing: two same-cycle sends from one node share its
// injection port, so the second serialises behind the first and the wait
// lands in QueueingCycles.
func TestInjectionPortQueueing(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11, LinkBytesPerCycle: 4})
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Args: []uint64{1}, Handler: 1}) // 12 B → 3 cycles
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Args: []uint64{2}, Handler: 2}) // queues 3 cycles
			c.Sleep(50)
			ep := n.Endpoint(1)
			first, second := ep.Dequeue(), ep.Dequeue()
			if first.Handler != 1 || second.Handler != 2 {
				t.Fatalf("order broken: %d then %d", first.Handler, second.Handler)
			}
			if first.DeliveredAt != 14 || second.DeliveredAt != 17 {
				t.Errorf("delivered at %d/%d, want 14/17", first.DeliveredAt, second.DeliveredAt)
			}
			if q := n.Stats().VNets[VNetRequest].QueueingCycles; q != 3 {
				t.Errorf("queueing cycles = %d, want 3", q)
			}
		}
	})
}

// TestEjectionPortContention: two nodes send to the same destination in
// the same cycle. The heads arrive together and contend for one ejection
// port; the stable event key (origin 0 before origin 1 at equal time)
// breaks the tie, so node 0's packet drains first at every shard count.
func TestEjectionPortContention(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 3, Latency: 11, LinkBytesPerCycle: 4})
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 2, VNet: VNetRequest, Args: []uint64{1}, Handler: 10})
			n.Send(&Packet{Src: 1, Dst: 2, VNet: VNetRequest, Args: []uint64{2}, Handler: 11})
			c.Sleep(50)
			ep := n.Endpoint(2)
			first, second := ep.Dequeue(), ep.Dequeue()
			if first.Handler != 10 || second.Handler != 11 {
				t.Fatalf("tie-break broken: %d then %d", first.Handler, second.Handler)
			}
			if first.DeliveredAt != 14 || second.DeliveredAt != 17 {
				t.Errorf("delivered at %d/%d, want 14/17", first.DeliveredAt, second.DeliveredAt)
			}
			if q := n.Stats().VNets[VNetRequest].QueueingCycles; q != 3 {
				t.Errorf("queueing cycles = %d, want 3 (second head waited)", q)
			}
		}
	})
}

// TestVNetPortsIndependent: the two virtual networks own separate ports,
// so a request cannot delay a reply (the deadlock-avoidance property the
// split exists for).
func TestVNetPortsIndependent(t *testing.T) {
	runWith(t, func(eng *sim.Engine) (*Network, func(*sim.Context)) {
		n := New(eng, Config{Nodes: 2, Latency: 11, LinkBytesPerCycle: 1}) // 1 B/cycle: huge occupancy
		return n, func(c *sim.Context) {
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Data: make([]byte, 60)})
			n.Send(&Packet{Src: 0, Dst: 1, VNet: VNetReply, Args: []uint64{1}})
			c.Sleep(200)
			p := n.Endpoint(1).Dequeue()                    // reply drains first (priority)
			if p.VNet != VNetReply || p.DeliveredAt != 23 { // 11 + 12
				t.Errorf("reply delivered at %d on %v, want 23 despite busy request port", p.DeliveredAt, p.VNet)
			}
			if q := n.Stats().VNets[VNetReply].QueueingCycles; q != 0 {
				t.Errorf("reply queued %d cycles behind a request", q)
			}
		}
	})
}

// TestContentionDeliveryAcrossShards runs one send schedule — including
// SendAfter delays that land inside, at, and past the window boundary —
// serially and on two shards, and requires identical delivery times and
// stats. This is the packet-level version of the harness equivalence
// suite's contended cases.
func TestContentionDeliveryAcrossShards(t *testing.T) {
	type delivery struct {
		h  uint32
		at sim.Time
	}
	run := func(shards int) ([]delivery, Stats) {
		var opts []sim.Option
		opts = append(opts, sim.WithShards(shards, 2, 11))
		eng := sim.NewEngine(opts...)
		n := New(eng, Config{Nodes: 2, Latency: 11, LinkBytesPerCycle: 4})
		var got []delivery
		ep := n.Endpoint(1)
		ep.Notify = func(at sim.Time) {
			p := ep.Dequeue()
			got = append(got, delivery{p.Handler, p.DeliveredAt})
			n.Free(p)
		}
		eng.SpawnOn(0, "sender", func(c *sim.Context) {
			for i, extra := range []sim.Time{0, 3, 10, 11, 12, 25, 0} {
				n.SendAfter(&Packet{Src: 0, Dst: 1, VNet: VNetRequest, Handler: uint32(i), Args: []uint64{uint64(i)}}, extra)
				c.Advance(2)
				c.Yield()
			}
			c.Sleep(100)
		})
		if err := eng.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return got, n.Stats()
	}
	serial, serialStats := run(1)
	sharded, shardedStats := run(2)
	if len(serial) == 0 {
		t.Fatal("no deliveries")
	}
	if !slicesEqual(serial, sharded) {
		t.Errorf("deliveries differ:\nserial:  %v\nsharded: %v", serial, sharded)
	}
	if serialStats != shardedStats {
		t.Errorf("stats differ:\nserial:  %+v\nsharded: %+v", serialStats, shardedStats)
	}
}

func slicesEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
