// Package conform is the trace-replay conformance suite: the repo's
// safety net for changes that mutate the message layer underneath every
// protocol (contention models, scheduler reworks, optimistic windows).
//
// It has three legs:
//
//   - A committed corpus (testdata/traces/ at the repo root): one
//     recorded message trace per protocol × application pair at a small
//     deterministic scale, in a stable text format (see Stream) with a
//     sha256 manifest. Recording runs the real machine with the
//     network-level taps on (network.Network.OnSend, agent.Core.
//     OnDispatch), so a trace holds the complete message stream — every
//     send with its issue time and delay, every dispatch with its start
//     time and service cycles — plus the run's application-visible
//     outcome (counters, observation hashes, memory and protocol-state
//     digests) in the footer.
//
//   - A standalone replay engine (Replay): the recorded sends are
//     re-issued into a fresh engine + network + one agent.Core per node
//     — no machine, no CPUs, no protocol state — with a scripted
//     dispatcher that charges each dispatch its recorded service time.
//     The network and agent layers then recompute the delivery schedule
//     from scratch, and Replay asserts it against the recording: the
//     arrival schedule (every packet's delivery cycle and identity at
//     every endpoint, injection- and ejection-port serialisation
//     included) cycle-exact for every protocol; per-virtual-network
//     dispatch order and identity always; and dispatch start times plus
//     occupancy counters cycle-exact for DirNNB traces, whose pure
//     message-driven agent has its whole timeline determined by the
//     message stream. (An NP interleaves urgent fault work between
//     dispatches, which a message trace does not capture, so NP
//     dispatch timing is enforced by Record comparison instead — a
//     full-machine re-run compared byte for byte.)
//
//   - A differential matrix (harness.RunObserved / CompareObservations)
//     plus the trace-order MSI transition checker (CheckTagMachine),
//     asserting that every protocol exposes identical application-
//     visible memory semantics and that every per-block tag history is
//     a legal walk of the MSI/update state machine.
//
// The corpus-refresh policy mirrors the golden convention: a deliberate
// behaviour change re-records with `go run ./cmd/conform -record
// -update` and commits the diff; `cmd/conform -record` without -update
// fails on any divergence.
package conform

import (
	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/machine"
)

// DiffApps lists the applications the differential matrix runs.
func DiffApps() []string { return harness.DiffApps }

// Pair is one corpus entry: an application × system combination, at the
// committed tiny scale, optionally under the contention model.
type Pair struct {
	App    string
	System harness.System
	// Contended selects the finite-bandwidth, nonzero-occupancy
	// configuration; the default is the ideal network every pinned
	// golden assumes.
	Contended bool
}

// Name is the corpus file stem, e.g. "em3d-typhoon-stache" or
// "ocean-dirnnb-contended".
func (p Pair) Name() string {
	n := p.App + "-" + string(p.System)
	if p.Contended {
		n += "-contended"
	}
	return n
}

// Contention-model parameters of the contended corpus entries: link
// bandwidth low enough that multi-block transfers queue at the ports,
// occupancy high enough that hot homes make dispatches wait.
const (
	ContendedLinkBW    = 4
	ContendedOccupancy = 20
)

// Config returns the machine configuration a pair records under: the
// Table 2 machine shrunk to 4 nodes with 8 KB caches, so the tiny
// workloads still miss, invalidate, and write back on every node while
// a recorded trace stays well under the tracer cap.
func (p Pair) Config() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 8 << 10
	if p.Contended {
		cfg.LinkBytesPerCycle = ContendedLinkBW
		cfg.OccupancyCycles = ContendedOccupancy
	}
	return cfg
}

// CorpusPairs lists the committed corpus: every protocol × app pair of
// the differential matrix under the ideal network, plus one hardware
// and one user-level protocol re-recorded under contention (the
// configuration the replay's occupancy cross-check exercises).
func CorpusPairs() []Pair {
	var out []Pair
	for _, app := range harness.DiffApps {
		for _, sys := range harness.DiffSystemsFor(app) {
			out = append(out, Pair{App: app, System: sys})
		}
	}
	out = append(out,
		Pair{App: "em3d", System: harness.SysDirNNB, Contended: true},
		Pair{App: "em3d", System: harness.SysStache, Contended: true},
	)
	return out
}
