package conform

import (
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// The negative suite: each test injects one specific lie — a tampered
// trace, a protocol handler bug — and demands the matching conformance
// layer catch it. A checker that passes everything proves nothing.

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("tamper went undetected (want error containing %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

// findKind returns the index of the n-th event of the given kind.
func findKind(t *testing.T, s *Stream, kind trace.Kind, n int) int {
	t.Helper()
	for i, ev := range s.Events {
		if ev.Kind == kind {
			if n == 0 {
				return i
			}
			n--
		}
	}
	t.Fatalf("stream has no event %d of kind %v", n, kind)
	return -1
}

// TestReplayCatchesTamperedArrival moves one recorded delivery by a
// single cycle: the replayed network recomputes the true schedule and
// must flag the disagreement.
func TestReplayCatchesTamperedArrival(t *testing.T) {
	s := loadCorpus(t, Pair{App: "em3d", System: harness.SysStache})
	s.Events[findKind(t, s, trace.KNetArrive, 40)].T++
	wantErr(t, Replay(s), "arrival")
}

// TestReplayCatchesTamperedSend stretches one send's injection delay:
// the packet departs a cycle late, so its arrival — and under
// contention every arrival queued behind it — diverges.
func TestReplayCatchesTamperedSend(t *testing.T) {
	s := loadCorpus(t, Pair{App: "em3d", System: harness.SysStache, Contended: true})
	s.Events[findKind(t, s, trace.KNetSend, 25)].VA++
	wantErr(t, Replay(s), "diverges")
}

// TestReplayCatchesTamperedDispatch moves a DirNNB dispatch start: the
// directory agent's timeline is message-determined, so the strict check
// must reject it.
func TestReplayCatchesTamperedDispatch(t *testing.T) {
	s := loadCorpus(t, Pair{App: "em3d", System: harness.SysDirNNB})
	s.Events[findKind(t, s, trace.KNetDeliver, 40)].T++
	wantErr(t, Replay(s), "dispatch")
}

// TestReplayCatchesTamperedIdentity swaps a dispatched message's
// handler: identity is checked for every protocol, NP streams included.
func TestReplayCatchesTamperedIdentity(t *testing.T) {
	s := loadCorpus(t, Pair{App: "ocean", System: harness.SysStache})
	ev := &s.Events[findKind(t, s, trace.KNetDeliver, 40)]
	h, src, dst, vnet, bytes := trace.UnpackMsg(ev.Aux)
	ev.Aux = trace.PackMsg(h+1, src, dst, vnet, bytes)
	wantErr(t, Replay(s), "identity")
}

// TestReplayCatchesTamperedOccCounter falsifies the recorded occupancy
// counters of a contended DirNNB run: the replayed agents recompute the
// exact queueing and must disagree.
func TestReplayCatchesTamperedOccCounter(t *testing.T) {
	s := loadCorpus(t, Pair{App: "em3d", System: harness.SysDirNNB, Contended: true})
	found := false
	for i := range s.Counters {
		if s.Counters[i].Name == "dirnnb.occ_wait_cycles" {
			s.Counters[i].Value++
			found = true
		}
	}
	if !found {
		t.Fatal("contended dirnnb stream has no dirnnb.occ_wait_cycles counter")
	}
	wantErr(t, Replay(s), "occupancy counters diverge")
}

// TestReplayRejectsMalformedStream exercises the structured-error
// contract on streams no recording could produce.
func TestReplayRejectsMalformedStream(t *testing.T) {
	base := func() *Stream { return loadCorpus(t, Pair{App: "ocean", System: harness.SysDirNNB}) }

	s := base()
	s.Truncated = true
	wantErr(t, Replay(s), "truncated")

	s = base()
	ev := &s.Events[findKind(t, s, trace.KNetSend, 0)]
	h, src, dst, vnet, _ := trace.UnpackMsg(ev.Aux)
	ev.Aux = trace.PackMsg(h, src, dst, vnet, 200) // oversized payload
	wantErr(t, Replay(s), "payload")

	s = base()
	ev = &s.Events[findKind(t, s, trace.KNetSend, 0)]
	ev.Node = (ev.Node + 1) % s.Nodes // send recorded on the wrong node
	wantErr(t, Replay(s), "src")
}

// TestTagCheckerCatchesIllegalTransition feeds the checker a tag
// history no MSI walk allows (ReadOnly retagged ReadOnly) and a block
// left pending at end of run.
func TestTagCheckerCatchesIllegalTransition(t *testing.T) {
	s := loadCorpus(t, Pair{App: "ocean", System: harness.SysStache})
	i := findKind(t, s, trace.KTagChange, 60)
	// Duplicate a tag event immediately after itself: a self-loop,
	// illegal from every state.
	dup := s.Events[i]
	s.Events = append(s.Events[:i+1], append([]trace.Event{dup}, s.Events[i+1:]...)...)
	wantErr(t, CheckTagMachine(s), "illegal tag transition")

	s = loadCorpus(t, Pair{App: "ocean", System: harness.SysStache})
	ev := &s.Events[findKind(t, s, trace.KTagChange, 60)]
	ev.Aux = 3 // mem.TagBusy; depending on the block's history this is
	// either an illegal edge or an unresolved transaction at end of run
	if err := CheckTagMachine(s); err == nil {
		t.Fatal("forced Busy tag went undetected")
	}
}

// TestRecheckCatchesInjectedBug wires a timing bug into Stache's data
// reply — seven extra NP cycles per HDataRO — and re-records: the
// full-machine stream comparison must pinpoint a divergence even though
// the application still computes the right answer.
func TestRecheckCatchesInjectedBug(t *testing.T) {
	p := Pair{App: "em3d", System: harness.SysStache}
	want := loadCorpus(t, p)
	got, err := Record(p, RecordOptions{Mutate: func(sys *typhoon.System) {
		sys.WrapHandler(stache.HDataRO, func(h typhoon.Handler) typhoon.Handler {
			return func(np *typhoon.NP, pkt *network.Packet) {
				np.Charge(7)
				h(np, pkt)
			}
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	wantErr(t, CompareStreams(want, got), "diverge")
}

// TestDifferentialCatchesInjectedBug corrupts the data Stache's home
// sends to read requesters — the classic wrong-data coherence bug — and
// runs the matrix: the protocols no longer agree on what the program
// observed, and the comparison must say so. SkipVerify keeps the
// application's own answer check out of the way, so it is the
// differential layer doing the catching.
func TestDifferentialCatchesInjectedBug(t *testing.T) {
	mut := &DiffMutation{
		SkipVerify: true,
		Mutate: func(sys *typhoon.System) {
			if !sys.HasHandler(stache.HDataRO) {
				return
			}
			sys.WrapHandler(stache.HDataRO, func(h typhoon.Handler) typhoon.Handler {
				return func(np *typhoon.NP, pkt *network.Packet) {
					if len(pkt.Data) > 0 {
						pkt.Data[len(pkt.Data)-1] ^= 0xFF
					}
					h(np, pkt)
				}
			})
		},
	}
	if err := RunDifferential("em3d", 1, mut); err == nil {
		t.Fatal("corrupted data replies went undetected by the differential matrix")
	}
}
