package conform

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// corpusDir is the committed corpus, relative to this package.
const corpusDir = "../../testdata/traces"

func loadCorpus(t *testing.T, p Pair) *Stream {
	t.Helper()
	s, err := LoadStream(TracePath(corpusDir, p))
	if err != nil {
		t.Fatalf("load %s: %v (regenerate with `go run ./cmd/conform -record -update`)", p.Name(), err)
	}
	return s
}

// TestCorpusManifest is the integrity gate: every committed trace is
// listed in MANIFEST.sha256 with a matching digest, and nothing is
// listed that does not exist.
func TestCorpusManifest(t *testing.T) {
	if err := CheckManifest(corpusDir); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusComplete pins the corpus contents to CorpusPairs: a pair
// added to the matrix without a recorded trace, or a stale trace for a
// removed pair, both fail here.
func TestCorpusComplete(t *testing.T) {
	want := make(map[string]bool)
	for _, p := range CorpusPairs() {
		want[filepath.Base(TracePath(corpusDir, p))] = true
	}
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".trace" {
			got[e.Name()] = true
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("corpus pair has no committed trace: %s", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("committed trace matches no corpus pair: %s", name)
		}
	}
}

// TestCorpusReplay replays every committed trace standalone and runs
// the tag-machine checker over it: the recorded message schedule must
// be exactly reproducible by the network and agent layers alone, and
// every per-block tag history must walk the MSI machine legally.
func TestCorpusReplay(t *testing.T) {
	for _, p := range CorpusPairs() {
		t.Run(p.Name(), func(t *testing.T) {
			s := loadCorpus(t, p)
			if s.Truncated {
				t.Fatal("committed stream claims truncation")
			}
			if len(s.Events) == 0 {
				t.Fatal("committed stream has no events")
			}
			if err := Replay(s); err != nil {
				t.Error(err)
			}
			if err := CheckTagMachine(s); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCorpusRoundTrip proves the text format is lossless: decode of an
// encode is byte-identical, for every committed stream.
func TestCorpusRoundTrip(t *testing.T) {
	for _, p := range CorpusPairs() {
		t.Run(p.Name(), func(t *testing.T) {
			s := loadCorpus(t, p)
			enc := s.Encode()
			s2, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, s2.Encode()) {
				t.Fatal("encode/decode round trip is not byte-identical")
			}
		})
	}
}

// TestReRecordMatchesCorpus re-runs a cross-section of the corpus on
// the full machine — at one scheduler shard and at two — and demands
// the fresh recording be byte-identical to the committed stream. This
// is the full-fidelity conformance check (it covers the NP dispatch
// timing the standalone replay deliberately leaves to it) and the
// shard-determinism guarantee in one: traces, counters, digests and all
// may not move with the shard count. The remaining pairs are covered by
// `make conform` (cmd/conform -record).
func TestReRecordMatchesCorpus(t *testing.T) {
	pairs := []Pair{
		{App: "em3d", System: "dirnnb"},
		{App: "em3d", System: "typhoon-update"},
		{App: "ocean", System: "typhoon-stache"},
		{App: "em3d", System: "typhoon-stache", Contended: true},
	}
	for _, p := range pairs {
		for _, shards := range []int{1, 2} {
			p, shards := p, shards
			t.Run(p.Name()+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				t.Parallel()
				want := loadCorpus(t, p)
				got, err := Record(p, RecordOptions{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareStreams(want, got); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDifferentialMatrix runs every app under every protocol and
// asserts identical application-visible memory semantics; shard count
// two exercises the parallel scheduler under the same assertion.
func TestDifferentialMatrix(t *testing.T) {
	for _, app := range DiffApps() {
		for _, shards := range []int{1, 2} {
			app, shards := app, shards
			t.Run(app+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				t.Parallel()
				if err := RunDifferential(app, shards, nil); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
