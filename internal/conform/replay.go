package conform

import (
	"errors"
	"fmt"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/trace"
)

// Replay limits, mirroring the network's own bounds so a corrupted
// stream becomes a structured error before it can panic the engine.
const (
	maxReplayTime  = sim.Time(1) << 60
	maxReplayDelay = sim.Time(1) << 40
)

// packetMinBytes is the smallest recordable payload: the handler word.
const packetMinBytes = 4

// msg is a packet identity decoded from a PackMsg Aux.
type msg struct {
	handler uint32
	src     int
	vnet    uint8
	bytes   int
}

func (m msg) String() string {
	return fmt.Sprintf("handler=%d src=%d vnet=%d bytes=%d", m.handler, m.src, m.vnet, m.bytes)
}

func packetMsg(p *network.Packet) msg {
	return msg{handler: p.Handler, src: p.Src, vnet: uint8(p.VNet), bytes: p.PayloadBytes()}
}

// arrival is one expected endpoint delivery (KNetArrive).
type arrival struct {
	at sim.Time
	m  msg
}

// delivery is one expected dispatch (KNetDeliver).
type delivery struct {
	start   sim.Time
	service sim.Time
	m       msg
}

const maxReplayErrs = 8

// replayState collects divergences across the scripted nodes.
type replayState struct {
	errs []string
}

func (rs *replayState) failf(format string, args ...any) {
	if len(rs.errs) < maxReplayErrs {
		rs.errs = append(rs.errs, fmt.Sprintf(format, args...))
	}
}

// replayCore is the scripted agent.Dispatcher standing in for the
// protocol on one node. Dispatch identity is checked per virtual
// network: within a VNet the dispatch order equals the delivery order,
// which the replayed network reproduces exactly, but across VNets a
// live NP's dispatch loop interleaves urgent fault work the message
// trace does not carry, so its reply-versus-request picks can differ
// from the replay's. A pure message-driven agent (strict: DirNNB) has
// no such work: for it the dispatch schedule is message-determined and
// checked cycle-exact, occupancy waits included.
type replayCore struct {
	node   int
	strict bool
	exp    []delivery // recorded dispatch order
	byVNet [2][]int   // per-VNet indices into exp
	cur    int        // strict cursor into exp
	curVN  [2]int     // per-VNet cursors into byVNet
	core   *agent.Core
	rs     *replayState
}

func (rn *replayCore) DispatchMessage(c *sim.Context, pkt *network.Packet) {
	got := packetMsg(pkt)
	var e delivery
	if rn.strict {
		if rn.cur >= len(rn.exp) {
			rn.rs.failf("node %d: unexpected dispatch %d at cycle %d (%v) — recording has only %d",
				rn.node, rn.cur, c.Time(), got, len(rn.exp))
			rn.cur++
			return
		}
		e = rn.exp[rn.cur]
		rn.cur++
		if c.Time() != e.start {
			rn.rs.failf("node %d: dispatch %d starts at cycle %d, recorded %d (%v)",
				rn.node, rn.cur-1, c.Time(), e.start, e.m)
			if e.start > c.Time() {
				c.SyncTo(e.start) // resync so one slip reports once, not everywhere
			}
		}
	} else {
		vn := got.vnet & 1
		idx := rn.curVN[vn]
		if idx >= len(rn.byVNet[vn]) {
			rn.rs.failf("node %d: unexpected vnet-%d dispatch %d at cycle %d (%v) — recording has only %d",
				rn.node, vn, idx, c.Time(), got, len(rn.byVNet[vn]))
			rn.curVN[vn]++
			return
		}
		e = rn.exp[rn.byVNet[vn][idx]]
		rn.curVN[vn]++
	}
	if got != e.m {
		rn.rs.failf("node %d: dispatch identity mismatch: recorded %v, replayed %v (cycle %d)",
			rn.node, e.m, got, c.Time())
	}
	// Charge the recorded service time, so the occupancy model sees the
	// busy intervals the live dispatches produced.
	c.Advance(e.service)
}

// replayEndpoint checks one node's arrival schedule: every packet
// enqueued at the node, in order, against the recorded KNetArrive
// events. Arrivals are fully determined by the send stream — injection
// and ejection serialisation included — so this check is cycle-exact
// for every protocol.
type replayEndpoint struct {
	node int
	exp  []arrival
	cur  int
	rs   *replayState
}

func (re *replayEndpoint) deliver(p *network.Packet) {
	got := packetMsg(p)
	if re.cur >= len(re.exp) {
		re.rs.failf("node %d: unexpected arrival %d at cycle %d (%v) — recording has only %d",
			re.node, re.cur, p.DeliveredAt, got, len(re.exp))
		re.cur++
		return
	}
	e := re.exp[re.cur]
	if p.DeliveredAt != e.at || got != e.m {
		re.rs.failf("node %d: arrival %d diverges: recorded cycle %d %v, replayed cycle %d %v",
			re.node, re.cur, e.at, e.m, p.DeliveredAt, got)
	}
	re.cur++
}

// replayPlan is a validated stream, partitioned for the replay engine.
type replayPlan struct {
	sends    [][]trace.Event
	arrivals [][]arrival
	delivs   [][]delivery
}

// plan validates the event stream and partitions it per node in stream
// order, turning every malformed (fuzzed) construction into a
// structured error before the engine can see it.
func plan(s *Stream) (*replayPlan, error) {
	p := &replayPlan{
		sends:    make([][]trace.Event, s.Nodes),
		arrivals: make([][]arrival, s.Nodes),
		delivs:   make([][]delivery, s.Nodes),
	}
	for i, ev := range s.Events {
		if ev.Node < 0 || ev.Node >= s.Nodes {
			return nil, fmt.Errorf("conform: replay: event %d on node %d, stream has %d nodes", i, ev.Node, s.Nodes)
		}
		if ev.T < 0 || ev.T > maxReplayTime {
			return nil, fmt.Errorf("conform: replay: event %d at cycle %d outside [0, %d]", i, ev.T, maxReplayTime)
		}
		handler, src, dst, vnet, bytes := trace.UnpackMsg(ev.Aux)
		m := msg{handler: handler, src: src, vnet: vnet, bytes: bytes}
		switch ev.Kind {
		case trace.KNetSend:
			if src != ev.Node {
				return nil, fmt.Errorf("conform: replay: event %d: send recorded on node %d but packed src is %d", i, ev.Node, src)
			}
			if dst >= s.Nodes {
				return nil, fmt.Errorf("conform: replay: event %d: destination %d outside the %d-node machine", i, dst, s.Nodes)
			}
			if bytes < packetMinBytes || bytes > network.MaxPayloadBytes {
				return nil, fmt.Errorf("conform: replay: event %d: payload %d bytes outside [%d, %d]", i, bytes, packetMinBytes, network.MaxPayloadBytes)
			}
			if uint64(ev.VA) > uint64(maxReplayDelay) {
				return nil, fmt.Errorf("conform: replay: event %d: send delay %d beyond limit", i, ev.VA)
			}
			p.sends[ev.Node] = append(p.sends[ev.Node], ev)
		case trace.KNetArrive:
			if dst != ev.Node {
				return nil, fmt.Errorf("conform: replay: event %d: arrival recorded on node %d but packed dst is %d", i, ev.Node, dst)
			}
			if src >= s.Nodes {
				return nil, fmt.Errorf("conform: replay: event %d: source %d outside the %d-node machine", i, src, s.Nodes)
			}
			p.arrivals[ev.Node] = append(p.arrivals[ev.Node], arrival{at: ev.T, m: m})
		case trace.KNetDeliver:
			if dst != ev.Node {
				return nil, fmt.Errorf("conform: replay: event %d: dispatch recorded on node %d but packed dst is %d", i, ev.Node, dst)
			}
			if src >= s.Nodes {
				return nil, fmt.Errorf("conform: replay: event %d: source %d outside the %d-node machine", i, src, s.Nodes)
			}
			if uint64(ev.VA) > uint64(maxReplayDelay) {
				return nil, fmt.Errorf("conform: replay: event %d: service time %d beyond limit", i, ev.VA)
			}
			p.delivs[ev.Node] = append(p.delivs[ev.Node], delivery{start: ev.T, service: sim.Time(ev.VA), m: m})
		}
	}
	return p, nil
}

// Replay re-issues a recorded stream standalone — a fresh engine, the
// real network and agent layers, and one scripted replayCore per node
// in place of the protocol — and asserts the recomputed schedule
// against the recording:
//
//   - the arrival schedule (every packet's delivery cycle and identity
//     at every endpoint) cycle-exact, for every protocol: arrivals are
//     fully determined by the recorded sends, and the send drivers
//     reproduce each send's issue order and departure cycle exactly;
//   - the dispatch schedule per virtual network (identity and order)
//     for every protocol, and cycle-exact — start cycles and
//     occupancy-counter deltas (occ_waits / occ_wait_cycles) — for
//     DirNNB, whose agent runs nothing but the recorded messages.
//
// Every corpus file is thereby a conformance test of the message layer
// that runs without any protocol or application code; an NP trace's
// full-machine cycle-exactness is covered by Record comparison instead.
func Replay(s *Stream) (err error) {
	if s.Truncated {
		return errors.New("conform: refusing to replay a truncated stream (at least one node's tail is missing)")
	}
	if s.Nodes <= 0 || s.Nodes > maxStreamNodes {
		return fmt.Errorf("conform: replay: %d nodes outside [1, %d]", s.Nodes, maxStreamNodes)
	}
	// The decoder parses times as unsigned, so a hostile header can smuggle
	// a negative sim.Time through the uint64 cast; bound every value the
	// replayed network and agents consume.
	if s.NetLatency < 0 || s.NetLatency > maxReplayDelay {
		return fmt.Errorf("conform: replay: net latency %d outside [0, %d]", s.NetLatency, maxReplayDelay)
	}
	if s.LinkBytesPerCycle < 0 {
		return fmt.Errorf("conform: replay: negative link bandwidth %d", s.LinkBytesPerCycle)
	}
	if s.OccupancyCycles < 0 || s.OccupancyCycles > maxReplayDelay {
		return fmt.Errorf("conform: replay: occupancy %d outside [0, %d]", s.OccupancyCycles, maxReplayDelay)
	}
	pl, err := plan(s)
	if err != nil {
		return err
	}
	// A malformed stream can still reach the network's own invariants
	// (it panics *network.Error on bad packets); surface those as
	// structured errors too.
	defer func() {
		if r := recover(); r != nil {
			var nerr *network.Error
			if e, ok := r.(error); ok && errors.As(e, &nerr) {
				err = fmt.Errorf("conform: replay: %w", e)
				return
			}
			panic(r)
		}
	}()
	eng := sim.NewEngine()
	net := network.New(eng, network.Config{
		Nodes:             s.Nodes,
		Latency:           s.NetLatency,
		LinkBytesPerCycle: s.LinkBytesPerCycle,
	})
	rs := &replayState{}
	strict := s.System == "dirnnb"
	cores := make([]*replayCore, s.Nodes)
	eps := make([]*replayEndpoint, s.Nodes)
	// Agents first, then drivers, in node order: contexts must exist
	// before Run and their creation order feeds scheduler tie-breaking.
	for i := 0; i < s.Nodes; i++ {
		rn := &replayCore{node: i, strict: strict, exp: pl.delivs[i], rs: rs}
		for j, d := range rn.exp {
			rn.byVNet[d.m.vnet&1] = append(rn.byVNet[d.m.vnet&1], j)
		}
		rn.core = agent.Spawn(eng, net, i, fmt.Sprintf("replay-agent%d", i), "replay idle", s.OccupancyCycles, rn, nil)
		cores[i] = rn
		eps[i] = &replayEndpoint{node: i, exp: pl.arrivals[i], rs: rs}
	}
	net.OnDeliver = func(p *network.Packet) { eps[p.Dst].deliver(p) }
	for i := 0; i < s.Nodes; i++ {
		node := i
		script := pl.sends[i]
		eng.SpawnOn(node, fmt.Sprintf("replay-driver%d", node), func(c *sim.Context) {
			for _, ev := range script {
				// Reproduce the recorded call order and departure cycle.
				// The driver stays at time zero and encodes each send's
				// departure as its delay: injection-port claims use only
				// the departure cycle (start = max(SentAt, port busy)),
				// never the caller's clock, so this replays the exact
				// port evolution — which matters because a node's calls
				// come from several live contexts (its processor and its
				// protocol agent, each on its own clock), making the
				// recorded order non-monotonic in both issue time and
				// departure cycle. Per-node call order is what the
				// injection port serialises in, so the claims replay in
				// the order the live run made them.
				handler, _, dst, vnet, bytes := trace.UnpackMsg(ev.Aux)
				net.SendAfter(&network.Packet{
					Src: node, Dst: dst, VNet: network.VNet(vnet), Handler: handler,
					Data: zeroPayload[:bytes-packetMinBytes],
				}, ev.T+sim.Time(ev.VA)-c.Time())
			}
		})
	}
	if rerr := eng.Run(); rerr != nil {
		return fmt.Errorf("conform: replay: %w", rerr)
	}
	var waits, waitCycles uint64
	for i := 0; i < s.Nodes; i++ {
		if eps[i].cur < len(eps[i].exp) {
			e := eps[i].exp[eps[i].cur]
			rs.errs = append(rs.errs, fmt.Sprintf("node %d: only %d of %d recorded arrivals replayed (next expected: cycle %d %v)",
				i, eps[i].cur, len(eps[i].exp), e.at, e.m))
		}
		rn := cores[i]
		done := rn.cur
		if !strict {
			done = rn.curVN[0] + rn.curVN[1]
		}
		if done < len(rn.exp) {
			rs.errs = append(rs.errs, fmt.Sprintf("node %d: only %d of %d recorded dispatches replayed",
				i, done, len(rn.exp)))
		}
		w, wc := rn.core.OccStats()
		waits += w
		waitCycles += wc
	}
	if strict {
		// DirNNB's occupancy counters are fully determined by the
		// message stream, so the replayed agents must reproduce the
		// live run's queueing to the cycle.
		if w, wc := s.Counter("dirnnb.occ_waits"), s.Counter("dirnnb.occ_wait_cycles"); waits != w || waitCycles != wc {
			rs.errs = append(rs.errs, fmt.Sprintf("occupancy counters diverge: replay saw %d waits / %d cycles, recording %d / %d",
				waits, waitCycles, w, wc))
		}
	}
	if len(rs.errs) > 0 {
		return fmt.Errorf("conform: replay %s-%s: %d divergences:\n  %s", s.App, s.System, len(rs.errs), joinLines(rs.errs))
	}
	return nil
}

// zeroPayload backs the replayed packets' data: replay checks the
// message schedule, not payload contents, so recorded sizes are
// reproduced with zeroed bytes.
var zeroPayload [network.MaxPayloadBytes - packetMinBytes]byte

func joinLines(lines []string) string {
	out := lines[0]
	for _, l := range lines[1:] {
		out += "\n  " + l
	}
	return out
}
