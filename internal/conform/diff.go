package conform

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// DiffMutation injects a protocol bug into the Typhoon-based runs of a
// differential matrix — the suite's negative-test hook.
type DiffMutation struct {
	Mutate     func(*typhoon.System)
	SkipVerify bool
}

// RunDifferential runs app at the corpus scale under every protocol
// that implements it and asserts identical application-visible memory
// semantics (final per-processor observation histories, coherent
// memory contents, and per-barrier-epoch checkpoints where the barrier
// structure matches). Timing differs wildly across the systems — that
// is the paper's point — but what the program observes must not.
//
// mut, when non-nil, is applied to every Typhoon-based system in the
// matrix (DirNNB has no Typhoon system and runs unmutated), so a
// handler bug shows up as Typhoon runs diverging from the hardware
// reference.
func RunDifferential(app string, shards int, mut *DiffMutation) error {
	var results []harness.DiffObservation
	for _, sys := range harness.DiffSystemsFor(app) {
		p := Pair{App: app, System: sys}
		cfg := p.Config()
		cfg.Shards = shards
		opt := harness.DiffOptions{}
		if mut != nil && sys != harness.SysDirNNB {
			opt.Mutate = mut.Mutate
			opt.SkipVerify = mut.SkipVerify
		}
		obs, err := harness.RunObserved(cfg, sys, app, harness.TinyWorkload(), opt)
		if err != nil {
			return fmt.Errorf("conform: differential %s under %s: %w", app, sys, err)
		}
		results = append(results, obs)
	}
	return harness.CompareObservations(results)
}
