package conform

import (
	"context"
	"fmt"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// DiffMutation injects a protocol bug into the Typhoon-based runs of a
// differential matrix — the suite's negative-test hook.
type DiffMutation struct {
	Mutate     func(*typhoon.System)
	SkipVerify bool
}

// RunDifferential runs app at the corpus scale under every protocol
// that implements it and asserts identical application-visible memory
// semantics (final per-processor observation histories, coherent
// memory contents, and per-barrier-epoch checkpoints where the barrier
// structure matches). Timing differs wildly across the systems — that
// is the paper's point — but what the program observes must not.
//
// mut, when non-nil, is applied to every Typhoon-based system in the
// matrix (DirNNB has no Typhoon system and runs unmutated), so a
// handler bug shows up as Typhoon runs diverging from the hardware
// reference.
func RunDifferential(app string, shards int, mut *DiffMutation) error {
	systems := harness.DiffSystemsFor(app)
	if mut == nil {
		// The unmutated matrix is a plain sweep: route it through the
		// executor as Observed points (local-only — the observation
		// carries live machine state no fleet backend can ship).
		points := make([]harness.Point, len(systems))
		for i, sys := range systems {
			cfg := Pair{App: app, System: sys}.Config()
			cfg.Shards = shards
			pt := harness.Point{Cfg: cfg, System: sys, Bench: app, Observed: true, NoCache: true}
			w := harness.TinyWorkload()
			if app == "em3d" {
				c := w.EM3D
				pt.EM3D = &c
			} else {
				c := w.Ocean
				pt.Ocean = &c
			}
			points[i] = pt
		}
		prs, err := harness.LocalExecutor{Workers: 1}.Submit(context.Background(), harness.Batch{Points: points})
		if err != nil {
			return fmt.Errorf("conform: differential %s: %w", app, err)
		}
		results := make([]harness.DiffObservation, len(prs))
		for i, pr := range prs {
			results[i] = *pr.Obs
		}
		return harness.CompareObservations(results)
	}
	var results []harness.DiffObservation
	for _, sys := range systems {
		p := Pair{App: app, System: sys}
		cfg := p.Config()
		cfg.Shards = shards
		opt := harness.DiffOptions{}
		if sys != harness.SysDirNNB {
			opt.Mutate = mut.Mutate
			opt.SkipVerify = mut.SkipVerify
		}
		obs, err := harness.RunObserved(cfg, sys, app, harness.TinyWorkload(), opt)
		if err != nil {
			return fmt.Errorf("conform: differential %s under %s: %w", app, sys, err)
		}
		results = append(results, obs)
	}
	return harness.CompareObservations(results)
}
