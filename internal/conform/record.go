package conform

import (
	"fmt"
	"strings"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// RecordOptions tunes a recording run.
type RecordOptions struct {
	// Shards is the scheduler shard count to record under. Results —
	// and therefore streams — are bit-identical at every value; the
	// recheck tests exploit that by recording the same pair at several
	// counts and demanding byte-equal streams.
	Shards int
	// Mutate and SkipVerify pass through to harness.DiffOptions: the
	// negative tests inject a protocol bug and watch the suite catch it.
	Mutate     func(*typhoon.System)
	SkipVerify bool
}

// Record runs a corpus pair on the real machine with the conformance
// taps attached and assembles the resulting stream. A recording whose
// tracer overflowed is refused — a truncated trace must never become a
// corpus file.
func Record(p Pair, opt RecordOptions) (*Stream, error) {
	cfg := p.Config()
	cfg.Shards = opt.Shards
	tr := trace.New(0)
	obs, err := harness.RunObserved(cfg, p.System, p.App, harness.TinyWorkload(), harness.DiffOptions{
		Mutate:     opt.Mutate,
		SkipVerify: opt.SkipVerify,
		Tracer:     tr,
	})
	if err != nil {
		return nil, fmt.Errorf("conform: record %s: %w", p.Name(), err)
	}
	if tr.Truncated() {
		return nil, fmt.Errorf("conform: record %s: tracer truncated (%d events dropped) — raise trace.Tracer.Max, never commit a partial stream", p.Name(), tr.Dropped())
	}
	s := &Stream{
		App:               p.App,
		System:            string(p.System),
		Workload:          "tiny",
		Nodes:             cfg.Nodes,
		CacheSize:         cfg.CacheSize,
		CacheWays:         cfg.CacheWays,
		BlockSize:         cfg.BlockSize,
		TLBEntries:        cfg.TLBEntries,
		LocalMissCycles:   cfg.LocalMissCycles,
		TLBMissCycles:     cfg.TLBMissCycles,
		NetLatency:        cfg.NetLatency,
		BarrierLatency:    cfg.BarrierLatency,
		LinkBytesPerCycle: cfg.LinkBytesPerCycle,
		OccupancyCycles:   cfg.OccupancyCycles,
		Seed:              cfg.Seed,
		Events:            nodeMajorEvents(tr, cfg.Nodes),
		Cycles:            obs.Res.Cycles,
		ROICycles:         obs.Res.ROICycles,
		MemDigest:         obs.MemDigest,
		ProtoDigest:       obs.ProtoDigest,
		TagsDigest:        obs.TagsDigest,
	}
	// Counters, name-sorted, minus the engine.* scheduler mechanics:
	// those measure how the host executed the simulation (window counts,
	// wakeups), not what the simulated machine did, and they may differ
	// across shard counts while every simulated result is bit-identical.
	for _, name := range obs.Res.Counters.Names() {
		if strings.HasPrefix(name, "engine.") {
			continue
		}
		s.Counters = append(s.Counters, Counter{Name: name, Value: obs.Res.Counters.Get(name)})
	}
	for i := range obs.FinalProcs {
		s.Obs = append(s.Obs, ObsRow{Node: i, Hash: obs.FinalProcs[i], Ops: obs.FinalOps[i]})
	}
	return s, nil
}

// nodeMajorEvents flattens the tracer's buffers node by node, each in
// emission order — the stream's canonical event order. Emission order,
// not the (time, node, seq) merge, is what replay needs: a node's
// SendAfter calls take effect on its injection port in call order, and
// a lagging context can make that order non-monotonic in time.
func nodeMajorEvents(tr *trace.Tracer, nodes int) []trace.Event {
	var out []trace.Event
	for n := 0; n < nodes; n++ {
		out = append(out, tr.NodeEvents(n)...)
	}
	return out
}

// CompareStreams demands byte-identical recordings: the full-machine
// re-record conformance check (and the shards-equivalence check) both
// reduce to it. The error pinpoints the first divergence — header
// field, event index, or footer line — so a protocol or engine change
// that moves one message shows up as that message, not as a blob diff.
func CompareStreams(want, got *Stream) error {
	a, b := want.Encode(), got.Encode()
	if string(a) == string(b) {
		return nil
	}
	// Find the first differing line for the report.
	al, bl := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Errorf("conform: streams diverge at line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Errorf("conform: streams diverge in length: want %d lines, got %d", len(al), len(bl))
}
