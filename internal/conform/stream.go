package conform

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/trace"
)

// streamMagic is the format's first line; the trailing v1 is the format
// version — any incompatible change to the layout below must bump it.
const streamMagic = "tempest-conform-trace v1"

// Decode limits: a hostile or corrupted header must not make Decode
// allocate unboundedly. The committed corpus sits far below all three.
const (
	maxStreamEvents   = 1 << 22
	maxStreamCounters = 1 << 16
	maxStreamNodes    = 1 << 12 // PackMsg's node width
)

// Counter is one footer counter (sorted by name in the stream).
type Counter struct {
	Name  string
	Value uint64
}

// ObsRow is one node's final observation (machine.Proc.Observation).
type ObsRow struct {
	Node int
	Hash uint64
	Ops  uint64
}

// Stream is one recorded conformance trace: the machine configuration
// it ran under, the merged event stream, and the run's outcome. The
// text form (Encode) is the committed-corpus format; it must be stable,
// so every field below is versioned by streamMagic.
type Stream struct {
	// Header: what ran.
	App      string // "em3d" or "ocean"
	System   string // harness.System name
	Workload string // "tiny" (the only committed scale)
	// Header: the machine configuration, mirroring machine.Config.
	Nodes             int
	CacheSize         int
	CacheWays         int
	BlockSize         int
	TLBEntries        int
	LocalMissCycles   sim.Time
	TLBMissCycles     sim.Time
	NetLatency        sim.Time
	BarrierLatency    sim.Time
	LinkBytesPerCycle int
	OccupancyCycles   sim.Time
	Seed              uint64
	// Truncated records the tracer's cap flag. Record refuses to emit a
	// truncated stream; the field exists so Replay can refuse one that
	// was hand-assembled or corrupted into claiming truncation.
	Truncated bool

	// Events is the recorded event stream in its canonical order:
	// node-major, each node's events in emission order (trace.Tracer.
	// NodeEvents). Emission order is the order the node's contexts made
	// the recorded calls — the order replay must re-issue sends in,
	// since injection-port claims take effect in call order — and it is
	// not always monotonic in time (a context can run with a lagging
	// clock), so the (time, node, seq) display merge would corrupt it.
	Events []trace.Event

	// Footer: the run's outcome.
	Cycles      sim.Time
	ROICycles   sim.Time
	Counters    []Counter // name-sorted, engine.* excluded
	Obs         []ObsRow  // one per node, node order
	MemDigest   string    // harness.SharedMemoryDigest
	ProtoDigest uint64    // protocol StateDigest
	TagsDigest  uint64    // typhoon.System.StateDigest (0 for dirnnb)
}

// MachineConfig rebuilds the machine configuration the stream was
// recorded under (shards are a runtime choice, not part of the trace:
// results are bit-identical at every shard count).
func (s *Stream) MachineConfig() machine.Config {
	return machine.Config{
		Nodes:             s.Nodes,
		CacheSize:         s.CacheSize,
		CacheWays:         s.CacheWays,
		BlockSize:         s.BlockSize,
		TLBEntries:        s.TLBEntries,
		LocalMissCycles:   s.LocalMissCycles,
		TLBMissCycles:     s.TLBMissCycles,
		NetLatency:        s.NetLatency,
		BarrierLatency:    s.BarrierLatency,
		LinkBytesPerCycle: s.LinkBytesPerCycle,
		OccupancyCycles:   s.OccupancyCycles,
		Seed:              s.Seed,
	}
}

// Counter returns a footer counter by name (zero when absent, matching
// stats.Counters.Get).
func (s *Stream) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Encode renders the stream in the committed text format: a fixed-order
// header, the event lines (trace.Event.String), and a fixed-order
// footer closed by an "end" line.
func (s *Stream) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", streamMagic)
	fmt.Fprintf(&b, "app %s\n", s.App)
	fmt.Fprintf(&b, "system %s\n", s.System)
	fmt.Fprintf(&b, "workload %s\n", s.Workload)
	fmt.Fprintf(&b, "nodes %d\n", s.Nodes)
	fmt.Fprintf(&b, "cache %d\n", s.CacheSize)
	fmt.Fprintf(&b, "ways %d\n", s.CacheWays)
	fmt.Fprintf(&b, "block %d\n", s.BlockSize)
	fmt.Fprintf(&b, "tlb %d\n", s.TLBEntries)
	fmt.Fprintf(&b, "localmiss %d\n", s.LocalMissCycles)
	fmt.Fprintf(&b, "tlbmiss %d\n", s.TLBMissCycles)
	fmt.Fprintf(&b, "netlat %d\n", s.NetLatency)
	fmt.Fprintf(&b, "barlat %d\n", s.BarrierLatency)
	fmt.Fprintf(&b, "linkbw %d\n", s.LinkBytesPerCycle)
	fmt.Fprintf(&b, "occupancy %d\n", s.OccupancyCycles)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "truncated %d\n", boolDigit(s.Truncated))
	fmt.Fprintf(&b, "events %d\n", len(s.Events))
	for _, e := range s.Events {
		fmt.Fprintf(&b, "%s\n", e.String())
	}
	fmt.Fprintf(&b, "cycles %d\n", s.Cycles)
	fmt.Fprintf(&b, "roi %d\n", s.ROICycles)
	fmt.Fprintf(&b, "counters %d\n", len(s.Counters))
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, o := range s.Obs {
		fmt.Fprintf(&b, "obs %d %#x %d\n", o.Node, o.Hash, o.Ops)
	}
	fmt.Fprintf(&b, "mem %s\n", s.MemDigest)
	fmt.Fprintf(&b, "proto %#x\n", s.ProtoDigest)
	fmt.Fprintf(&b, "tags %#x\n", s.TagsDigest)
	fmt.Fprintf(&b, "end\n")
	return b.Bytes()
}

func boolDigit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// DecodeError is the structured failure every malformed stream decodes
// to — Decode never panics and never returns a partial Stream.
type DecodeError struct {
	Line int
	Msg  string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("conform: stream line %d: %s", e.Line, e.Msg)
}

// decoder walks the stream line by line, tracking position for errors.
type decoder struct {
	sc   *bufio.Scanner
	line int
	err  *DecodeError
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &DecodeError{Line: d.line, Msg: fmt.Sprintf(format, args...)}
	}
}

// next returns the next line, or "" after failing at EOF.
func (d *decoder) next() string {
	if d.err != nil {
		return ""
	}
	if !d.sc.Scan() {
		if err := d.sc.Err(); err != nil {
			d.fail("read: %v", err)
		} else {
			d.line++
			d.fail("unexpected end of stream")
		}
		return ""
	}
	d.line++
	return d.sc.Text()
}

// field consumes a "key value" line and returns the value.
func (d *decoder) field(key string) string {
	line := d.next()
	if d.err != nil {
		return ""
	}
	val, ok := strings.CutPrefix(line, key+" ")
	if !ok || val == "" || strings.ContainsAny(val, " \t") {
		d.fail("want %q line, got %q", key+" <value>", line)
		return ""
	}
	return val
}

func (d *decoder) intField(key string) int {
	v, err := strconv.ParseInt(d.field(key), 10, 64)
	if err != nil && d.err == nil {
		d.fail("%s: %v", key, err)
	}
	return int(v)
}

func (d *decoder) uintField(key string) uint64 {
	v, err := strconv.ParseUint(d.field(key), 10, 64)
	if err != nil && d.err == nil {
		d.fail("%s: %v", key, err)
	}
	return v
}

func (d *decoder) timeField(key string) sim.Time { return sim.Time(d.uintField(key)) }

// Decode parses a stream, returning a *DecodeError for any deviation
// from the format — wrong magic, out-of-order keys, unparseable events,
// counts that disagree with the lines present, or trailing garbage.
func Decode(data []byte) (*Stream, error) {
	d := &decoder{sc: bufio.NewScanner(bytes.NewReader(data))}
	d.sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if magic := d.next(); d.err == nil && magic != streamMagic {
		d.fail("bad magic %q (want %q)", magic, streamMagic)
	}
	s := &Stream{}
	s.App = d.field("app")
	s.System = d.field("system")
	s.Workload = d.field("workload")
	s.Nodes = d.intField("nodes")
	s.CacheSize = d.intField("cache")
	s.CacheWays = d.intField("ways")
	s.BlockSize = d.intField("block")
	s.TLBEntries = d.intField("tlb")
	s.LocalMissCycles = d.timeField("localmiss")
	s.TLBMissCycles = d.timeField("tlbmiss")
	s.NetLatency = d.timeField("netlat")
	s.BarrierLatency = d.timeField("barlat")
	s.LinkBytesPerCycle = d.intField("linkbw")
	s.OccupancyCycles = d.timeField("occupancy")
	s.Seed = d.uintField("seed")
	switch d.intField("truncated") {
	case 0:
	case 1:
		s.Truncated = true
	default:
		d.fail("truncated: want 0 or 1")
	}
	if d.err == nil && (s.Nodes <= 0 || s.Nodes > maxStreamNodes) {
		d.fail("nodes %d outside [1, %d]", s.Nodes, maxStreamNodes)
	}
	nev := d.intField("events")
	if d.err == nil && (nev < 0 || nev > maxStreamEvents) {
		d.fail("event count %d outside [0, %d]", nev, maxStreamEvents)
	}
	if d.err == nil {
		s.Events = make([]trace.Event, 0, nev)
		for i := 0; i < nev; i++ {
			line := d.next()
			if d.err != nil {
				break
			}
			e, err := trace.ParseEvent(line)
			if err != nil {
				d.fail("event %d: %v", i, err)
				break
			}
			s.Events = append(s.Events, e)
		}
	}
	s.Cycles = d.timeField("cycles")
	s.ROICycles = d.timeField("roi")
	nctr := d.intField("counters")
	if d.err == nil && (nctr < 0 || nctr > maxStreamCounters) {
		d.fail("counter count %d outside [0, %d]", nctr, maxStreamCounters)
	}
	if d.err == nil {
		s.Counters = make([]Counter, 0, nctr)
		for i := 0; i < nctr; i++ {
			line := d.next()
			if d.err != nil {
				break
			}
			f := strings.Fields(line)
			if len(f) != 3 || f[0] != "counter" {
				d.fail("want \"counter <name> <value>\", got %q", line)
				break
			}
			v, err := strconv.ParseUint(f[2], 10, 64)
			if err != nil {
				d.fail("counter %s: %v", f[1], err)
				break
			}
			if i > 0 && s.Counters[i-1].Name >= f[1] {
				d.fail("counter %q out of sorted order", f[1])
				break
			}
			s.Counters = append(s.Counters, Counter{Name: f[1], Value: v})
		}
	}
	if d.err == nil {
		s.Obs = make([]ObsRow, 0, s.Nodes)
		for i := 0; i < s.Nodes; i++ {
			line := d.next()
			if d.err != nil {
				break
			}
			f := strings.Fields(line)
			var bad bool
			if len(f) != 4 || f[0] != "obs" || f[1] != strconv.Itoa(i) {
				bad = true
			}
			var hash, ops uint64
			if !bad {
				h, ok1 := strings.CutPrefix(f[2], "0x")
				var err1, err2 error
				hash, err1 = strconv.ParseUint(h, 16, 64)
				ops, err2 = strconv.ParseUint(f[3], 10, 64)
				bad = !ok1 || err1 != nil || err2 != nil
			}
			if bad {
				d.fail("want \"obs %d 0x<hash> <ops>\", got %q", i, line)
				break
			}
			s.Obs = append(s.Obs, ObsRow{Node: i, Hash: hash, Ops: ops})
		}
	}
	s.MemDigest = d.field("mem")
	if d.err == nil {
		if len(s.MemDigest) != 64 || strings.Trim(s.MemDigest, "0123456789abcdef") != "" {
			d.fail("mem: want 64 lowercase hex digits, got %q", s.MemDigest)
		}
	}
	s.ProtoDigest = d.hexField("proto")
	s.TagsDigest = d.hexField("tags")
	if line := d.next(); d.err == nil && line != "end" {
		d.fail("want \"end\", got %q", line)
	}
	if d.err == nil && d.sc.Scan() {
		d.line++
		d.fail("trailing data after \"end\": %q", d.sc.Text())
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

func (d *decoder) hexField(key string) uint64 {
	val, ok := strings.CutPrefix(d.field(key), "0x")
	if d.err != nil {
		return 0
	}
	v, err := strconv.ParseUint(val, 16, 64)
	if !ok || err != nil {
		d.fail("%s: want 0x<hex>", key)
		return 0
	}
	return v
}
