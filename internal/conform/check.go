package conform

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/trace"
)

// allowedTagEdges is the per-block access-tag state machine the Typhoon
// protocols (Stache, Blizzard-Stache, EM3D-update) are allowed to walk,
// indexed [from][to]. It is the MSI protocol of §3 plus Busy as the
// pending state:
//
//   - Invalid → Busy:    a fault or prefetch goes pending
//   - Busy → ReadOnly:   shared data arrives
//   - Busy → ReadWrite:  exclusive data or an upgrade ack arrives
//   - Busy → Invalid:    a NACK bounces the request, or an orphaned
//     reply lands after its page was replaced
//   - ReadOnly → Busy:   an upgrade goes pending
//   - ReadOnly → ReadWrite: the home grants an upgrade in place (a
//     migratory or home-local fast path)
//   - ReadOnly → Invalid:  invalidation or replacement
//   - ReadWrite → ReadOnly: downgrade (another reader's copy request)
//   - ReadWrite → Invalid:  invalidation, writeback, or replacement
//   - Invalid → ReadOnly / ReadWrite: a block filled without a visible
//     pending mark (the update protocol's pushed updates, and home-side
//     restores after a writeback)
//
// Self-loops (retagging a block with the tag it already has) are not
// legal: every traced SetTag/Invalidate must change the state, so a
// protocol that spins retagging shows up here.
var allowedTagEdges = [4][4]bool{
	mem.TagInvalid:   {mem.TagReadOnly: true, mem.TagReadWrite: true, mem.TagBusy: true},
	mem.TagReadOnly:  {mem.TagInvalid: true, mem.TagReadWrite: true, mem.TagBusy: true},
	mem.TagReadWrite: {mem.TagInvalid: true, mem.TagReadOnly: true},
	mem.TagBusy:      {mem.TagInvalid: true, mem.TagReadOnly: true, mem.TagReadWrite: true},
}

// CheckTagMachine validates a stream's per-block tag history — every
// KTagChange, in trace order, keyed by (node, block) — against
// allowedTagEdges, and demands that no block is left pending (Busy)
// when the run ends. The trace carries only the new tag, so the first
// event of each block seeds its state unchecked. DirNNB streams have no
// tag events (its MSI state lives in the hardware directory, exercised
// by Replay and the state digest instead) and pass vacuously.
func CheckTagMachine(s *Stream) error {
	type key struct {
		node int
		va   mem.VA
	}
	last := make(map[key]mem.Tag)
	order := make([]key, 0, 256) // deterministic reporting order
	var errs []string
	for i, ev := range s.Events {
		if ev.Kind != trace.KTagChange {
			continue
		}
		if ev.Aux >= 4 {
			return fmt.Errorf("conform: tag check: event %d carries tag %d outside the MSI machine", i, ev.Aux)
		}
		to := mem.Tag(ev.Aux)
		k := key{node: ev.Node, va: ev.VA}
		from, seen := last[k]
		if !seen {
			order = append(order, k)
		} else if !allowedTagEdges[from][to] {
			if len(errs) < maxReplayErrs {
				errs = append(errs, fmt.Sprintf("event %d: node %d block %#x: illegal tag transition %v -> %v at cycle %d",
					i, ev.Node, ev.VA, from, to, ev.T))
			}
		}
		last[k] = to
	}
	for _, k := range order {
		if last[k] == mem.TagBusy {
			errs = append(errs, fmt.Sprintf("node %d block %#x: left Busy at end of run (unresolved transaction)", k.node, k.va))
			if len(errs) >= maxReplayErrs {
				break
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("conform: tag check %s-%s: %d violations:\n  %s", s.App, s.System, len(errs), joinLines(errs))
	}
	return nil
}
