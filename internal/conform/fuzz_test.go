package conform

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/trace"
)

// seedStream is a tiny hand-built stream exercising every event kind
// the replayer interprets: two nodes, one message each way, matched
// arrivals and dispatches.
func seedStream() *Stream {
	msg01 := trace.PackMsg(17, 0, 1, 0, 12)
	msg10 := trace.PackMsg(18, 1, 0, 1, 4)
	return &Stream{
		App: "em3d", System: "dirnnb", Workload: "tiny",
		Nodes: 2, CacheSize: 8 << 10, CacheWays: 2, BlockSize: 32, TLBEntries: 16,
		LocalMissCycles: 10, TLBMissCycles: 25, NetLatency: 11, BarrierLatency: 11,
		Events: []trace.Event{
			{T: 5, Node: 0, Kind: trace.KNetSend, VA: 1, Aux: msg01},
			{T: 17, Node: 0, Kind: trace.KNetArrive, Aux: msg10},
			{T: 17, Node: 0, Kind: trace.KNetDeliver, VA: 2, Aux: msg10},
			{T: 0, Node: 1, Kind: trace.KTagChange, VA: 0x10000, Aux: 3},
			{T: 6, Node: 1, Kind: trace.KNetSend, Aux: msg10},
			{T: 9, Node: 1, Kind: trace.KTagChange, VA: 0x10000, Aux: 1},
			{T: 17, Node: 1, Kind: trace.KNetArrive, Aux: msg01},
			{T: 17, Node: 1, Kind: trace.KNetDeliver, VA: 1, Aux: msg01},
		},
		Cycles: 20, ROICycles: 18,
		Counters:  []Counter{{Name: "net.msgs", Value: 2}},
		Obs:       []ObsRow{{Node: 0, Hash: 0x1, Ops: 3}, {Node: 1, Hash: 0x2, Ops: 4}},
		MemDigest: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
	}
}

// fuzzReplayLimit bounds the streams the fuzz body replays: plan() is
// linear, but each replayed send costs engine work, so only small
// streams go through the full engine.
const fuzzReplayLimit = 512

// FuzzStream is the trace-mutating fuzz target: whatever bytes arrive,
// decoding yields either a structured *DecodeError or a stream that
// round-trips byte-identically; and every decoded stream may be fed to
// the replayer and the tag checker, which must return errors — never
// panic, never diverge silently into wrong results. (Semantic
// divergence is impossible by construction: replay only ever compares
// against the stream itself, so a fuzzed stream can fail but cannot
// corrupt a verdict about the committed corpus.)
func FuzzStream(f *testing.F) {
	f.Add(seedStream().Encode())
	// A real recorded stream, so mutations explore the actual corpus
	// format, footer included.
	if raw, err := os.ReadFile(TracePath(corpusDir, Pair{App: "ocean", System: harness.SysDirNNB})); err == nil {
		f.Add(raw)
	}
	// Header-only truncations and corruptions.
	enc := seedStream().Encode()
	f.Add(enc[:len(enc)/2])
	f.Add(bytes.Replace(enc, []byte("events 8"), []byte("events 99"), 1))
	f.Add(bytes.Replace(enc, []byte("truncated 0"), []byte("truncated 1"), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			var derr *DecodeError
			if !errors.As(err, &derr) {
				t.Fatalf("Decode returned a non-structured error: %v", err)
			}
			return
		}
		enc := s.Encode()
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of a valid stream failed: %v", err)
		}
		if !bytes.Equal(enc, s2.Encode()) {
			t.Fatal("encode/decode round trip is not byte-identical")
		}
		// Replay and the tag checker accept arbitrary decoded streams
		// and must fail structurally, not panic.
		if len(s.Events) <= fuzzReplayLimit && s.Nodes <= 8 {
			_ = Replay(s)
		}
		_ = CheckTagMachine(s)
	})
}
