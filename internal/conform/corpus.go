package conform

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ManifestName is the corpus checksum file, in `sha256sum -c` format.
const ManifestName = "MANIFEST.sha256"

// TracePath is the corpus file for a pair under dir.
func TracePath(dir string, p Pair) string {
	return filepath.Join(dir, p.Name()+".trace")
}

// LoadStream reads and decodes one corpus file.
func LoadStream(path string) (*Stream, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// SaveStream writes one corpus file.
func SaveStream(path string, s *Stream) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("conform: %w", err)
	}
	if err := os.WriteFile(path, s.Encode(), 0o644); err != nil {
		return fmt.Errorf("conform: %w", err)
	}
	return nil
}

// WriteManifest rewrites dir's manifest from the .trace files present.
func WriteManifest(dir string) error {
	names, err := traceNames(dir)
	if err != nil {
		return err
	}
	var b strings.Builder
	for _, name := range names {
		sum, err := fileSHA256(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s  %s\n", sum, name)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("conform: %w", err)
	}
	return nil
}

// CheckManifest verifies that every .trace file in dir matches its
// manifest entry, and that the manifest lists exactly the files present
// — a trace added without a checksum is as much an error as a mismatch.
func CheckManifest(dir string) error {
	names, err := traceNames(dir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return fmt.Errorf("conform: %w", err)
	}
	listed := make(map[string]string)
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		sum, name, ok := strings.Cut(line, "  ")
		if !ok || len(sum) != 64 {
			return fmt.Errorf("conform: %s line %d: want \"<sha256>  <file>\", got %q", ManifestName, i+1, line)
		}
		listed[name] = sum
	}
	for _, name := range names {
		want, ok := listed[name]
		if !ok {
			return fmt.Errorf("conform: %s is not listed in %s (re-run cmd/conform -record -update)", name, ManifestName)
		}
		got, err := fileSHA256(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("conform: %s does not match its manifest checksum (corpus edited without -update?)", name)
		}
		delete(listed, name)
	}
	for name := range listed {
		return fmt.Errorf("conform: %s lists %s, which does not exist", ManifestName, name)
	}
	return nil
}

func traceNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trace") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func fileSHA256(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("conform: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
