package vm

import (
	"testing"
	"testing/quick"

	"github.com/tempest-sim/tempest/internal/mem"
)

func TestSharedAllocLayout(t *testing.T) {
	s := NewSystem(4)
	a := s.AllocShared("a", 3*mem.PageSize, RoundRobin{}, ModeUser)
	b := s.AllocShared("b", 100, RoundRobin{}, ModeUser)
	if a.Base != SharedBase {
		t.Fatalf("first segment base = %#x", a.Base)
	}
	if b.Base != SharedBase+3*mem.PageSize {
		t.Fatalf("second segment base = %#x, want page-aligned after first", b.Base)
	}
	if a.Pages() != 3 || b.Pages() != 1 {
		t.Fatalf("pages = %d, %d", a.Pages(), b.Pages())
	}
	if !IsShared(a.Base) || IsShared(PrivateBase) {
		t.Fatal("IsShared misclassifies")
	}
}

func TestSegmentAtBounds(t *testing.T) {
	s := NewSystem(2)
	seg := s.AllocShared("x", 64, RoundRobin{}, ModeUser)
	if seg.At(0) != seg.Base || seg.At(63) != seg.Base+63 {
		t.Fatal("At arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At past end must panic")
		}
	}()
	seg.At(64)
}

func TestRoundRobinHomes(t *testing.T) {
	s := NewSystem(4)
	seg := s.AllocShared("rr", 8*mem.PageSize, RoundRobin{}, ModeUser)
	for i := 0; i < 8; i++ {
		home := s.Home(seg.At(uint64(i * mem.PageSize)))
		if home != i%4 {
			t.Fatalf("page %d home = %d, want %d", i, home, i%4)
		}
	}
}

func TestBlockedHomes(t *testing.T) {
	s := NewSystem(4)
	seg := s.AllocShared("blk", 8*mem.PageSize, Blocked{}, ModeUser)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i := 0; i < 8; i++ {
		if home := s.Home(seg.At(uint64(i * mem.PageSize))); home != want[i] {
			t.Fatalf("page %d home = %d, want %d", i, home, want[i])
		}
	}
}

func TestBlockedHomesUneven(t *testing.T) {
	s := NewSystem(3)
	seg := s.AllocShared("blk", 7*mem.PageSize, Blocked{}, ModeUser)
	for i := 0; i < 7; i++ {
		home := s.Home(seg.At(uint64(i * mem.PageSize)))
		if home < 0 || home >= 3 {
			t.Fatalf("page %d home = %d out of range", i, home)
		}
	}
	// Last page must land on the last node, not past it.
	if home := s.Home(seg.At(6 * mem.PageSize)); home != 2 {
		t.Fatalf("last page home = %d, want 2", home)
	}
}

func TestOnNodeHomes(t *testing.T) {
	s := NewSystem(4)
	seg := s.AllocShared("on2", 3*mem.PageSize, OnNode{Node: 2}, ModeUser)
	for i := 0; i < 3; i++ {
		if home := s.Home(seg.At(uint64(i * mem.PageSize))); home != 2 {
			t.Fatalf("page %d home = %d, want 2", i, home)
		}
	}
}

func TestFirstTouchClaim(t *testing.T) {
	s := NewSystem(4)
	seg := s.AllocShared("ft", 2*mem.PageSize, FirstTouch{}, ModeUser)
	va := seg.At(0)
	if s.Home(va) != -1 {
		t.Fatal("first-touch page should be unclaimed")
	}
	if got := s.ClaimHome(va, 3); got != 3 {
		t.Fatalf("claim = %d, want 3", got)
	}
	if got := s.ClaimHome(va, 1); got != 3 {
		t.Fatalf("second claim = %d, want original 3", got)
	}
	if s.Home(va) != 3 {
		t.Fatal("home not recorded")
	}
	// Other page still unclaimed.
	if s.Home(seg.At(mem.PageSize)) != -1 {
		t.Fatal("claim leaked to sibling page")
	}
}

func TestHomeOfUnallocatedPanics(t *testing.T) {
	s := NewSystem(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Home(SharedBase + 0x100000)
}

func TestPageTableMapUnmap(t *testing.T) {
	pt := NewPageTable(0)
	pte := PTE{PA: mem.MakePA(0, 0x3000), Writable: true, Mode: 5}
	pt.Map(7, pte)
	got, ok := pt.Lookup(7)
	if !ok || got != pte {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	old, ok := pt.Unmap(7)
	if !ok || old != pte {
		t.Fatal("Unmap did not return old entry")
	}
	if _, ok := pt.Lookup(7); ok {
		t.Fatal("entry survived unmap")
	}
	if _, ok := pt.Unmap(7); ok {
		t.Fatal("double unmap reported success")
	}
}

func TestTranslate(t *testing.T) {
	s := NewSystem(2)
	m := mem.New(0, mem.Config{})
	base, err := s.AllocPrivate(0, 2*mem.PageSize, m)
	if err != nil {
		t.Fatal(err)
	}
	pa, pte, ok := s.Translate(0, base+100)
	if !ok {
		t.Fatal("private page not mapped")
	}
	if pte.Mode != ModePrivate || !pte.Writable {
		t.Fatalf("pte = %+v", pte)
	}
	if pa.PageOffset() != 100 {
		t.Fatalf("pa offset = %d, want 100", pa.PageOffset())
	}
	if _, _, ok := s.Translate(1, base+100); ok {
		t.Fatal("node 1 must not see node 0's private mapping")
	}
	if _, _, ok := s.Translate(0, SharedBase); ok {
		t.Fatal("unmapped shared page must not translate")
	}
}

func TestPrivateAllocsDisjoint(t *testing.T) {
	s := NewSystem(2)
	m := mem.New(0, mem.Config{})
	a, _ := s.AllocPrivate(0, mem.PageSize, m)
	b, _ := s.AllocPrivate(0, 10, m)
	if b < a+mem.PageSize {
		t.Fatalf("allocations overlap: %#x then %#x", a, b)
	}
	m.WriteU64(mustPA(t, s, 0, a), 1)
	m.WriteU64(mustPA(t, s, 0, b), 2)
	if m.ReadU64(mustPA(t, s, 0, a)) != 1 {
		t.Fatal("write to b clobbered a")
	}
}

func TestPrivateAllocOutOfFrames(t *testing.T) {
	s := NewSystem(1)
	m := mem.New(0, mem.Config{MaxFrames: 1})
	if _, err := s.AllocPrivate(0, 2*mem.PageSize, m); err == nil {
		t.Fatal("expected out-of-frames error")
	}
}

func mustPA(t *testing.T, s *System, node int, va mem.VA) mem.PA {
	t.Helper()
	pa, _, ok := s.Translate(node, va)
	if !ok {
		t.Fatalf("translate %#x failed", va)
	}
	return pa
}

// Property: every page of every segment gets a home in [0, nodes) (or -1
// for first-touch), and segments never overlap.
func TestAllocationProperty(t *testing.T) {
	f := func(sizes []uint16, nodesRaw uint8) bool {
		nodes := int(nodesRaw)%8 + 1
		s := NewSystem(nodes)
		var prevEnd mem.VA
		for i, sz := range sizes {
			if len(sizes) > 20 {
				sizes = sizes[:20]
			}
			size := uint64(sz) + 1
			var place Placement
			switch i % 4 {
			case 0:
				place = RoundRobin{}
			case 1:
				place = Blocked{}
			case 2:
				place = OnNode{Node: i % nodes}
			default:
				place = FirstTouch{}
			}
			seg := s.AllocShared("s", size, place, ModeUser)
			if seg.Base < SharedBase || (prevEnd != 0 && seg.Base < prevEnd) {
				return false
			}
			prevEnd = seg.Base + mem.VA(seg.Pages()*mem.PageSize)
			for p := 0; p < seg.Pages(); p++ {
				h := s.Home(seg.At(uint64(p * mem.PageSize)))
				if _, ft := place.(FirstTouch); ft {
					if h != -1 {
						return false
					}
				} else if h < 0 || h >= nodes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
