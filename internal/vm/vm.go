// Package vm models the user-level virtual-memory management mechanisms
// of the Tempest interface (paper §2.3): a flat paged address space per
// node with a user-reserved shared heap segment, explicit page
// map/unmap/remap, page modes that select user-level fault handlers, and
// the distributed table mapping shared virtual pages to their home nodes.
// The package provides mechanism only; replication and coherence policy
// live in the protocol libraries (internal/stache, internal/dirnnb,
// application-specific protocols).
package vm

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/mem"
)

// Address-space layout. Each node has private text/stack/heap segments
// (we model only the private heap; the paper ignores text and stack) and
// all nodes share one large user-reserved shared heap segment.
const (
	// PrivateBase is the base of each node's private heap.
	PrivateBase mem.VA = 0x0000_1000_0000
	// SharedBase is the base of the user-reserved shared segment.
	SharedBase mem.VA = 0x4000_0000_0000
)

// IsShared reports whether va falls in the shared segment.
func IsShared(va mem.VA) bool { return va >= SharedBase }

// Page modes. Mode selects the set of user-level handlers that serve a
// page's faults (the RTLB's page-mode field, paper §5.4). Values at or
// above ModeUser are free for protocol libraries; Stache and custom
// protocols register their own.
const (
	// ModePrivate pages are node-local with no coherence semantics.
	ModePrivate = 0
	// ModeUser is the first mode value available to protocol software.
	ModeUser = 1
)

// PTE is one page-table entry.
type PTE struct {
	PA mem.PA
	// Writable is the page-level protection bit (coarse-grain access
	// control, §2.3). Fine-grain control is per-block via tags.
	Writable bool
	// Mode selects the page's fault handlers.
	Mode int
}

// PageTable is one node's virtual-to-physical mapping.
type PageTable struct {
	node    int
	entries map[uint64]PTE
	gen     uint64 // bumped on every Map/Unmap; validates cached translations
}

// NewPageTable returns an empty table for node.
func NewPageTable(node int) *PageTable {
	return &PageTable{node: node, entries: make(map[uint64]PTE)}
}

// Lookup returns the PTE for a virtual page number.
func (pt *PageTable) Lookup(vpn uint64) (PTE, bool) {
	e, ok := pt.entries[vpn]
	return e, ok
}

// Map installs (or replaces) a translation. Protocol code remaps stache
// pages with it (paper §3: "these pages can be remapped or unmapped and
// freed").
func (pt *PageTable) Map(vpn uint64, e PTE) {
	pt.gen++
	pt.entries[vpn] = e
}

// Unmap removes a translation, returning the old entry.
func (pt *PageTable) Unmap(vpn uint64) (PTE, bool) {
	e, ok := pt.entries[vpn]
	if ok {
		pt.gen++
		delete(pt.entries, vpn)
	}
	return e, ok
}

// Gen returns the table's generation, which advances on every Map and
// Unmap. A caller that caches a Lookup result may keep using it while
// the generation is unchanged — the basis of the processors' one-entry
// translation caches.
func (pt *PageTable) Gen() uint64 { return pt.gen }

// Mapped returns the number of live translations.
func (pt *PageTable) Mapped() int { return len(pt.entries) }

// Placement assigns shared pages to home nodes.
type Placement interface {
	// HomeFor returns the home node for the pageIdx'th page of a
	// segment, or -1 to defer the decision to first touch.
	HomeFor(pageIdx, nodes int) int
	String() string
}

// RoundRobin distributes pages cyclically — IVY's fixed distributed
// manager algorithm, Stache's default (paper §7).
type RoundRobin struct{}

// HomeFor implements Placement.
func (RoundRobin) HomeFor(pageIdx, nodes int) int { return pageIdx % nodes }
func (RoundRobin) String() string                 { return "round-robin" }

// Blocked gives each node one contiguous run of pages (owner-computes
// layouts want this).
type Blocked struct{}

// HomeFor implements Placement.
func (Blocked) HomeFor(pageIdx, nodes int) int { return -2 } // resolved by segment size
func (Blocked) String() string                 { return "blocked" }

// OnNode places every page of the segment on one node.
type OnNode struct{ Node int }

// HomeFor implements Placement.
func (p OnNode) HomeFor(pageIdx, nodes int) int { return p.Node }
func (p OnNode) String() string                 { return fmt.Sprintf("on-node-%d", p.Node) }

// FirstTouch defers home assignment to the first access (the DirNNB
// improvement discussed in paper §6, used in the placement ablation).
type FirstTouch struct{}

// HomeFor implements Placement.
func (FirstTouch) HomeFor(pageIdx, nodes int) int { return -1 }
func (FirstTouch) String() string                 { return "first-touch" }

// Segment is one allocation in the shared segment.
type Segment struct {
	Name  string
	Base  mem.VA
	Size  uint64
	Mode  int
	Place Placement
}

// At returns the virtual address at byte offset off.
func (s *Segment) At(off uint64) mem.VA {
	if off >= s.Size {
		panic(fmt.Sprintf("vm: offset %d out of segment %q (size %d)", off, s.Name, s.Size))
	}
	return s.Base + mem.VA(off)
}

// End returns the first address past the segment.
func (s *Segment) End() mem.VA { return s.Base + mem.VA(s.Size) }

// Pages returns the number of pages the segment spans.
func (s *Segment) Pages() int {
	return int((uint64(s.Base.PageOffset()) + s.Size + mem.PageSize - 1) / mem.PageSize)
}

// System is the machine-wide address-space state: per-node page tables,
// the segment list, and the distributed home-mapping table.
type System struct {
	nodes    int
	tables   []*PageTable
	nextVA   mem.VA
	nextPriv []mem.VA
	segs     []*Segment
	homes    map[uint64]int // shared VPN -> home node (-1 = first touch pending)
}

// NewSystem returns an address-space manager for n nodes.
func NewSystem(n int) *System {
	s := &System{
		nodes:  n,
		nextVA: SharedBase,
		homes:  make(map[uint64]int),
	}
	for i := 0; i < n; i++ {
		s.tables = append(s.tables, NewPageTable(i))
		s.nextPriv = append(s.nextPriv, PrivateBase)
	}
	return s
}

// Nodes returns the node count.
func (s *System) Nodes() int { return s.nodes }

// Table returns node's page table.
func (s *System) Table(node int) *PageTable { return s.tables[node] }

// Segments returns the allocated shared segments.
func (s *System) Segments() []*Segment { return s.segs }

// AllocShared reserves a page-aligned range of the shared segment and
// records each page's home node in the distributed mapping table. It does
// not allocate frames: what a mapping means is protocol policy.
func (s *System) AllocShared(name string, size uint64, place Placement, mode int) *Segment {
	if size == 0 {
		panic("vm: zero-size shared allocation")
	}
	if place == nil {
		place = RoundRobin{}
	}
	base := s.nextVA
	pages := int((size + mem.PageSize - 1) / mem.PageSize)
	s.nextVA += mem.VA(pages * mem.PageSize)
	seg := &Segment{Name: name, Base: base, Size: size, Mode: mode, Place: place}
	s.segs = append(s.segs, seg)
	for i := 0; i < pages; i++ {
		vpn := (base + mem.VA(i*mem.PageSize)).VPN()
		home := place.HomeFor(i, s.nodes)
		if _, blocked := place.(Blocked); blocked {
			// Contiguous runs of ceil(pages/nodes) pages per node.
			per := (pages + s.nodes - 1) / s.nodes
			home = i / per
			if home >= s.nodes {
				home = s.nodes - 1
			}
		}
		s.homes[vpn] = home
	}
	return seg
}

// Home returns the home node of a shared page, or -1 if the page is
// first-touch and unclaimed. It panics for addresses outside the shared
// segment.
func (s *System) Home(va mem.VA) int {
	home, ok := s.homes[va.VPN()]
	if !ok {
		panic(fmt.Sprintf("vm: %#x is not an allocated shared address", va))
	}
	return home
}

// ClaimHome resolves a first-touch page to the given node. It returns the
// now-current home (an earlier claimant wins races).
func (s *System) ClaimHome(va mem.VA, node int) int {
	vpn := va.VPN()
	home, ok := s.homes[vpn]
	if !ok {
		panic(fmt.Sprintf("vm: %#x is not an allocated shared address", va))
	}
	if home == -1 {
		s.homes[vpn] = node
		return node
	}
	return home
}

// AllocPrivate reserves size bytes of node-private address space and maps
// frames for it from the node's memory, tagged ReadWrite with
// ModePrivate. Private pages have no coherence semantics.
func (s *System) AllocPrivate(node int, size uint64, m *mem.Memory) (mem.VA, error) {
	if size == 0 {
		panic("vm: zero-size private allocation")
	}
	base := s.nextPriv[node]
	pages := int((size + mem.PageSize - 1) / mem.PageSize)
	s.nextPriv[node] += mem.VA(pages * mem.PageSize)
	for i := 0; i < pages; i++ {
		pa, err := m.AllocFrame(mem.TagReadWrite)
		if err != nil {
			return 0, fmt.Errorf("vm: private alloc on node %d: %w", node, err)
		}
		s.tables[node].Map(base.VPN()+uint64(i), PTE{PA: pa, Writable: true, Mode: ModePrivate})
	}
	return base, nil
}

// Translate resolves va on node, returning the physical address and PTE.
// ok is false when the page is unmapped (a page fault in Typhoon).
func (s *System) Translate(node int, va mem.VA) (mem.PA, PTE, bool) {
	pte, ok := s.tables[node].Lookup(va.VPN())
	if !ok {
		return 0, PTE{}, false
	}
	return pte.PA.FrameBase() + mem.PA(va.PageOffset()), pte, true
}

// MapPage installs a writable translation for va's page with the given
// mode — the common protocol-handler idiom.
func (pt *PageTable) MapPage(va mem.VA, pa mem.PA, mode int) {
	pt.Map(va.VPN(), PTE{PA: pa.FrameBase(), Writable: true, Mode: mode})
}
