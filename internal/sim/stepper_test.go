package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestStepperDispatchesInline asserts the fast path: a stepper whose
// steps never suspend runs entirely on the scheduler goroutine — every
// step inline, every idle park taken without a goroutine switch, and no
// standby-goroutine fallbacks at all.
func TestStepperDispatchesInline(t *testing.T) {
	e := NewEngine()
	steps := 0
	s := e.SpawnStepperDaemon("s", func(c *Context) bool {
		steps++
		c.Advance(1)
		return false
	}, "idle")
	e.Spawn("driver", func(c *Context) {
		for i := 0; i < 10; i++ {
			s.Unpark(c.Time())
			c.Advance(5)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ds := e.DispatchStats()
	if steps == 0 {
		t.Fatal("stepper never stepped")
	}
	if ds.InlineSteps != uint64(steps) || ds.GoroutineSteps != 0 {
		t.Errorf("steps inline/goroutine = %d/%d, want %d/0", ds.InlineSteps, ds.GoroutineSteps, steps)
	}
	if ds.StepperFallbacks != 0 {
		t.Errorf("stepper fallbacks = %d, want 0", ds.StepperFallbacks)
	}
	if ds.ParksAvoided == 0 {
		t.Error("no parks avoided; idle boundaries went through goroutines")
	}
}

// TestMidStepSuspensionHandsOffScheduler asserts the hand-off: when an
// inline-hosted step is forced to suspend mid-flight (quantum yield),
// the scheduler role moves to a spare goroutine and OTHER steppers keep
// dispatching inline during the suspension — no step ever runs on a
// standby goroutine, and each suspension costs exactly one channel
// resumption of the suspended step.
func TestMidStepSuspensionHandsOffScheduler(t *testing.T) {
	e := NewEngine()
	aSteps, bSteps := 0, 0
	a := e.SpawnStepperDaemon("a", func(c *Context) bool {
		aSteps++
		c.Advance(100) // cross the quantum: the forced yield goes lazy
		c.Advance(1)   // interaction point: materialise it mid-step
		return false
	}, "a idle")
	b := e.SpawnStepperDaemon("b", func(c *Context) bool {
		bSteps++
		c.Advance(1)
		return false
	}, "b idle")
	e.Spawn("driver", func(c *Context) {
		for i := 0; i < 5; i++ {
			a.Unpark(c.Time())
			// While a's suspended frames pin its host goroutine, b's
			// activations must still be dispatched inline by the spare.
			for j := 0; j < 4; j++ {
				b.Unpark(c.Time())
				c.Advance(10)
			}
			c.Advance(200)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ds := e.DispatchStats()
	if aSteps == 0 || bSteps == 0 {
		t.Fatalf("steps a=%d b=%d; scenario exercised nothing", aSteps, bSteps)
	}
	if ds.InlineSuspends == 0 {
		t.Fatal("no mid-step suspensions; the quantum yield never materialised")
	}
	if ds.GoroutineSteps != 0 {
		t.Errorf("goroutine steps = %d, want 0: steps began on a non-scheduler host", ds.GoroutineSteps)
	}
	if ds.InlineSteps != uint64(aSteps+bSteps) {
		t.Errorf("inline steps = %d, want %d", ds.InlineSteps, aSteps+bSteps)
	}
	if ds.StepperFallbacks != ds.InlineSuspends {
		t.Errorf("fallbacks = %d, suspends = %d; each suspension should cost exactly one channel resumption",
			ds.StepperFallbacks, ds.InlineSuspends)
	}
}

// TestQuiescenceWithMidStepParkedDaemon exercises the root-pinned
// unwind: a daemon stepper parks mid-step and is never unparked, so the
// run ends while its suspended frames pin a host goroutine. Run must
// still return cleanly (daemons do not block completion).
func TestQuiescenceWithMidStepParkedDaemon(t *testing.T) {
	e := NewEngine()
	s := e.SpawnStepperDaemon("s", func(c *Context) bool {
		c.Park("stuck mid-step")
		return false
	}, "idle")
	e.Spawn("app", func(c *Context) { c.Advance(1) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.State() != StateParked {
		t.Errorf("daemon state = %v, want parked", s.State())
	}
}

// TestAbortWhileStepperSuspended exercises the abort unwind: a context
// panics while a stepper is suspended mid-step, so the acting scheduler
// observes the abort and the pinned host frames must be abandoned
// without deadlocking Run.
func TestAbortWhileStepperSuspended(t *testing.T) {
	e := NewEngine()
	e.SpawnStepperDaemon("s", func(c *Context) bool {
		c.Advance(100)
		c.Advance(1) // suspends mid-step at t=101
		return false
	}, "idle")
	e.Spawn("bomb", func(c *Context) {
		c.Advance(70) // quantum yield: reschedule at t=70, before s resumes
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run = %v, want the bomb's panic", err)
	}
}

// TestStepperHostChoiceInvariance runs an interleaving-sensitive
// scenario under both stepper hosts — inline dispatch and forced
// goroutine dispatch — and asserts the observed (context, time) step
// sequence is identical: which goroutine hosts a step can never affect
// simulated results.
func TestStepperHostChoiceInvariance(t *testing.T) {
	trace := func(opts ...Option) string {
		e := NewEngine(opts...)
		var sb strings.Builder
		mk := func(name string, work Time) {
			s := e.SpawnStepperDaemon(name, func(c *Context) bool {
				fmt.Fprintf(&sb, "%s@%d ", name, c.Time())
				c.Advance(work)
				c.Advance(1)
				return false
			}, name+" idle")
			e.Spawn("drv-"+name, func(c *Context) {
				for i := 0; i < 8; i++ {
					s.Unpark(c.Time())
					c.Advance(13 + work)
				}
			})
		}
		mk("fast", 2)
		mk("slow", 90) // suspends mid-step every activation
		mk("med", 40)
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	inline := trace()
	forced := trace(WithGoroutineDispatch())
	if inline != forced {
		t.Errorf("step sequences diverge:\n inline: %s\n forced: %s", inline, forced)
	}
	if inline == "" {
		t.Fatal("empty trace; scenario exercised nothing")
	}
}
