package sim

import "testing"

// TestAllocFreeEventScheduling asserts the engine's core scheduling
// cycle — AtEvent push, heap pop, Fire — allocates nothing once the heap
// slice has reached its high-water capacity. This is the property the
// 4-ary index heaps exist for: container/heap's interface{} Push boxed
// an allocation onto every scheduled event.
func TestAllocFreeEventScheduling(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := funcEvent(func() { fired++ }) // one closure, hoisted out of the measured loop

	// Warm the heap past any plausible steady-state depth.
	for i := 0; i < 1024; i++ {
		e.AtEvent(Time(i), ev)
	}
	for e.sh[0].events.len() > 0 {
		e.sh[0].events.pop()
	}

	allocs := testing.AllocsPerRun(200, func() {
		e.AtEvent(e.sh[0].now+100, ev)
		it := e.sh[0].events.pop()
		it.ev.Fire()
	})
	if allocs != 0 {
		t.Errorf("event schedule/dispatch cycle allocates %.1f times per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("measured events never fired")
	}
}

// TestAllocFreeContextScheduling asserts that making a context runnable
// and popping it back off the run queue allocates nothing.
func TestAllocFreeContextScheduling(t *testing.T) {
	e := NewEngine()
	// Contexts are heap nodes only; never dispatch them, just exercise
	// the runnable heap with enough of them to reach steady capacity.
	ctxs := make([]*Context, 128)
	for i := range ctxs {
		ctxs[i] = &Context{eng: e, id: i, time: Time(i)}
	}
	push := func() {
		for _, c := range ctxs {
			e.sh[0].runnable.push(c)
		}
		for e.sh[0].runnable.len() > 0 {
			e.sh[0].runnable.pop()
		}
	}
	push() // reach high-water capacity
	if allocs := testing.AllocsPerRun(50, push); allocs != 0 {
		t.Errorf("runnable push/pop cycle allocates %.1f times per run, want 0", allocs)
	}
}
