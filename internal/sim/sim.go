// Package sim provides a deterministic, cooperative discrete-event engine.
//
// The engine plays the role the Wisconsin Wind Tunnel plays in the paper:
// it hosts one context per simulated instruction stream (a compute
// processor's thread, a network-interface processor's dispatch loop) and
// interleaves them in global cycle order. Exactly one context runs at a
// time per shard (cooperative "conch" scheduling), so simulated state
// needs no locking and every run of the same configuration is
// bit-identical.
//
// Contexts account for their own local time with Advance and interact with
// the rest of the machine only at explicit points: Yield, Park/Unpark, and
// timed events. Between interaction points a context may run ahead of the
// global clock by at most the engine's quantum, mirroring the
// direct-execution style of execution-driven simulators.
//
// Contexts come in two kinds. A goroutine context (Spawn, SpawnDaemon)
// hosts an arbitrary body on its own goroutine and trades the conch over
// a single-slot channel pair. A stepper context (SpawnStepper,
// SpawnStepperDaemon) is a run-to-completion dispatch loop — the WWT
// lineage's "protocol handlers are events, not threads" — that the
// scheduler invokes inline on its own goroutine with no channel handoff
// at all. When an inline-hosted step must suspend mid-flight (a
// materialised quantum yield, or a blocking wait), the goroutine running
// the scheduler stays behind as the suspended step's host and hands the
// scheduler role to a spare goroutine, so the scheduler stack is never
// pinned and every other stepper keeps dispatching inline; only the
// resumption of such a suspended step pays a channel handoff. Both hosts
// drive the identical state machine (same runnable pushes, same
// park/unpark transitions, same clock updates), so which goroutine hosts
// a step cannot affect simulated results.
//
// # Sharded execution
//
// With WithShards the engine partitions its origins (simulated nodes)
// across shards, each with its own clock, runnable heap, and event heap,
// and runs them concurrently in conservative time windows: a central
// coordinator grants every shard the window [M, M+W), where M is the
// earliest pending item machine-wide and W is the configured lookahead
// (the minimum cross-shard interaction latency — for the paper's machine,
// the 11-cycle network and barrier latencies). Within a window a shard's
// nodes cannot be affected by another shard — every cross-shard
// interaction is a timed event at least W cycles in the future — so the
// shards execute independently; at the boundary the coordinator merges
// cross-shard events (the per-shard outboxes) and barrier arrivals, picks
// the next window, and repeats.
//
// Determinism survives sharding because every ordering the simulation can
// observe is a strict total order independent of the partitioning: events
// carry the stable key (time, origin, per-origin sequence), whose
// components depend only on the originating node's own history, and
// runnable contexts order by (time, prio, id). Merging a window's
// cross-shard events is therefore plain heap insertion — the key already
// fixes the fire order — and a run's results are bit-identical for every
// shard count, which the harness equivalence tests and the digest gate
// assert.
//
// Scheduling is allocation-free on the steady-state path: runnable
// contexts and pending events live in index-based 4-ary min-heaps over
// slices that are reused across pushes, and events are stored as Event
// interface values (pointer-shaped, so scheduling a *T or a func boxes
// nothing). Because both heap orderings are strict total orders, any
// min-heap pops them in exactly sorted order, so the heap's arity and
// internal layout cannot affect simulated results.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Time is a simulated clock value in processor cycles.
type Time uint64

// infTime is the unreachable "no bound" time: the serial window limit and
// the empty-heap sentinel.
const infTime = Time(^uint64(0))

// State describes a context's scheduling state.
type State uint8

// Context scheduling states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateParked
	StateDone
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	}
	return "invalid"
}

// DefaultQuantum bounds how far a context may run ahead of its last yield
// before it is forced back through the scheduler. It is a few network
// latencies (Table 2: 11 cycles) so a compute processor cannot starve
// its node's NP of overlap opportunities (prefetch, bulk transfer)
// for long; a larger quantum would trade that fidelity for fewer context
// switches, the same trade execution-driven simulators make.
const DefaultQuantum Time = 64

// shutdownSignal is panicked through a context goroutine when the engine
// tears down daemons after Run completes.
type shutdownSignal struct{}

// schedUnwind is panicked through suspended stepper frames pinning the
// root goroutine when a serial run ends first (abort, or quiescence while
// the step is parked mid-flight): the acting scheduler's final root grant
// arrives at the pinned frames instead of at Run's re-acquire loop, and
// they unwind to Run, which reports the outcome. Run recovers it. Sharded
// runs have no root scheduler — every shard scheduler is pool-style — so
// pinned hosts there unwind via shutdownSignal at teardown instead.
type schedUnwind struct{}

// Step is a stepper context's body: one run-to-completion dispatch. It
// returns false when no work is pending, which suspends the context in
// the parked state (its idle reason) until the next Unpark; returning
// true immediately runs the next step with no scheduling point between
// steps.
type Step func(*Context) bool

// Context is a simulated instruction stream scheduled by an Engine.
type Context struct {
	eng  *Engine
	sh   *shard
	id   int
	name string

	time      Time
	lastYield Time
	state     State
	daemon    bool
	prio      uint8 // tie-break class: compute contexts (0) run before daemons (1)

	parkReason    string
	pendingUnpark bool
	pendingAt     Time

	resumeCh chan struct{}
	body     func(*Context)

	// Stepper state. step is non-nil for stepper contexts; idleReason is
	// the park reason reported while the stepper has no work. needG marks
	// a stepper whose current step is suspended mid-flight on a host
	// goroutine (it must be resumed there, over the channel protocol);
	// gStarted says the standby goroutine exists. noBlock counts active
	// MustNotBlock sections: Park panics while it is positive, asserting
	// run-to-completion handlers.
	step       Step
	idleReason string
	needG      bool
	gStarted   bool
	// rootHosted marks a suspended step whose host goroutine is the root
	// (the activation was dispatched inline by the root acting as
	// scheduler, then suspended). Such a step must wait with an ear on
	// rootWake: if the run ends while its frames pin the root stack, the
	// final role grant arrives there and unwinds them so Run can finish.
	rootHosted bool
	noBlock    int
	// lazyYield records a LazyYield request: the reschedule happens at
	// the context's next timing operation, or free of any frame
	// suspension at the current step's boundary. lazyQuantum records a
	// deferred quantum force-yield: it materialises only at the step
	// boundary, because a handler is atomic on the real hardware
	// (paper §4.2) and deferring the reschedule to the boundary keeps
	// the handler's shared-state effects on one side of the window.
	lazyYield   bool
	lazyQuantum bool
}

// ID returns the context's creation-order identifier.
func (c *Context) ID() int { return c.id }

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Time returns the context's local clock.
func (c *Context) Time() Time { return c.time }

// State returns the context's scheduling state.
func (c *Context) State() State { return c.state }

// Engine returns the engine that owns this context.
func (c *Context) Engine() *Engine { return c.eng }

// Event is a scheduled occurrence. Fire runs on the scheduler with the
// conch held (no context is running) and must not block. Implementing
// Fire on a pointer type lets callers schedule it with AtEvent/AfterEvent
// without allocating: pointer-shaped values box into the interface for
// free.
type Event interface{ Fire() }

// funcEvent adapts a plain callback to Event. Func values are
// pointer-shaped, so this conversion does not allocate either.
type funcEvent func()

func (f funcEvent) Fire() { f() }

// DispatchStats counts how the engine moved control between contexts.
// Inline dispatches and avoided parks are the stepper win: activations
// that cost a function call instead of a goroutine switch.
type DispatchStats struct {
	// InlineDispatches counts stepper activations executed inline on the
	// scheduler goroutine (zero channel handoffs).
	InlineDispatches uint64
	// GoroutineSwitches counts channel dispatches: every goroutine
	// context activation plus stepper fallbacks.
	GoroutineSwitches uint64
	// StepperFallbacks counts stepper dispatches that went over the
	// channel protocol: resumptions of a step suspended mid-flight on a
	// host goroutine, plus every dispatch under WithGoroutineDispatch.
	StepperFallbacks uint64
	// ParksAvoided counts idle parks taken inline: the stepper went idle
	// and suspended without a goroutine parking, and its next activation
	// needs no goroutine wakeup either.
	ParksAvoided uint64
	// InlineSteps counts handler steps executed inline (several steps can
	// run back-to-back within one inline dispatch).
	InlineSteps uint64
	// GoroutineSteps counts handler steps executed on a host goroutine
	// after a mid-step suspension (or under WithGoroutineDispatch).
	// InlineSteps+GoroutineSteps is the total number of protocol
	// dispatches (paper §5.1: one step = one message, fault, or bulk
	// chunk dispatched by the NP loop).
	GoroutineSteps uint64
	// InlineSuspends counts inline steps that suspended mid-step (a
	// materialised quantum yield or a blocking wait): each hands the
	// scheduler role to a spare goroutine so other steppers keep
	// dispatching inline.
	InlineSuspends uint64
}

func (d *DispatchStats) add(o DispatchStats) {
	d.InlineDispatches += o.InlineDispatches
	d.GoroutineSwitches += o.GoroutineSwitches
	d.StepperFallbacks += o.StepperFallbacks
	d.ParksAvoided += o.ParksAvoided
	d.InlineSteps += o.InlineSteps
	d.GoroutineSteps += o.GoroutineSteps
	d.InlineSuspends += o.InlineSuspends
}

// fleet aggregates dispatch stats across every engine in the process
// (atomically, so parallel harness workers may fold concurrently);
// cmd/bench reports it after a sweep.
var fleet struct {
	inline, switches, fallbacks, parks, steps, gsteps, suspends atomic.Uint64
}

// FleetDispatchStats returns the process-wide dispatch totals across all
// engines that have finished Run.
func FleetDispatchStats() DispatchStats {
	return DispatchStats{
		InlineDispatches:  fleet.inline.Load(),
		GoroutineSwitches: fleet.switches.Load(),
		StepperFallbacks:  fleet.fallbacks.Load(),
		ParksAvoided:      fleet.parks.Load(),
		InlineSteps:       fleet.steps.Load(),
		GoroutineSteps:    fleet.gsteps.Load(),
		InlineSuspends:    fleet.suspends.Load(),
	}
}

// outItem is a cross-shard event staged in the producing shard's outbox
// until the coordinator merges it into the destination shard's heap at
// the window boundary.
type outItem struct {
	sh int32 // destination shard
	it evItem
}

// shard is one partition of the simulated machine: a group of origins
// (nodes) with their own clock, heaps, and conch. A serial engine is one
// shard; a sharded engine runs every shard's window concurrently on its
// own scheduler goroutine. All shard fields are owned by whichever
// goroutine holds the shard's conch during a window and by the
// coordinator between windows (the grant/done channel pair orders the
// two).
type shard struct {
	eng *Engine
	id  int

	now      Time
	runnable ctxHeap
	events   evHeap

	running *Context
	// inline is the stepper whose activation is currently executing on
	// the acting scheduler goroutine, nil when none is. It is cleared
	// the moment such an activation suspends mid-step: the goroutine
	// hands the scheduler role to a spare (Context.suspend) and stays
	// behind as the suspended step's host, so the scheduler stack is
	// never pinned and every other stepper keeps dispatching inline.
	inline *Context
	backCh chan struct{}

	// Scheduler-role hand-off state (all mutated only with the conch
	// held). schedGen increments at each hand-off; a scheduler loop that
	// observes a generation newer than its own has lost the role.
	// loopIsRoot says whether the acting scheduler is the root goroutine
	// (the one inside a serial Run); rootWake grants the role back to it.
	// spareWakes is the pool of parked spare scheduler goroutines.
	schedGen   uint64
	loopIsRoot bool
	rootWake   chan struct{}
	spareWakes []chan struct{}

	dstats DispatchStats
	abort  error // first panic captured from a context on this shard

	// Windowed-execution state. limit is the current window's end (items
	// at or past it wait for a later window; infTime in serial mode).
	// outbox stages events destined for other shards. grantCh/doneCh are
	// the coordinator handshake; granted is coordinator-local bookkeeping
	// for window grants.
	limit   Time
	outbox  []outItem
	grantCh chan Time
	doneCh  chan struct{}
	granted bool
}

// clock returns the shard's current time: the running context's local
// clock, or the shard clock when an event (or nothing) is executing.
func (s *shard) clock() Time {
	if s.running != nil {
		return s.running.time
	}
	return s.now
}

// syncRunning materialises the running context's pending LazyYield, for
// engine entry points that are invoked on a different receiver than the
// caller (Unpark on a target context, AtEvent on the engine).
func (s *shard) syncRunning() {
	if r := s.running; r != nil {
		r.Sync()
	}
}

// nextTime returns the earliest pending item on the shard: the head of
// the runnable heap or the event heap, whichever is due first.
func (s *shard) nextTime() Time {
	t := infTime
	if s.runnable.len() > 0 {
		t = s.runnable.a[0].time
	}
	if s.events.len() > 0 && s.events.a[0].t < t {
		t = s.events.a[0].t
	}
	return t
}

// Engine schedules contexts and timed events in global cycle order.
type Engine struct {
	quantum  Time
	window   Time // cross-shard lookahead; windows are [M, M+window)
	origins  int  // number of event origins (simulated nodes)
	nshards  int
	contexts []*Context
	sh       []*shard

	// Event tie-break state. Events carry a stable key (time, origin,
	// per-origin sequence): evSeqs[i] counts events scheduled by origin i
	// (a simulated node), and evSeqAnon counts origin-less events
	// (AtEvent/At/After — engine tests and other non-node callers, which
	// sort before every node origin at equal times). The key is a pure
	// function of each origin's own scheduling history, so the merged
	// fire order is independent of how origins are partitioned across
	// shards — unlike a global insertion sequence, which would encode the
	// interleaving of the whole machine. Under sharding each element is
	// written only by the shard that owns its origin.
	evSeqs    []uint64
	evSeqAnon uint64

	forceG   bool // dispatch every stepper via its goroutine (validation)
	shutdown chan struct{}
	started  bool
	finished bool

	barriers []*Barrier // sharded barriers merged at window boundaries

	dstats DispatchStats // folded across shards when Run finishes

	abort error // first shard abort, folded by shard id
}

// Option configures an Engine.
type Option func(*Engine)

// WithQuantum sets the run-ahead quantum in cycles. Zero keeps the default.
func WithQuantum(q Time) Option {
	return func(e *Engine) {
		if q > 0 {
			e.quantum = q
		}
	}
}

// WithGoroutineDispatch forces every stepper activation through its
// standby goroutine — the pre-stepper execution model. Both hosts drive
// the same state machine, so results are bit-identical either way; the
// option exists so tests can assert exactly that.
func WithGoroutineDispatch() Option {
	return func(e *Engine) { e.forceG = true }
}

// WithShards partitions origins 0..origins-1 across the given number of
// shards (contiguous ranges, ShardOf) and runs them concurrently in
// conservative time windows of the given lookahead: window must be a
// lower bound on the latency of every cross-shard interaction (for the
// paper's machine, min(network latency, barrier latency) = 11 cycles).
// One shard keeps fully serial execution and is always valid.
func WithShards(shards, origins int, window Time) Option {
	return func(e *Engine) {
		if shards < 1 {
			panic("sim: WithShards requires at least one shard")
		}
		if shards > 1 {
			if origins < shards {
				panic("sim: WithShards requires at least one origin per shard")
			}
			if window < 1 {
				panic("sim: WithShards requires a positive lookahead window")
			}
		}
		e.nshards, e.origins, e.window = shards, origins, window
	}
}

// NewEngine returns an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		quantum:  DefaultQuantum,
		nshards:  1,
		shutdown: make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	if e.origins > 0 {
		e.evSeqs = make([]uint64, e.origins)
	}
	e.sh = make([]*shard, e.nshards)
	for i := range e.sh {
		s := &shard{
			eng: e,
			id:  i,
			// Single-slot resume protocol: the conch trade is a pair of
			// capacity-1 channels, so neither side's send ever blocks (at
			// most one token is in flight in each direction) and a
			// dispatch costs one blocking receive per side instead of two
			// rendezvous.
			backCh:   make(chan struct{}, 1),
			rootWake: make(chan struct{}, 1),
			grantCh:  make(chan Time, 1),
			doneCh:   make(chan struct{}, 1),
			limit:    infTime,
		}
		s.runnable.a = make([]*Context, 0, 64)
		s.events.a = make([]evItem, 0, 256)
		e.sh[i] = s
	}
	return e
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return len(e.sh) }

// ShardOf returns the shard that owns origin (a simulated node):
// contiguous ranges, so a node's processor and network interface — and
// every origin a machine keeps node-local state for — land together.
func (e *Engine) ShardOf(origin int) int {
	if len(e.sh) == 1 {
		return 0
	}
	if origin < 0 || origin >= e.origins {
		panic(fmt.Sprintf("sim: origin %d out of range [0,%d)", origin, e.origins))
	}
	return origin * len(e.sh) / e.origins
}

// Now returns the global clock: the local time of the entity (context or
// event) that is currently executing, including any cycles the running
// context has accumulated since it was dispatched. A sharded engine has
// no single clock — use NowFor with the acting origin instead.
func (e *Engine) Now() Time {
	if len(e.sh) > 1 {
		panic("sim: Now is ambiguous under sharded execution; use NowFor(origin)")
	}
	return e.sh[0].clock()
}

// NowFor returns the clock of the shard that owns origin: the local time
// of that shard's running context or firing event. Callers must be
// executing on origin's shard (node-local code always is).
func (e *Engine) NowFor(origin int) Time {
	return e.sh[e.ShardOf(origin)].clock()
}

// Quantum returns the engine's run-ahead quantum.
func (e *Engine) Quantum() Time { return e.quantum }

// DispatchStats returns the engine's dispatch counters so far, summed
// across shards.
func (e *Engine) DispatchStats() DispatchStats {
	if e.finished {
		return e.dstats
	}
	var d DispatchStats
	for _, s := range e.sh {
		d.add(s.dstats)
	}
	return d
}

// Spawn creates a context on shard 0 that must finish before Run can
// succeed. Spawning is allowed both before Run and from inside a running
// context or event; the new context starts at the current shard time.
func (e *Engine) Spawn(name string, body func(*Context)) *Context {
	return e.SpawnOn(0, name, body)
}

// SpawnOn is Spawn for the shard that owns node: the context is the
// instruction stream of that simulated node, scheduled and clocked with
// the rest of its shard.
func (e *Engine) SpawnOn(node int, name string, body func(*Context)) *Context {
	c := e.spawn(name, false, e.sh[e.ShardOf(node)])
	c.body = body
	c.gStarted = true
	go c.run()
	return c
}

// SpawnDaemon creates a context that services the machine (for example an
// NP dispatch loop). Run does not wait for daemons to finish; they are
// torn down after all non-daemon contexts complete and the event queue
// drains. Daemons lose scheduling ties against regular contexts: a
// compute processor whose retried bus transaction and a service
// processor's next handler are due at the same cycle models the bus
// granting the retried access first, which is what guarantees forward
// progress in the simulated protocols.
func (e *Engine) SpawnDaemon(name string, body func(*Context)) *Context {
	c := e.spawn(name, true, e.sh[0])
	c.body = body
	c.gStarted = true
	go c.run()
	return c
}

// SpawnStepper creates a stepper context on shard 0: step is invoked
// inline by the scheduler, runs to completion, and returns false to idle
// the context under the given park reason until the next Unpark. The
// standby goroutine is created lazily, only if a step ever suspends while
// it cannot be hosted inline.
func (e *Engine) SpawnStepper(name string, step Step, idleReason string) *Context {
	c := e.spawn(name, false, e.sh[0])
	c.step = step
	c.idleReason = idleReason
	return c
}

// SpawnStepperDaemon is SpawnStepper for a daemon context (the NP
// dispatch loop: torn down at quiescence, loses scheduling ties).
func (e *Engine) SpawnStepperDaemon(name string, step Step, idleReason string) *Context {
	return e.SpawnStepperDaemonOn(0, name, step, idleReason)
}

// SpawnStepperDaemonOn is SpawnStepperDaemon on the shard that owns node.
func (e *Engine) SpawnStepperDaemonOn(node int, name string, step Step, idleReason string) *Context {
	c := e.spawn(name, true, e.sh[e.ShardOf(node)])
	c.step = step
	c.idleReason = idleReason
	return c
}

func (e *Engine) spawn(name string, daemon bool, sh *shard) *Context {
	if e.started && len(e.sh) > 1 {
		panic("sim: cannot spawn during a sharded run")
	}
	var prio uint8
	if daemon {
		prio = 1
	}
	c := &Context{
		eng:       e,
		sh:        sh,
		id:        len(e.contexts),
		name:      name,
		time:      sh.now,
		lastYield: sh.now,
		state:     StateRunnable,
		daemon:    daemon,
		prio:      prio,
		resumeCh:  make(chan struct{}, 1),
	}
	e.contexts = append(e.contexts, c)
	sh.runnable.push(c)
	return c
}

func (c *Context) run() {
	defer c.goroutineExit()
	// Wait for the first dispatch before touching any simulated state.
	c.await()
	c.onDispatched()
	c.body(c)
}

// stepperRun hosts a stepper on its standby goroutine: each dispatch runs
// steps to the next boundary (exactly what an inline dispatch does) and
// hands the conch straight back. runSteps clears needG at the boundary —
// the next activation may be hosted inline again.
func (c *Context) stepperRun() {
	defer c.goroutineExit()
	for {
		c.await()
		c.onDispatched()
		c.runSteps()
		c.sh.backCh <- struct{}{}
	}
}

// contextPanicError turns a recovered context-body panic into the run's
// abort error. Error values are wrapped (not flattened to a string) so
// callers of Engine.Run can unwrap structured failures — e.g. a memory
// system panicking with a typed protocol error on a user-reachable
// condition — with errors.As.
func contextPanicError(name string, r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("sim: context %q panicked: %w", name, err)
	}
	return fmt.Errorf("sim: context %q panicked: %v", name, r)
}

// goroutineExit is the shared teardown of a context goroutine: engine
// shutdown unwinds silently, a body panic is captured as the shard's
// abort error, and a finished body hands the conch back.
func (c *Context) goroutineExit() {
	if r := recover(); r != nil {
		if _, ok := r.(shutdownSignal); ok {
			return // engine teardown; nobody is waiting on backCh
		}
		c.sh.abort = contextPanicError(c.name, r)
	}
	c.state = StateDone
	// Hand the conch back to the engine, unless the engine is gone.
	select {
	case c.sh.backCh <- struct{}{}:
	case <-c.eng.shutdown:
	}
}

// await blocks until the engine dispatches this context, panicking with
// shutdownSignal if the engine shut down instead.
func (c *Context) await() {
	select {
	case <-c.resumeCh:
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// runSteps executes step bodies back-to-back — the dispatch loop never
// reschedules between handlers (paper §5.1) — until the stepper goes
// idle, then takes the idle boundary exactly as Park would: a pending
// wakeup converts it into a reschedule, otherwise the context parks
// under its idle reason. The caller (inline dispatch or standby
// goroutine) regains control at the boundary.
func (c *Context) runSteps() {
	for {
		// Re-evaluated each step: a mid-step suspension hands the
		// scheduler role away, after which this goroutine is a plain
		// host and later steps of the activation are goroutine steps.
		if c.sh.inline == c {
			c.sh.dstats.InlineSteps++
		} else {
			c.sh.dstats.GoroutineSteps++
		}
		ok := c.step(c)
		if c.lazyYield || c.lazyQuantum {
			// A pending reschedule — a Resume or a deferred quantum
			// force-yield — reached the step boundary: take it by
			// returning to the scheduler runnable. Neither host suspends
			// a frame for this, which is what makes dispatch run inline.
			c.lazyYield = false
			c.lazyQuantum = false
			c.needG = false
			c.rootHosted = false
			c.state = StateRunnable
			c.sh.runnable.push(c)
			return
		}
		if ok {
			continue
		}
		if c.pendingUnpark {
			c.pendingUnpark = false
			if c.pendingAt > c.time {
				c.time = c.pendingAt
			}
			c.needG = false
			c.rootHosted = false
			c.state = StateRunnable
			c.sh.runnable.push(c)
			return
		}
		c.parkReason = c.idleReason
		c.state = StateParked
		c.needG = false
		c.rootHosted = false
		if c.sh.inline == c {
			c.sh.dstats.ParksAvoided++
		}
		return
	}
}

// Advance charges n cycles of local execution. If the context has run more
// than the engine quantum past its last scheduling point it yields so that
// other contexts (and pending events) catch up.
func (c *Context) Advance(n Time) {
	c.Sync()
	c.time += n
	if c.time-c.lastYield >= c.eng.quantum {
		if c.step != nil {
			// Steppers take the forced yield lazily: it materialises at
			// the next interaction point (the following Advance, a shared
			// memory or TLB access, an event or unpark) or for free at
			// the step boundary. Only context-local work sits between the
			// crossing and the materialisation point, so the scheduling
			// order other contexts observe is unchanged.
			c.lazyQuantum = true
		} else {
			c.Yield()
		}
	}
}

// AdvanceAtomic charges n cycles without any possibility of yielding. Use
// inside sections that must not observe interleaved simulated state. A
// pending LazyYield still materialises on entry — before the atomic
// section, never inside it.
func (c *Context) AdvanceAtomic(n Time) {
	c.Sync()
	c.time += n
}

// SyncTo moves the context's clock forward to t if it lags (idle time,
// charged without yielding). Service processors use it so a queued item
// is never handled before the simulated instant it was posted.
func (c *Context) SyncTo(t Time) {
	c.Sync()
	if t > c.time {
		c.time = t
	}
}

// Yield reschedules the context, letting every entity with an earlier (or
// equal, lower-id) clock run first.
func (c *Context) Yield() {
	c.checkRunning("Yield")
	c.state = StateRunnable
	c.sh.runnable.push(c)
	c.suspend()
}

// suspend blocks the calling goroutine until the context is dispatched
// again; the caller has just made the context runnable (Yield) or parked
// it (Park). A stepper suspending here is mid-step, so it marks needG:
// its frames live on this goroutine and the next dispatch must resume it
// here over the channel protocol. If this goroutine is the acting
// scheduler (the activation was hosted inline), it first hands the
// scheduler role to a spare goroutine — bumping schedGen retires the
// scheduler frames below us once the activation completes — and stays
// behind as the suspended step's host. Nothing may touch shard state
// between wakeScheduler and the await: the conch transfers with the wake.
func (c *Context) suspend() {
	s := c.sh
	if c.step != nil {
		c.needG = true
	}
	if s.inline == c {
		s.dstats.InlineSuspends++
		s.inline = nil
		c.rootHosted = s.loopIsRoot
		s.schedGen++
		s.wakeScheduler()
		c.hostAwait()
		c.onDispatched()
		return
	}
	s.backCh <- struct{}{}
	c.hostAwait()
	c.onDispatched()
}

// hostAwait is await for a suspended step. A step whose frames pin the
// root goroutine additionally listens on rootWake: if the run ends while
// it is suspended, the acting scheduler's final role grant arrives here
// instead of at Run's re-acquire loop, and the frames unwind via
// schedUnwind so Run can finish.
func (c *Context) hostAwait() {
	if !c.rootHosted {
		c.await()
		return
	}
	select {
	case <-c.resumeCh:
	case <-c.sh.rootWake:
		panic(schedUnwind{})
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// Sleep advances the local clock by n cycles and yields, modeling an idle
// wait of known length.
func (c *Context) Sleep(n Time) {
	c.Sync()
	c.time += n
	c.Yield()
}

// LazyYield requests a reschedule that takes effect at the context's next
// timing operation (Advance, SyncTo, Park, scheduling an event, an
// Unpark) or — most often — at the end of the current step, where it is
// free of frame suspension: the stepper simply returns to the scheduler
// runnable. The scheduling order is identical to an immediate Yield
// whenever the work between the request and the materialisation point is
// context-local (this context's own protocol state), which is the
// contract Typhoon's Resume satisfies: handler code after a resume only
// updates the NP's own bookkeeping before its next timed operation. On
// non-stepper contexts LazyYield degrades to an immediate Yield.
func (c *Context) LazyYield() {
	c.checkRunning("LazyYield")
	if c.step == nil {
		c.Yield()
		return
	}
	c.lazyYield = true
}

// Sync materialises a pending LazyYield at exactly this point, pinning
// the reschedule's position relative to the caller's subsequent effects.
// Call it before publishing state that other contexts read without a
// timing operation in between.
func (c *Context) Sync() {
	if c.lazyQuantum {
		c.lazyQuantum = false
		c.lazyYield = false // one reschedule satisfies both requests
		c.Yield()
	}
}

// BeginNoBlock opens a MustNotBlock section: until the matching
// EndNoBlock, a Park on this context panics. Dispatchers wrap
// run-to-completion handlers (message, fault, bulk-chunk bodies; the
// hardware directory's atomic coherence action) in one, turning the
// paper's §5.1 "handlers run to completion" contract into an assertion.
// Yields are still allowed — quantum and resume yields reschedule without
// blocking on an external wakeup.
func (c *Context) BeginNoBlock() { c.noBlock++ }

// EndNoBlock closes the innermost MustNotBlock section.
func (c *Context) EndNoBlock() { c.noBlock-- }

// Park suspends the context until another entity calls Unpark. The reason
// string appears in deadlock reports. If an Unpark raced ahead of the
// Park (the wakeup was issued while the context was still running), Park
// consumes it and returns immediately.
func (c *Context) Park(reason string) {
	c.checkRunning("Park")
	c.Sync()
	if c.noBlock > 0 {
		panic(fmt.Sprintf("sim: context %q parked (%s) inside a MustNotBlock section: run-to-completion handler blocked", c.name, reason))
	}
	if c.pendingUnpark {
		c.pendingUnpark = false
		if c.pendingAt > c.time {
			c.time = c.pendingAt
		}
		c.Yield() // still reschedule so earlier entities run first
		return
	}
	c.parkReason = reason
	c.state = StateParked
	c.suspend()
}

// Unpark makes a parked context runnable no earlier than simulated time
// at. Calling Unpark on a context that is not parked records a pending
// wakeup that its next Park consumes. Unpark must be called while holding
// the conch of the target's shard — i.e. from a running context or event
// on the same shard (simulated interactions are node-local; cross-shard
// wakeups travel as timed events or through a Barrier), or from the
// coordinator between windows.
func (c *Context) Unpark(at Time) {
	c.sh.syncRunning()
	switch c.state {
	case StateParked:
		if at > c.time {
			c.time = at
		}
		c.parkReason = ""
		c.state = StateRunnable
		c.sh.runnable.push(c)
	case StateDone:
		// Late wakeup for a finished context; ignore.
	default:
		c.pendingUnpark = true
		if at > c.pendingAt {
			c.pendingAt = at
		}
	}
}

func (c *Context) onDispatched() {
	c.state = StateRunning
	c.lastYield = c.time
	c.sh.running = c
	c.sh.now = c.time
}

func (c *Context) checkRunning(op string) {
	if c.sh.running != c {
		panic(fmt.Sprintf("sim: %s called on context %q which is not running (state %v)", op, c.name, c.state))
	}
}

// AtEvent schedules ev to fire at absolute simulated time t. Events run
// on the scheduler, may not block, and execute before any context whose
// clock is later than t. Equal-time events fire in a deterministic
// order: origin-less events (this method) in scheduling order, before
// any origin-keyed event (AtEventFrom) at the same time. Origin-less
// events live on shard 0 and require a serial engine.
func (e *Engine) AtEvent(t Time, ev Event) {
	if len(e.sh) > 1 {
		panic("sim: origin-less events require a serial engine; use AtEventFrom")
	}
	s := e.sh[0]
	s.syncRunning()
	if now := s.clock(); t < now {
		t = now
	}
	e.evSeqAnon++
	s.events.push(evItem{t: t, key: packedKey(-1, e.evSeqAnon), ev: ev})
}

// AtEventFrom schedules ev to fire at absolute simulated time t on behalf
// of origin (a simulated node), on origin's own shard. Equal-time events
// order by the stable key (origin, per-origin sequence) — a function of
// the origin's own scheduling history only, which is what makes sharded
// execution meet the serial fire order exactly. The caller must be
// executing on origin's shard.
func (e *Engine) AtEventFrom(t Time, origin int, ev Event) {
	e.AtEventFromTo(t, origin, origin, ev)
}

// AtEventFromTo is AtEventFrom with the event fired on the shard that
// owns dest (the node whose state ev mutates): a cross-shard event is
// staged in the origin shard's outbox and merged into dest's heap at the
// next window boundary. t must be at least one full lookahead window in
// the future whenever dest lives on another shard — true by construction
// for network packets, whose latency bounds the window from above.
func (e *Engine) AtEventFromTo(t Time, origin, dest int, ev Event) {
	s := e.sh[e.ShardOf(origin)]
	s.syncRunning()
	if now := s.clock(); t < now {
		t = now
	}
	if origin >= len(e.evSeqs) {
		// Serial engines without WithShards size the table on demand;
		// sharded engines pre-size it (ShardOf bounds origin).
		e.evSeqs = append(e.evSeqs, make([]uint64, origin+1-len(e.evSeqs))...)
	}
	e.evSeqs[origin]++
	it := evItem{t: t, key: packedKey(origin, e.evSeqs[origin]), ev: ev}
	if ds := e.ShardOf(dest); ds != s.id {
		// Window-safety invariant: a cross-shard event is staged in the
		// outbox and merged only at the next window boundary, so one
		// scheduled inside the current window would be delivered late —
		// silently, and differently at different shard counts. That means
		// the caller's lookahead claim (e.g. the network latency bounding
		// the window) is broken; fail loudly instead of corrupting
		// determinism. s.limit is infTime on a serial engine, so the
		// check only bites under sharded execution, where it matters.
		if t < s.limit {
			panic(fmt.Sprintf(
				"sim: cross-shard event (origin %d → dest %d) at time %d inside the current window (limit %d): lookahead too small for the scheduling horizon",
				origin, dest, t, s.limit))
		}
		s.outbox = append(s.outbox, outItem{sh: int32(ds), it: it})
	} else {
		s.events.push(it)
	}
}

// AfterEvent schedules ev to fire delta cycles after the current global
// time.
func (e *Engine) AfterEvent(delta Time, ev Event) { e.AtEvent(e.Now()+delta, ev) }

// AfterEventFrom schedules ev delta cycles after origin's current shard
// time, on origin's shard.
func (e *Engine) AfterEventFrom(delta Time, origin int, ev Event) {
	e.AtEventFrom(e.NowFor(origin)+delta, origin, ev)
}

// At schedules fn to run at absolute simulated time t.
func (e *Engine) At(t Time, fn func()) { e.AtEvent(t, funcEvent(fn)) }

// After schedules fn delta cycles after the current global time.
func (e *Engine) After(delta Time, fn func()) { e.AtEvent(e.Now()+delta, funcEvent(fn)) }

// AfterFrom schedules fn delta cycles after origin's current shard time,
// on origin's shard.
func (e *Engine) AfterFrom(delta Time, origin int, fn func()) {
	e.AtEventFrom(e.NowFor(origin)+delta, origin, funcEvent(fn))
}

// dispatch hands the conch to c. A stepper at a boundary runs inline on
// the acting scheduler goroutine; everything else (goroutine bodies,
// steppers suspended mid-step on a host goroutine) trades the conch over
// the single-slot channels. A needG stepper always has a live host
// goroutine awaiting its resumeCh — the standby goroutine, or a retired
// scheduler goroutine that stayed behind at the mid-step hand-off — so
// the standby is spawned only for a boundary dispatch forced through the
// channel protocol (WithGoroutineDispatch).
func (s *shard) dispatch(c *Context) {
	if c.step != nil && !c.needG && !s.eng.forceG {
		s.dstats.InlineDispatches++
		s.dispatchInline(c)
		s.running = nil
		return
	}
	s.dstats.GoroutineSwitches++
	if c.step != nil {
		s.dstats.StepperFallbacks++
		if !c.gStarted && !c.needG {
			c.gStarted = true
			go c.stepperRun()
		}
	}
	c.resumeCh <- struct{}{}
	<-s.backCh
	s.running = nil
}

// dispatchInline runs one stepper activation on the acting scheduler
// goroutine. A panic in a step body becomes the shard's abort error,
// exactly as a goroutine body's panic would; schedUnwind and
// shutdownSignal keep unwinding through the host's frames.
func (s *shard) dispatchInline(c *Context) {
	defer func() {
		s.inline = nil
		if r := recover(); r != nil {
			switch r.(type) {
			case schedUnwind, shutdownSignal:
				panic(r)
			}
			s.abort = contextPanicError(c.name, r)
			c.state = StateDone
		}
	}()
	c.onDispatched()
	s.inline = c
	c.runSteps()
}

// scheduleLoop is the scheduler: fire due events, dispatch runnable
// contexts in (time, prio, id) order, both bounded by the shard's window
// limit (infTime when serial). It returns true when the machine aborts,
// goes quiescent (serial), or the run ends at a window boundary
// (sharded). It returns false when this goroutine loses the scheduler
// role: a stepper it hosted inline suspended mid-step and handed the
// role to a spare (Context.suspend); once the suspended activation
// completes back on this goroutine, the stale loop observes the newer
// schedGen, hands the conch to the acting scheduler, and retires.
//
// park is the goroutine's spare-pool registration channel, nil for the
// serial root goroutine (which re-acquires the role via rootWake
// instead). It is re-registered before the conch is released, so the
// pool is only ever mutated conch-held.
func (s *shard) scheduleLoop(park chan struct{}) (done bool) {
	s.loopIsRoot = park == nil
	gen := s.schedGen
	for {
		if s.abort != nil {
			// Serial: the run is over. Sharded: report the abort at the
			// boundary and idle until the coordinator stops the run.
			if s.limit != infTime && s.windowBoundary() {
				continue
			}
			break
		}
		// Run every event that is due before (or at) the next context.
		nextCtx := infTime
		if s.runnable.len() > 0 {
			nextCtx = s.runnable.a[0].time
		}
		if s.events.len() > 0 && s.events.a[0].t <= nextCtx && s.events.a[0].t < s.limit {
			ev := s.events.pop()
			if ev.t > s.now {
				s.now = ev.t
			}
			s.running = nil
			ev.ev.Fire()
			continue
		}
		if nextCtx >= s.limit {
			// Nothing left inside the bound: the window is exhausted
			// (sharded — trade it for the next one) or the shard is
			// quiescent (serial, limit == infTime).
			if s.limit != infTime && s.windowBoundary() {
				continue
			}
			break
		}
		s.dispatch(s.runnable.pop())
		if s.schedGen != gen {
			// The role moved on while this goroutine hosted a suspended
			// step; the activation has completed, so hand the conch to
			// the acting scheduler and retire this loop frame.
			if park != nil {
				s.spareWakes = append(s.spareWakes, park)
			}
			s.backCh <- struct{}{}
			return false
		}
	}
	if park != nil && s.limit == infTime {
		// A spare observed the end of a serial run: hand the scheduler
		// role (and the conch) back to the root goroutine, which
		// finishes Run. Sharded shards end at a window boundary instead
		// (the coordinator holds every conch between windows).
		s.spareWakes = append(s.spareWakes, park)
		s.rootWake <- struct{}{}
	}
	return true
}

// windowBoundary hands the shard's conch to the coordinator (the window
// is exhausted) and blocks until the next window grant. It returns false
// when the coordinator ends the run instead of granting another window.
func (s *shard) windowBoundary() bool {
	s.doneCh <- struct{}{}
	limit, ok := <-s.grantCh
	if !ok {
		return false
	}
	s.limit = limit
	return true
}

// wakeScheduler hands the scheduler role to a spare goroutine, starting
// one if the pool is empty. Called conch-held by a goroutine about to
// become a suspended stepper's host; the conch transfers with the wake.
func (s *shard) wakeScheduler() {
	if n := len(s.spareWakes); n > 0 {
		ch := s.spareWakes[n-1]
		s.spareWakes = s.spareWakes[:n-1]
		ch <- struct{}{}
		return
	}
	go s.spareScheduler()
}

// spareScheduler hosts the scheduler loop whenever the role is handed
// off. Between turns the goroutine parks in the spare pool; engine
// shutdown releases it. A shutdownSignal unwinding out of a hosted
// step's frames (the run finished while the step was still suspended)
// retires it too.
func (s *shard) spareScheduler() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); !ok {
				panic(r)
			}
		}
	}()
	wake := make(chan struct{}, 1)
	for {
		s.scheduleLoop(wake) // registers wake in the pool before releasing the conch
		select {
		case <-wake:
		case <-s.eng.shutdown:
			return
		}
	}
}

// shardScheduler is a shard's initial scheduler goroutine under sharded
// execution: it waits for the first window grant, then schedules exactly
// like a spare — if it loses the role to a mid-step suspension it parks
// in the pool, and whichever goroutine holds the role trades windows
// with the coordinator at each boundary.
func (s *shard) shardScheduler() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); !ok {
				panic(r)
			}
		}
	}()
	limit, ok := <-s.grantCh
	if !ok {
		return
	}
	s.limit = limit
	wake := make(chan struct{}, 1)
	for {
		s.scheduleLoop(wake)
		select {
		case <-wake:
		case <-s.eng.shutdown:
			return
		}
	}
}

// Run drives the simulation until every non-daemon context finishes and
// the machine is quiescent (no runnable contexts, no pending events). It
// returns an error if a context panicked or if the machine deadlocked with
// unfinished work.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	defer func() {
		e.finished = true
		close(e.shutdown) // release daemon goroutines
		var d DispatchStats
		for _, s := range e.sh {
			d.add(s.dstats)
		}
		e.dstats = d
		fleet.inline.Add(d.InlineDispatches)
		fleet.switches.Add(d.GoroutineSwitches)
		fleet.fallbacks.Add(d.StepperFallbacks)
		fleet.parks.Add(d.ParksAvoided)
		fleet.steps.Add(d.InlineSteps)
		fleet.gsteps.Add(d.GoroutineSteps)
		fleet.suspends.Add(d.InlineSuspends)
	}()

	if len(e.sh) == 1 {
		e.runSerial()
	} else {
		e.runSharded()
	}

	if e.abort != nil {
		return e.abort
	}
	var waiting []string
	var now Time
	for _, s := range e.sh {
		if s.now > now {
			now = s.now
		}
	}
	for _, c := range e.contexts {
		if c.daemon || c.state == StateDone {
			continue
		}
		waiting = append(waiting, fmt.Sprintf("%s@%d(%s: %s)", c.name, c.time, c.state, c.parkReason))
	}
	if len(waiting) > 0 {
		sort.Strings(waiting)
		return fmt.Errorf("sim: deadlock at cycle %d; blocked contexts: %s", now, strings.Join(waiting, ", "))
	}
	return nil
}

// runSerial hosts shard 0's scheduler on the calling (root) goroutine,
// re-acquiring the role whenever a spare finishes the run while the root
// stack hosts a suspended step.
func (e *Engine) runSerial() {
	s := e.sh[0]
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(schedUnwind); !ok {
					panic(r)
				}
			}
		}()
		for {
			if s.scheduleLoop(nil) {
				return
			}
			// The root goroutine lost the scheduler role to a spare while
			// hosting a suspended step; the step has completed and the
			// conch moved on. Wait for the role grant at the end of the
			// run (or, if another hosted step pins this stack first, the
			// grant arrives at rootHostAwait and unwinds to here).
			<-s.rootWake
		}
	}()
	e.abort = s.abort
}

// runSharded is the window coordinator: it grants every shard with work
// the window [M, M+W), waits for all of them to exhaust it, merges
// cross-shard events and barrier arrivals at the boundary, and repeats
// until the machine is quiescent or aborts. The grant/done channel pair
// is the only cross-goroutine synchronisation — it carries the shard's
// conch, so between windows the coordinator owns every shard's state.
func (e *Engine) runSharded() {
	for _, s := range e.sh {
		go s.shardScheduler()
	}
	for e.abort == nil {
		m := infTime
		for _, s := range e.sh {
			if t := s.nextTime(); t < m {
				m = t
			}
		}
		if m == infTime {
			break // quiescent (or deadlocked) machine-wide
		}
		limit := m + e.window
		for _, s := range e.sh {
			// Idle shards (nothing before the window's end) keep their
			// conch with the coordinator: granting them would only bounce
			// an empty window over the channels.
			if s.granted = s.nextTime() < limit; s.granted {
				s.grantCh <- limit
			}
		}
		for _, s := range e.sh {
			if s.granted {
				<-s.doneCh
			}
		}
		e.mergeBoundary()
	}
	for _, s := range e.sh {
		close(s.grantCh)
	}
}

// mergeBoundary integrates one window's cross-shard effects while every
// shard's conch is parked with the coordinator: outbox events are pushed
// into their destination heaps (the stable event key already fixes the
// fire order, so insertion order is immaterial), completed barriers
// release their waiters, and shard aborts fold — by shard id, so the
// reported error is deterministic — into the engine abort.
func (e *Engine) mergeBoundary() {
	for _, s := range e.sh {
		for i, o := range s.outbox {
			e.sh[o.sh].events.push(o.it)
			s.outbox[i] = outItem{} // drop the Event reference
		}
		s.outbox = s.outbox[:0]
		if s.abort != nil && e.abort == nil {
			e.abort = s.abort
		}
	}
	if e.abort != nil {
		return
	}
	for _, b := range e.barriers {
		b.mergeStaged()
	}
}

// The heaps below are index-based 4-ary min-heaps (children of i are
// 4i+1..4i+4). Compared to container/heap they avoid the interface{}
// boxing on every Push/Pop (an allocation per scheduled event) and halve
// the tree depth, trading a slightly wider sibling scan on sift-down —
// the classic d-ary trade that favours push-heavy workloads like event
// scheduling. Both orderings are strict total orders, so pop order is
// the unique sorted order and independent of arity.

// evItem is a scheduled occurrence, ordered by the stable key
// (t, origin, per-origin seq); seq is unique per origin, so the key is a
// strict total order that does not depend on the interleaving of
// origins. The (origin, seq) pair is packed into one word — origin+1 in
// the top bits so origin-less events (packedKey's origin -1) sort before
// every node origin, seq below — keeping the item at 32 bytes and the
// comparison at two branches.
type evItem struct {
	t   Time
	key uint64
	ev  Event
}

// evSeqBits is the per-origin sequence field width: 2^40 events per
// origin per run is beyond any simulation this engine will host.
const evSeqBits = 40

// packedKey builds an evItem tie-break key from an origin (-1 for
// origin-less events) and its per-origin sequence number.
func packedKey(origin int, seq uint64) uint64 {
	return uint64(origin+1)<<evSeqBits | seq
}

func evLess(a, b evItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.key < b.key
}

type evHeap struct{ a []evItem }

func (h *evHeap) len() int { return len(h.a) }

func (h *evHeap) push(it evItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *evHeap) pop() evItem {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = evItem{} // drop the Event reference
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if evLess(a[j], a[m]) {
				m = j
			}
		}
		if !evLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// ctxLess orders runnable contexts: earliest local time first, compute
// contexts before daemons on ties, then creation order. (time, prio, id)
// is a strict total order because ids are unique.
func ctxLess(a, b *Context) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

type ctxHeap struct{ a []*Context }

func (h *ctxHeap) len() int { return len(h.a) }

func (h *ctxHeap) push(c *Context) {
	h.a = append(h.a, c)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ctxLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *ctxHeap) pop() *Context {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if ctxLess(a[j], a[m]) {
				m = j
			}
		}
		if !ctxLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}
