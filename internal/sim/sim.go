// Package sim provides a deterministic, cooperative discrete-event engine.
//
// The engine plays the role the Wisconsin Wind Tunnel plays in the paper:
// it hosts one context per simulated instruction stream (a compute
// processor's thread, a network-interface processor's dispatch loop) and
// interleaves them in global cycle order. Exactly one context runs at a
// time (cooperative "conch" scheduling), so simulated state needs no
// locking and every run of the same configuration is bit-identical.
//
// Contexts account for their own local time with Advance and interact with
// the rest of the machine only at explicit points: Yield, Park/Unpark, and
// timed events. Between interaction points a context may run ahead of the
// global clock by at most the engine's quantum, mirroring the
// direct-execution style of execution-driven simulators.
//
// Scheduling is allocation-free on the steady-state path: runnable
// contexts and pending events live in index-based 4-ary min-heaps over
// slices that are reused across pushes, and events are stored as Event
// interface values (pointer-shaped, so scheduling a *T or a func boxes
// nothing). Because both heap orderings are strict total orders — events
// by (time, seq), contexts by (time, prio, id) — any min-heap pops them
// in exactly sorted order, so the heap's arity and internal layout cannot
// affect simulated results.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a simulated clock value in processor cycles.
type Time uint64

// State describes a context's scheduling state.
type State uint8

// Context scheduling states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateParked
	StateDone
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	}
	return "invalid"
}

// DefaultQuantum bounds how far a context may run ahead of its last yield
// before it is forced back through the scheduler. It is a few network
// latencies (Table 2: 11 cycles) so a compute processor cannot starve
// its node's NP of overlap opportunities (prefetch, bulk transfer)
// for long; a larger quantum would trade that fidelity for fewer context
// switches, the same trade execution-driven simulators make.
const DefaultQuantum Time = 64

// shutdownSignal is panicked through a context goroutine when the engine
// tears down daemons after Run completes.
type shutdownSignal struct{}

// Context is a simulated instruction stream scheduled by an Engine.
type Context struct {
	eng  *Engine
	id   int
	name string

	time      Time
	lastYield Time
	state     State
	daemon    bool
	prio      uint8 // tie-break class: compute contexts (0) run before daemons (1)

	parkReason    string
	pendingUnpark bool
	pendingAt     Time

	resumeCh chan struct{}
	body     func(*Context)
}

// ID returns the context's creation-order identifier.
func (c *Context) ID() int { return c.id }

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Time returns the context's local clock.
func (c *Context) Time() Time { return c.time }

// State returns the context's scheduling state.
func (c *Context) State() State { return c.state }

// Engine returns the engine that owns this context.
func (c *Context) Engine() *Engine { return c.eng }

// Event is a scheduled occurrence. Fire runs on the scheduler with the
// conch held (no context is running) and must not block. Implementing
// Fire on a pointer type lets callers schedule it with AtEvent/AfterEvent
// without allocating: pointer-shaped values box into the interface for
// free.
type Event interface{ Fire() }

// funcEvent adapts a plain callback to Event. Func values are
// pointer-shaped, so this conversion does not allocate either.
type funcEvent func()

func (f funcEvent) Fire() { f() }

// Engine schedules contexts and timed events in global cycle order.
type Engine struct {
	quantum  Time
	now      Time
	contexts []*Context
	runnable ctxHeap
	events   evHeap
	evSeq    uint64

	running  *Context
	backCh   chan struct{}
	shutdown chan struct{}
	started  bool
	finished bool

	abort error // first panic captured from a context
}

// Option configures an Engine.
type Option func(*Engine)

// WithQuantum sets the run-ahead quantum in cycles. Zero keeps the default.
func WithQuantum(q Time) Option {
	return func(e *Engine) {
		if q > 0 {
			e.quantum = q
		}
	}
}

// NewEngine returns an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		quantum:  DefaultQuantum,
		backCh:   make(chan struct{}),
		shutdown: make(chan struct{}),
	}
	e.runnable.a = make([]*Context, 0, 64)
	e.events.a = make([]evItem, 0, 256)
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the global clock: the local time of the entity (context or
// event) that is currently executing, including any cycles the running
// context has accumulated since it was dispatched.
func (e *Engine) Now() Time {
	if e.running != nil {
		return e.running.time
	}
	return e.now
}

// Quantum returns the engine's run-ahead quantum.
func (e *Engine) Quantum() Time { return e.quantum }

// Spawn creates a context that must finish before Run can succeed.
// Spawning is allowed both before Run and from inside a running context or
// event; the new context starts at the current global time.
func (e *Engine) Spawn(name string, body func(*Context)) *Context {
	return e.spawn(name, body, false)
}

// SpawnDaemon creates a context that services the machine (for example an
// NP dispatch loop). Run does not wait for daemons to finish; they are
// torn down after all non-daemon contexts complete and the event queue
// drains. Daemons lose scheduling ties against regular contexts: a
// compute processor whose retried bus transaction and a service
// processor's next handler are due at the same cycle models the bus
// granting the retried access first, which is what guarantees forward
// progress in the simulated protocols.
func (e *Engine) SpawnDaemon(name string, body func(*Context)) *Context {
	return e.spawn(name, body, true)
}

func (e *Engine) spawn(name string, body func(*Context), daemon bool) *Context {
	var prio uint8
	if daemon {
		prio = 1
	}
	c := &Context{
		eng:       e,
		id:        len(e.contexts),
		name:      name,
		time:      e.now,
		lastYield: e.now,
		state:     StateRunnable,
		daemon:    daemon,
		prio:      prio,
		resumeCh:  make(chan struct{}),
		body:      body,
	}
	e.contexts = append(e.contexts, c)
	e.runnable.push(c)
	go c.run()
	return c
}

func (c *Context) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); ok {
				return // engine teardown; nobody is waiting on backCh
			}
			c.eng.abort = fmt.Errorf("sim: context %q panicked: %v", c.name, r)
		}
		c.state = StateDone
		// Hand the conch back to the engine, unless the engine is gone.
		select {
		case c.eng.backCh <- struct{}{}:
		case <-c.eng.shutdown:
		}
	}()
	// Wait for the first dispatch before touching any simulated state.
	c.await()
	c.onDispatched()
	c.body(c)
}

// await blocks until the engine dispatches this context, panicking with
// shutdownSignal if the engine shut down instead.
func (c *Context) await() {
	select {
	case <-c.resumeCh:
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// Advance charges n cycles of local execution. If the context has run more
// than the engine quantum past its last scheduling point it yields so that
// other contexts (and pending events) catch up.
func (c *Context) Advance(n Time) {
	c.time += n
	if c.time-c.lastYield >= c.eng.quantum {
		c.Yield()
	}
}

// AdvanceAtomic charges n cycles without any possibility of yielding. Use
// inside sections that must not observe interleaved simulated state.
func (c *Context) AdvanceAtomic(n Time) { c.time += n }

// SyncTo moves the context's clock forward to t if it lags (idle time,
// charged without yielding). Service processors use it so a queued item
// is never handled before the simulated instant it was posted.
func (c *Context) SyncTo(t Time) {
	if t > c.time {
		c.time = t
	}
}

// Yield reschedules the context, letting every entity with an earlier (or
// equal, lower-id) clock run first.
func (c *Context) Yield() {
	c.checkRunning("Yield")
	c.state = StateRunnable
	c.eng.runnable.push(c)
	c.eng.backCh <- struct{}{}
	c.await()
	c.onDispatched()
}

// Sleep advances the local clock by n cycles and yields, modeling an idle
// wait of known length.
func (c *Context) Sleep(n Time) {
	c.time += n
	c.Yield()
}

// Park suspends the context until another entity calls Unpark. The reason
// string appears in deadlock reports. If an Unpark raced ahead of the
// Park (the wakeup was issued while the context was still running), Park
// consumes it and returns immediately.
func (c *Context) Park(reason string) {
	c.checkRunning("Park")
	if c.pendingUnpark {
		c.pendingUnpark = false
		if c.pendingAt > c.time {
			c.time = c.pendingAt
		}
		c.Yield() // still reschedule so earlier entities run first
		return
	}
	c.parkReason = reason
	c.state = StateParked
	c.eng.backCh <- struct{}{}
	c.await()
	c.onDispatched()
}

// Unpark makes a parked context runnable no earlier than simulated time
// at. Calling Unpark on a context that is not parked records a pending
// wakeup that its next Park consumes. Unpark must be called while holding
// the conch (i.e. from a running context or an event callback).
func (c *Context) Unpark(at Time) {
	switch c.state {
	case StateParked:
		if at > c.time {
			c.time = at
		}
		c.parkReason = ""
		c.state = StateRunnable
		c.eng.runnable.push(c)
	case StateDone:
		// Late wakeup for a finished context; ignore.
	default:
		c.pendingUnpark = true
		if at > c.pendingAt {
			c.pendingAt = at
		}
	}
}

func (c *Context) onDispatched() {
	c.state = StateRunning
	c.lastYield = c.time
	c.eng.running = c
	c.eng.now = c.time
}

func (c *Context) checkRunning(op string) {
	if c.eng.running != c {
		panic(fmt.Sprintf("sim: %s called on context %q which is not running (state %v)", op, c.name, c.state))
	}
}

// AtEvent schedules ev to fire at absolute simulated time t. Events run
// on the scheduler, may not block, and execute before any context whose
// clock is later than t. Events at equal times fire in scheduling order.
func (e *Engine) AtEvent(t Time, ev Event) {
	if now := e.Now(); t < now {
		t = now
	}
	e.evSeq++
	e.events.push(evItem{t: t, seq: e.evSeq, ev: ev})
}

// AfterEvent schedules ev to fire delta cycles after the current global
// time.
func (e *Engine) AfterEvent(delta Time, ev Event) { e.AtEvent(e.Now()+delta, ev) }

// At schedules fn to run at absolute simulated time t.
func (e *Engine) At(t Time, fn func()) { e.AtEvent(t, funcEvent(fn)) }

// After schedules fn delta cycles after the current global time.
func (e *Engine) After(delta Time, fn func()) { e.AtEvent(e.Now()+delta, funcEvent(fn)) }

// Run drives the simulation until every non-daemon context finishes and
// the machine is quiescent (no runnable contexts, no pending events). It
// returns an error if a context panicked or if the machine deadlocked with
// unfinished work.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	defer func() {
		e.finished = true
		close(e.shutdown) // release daemon goroutines
	}()

	for e.abort == nil {
		// Run every event that is due before (or at) the next context.
		nextCtx := Time(^uint64(0))
		if e.runnable.len() > 0 {
			nextCtx = e.runnable.a[0].time
		}
		if e.events.len() > 0 && e.events.a[0].t <= nextCtx {
			ev := e.events.pop()
			if ev.t > e.now {
				e.now = ev.t
			}
			e.running = nil
			ev.ev.Fire()
			continue
		}
		if e.runnable.len() == 0 {
			break // quiescent
		}
		c := e.runnable.pop()
		c.resumeCh <- struct{}{}
		<-e.backCh
		e.running = nil
	}

	if e.abort != nil {
		return e.abort
	}
	var waiting []string
	for _, c := range e.contexts {
		if c.daemon || c.state == StateDone {
			continue
		}
		waiting = append(waiting, fmt.Sprintf("%s@%d(%s: %s)", c.name, c.time, c.state, c.parkReason))
	}
	if len(waiting) > 0 {
		sort.Strings(waiting)
		return fmt.Errorf("sim: deadlock at cycle %d; blocked contexts: %s", e.now, strings.Join(waiting, ", "))
	}
	return nil
}

// The heaps below are index-based 4-ary min-heaps (children of i are
// 4i+1..4i+4). Compared to container/heap they avoid the interface{}
// boxing on every Push/Pop (an allocation per scheduled event) and halve
// the tree depth, trading a slightly wider sibling scan on sift-down —
// the classic d-ary trade that favours push-heavy workloads like event
// scheduling. Both orderings are strict total orders, so pop order is
// the unique sorted order and independent of arity.

// evItem is a scheduled occurrence, ordered by (t, seq); seq is unique,
// so equal-time events fire in scheduling order.
type evItem struct {
	t   Time
	seq uint64
	ev  Event
}

func evLess(a, b evItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

type evHeap struct{ a []evItem }

func (h *evHeap) len() int { return len(h.a) }

func (h *evHeap) push(it evItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *evHeap) pop() evItem {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = evItem{} // drop the Event reference
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if evLess(a[j], a[m]) {
				m = j
			}
		}
		if !evLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// ctxLess orders runnable contexts: earliest local time first, compute
// contexts before daemons on ties, then creation order. (time, prio, id)
// is a strict total order because ids are unique.
func ctxLess(a, b *Context) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

type ctxHeap struct{ a []*Context }

func (h *ctxHeap) len() int { return len(h.a) }

func (h *ctxHeap) push(c *Context) {
	h.a = append(h.a, c)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ctxLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *ctxHeap) pop() *Context {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if ctxLess(a[j], a[m]) {
				m = j
			}
		}
		if !ctxLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}
