// Package sim provides a deterministic, cooperative discrete-event engine.
//
// The engine plays the role the Wisconsin Wind Tunnel plays in the paper:
// it hosts one context per simulated instruction stream (a compute
// processor's thread, a network-interface processor's dispatch loop) and
// interleaves them in global cycle order. Exactly one context runs at a
// time per shard (cooperative "conch" scheduling), so simulated state
// needs no locking and every run of the same configuration is
// bit-identical.
//
// Contexts account for their own local time with Advance and interact with
// the rest of the machine only at explicit points: Yield, Park/Unpark, and
// timed events. Between interaction points a context may run ahead of the
// global clock by at most the engine's quantum, mirroring the
// direct-execution style of execution-driven simulators.
//
// Contexts come in two kinds. A goroutine context (Spawn, SpawnDaemon)
// hosts an arbitrary body on its own goroutine and trades the conch over
// a single-slot channel pair. A stepper context (SpawnStepper,
// SpawnStepperDaemon) is a run-to-completion dispatch loop — the WWT
// lineage's "protocol handlers are events, not threads" — that the
// scheduler invokes inline on its own goroutine with no channel handoff
// at all. When an inline-hosted step must suspend mid-flight (a
// materialised quantum yield, or a blocking wait), the goroutine running
// the scheduler stays behind as the suspended step's host and hands the
// scheduler role to a spare goroutine, so the scheduler stack is never
// pinned and every other stepper keeps dispatching inline; only the
// resumption of such a suspended step pays a channel handoff. Both hosts
// drive the identical state machine (same runnable pushes, same
// park/unpark transitions, same clock updates), so which goroutine hosts
// a step cannot affect simulated results.
//
// # Sharded execution
//
// With WithShards the engine partitions its origins (simulated nodes)
// across shards, each with its own clock, runnable heap, and event heap,
// and runs them concurrently in conservative time windows. Each round
// grants every shard a window up to an adaptive per-shard bound — the
// earliest instant anything another shard does from here on could
// possibly affect it, derived from the other shards' earliest pending
// items plus the guaranteed cross-shard delivery latency
// (WithCrossShardDelivery) and a lower bound on the next barrier release
// (see planRound) — and never narrower than the legacy fixed window
// [M, M+W), W the configured base lookahead (for the paper's machine,
// the 11-cycle network and barrier latencies). Within its window a
// shard's nodes cannot be affected by another shard — every cross-shard
// interaction is a timed event past the granted bound — so the shards
// execute independently. Rounds have no dedicated coordinator: the last
// shard to exhaust its window merges cross-shard events (the per-shard
// outboxes) and barrier arrivals at the boundary, plans the next round's
// bounds, grants the other shards, and keeps running its own window
// inline (windowBoundary/runRound).
//
// Determinism survives sharding because every ordering the simulation can
// observe is a strict total order independent of the partitioning: events
// carry the stable key (time, origin, per-origin sequence), whose
// components depend only on the originating node's own history, and
// runnable contexts order by (time, prio, id). Merging a window's
// cross-shard events is therefore plain heap insertion — the key already
// fixes the fire order — and a run's results are bit-identical for every
// shard count, which the harness equivalence tests and the digest gate
// assert.
//
// Scheduling is allocation-free on the steady-state path: runnable
// contexts and pending events live in index-based 4-ary min-heaps over
// slices that are reused across pushes, and events are stored as Event
// interface values (pointer-shaped, so scheduling a *T or a func boxes
// nothing). Because both heap orderings are strict total orders, any
// min-heap pops them in exactly sorted order, so the heap's arity and
// internal layout cannot affect simulated results.
package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
)

// Time is a simulated clock value in processor cycles.
type Time uint64

// infTime is the unreachable "no bound" time: the serial window limit and
// the empty-heap sentinel.
const infTime = Time(^uint64(0))

// State describes a context's scheduling state.
type State uint8

// Context scheduling states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateParked
	StateDone
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	}
	return "invalid"
}

// DefaultQuantum bounds how far a context may run ahead of its last yield
// before it is forced back through the scheduler. It is a few network
// latencies (Table 2: 11 cycles) so a compute processor cannot starve
// its node's NP of overlap opportunities (prefetch, bulk transfer)
// for long; a larger quantum would trade that fidelity for fewer context
// switches, the same trade execution-driven simulators make.
const DefaultQuantum Time = 64

// shutdownSignal is panicked through a context goroutine when the engine
// tears down daemons after Run completes.
type shutdownSignal struct{}

// schedUnwind is panicked through suspended stepper frames pinning the
// root goroutine when a serial run ends first (abort, or quiescence while
// the step is parked mid-flight): the acting scheduler's final root grant
// arrives at the pinned frames instead of at Run's re-acquire loop, and
// they unwind to Run, which reports the outcome. Run recovers it. Sharded
// runs have no root scheduler — every shard scheduler is pool-style — so
// pinned hosts there unwind via shutdownSignal at teardown instead.
type schedUnwind struct{}

// Step is a stepper context's body: one run-to-completion dispatch. It
// returns false when no work is pending, which suspends the context in
// the parked state (its idle reason) until the next Unpark; returning
// true immediately runs the next step with no scheduling point between
// steps.
type Step func(*Context) bool

// Context is a simulated instruction stream scheduled by an Engine.
type Context struct {
	eng  *Engine
	sh   *shard
	id   int
	name string

	time      Time
	lastYield Time
	state     State
	daemon    bool
	prio      uint8 // tie-break class: compute contexts (0) run before daemons (1)

	parkReason    string
	pendingUnpark bool
	pendingAt     Time

	// atBarrier is the sharded barrier this context is waiting at (nil
	// otherwise). The window planner uses it to tell barrier waiters —
	// woken only by the barrier's merged release — from contexts that may
	// still arrive, when lower-bounding the release time.
	atBarrier *Barrier

	resumeCh chan struct{}
	body     func(*Context)

	// Stepper state. step is non-nil for stepper contexts; idleReason is
	// the park reason reported while the stepper has no work. needG marks
	// a stepper whose current step is suspended mid-flight on a host
	// goroutine (it must be resumed there, over the channel protocol);
	// gStarted says the standby goroutine exists. noBlock counts active
	// MustNotBlock sections: Park panics while it is positive, asserting
	// run-to-completion handlers.
	step       Step
	idleReason string
	needG      bool
	gStarted   bool
	// rootHosted marks a suspended step whose host goroutine is the root
	// (the activation was dispatched inline by the root acting as
	// scheduler, then suspended). Such a step must wait with an ear on
	// rootWake: if the run ends while its frames pin the root stack, the
	// final role grant arrives there and unwinds them so Run can finish.
	rootHosted bool
	noBlock    int
	// lazyYield records a LazyYield request: the reschedule happens at
	// the context's next timing operation, or free of any frame
	// suspension at the current step's boundary. lazyQuantum records a
	// deferred quantum force-yield: it materialises only at the step
	// boundary, because a handler is atomic on the real hardware
	// (paper §4.2) and deferring the reschedule to the boundary keeps
	// the handler's shared-state effects on one side of the window.
	lazyYield   bool
	lazyQuantum bool
}

// ID returns the context's creation-order identifier.
func (c *Context) ID() int { return c.id }

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Time returns the context's local clock.
func (c *Context) Time() Time { return c.time }

// State returns the context's scheduling state.
func (c *Context) State() State { return c.state }

// Engine returns the engine that owns this context.
func (c *Context) Engine() *Engine { return c.eng }

// Event is a scheduled occurrence. Fire runs on the scheduler with the
// conch held (no context is running) and must not block. Implementing
// Fire on a pointer type lets callers schedule it with AtEvent/AfterEvent
// without allocating: pointer-shaped values box into the interface for
// free.
type Event interface{ Fire() }

// funcEvent adapts a plain callback to Event. Func values are
// pointer-shaped, so this conversion does not allocate either.
type funcEvent func()

func (f funcEvent) Fire() { f() }

// DispatchStats counts how the engine moved control between contexts.
// Inline dispatches and avoided parks are the stepper win: activations
// that cost a function call instead of a goroutine switch.
type DispatchStats struct {
	// InlineDispatches counts stepper activations executed inline on the
	// scheduler goroutine (zero channel handoffs).
	InlineDispatches uint64
	// GoroutineSwitches counts channel dispatches: every goroutine
	// context activation plus stepper fallbacks.
	GoroutineSwitches uint64
	// StepperFallbacks counts stepper dispatches that went over the
	// channel protocol: resumptions of a step suspended mid-flight on a
	// host goroutine, plus every dispatch under WithGoroutineDispatch.
	StepperFallbacks uint64
	// ParksAvoided counts idle parks taken inline: the stepper went idle
	// and suspended without a goroutine parking, and its next activation
	// needs no goroutine wakeup either.
	ParksAvoided uint64
	// InlineSteps counts handler steps executed inline (several steps can
	// run back-to-back within one inline dispatch).
	InlineSteps uint64
	// GoroutineSteps counts handler steps executed on a host goroutine
	// after a mid-step suspension (or under WithGoroutineDispatch).
	// InlineSteps+GoroutineSteps is the total number of protocol
	// dispatches (paper §5.1: one step = one message, fault, or bulk
	// chunk dispatched by the NP loop).
	GoroutineSteps uint64
	// InlineSuspends counts inline steps that suspended mid-step (a
	// materialised quantum yield or a blocking wait): each hands the
	// scheduler role to a spare goroutine so other steppers keep
	// dispatching inline.
	InlineSuspends uint64
}

func (d *DispatchStats) add(o DispatchStats) {
	d.InlineDispatches += o.InlineDispatches
	d.GoroutineSwitches += o.GoroutineSwitches
	d.StepperFallbacks += o.StepperFallbacks
	d.ParksAvoided += o.ParksAvoided
	d.InlineSteps += o.InlineSteps
	d.GoroutineSteps += o.GoroutineSteps
	d.InlineSuspends += o.InlineSuspends
}

// WindowStats counts how the sharded scheduler granted execution
// windows. All zero on a serial engine (no windows exist) and under any
// fixed/adaptive planner the simulated results are identical — the
// counters describe scheduler mechanics, like DispatchStats.
type WindowStats struct {
	// Grants counts per-shard window grants: each round grants every
	// shard with work inside its bound one window.
	Grants uint64
	// Batched counts grants at least two base windows wide — rounds
	// where adaptive planning handed a shard multiple legacy windows in
	// one grant.
	Batched uint64
	// WidthCycles is the total granted width in simulated cycles (the
	// distance from each granted shard's next pending item to its
	// bound); WidthCycles/Grants is the mean granted width.
	WidthCycles uint64
}

func (w *WindowStats) add(o WindowStats) {
	w.Grants += o.Grants
	w.Batched += o.Batched
	w.WidthCycles += o.WidthCycles
}

// fleet aggregates dispatch stats across every engine in the process
// (atomically, so parallel harness workers may fold concurrently);
// cmd/bench reports it after a sweep.
var fleet struct {
	inline, switches, fallbacks, parks, steps, gsteps, suspends atomic.Uint64
	wgrants, wbatched, wwidth                                   atomic.Uint64
}

// FleetDispatchStats returns the process-wide dispatch totals across all
// engines that have finished Run.
func FleetDispatchStats() DispatchStats {
	return DispatchStats{
		InlineDispatches:  fleet.inline.Load(),
		GoroutineSwitches: fleet.switches.Load(),
		StepperFallbacks:  fleet.fallbacks.Load(),
		ParksAvoided:      fleet.parks.Load(),
		InlineSteps:       fleet.steps.Load(),
		GoroutineSteps:    fleet.gsteps.Load(),
		InlineSuspends:    fleet.suspends.Load(),
	}
}

// FleetWindowStats returns the process-wide window-grant totals across
// all engines that have finished Run.
func FleetWindowStats() WindowStats {
	return WindowStats{
		Grants:      fleet.wgrants.Load(),
		Batched:     fleet.wbatched.Load(),
		WidthCycles: fleet.wwidth.Load(),
	}
}

// outItem is a cross-shard event staged in the producing shard's outbox
// until the coordinator merges it into the destination shard's heap at
// the window boundary.
type outItem struct {
	sh int32 // destination shard
	it evItem
}

// shard is one partition of the simulated machine: a group of origins
// (nodes) with their own clock, heaps, and conch. A serial engine is one
// shard; a sharded engine runs every shard's window concurrently on its
// own scheduler goroutine. All shard fields are owned by whichever
// goroutine holds the shard's conch during a window and by the
// coordinator between windows (the grant/done channel pair orders the
// two).
type shard struct {
	eng *Engine
	id  int

	now      Time
	runnable ctxHeap
	events   evHeap

	running *Context
	// inline is the stepper whose activation is currently executing on
	// the acting scheduler goroutine, nil when none is. It is cleared
	// the moment such an activation suspends mid-step: the goroutine
	// hands the scheduler role to a spare (Context.suspend) and stays
	// behind as the suspended step's host, so the scheduler stack is
	// never pinned and every other stepper keeps dispatching inline.
	inline *Context
	backCh chan struct{}

	// Scheduler-role hand-off state (all mutated only with the conch
	// held). schedGen increments at each hand-off; a scheduler loop that
	// observes a generation newer than its own has lost the role.
	// loopIsRoot says whether the acting scheduler is the root goroutine
	// (the one inside a serial Run); rootWake grants the role back to it.
	// spareWakes is the pool of parked spare scheduler goroutines.
	schedGen   uint64
	loopIsRoot bool
	rootWake   chan struct{}
	spareWakes []chan struct{}

	dstats DispatchStats
	abort  error // first panic captured from a context on this shard

	// Windowed-execution state. limit is the current window's end (items
	// at or past it wait for a later window; infTime in serial mode).
	// base is the shard's earliest pending item as of the last boundary
	// (merger-local planning state). outbox stages events destined for
	// other shards. grantCh carries the window token: the merger writes
	// every shard's limit while it owns all shard state, then sends one
	// token per granted shard (the channel send is the happens-before
	// edge that publishes the limit). A closed grantCh ends the shard's
	// run.
	limit   Time
	base    Time
	outbox  []outItem
	grantCh chan struct{}
}

// clock returns the shard's current time: the running context's local
// clock, or the shard clock when an event (or nothing) is executing.
func (s *shard) clock() Time {
	if s.running != nil {
		return s.running.time
	}
	return s.now
}

// syncRunning materialises the running context's pending LazyYield, for
// engine entry points that are invoked on a different receiver than the
// caller (Unpark on a target context, AtEvent on the engine).
func (s *shard) syncRunning() {
	if r := s.running; r != nil {
		r.Sync()
	}
}

// nextTime returns the earliest pending item on the shard: the head of
// the runnable heap or the event heap, whichever is due first.
func (s *shard) nextTime() Time {
	t := infTime
	if s.runnable.len() > 0 {
		t = s.runnable.a[0].time
	}
	if s.events.len() > 0 && s.events.a[0].t < t {
		t = s.events.a[0].t
	}
	return t
}

// Engine schedules contexts and timed events in global cycle order.
type Engine struct {
	quantum Time
	window  Time // base cross-shard lookahead; the minimum window width
	// minDelivery is the guaranteed minimum latency of a cross-shard
	// event (WithCrossShardDelivery): every AtEventFromTo crossing a
	// shard boundary fires at least this many cycles after the caller's
	// clock. It is the lookahead LA of the adaptive window planner;
	// defaults to window.
	minDelivery Time
	fixedWindow bool // disable adaptive planning (A/B validation)
	origins     int  // number of event origins (simulated nodes)
	nshards     int
	contexts    []*Context
	sh          []*shard

	// Event tie-break state. Events carry a stable key (time, origin,
	// per-origin sequence): evSeqs[i] counts events scheduled by origin i
	// (a simulated node), and evSeqAnon counts origin-less events
	// (AtEvent/At/After — engine tests and other non-node callers, which
	// sort before every node origin at equal times). The key is a pure
	// function of each origin's own scheduling history, so the merged
	// fire order is independent of how origins are partitioned across
	// shards — unlike a global insertion sequence, which would encode the
	// interleaving of the whole machine. Under sharding each element is
	// written only by the shard that owns its origin.
	evSeqs    []uint64
	evSeqAnon uint64

	forceG   bool // dispatch every stepper via its goroutine (validation)
	shutdown chan struct{}
	started  bool
	finished bool

	barriers []*Barrier // sharded barriers merged at window boundaries

	// Floating-coordinator state (sharded runs). There is no dedicated
	// coordinator goroutine: outstanding counts granted shards still
	// inside their windows, and the shard whose decrement reaches zero
	// becomes the round's merger — it merges the boundary, plans the next
	// round's limits for every shard, publishes outstanding, and grants
	// tokens. runDone is closed at teardown so Run's goroutine can
	// finish. nonDaemons, ectScratch, and grantScratch (the round's grant
	// list — kept off the shards so a retiring merger's token loop never
	// touches state the next merger plans into) are planner scratch built
	// once at Run start (sharded engines forbid mid-run spawns).
	outstanding  atomic.Int64
	runDone      chan struct{}
	nonDaemons   []*Context
	ectScratch   []Time
	grantScratch []*shard

	// Cooperative round mode (chosen at Run): when the host has a single
	// schedulable CPU, token hand-offs between shard goroutines buy no
	// parallelism and cost two scheduler switches per round. Instead a
	// single chain goroutine runs every granted window sequentially,
	// merges, plans, and repeats — zero channel operations per round.
	// Window contents are planned identically in both modes, so results
	// are bit-identical. coopGrants/coopNext are the current round's
	// grant queue; only the chain goroutine (whose identity moves via the
	// existing spare-scheduler hand-off on mid-step suspension) touches
	// them. coopForce: 0 auto (GOMAXPROCS == 1), 1 on, -1 off.
	coop       bool
	coopForce  int
	coopGrants []*shard
	coopNext   int

	// Window telemetry, written only by the acting merger (the grant
	// token hand-off orders rounds) and read after Run.
	winGrants, winBatched, winWidthSum uint64

	dstats DispatchStats // folded across shards when Run finishes

	abort error // first shard abort, folded by shard id
}

// Option configures an Engine.
type Option func(*Engine)

// WithQuantum sets the run-ahead quantum in cycles. Zero keeps the default.
func WithQuantum(q Time) Option {
	return func(e *Engine) {
		if q > 0 {
			e.quantum = q
		}
	}
}

// WithGoroutineDispatch forces every stepper activation through its
// standby goroutine — the pre-stepper execution model. Both hosts drive
// the same state machine, so results are bit-identical either way; the
// option exists so tests can assert exactly that.
func WithGoroutineDispatch() Option {
	return func(e *Engine) { e.forceG = true }
}

// WithShards partitions origins 0..origins-1 across the given number of
// shards (contiguous ranges, ShardOf) and runs them concurrently in
// conservative time windows of the given lookahead: window must be a
// lower bound on the latency of every cross-shard interaction (for the
// paper's machine, min(network latency, barrier latency) = 11 cycles).
// One shard keeps fully serial execution and is always valid.
func WithShards(shards, origins int, window Time) Option {
	return func(e *Engine) {
		if shards < 1 {
			panic("sim: WithShards requires at least one shard")
		}
		if shards > 1 {
			if origins < shards {
				panic("sim: WithShards requires at least one origin per shard")
			}
			if window < 1 {
				panic("sim: WithShards requires a positive lookahead window")
			}
		}
		e.nshards, e.origins, e.window = shards, origins, window
	}
}

// WithCrossShardDelivery declares the guaranteed minimum latency of
// cross-shard events: every AtEventFromTo that crosses a shard boundary
// fires at least d cycles after the scheduling clock. The adaptive
// window planner uses it as its lookahead — larger d means longer
// uninterrupted windows. d must hold for every cross-shard interaction
// (for the paper's machine, the network's base latency: contention and
// occupancy only delay delivery further); the window-safety check in
// AtEventFromTo fails loudly on any violation. Values below the base
// window are ignored (the base window is always a valid lookahead).
func WithCrossShardDelivery(d Time) Option {
	return func(e *Engine) { e.minDelivery = d }
}

// WithFixedWindows disables adaptive lookahead planning: every round
// grants the legacy fixed window [M, M+window) to every shard with work
// inside it. Simulated results are bit-identical either way — window
// placement cannot affect the merged event order — so the option exists
// for A/B equivalence tests and overhead measurement.
func WithFixedWindows() Option {
	return func(e *Engine) { e.fixedWindow = true }
}

// WithCooperativeRounds forces cooperative round execution on sharded
// engines: one chain goroutine runs every granted window in shard order
// with no per-round channel hand-offs. This is the automatic choice when
// GOMAXPROCS is 1 (token hand-offs cannot buy parallelism there); the
// option pins it for tests and measurement. Results are bit-identical to
// concurrent rounds — the planner computes the same windows either way.
func WithCooperativeRounds() Option {
	return func(e *Engine) { e.coopForce = 1 }
}

// WithConcurrentRounds forces token-granted concurrent round execution
// on sharded engines (the automatic choice when GOMAXPROCS > 1), even on
// a single-CPU host. See WithCooperativeRounds.
func WithConcurrentRounds() Option {
	return func(e *Engine) { e.coopForce = -1 }
}

// NewEngine returns an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		quantum:  DefaultQuantum,
		nshards:  1,
		shutdown: make(chan struct{}),
		runDone:  make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	if e.minDelivery < e.window {
		e.minDelivery = e.window
	}
	if e.origins > 0 {
		e.evSeqs = make([]uint64, e.origins)
	}
	e.sh = make([]*shard, e.nshards)
	for i := range e.sh {
		s := &shard{
			eng: e,
			id:  i,
			// Single-slot resume protocol: the conch trade is a pair of
			// capacity-1 channels, so neither side's send ever blocks (at
			// most one token is in flight in each direction) and a
			// dispatch costs one blocking receive per side instead of two
			// rendezvous.
			backCh:   make(chan struct{}, 1),
			rootWake: make(chan struct{}, 1),
			grantCh:  make(chan struct{}, 1),
			limit:    infTime,
		}
		s.runnable.a = make([]*Context, 0, 64)
		s.events.a = make([]evItem, 0, 256)
		e.sh[i] = s
	}
	return e
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return len(e.sh) }

// ShardOf returns the shard that owns origin (a simulated node):
// contiguous ranges, so a node's processor and network interface — and
// every origin a machine keeps node-local state for — land together.
func (e *Engine) ShardOf(origin int) int {
	if len(e.sh) == 1 {
		return 0
	}
	if origin < 0 || origin >= e.origins {
		panic(fmt.Sprintf("sim: origin %d out of range [0,%d)", origin, e.origins))
	}
	return origin * len(e.sh) / e.origins
}

// Now returns the global clock: the local time of the entity (context or
// event) that is currently executing, including any cycles the running
// context has accumulated since it was dispatched. A sharded engine has
// no single clock — use NowFor with the acting origin instead.
func (e *Engine) Now() Time {
	if len(e.sh) > 1 {
		panic("sim: Now is ambiguous under sharded execution; use NowFor(origin)")
	}
	return e.sh[0].clock()
}

// NowFor returns the clock of the shard that owns origin: the local time
// of that shard's running context or firing event. Callers must be
// executing on origin's shard (node-local code always is).
func (e *Engine) NowFor(origin int) Time {
	return e.sh[e.ShardOf(origin)].clock()
}

// Quantum returns the engine's run-ahead quantum.
func (e *Engine) Quantum() Time { return e.quantum }

// DispatchStats returns the engine's dispatch counters so far, summed
// across shards.
func (e *Engine) DispatchStats() DispatchStats {
	if e.finished {
		return e.dstats
	}
	var d DispatchStats
	for _, s := range e.sh {
		d.add(s.dstats)
	}
	return d
}

// WindowStats returns the engine's window-grant counters. Call after Run
// (the counters are merger-owned while a sharded run is in flight); a
// serial engine reports all zeros.
func (e *Engine) WindowStats() WindowStats {
	return WindowStats{
		Grants:      e.winGrants,
		Batched:     e.winBatched,
		WidthCycles: e.winWidthSum,
	}
}

// Spawn creates a context on shard 0 that must finish before Run can
// succeed. Spawning is allowed both before Run and from inside a running
// context or event; the new context starts at the current shard time.
func (e *Engine) Spawn(name string, body func(*Context)) *Context {
	return e.SpawnOn(0, name, body)
}

// SpawnOn is Spawn for the shard that owns node: the context is the
// instruction stream of that simulated node, scheduled and clocked with
// the rest of its shard.
func (e *Engine) SpawnOn(node int, name string, body func(*Context)) *Context {
	c := e.spawn(name, false, e.sh[e.ShardOf(node)])
	c.body = body
	c.gStarted = true
	go c.run()
	return c
}

// SpawnDaemon creates a context that services the machine (for example an
// NP dispatch loop). Run does not wait for daemons to finish; they are
// torn down after all non-daemon contexts complete and the event queue
// drains. Daemons lose scheduling ties against regular contexts: a
// compute processor whose retried bus transaction and a service
// processor's next handler are due at the same cycle models the bus
// granting the retried access first, which is what guarantees forward
// progress in the simulated protocols.
func (e *Engine) SpawnDaemon(name string, body func(*Context)) *Context {
	c := e.spawn(name, true, e.sh[0])
	c.body = body
	c.gStarted = true
	go c.run()
	return c
}

// SpawnStepper creates a stepper context on shard 0: step is invoked
// inline by the scheduler, runs to completion, and returns false to idle
// the context under the given park reason until the next Unpark. The
// standby goroutine is created lazily, only if a step ever suspends while
// it cannot be hosted inline.
func (e *Engine) SpawnStepper(name string, step Step, idleReason string) *Context {
	c := e.spawn(name, false, e.sh[0])
	c.step = step
	c.idleReason = idleReason
	return c
}

// SpawnStepperDaemon is SpawnStepper for a daemon context (the NP
// dispatch loop: torn down at quiescence, loses scheduling ties).
func (e *Engine) SpawnStepperDaemon(name string, step Step, idleReason string) *Context {
	return e.SpawnStepperDaemonOn(0, name, step, idleReason)
}

// SpawnStepperDaemonOn is SpawnStepperDaemon on the shard that owns node.
func (e *Engine) SpawnStepperDaemonOn(node int, name string, step Step, idleReason string) *Context {
	c := e.spawn(name, true, e.sh[e.ShardOf(node)])
	c.step = step
	c.idleReason = idleReason
	return c
}

func (e *Engine) spawn(name string, daemon bool, sh *shard) *Context {
	if e.started && len(e.sh) > 1 {
		panic("sim: cannot spawn during a sharded run")
	}
	var prio uint8
	if daemon {
		prio = 1
	}
	c := &Context{
		eng:       e,
		sh:        sh,
		id:        len(e.contexts),
		name:      name,
		time:      sh.now,
		lastYield: sh.now,
		state:     StateRunnable,
		daemon:    daemon,
		prio:      prio,
		resumeCh:  make(chan struct{}, 1),
	}
	e.contexts = append(e.contexts, c)
	sh.runnable.push(c)
	return c
}

func (c *Context) run() {
	defer c.goroutineExit()
	// Wait for the first dispatch before touching any simulated state.
	c.await()
	c.onDispatched()
	c.body(c)
}

// stepperRun hosts a stepper on its standby goroutine: each dispatch runs
// steps to the next boundary (exactly what an inline dispatch does) and
// hands the conch straight back. runSteps clears needG at the boundary —
// the next activation may be hosted inline again.
func (c *Context) stepperRun() {
	defer c.goroutineExit()
	for {
		c.await()
		c.onDispatched()
		c.runSteps()
		c.sh.backCh <- struct{}{}
	}
}

// contextPanicError turns a recovered context-body panic into the run's
// abort error. Error values are wrapped (not flattened to a string) so
// callers of Engine.Run can unwrap structured failures — e.g. a memory
// system panicking with a typed protocol error on a user-reachable
// condition — with errors.As.
func contextPanicError(name string, r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("sim: context %q panicked: %w", name, err)
	}
	return fmt.Errorf("sim: context %q panicked: %v", name, r)
}

// goroutineExit is the shared teardown of a context goroutine: engine
// shutdown unwinds silently, a body panic is captured as the shard's
// abort error, and a finished body hands the conch back.
func (c *Context) goroutineExit() {
	if r := recover(); r != nil {
		if _, ok := r.(shutdownSignal); ok {
			return // engine teardown; nobody is waiting on backCh
		}
		c.sh.abort = contextPanicError(c.name, r)
	}
	c.state = StateDone
	// Hand the conch back to the engine, unless the engine is gone.
	select {
	case c.sh.backCh <- struct{}{}:
	case <-c.eng.shutdown:
	}
}

// await blocks until the engine dispatches this context, panicking with
// shutdownSignal if the engine shut down instead.
func (c *Context) await() {
	select {
	case <-c.resumeCh:
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// runSteps executes step bodies back-to-back — the dispatch loop never
// reschedules between handlers (paper §5.1) — until the stepper goes
// idle, then takes the idle boundary exactly as Park would: a pending
// wakeup converts it into a reschedule, otherwise the context parks
// under its idle reason. The caller (inline dispatch or standby
// goroutine) regains control at the boundary.
func (c *Context) runSteps() {
	for {
		// Re-evaluated each step: a mid-step suspension hands the
		// scheduler role away, after which this goroutine is a plain
		// host and later steps of the activation are goroutine steps.
		if c.sh.inline == c {
			c.sh.dstats.InlineSteps++
		} else {
			c.sh.dstats.GoroutineSteps++
		}
		ok := c.step(c)
		if c.lazyYield || c.lazyQuantum {
			// A pending reschedule — a Resume or a deferred quantum
			// force-yield — reached the step boundary: take it by
			// returning to the scheduler runnable. Neither host suspends
			// a frame for this, which is what makes dispatch run inline.
			c.lazyYield = false
			c.lazyQuantum = false
			c.needG = false
			c.rootHosted = false
			c.state = StateRunnable
			c.sh.runnable.push(c)
			return
		}
		if ok {
			continue
		}
		if c.pendingUnpark {
			c.pendingUnpark = false
			if c.pendingAt > c.time {
				c.time = c.pendingAt
			}
			c.needG = false
			c.rootHosted = false
			c.state = StateRunnable
			c.sh.runnable.push(c)
			return
		}
		c.parkReason = c.idleReason
		c.state = StateParked
		c.needG = false
		c.rootHosted = false
		if c.sh.inline == c {
			c.sh.dstats.ParksAvoided++
		}
		return
	}
}

// Advance charges n cycles of local execution. If the context has run more
// than the engine quantum past its last scheduling point it yields so that
// other contexts (and pending events) catch up.
func (c *Context) Advance(n Time) {
	c.Sync()
	c.time += n
	if c.time-c.lastYield >= c.eng.quantum {
		if c.step != nil {
			// Steppers take the forced yield lazily: it materialises at
			// the next interaction point (the following Advance, a shared
			// memory or TLB access, an event or unpark) or for free at
			// the step boundary. Only context-local work sits between the
			// crossing and the materialisation point, so the scheduling
			// order other contexts observe is unchanged.
			c.lazyQuantum = true
		} else {
			c.Yield()
		}
	}
}

// AdvanceAtomic charges n cycles without any possibility of yielding. Use
// inside sections that must not observe interleaved simulated state. A
// pending LazyYield still materialises on entry — before the atomic
// section, never inside it.
func (c *Context) AdvanceAtomic(n Time) {
	c.Sync()
	c.time += n
}

// SyncTo moves the context's clock forward to t if it lags (idle time,
// charged without yielding). Service processors use it so a queued item
// is never handled before the simulated instant it was posted.
func (c *Context) SyncTo(t Time) {
	c.Sync()
	if t > c.time {
		c.time = t
	}
}

// Yield reschedules the context, letting every entity with an earlier (or
// equal, lower-id) clock run first.
func (c *Context) Yield() {
	c.checkRunning("Yield")
	c.state = StateRunnable
	c.sh.runnable.push(c)
	c.suspend()
}

// suspend blocks the calling goroutine until the context is dispatched
// again; the caller has just made the context runnable (Yield) or parked
// it (Park). A stepper suspending here is mid-step, so it marks needG:
// its frames live on this goroutine and the next dispatch must resume it
// here over the channel protocol. If this goroutine is the acting
// scheduler (the activation was hosted inline), it first hands the
// scheduler role to a spare goroutine — bumping schedGen retires the
// scheduler frames below us once the activation completes — and stays
// behind as the suspended step's host. Nothing may touch shard state
// between wakeScheduler and the await: the conch transfers with the wake.
func (c *Context) suspend() {
	s := c.sh
	if c.step != nil {
		c.needG = true
	}
	if s.inline == c {
		s.dstats.InlineSuspends++
		s.inline = nil
		c.rootHosted = s.loopIsRoot
		s.schedGen++
		s.wakeScheduler()
		c.hostAwait()
		c.onDispatched()
		return
	}
	s.backCh <- struct{}{}
	c.hostAwait()
	c.onDispatched()
}

// hostAwait is await for a suspended step. A step whose frames pin the
// root goroutine additionally listens on rootWake: if the run ends while
// it is suspended, the acting scheduler's final role grant arrives here
// instead of at Run's re-acquire loop, and the frames unwind via
// schedUnwind so Run can finish.
func (c *Context) hostAwait() {
	if !c.rootHosted {
		c.await()
		return
	}
	select {
	case <-c.resumeCh:
	case <-c.sh.rootWake:
		panic(schedUnwind{})
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// Sleep advances the local clock by n cycles and yields, modeling an idle
// wait of known length.
func (c *Context) Sleep(n Time) {
	c.Sync()
	c.time += n
	c.Yield()
}

// LazyYield requests a reschedule that takes effect at the context's next
// timing operation (Advance, SyncTo, Park, scheduling an event, an
// Unpark) or — most often — at the end of the current step, where it is
// free of frame suspension: the stepper simply returns to the scheduler
// runnable. The scheduling order is identical to an immediate Yield
// whenever the work between the request and the materialisation point is
// context-local (this context's own protocol state), which is the
// contract Typhoon's Resume satisfies: handler code after a resume only
// updates the NP's own bookkeeping before its next timed operation. On
// non-stepper contexts LazyYield degrades to an immediate Yield.
func (c *Context) LazyYield() {
	c.checkRunning("LazyYield")
	if c.step == nil {
		c.Yield()
		return
	}
	c.lazyYield = true
}

// Sync materialises a pending LazyYield at exactly this point, pinning
// the reschedule's position relative to the caller's subsequent effects.
// Call it before publishing state that other contexts read without a
// timing operation in between.
func (c *Context) Sync() {
	if c.lazyQuantum {
		c.lazyQuantum = false
		c.lazyYield = false // one reschedule satisfies both requests
		c.Yield()
	}
}

// BeginNoBlock opens a MustNotBlock section: until the matching
// EndNoBlock, a Park on this context panics. Dispatchers wrap
// run-to-completion handlers (message, fault, bulk-chunk bodies; the
// hardware directory's atomic coherence action) in one, turning the
// paper's §5.1 "handlers run to completion" contract into an assertion.
// Yields are still allowed — quantum and resume yields reschedule without
// blocking on an external wakeup.
func (c *Context) BeginNoBlock() { c.noBlock++ }

// EndNoBlock closes the innermost MustNotBlock section.
func (c *Context) EndNoBlock() { c.noBlock-- }

// Park suspends the context until another entity calls Unpark. The reason
// string appears in deadlock reports. If an Unpark raced ahead of the
// Park (the wakeup was issued while the context was still running), Park
// consumes it and returns immediately.
func (c *Context) Park(reason string) {
	c.checkRunning("Park")
	c.Sync()
	if c.noBlock > 0 {
		panic(fmt.Sprintf("sim: context %q parked (%s) inside a MustNotBlock section: run-to-completion handler blocked", c.name, reason))
	}
	if c.pendingUnpark {
		c.pendingUnpark = false
		if c.pendingAt > c.time {
			c.time = c.pendingAt
		}
		c.Yield() // still reschedule so earlier entities run first
		return
	}
	c.parkReason = reason
	c.state = StateParked
	c.suspend()
}

// Unpark makes a parked context runnable no earlier than simulated time
// at. Calling Unpark on a context that is not parked records a pending
// wakeup that its next Park consumes. Unpark must be called while holding
// the conch of the target's shard — i.e. from a running context or event
// on the same shard (simulated interactions are node-local; cross-shard
// wakeups travel as timed events or through a Barrier), or from the
// coordinator between windows.
func (c *Context) Unpark(at Time) {
	c.sh.syncRunning()
	switch c.state {
	case StateParked:
		if at > c.time {
			c.time = at
		}
		c.parkReason = ""
		c.state = StateRunnable
		c.sh.runnable.push(c)
	case StateDone:
		// Late wakeup for a finished context; ignore.
	default:
		c.pendingUnpark = true
		if at > c.pendingAt {
			c.pendingAt = at
		}
	}
}

func (c *Context) onDispatched() {
	c.state = StateRunning
	c.lastYield = c.time
	c.sh.running = c
	c.sh.now = c.time
}

func (c *Context) checkRunning(op string) {
	if c.sh.running != c {
		panic(fmt.Sprintf("sim: %s called on context %q which is not running (state %v)", op, c.name, c.state))
	}
}

// AtEvent schedules ev to fire at absolute simulated time t. Events run
// on the scheduler, may not block, and execute before any context whose
// clock is later than t. Equal-time events fire in a deterministic
// order: origin-less events (this method) in scheduling order, before
// any origin-keyed event (AtEventFrom) at the same time. Origin-less
// events live on shard 0 and require a serial engine.
func (e *Engine) AtEvent(t Time, ev Event) {
	if len(e.sh) > 1 {
		panic("sim: origin-less events require a serial engine; use AtEventFrom")
	}
	s := e.sh[0]
	s.syncRunning()
	if now := s.clock(); t < now {
		t = now
	}
	e.evSeqAnon++
	s.events.push(evItem{t: t, key: packedKey(-1, e.evSeqAnon), ev: ev})
}

// AtEventFrom schedules ev to fire at absolute simulated time t on behalf
// of origin (a simulated node), on origin's own shard. Equal-time events
// order by the stable key (origin, per-origin sequence) — a function of
// the origin's own scheduling history only, which is what makes sharded
// execution meet the serial fire order exactly. The caller must be
// executing on origin's shard.
func (e *Engine) AtEventFrom(t Time, origin int, ev Event) {
	e.AtEventFromTo(t, origin, origin, ev)
}

// AtEventFromTo is AtEventFrom with the event fired on the shard that
// owns dest (the node whose state ev mutates): a cross-shard event is
// staged in the origin shard's outbox and merged into dest's heap at the
// next window boundary. t must be at least the cross-shard delivery
// lookahead (WithCrossShardDelivery; at minimum one base window) in the
// future whenever dest lives on another shard — true by construction for
// network packets, whose base latency bounds the lookahead from above
// while contention only delays delivery further.
func (e *Engine) AtEventFromTo(t Time, origin, dest int, ev Event) {
	s := e.sh[e.ShardOf(origin)]
	s.syncRunning()
	if now := s.clock(); t < now {
		t = now
	}
	if origin >= len(e.evSeqs) {
		// Serial engines without WithShards size the table on demand;
		// sharded engines pre-size it (ShardOf bounds origin).
		e.evSeqs = append(e.evSeqs, make([]uint64, origin+1-len(e.evSeqs))...)
	}
	e.evSeqs[origin]++
	it := evItem{t: t, key: packedKey(origin, e.evSeqs[origin]), ev: ev}
	if ds := e.ShardOf(dest); ds != s.id {
		// Window-safety invariant: a cross-shard event is staged in the
		// outbox and merged only at the next window boundary, so one
		// scheduled below the destination shard's granted bound would be
		// delivered late — silently, and differently at different shard
		// counts. That means the caller's lookahead claim (e.g. the
		// network latency bounding the planner's lookahead) is broken;
		// fail loudly instead of corrupting determinism, naming the
		// event's stable (time, origin, seq) key, both shards, and the
		// granted bounds so the broken bound is debuggable from the panic
		// alone. Limits are infTime on a serial engine, so the check only
		// bites under sharded execution, where it matters.
		if d := e.sh[ds]; t < d.limit {
			panic(fmt.Sprintf(
				"sim: cross-shard event (time %d, origin %d, seq %d) from shard %d to node %d on shard %d lands inside the current window (granted bound %d, origin shard's bound %d, base window %d, delivery lookahead %d): lookahead too small for the scheduling horizon",
				t, origin, e.evSeqs[origin], s.id, dest, ds, d.limit, s.limit, e.window, e.minDelivery))
		}
		s.outbox = append(s.outbox, outItem{sh: int32(ds), it: it})
	} else {
		s.events.push(it)
	}
}

// AfterEvent schedules ev to fire delta cycles after the current global
// time.
func (e *Engine) AfterEvent(delta Time, ev Event) { e.AtEvent(e.Now()+delta, ev) }

// AfterEventFrom schedules ev delta cycles after origin's current shard
// time, on origin's shard.
func (e *Engine) AfterEventFrom(delta Time, origin int, ev Event) {
	e.AtEventFrom(e.NowFor(origin)+delta, origin, ev)
}

// At schedules fn to run at absolute simulated time t.
func (e *Engine) At(t Time, fn func()) { e.AtEvent(t, funcEvent(fn)) }

// After schedules fn delta cycles after the current global time.
func (e *Engine) After(delta Time, fn func()) { e.AtEvent(e.Now()+delta, funcEvent(fn)) }

// AfterFrom schedules fn delta cycles after origin's current shard time,
// on origin's shard.
func (e *Engine) AfterFrom(delta Time, origin int, fn func()) {
	e.AtEventFrom(e.NowFor(origin)+delta, origin, funcEvent(fn))
}

// dispatch hands the conch to c. A stepper at a boundary runs inline on
// the acting scheduler goroutine; everything else (goroutine bodies,
// steppers suspended mid-step on a host goroutine) trades the conch over
// the single-slot channels. A needG stepper always has a live host
// goroutine awaiting its resumeCh — the standby goroutine, or a retired
// scheduler goroutine that stayed behind at the mid-step hand-off — so
// the standby is spawned only for a boundary dispatch forced through the
// channel protocol (WithGoroutineDispatch).
func (s *shard) dispatch(c *Context) {
	if c.step != nil && !c.needG && !s.eng.forceG {
		s.dstats.InlineDispatches++
		s.dispatchInline(c)
		s.running = nil
		return
	}
	s.dstats.GoroutineSwitches++
	if c.step != nil {
		s.dstats.StepperFallbacks++
		if !c.gStarted && !c.needG {
			c.gStarted = true
			go c.stepperRun()
		}
	}
	c.resumeCh <- struct{}{}
	<-s.backCh
	s.running = nil
}

// dispatchInline runs one stepper activation on the acting scheduler
// goroutine. A panic in a step body becomes the shard's abort error,
// exactly as a goroutine body's panic would; schedUnwind and
// shutdownSignal keep unwinding through the host's frames.
func (s *shard) dispatchInline(c *Context) {
	defer func() {
		s.inline = nil
		if r := recover(); r != nil {
			switch r.(type) {
			case schedUnwind, shutdownSignal:
				panic(r)
			}
			s.abort = contextPanicError(c.name, r)
			c.state = StateDone
		}
	}()
	c.onDispatched()
	s.inline = c
	c.runSteps()
}

// scheduleLoop is the scheduler: fire due events, dispatch runnable
// contexts in (time, prio, id) order, both bounded by the shard's window
// limit (infTime when serial). It returns true when the machine aborts,
// goes quiescent (serial), or the run ends at a window boundary
// (sharded). It returns false when this goroutine loses the scheduler
// role: a stepper it hosted inline suspended mid-step and handed the
// role to a spare (Context.suspend); once the suspended activation
// completes back on this goroutine, the stale loop observes the newer
// schedGen, hands the conch to the acting scheduler, and retires.
//
// park is the goroutine's spare-pool registration channel, nil for the
// serial root goroutine (which re-acquires the role via rootWake
// instead). It is re-registered before the conch is released, so the
// pool is only ever mutated conch-held.
func (s *shard) scheduleLoop(park chan struct{}) (done bool) {
	for {
		if s.runWindow(park) {
			// Lost the role to a mid-step suspension; runWindow already
			// handed the conch back and re-registered park in the pool.
			return false
		}
		// Window exhausted (or abort/quiescence): serial runs are over,
		// sharded shards trade the window for the next one.
		if s.limit != infTime && s.windowBoundary() {
			continue
		}
		break
	}
	if park != nil && s.limit == infTime {
		// A spare observed the end of a serial run: hand the scheduler
		// role (and the conch) back to the root goroutine, which
		// finishes Run. Sharded shards end at a window boundary instead
		// (their grant channel closes at teardown).
		s.spareWakes = append(s.spareWakes, park)
		s.rootWake <- struct{}{}
	}
	return true
}

// runWindow runs the shard's current window: fire due events, dispatch
// runnable contexts in (time, prio, id) order, both bounded by the
// shard's window limit (infTime when serial). It returns false when the
// window is exhausted — nothing left before the limit, the shard went
// quiescent (serial), or the shard aborted — with the caller still
// holding the scheduler role. It returns true when this goroutine loses
// the role instead: a stepper it hosted inline suspended mid-step and
// handed the role to a spare (Context.suspend); once the suspended
// activation completes back on this goroutine, the stale frame observes
// the newer schedGen, re-registers park (nil for the serial root), hands
// the conch to the acting scheduler, and retires.
func (s *shard) runWindow(park chan struct{}) (lost bool) {
	s.loopIsRoot = park == nil
	gen := s.schedGen
	for {
		if s.abort != nil {
			// Serial: the run is over. Sharded: retire the window so the
			// round's merger folds the abort and tears the run down.
			return false
		}
		// Run every event that is due before (or at) the next context.
		nextCtx := infTime
		if s.runnable.len() > 0 {
			nextCtx = s.runnable.a[0].time
		}
		if s.events.len() > 0 && s.events.a[0].t <= nextCtx && s.events.a[0].t < s.limit {
			ev := s.events.pop()
			if ev.t > s.now {
				s.now = ev.t
			}
			s.running = nil
			ev.ev.Fire()
			continue
		}
		if nextCtx >= s.limit {
			return false
		}
		s.dispatch(s.runnable.pop())
		if s.schedGen != gen {
			// The role moved on while this goroutine hosted a suspended
			// step; the activation has completed, so hand the conch to
			// the acting scheduler and retire this frame.
			if park != nil {
				s.spareWakes = append(s.spareWakes, park)
			}
			s.backCh <- struct{}{}
			return true
		}
	}
}

// windowBoundary retires the shard's window. The last granted shard to
// arrive here (the outstanding counter's decrement reaches zero) becomes
// the round's merger: it owns every shard's state — all other granted
// shards have parked on their grant channels, and the atomic decrement
// chain publishes their writes — so it merges the boundary and plans and
// grants the next round inline (runRound). If the merger granted itself
// it continues immediately with zero channel operations — the
// single-active-shard fast path; otherwise it parks like everyone else.
// It returns false when the run ends (teardown closed the grant
// channel) instead of granting this shard another window.
func (s *shard) windowBoundary() bool {
	e := s.eng
	if e.outstanding.Add(-1) == 0 {
		if e.runRound(s) {
			return true
		}
	}
	_, ok := <-s.grantCh
	return ok
}

// runRound runs one boundary round as the acting merger (self is the
// merging shard, nil when called by Run's goroutine for round zero):
// merge cross-shard effects, then plan and grant the next round's
// windows. It returns whether self was granted a window and may continue
// scheduling without touching its grant channel. When nothing is
// grantable (quiescence or abort) it tears the run down instead: every
// grant channel closes (ending all shard schedulers) and runDone
// releases Run.
func (e *Engine) runRound(self *shard) bool {
	e.mergeBoundary()
	var grants []*shard
	selfGranted := false
	if e.abort == nil {
		grants, selfGranted = e.planRound(self)
	}
	if len(grants) == 0 {
		e.teardown()
		return false
	}
	// Publish the round size before any token send: a granted shard may
	// finish its window and decrement immediately. After the final token
	// send this goroutine touches no shared planning state — the grant
	// list reads all precede their sends, and only self (whose own later
	// decrement orders everything it does) can sit past the last send —
	// so the next merger, which cannot exist until every token has
	// landed, races with nothing here.
	e.outstanding.Store(int64(len(grants)))
	for _, s := range grants {
		if s != self {
			s.grantCh <- struct{}{}
		}
	}
	return selfGranted
}

// teardown ends a sharded run: every grant channel closes (ending all
// shard schedulers in concurrent mode; cooperative mode has no parked
// receivers) and runDone releases Run's goroutine.
func (e *Engine) teardown() {
	for _, s := range e.sh {
		close(s.grantCh)
	}
	close(e.runDone)
}

// roundCoop runs one boundary round in cooperative mode: merge the
// window's cross-shard effects, plan the next round, and queue the
// granted shards for the chain goroutine to run sequentially. It returns
// the first shard of the new round, or nil after tearing the run down
// (quiescence or abort). No tokens and no outstanding counter: the chain
// goroutine owns every shard's state the whole time, handing it off only
// through the spare-scheduler machinery on mid-step suspension.
func (e *Engine) roundCoop() *shard {
	e.mergeBoundary()
	var grants []*shard
	if e.abort == nil {
		grants, _ = e.planRound(nil)
	}
	if len(grants) == 0 {
		e.teardown()
		return nil
	}
	e.coopGrants, e.coopNext = grants, 1
	return grants[0]
}

// drive is the cooperative chain: run the current shard's window, then
// the rest of the round's queue in shard order, then merge and plan the
// next round, repeating until teardown (returns nil) or until a mid-step
// suspension hands the chain to a spare (returns the shard whose pool
// this goroutine joined, so its own wake resumes that shard's window).
func (e *Engine) drive(s *shard, park chan struct{}) *shard {
	for {
		if s.runWindow(park) {
			return s
		}
		if e.coopNext < len(e.coopGrants) {
			s = e.coopGrants[e.coopNext]
			e.coopNext++
			continue
		}
		if s = e.roundCoop(); s == nil {
			return nil
		}
	}
}

// chainDriver is the cooperative mode's initial chain goroutine: it
// plans round zero and drives windows until the run tears down or it
// becomes a suspended step's host (then it parks in that shard's spare
// pool like any other retired scheduler and may be woken to drive
// again). A shutdownSignal unwinding out of a hosted step's frames (the
// run finished while the step was still suspended) retires it.
func (e *Engine) chainDriver() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); !ok {
				panic(r)
			}
		}
	}()
	s := e.roundCoop()
	if s == nil {
		return
	}
	wake := make(chan struct{}, 1)
	for {
		if s = e.drive(s, wake); s == nil {
			return
		}
		select {
		case <-wake:
		case <-e.shutdown:
			return
		}
	}
}

// satAdd is saturating Time addition: sums that would wrap pin to
// infTime (an unbounded limit), keeping infTime a fixed point.
func satAdd(a, b Time) Time {
	if c := a + b; c >= a {
		return c
	}
	return infTime
}

// planRound computes every shard's next window limit, collects the
// granted shards into the reusable grant scratch, and reports whether
// self was granted. Runs merger-side with every shard's state owned, and
// allocation-free (BenchmarkWindowGrant pins that).
//
// Fixed mode replicates the legacy lockstep plan: every shard gets
// limit = M + window, M the earliest pending item machine-wide.
//
// Adaptive mode grants each shard x the closed-form bound
//
//	limit(x) = min( m_excl(x) + LA,  base(x) + 2·LA,  gBar )
//
// where base(s) is shard s's earliest pending item, m_excl(x) the
// smallest base over the other shards, LA the cross-shard delivery
// lookahead, and gBar a lower bound on the earliest upcoming barrier
// release (releaseLB). Soundness: anything another shard does happens at
// or after its base, so its earliest effect on x is a delivery at
// m_excl(x)+LA; x's own actions (at ≥ base(x)) can come back to x only
// via a round trip through some other shard, ≥ base(x)+2·LA — which also
// bounds the case where every other shard is idle (m_excl = ∞) without
// letting x run unboundedly; and barrier releases, the one wakeup that
// is not a timed event, are bounded below by gBar for every shard, so no
// shard's processed frontier can pass a release it has not seen. Every
// term is ≥ M + window (ect and base are ≥ M; LA ≥ window; barrier
// latency ≥ window), so adaptive windows are never narrower than the
// legacy fixed plan — same progress guarantee, strictly fewer rounds.
func (e *Engine) planRound(self *shard) (grants []*shard, selfGranted bool) {
	// Two-smallest scan of the shard bases: m1 the global minimum M (held
	// by shard i1), m2 the runner-up, so m_excl(x) is m2 for x == i1 and
	// m1 otherwise (ties make them equal, either is correct).
	m1, m2 := infTime, infTime
	i1 := -1
	for _, s := range e.sh {
		b := s.nextTime()
		s.base = b
		if b < m1 {
			m1, m2, i1 = b, m1, s.id
		} else if b < m2 {
			m2 = b
		}
	}
	if m1 == infTime {
		return nil, false // quiescent (or deadlocked) machine-wide
	}
	grants = e.grantScratch[:0]
	la := e.minDelivery
	fixed := m1 + e.window
	gBar := infTime
	if !e.fixedWindow {
		for _, b := range e.barriers {
			if lb := e.releaseLB(b, m1, m2, i1, la); lb < gBar {
				gBar = lb
			}
		}
	}
	for _, s := range e.sh {
		limit := fixed
		if !e.fixedWindow {
			mx := m1
			if s.id == i1 {
				mx = m2
			}
			limit = satAdd(mx, la)
			if rt := satAdd(s.base, 2*la); rt < limit {
				limit = rt
			}
			if gBar < limit {
				limit = gBar
			}
		}
		s.limit = limit
		// Idle shards (nothing before their bound) keep their conch with
		// the merger: granting them would only bounce an empty window
		// over the channels. A shard quiescent until T simply reports T
		// as its base and stays ungranted until some bound passes T.
		if s.base < limit {
			grants = append(grants, s)
			if s == self {
				selfGranted = true
			}
			width := uint64(limit - s.base)
			e.winGrants++
			e.winWidthSum += width
			if width >= uint64(2*e.window) {
				e.winBatched++
			}
		}
	}
	return grants, selfGranted
}

// releaseLB lower-bounds barrier b's next release time: the release
// fires latency cycles after the last of its n arrivals, so with k
// arrivals still missing it cannot fire before (k-th smallest earliest
// arrival among the contexts that could still arrive, or the latest
// already-staged arrival if later) + latency. A context's earliest
// arrival (ect) is its own clock, pushed out for parked contexts to the
// earliest wakeup the machine could deliver: the shard's own next item,
// a cross-shard delivery at m_excl+LA, or — for a context waiting at a
// different barrier — that barrier's own release lower bound.
func (e *Engine) releaseLB(b *Barrier, m1, m2 Time, i1 int, la Time) Time {
	// Planning runs after mergeStaged, so this boundary's arrivals are
	// already folded into waiting (and a complete barrier has released
	// and reset), leaving k ≥ 1 arrivals outstanding.
	k := b.n - len(b.waiting)
	ect := e.ectScratch[:0]
	for _, c := range e.nonDaemons {
		if c.atBarrier == b || c.state == StateDone {
			continue
		}
		t := c.time
		if c.state == StateParked {
			s := c.sh
			wake := s.base
			mx := m1
			if s.id == i1 {
				mx = m2
			}
			if w := satAdd(mx, la); w < wake {
				wake = w
			}
			if ob := c.atBarrier; ob != nil {
				// Waiting at another barrier: woken by its release, which
				// fires ≥ latency after its last arrival (≥ M, and ≥ the
				// arrivals it has already staged).
				r := m1
				if ob.maxTime > r {
					r = ob.maxTime
				}
				if r = satAdd(r, ob.latency); r < wake {
					wake = r
				}
			}
			if wake > t {
				t = wake
			}
		}
		ect = append(ect, t)
	}
	if len(ect) < k {
		return infTime // cannot complete: not enough live arrivers
	}
	var kth Time
	if len(ect) == k {
		// Every live context must arrive (the common compute-phase case):
		// the k-th smallest is the maximum, no sort needed.
		for _, t := range ect {
			if t > kth {
				kth = t
			}
		}
	} else {
		slices.Sort(ect) // in-place on the scratch: allocation-free
		kth = ect[k-1]
	}
	if b.maxTime > kth {
		kth = b.maxTime
	}
	return satAdd(kth, b.latency)
}

// wakeScheduler hands the scheduler role to a spare goroutine, starting
// one if the pool is empty. Called conch-held by a goroutine about to
// become a suspended stepper's host; the conch transfers with the wake.
func (s *shard) wakeScheduler() {
	if n := len(s.spareWakes); n > 0 {
		ch := s.spareWakes[n-1]
		s.spareWakes = s.spareWakes[:n-1]
		ch <- struct{}{}
		return
	}
	go s.spareScheduler()
}

// spareScheduler hosts the scheduler loop whenever the role is handed
// off. Between turns the goroutine parks in the spare pool; engine
// shutdown releases it. A shutdownSignal unwinding out of a hosted
// step's frames (the run finished while the step was still suspended)
// retires it too.
func (s *shard) spareScheduler() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); !ok {
				panic(r)
			}
		}
	}()
	e := s.eng
	wake := make(chan struct{}, 1)
	cur := s
	for {
		if e.coop {
			// Cooperative rounds: the woken spare holds cur's role
			// mid-window and continues the whole chain — cur's window,
			// the rest of the round's queue, and every following round —
			// until teardown or until it too becomes a suspended step's
			// host (drive reports which shard's pool it joined).
			if cur = e.drive(cur, wake); cur == nil {
				return
			}
		} else {
			s.scheduleLoop(wake) // registers wake in the pool before releasing the conch
		}
		select {
		case <-wake:
		case <-e.shutdown:
			return
		}
	}
}

// shardScheduler is a shard's initial scheduler goroutine under sharded
// execution: it waits for the first window token (the limit was written
// by the planning round that sent it), then schedules exactly like a
// spare — if it loses the role to a mid-step suspension it parks in the
// pool, and whichever goroutine holds the role retires windows at each
// boundary (windowBoundary), merging and planning rounds itself when it
// is the last one standing.
func (s *shard) shardScheduler() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); !ok {
				panic(r)
			}
		}
	}()
	if _, ok := <-s.grantCh; !ok {
		return
	}
	wake := make(chan struct{}, 1)
	for {
		s.scheduleLoop(wake)
		select {
		case <-wake:
		case <-s.eng.shutdown:
			return
		}
	}
}

// Run drives the simulation until every non-daemon context finishes and
// the machine is quiescent (no runnable contexts, no pending events). It
// returns an error if a context panicked or if the machine deadlocked with
// unfinished work.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	defer func() {
		e.finished = true
		close(e.shutdown) // release daemon goroutines
		var d DispatchStats
		for _, s := range e.sh {
			d.add(s.dstats)
		}
		e.dstats = d
		fleet.inline.Add(d.InlineDispatches)
		fleet.switches.Add(d.GoroutineSwitches)
		fleet.fallbacks.Add(d.StepperFallbacks)
		fleet.parks.Add(d.ParksAvoided)
		fleet.steps.Add(d.InlineSteps)
		fleet.gsteps.Add(d.GoroutineSteps)
		fleet.suspends.Add(d.InlineSuspends)
		fleet.wgrants.Add(e.winGrants)
		fleet.wbatched.Add(e.winBatched)
		fleet.wwidth.Add(e.winWidthSum)
	}()

	if len(e.sh) == 1 {
		e.runSerial()
	} else {
		e.runSharded()
	}

	if e.abort != nil {
		return e.abort
	}
	var waiting []string
	var now Time
	for _, s := range e.sh {
		if s.now > now {
			now = s.now
		}
	}
	for _, c := range e.contexts {
		if c.daemon || c.state == StateDone {
			continue
		}
		waiting = append(waiting, fmt.Sprintf("%s@%d(%s: %s)", c.name, c.time, c.state, c.parkReason))
	}
	if len(waiting) > 0 {
		sort.Strings(waiting)
		return fmt.Errorf("sim: deadlock at cycle %d; blocked contexts: %s", now, strings.Join(waiting, ", "))
	}
	return nil
}

// runSerial hosts shard 0's scheduler on the calling (root) goroutine,
// re-acquiring the role whenever a spare finishes the run while the root
// stack hosts a suspended step.
func (e *Engine) runSerial() {
	s := e.sh[0]
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(schedUnwind); !ok {
					panic(r)
				}
			}
		}()
		for {
			if s.scheduleLoop(nil) {
				return
			}
			// The root goroutine lost the scheduler role to a spare while
			// hosting a suspended step; the step has completed and the
			// conch moved on. Wait for the role grant at the end of the
			// run (or, if another hosted step pins this stack first, the
			// grant arrives at rootHostAwait and unwinds to here).
			<-s.rootWake
		}
	}()
	e.abort = s.abort
}

// runSharded boots the floating-coordinator rounds: there is no
// dedicated coordinator goroutine. Run's goroutine plans and grants
// round zero (runRound with no self), then waits for the round chain to
// tear itself down — each boundary is merged and the next round planned
// by the last granted shard to exhaust its window (windowBoundary). The
// grant tokens and the outstanding counter's atomic decrement chain are
// the only cross-goroutine synchronisation: both carry every shard's
// state from one round's merger to the next.
func (e *Engine) runSharded() {
	e.prepareWindows()
	e.coop = e.coopForce > 0 || (e.coopForce == 0 && runtime.GOMAXPROCS(0) == 1)
	if e.coop {
		// Single schedulable CPU (or forced): one chain goroutine runs
		// every granted window sequentially — no shard scheduler
		// goroutines, no tokens, no per-round switches. Run's goroutine
		// only waits: the chain may outlive its first goroutine (spares
		// inherit it across mid-step suspensions), and a chain goroutine
		// stuck hosting a never-resuming step at run end must not be
		// Run's own stack.
		go e.chainDriver()
		<-e.runDone
		return
	}
	for _, s := range e.sh {
		go s.shardScheduler()
	}
	e.runRound(nil)
	<-e.runDone
}

// prepareWindows builds the planner's scratch state: the non-daemon
// context list the barrier bound scans, and its ect scratch buffer.
// Sharded engines forbid mid-run spawns, so the list is complete at Run
// start and planning rounds stay allocation-free.
func (e *Engine) prepareWindows() {
	for _, c := range e.contexts {
		if !c.daemon {
			e.nonDaemons = append(e.nonDaemons, c)
		}
	}
	e.ectScratch = make([]Time, 0, len(e.nonDaemons))
	e.grantScratch = make([]*shard, 0, len(e.sh))
}

// mergeBoundary integrates one window's cross-shard effects while the
// acting merger owns every shard's conch: outbox events are pushed
// into their destination heaps (the stable event key already fixes the
// fire order, so insertion order is immaterial), completed barriers
// release their waiters, and shard aborts fold — by shard id, so the
// reported error is deterministic — into the engine abort.
func (e *Engine) mergeBoundary() {
	for _, s := range e.sh {
		for i, o := range s.outbox {
			e.sh[o.sh].events.push(o.it)
			s.outbox[i] = outItem{} // drop the Event reference
		}
		s.outbox = s.outbox[:0]
		if s.abort != nil && e.abort == nil {
			e.abort = s.abort
		}
	}
	if e.abort != nil {
		return
	}
	for _, b := range e.barriers {
		b.mergeStaged()
	}
}

// The heaps below are index-based 4-ary min-heaps (children of i are
// 4i+1..4i+4). Compared to container/heap they avoid the interface{}
// boxing on every Push/Pop (an allocation per scheduled event) and halve
// the tree depth, trading a slightly wider sibling scan on sift-down —
// the classic d-ary trade that favours push-heavy workloads like event
// scheduling. Both orderings are strict total orders, so pop order is
// the unique sorted order and independent of arity.

// evItem is a scheduled occurrence, ordered by the stable key
// (t, origin, per-origin seq); seq is unique per origin, so the key is a
// strict total order that does not depend on the interleaving of
// origins. The (origin, seq) pair is packed into one word — origin+1 in
// the top bits so origin-less events (packedKey's origin -1) sort before
// every node origin, seq below — keeping the item at 32 bytes and the
// comparison at two branches.
type evItem struct {
	t   Time
	key uint64
	ev  Event
}

// evSeqBits is the per-origin sequence field width: 2^40 events per
// origin per run is beyond any simulation this engine will host.
const evSeqBits = 40

// packedKey builds an evItem tie-break key from an origin (-1 for
// origin-less events) and its per-origin sequence number.
func packedKey(origin int, seq uint64) uint64 {
	return uint64(origin+1)<<evSeqBits | seq
}

func evLess(a, b evItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.key < b.key
}

type evHeap struct{ a []evItem }

func (h *evHeap) len() int { return len(h.a) }

func (h *evHeap) push(it evItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *evHeap) pop() evItem {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = evItem{} // drop the Event reference
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if evLess(a[j], a[m]) {
				m = j
			}
		}
		if !evLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// ctxLess orders runnable contexts: earliest local time first, compute
// contexts before daemons on ties, then creation order. (time, prio, id)
// is a strict total order because ids are unique.
func ctxLess(a, b *Context) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

type ctxHeap struct{ a []*Context }

func (h *ctxHeap) len() int { return len(h.a) }

func (h *ctxHeap) push(c *Context) {
	h.a = append(h.a, c)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ctxLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *ctxHeap) pop() *Context {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if ctxLess(a[j], a[m]) {
				m = j
			}
		}
		if !ctxLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}
