// Package sim provides a deterministic, cooperative discrete-event engine.
//
// The engine plays the role the Wisconsin Wind Tunnel plays in the paper:
// it hosts one context per simulated instruction stream (a compute
// processor's thread, a network-interface processor's dispatch loop) and
// interleaves them in global cycle order. Exactly one context runs at a
// time (cooperative "conch" scheduling), so simulated state needs no
// locking and every run of the same configuration is bit-identical.
//
// Contexts account for their own local time with Advance and interact with
// the rest of the machine only at explicit points: Yield, Park/Unpark, and
// timed events. Between interaction points a context may run ahead of the
// global clock by at most the engine's quantum, mirroring the
// direct-execution style of execution-driven simulators.
//
// Contexts come in two kinds. A goroutine context (Spawn, SpawnDaemon)
// hosts an arbitrary body on its own goroutine and trades the conch over
// a single-slot channel pair. A stepper context (SpawnStepper,
// SpawnStepperDaemon) is a run-to-completion dispatch loop — the WWT
// lineage's "protocol handlers are events, not threads" — that the
// scheduler invokes inline on its own goroutine with no channel handoff
// at all. When an inline-hosted step must suspend mid-flight (a
// materialised quantum yield, or a blocking wait), the goroutine running
// the scheduler stays behind as the suspended step's host and hands the
// scheduler role to a spare goroutine, so the scheduler stack is never
// pinned and every other stepper keeps dispatching inline; only the
// resumption of such a suspended step pays a channel handoff. Both hosts
// drive the identical state machine (same runnable pushes, same
// park/unpark transitions, same clock updates), so which goroutine hosts
// a step cannot affect simulated results.
//
// Scheduling is allocation-free on the steady-state path: runnable
// contexts and pending events live in index-based 4-ary min-heaps over
// slices that are reused across pushes, and events are stored as Event
// interface values (pointer-shaped, so scheduling a *T or a func boxes
// nothing). Because both heap orderings are strict total orders — events
// by (time, seq), contexts by (time, prio, id) — any min-heap pops them
// in exactly sorted order, so the heap's arity and internal layout cannot
// affect simulated results.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Time is a simulated clock value in processor cycles.
type Time uint64

// State describes a context's scheduling state.
type State uint8

// Context scheduling states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateParked
	StateDone
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	}
	return "invalid"
}

// DefaultQuantum bounds how far a context may run ahead of its last yield
// before it is forced back through the scheduler. It is a few network
// latencies (Table 2: 11 cycles) so a compute processor cannot starve
// its node's NP of overlap opportunities (prefetch, bulk transfer)
// for long; a larger quantum would trade that fidelity for fewer context
// switches, the same trade execution-driven simulators make.
const DefaultQuantum Time = 64

// shutdownSignal is panicked through a context goroutine when the engine
// tears down daemons after Run completes.
type shutdownSignal struct{}

// schedUnwind is panicked through suspended stepper frames pinning the
// root goroutine when the run ends first (abort, or quiescence while the
// step is parked mid-flight): the acting scheduler's final root grant
// arrives at the pinned frames instead of at Run's re-acquire loop, and
// they unwind to Run, which reports the outcome. Run recovers it.
type schedUnwind struct{}

// Step is a stepper context's body: one run-to-completion dispatch. It
// returns false when no work is pending, which suspends the context in
// the parked state (its idle reason) until the next Unpark; returning
// true immediately runs the next step with no scheduling point between
// steps.
type Step func(*Context) bool

// Context is a simulated instruction stream scheduled by an Engine.
type Context struct {
	eng  *Engine
	id   int
	name string

	time      Time
	lastYield Time
	state     State
	daemon    bool
	prio      uint8 // tie-break class: compute contexts (0) run before daemons (1)

	parkReason    string
	pendingUnpark bool
	pendingAt     Time

	resumeCh chan struct{}
	body     func(*Context)

	// Stepper state. step is non-nil for stepper contexts; idleReason is
	// the park reason reported while the stepper has no work. needG marks
	// a stepper whose current step is suspended mid-flight on a host
	// goroutine (it must be resumed there, over the channel protocol);
	// gStarted says the standby goroutine exists. noBlock counts active
	// MustNotBlock sections: Park panics while it is positive, asserting
	// run-to-completion handlers.
	step       Step
	idleReason string
	needG      bool
	gStarted   bool
	// rootHosted marks a suspended step whose host goroutine is the root
	// (the activation was dispatched inline by the root acting as
	// scheduler, then suspended). Such a step must wait with an ear on
	// rootWake: if the run ends while its frames pin the root stack, the
	// final role grant arrives there and unwinds them so Run can finish.
	rootHosted bool
	noBlock    int
	// lazyYield records a LazyYield request: the reschedule happens at
	// the context's next timing operation, or free of any frame
	// suspension at the current step's boundary. lazyQuantum records a
	// deferred quantum force-yield: it materialises only at the step
	// boundary, because a handler is atomic on the real hardware
	// (paper §4.2) and deferring the reschedule to the boundary keeps
	// the handler's shared-state effects on one side of the window.
	lazyYield   bool
	lazyQuantum bool
}

// ID returns the context's creation-order identifier.
func (c *Context) ID() int { return c.id }

// Name returns the context's diagnostic name.
func (c *Context) Name() string { return c.name }

// Time returns the context's local clock.
func (c *Context) Time() Time { return c.time }

// State returns the context's scheduling state.
func (c *Context) State() State { return c.state }

// Engine returns the engine that owns this context.
func (c *Context) Engine() *Engine { return c.eng }

// Event is a scheduled occurrence. Fire runs on the scheduler with the
// conch held (no context is running) and must not block. Implementing
// Fire on a pointer type lets callers schedule it with AtEvent/AfterEvent
// without allocating: pointer-shaped values box into the interface for
// free.
type Event interface{ Fire() }

// funcEvent adapts a plain callback to Event. Func values are
// pointer-shaped, so this conversion does not allocate either.
type funcEvent func()

func (f funcEvent) Fire() { f() }

// DispatchStats counts how the engine moved control between contexts.
// Inline dispatches and avoided parks are the stepper win: activations
// that cost a function call instead of a goroutine switch.
type DispatchStats struct {
	// InlineDispatches counts stepper activations executed inline on the
	// scheduler goroutine (zero channel handoffs).
	InlineDispatches uint64
	// GoroutineSwitches counts channel dispatches: every goroutine
	// context activation plus stepper fallbacks.
	GoroutineSwitches uint64
	// StepperFallbacks counts stepper dispatches that went over the
	// channel protocol: resumptions of a step suspended mid-flight on a
	// host goroutine, plus every dispatch under WithGoroutineDispatch.
	StepperFallbacks uint64
	// ParksAvoided counts idle parks taken inline: the stepper went idle
	// and suspended without a goroutine parking, and its next activation
	// needs no goroutine wakeup either.
	ParksAvoided uint64
	// InlineSteps counts handler steps executed inline (several steps can
	// run back-to-back within one inline dispatch).
	InlineSteps uint64
	// GoroutineSteps counts handler steps executed on a host goroutine
	// after a mid-step suspension (or under WithGoroutineDispatch).
	// InlineSteps+GoroutineSteps is the total number of protocol
	// dispatches (paper §5.1: one step = one message, fault, or bulk
	// chunk dispatched by the NP loop).
	GoroutineSteps uint64
	// InlineSuspends counts inline steps that suspended mid-step (a
	// materialised quantum yield or a blocking wait): each hands the
	// scheduler role to a spare goroutine so other steppers keep
	// dispatching inline.
	InlineSuspends uint64
}

// fleet aggregates dispatch stats across every engine in the process
// (atomically, so parallel harness workers may fold concurrently);
// cmd/bench reports it after a sweep.
var fleet struct {
	inline, switches, fallbacks, parks, steps, gsteps, suspends atomic.Uint64
}

// FleetDispatchStats returns the process-wide dispatch totals across all
// engines that have finished Run.
func FleetDispatchStats() DispatchStats {
	return DispatchStats{
		InlineDispatches:  fleet.inline.Load(),
		GoroutineSwitches: fleet.switches.Load(),
		StepperFallbacks:  fleet.fallbacks.Load(),
		ParksAvoided:      fleet.parks.Load(),
		InlineSteps:       fleet.steps.Load(),
		GoroutineSteps:    fleet.gsteps.Load(),
		InlineSuspends:    fleet.suspends.Load(),
	}
}

// Engine schedules contexts and timed events in global cycle order.
type Engine struct {
	quantum  Time
	now      Time
	contexts []*Context
	runnable ctxHeap
	events   evHeap
	evSeq    uint64

	running *Context
	// inline is the stepper whose activation is currently executing on
	// the acting scheduler goroutine, nil when none is. It is cleared
	// the moment such an activation suspends mid-step: the goroutine
	// hands the scheduler role to a spare (Context.suspend) and stays
	// behind as the suspended step's host, so the scheduler stack is
	// never pinned and every other stepper keeps dispatching inline.
	inline   *Context
	forceG   bool // dispatch every stepper via its goroutine (validation)
	backCh   chan struct{}
	shutdown chan struct{}
	started  bool
	finished bool

	// Scheduler-role hand-off state (all mutated only with the conch
	// held). schedGen increments at each hand-off; a scheduler loop that
	// observes a generation newer than its own has lost the role.
	// loopIsRoot says whether the acting scheduler is the root goroutine
	// (the one inside Run); rootWake grants the role back to it.
	// spareWakes is the pool of parked spare scheduler goroutines.
	schedGen   uint64
	loopIsRoot bool
	rootWake   chan struct{}
	spareWakes []chan struct{}

	dstats DispatchStats

	abort error // first panic captured from a context
}

// Option configures an Engine.
type Option func(*Engine)

// WithQuantum sets the run-ahead quantum in cycles. Zero keeps the default.
func WithQuantum(q Time) Option {
	return func(e *Engine) {
		if q > 0 {
			e.quantum = q
		}
	}
}

// WithGoroutineDispatch forces every stepper activation through its
// standby goroutine — the pre-stepper execution model. Both hosts drive
// the same state machine, so results are bit-identical either way; the
// option exists so tests can assert exactly that.
func WithGoroutineDispatch() Option {
	return func(e *Engine) { e.forceG = true }
}

// NewEngine returns an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		quantum: DefaultQuantum,
		// Single-slot resume protocol: the conch trade is a pair of
		// capacity-1 channels, so neither side's send ever blocks (at
		// most one token is in flight in each direction) and a dispatch
		// costs one blocking receive per side instead of two rendezvous.
		backCh:   make(chan struct{}, 1),
		shutdown: make(chan struct{}),
		rootWake: make(chan struct{}, 1),
	}
	e.runnable.a = make([]*Context, 0, 64)
	e.events.a = make([]evItem, 0, 256)
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the global clock: the local time of the entity (context or
// event) that is currently executing, including any cycles the running
// context has accumulated since it was dispatched.
func (e *Engine) Now() Time {
	if e.running != nil {
		return e.running.time
	}
	return e.now
}

// Quantum returns the engine's run-ahead quantum.
func (e *Engine) Quantum() Time { return e.quantum }

// DispatchStats returns the engine's dispatch counters so far.
func (e *Engine) DispatchStats() DispatchStats { return e.dstats }

// Spawn creates a context that must finish before Run can succeed.
// Spawning is allowed both before Run and from inside a running context or
// event; the new context starts at the current global time.
func (e *Engine) Spawn(name string, body func(*Context)) *Context {
	c := e.spawn(name, false)
	c.body = body
	c.gStarted = true
	go c.run()
	return c
}

// SpawnDaemon creates a context that services the machine (for example an
// NP dispatch loop). Run does not wait for daemons to finish; they are
// torn down after all non-daemon contexts complete and the event queue
// drains. Daemons lose scheduling ties against regular contexts: a
// compute processor whose retried bus transaction and a service
// processor's next handler are due at the same cycle models the bus
// granting the retried access first, which is what guarantees forward
// progress in the simulated protocols.
func (e *Engine) SpawnDaemon(name string, body func(*Context)) *Context {
	c := e.spawn(name, true)
	c.body = body
	c.gStarted = true
	go c.run()
	return c
}

// SpawnStepper creates a stepper context: step is invoked inline by the
// scheduler, runs to completion, and returns false to idle the context
// under the given park reason until the next Unpark. The standby
// goroutine is created lazily, only if a step ever suspends while it
// cannot be hosted inline.
func (e *Engine) SpawnStepper(name string, step Step, idleReason string) *Context {
	c := e.spawn(name, false)
	c.step = step
	c.idleReason = idleReason
	return c
}

// SpawnStepperDaemon is SpawnStepper for a daemon context (the NP
// dispatch loop: torn down at quiescence, loses scheduling ties).
func (e *Engine) SpawnStepperDaemon(name string, step Step, idleReason string) *Context {
	c := e.spawn(name, true)
	c.step = step
	c.idleReason = idleReason
	return c
}

func (e *Engine) spawn(name string, daemon bool) *Context {
	var prio uint8
	if daemon {
		prio = 1
	}
	c := &Context{
		eng:       e,
		id:        len(e.contexts),
		name:      name,
		time:      e.now,
		lastYield: e.now,
		state:     StateRunnable,
		daemon:    daemon,
		prio:      prio,
		resumeCh:  make(chan struct{}, 1),
	}
	e.contexts = append(e.contexts, c)
	e.runnable.push(c)
	return c
}

func (c *Context) run() {
	defer c.goroutineExit()
	// Wait for the first dispatch before touching any simulated state.
	c.await()
	c.onDispatched()
	c.body(c)
}

// stepperRun hosts a stepper on its standby goroutine: each dispatch runs
// steps to the next boundary (exactly what an inline dispatch does) and
// hands the conch straight back. runSteps clears needG at the boundary —
// the next activation may be hosted inline again.
func (c *Context) stepperRun() {
	defer c.goroutineExit()
	for {
		c.await()
		c.onDispatched()
		c.runSteps()
		c.eng.backCh <- struct{}{}
	}
}

// goroutineExit is the shared teardown of a context goroutine: engine
// shutdown unwinds silently, a body panic is captured as the engine's
// abort error, and a finished body hands the conch back.
func (c *Context) goroutineExit() {
	if r := recover(); r != nil {
		if _, ok := r.(shutdownSignal); ok {
			return // engine teardown; nobody is waiting on backCh
		}
		c.eng.abort = fmt.Errorf("sim: context %q panicked: %v", c.name, r)
	}
	c.state = StateDone
	// Hand the conch back to the engine, unless the engine is gone.
	select {
	case c.eng.backCh <- struct{}{}:
	case <-c.eng.shutdown:
	}
}

// await blocks until the engine dispatches this context, panicking with
// shutdownSignal if the engine shut down instead.
func (c *Context) await() {
	select {
	case <-c.resumeCh:
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// runSteps executes step bodies back-to-back — the dispatch loop never
// reschedules between handlers (paper §5.1) — until the stepper goes
// idle, then takes the idle boundary exactly as Park would: a pending
// wakeup converts it into a reschedule, otherwise the context parks
// under its idle reason. The caller (inline dispatch or standby
// goroutine) regains control at the boundary.
func (c *Context) runSteps() {
	for {
		// Re-evaluated each step: a mid-step suspension hands the
		// scheduler role away, after which this goroutine is a plain
		// host and later steps of the activation are goroutine steps.
		if c.eng.inline == c {
			c.eng.dstats.InlineSteps++
		} else {
			c.eng.dstats.GoroutineSteps++
		}
		ok := c.step(c)
		if c.lazyYield || c.lazyQuantum {
			// A pending reschedule — a Resume or a deferred quantum
			// force-yield — reached the step boundary: take it by
			// returning to the scheduler runnable. Neither host suspends
			// a frame for this, which is what makes dispatch run inline.
			c.lazyYield = false
			c.lazyQuantum = false
			c.needG = false
			c.rootHosted = false
			c.state = StateRunnable
			c.eng.runnable.push(c)
			return
		}
		if ok {
			continue
		}
		if c.pendingUnpark {
			c.pendingUnpark = false
			if c.pendingAt > c.time {
				c.time = c.pendingAt
			}
			c.needG = false
			c.rootHosted = false
			c.state = StateRunnable
			c.eng.runnable.push(c)
			return
		}
		c.parkReason = c.idleReason
		c.state = StateParked
		c.needG = false
		c.rootHosted = false
		if c.eng.inline == c {
			c.eng.dstats.ParksAvoided++
		}
		return
	}
}

// Advance charges n cycles of local execution. If the context has run more
// than the engine quantum past its last scheduling point it yields so that
// other contexts (and pending events) catch up.
func (c *Context) Advance(n Time) {
	c.Sync()
	c.time += n
	if c.time-c.lastYield >= c.eng.quantum {
		if c.step != nil {
			// Steppers take the forced yield lazily: it materialises at
			// the next interaction point (the following Advance, a shared
			// memory or TLB access, an event or unpark) or for free at
			// the step boundary. Only context-local work sits between the
			// crossing and the materialisation point, so the scheduling
			// order other contexts observe is unchanged.
			c.lazyQuantum = true
		} else {
			c.Yield()
		}
	}
}

// AdvanceAtomic charges n cycles without any possibility of yielding. Use
// inside sections that must not observe interleaved simulated state. A
// pending LazyYield still materialises on entry — before the atomic
// section, never inside it.
func (c *Context) AdvanceAtomic(n Time) {
	c.Sync()
	c.time += n
}

// SyncTo moves the context's clock forward to t if it lags (idle time,
// charged without yielding). Service processors use it so a queued item
// is never handled before the simulated instant it was posted.
func (c *Context) SyncTo(t Time) {
	c.Sync()
	if t > c.time {
		c.time = t
	}
}

// Yield reschedules the context, letting every entity with an earlier (or
// equal, lower-id) clock run first.
func (c *Context) Yield() {
	c.checkRunning("Yield")
	c.state = StateRunnable
	c.eng.runnable.push(c)
	c.suspend()
}

// suspend blocks the calling goroutine until the context is dispatched
// again; the caller has just made the context runnable (Yield) or parked
// it (Park). A stepper suspending here is mid-step, so it marks needG:
// its frames live on this goroutine and the next dispatch must resume it
// here over the channel protocol. If this goroutine is the acting
// scheduler (the activation was hosted inline), it first hands the
// scheduler role to a spare goroutine — bumping schedGen retires the
// scheduler frames below us once the activation completes — and stays
// behind as the suspended step's host. Nothing may touch engine state
// between wakeScheduler and the await: the conch transfers with the wake.
func (c *Context) suspend() {
	e := c.eng
	if c.step != nil {
		c.needG = true
	}
	if e.inline == c {
		e.dstats.InlineSuspends++
		e.inline = nil
		c.rootHosted = e.loopIsRoot
		e.schedGen++
		e.wakeScheduler()
		c.hostAwait()
		c.onDispatched()
		return
	}
	e.backCh <- struct{}{}
	c.hostAwait()
	c.onDispatched()
}

// hostAwait is await for a suspended step. A step whose frames pin the
// root goroutine additionally listens on rootWake: if the run ends while
// it is suspended, the acting scheduler's final role grant arrives here
// instead of at Run's re-acquire loop, and the frames unwind via
// schedUnwind so Run can finish.
func (c *Context) hostAwait() {
	if !c.rootHosted {
		c.await()
		return
	}
	select {
	case <-c.resumeCh:
	case <-c.eng.rootWake:
		panic(schedUnwind{})
	case <-c.eng.shutdown:
		panic(shutdownSignal{})
	}
}

// Sleep advances the local clock by n cycles and yields, modeling an idle
// wait of known length.
func (c *Context) Sleep(n Time) {
	c.Sync()
	c.time += n
	c.Yield()
}

// LazyYield requests a reschedule that takes effect at the context's next
// timing operation (Advance, SyncTo, Park, scheduling an event, an
// Unpark) or — most often — at the end of the current step, where it is
// free of frame suspension: the stepper simply returns to the scheduler
// runnable. The scheduling order is identical to an immediate Yield
// whenever the work between the request and the materialisation point is
// context-local (this context's own protocol state), which is the
// contract Typhoon's Resume satisfies: handler code after a resume only
// updates the NP's own bookkeeping before its next timed operation. On
// non-stepper contexts LazyYield degrades to an immediate Yield.
func (c *Context) LazyYield() {
	c.checkRunning("LazyYield")
	if c.step == nil {
		c.Yield()
		return
	}
	c.lazyYield = true
}

// Sync materialises a pending LazyYield at exactly this point, pinning
// the reschedule's position relative to the caller's subsequent effects.
// Call it before publishing state that other contexts read without a
// timing operation in between.
func (c *Context) Sync() {
	if c.lazyQuantum {
		c.lazyQuantum = false
		c.lazyYield = false // one reschedule satisfies both requests
		c.Yield()
	}
}

// syncRunning materialises the running context's pending LazyYield, for
// engine entry points that are invoked on a different receiver than the
// caller (Unpark on a target context, AtEvent on the engine).
func (e *Engine) syncRunning() {
	if r := e.running; r != nil {
		r.Sync()
	}
}

// BeginNoBlock opens a MustNotBlock section: until the matching
// EndNoBlock, a Park on this context panics. Dispatchers wrap
// run-to-completion handlers (message, fault, bulk-chunk bodies; the
// hardware directory's atomic coherence action) in one, turning the
// paper's §5.1 "handlers run to completion" contract into an assertion.
// Yields are still allowed — quantum and resume yields reschedule without
// blocking on an external wakeup.
func (c *Context) BeginNoBlock() { c.noBlock++ }

// EndNoBlock closes the innermost MustNotBlock section.
func (c *Context) EndNoBlock() { c.noBlock-- }

// Park suspends the context until another entity calls Unpark. The reason
// string appears in deadlock reports. If an Unpark raced ahead of the
// Park (the wakeup was issued while the context was still running), Park
// consumes it and returns immediately.
func (c *Context) Park(reason string) {
	c.checkRunning("Park")
	c.Sync()
	if c.noBlock > 0 {
		panic(fmt.Sprintf("sim: context %q parked (%s) inside a MustNotBlock section: run-to-completion handler blocked", c.name, reason))
	}
	if c.pendingUnpark {
		c.pendingUnpark = false
		if c.pendingAt > c.time {
			c.time = c.pendingAt
		}
		c.Yield() // still reschedule so earlier entities run first
		return
	}
	c.parkReason = reason
	c.state = StateParked
	c.suspend()
}

// Unpark makes a parked context runnable no earlier than simulated time
// at. Calling Unpark on a context that is not parked records a pending
// wakeup that its next Park consumes. Unpark must be called while holding
// the conch (i.e. from a running context or an event callback).
func (c *Context) Unpark(at Time) {
	c.eng.syncRunning()
	switch c.state {
	case StateParked:
		if at > c.time {
			c.time = at
		}
		c.parkReason = ""
		c.state = StateRunnable
		c.eng.runnable.push(c)
	case StateDone:
		// Late wakeup for a finished context; ignore.
	default:
		c.pendingUnpark = true
		if at > c.pendingAt {
			c.pendingAt = at
		}
	}
}

func (c *Context) onDispatched() {
	c.state = StateRunning
	c.lastYield = c.time
	c.eng.running = c
	c.eng.now = c.time
}

func (c *Context) checkRunning(op string) {
	if c.eng.running != c {
		panic(fmt.Sprintf("sim: %s called on context %q which is not running (state %v)", op, c.name, c.state))
	}
}

// AtEvent schedules ev to fire at absolute simulated time t. Events run
// on the scheduler, may not block, and execute before any context whose
// clock is later than t. Events at equal times fire in scheduling order.
func (e *Engine) AtEvent(t Time, ev Event) {
	e.syncRunning()
	if now := e.Now(); t < now {
		t = now
	}
	e.evSeq++
	e.events.push(evItem{t: t, seq: e.evSeq, ev: ev})
}

// AfterEvent schedules ev to fire delta cycles after the current global
// time.
func (e *Engine) AfterEvent(delta Time, ev Event) { e.AtEvent(e.Now()+delta, ev) }

// At schedules fn to run at absolute simulated time t.
func (e *Engine) At(t Time, fn func()) { e.AtEvent(t, funcEvent(fn)) }

// After schedules fn delta cycles after the current global time.
func (e *Engine) After(delta Time, fn func()) { e.AtEvent(e.Now()+delta, funcEvent(fn)) }

// dispatch hands the conch to c. A stepper at a boundary runs inline on
// the acting scheduler goroutine; everything else (goroutine bodies,
// steppers suspended mid-step on a host goroutine) trades the conch over
// the single-slot channels. A needG stepper always has a live host
// goroutine awaiting its resumeCh — the standby goroutine, or a retired
// scheduler goroutine that stayed behind at the mid-step hand-off — so
// the standby is spawned only for a boundary dispatch forced through the
// channel protocol (WithGoroutineDispatch).
func (e *Engine) dispatch(c *Context) {
	if c.step != nil && !c.needG && !e.forceG {
		e.dstats.InlineDispatches++
		e.dispatchInline(c)
		e.running = nil
		return
	}
	e.dstats.GoroutineSwitches++
	if c.step != nil {
		e.dstats.StepperFallbacks++
		if !c.gStarted && !c.needG {
			c.gStarted = true
			go c.stepperRun()
		}
	}
	c.resumeCh <- struct{}{}
	<-e.backCh
	e.running = nil
}

// dispatchInline runs one stepper activation on the acting scheduler
// goroutine. A panic in a step body becomes the engine's abort error,
// exactly as a goroutine body's panic would; schedUnwind and
// shutdownSignal keep unwinding through the host's frames.
func (e *Engine) dispatchInline(c *Context) {
	defer func() {
		e.inline = nil
		if r := recover(); r != nil {
			switch r.(type) {
			case schedUnwind, shutdownSignal:
				panic(r)
			}
			e.abort = fmt.Errorf("sim: context %q panicked: %v", c.name, r)
			c.state = StateDone
		}
	}()
	c.onDispatched()
	e.inline = c
	c.runSteps()
}

// scheduleLoop is the scheduler: fire due events, dispatch runnable
// contexts in (time, prio, id) order. It returns true when the machine
// aborts or goes quiescent, with the conch routed back to the root
// goroutine. It returns false when this goroutine loses the scheduler
// role: a stepper it hosted inline suspended mid-step and handed the
// role to a spare (Context.suspend); once the suspended activation
// completes back on this goroutine, the stale loop observes the newer
// schedGen, hands the conch to the acting scheduler, and retires.
//
// park is the goroutine's spare-pool registration channel, nil for the
// root goroutine (which re-acquires the role via rootWake instead). It
// is re-registered before the conch is released, so the pool is only
// ever mutated conch-held.
func (e *Engine) scheduleLoop(park chan struct{}) (done bool) {
	e.loopIsRoot = park == nil
	gen := e.schedGen
	for {
		if e.abort != nil {
			break
		}
		// Run every event that is due before (or at) the next context.
		nextCtx := Time(^uint64(0))
		if e.runnable.len() > 0 {
			nextCtx = e.runnable.a[0].time
		}
		if e.events.len() > 0 && e.events.a[0].t <= nextCtx {
			ev := e.events.pop()
			if ev.t > e.now {
				e.now = ev.t
			}
			e.running = nil
			ev.ev.Fire()
			continue
		}
		if e.runnable.len() == 0 {
			break // quiescent
		}
		e.dispatch(e.runnable.pop())
		if e.schedGen != gen {
			// The role moved on while this goroutine hosted a suspended
			// step; the activation has completed, so hand the conch to
			// the acting scheduler and retire this loop frame.
			if park != nil {
				e.spareWakes = append(e.spareWakes, park)
			}
			e.backCh <- struct{}{}
			return false
		}
	}
	if park != nil {
		// A spare observed the end of the run: hand the scheduler role
		// (and the conch) back to the root goroutine, which finishes Run.
		e.spareWakes = append(e.spareWakes, park)
		e.rootWake <- struct{}{}
	}
	return true
}

// wakeScheduler hands the scheduler role to a spare goroutine, starting
// one if the pool is empty. Called conch-held by a goroutine about to
// become a suspended stepper's host; the conch transfers with the wake.
func (e *Engine) wakeScheduler() {
	if n := len(e.spareWakes); n > 0 {
		ch := e.spareWakes[n-1]
		e.spareWakes = e.spareWakes[:n-1]
		ch <- struct{}{}
		return
	}
	go e.spareScheduler()
}

// spareScheduler hosts the scheduler loop whenever the role is handed
// off. Between turns the goroutine parks in the spare pool; engine
// shutdown releases it. A shutdownSignal unwinding out of a hosted
// step's frames (the run finished while the step was still suspended)
// retires it too.
func (e *Engine) spareScheduler() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(shutdownSignal); !ok {
				panic(r)
			}
		}
	}()
	wake := make(chan struct{}, 1)
	for {
		e.scheduleLoop(wake) // registers wake in the pool before releasing the conch
		select {
		case <-wake:
		case <-e.shutdown:
			return
		}
	}
}

// Run drives the simulation until every non-daemon context finishes and
// the machine is quiescent (no runnable contexts, no pending events). It
// returns an error if a context panicked or if the machine deadlocked with
// unfinished work.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	defer func() {
		e.finished = true
		close(e.shutdown) // release daemon goroutines
		fleet.inline.Add(e.dstats.InlineDispatches)
		fleet.switches.Add(e.dstats.GoroutineSwitches)
		fleet.fallbacks.Add(e.dstats.StepperFallbacks)
		fleet.parks.Add(e.dstats.ParksAvoided)
		fleet.steps.Add(e.dstats.InlineSteps)
		fleet.gsteps.Add(e.dstats.GoroutineSteps)
		fleet.suspends.Add(e.dstats.InlineSuspends)
	}()

	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(schedUnwind); !ok {
					panic(r)
				}
			}
		}()
		for {
			if e.scheduleLoop(nil) {
				return
			}
			// The root goroutine lost the scheduler role to a spare while
			// hosting a suspended step; the step has completed and the
			// conch moved on. Wait for the role grant at the end of the
			// run (or, if another hosted step pins this stack first, the
			// grant arrives at rootHostAwait and unwinds to here).
			<-e.rootWake
		}
	}()

	if e.abort != nil {
		return e.abort
	}
	var waiting []string
	for _, c := range e.contexts {
		if c.daemon || c.state == StateDone {
			continue
		}
		waiting = append(waiting, fmt.Sprintf("%s@%d(%s: %s)", c.name, c.time, c.state, c.parkReason))
	}
	if len(waiting) > 0 {
		sort.Strings(waiting)
		return fmt.Errorf("sim: deadlock at cycle %d; blocked contexts: %s", e.now, strings.Join(waiting, ", "))
	}
	return nil
}

// The heaps below are index-based 4-ary min-heaps (children of i are
// 4i+1..4i+4). Compared to container/heap they avoid the interface{}
// boxing on every Push/Pop (an allocation per scheduled event) and halve
// the tree depth, trading a slightly wider sibling scan on sift-down —
// the classic d-ary trade that favours push-heavy workloads like event
// scheduling. Both orderings are strict total orders, so pop order is
// the unique sorted order and independent of arity.

// evItem is a scheduled occurrence, ordered by (t, seq); seq is unique,
// so equal-time events fire in scheduling order.
type evItem struct {
	t   Time
	seq uint64
	ev  Event
}

func evLess(a, b evItem) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

type evHeap struct{ a []evItem }

func (h *evHeap) len() int { return len(h.a) }

func (h *evHeap) push(it evItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !evLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *evHeap) pop() evItem {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = evItem{} // drop the Event reference
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if evLess(a[j], a[m]) {
				m = j
			}
		}
		if !evLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// ctxLess orders runnable contexts: earliest local time first, compute
// contexts before daemons on ties, then creation order. (time, prio, id)
// is a strict total order because ids are unique.
func ctxLess(a, b *Context) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

type ctxHeap struct{ a []*Context }

func (h *ctxHeap) len() int { return len(h.a) }

func (h *ctxHeap) push(c *Context) {
	h.a = append(h.a, c)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ctxLess(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *ctxHeap) pop() *Context {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	h.a = a[:n]
	a = h.a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if ctxLess(a[j], a[m]) {
				m = j
			}
		}
		if !ctxLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}
