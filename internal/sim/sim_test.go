package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleContextRunsToCompletion(t *testing.T) {
	e := NewEngine()
	var ran bool
	e.Spawn("solo", func(c *Context) {
		c.Advance(10)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("context body did not run")
	}
}

func TestAdvanceAccumulatesTime(t *testing.T) {
	e := NewEngine()
	var final Time
	e.Spawn("clock", func(c *Context) {
		for i := 0; i < 100; i++ {
			c.Advance(3)
		}
		final = c.Time()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if final != 300 {
		t.Fatalf("time = %d, want 300", final)
	}
}

func TestInterleavingIsByLocalTime(t *testing.T) {
	e := NewEngine(WithQuantum(1)) // yield on every advance
	var order []string
	worker := func(name string, step Time, n int) func(*Context) {
		return func(c *Context) {
			for i := 0; i < n; i++ {
				order = append(order, fmt.Sprintf("%s@%d", name, c.Time()))
				c.Advance(step)
			}
		}
	}
	e.Spawn("a", worker("a", 10, 3))
	e.Spawn("b", worker("b", 4, 5))
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a@0", "b@0", "b@4", "b@8", "a@10", "b@12", "b@16", "a@20"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestTieBreakByContextID(t *testing.T) {
	e := NewEngine(WithQuantum(1))
	var order []int
	for i := 0; i < 4; i++ {
		id := i
		e.Spawn(fmt.Sprintf("c%d", i), func(c *Context) {
			order = append(order, id)
			c.Advance(1)
			order = append(order, id)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventsRunBeforeLaterContexts(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.At(5, func() { trace = append(trace, fmt.Sprintf("ev@%d", e.Now())) })
	e.Spawn("ctx", func(c *Context) {
		c.Sleep(10)
		trace = append(trace, fmt.Sprintf("ctx@%d", c.Time()))
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(trace) != 2 || trace[0] != "ev@5" || trace[1] != "ctx@10" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestParkUnparkViaEvent(t *testing.T) {
	e := NewEngine()
	var wake Time
	ctx := e.Spawn("sleeper", func(c *Context) {
		c.Park("test")
		wake = c.Time()
	})
	e.At(42, func() { ctx.Unpark(42) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wake != 42 {
		t.Fatalf("woke at %d, want 42", wake)
	}
}

func TestUnparkBeforeParkIsConsumed(t *testing.T) {
	e := NewEngine()
	var wake Time
	var ctx *Context
	ctx = e.Spawn("racer", func(c *Context) {
		// Wakeup is already pending when we park.
		ctx.Unpark(100)
		c.Park("test")
		wake = c.Time()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wake != 100 {
		t.Fatalf("woke at %d, want 100", wake)
	}
}

func TestUnparkNeverMovesClockBackward(t *testing.T) {
	e := NewEngine()
	ctx := e.Spawn("sleeper", func(c *Context) {
		c.Advance(50)
		c.Park("test")
		if c.Time() != 50 {
			t.Errorf("time moved to %d, want 50", c.Time())
		}
	})
	e.At(10, func() { ctx.Unpark(10) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(c *Context) { c.Park("forever") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDaemonDoesNotBlockCompletion(t *testing.T) {
	e := NewEngine()
	e.SpawnDaemon("np", func(c *Context) {
		for {
			c.Park("idle")
		}
	})
	e.Spawn("app", func(c *Context) { c.Advance(5) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDaemonDrainsRunnableWorkBeforeShutdown(t *testing.T) {
	e := NewEngine()
	var drained bool
	d := e.SpawnDaemon("np", func(c *Context) {
		c.Park("idle")
		c.Advance(100)
		drained = true
		c.Park("idle")
	})
	e.Spawn("app", func(c *Context) {
		c.Advance(5)
		d.Unpark(c.Time())
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !drained {
		t.Fatal("daemon work scheduled before app exit was not drained")
	}
}

func TestContextPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomb", func(c *Context) { panic("boom") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking context")
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childTime Time
	e.Spawn("parent", func(c *Context) {
		c.Advance(7)
		c.Yield() // give engine a consistent now
		e.Spawn("child", func(c2 *Context) {
			childTime = c2.Time()
		})
		c.Advance(1)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if childTime < 7 {
		t.Fatalf("child started at %d, want >= 7", childTime)
	}
}

func TestEngineCannotRunTwice(t *testing.T) {
	e := NewEngine()
	e.Spawn("x", func(c *Context) {})
	if err := e.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestBarrierReleasesAllAtMaxPlusLatency(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 3, 11)
	releases := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(c *Context) {
			c.Advance(Time(10 * (i + 1))) // arrivals at 10, 20, 30
			b.Arrive(c)
			releases[i] = c.Time()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range releases {
		if r != 41 {
			t.Fatalf("p%d released at %d, want 41 (max arrival 30 + latency 11)", i, r)
		}
	}
	if b.Epochs() != 1 {
		t.Fatalf("epochs = %d, want 1", b.Epochs())
	}
}

func TestBarrierReusableAcrossEpochs(t *testing.T) {
	e := NewEngine()
	const n, iters = 4, 5
	b := NewBarrier(e, n, 11)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(c *Context) {
			for k := 0; k < iters; k++ {
				c.Advance(Time(1 + i))
				b.Arrive(c)
				counts[i]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, ct := range counts {
		if ct != iters {
			t.Fatalf("p%d completed %d epochs, want %d", i, ct, iters)
		}
	}
	if b.Epochs() != iters {
		t.Fatalf("epochs = %d, want %d", b.Epochs(), iters)
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 1, 11)
	var after Time
	e.Spawn("solo", func(c *Context) {
		c.Advance(10)
		b.Arrive(c)
		after = c.Time()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after != 21 {
		t.Fatalf("released at %d, want 21", after)
	}
}

// TestDeterminism runs the same chaotic workload twice and requires an
// identical event order.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(WithQuantum(8))
		var log []string
		b := NewBarrier(e, 3, 11)
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(c *Context) {
				for k := 0; k < 10; k++ {
					c.Advance(Time((i*7+k*3)%13 + 1))
					if k%3 == i%3 {
						c.Yield()
					}
					log = append(log, fmt.Sprintf("p%d k%d @%d", i, k, c.Time()))
					b.Arrive(c)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of event times, events fire in nondecreasing time
// order and the engine clock never runs backward.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		e.Spawn("idle", func(c *Context) {})
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with any number of participants and arrival offsets, a barrier
// releases everyone at the same cycle, equal to max arrival + latency.
func TestBarrierReleaseProperty(t *testing.T) {
	f := func(offsets []uint8, latency uint8) bool {
		if len(offsets) == 0 || len(offsets) > 32 {
			return true
		}
		e := NewEngine()
		b := NewBarrier(e, len(offsets), Time(latency))
		releases := make([]Time, len(offsets))
		var maxArrival Time
		for i, off := range offsets {
			if Time(off) > maxArrival {
				maxArrival = Time(off)
			}
			i, off := i, Time(off)
			e.Spawn(fmt.Sprintf("p%d", i), func(c *Context) {
				c.Advance(off)
				b.Arrive(c)
				releases[i] = c.Time()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		want := maxArrival + Time(latency)
		for _, r := range releases {
			if r != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNoGoroutineLeakAfterRun(t *testing.T) {
	// Daemons parked at shutdown must exit when the engine closes. Their
	// exits happen asynchronously, so this test only asserts Run returns;
	// the race detector validates the teardown path.
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.SpawnDaemon(fmt.Sprintf("d%d", i), func(c *Context) {
			for {
				c.Park("idle")
			}
		})
	}
	e.Spawn("app", func(c *Context) { c.Advance(1) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNowTracksRunningContext(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.Spawn("worker", func(c *Context) {
		c.Advance(40)
		// After must be relative to the context's advanced clock, not
		// its dispatch time.
		e.After(10, func() { fired = e.Now() })
		c.Advance(5)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 50 {
		t.Fatalf("event fired at %d, want 50 (40 advanced + 10 delay)", fired)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateNew: "new", StateRunnable: "runnable", StateRunning: "running",
		StateParked: "parked", StateDone: "done", State(99): "invalid",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestQuantumOption(t *testing.T) {
	e := NewEngine(WithQuantum(7))
	if e.Quantum() != 7 {
		t.Fatalf("quantum = %d", e.Quantum())
	}
	d := NewEngine(WithQuantum(0))
	if d.Quantum() != DefaultQuantum {
		t.Fatalf("zero quantum should keep default, got %d", d.Quantum())
	}
}

func TestQuantumForcesYield(t *testing.T) {
	e := NewEngine(WithQuantum(10))
	var interleaved bool
	e.Spawn("a", func(c *Context) {
		for i := 0; i < 100; i++ {
			c.Advance(1)
		}
	})
	e.Spawn("b", func(c *Context) {
		// If a never yielded, b would only run after a finished (time 100).
		if c.Time() < 100 {
			interleaved = true
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !interleaved {
		t.Fatal("quantum did not force interleaving")
	}
}

func TestSyncToNeverMovesBackward(t *testing.T) {
	e := NewEngine()
	e.Spawn("x", func(c *Context) {
		c.Advance(50)
		c.SyncTo(30)
		if c.Time() != 50 {
			t.Errorf("SyncTo moved clock backward to %d", c.Time())
		}
		c.SyncTo(80)
		if c.Time() != 80 {
			t.Errorf("SyncTo failed to advance: %d", c.Time())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardWindowSafety exercises the window-safety invariant: an
// event scheduled onto another shard inside the current lookahead window
// would be merged a boundary too late and silently corrupt determinism,
// so AtEventFromTo must refuse it loudly instead.
func TestCrossShardWindowSafety(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10))
	e.SpawnOn(0, "offender", func(c *Context) {
		// Origin 0 lives on shard 0, origin 1 on shard 1. A delivery one
		// cycle out is inside the 10-cycle window — illegal lookahead.
		e.AtEventFromTo(c.Time()+1, 0, 1, funcEvent(func() {}))
	})
	err := e.Run()
	if err == nil {
		t.Fatal("cross-shard event inside the window must abort the run")
	}
	if !strings.Contains(err.Error(), "inside the current window") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCrossShardAtWindowLimitAllowed pins the boundary case: an event
// exactly one full window out (t == limit) is legal — it lands in the
// next window's merge.
func TestCrossShardAtWindowLimitAllowed(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10))
	var fired bool
	e.SpawnOn(0, "sender", func(c *Context) {
		e.AtEventFromTo(10, 0, 1, funcEvent(func() { fired = true }))
	})
	e.SpawnOn(1, "keepalive", func(c *Context) { c.Sleep(40) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("window-limit event never fired")
	}
}
