package sim

import "fmt"

// Barrier models a hardware barrier network (the CM-5-style control
// network both simulated machines in the paper use): n participants
// arrive, and all are released latency cycles after the last arrival.
type Barrier struct {
	eng     *Engine
	n       int
	latency Time

	waiting []*Context
	maxTime Time
	epochs  uint64

	onRelease func(epoch uint64, at Time)
}

// NewBarrier returns a barrier for n participants with the given release
// latency in cycles.
func NewBarrier(eng *Engine, n int, latency Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier requires at least one participant")
	}
	return &Barrier{eng: eng, n: n, latency: latency}
}

// Epochs returns how many times the barrier has completed.
func (b *Barrier) Epochs() uint64 { return b.epochs }

// OnRelease registers fn to run at each barrier release (while holding
// the conch, before any released participant resumes), with the epoch
// just completed and the release time. At that instant every participant
// is suspended at the barrier, so the callback may inspect simulated
// state mid-run — the hook exists for invariant checking in tests. It
// must not advance simulated time.
func (b *Barrier) OnRelease(fn func(epoch uint64, at Time)) { b.onRelease = fn }

// Arrive blocks the calling context until all n participants have
// arrived, then releases everyone at max(arrival times) + latency.
func (b *Barrier) Arrive(c *Context) {
	if c.time > b.maxTime {
		b.maxTime = c.time
	}
	if len(b.waiting) == b.n-1 {
		release := b.maxTime + b.latency
		for _, w := range b.waiting {
			w.Unpark(release)
		}
		b.waiting = b.waiting[:0]
		b.maxTime = 0
		b.epochs++
		if b.onRelease != nil {
			b.onRelease(b.epochs, release)
		}
		if release > c.time {
			c.time = release
		}
		c.Yield()
		return
	}
	b.waiting = append(b.waiting, c)
	c.Park(fmt.Sprintf("barrier(%d/%d)", len(b.waiting), b.n))
}
