package sim

import "fmt"

// Barrier models a hardware barrier network (the CM-5-style control
// network both simulated machines in the paper use): n participants
// arrive, and all are released latency cycles after the last arrival.
//
// Under sharded execution the barrier is a cross-shard interaction, so
// arrivals are staged per shard and folded by the window coordinator at
// each boundary; the release time — max(arrival times) + latency — and
// every released context's runnable key are identical to the serial
// computation, because both are functions of the arrival times alone.
// The barrier latency must therefore be at least the engine's lookahead
// window (the machine configures the window as the minimum of the two).
type Barrier struct {
	eng     *Engine
	n       int
	latency Time

	waiting []*Context
	maxTime Time
	epochs  uint64

	// staged holds this window's arrivals per shard (sharded engines
	// only; nil on serial engines). Arrivers always park and the
	// coordinator releases them at a boundary.
	staged [][]*Context

	onRelease func(epoch uint64, at Time)
}

// NewBarrier returns a barrier for n participants with the given release
// latency in cycles. On a sharded engine the barrier registers itself
// with the window coordinator; create barriers before Run.
func NewBarrier(eng *Engine, n int, latency Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier requires at least one participant")
	}
	b := &Barrier{eng: eng, n: n, latency: latency}
	if eng.Shards() > 1 {
		if latency < eng.window {
			panic("sim: barrier latency below the engine's lookahead window")
		}
		b.staged = make([][]*Context, eng.Shards())
		eng.barriers = append(eng.barriers, b)
	}
	return b
}

// Epochs returns how many times the barrier has completed.
func (b *Barrier) Epochs() uint64 { return b.epochs }

// OnRelease registers fn to run at each barrier release (while holding
// the conch, before any released participant resumes), with the epoch
// just completed and the release time. At that instant every participant
// is suspended at the barrier, so the callback may inspect simulated
// state mid-run — the hook exists for invariant checking in tests. It
// must not advance simulated time. On a sharded engine the callback runs
// on the coordinator at a window boundary: the release values are
// identical to serial, but other contexts may have run further into the
// window than they would have at the serial release instant.
func (b *Barrier) OnRelease(fn func(epoch uint64, at Time)) { b.onRelease = fn }

// Arrive blocks the calling context until all n participants have
// arrived, then releases everyone at max(arrival times) + latency.
func (b *Barrier) Arrive(c *Context) {
	if b.staged != nil {
		// Sharded: stage the arrival for the coordinator and park. The
		// release (at the boundary) recomputes maxTime from the staged
		// arrivals, so nothing else is recorded here. The window planner
		// lower-bounds the release from the non-daemon contexts that have
		// not yet arrived, so daemons may not participate — a daemon's
		// arrival would be invisible to the bound.
		if c.daemon {
			panic(fmt.Sprintf("sim: daemon context %q arrived at a sharded barrier", c.name))
		}
		b.staged[c.sh.id] = append(b.staged[c.sh.id], c)
		c.atBarrier = b
		c.Park(fmt.Sprintf("barrier(%d)", b.n))
		return
	}
	if c.time > b.maxTime {
		b.maxTime = c.time
	}
	if len(b.waiting) == b.n-1 {
		release := b.maxTime + b.latency
		for _, w := range b.waiting {
			w.Unpark(release)
		}
		b.waiting = b.waiting[:0]
		b.maxTime = 0
		b.epochs++
		if b.onRelease != nil {
			b.onRelease(b.epochs, release)
		}
		if release > c.time {
			c.time = release
		}
		c.Yield()
		return
	}
	b.waiting = append(b.waiting, c)
	c.Park(fmt.Sprintf("barrier(%d/%d)", len(b.waiting), b.n))
}

// mergeStaged folds one window's staged arrivals into the barrier and,
// if every participant has arrived, releases them. Called by the window
// coordinator between windows, conch-held on every shard. At most one
// epoch can complete per boundary: an epoch's arrivals all require the
// previous epoch's release, which itself happens at a boundary.
func (b *Barrier) mergeStaged() {
	for i := range b.staged {
		for _, c := range b.staged[i] {
			if c.time > b.maxTime {
				b.maxTime = c.time
			}
			b.waiting = append(b.waiting, c)
		}
		b.staged[i] = b.staged[i][:0]
	}
	if len(b.waiting) < b.n {
		return
	}
	if len(b.waiting) > b.n {
		panic("sim: barrier overfull")
	}
	release := b.maxTime + b.latency
	for _, w := range b.waiting {
		// Unpark from the coordinator: every shard's conch is parked
		// here between windows, so pushing the context onto its shard's
		// runnable heap is safe, and the runnable key (release, prio,
		// id) matches the serial release exactly. The release time is
		// never below any limit the planner has granted — every granted
		// bound is capped by releaseLB, which lower-bounds this very
		// value — so no shard's processed frontier has passed it.
		w.atBarrier = nil
		w.Unpark(release)
	}
	b.waiting = b.waiting[:0]
	b.maxTime = 0
	b.epochs++
	if b.onRelease != nil {
		b.onRelease(b.epochs, release)
	}
}
