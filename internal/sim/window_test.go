package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestPlanRoundBounds pins the adaptive planner's closed-form limit
//
//	limit(x) = min( m_excl(x) + LA,  base(x) + 2·LA,  gBar )
//
// on a hand-built two-shard engine: shard 0's earliest item at 100,
// shard 1's at 130, lookahead 25. Shard 0 is bounded by its own round
// trip (100+50=150, tighter than 130+25=155); shard 1 is bounded by
// shard 0's earliest effect (100+25=125), which lies below its base —
// the idle-shard fast path: it stays ungranted, no empty window bounces
// over the channels.
func TestPlanRoundBounds(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10), WithCrossShardDelivery(25))
	e.AtEventFromTo(100, 0, 0, funcEvent(func() {}))
	e.AtEventFromTo(130, 1, 1, funcEvent(func() {}))
	e.prepareWindows()

	grants, _ := e.planRound(nil)
	if len(grants) != 1 || grants[0] != e.sh[0] {
		t.Fatalf("granted %d shards, want only shard 0", len(grants))
	}
	if got := e.sh[0].limit; got != 150 {
		t.Errorf("shard 0 limit = %d, want 150 (base 100 + 2·25 round trip)", got)
	}
	if got := e.sh[1].limit; got != 125 {
		t.Errorf("shard 1 limit = %d, want 125 (m_excl 100 + 25 lookahead)", got)
	}
	// Every adaptive limit must dominate the legacy fixed plan M+window,
	// or adaptive rounds could be slower than lockstep.
	for _, s := range e.sh {
		if s.limit < 100+10 {
			t.Errorf("shard %d limit %d below the fixed window bound 110", s.id, s.limit)
		}
	}

	ws := e.WindowStats()
	if ws.Grants != 1 || ws.WidthCycles != 50 || ws.Batched != 1 {
		t.Errorf("stats = %+v, want 1 grant of width 50, batched", ws)
	}
}

// TestPlanRoundFixedMode pins the legacy plan under WithFixedWindows:
// every shard's limit is M+window regardless of its own base, and
// windows can never batch (width ≤ window < 2·window).
func TestPlanRoundFixedMode(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10), WithCrossShardDelivery(25), WithFixedWindows())
	e.AtEventFromTo(100, 0, 0, funcEvent(func() {}))
	e.AtEventFromTo(105, 1, 1, funcEvent(func() {}))
	e.prepareWindows()

	grants, _ := e.planRound(nil)
	if len(grants) != 2 {
		t.Fatalf("granted %d shards, want 2", len(grants))
	}
	for _, s := range e.sh {
		if s.limit != 110 {
			t.Errorf("shard %d limit = %d, want fixed M+window = 110", s.id, s.limit)
		}
	}
	if ws := e.WindowStats(); ws.Batched != 0 {
		t.Errorf("fixed windows reported %d batched grants, want 0", ws.Batched)
	}
}

// TestPlanRoundBarrierBound pins gBar: with every context bound for a
// barrier, no shard's limit may pass the earliest possible release, or
// the release (the one wakeup that is not a timed event) could land
// inside an already-granted window on a shard that merged before it.
func TestPlanRoundBarrierBound(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10), WithCrossShardDelivery(500))
	b := NewBarrier(e, 2, 12)
	_ = b
	// Both contexts runnable at 0: with a 500-cycle lookahead the
	// delivery terms would allow limits of 1000, but the barrier can
	// release as early as latency cycles after the last arrival, which
	// can happen as soon as both contexts run: gBar = 0 + 12.
	e.SpawnOn(0, "p0", func(c *Context) {})
	e.SpawnOn(1, "p1", func(c *Context) {})
	e.prepareWindows()

	grants, _ := e.planRound(nil)
	if len(grants) != 2 {
		t.Fatalf("granted %d shards, want 2", len(grants))
	}
	for _, s := range e.sh {
		if s.limit != 12 {
			t.Errorf("shard %d limit = %d, want 12 (barrier release lower bound)", s.id, s.limit)
		}
	}
}

// TestWindowModesEquivalence runs one chaotic barrier workload — uneven
// advances, quantum yields, cross-shard event traffic at exactly the
// delivery lookahead — serially and under every sharded planning and
// round-execution mode, and requires identical per-context histories
// and per-node event receipts everywhere. Sends at exactly base+LA are
// the tightest legal lookahead, so a single mis-planned window would
// trip AtEventFromTo's safety panic: completing at all is the property
// that a granted window never admits a cross-shard event inside it.
func TestWindowModesEquivalence(t *testing.T) {
	const nodes, delivery = 4, 17
	type result struct {
		logs [nodes]string
		recv [nodes]Time
	}
	run := func(opts ...Option) result {
		var r result
		e := NewEngine(append([]Option{WithQuantum(8), WithCrossShardDelivery(delivery)}, opts...)...)
		b := NewBarrier(e, nodes, 11)
		for i := 0; i < nodes; i++ {
			i := i
			e.SpawnOn(i, fmt.Sprintf("p%d", i), func(c *Context) {
				for k := 0; k < 12; k++ {
					c.Advance(Time((i*7 + k*3) % 13 + 1))
					if k%3 == i%3 {
						c.Yield()
					}
					dest := (i + 1 + k%3) % nodes
					at := c.Time() + delivery
					e.AtEventFromTo(at, i, dest, funcEvent(func() { r.recv[dest] += at }))
					r.logs[i] += fmt.Sprintf("k%d @%d;", k, c.Time())
					b.Arrive(c)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r
	}
	want := run(WithShards(1, nodes, 10))
	for _, shards := range []int{2, 4} {
		for name, mode := range map[string][]Option{
			"adaptive-coop":       {WithCooperativeRounds()},
			"adaptive-concurrent": {WithConcurrentRounds()},
			"fixed-coop":          {WithFixedWindows(), WithCooperativeRounds()},
			"fixed-concurrent":    {WithFixedWindows(), WithConcurrentRounds()},
		} {
			got := run(append([]Option{WithShards(shards, nodes, 10)}, mode...)...)
			if got != want {
				t.Errorf("shards=%d %s diverges from serial:\n got %+v\nwant %+v", shards, name, got, want)
			}
		}
	}
}

// TestDaemonBarrierArrivePanics pins the sharded barrier's daemon
// restriction: the planner's release bound only scans non-daemon
// contexts, so a daemon arrival would make the bound unsound — Arrive
// refuses it loudly instead.
func TestDaemonBarrierArrivePanics(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10))
	b := NewBarrier(e, 1, 11)
	e.SpawnDaemon("rogue", func(c *Context) { b.Arrive(c) })
	e.SpawnOn(1, "app", func(c *Context) { c.Advance(30) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "arrived at a sharded barrier") {
		t.Fatalf("err = %v, want daemon-barrier panic", err)
	}
}

// TestWindowStatsAfterRun asserts the telemetry counters describe a real
// sharded run: at least one grant per boundary round, widths never below
// one cycle, and batched a subset of grants.
func TestWindowStatsAfterRun(t *testing.T) {
	e := NewEngine(WithShards(2, 2, 10))
	for i := 0; i < 2; i++ {
		i := i
		e.SpawnOn(i, fmt.Sprintf("p%d", i), func(c *Context) {
			for k := 0; k < 50; k++ {
				c.Advance(Time(i + 3))
				c.Yield()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ws := e.WindowStats()
	if ws.Grants == 0 {
		t.Fatal("sharded run granted no windows")
	}
	if ws.WidthCycles < ws.Grants {
		t.Errorf("width sum %d below grant count %d: zero-width window granted", ws.WidthCycles, ws.Grants)
	}
	if ws.Batched > ws.Grants {
		t.Errorf("batched %d exceeds grants %d", ws.Batched, ws.Grants)
	}
}

// windowGrantEngine builds a four-shard engine mid-plan shape — staggered
// event bases, a barrier whose release bound takes the sort path (more
// live contexts than missing arrivals) — without running it, so a plan
// round can be timed and alloc-checked in isolation.
func windowGrantEngine() *Engine {
	e := NewEngine(WithShards(4, 8, 10), WithCrossShardDelivery(14))
	NewBarrier(e, 6, 12)
	for i := 0; i < 8; i++ {
		e.SpawnOn(i, fmt.Sprintf("p%d", i), func(c *Context) {})
		e.AtEventFromTo(Time(100+13*i), i, i, funcEvent(func() {}))
	}
	e.prepareWindows()
	return e
}

// TestWindowGrantAllocFree guards the planner's hot loop: one plan round
// — base scan, barrier release bound (sort path included), limits and
// grant list — must not allocate, or every window boundary of every
// sharded run pays the garbage collector.
func TestWindowGrantAllocFree(t *testing.T) {
	e := windowGrantEngine()
	if avg := testing.AllocsPerRun(200, func() { e.planRound(nil) }); avg != 0 {
		t.Fatalf("planRound allocates %.1f objects per round, want 0", avg)
	}
}

func BenchmarkWindowGrant(b *testing.B) {
	e := windowGrantEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.planRound(nil)
	}
}
