// Package mem models each node's physical memory: 4 KB frames of real
// bytes plus the fine-grain access tags of the Tempest interface (paper
// §2.4). Every aligned memory block (32 bytes by default) carries a tag —
// ReadWrite, ReadOnly, Invalid, or Busy — and the package implements the
// memory-resident parts of the nine tagged-block operations of the paper's
// Table 1. The operations with hardware- or thread-side effects (read and
// write with tag check on the bus, invalidate's cache purge, resume's
// thread wakeup) acquire those semantics in internal/typhoon, which
// composes this package with the cache and scheduler models.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// VA is a virtual address in a node's (or the shared segment's) address
// space.
type VA uint64

// PA is a global physical address. The owning node's ID is encoded in the
// high bits so a physical address names both a node and an offset in that
// node's DRAM, the way a NUMA machine's address map does.
type PA uint64

const (
	// PageSize is the virtual-memory page size (Table 2).
	PageSize = 4096
	// DefaultBlockSize is the coherence-block size (Table 2). The block
	// size is configurable per Memory for the block-size ablation.
	DefaultBlockSize = 32

	paNodeShift = 40
	paOffMask   = (PA(1) << paNodeShift) - 1
)

// MakePA builds a global physical address from a node ID and a byte
// offset into that node's DRAM.
func MakePA(node int, off uint64) PA {
	return PA(node)<<paNodeShift | PA(off)
}

// Node returns the node that owns this physical address.
func (pa PA) Node() int { return int(pa >> paNodeShift) }

// Offset returns the byte offset within the owning node's DRAM.
func (pa PA) Offset() uint64 { return uint64(pa & paOffMask) }

// FrameBase returns the physical address of the page frame containing pa.
func (pa PA) FrameBase() PA { return pa &^ PA(PageSize-1) }

// PageOffset returns pa's offset within its page.
func (pa PA) PageOffset() uint64 { return uint64(pa) & (PageSize - 1) }

// PageBase returns the page-aligned base of va.
func (va VA) PageBase() VA { return va &^ VA(PageSize-1) }

// PageOffset returns va's offset within its page.
func (va VA) PageOffset() uint64 { return uint64(va) & (PageSize - 1) }

// VPN returns va's virtual page number.
func (va VA) VPN() uint64 { return uint64(va) / PageSize }

// Tag is a fine-grain access tag on a memory block (paper §2.4).
type Tag uint8

// Tag values. Busy has Invalid's access semantics but lets protocol
// software distinguish blocks needing special handling (e.g. an
// outstanding prefetch), exactly as the Typhoon RTLB encodes it.
const (
	TagInvalid Tag = iota
	TagReadOnly
	TagReadWrite
	TagBusy
)

func (t Tag) String() string {
	switch t {
	case TagInvalid:
		return "Invalid"
	case TagReadOnly:
		return "ReadOnly"
	case TagReadWrite:
		return "ReadWrite"
	case TagBusy:
		return "Busy"
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// PermitsRead reports whether a tag-checked load may complete.
func (t Tag) PermitsRead() bool { return t == TagReadOnly || t == TagReadWrite }

// PermitsWrite reports whether a tag-checked store may complete.
func (t Tag) PermitsWrite() bool { return t == TagReadWrite }

// Frame is one physical page: real data bytes plus one access tag per
// block. A frame also carries the per-page protocol state Typhoon's RTLB
// makes available to fault handlers (page mode plus 48 bits of
// uninterpreted user state; we give user code two full words).
type Frame struct {
	Data []byte
	Tags []Tag

	// Mode selects which user-level fault handlers serve this page
	// (the RTLB's four-bit page-mode field).
	Mode int
	// Home is protocol state: the home node ID cached for this page
	// (part of the RTLB's uninterpreted state in the paper).
	Home int
	// User is an opaque pointer-sized value for protocol software, e.g.
	// Stache hangs its per-page directory vector here.
	User interface{}
}

// Memory is one node's DRAM: a bounded pool of frames addressed by
// physical page number.
type Memory struct {
	node      int
	blockSize int
	maxFrames int

	frames   map[uint64]*Frame // keyed by frame base offset
	nextOff  uint64
	freeOffs []uint64
}

// Config configures a node memory.
type Config struct {
	// BlockSize is the coherence-block size in bytes; it must be a power
	// of two in [8, PageSize]. Zero means DefaultBlockSize.
	BlockSize int
	// MaxFrames bounds how many frames the node can hold (its DRAM
	// size in pages). Zero means effectively unbounded.
	MaxFrames int
}

// New returns an empty memory for the given node.
func New(node int, cfg Config) *Memory {
	bs := cfg.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	if bs < 8 || bs > PageSize || bs&(bs-1) != 0 {
		panic(fmt.Sprintf("mem: invalid block size %d", bs))
	}
	max := cfg.MaxFrames
	if max == 0 {
		max = math.MaxInt
	}
	return &Memory{
		node:      node,
		blockSize: bs,
		maxFrames: max,
		frames:    make(map[uint64]*Frame),
	}
}

// Node returns the node ID this memory belongs to.
func (m *Memory) Node() int { return m.node }

// BlockSize returns the coherence-block size in bytes.
func (m *Memory) BlockSize() int { return m.blockSize }

// BlocksPerPage returns the number of tagged blocks in one page.
func (m *Memory) BlocksPerPage() int { return PageSize / m.blockSize }

// FramesInUse returns the number of allocated frames.
func (m *Memory) FramesInUse() int { return len(m.frames) }

// MaxFrames returns the frame budget.
func (m *Memory) MaxFrames() int { return m.maxFrames }

// BlockBase returns the block-aligned base of a physical address.
func (m *Memory) BlockBase(pa PA) PA { return pa &^ PA(m.blockSize-1) }

// BlockIndex returns the index of pa's block within its page.
func (m *Memory) BlockIndex(pa PA) int { return int(pa.PageOffset()) / m.blockSize }

// ErrOutOfFrames is returned when a node's DRAM budget is exhausted; a
// protocol reacts by replacing a page (Stache's FIFO replacement).
var ErrOutOfFrames = fmt.Errorf("mem: out of physical frames")

// AllocFrame allocates a zeroed frame with every block tagged
// initialTag and returns its physical base address.
func (m *Memory) AllocFrame(initialTag Tag) (PA, error) {
	if len(m.frames) >= m.maxFrames {
		return 0, ErrOutOfFrames
	}
	var off uint64
	if n := len(m.freeOffs); n > 0 {
		off = m.freeOffs[n-1]
		m.freeOffs = m.freeOffs[:n-1]
	} else {
		off = m.nextOff
		m.nextOff += PageSize
	}
	f := &Frame{
		Data: make([]byte, PageSize),
		Tags: make([]Tag, m.BlocksPerPage()),
		Home: -1,
	}
	if initialTag != TagInvalid {
		for i := range f.Tags {
			f.Tags[i] = initialTag
		}
	}
	m.frames[off] = f
	return MakePA(m.node, off), nil
}

// FreeFrame releases a frame back to the pool.
func (m *Memory) FreeFrame(pa PA) {
	off := pa.FrameBase().Offset()
	if _, ok := m.frames[off]; !ok {
		panic(fmt.Sprintf("mem: FreeFrame of unallocated frame %#x on node %d", pa, m.node))
	}
	delete(m.frames, off)
	m.freeOffs = append(m.freeOffs, off)
}

// Frame returns the frame containing pa, or nil if unallocated or owned
// by another node.
func (m *Memory) Frame(pa PA) *Frame {
	if pa.Node() != m.node {
		return nil
	}
	return m.frames[pa.FrameBase().Offset()]
}

func (m *Memory) mustFrame(pa PA) *Frame {
	f := m.Frame(pa)
	if f == nil {
		panic(fmt.Sprintf("mem: access to unmapped physical address %#x (node %d, owner %d)", pa, m.node, pa.Node()))
	}
	return f
}

// Tag returns the access tag of the block containing pa (Table 1:
// read-tag).
func (m *Memory) Tag(pa PA) Tag {
	return m.mustFrame(pa).Tags[m.BlockIndex(pa)]
}

// SetTag sets the access tag of the block containing pa (Table 1:
// set-RW / set-RO, and the tag-change half of invalidate).
func (m *Memory) SetTag(pa PA, t Tag) {
	m.mustFrame(pa).Tags[m.BlockIndex(pa)] = t
}

// SetPageTags sets the tag of every block in pa's page.
func (m *Memory) SetPageTags(pa PA, t Tag) {
	f := m.mustFrame(pa)
	for i := range f.Tags {
		f.Tags[i] = t
	}
}

// CheckRead reports whether a tag-checked load of pa faults (Table 1:
// read).
func (m *Memory) CheckRead(pa PA) (faults bool) {
	return !m.Tag(pa).PermitsRead()
}

// CheckWrite reports whether a tag-checked store to pa faults (Table 1:
// write).
func (m *Memory) CheckWrite(pa PA) (faults bool) {
	return !m.Tag(pa).PermitsWrite()
}

// ReadU64 performs a force-read of the 8-byte word at pa (Table 1:
// force-read — no tag check; the NP and protocol handlers use this).
func (m *Memory) ReadU64(pa PA) uint64 {
	f := m.mustFrame(pa)
	off := pa.PageOffset()
	return binary.LittleEndian.Uint64(f.Data[off : off+8])
}

// WriteU64 performs a force-write of the 8-byte word at pa (Table 1:
// force-write).
func (m *Memory) WriteU64(pa PA, v uint64) {
	f := m.mustFrame(pa)
	off := pa.PageOffset()
	binary.LittleEndian.PutUint64(f.Data[off:off+8], v)
}

// ReadF64 force-reads the float64 at pa.
func (m *Memory) ReadF64(pa PA) float64 { return math.Float64frombits(m.ReadU64(pa)) }

// WriteF64 force-writes the float64 at pa.
func (m *Memory) WriteF64(pa PA, v float64) { m.WriteU64(pa, math.Float64bits(v)) }

// ReadBlock copies the block containing pa into dst, which must be at
// least BlockSize bytes, and returns the number of bytes copied.
func (m *Memory) ReadBlock(pa PA, dst []byte) int {
	f := m.mustFrame(pa)
	base := m.BlockBase(pa).PageOffset()
	return copy(dst, f.Data[base:base+uint64(m.blockSize)])
}

// WriteBlock force-writes src (BlockSize bytes) into the block containing
// pa.
func (m *Memory) WriteBlock(pa PA, src []byte) {
	if len(src) != m.blockSize {
		panic(fmt.Sprintf("mem: WriteBlock with %d bytes, want %d", len(src), m.blockSize))
	}
	f := m.mustFrame(pa)
	base := m.BlockBase(pa).PageOffset()
	copy(f.Data[base:base+uint64(m.blockSize)], src)
}

// ReadRange copies n bytes starting at pa into dst (must stay within one
// page). Bulk transfers use it.
func (m *Memory) ReadRange(pa PA, dst []byte) {
	f := m.mustFrame(pa)
	off := pa.PageOffset()
	if off+uint64(len(dst)) > PageSize {
		panic("mem: ReadRange crosses page boundary")
	}
	copy(dst, f.Data[off:off+uint64(len(dst))])
}

// WriteRange copies src into memory starting at pa (must stay within one
// page).
func (m *Memory) WriteRange(pa PA, src []byte) {
	f := m.mustFrame(pa)
	off := pa.PageOffset()
	if off+uint64(len(src)) > PageSize {
		panic("mem: WriteRange crosses page boundary")
	}
	copy(f.Data[off:off+uint64(len(src))], src)
}
