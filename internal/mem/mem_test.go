package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPAEncoding(t *testing.T) {
	pa := MakePA(17, 0x12340)
	if pa.Node() != 17 {
		t.Fatalf("Node = %d, want 17", pa.Node())
	}
	if pa.Offset() != 0x12340 {
		t.Fatalf("Offset = %#x, want 0x12340", pa.Offset())
	}
	if pa.FrameBase().Offset() != 0x12000 {
		t.Fatalf("FrameBase offset = %#x, want 0x12000", pa.FrameBase().Offset())
	}
	if pa.PageOffset() != 0x340 {
		t.Fatalf("PageOffset = %#x, want 0x340", pa.PageOffset())
	}
}

func TestVAHelpers(t *testing.T) {
	va := VA(3*PageSize + 100)
	if va.VPN() != 3 {
		t.Fatalf("VPN = %d, want 3", va.VPN())
	}
	if va.PageBase() != VA(3*PageSize) {
		t.Fatalf("PageBase = %#x", va.PageBase())
	}
	if va.PageOffset() != 100 {
		t.Fatalf("PageOffset = %d, want 100", va.PageOffset())
	}
}

// TestTable1 exercises the memory-resident semantics of the paper's
// Table 1 operations: read/write tag checks, force-read/force-write,
// read-tag, set-RW, set-RO, and the tag-change half of invalidate.
func TestTable1(t *testing.T) {
	m := New(0, Config{})
	pa, err := m.AllocFrame(TagInvalid)
	if err != nil {
		t.Fatal(err)
	}

	// Invalid blocks: both read and write fault.
	if !m.CheckRead(pa) || !m.CheckWrite(pa) {
		t.Fatal("Invalid block must fault on read and write")
	}
	// force-write bypasses the tag check.
	m.WriteU64(pa, 0xdeadbeef)
	// force-read bypasses the tag check.
	if got := m.ReadU64(pa); got != 0xdeadbeef {
		t.Fatalf("force-read = %#x", got)
	}
	// set-RO: reads succeed, writes fault.
	m.SetTag(pa, TagReadOnly)
	if m.CheckRead(pa) {
		t.Fatal("ReadOnly block must not fault on read")
	}
	if !m.CheckWrite(pa) {
		t.Fatal("ReadOnly block must fault on write")
	}
	// set-RW: both succeed.
	m.SetTag(pa, TagReadWrite)
	if m.CheckRead(pa) || m.CheckWrite(pa) {
		t.Fatal("ReadWrite block must not fault")
	}
	// read-tag.
	if m.Tag(pa) != TagReadWrite {
		t.Fatalf("Tag = %v, want ReadWrite", m.Tag(pa))
	}
	// invalidate: tag goes Invalid (the cache purge lives in typhoon).
	m.SetTag(pa, TagInvalid)
	if !m.CheckRead(pa) || !m.CheckWrite(pa) {
		t.Fatal("invalidated block must fault")
	}
	// Busy behaves like Invalid for access checks but is distinguishable.
	m.SetTag(pa, TagBusy)
	if !m.CheckRead(pa) || !m.CheckWrite(pa) {
		t.Fatal("Busy block must fault like Invalid")
	}
	if m.Tag(pa) == TagInvalid {
		t.Fatal("Busy must be distinguishable from Invalid")
	}
}

func TestTagStringer(t *testing.T) {
	cases := map[Tag]string{
		TagInvalid: "Invalid", TagReadOnly: "ReadOnly",
		TagReadWrite: "ReadWrite", TagBusy: "Busy", Tag(9): "Tag(9)",
	}
	for tag, want := range cases {
		if tag.String() != want {
			t.Errorf("%d.String() = %q, want %q", tag, tag.String(), want)
		}
	}
}

func TestTagsArePerBlock(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagInvalid)
	m.SetTag(pa+PA(DefaultBlockSize), TagReadWrite)
	if m.Tag(pa) != TagInvalid {
		t.Fatal("block 0 tag changed")
	}
	if m.Tag(pa+PA(DefaultBlockSize)) != TagReadWrite {
		t.Fatal("block 1 tag not set")
	}
	if m.Tag(pa+PA(DefaultBlockSize)+8) != TagReadWrite {
		t.Fatal("tag must cover the whole block")
	}
}

func TestSetPageTags(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagInvalid)
	m.SetPageTags(pa, TagReadWrite)
	for i := 0; i < m.BlocksPerPage(); i++ {
		if m.Tag(pa+PA(i*m.BlockSize())) != TagReadWrite {
			t.Fatalf("block %d not ReadWrite", i)
		}
	}
}

func TestFrameBudgetAndReuse(t *testing.T) {
	m := New(0, Config{MaxFrames: 2})
	a, err := m.AllocFrame(TagReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocFrame(TagReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocFrame(TagReadWrite); err != ErrOutOfFrames {
		t.Fatalf("third alloc err = %v, want ErrOutOfFrames", err)
	}
	m.WriteU64(a, 123)
	m.FreeFrame(a)
	if m.FramesInUse() != 1 {
		t.Fatalf("FramesInUse = %d, want 1", m.FramesInUse())
	}
	b, err := m.AllocFrame(TagReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("expected frame reuse: got %#x, freed %#x", b, a)
	}
	if got := m.ReadU64(b); got != 0 {
		t.Fatalf("reused frame not zeroed: %#x", got)
	}
}

func TestFrameIsolationBetweenNodes(t *testing.T) {
	m0 := New(0, Config{})
	m1 := New(1, Config{})
	pa0, _ := m0.AllocFrame(TagReadWrite)
	if m1.Frame(pa0) != nil {
		t.Fatal("node 1 must not resolve node 0's physical address")
	}
}

func TestBlockCopy(t *testing.T) {
	m := New(0, Config{})
	src, _ := m.AllocFrame(TagReadWrite)
	dst, _ := m.AllocFrame(TagReadWrite)
	m.WriteU64(src, 0x1111)
	m.WriteU64(src+8, 0x2222)
	m.WriteU64(src+24, 0x4444)
	buf := make([]byte, m.BlockSize())
	if n := m.ReadBlock(src+8, buf); n != m.BlockSize() {
		t.Fatalf("ReadBlock copied %d bytes", n)
	}
	m.WriteBlock(dst, buf)
	if m.ReadU64(dst) != 0x1111 || m.ReadU64(dst+8) != 0x2222 || m.ReadU64(dst+24) != 0x4444 {
		t.Fatal("block copy mismatch")
	}
}

func TestReadWriteRange(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagReadWrite)
	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(i)
	}
	m.WriteRange(pa+40, src)
	dst := make([]byte, 100)
	m.ReadRange(pa+40, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestRangeCrossingPagePanics(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagReadWrite)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on page-crossing range")
		}
	}()
	m.ReadRange(pa+PageSize-4, make([]byte, 8))
}

func TestFloatRoundTrip(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagReadWrite)
	for _, v := range []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		m.WriteF64(pa+16, v)
		if got := m.ReadF64(pa + 16); got != v {
			t.Fatalf("ReadF64 = %v, want %v", got, v)
		}
	}
}

func TestConfigurableBlockSize(t *testing.T) {
	for _, bs := range []int{32, 64, 128} {
		m := New(0, Config{BlockSize: bs})
		if m.BlocksPerPage() != PageSize/bs {
			t.Fatalf("bs=%d: BlocksPerPage = %d", bs, m.BlocksPerPage())
		}
		pa, _ := m.AllocFrame(TagInvalid)
		m.SetTag(pa, TagReadWrite)
		if m.Tag(pa+PA(bs-1)) != TagReadWrite {
			t.Fatalf("bs=%d: tag must span whole block", bs)
		}
		if m.Tag(pa+PA(bs)) != TagInvalid {
			t.Fatalf("bs=%d: tag must not span next block", bs)
		}
	}
}

func TestInvalidBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two block size")
		}
	}()
	New(0, Config{BlockSize: 48})
}

// Property: any 8-byte-aligned word written within a frame reads back
// identically and neighbouring words are untouched.
func TestWordWriteProperty(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagReadWrite)
	f := func(slot uint16, v uint64) bool {
		off := (uint64(slot) % (PageSize/8 - 2) * 8) + 8 // keep a neighbour on each side
		lo, hi := m.ReadU64(pa+PA(off-8)), m.ReadU64(pa+PA(off+8))
		m.WriteU64(pa+PA(off), v)
		return m.ReadU64(pa+PA(off)) == v &&
			m.ReadU64(pa+PA(off-8)) == lo &&
			m.ReadU64(pa+PA(off+8)) == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PA encode/decode round-trips for any node/offset in range.
func TestPARoundTripProperty(t *testing.T) {
	f := func(node uint8, off uint32) bool {
		pa := MakePA(int(node), uint64(off))
		return pa.Node() == int(node) && pa.Offset() == uint64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tag transitions never affect other blocks in the same frame.
func TestTagIsolationProperty(t *testing.T) {
	m := New(0, Config{})
	pa, _ := m.AllocFrame(TagInvalid)
	n := m.BlocksPerPage()
	shadow := make([]Tag, n)
	f := func(block uint8, tag uint8) bool {
		b := int(block) % n
		tg := Tag(tag % 4)
		m.SetTag(pa+PA(b*m.BlockSize()), tg)
		shadow[b] = tg
		for i := 0; i < n; i++ {
			if m.Tag(pa+PA(i*m.BlockSize())) != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
