package blizzard

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

func newBlizzard(t *testing.T, nodes int) (*machine.Machine, *stache.Protocol) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, CacheSize: 4096, Seed: 1})
	st := stache.New()
	New(m, st, Config{})
	return m, st
}

// TestUnmodifiedStacheRunsOnSoftwareTempest is the portability claim of
// §2: the exact same Stache library, attached to the software
// implementation, provides correct transparent shared memory.
func TestUnmodifiedStacheRunsOnSoftwareTempest(t *testing.T) {
	m, st := newBlizzard(t, 4)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	vals := make([]uint64, 4)
	_, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 99)
		}
		p.Barrier()
		vals[p.ID()] = p.ReadU64(seg.At(0))
		p.Barrier()
		if p.ID() == 2 {
			p.WriteU64(seg.At(0), 100)
		}
		p.Barrier()
		vals[p.ID()] = p.ReadU64(seg.At(0))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for n, v := range vals {
		if v != 100 {
			t.Errorf("node %d read %d, want 100", n, v)
		}
	}
}

// TestInlineCheckOverheadCharged: even pure cache hits on shared data
// pay the software access-check cost.
func TestInlineCheckOverheadCharged(t *testing.T) {
	m, _ := newBlizzard(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	priv := m.AllocPrivate(0, mem.PageSize)
	if _, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(seg.At(0))
		p.ReadU64(priv)
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(0)) // shared hit: 1 + check overhead
		sharedHit := p.Ctx.Time() - t0
		t0 = p.Ctx.Time()
		p.ReadU64(priv) // private hit: 1 cycle, unchecked
		privHit := p.Ctx.Time() - t0
		if sharedHit != 1+DefaultCheckOverhead {
			t.Errorf("shared hit cost %d, want %d", sharedHit, 1+DefaultCheckOverhead)
		}
		if privHit != 1 {
			t.Errorf("private hit cost %d, want 1", privHit)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHandlerCyclesStolenFromCPU: the home's compute processor pays for
// the protocol handlers it served.
func TestHandlerCyclesStolenFromCPU(t *testing.T) {
	m, _ := newBlizzard(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	var homeCost sim.Time
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 1 {
			p.ReadU64(seg.At(0)) // remote fetch: the home serves a GETS
		}
		p.Barrier()
		if p.ID() == 0 {
			t0 := p.Ctx.Time()
			p.ReadU64(seg.At(64)) // first reference after serving: absorbs the stall
			homeCost = p.Ctx.Time() - t0
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Local miss (29) + 1 + check overhead alone is 33; the stolen GETS
	// handler plus dispatch overhead must push it well past that.
	if homeCost <= 33+DefaultDispatchOverhead {
		t.Errorf("home reference cost %d; handler cycles not stolen", homeCost)
	}
}

// TestSoftwareSlowerThanTyphoon quantifies what the NP hardware buys:
// the same benchmark on the same protocol is slower on the software
// implementation.
func TestSoftwareSlowerThanTyphoon(t *testing.T) {
	exec := func(software bool) sim.Time {
		m := machine.New(machine.Config{Nodes: 4, CacheSize: 4096, Seed: 1})
		st := stache.New()
		if software {
			New(m, st, Config{})
		} else {
			typhoon.New(m, st)
		}
		app := ocean.New(ocean.Tiny())
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := app.Verify(m); err != nil {
			t.Fatal(err)
		}
		return res.ROICycles
	}
	hw := exec(false)
	sw := exec(true)
	ratio := float64(sw) / float64(hw)
	t.Logf("software/hardware = %.2f (hw=%d sw=%d)", ratio, hw, sw)
	if ratio <= 1.05 {
		t.Errorf("software Tempest should cost measurably more than Typhoon (ratio %.2f)", ratio)
	}
	if ratio > 10 {
		t.Errorf("software Tempest ratio %.2f implausibly high", ratio)
	}
}

// TestCustomProtocolPortable: the EM3D update protocol also runs
// unmodified on the software implementation (exercised via the harness
// in the comparison experiment; here a smoke test of attachment).
func TestCustomProtocolPortable(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	st := stache.New(stache.WithMigratory())
	sys := New(m, st, Config{CheckOverhead: 2, DispatchOverhead: 30})
	if sys == nil {
		t.Fatal("nil system")
	}
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	if _, err := m.Run(func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			if i%2 == p.ID() {
				v := p.ReadU64(seg.At(0))
				p.WriteU64(seg.At(0), v+1)
			}
			p.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := apps.ReadBackU64(m, seg.At(0)); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}
