// Package blizzard builds the software Tempest implementation the
// paper's §2 announces ("Tempest can also be implemented in software for
// existing machines. We are currently investigating a 'native' version
// for the CM-5") — the line of work published afterwards as Blizzard.
//
// The same Tempest interface and the same unmodified protocol libraries
// (Stache, custom protocols) run on a machine with no network-interface
// processor: fine-grain access control is synthesised by inline checks
// before every shared reference (Blizzard-S's binary rewriting), and
// protocol handlers execute on the node's main processor, stealing
// compute cycles and paying an interrupt-style dispatch cost. This is
// the portability claim of §2 made concrete — and the comparison against
// Typhoon quantifies what the custom hardware buys.
package blizzard

import (
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// Default software-Tempest costs. CheckOverhead models the inline
// tag-test sequence a binary rewriter inserts before each shared load or
// store; DispatchOverhead models trap/poll entry and exit on a commodity
// processor, versus Typhoon's hardware-assisted dispatch.
const (
	DefaultCheckOverhead    sim.Time = 3
	DefaultDispatchOverhead sim.Time = 50
)

// Config tunes the software implementation's costs; zero values select
// the defaults.
type Config struct {
	CheckOverhead    sim.Time
	DispatchOverhead sim.Time
}

// New attaches a software Tempest system running the given (unmodified)
// protocol to m. Extra options (a tracer, say) are applied after the
// software configuration, so they compose with it.
func New(m *machine.Machine, proto typhoon.Protocol, cfg Config, opts ...typhoon.Option) *typhoon.System {
	if cfg.CheckOverhead == 0 {
		cfg.CheckOverhead = DefaultCheckOverhead
	}
	if cfg.DispatchOverhead == 0 {
		cfg.DispatchOverhead = DefaultDispatchOverhead
	}
	all := append([]typhoon.Option{typhoon.WithSoftware(typhoon.SoftwareConfig{
		CheckOverhead:      cfg.CheckOverhead,
		DispatchOverhead:   cfg.DispatchOverhead,
		StealHandlerCycles: true,
	})}, opts...)
	return typhoon.New(m, proto, all...)
}

// NewStache attaches a software Tempest system running Stache — the
// Blizzard configuration the differential and conformance suites compare
// against Typhoon-Stache and DirNNB. Returning the protocol as well lets
// callers reach its invariant checks and state digest.
func NewStache(m *machine.Machine, cfg Config, opts ...typhoon.Option) (*typhoon.System, *stache.Protocol) {
	st := stache.New()
	return New(m, st, cfg, opts...), st
}
