package trace_test

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/trace"
)

// TestEventRoundTrip pins String/ParseEvent as exact inverses: the pair
// is the committed-corpus event encoding, so a drift in either direction
// would silently invalidate every recorded trace.
func TestEventRoundTrip(t *testing.T) {
	events := []trace.Event{
		{},
		{T: 42, Node: 3, Kind: trace.KTagChange, VA: 0x1000, Aux: 2},
		{T: 1<<63 - 1, Node: 999, Kind: trace.KNetDeliver, VA: mem.VA(1 << 40), Aux: ^uint64(0)},
		{T: 7, Node: 0, Kind: trace.KNetSend, VA: 0,
			Aux: trace.PackMsg(1234, 5, 6, 1, 80)},
		{T: 11, Node: 12, Kind: trace.Kind(200), VA: 0xdeadbeef, Aux: 1},
	}
	for _, e := range events {
		got, err := trace.ParseEvent(e.String())
		if err != nil {
			t.Errorf("ParseEvent(%q): %v", e.String(), err)
			continue
		}
		if got != e {
			t.Errorf("round trip: %+v -> %q -> %+v", e, e.String(), got)
		}
	}
}

func TestParseEventErrors(t *testing.T) {
	bad := []string{
		"",
		"42 node3 tag-change va=0x1000",              // missing aux
		"x node3 tag-change va=0x1000 aux=2",         // bad time
		"42 3 tag-change va=0x1000 aux=2",            // bad node
		"42 node-3 tag-change va=0x1000 aux=2",       // negative node
		"42 node3 what-is-this va=0x1000 aux=2",      // unknown kind
		"42 node3 kind(999) va=0x1000 aux=2",         // kind out of range
		"42 node3 tag-change va=1000 aux=2",          // va missing 0x
		"42 node3 tag-change va=0xzz aux=2",          // bad hex
		"42 node3 tag-change va=0x1000 aux=-2",       // bad aux
		"42 node3 tag-change va=0x1000 aux=2 junk=1", // extra field
	}
	for _, line := range bad {
		if _, err := trace.ParseEvent(line); err == nil {
			t.Errorf("ParseEvent(%q) = nil error, want error", line)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	// Every representable kind — named or not — must round-trip through
	// its String form, so corpora survive kind-set growth in either
	// direction.
	for k := 0; k < 256; k++ {
		kind := trace.Kind(k)
		got, err := trace.ParseKind(kind.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", kind.String(), err)
		}
		if got != kind {
			t.Fatalf("ParseKind(%q) = %d, want %d", kind.String(), got, kind)
		}
	}
}

func TestPackMsgRoundTrip(t *testing.T) {
	cases := []struct {
		handler  uint32
		src, dst int
		vnet     uint8
		bytes    int
	}{
		{0, 0, 0, 0, 0},
		{16, 1, 2, 0, 4},
		{65535, 4095, 4095, 1, 255},
		{1234, 31, 0, 1, 80},
	}
	for _, c := range cases {
		h, s, d, v, b := trace.UnpackMsg(trace.PackMsg(c.handler, c.src, c.dst, c.vnet, c.bytes))
		if h != c.handler || s != c.src || d != c.dst || v != c.vnet || b != c.bytes {
			t.Errorf("PackMsg%+v round trip = (%d %d %d %d %d)", c, h, s, d, v, b)
		}
	}
	for _, bad := range []func(){
		func() { trace.PackMsg(1<<16, 0, 0, 0, 0) },
		func() { trace.PackMsg(0, 1<<12, 0, 0, 0) },
		func() { trace.PackMsg(0, 0, 1<<12, 0, 0) },
		func() { trace.PackMsg(0, 0, -1, 0, 0) },
		func() { trace.PackMsg(0, 0, 0, 2, 0) },
		func() { trace.PackMsg(0, 0, 0, 0, 256) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("PackMsg out-of-range field did not panic")
				}
			}()
			bad()
		}()
	}
}

// FuzzTraceParse fuzzes the corpus event decoder: any input must either
// fail with an error or decode to an Event whose canonical String form
// re-parses to the identical Event (parse-print-parse fixpoint). Panics
// and round-trip drift are the bugs this hunts.
func FuzzTraceParse(f *testing.F) {
	f.Add("        42 node3   tag-change   va=0x1000 aux=2")
	f.Add("         0 node0   block-fault  va=0x0 aux=0")
	f.Add("      1234 node15  net-send     va=0x3c aux=18691700556816")
	f.Add("       990 node7   net-deliver  va=0x19 aux=551903297553")
	f.Add("         9 node1   kind(200)    va=0xdeadbeef aux=18446744073709551615")
	f.Add("not an event line")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := trace.ParseEvent(line)
		if err != nil {
			return
		}
		again, err := trace.ParseEvent(e.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", e.String(), line, err)
		}
		if again != e {
			t.Fatalf("round trip drift: %q -> %+v -> %q -> %+v", line, e, e.String(), again)
		}
	})
}

// TestTracerTruncatedAtCapBoundary documents the cap boundary (see the
// Tracer type comment): once a node's buffer fills, later events for
// that node are dropped and counted while other nodes keep recording —
// the merged stream interleaves complete and truncated nodes, and
// Truncated flags the whole trace so replay can refuse it.
func TestTracerTruncatedAtCapBoundary(t *testing.T) {
	tr := trace.New(4) // 2 nodes -> 2 events per node
	tr.Prepare(2)
	if tr.Truncated() {
		t.Fatal("fresh tracer reports truncated")
	}
	for i := 0; i < 4; i++ {
		tr.Emit(trace.Event{T: sim.Time(i), Node: 0, Kind: trace.KResume})
	}
	// Node 0 is at cap; node 1 still records.
	tr.Emit(trace.Event{T: 100, Node: 1, Kind: trace.KResume})
	if !tr.Truncated() {
		t.Fatal("tracer not truncated after overflowing node 0")
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("merged events = %d, want 3", len(ev))
	}
	// The merge interleaves node 0's truncated prefix with node 1's
	// later event: the stream is not a global-time prefix.
	if last := ev[len(ev)-1]; last.Node != 1 || last.T != 100 {
		t.Fatalf("expected node 1's post-truncation event last, got %+v", last)
	}
	tr.Reset()
	if tr.Truncated() {
		t.Fatal("Reset must clear the truncated flag")
	}
}
