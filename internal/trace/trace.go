// Package trace records protocol-level events — block faults, message
// sends and deliveries, thread resumes, page faults — with simulated
// timestamps, for debugging user-level protocols. Tracing is off unless
// a Tracer is attached to the Typhoon system; the hot paths pay only a
// nil check.
//
// Events are captured in per-node buffers: every emission names the node
// it happened on, and all of a node's emitters (its CPU, its protocol
// agent) execute on that node's shard, so capture is race-free at any
// shard count without locks. The global stream is reconstructed on
// demand by a deterministic merge keyed the same way the sharded engine
// orders simultaneous events — (time, node, per-node emission order) —
// so a sharded run's merged trace is identical to the serial run's.
package trace

import (
	"fmt"
	"io"
	"sort"

	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds. KMsgSend/KMsgRecv are the protocol-level view (a Typhoon
// NP issuing or dispatching a message, before costs); KNetSend and
// KNetDeliver are the network-level view recorded by the conformance
// taps (network.Network.OnSend, agent.Core.OnDispatch) — they exist for
// every protocol, DirNNB included, and carry enough detail (packed into
// Aux, see PackMsg) to re-issue the message stream standalone.
const (
	KBlockFault Kind = iota
	KPageFault
	KMsgSend
	KMsgRecv
	KResume
	KTagChange
	// KNetSend is a packet handed to the network: T is the cycle the
	// sender issued it (before any SendAfter delay), VA holds that delay
	// (the SendAfter extra), and Aux is PackMsg of the packet.
	KNetSend
	// KNetDeliver is a packet dispatched by a protocol agent: T is the
	// cycle the dispatch started (after occupancy waits), VA holds the
	// service time the dispatch consumed, and Aux is PackMsg.
	KNetDeliver
	// KNetArrive is a packet enqueued at its destination endpoint: T is
	// the delivery time (after any ejection-port serialisation), VA is
	// zero, and Aux is PackMsg. The arrival schedule is fully determined
	// by the send stream, so a replay reproduces it cycle-exact for
	// every protocol.
	KNetArrive
)

func (k Kind) String() string {
	switch k {
	case KBlockFault:
		return "block-fault"
	case KPageFault:
		return "page-fault"
	case KMsgSend:
		return "msg-send"
	case KMsgRecv:
		return "msg-recv"
	case KResume:
		return "resume"
	case KTagChange:
		return "tag-change"
	case KNetSend:
		return "net-send"
	case KNetDeliver:
		return "net-deliver"
	case KNetArrive:
		return "net-arrive"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// PackMsg packs a packet's identity for a KNetSend/KNetDeliver Aux:
// handler ID (16 bits), source and destination node (12 bits each), the
// virtual network (1 bit), and the payload size in bytes (8 bits — the
// network caps payloads at 80). Values outside those widths panic: the
// encoding is part of the committed-corpus format and must not alias.
func PackMsg(handler uint32, src, dst int, vnet uint8, bytes int) uint64 {
	if handler >= 1<<16 || src < 0 || src >= 1<<12 || dst < 0 || dst >= 1<<12 || vnet > 1 || bytes < 0 || bytes >= 1<<8 {
		panic(fmt.Sprintf("trace: PackMsg field out of range (handler=%d src=%d dst=%d vnet=%d bytes=%d)",
			handler, src, dst, vnet, bytes))
	}
	return uint64(handler) | uint64(src)<<16 | uint64(dst)<<28 | uint64(vnet)<<40 | uint64(bytes)<<41
}

// UnpackMsg reverses PackMsg.
func UnpackMsg(aux uint64) (handler uint32, src, dst int, vnet uint8, bytes int) {
	return uint32(aux & 0xFFFF), int(aux >> 16 & 0xFFF), int(aux >> 28 & 0xFFF),
		uint8(aux >> 40 & 1), int(aux >> 41 & 0xFF)
}

// Event is one recorded protocol event.
type Event struct {
	T    sim.Time
	Node int
	Kind Kind
	VA   mem.VA
	// Aux carries a kind-specific value: the handler ID for messages,
	// the new tag for tag changes, 1 for writes on faults.
	Aux uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%10d node%-3d %-12s va=%#x aux=%d", e.T, e.Node, e.Kind, e.VA, e.Aux)
}

// nodeBuf is one node's capture buffer. A node's events are appended by
// that node's contexts only, so the buffer is shard-local state.
type nodeBuf struct {
	events  []Event
	dropped uint64
}

// Tracer collects events up to a cap (oldest kept), with an optional
// filter. The cap is divided evenly across the node buffers (at least
// one event per node), so which events survive a tight cap does not
// depend on the shard count.
//
// Cap behaviour at the buffer boundary: when a node's buffer reaches its
// per-node share of Max, every later emission for that node — including
// mid-window ones under sharded execution — is counted in Dropped and
// discarded; the events already captured are kept (oldest-kept policy).
// The merged stream is then a prefix per node, not a prefix in global
// time: other nodes keep recording, so the merge interleaves complete
// and truncated nodes. Consumers that need a complete stream (replay,
// the conformance corpus) must check Truncated and refuse the trace
// rather than replaying a silently-partial recording.
//
// A Tracer belongs to exactly one simulated machine: call Prepare with
// the machine's node count before the run (typhoon.New does this for
// attached tracers), after which Emit is safe from all of the machine's
// shards because each emission lands in its node's buffer. Events,
// Dropped, CountByKind, Dump, and Reset inspect or clear all buffers at
// once and must only run while the machine is not (single-goroutine use
// before or after Run). When the harness runs machines in parallel
// (harness.RunAll), attach a separate Tracer to each machine. Reset lets
// a single goroutine reuse a Tracer (and its backing storage) across
// sequential runs.
type Tracer struct {
	// Filter, when non-nil, drops events it returns false for.
	Filter func(Event) bool
	// Max bounds the total number of retained events; zero means 1<<20.
	Max int

	bufs   []nodeBuf
	merged []Event // scratch for Events(); backing reused across calls
	keys   []mergeKey
}

// New returns an unbounded-filter tracer retaining up to max events.
func New(max int) *Tracer { return &Tracer{Max: max} }

// Prepare sizes the tracer for a machine with the given node count. It
// must be called before a sharded run — growing the buffer table during
// one would race — and before any emission whose retention should be
// governed by the final per-node cap. Prepare never shrinks, so a
// tracer reused across sequential runs keeps its buffers.
func (t *Tracer) Prepare(nodes int) {
	for len(t.bufs) < nodes {
		t.bufs = append(t.bufs, nodeBuf{})
	}
}

// perNodeCap is each node's share of the retention cap.
func (t *Tracer) perNodeCap() int {
	max := t.Max
	if max == 0 {
		max = 1 << 20
	}
	if n := len(t.bufs); n > 1 {
		max /= n
		if max == 0 {
			max = 1
		}
	}
	return max
}

// Emit records one event into its node's buffer. Emitting for a node
// beyond the prepared count grows the table — single-goroutine use only.
func (t *Tracer) Emit(e Event) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	if e.Node >= len(t.bufs) {
		t.Prepare(e.Node + 1)
	}
	b := &t.bufs[e.Node]
	if len(b.events) >= t.perNodeCap() {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// mergeKey orders the merged stream: time, then node, then the node's
// emission order — the same shape as the engine's stable event key, and
// like it a total order that no shard count can disturb.
type mergeKey struct {
	t    sim.Time
	node int
	seq  int
}

type mergeSort struct {
	ev   []Event
	keys []mergeKey
}

func (m *mergeSort) Len() int { return len(m.ev) }
func (m *mergeSort) Swap(i, j int) {
	m.ev[i], m.ev[j] = m.ev[j], m.ev[i]
	m.keys[i], m.keys[j] = m.keys[j], m.keys[i]
}
func (m *mergeSort) Less(i, j int) bool {
	a, b := m.keys[i], m.keys[j]
	if a.t != b.t {
		return a.t < b.t
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.seq < b.seq
}

// Events returns the recorded events merged across nodes in the
// deterministic (time, node, per-node emission order) order. The
// returned slice is the tracer's scratch buffer: it is rebuilt (into
// the same backing storage) by the next Events call and cleared by
// Reset.
func (t *Tracer) Events() []Event {
	t.merged = t.merged[:0]
	t.keys = t.keys[:0]
	for n := range t.bufs {
		for i, e := range t.bufs[n].events {
			t.merged = append(t.merged, e)
			t.keys = append(t.keys, mergeKey{t: e.T, node: n, seq: i})
		}
	}
	// Keys are unique (node, seq), so an unstable sort is deterministic.
	sort.Sort(&mergeSort{ev: t.merged, keys: t.keys})
	return t.merged
}

// NodeEvents returns one node's events in emission order — the order
// the node's contexts actually made the recorded calls, which is the
// order replay must re-issue them in. It is NOT the merged (time, node,
// seq) order restricted to the node: a context can run with a clock
// lagging its neighbours' (it was unparked mid-window and has not
// synced yet), so a node's emission times are not monotonic, and
// sorting by time would reorder calls whose side effects (injection-
// port claims) happen in call order. The returned slice is the live
// buffer: do not mutate, and do not hold it across Reset. Nodes beyond
// the prepared count return nil.
func (t *Tracer) NodeEvents(node int) []Event {
	if node < 0 || node >= len(t.bufs) {
		return nil
	}
	return t.bufs[node].events
}

// Dropped reports how many events the cap discarded, over all nodes.
func (t *Tracer) Dropped() uint64 {
	var d uint64
	for i := range t.bufs {
		d += t.bufs[i].dropped
	}
	return d
}

// Truncated reports whether the cap discarded any event — i.e. whether
// the merged stream is incomplete. A truncated trace must not be used as
// a replay corpus: at least one node's tail is missing, so the recorded
// message schedule no longer matches what the run actually did.
func (t *Tracer) Truncated() bool { return t.Dropped() > 0 }

// Reset clears the trace, keeping all backing storage.
func (t *Tracer) Reset() {
	for i := range t.bufs {
		t.bufs[i].events = t.bufs[i].events[:0]
		t.bufs[i].dropped = 0
	}
	t.merged = t.merged[:0]
	t.keys = t.keys[:0]
}

// Dump writes the merged trace, one event per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped at cap)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// CountByKind tallies the trace.
func (t *Tracer) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for i := range t.bufs {
		for _, e := range t.bufs[i].events {
			out[e.Kind]++
		}
	}
	return out
}
