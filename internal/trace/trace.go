// Package trace records protocol-level events — block faults, message
// sends and deliveries, thread resumes, page faults — with simulated
// timestamps, for debugging user-level protocols. Tracing is off unless
// a Tracer is attached to the Typhoon system; the hot paths pay only a
// nil check.
package trace

import (
	"fmt"
	"io"

	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KBlockFault Kind = iota
	KPageFault
	KMsgSend
	KMsgRecv
	KResume
	KTagChange
)

func (k Kind) String() string {
	switch k {
	case KBlockFault:
		return "block-fault"
	case KPageFault:
		return "page-fault"
	case KMsgSend:
		return "msg-send"
	case KMsgRecv:
		return "msg-recv"
	case KResume:
		return "resume"
	case KTagChange:
		return "tag-change"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded protocol event.
type Event struct {
	T    sim.Time
	Node int
	Kind Kind
	VA   mem.VA
	// Aux carries a kind-specific value: the handler ID for messages,
	// the new tag for tag changes, 1 for writes on faults.
	Aux uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%10d node%-3d %-12s va=%#x aux=%d", e.T, e.Node, e.Kind, e.VA, e.Aux)
}

// Tracer collects events up to a cap (oldest kept), with an optional
// filter.
//
// A Tracer is not safe for concurrent use: it belongs to exactly one
// simulated machine. When the harness runs machines in parallel
// (harness.RunAll), attach a separate Tracer to each machine; sharing
// one across concurrently running machines is a data race and
// interleaves unrelated event streams. Reset lets a single goroutine
// reuse a Tracer (and its backing storage) across sequential runs.
type Tracer struct {
	// Filter, when non-nil, drops events it returns false for.
	Filter func(Event) bool
	// Max bounds the number of retained events; zero means 1<<20.
	Max int

	events  []Event
	dropped uint64
}

// New returns an unbounded-filter tracer retaining up to max events.
func New(max int) *Tracer { return &Tracer{Max: max} }

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	max := t.Max
	if max == 0 {
		max = 1 << 20
	}
	if len(t.events) >= max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in emission order.
func (t *Tracer) Events() []Event { return t.events }

// Dropped reports how many events the cap discarded.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Reset clears the trace.
func (t *Tracer) Reset() {
	t.events = t.events[:0]
	t.dropped = 0
}

// Dump writes the trace, one event per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if t.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped at cap)\n", t.dropped); err != nil {
			return err
		}
	}
	return nil
}

// CountByKind tallies the trace.
func (t *Tracer) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range t.events {
		out[e.Kind]++
	}
	return out
}
