package trace

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
)

// ParseKind parses a Kind's String form. Unknown-but-valid kinds round-
// trip through the "kind(N)" notation, so a corpus recorded by a newer
// build (with kinds this build does not name) still parses.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "block-fault":
		return KBlockFault, nil
	case "page-fault":
		return KPageFault, nil
	case "msg-send":
		return KMsgSend, nil
	case "msg-recv":
		return KMsgRecv, nil
	case "resume":
		return KResume, nil
	case "tag-change":
		return KTagChange, nil
	case "net-send":
		return KNetSend, nil
	case "net-deliver":
		return KNetDeliver, nil
	case "net-arrive":
		return KNetArrive, nil
	}
	if rest, ok := strings.CutPrefix(s, "kind("); ok {
		if num, ok := strings.CutSuffix(rest, ")"); ok {
			n, err := strconv.ParseUint(num, 10, 8)
			if err != nil {
				return 0, fmt.Errorf("trace: bad kind %q: %v", s, err)
			}
			return Kind(n), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// ParseEvent parses one Event.String line back into an Event. The format
// is the committed-corpus event encoding, so String and ParseEvent must
// stay exact inverses (see the round-trip tests and FuzzTraceParse).
func ParseEvent(line string) (Event, error) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return Event{}, fmt.Errorf("trace: event line has %d fields, want 5: %q", len(f), line)
	}
	t, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("trace: bad time in %q: %v", line, err)
	}
	ns, ok := strings.CutPrefix(f[1], "node")
	if !ok {
		return Event{}, fmt.Errorf("trace: bad node field %q in %q", f[1], line)
	}
	node, err := strconv.ParseInt(ns, 10, 32)
	if err != nil || node < 0 {
		return Event{}, fmt.Errorf("trace: bad node field %q in %q", f[1], line)
	}
	kind, err := ParseKind(f[2])
	if err != nil {
		return Event{}, fmt.Errorf("trace: %v in %q", err, line)
	}
	vs, ok := strings.CutPrefix(f[3], "va=0x")
	if !ok {
		return Event{}, fmt.Errorf("trace: bad va field %q in %q", f[3], line)
	}
	va, err := strconv.ParseUint(vs, 16, 64)
	if err != nil {
		return Event{}, fmt.Errorf("trace: bad va field %q in %q: %v", f[3], line, err)
	}
	as, ok := strings.CutPrefix(f[4], "aux=")
	if !ok {
		return Event{}, fmt.Errorf("trace: bad aux field %q in %q", f[4], line)
	}
	aux, err := strconv.ParseUint(as, 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("trace: bad aux field %q in %q: %v", f[4], line, err)
	}
	return Event{T: sim.Time(t), Node: int(node), Kind: kind, VA: mem.VA(va), Aux: aux}, nil
}
