package trace_test

import (
	"context"
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/harness"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

func TestTraceCapturesMissProtocol(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	tr := trace.New(0)
	typhoon.New(m, stache.New(), typhoon.WithTracer(tr))
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 1)
		}
		p.Barrier()
		if p.ID() == 1 {
			p.ReadU64(seg.At(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
	counts := tr.CountByKind()
	if counts[trace.KPageFault] == 0 {
		t.Error("no page fault traced")
	}
	if counts[trace.KBlockFault] == 0 {
		t.Error("no block fault traced")
	}
	if counts[trace.KMsgSend] == 0 || counts[trace.KMsgRecv] == 0 {
		t.Errorf("message events missing: %v", counts)
	}
	if counts[trace.KResume] == 0 {
		t.Error("no resume traced")
	}
	// The canonical order for node 1's miss: page fault, block fault,
	// request send, ... , resume.
	var sawPF, sawBF, sawSend, sawResume bool
	for _, e := range tr.Events() {
		switch {
		case e.Kind == trace.KPageFault && e.Node == 1:
			sawPF = true
		case e.Kind == trace.KBlockFault && e.Node == 1:
			if !sawPF {
				t.Fatal("block fault before page fault")
			}
			sawBF = true
		case e.Kind == trace.KMsgSend && e.Node == 1 && !sawSend && sawBF:
			sawSend = true
		case e.Kind == trace.KResume && e.Node == 1:
			if !sawSend {
				t.Fatal("resume before the request was sent")
			}
			sawResume = true
		}
	}
	if !sawResume {
		t.Fatal("node 1 never resumed")
	}
}

func TestTraceFilterAndCap(t *testing.T) {
	tr := trace.New(2)
	tr.Filter = func(e trace.Event) bool { return e.Kind == trace.KResume }
	tr.Emit(trace.Event{Kind: trace.KMsgSend})
	tr.Emit(trace.Event{Kind: trace.KResume, T: 1})
	tr.Emit(trace.Event{Kind: trace.KResume, T: 2})
	tr.Emit(trace.Event{Kind: trace.KResume, T: 3}) // over cap
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events()))
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTraceDump(t *testing.T) {
	tr := trace.New(10)
	tr.Emit(trace.Event{T: 42, Node: 3, Kind: trace.KTagChange, VA: 0x1000, Aux: 2})
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"42", "node3", "tag-change", "0x1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []trace.Kind{trace.KBlockFault, trace.KPageFault, trace.KMsgSend,
		trace.KMsgRecv, trace.KResume, trace.KTagChange, trace.Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}

// TestTraceResetReusesBacking pins Reset's contract: the backing slice
// is kept (len 0, capacity intact) so a machine-at-a-time harness can
// reuse one Tracer across sequential runs without reallocating.
func TestTraceResetReusesBacking(t *testing.T) {
	tr := trace.New(8)
	tr.Emit(trace.Event{T: 1})
	tr.Emit(trace.Event{T: 2})
	before := tr.Events()
	if cap(before) < 2 {
		t.Fatalf("cap = %d, want >= 2", cap(before))
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("reset left events behind")
	}
	tr.Emit(trace.Event{T: 3})
	after := tr.Events()
	if &before[0] != &after[0] {
		t.Error("Reset reallocated the backing slice")
	}
}

// TestTraceDroppedAccounting checks the cap bookkeeping in isolation:
// every emission past the cap increments Dropped and nothing is evicted.
func TestTraceDroppedAccounting(t *testing.T) {
	tr := trace.New(3)
	for i := 0; i < 10; i++ {
		tr.Emit(trace.Event{T: sim.Time(i)})
	}
	if len(tr.Events()) != 3 {
		t.Fatalf("events = %d, want 3 (oldest kept)", len(tr.Events()))
	}
	if tr.Events()[0].T != 0 || tr.Events()[2].T != 2 {
		t.Errorf("cap should keep the oldest events: %v", tr.Events())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	tr.Reset()
	if tr.Dropped() != 0 {
		t.Fatal("Reset must clear the dropped count")
	}
}

// TestTracerPerMachineParallel runs several traced machines concurrently
// on the harness worker pool, one Tracer per machine (a Tracer must
// never be shared across concurrently running machines — see the type
// comment). Each machine's trace and Dropped() accounting must be
// bit-identical to a serial run of the same configuration.
func TestTracerPerMachineParallel(t *testing.T) {
	const maxEvents = 4 // tight: every machine drops events
	runOne := func(seed uint64) (int, uint64, error) {
		m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: seed})
		tr := trace.New(maxEvents)
		typhoon.New(m, stache.New(), typhoon.WithTracer(tr))
		seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
		if _, err := m.Run(func(p *machine.Proc) {
			if p.ID() == 0 {
				p.WriteU64(seg.At(0), 7)
			}
			p.Barrier()
			p.ReadU64(seg.At(0))
		}); err != nil {
			return 0, 0, err
		}
		return len(tr.Events()), tr.Dropped(), nil
	}

	type shape struct {
		events  int
		dropped uint64
	}
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	serial := make([]shape, len(seeds))
	for i, s := range seeds {
		ev, dr, err := runOne(s)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = shape{ev, dr}
	}

	var jobs []harness.Job[shape]
	for _, s := range seeds {
		jobs = append(jobs, func(context.Context) (shape, error) {
			ev, dr, err := runOne(s)
			return shape{ev, dr}, err
		})
	}
	parallel, err := harness.RunAll(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if parallel[i] != serial[i] {
			t.Errorf("seed %d: parallel trace %+v != serial %+v", seeds[i], parallel[i], serial[i])
		}
		if parallel[i].dropped == 0 {
			t.Errorf("seed %d: cap %d never dropped; tighten the test", seeds[i], maxEvents)
		}
	}
}

// TestTracerShardedVsSerial is the tracer's shard-equivalence proof: one
// traced benchmark at 1, 2, and 4 shards must produce byte-identical
// merged event streams (and identical drop accounting). Each node's
// events are captured on that node's shard; the deterministic
// (time, node, emission order) merge reconstructs the serial order. Run
// under -race this is also the memory-safety proof for shard-local
// capture.
func TestTracerShardedVsSerial(t *testing.T) {
	runTraced := func(shards int) []trace.Event {
		app, err := harness.MakeApp("em3d", harness.ScaleReduced, harness.SetSmall)
		if err != nil {
			t.Fatal(err)
		}
		cfg := harness.MachineConfig(harness.ScaleReduced, 16<<10)
		cfg.Shards = shards
		m := machine.New(cfg)
		tr := trace.New(0)
		typhoon.New(m, stache.New(), typhoon.WithTracer(tr))
		app.Setup(m)
		if _, err := m.Run(app.Body); err != nil {
			t.Fatal(err)
		}
		if tr.Dropped() != 0 {
			t.Fatalf("shards=%d: %d events dropped with an unbounded cap", shards, tr.Dropped())
		}
		out := make([]trace.Event, len(tr.Events()))
		copy(out, tr.Events())
		return out
	}
	serial := runTraced(1)
	if len(serial) == 0 {
		t.Fatal("serial run traced no events")
	}
	for _, shards := range []int{2, 4} {
		sharded := runTraced(shards)
		if len(sharded) != len(serial) {
			t.Fatalf("shards=%d: %d events, serial %d", shards, len(sharded), len(serial))
		}
		for i := range serial {
			if sharded[i] != serial[i] {
				t.Fatalf("shards=%d: event %d = %+v, serial %+v", shards, i, sharded[i], serial[i])
			}
		}
	}
}
