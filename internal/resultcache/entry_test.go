package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/network"
)

// sampleEntry builds a representative entry: observation records,
// several counters, and non-zero traffic on both virtual networks.
func sampleEntry() *Entry {
	var net network.Stats
	net.VNets[0] = network.VNetStats{Packets: 120, PayloadBytes: 4096, QueueingCycles: 7, MaxQueueDepth: 3}
	net.VNets[1] = network.VNetStats{Packets: 118, PayloadBytes: 9000, MaxQueueDepth: 2}
	net.LocalSends = 31
	return &Entry{
		Key:    NewKey().Str("system", "typhoon-stache").Str("app", "ocean").Int("m.nodes", 8).Sum(),
		Code:   "0123456789abcdef",
		System: "typhoon-stache",
		App:    "ocean",
		Cycles: 138926,
		ROI:    86416,
		Obs:    []ObsRecord{{Hash: 0xdeadbeef, Ops: 42}, {Hash: 1, Ops: 2}},
		Counters: map[string]uint64{
			"cpu.reads":   1000,
			"cpu.writes":  500,
			"net.packets": 238,
		},
		Net: net,
	}
}

// resign recomputes the checksum footer after a deliberate payload
// mutation, so canonical-form violations are tested on their own merits
// rather than being masked by the checksum gate.
func resign(t *testing.T, data []byte) []byte {
	t.Helper()
	body := strings.TrimSuffix(string(data), "\n")
	cut := strings.LastIndex(body, "\n")
	if cut < 0 || !strings.HasPrefix(body[cut+1:], "sum ") {
		t.Fatalf("resign: no sum footer in %q", body)
	}
	payload := data[:cut+1]
	sum := sha256.Sum256(payload)
	return append(payload, []byte("sum "+hex.EncodeToString(sum[:])+"\n")...)
}

func TestEntryRoundTrip(t *testing.T) {
	for _, origin := range []string{"", "witness:64K"} {
		e := sampleEntry()
		e.Origin = origin
		data := e.Encode()
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("origin=%q: Decode: %v", origin, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("origin=%q: round trip diverged:\n got %+v\nwant %+v", origin, got, e)
		}
		// Decode rejects every non-canonical byte, so decode→re-encode
		// must be the identity.
		if re := got.Encode(); !bytes.Equal(re, data) {
			t.Errorf("origin=%q: re-encode is not the identity:\n got %q\nwant %q", origin, re, data)
		}
	}
}

func TestEntryRoundTripMinimal(t *testing.T) {
	e := &Entry{
		Key:      NewKey().Sum(),
		Code:     "in-memory",
		System:   "dirnnb",
		App:      "appbt",
		Counters: map[string]uint64{},
	}
	got, err := Decode(e.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("minimal round trip diverged:\n got %+v\nwant %+v", got, e)
	}
}

// decodeErr asserts the decode failed with a structured *Error carrying
// Op "decode" and the given message fragment — the contract that lets
// Cache.Get fall back to simulation instead of panicking.
func decodeErr(t *testing.T, data []byte, wantMsg string) {
	t.Helper()
	e, err := Decode(data)
	if err == nil {
		t.Fatalf("Decode succeeded (%+v), want error containing %q", e, wantMsg)
	}
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("Decode error %T is not a *resultcache.Error: %v", err, err)
	}
	if re.Op != "decode" {
		t.Errorf("error Op = %q, want \"decode\" (%v)", re.Op, re)
	}
	if !strings.Contains(re.Msg, wantMsg) {
		t.Errorf("error %q does not mention %q", re.Msg, wantMsg)
	}
}

func TestDecodeDamageClassification(t *testing.T) {
	valid := sampleEntry().Encode()

	t.Run("corrupt-flipped-byte", func(t *testing.T) {
		data := bytes.Replace(valid, []byte("cycles 138926"), []byte("cycles 138927"), 1)
		decodeErr(t, data, "checksum mismatch")
	})
	t.Run("truncated-mid-entry", func(t *testing.T) {
		decodeErr(t, valid[:len(valid)/2], "truncated entry")
	})
	t.Run("truncated-no-final-newline", func(t *testing.T) {
		decodeErr(t, valid[:len(valid)-1], "truncated entry")
	})
	t.Run("version-skew-future-format", func(t *testing.T) {
		// A future format shares the name prefix but nothing else.
		decodeErr(t, []byte("tempest-resultcache v2\nopaque future payload\n"), "version skew")
	})
	t.Run("version-skew-signed", func(t *testing.T) {
		data := resign(t, bytes.Replace(valid, []byte(entryMagic+"\n"), []byte("tempest-resultcache v0\n"), 1))
		decodeErr(t, data, "version skew")
	})
	t.Run("empty", func(t *testing.T) {
		decodeErr(t, nil, "empty entry")
	})
	t.Run("bad-magic", func(t *testing.T) {
		decodeErr(t, []byte("not a cache file\n"), "bad magic")
	})
}

func TestDecodeRejectsNonCanonicalForms(t *testing.T) {
	valid := sampleEntry().Encode()
	mutate := func(old, new string) []byte {
		data := bytes.Replace(valid, []byte(old), []byte(new), 1)
		if bytes.Equal(data, valid) {
			t.Fatalf("mutation %q -> %q did not apply", old, new)
		}
		return resign(t, data)
	}

	cases := []struct {
		name, old, new, wantMsg string
	}{
		{"leading-zero-uint", "cycles 138926", "cycles 0138926", "not a canonical unsigned integer"},
		{"signed-uint", "roi 86416", "roi +86416", "not a canonical unsigned integer"},
		{"obs-index-out-of-order", "obs 1 1 2", "obs 2 1 2", "out of order"},
		{"counter-out-of-order", "counter cpu.writes 500", "counter cpu.aaa 500", "out of sorted order"},
		{"net-vnet-out-of-order", "net 1 118", "net 0 118", "out of order"},
		{"empty-origin", "app ocean\ncycles", "app ocean\norigin \ncycles", "empty origin"},
		{"trailing-line", "netlocal 31\n", "netlocal 31\nextra junk\n", "unexpected line"},
		{"missing-netlocal", "netlocal 31\n", "", "missing \"netlocal\" line"},
		{"malformed-counter", "counter net.packets 238", "counter net.packets 2 38", "malformed counter line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decodeErr(t, mutate(tc.old, tc.new), tc.wantMsg)
		})
	}
}

func TestWithKey(t *testing.T) {
	e := sampleEntry()
	k2 := NewKey().Str("other", "key").Sum()
	alias := e.WithKey(k2, "witness:4K")
	if alias.Key != k2 || alias.Origin != "witness:4K" {
		t.Errorf("alias identity = (%s, %q), want (%s, \"witness:4K\")", alias.Key, alias.Origin, k2)
	}
	if e.Key == k2 || e.Origin != "" {
		t.Errorf("WithKey mutated the original: key %s origin %q", e.Key, e.Origin)
	}
	if alias.Cycles != e.Cycles || !reflect.DeepEqual(alias.Counters, e.Counters) {
		t.Error("alias does not share the original result")
	}
}

func TestCheckMatch(t *testing.T) {
	base := sampleEntry()
	if err := CheckMatch(base, sampleEntry()); err != nil {
		t.Fatalf("identical entries diverge: %v", err)
	}
	// Origin, Key, and Code are provenance, not results.
	aliased := sampleEntry().WithKey(NewKey().Str("x", "y").Sum(), "witness:4K")
	aliased.Code = "ffffffffffffffff"
	if err := CheckMatch(aliased, sampleEntry()); err != nil {
		t.Fatalf("provenance-only difference reported as divergence: %v", err)
	}

	verifyErr := func(t *testing.T, mut func(*Entry), wantMsg string) {
		t.Helper()
		fresh := sampleEntry()
		mut(fresh)
		err := CheckMatch(base, fresh)
		var re *Error
		if !errors.As(err, &re) || re.Op != "verify" {
			t.Fatalf("CheckMatch = %v, want verify *Error", err)
		}
		if !strings.Contains(re.Msg, wantMsg) {
			t.Errorf("error %q does not mention %q", re.Msg, wantMsg)
		}
	}
	t.Run("cycles", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.Cycles++ }, "cycles diverge")
	})
	t.Run("roi", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.ROI-- }, "ROI cycles diverge")
	})
	t.Run("counter-value", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.Counters["cpu.reads"] = 7 }, "counter cpu.reads diverges")
	})
	t.Run("counter-extra-fresh", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.Counters["cpu.new"] = 1 }, "present only in re-simulation")
	})
	t.Run("counter-missing-fresh", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { delete(e.Counters, "net.packets") }, "counter net.packets diverges")
	})
	t.Run("network", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.Net.LocalSends++ }, "network stats diverge")
	})
	t.Run("observation", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.Obs[0].Hash++ }, "observation diverges")
	})
	t.Run("observation-count", func(t *testing.T) {
		verifyErr(t, func(e *Entry) { e.Obs = e.Obs[:1] }, "record count diverges")
	})
}

func TestErrorString(t *testing.T) {
	err := &Error{Op: "decode", Path: "/tmp/x.entry", Msg: "checksum mismatch"}
	want := "resultcache: decode /tmp/x.entry: checksum mismatch"
	if got := err.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(&Error{Op: "verify", Msg: "cycles diverge"}); !strings.Contains(got, "verify") {
		t.Errorf("pathless error %q missing op", got)
	}
}
