package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// entryForKey builds a distinct valid entry stored under a key derived
// from id.
func entryForKey(id int) *Entry {
	e := sampleEntry()
	e.Key = NewKey().Int("test.id", int64(id)).Sum()
	e.Cycles = uint64(1000 + id)
	return e
}

// diskPath mirrors Cache.path for tests that damage entries in place.
func diskPath(dir string, k Key) string {
	hex := k.String()
	return filepath.Join(dir, hex[:2], hex+".entry")
}

func TestCacheMemoryHitAndMiss(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Persistent() {
		t.Error("memory-only cache claims to be persistent")
	}
	e := entryForKey(1)
	if got, err := c.Get(e.Key); got != nil || err != nil {
		t.Fatalf("Get on empty cache = (%v, %v), want (nil, nil)", got, err)
	}
	c.Put(e)
	got, err := c.Get(e.Key)
	if err != nil || got == nil || got.Cycles != e.Cycles {
		t.Fatalf("Get after Put = (%+v, %v)", got, err)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 store", s)
	}
}

func TestCachePersistsAcrossProcessesAndPromotes(t *testing.T) {
	dir := t.TempDir()
	a, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Persistent() {
		t.Fatal("disk-backed cache claims not to be persistent")
	}
	e := entryForKey(2)
	a.Put(e)
	if _, err := os.Stat(diskPath(dir, e.Key)); err != nil {
		t.Fatalf("entry file missing after Put: %v", err)
	}

	// A fresh Cache over the same directory simulates a new process:
	// empty memory tier, warm disk tier.
	b, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(e.Key)
	if err != nil || got == nil || got.Cycles != e.Cycles {
		t.Fatalf("warm Get = (%+v, %v)", got, err)
	}
	if s := b.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("warm stats = %+v, want pure hit", s)
	}
	// The disk hit was promoted into memory: delete the file and the
	// entry must still be served.
	if err := os.Remove(diskPath(dir, e.Key)); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get(e.Key); err != nil || got == nil {
		t.Fatalf("Get after promotion = (%+v, %v), want memory hit", got, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := New(Options{MemEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2, e3 := entryForKey(1), entryForKey(2), entryForKey(3)
	c.Put(e1)
	c.Put(e2)
	if _, err := c.Get(e1.Key); err != nil {
		t.Fatal(err)
	}
	c.Put(e3) // evicts e2, the least recently used
	if got, _ := c.Get(e2.Key); got != nil {
		t.Error("evicted entry still resident")
	}
	for _, e := range []*Entry{e1, e3} {
		if got, _ := c.Get(e.Key); got == nil {
			t.Errorf("entry %d evicted out of LRU order", e.Cycles)
		}
	}
	// With a disk tier, memory eviction only costs a re-read.
	dir := t.TempDir()
	d, err := New(Options{Dir: dir, MemEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(e1)
	d.Put(e2) // e1 falls out of the single memory slot
	if got, err := d.Get(e1.Key); err != nil || got == nil || got.Cycles != e1.Cycles {
		t.Fatalf("Get of memory-evicted entry = (%+v, %v), want disk hit", got, err)
	}
}

// TestCacheDamagedEntryFallback is the satellite contract: corrupted,
// truncated, and version-skewed on-disk entries must surface as a
// structured *Error plus a cache.corrupt count — never a panic — and
// leave the caller free to fall back to simulation and overwrite the
// damaged file.
func TestCacheDamagedEntryFallback(t *testing.T) {
	damage := []struct {
		name string
		mut  func(t *testing.T, data []byte) []byte
	}{
		{"corrupt", func(t *testing.T, data []byte) []byte {
			return bytes.Replace(data, []byte("cycles"), []byte("cYcles"), 1)
		}},
		{"truncated", func(t *testing.T, data []byte) []byte {
			return data[:len(data)*2/3]
		}},
		{"version-skew", func(t *testing.T, data []byte) []byte {
			return resign(t, bytes.Replace(data, []byte(entryMagic+"\n"), []byte("tempest-resultcache v99\n"), 1))
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			a, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			e := entryForKey(7)
			a.Put(e)
			path := diskPath(dir, e.Key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, d.mut(t, data), 0o644); err != nil {
				t.Fatal(err)
			}

			c, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			got, gerr := c.Get(e.Key)
			if got != nil {
				t.Fatalf("damaged entry decoded to %+v", got)
			}
			var re *Error
			if !errors.As(gerr, &re) || re.Op != "decode" {
				t.Fatalf("Get error = %v, want decode *Error", gerr)
			}
			if re.Path != path {
				t.Errorf("error path = %q, want %q", re.Path, path)
			}
			if s := c.Stats(); s.Corrupt != 1 || s.Hits != 0 {
				t.Errorf("stats = %+v, want exactly 1 corrupt, 0 hits", s)
			}
			// The fallback path: re-simulate, Put, and the key serves again.
			c.Put(e)
			if got, err := c.Get(e.Key); err != nil || got == nil || got.Cycles != e.Cycles {
				t.Fatalf("Get after overwrite = (%+v, %v)", got, err)
			}
			if s := c.Stats(); s.Errors != 0 {
				t.Errorf("overwrite counted %d write errors", s.Errors)
			}
		})
	}
}

func TestCacheMisfiledEntryIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := entryForKey(8)
	c.Put(e)
	// File a valid entry under a different key's path.
	other := NewKey().Str("other", "slot").Sum()
	src := diskPath(dir, e.Key)
	dst := diskPath(dir, other)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, gerr := c.Get(other)
	var re *Error
	if got != nil || !errors.As(gerr, &re) || re.Op != "decode" {
		t.Fatalf("misfiled Get = (%+v, %v), want decode *Error", got, gerr)
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 corrupt", s)
	}
}

func TestContainsHasNoTelemetry(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := entryForKey(9)
	if c.Contains(e.Key) {
		t.Error("Contains true on empty cache")
	}
	c.Put(e)
	if !c.Contains(e.Key) {
		t.Error("Contains false after Put")
	}
	// A second process sees it through the disk tier alone.
	b, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(e.Key) {
		t.Error("Contains false through disk tier")
	}
	want := Stats{Stores: 1}
	if s := c.Stats(); s != want {
		t.Errorf("Contains moved telemetry: %+v", s)
	}
	if s := b.Stats(); (s != Stats{}) {
		t.Errorf("disk Contains moved telemetry: %+v", s)
	}
}

func TestShouldVerify(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey().Str("a", "b").Sum()
	if c.ShouldVerify(k, 0) {
		t.Error("fraction 0 selected a key")
	}
	if !c.ShouldVerify(k, 1) {
		t.Error("fraction 1 skipped a key")
	}
	// Deterministic: the same key gives the same answer every time.
	first := c.ShouldVerify(k, 0.5)
	for i := 0; i < 10; i++ {
		if c.ShouldVerify(k, 0.5) != first {
			t.Fatal("ShouldVerify is not deterministic")
		}
	}
	// Roughly proportional: the hash threshold should select about
	// fraction*n of n distinct keys. Bounds are loose (±10 points on
	// 2000 keys) — this is a sanity check, not a statistics suite.
	const n = 2000
	selected := 0
	for i := 0; i < n; i++ {
		if c.ShouldVerify(NewKey().Int("i", int64(i)).Sum(), 0.5) {
			selected++
		}
	}
	if selected < n*4/10 || selected > n*6/10 {
		t.Errorf("fraction 0.5 selected %d of %d keys", selected, n)
	}
}

func TestCountersSnapshot(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := entryForKey(10)
	c.Put(e)
	if _, err := c.Get(e.Key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(NewKey().Str("missing", "x").Sum()); err != nil {
		t.Fatal(err)
	}
	c.NoteVerified()
	ctr := c.Counters()
	for name, want := range map[string]uint64{
		"cache.hits": 1, "cache.misses": 1, "cache.stores": 1,
		"cache.verified": 1, "cache.corrupt": 0,
	} {
		if got := ctr.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	wantStr := "1 hits, 1 misses, 1 stores, 1 verified, 0 corrupt"
	if got := c.Stats().String(); got != wantStr {
		t.Errorf("Stats.String() = %q, want %q", got, wantStr)
	}
}

func TestCodeDigest(t *testing.T) {
	d1, err := CodeDigest()
	if err != nil {
		t.Fatalf("CodeDigest: %v", err)
	}
	if len(d1) != 16 {
		t.Errorf("digest %q is not 16 hex chars", d1)
	}
	d2, err := CodeDigest()
	if err != nil || d2 != d1 {
		t.Errorf("CodeDigest unstable: %q then (%q, %v)", d1, d2, err)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir(), MemEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				e := entryForKey(i % 16)
				c.Put(e)
				got, err := c.Get(e.Key)
				if err != nil {
					done <- err
					return
				}
				if got == nil || got.Cycles != e.Cycles {
					done <- fmt.Errorf("worker %d: Get(%d) = %+v", w, i%16, got)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
