// Package resultcache is a content-addressed store for simulation
// results. Every run in this repo is bit-deterministic at any
// worker/shard count, so a simulation's output is a pure function of
// its canonicalized input (machine configuration, system, application
// parameters, and a digest of the simulator sources); that function is
// safe to memoize. The cache is two-tier — an in-memory LRU always,
// plus an optional on-disk directory that persists results across
// processes — with a versioned, checksummed entry format, structured
// errors (never panics) for damaged entries, and hit/miss/store
// telemetry surfaced through the standard stats counters.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/tempest-sim/tempest/internal/stats"
)

// defaultMemEntries bounds the in-memory tier when Options.MemEntries
// is zero. A full Figure 3 sweep is ~120 points; 4096 entries keeps
// every sweep this repo runs resident with room to spare.
const defaultMemEntries = 4096

// Options configures a Cache.
type Options struct {
	// Dir is the on-disk tier's directory ("" for memory-only). It is
	// created if missing; entries live at Dir/<hex[:2]>/<hex>.entry.
	Dir string
	// MemEntries bounds the in-memory LRU (default 4096).
	MemEntries int
}

// Stats is a snapshot of cache telemetry.
type Stats struct {
	// Hits and Misses count Get outcomes; Stores counts successful
	// Puts. Verified counts hits re-simulated by -cache-verify that
	// matched. Corrupt counts damaged on-disk entries that fell back to
	// simulation. Errors counts disk I/O failures on writes (reads that
	// fail to find an entry are misses, not errors).
	Hits, Misses, Stores, Verified, Corrupt, Errors uint64
}

func (s Stats) String() string {
	out := fmt.Sprintf("%d hits, %d misses, %d stores, %d verified, %d corrupt", s.Hits, s.Misses, s.Stores, s.Verified, s.Corrupt)
	if s.Errors > 0 {
		out += fmt.Sprintf(", %d write errors", s.Errors)
	}
	return out
}

// Cache is the two-tier store. All methods are safe for concurrent
// use; RunAll workers share one Cache per sweep.
type Cache struct {
	dir string

	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *memEntry
	byKey map[Key]*list.Element
	stats Stats
}

type memEntry struct {
	key Key
	e   *Entry
}

// New builds a Cache. With a non-empty Dir the directory is created on
// the spot so a misconfigured path fails at startup, not mid-sweep.
func New(o Options) (*Cache, error) {
	if o.MemEntries <= 0 {
		o.MemEntries = defaultMemEntries
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, &Error{Op: "write", Path: o.Dir, Msg: err.Error()}
		}
	}
	return &Cache{
		dir:   o.Dir,
		max:   o.MemEntries,
		order: list.New(),
		byKey: make(map[Key]*list.Element),
	}, nil
}

// Persistent reports whether the cache has an on-disk tier.
func (c *Cache) Persistent() bool { return c.dir != "" }

// path returns the on-disk location of a key, fanned out by the first
// hex byte so directories stay small.
func (c *Cache) path(k Key) string {
	hex := k.String()
	return filepath.Join(c.dir, hex[:2], hex+".entry")
}

// Get looks a key up in memory, then on disk. A damaged disk entry
// (corrupt, truncated, or version-skewed) counts as cache.corrupt and
// returns the structured decode *Error alongside a nil entry; the
// caller falls back to simulation. A clean not-found is (nil, nil).
func (c *Cache) Get(k Key) (*Entry, error) {
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		e := el.Value.(*memEntry).e
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()
	if c.dir == "" {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return nil, nil
	}
	path := c.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, &Error{Op: "read", Path: path, Msg: err.Error()}
	}
	e, derr := decode(data, path)
	if derr == nil && e.Key != k {
		derr = &Error{Op: "decode", Path: path, Msg: fmt.Sprintf("entry records key %s but is filed under %s", e.Key, k)}
	}
	if derr != nil {
		c.mu.Lock()
		c.stats.Corrupt++
		c.mu.Unlock()
		return nil, derr
	}
	c.mu.Lock()
	c.insertLocked(e)
	c.stats.Hits++
	c.mu.Unlock()
	return e, nil
}

// Contains reports whether a key is present in either tier without
// touching hit/miss telemetry — used to guard witness-alias stores.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	_, ok := c.byKey[k]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.dir == "" {
		return false
	}
	_, err := os.Stat(c.path(k))
	return err == nil
}

// insertLocked adds e to the memory tier, evicting from the LRU tail.
func (c *Cache) insertLocked(e *Entry) {
	if el, ok := c.byKey[e.Key]; ok {
		el.Value.(*memEntry).e = e
		c.order.MoveToFront(el)
		return
	}
	c.byKey[e.Key] = c.order.PushFront(&memEntry{key: e.Key, e: e})
	for c.order.Len() > c.max {
		tail := c.order.Back()
		delete(c.byKey, tail.Value.(*memEntry).key)
		c.order.Remove(tail)
	}
}

// Put stores an entry in both tiers. Disk failures are counted (the
// sweep's results are unaffected — only future warm starts are) and
// the memory tier still holds the entry.
func (c *Cache) Put(e *Entry) {
	c.mu.Lock()
	c.insertLocked(e)
	c.stats.Stores++
	diskErr := false
	c.mu.Unlock()
	if c.dir != "" {
		if err := c.writeDisk(e); err != nil {
			diskErr = true
		}
	}
	if diskErr {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
	}
}

// writeDisk encodes to a temp file in the final directory and renames,
// so concurrent writers of the same key land whole entries.
func (c *Cache) writeDisk(e *Entry) error {
	path := c.path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+e.Key.String()+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(e.Encode())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ShouldVerify deterministically selects whether a hit on k is in the
// re-simulation sample for the given fraction. The choice is a pure
// function of the key (a hash threshold, no randomness), so the same
// sweep verifies the same points on every run.
func (c *Cache) ShouldVerify(k Key, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := sha256.Sum256(append([]byte("tempest-resultcache-verify\n"), k[:]...))
	const span = 1_000_000
	v := binary.LittleEndian.Uint64(h[:8]) % span
	return v < uint64(fraction*span)
}

// NoteVerified records one hit that was re-simulated and matched.
func (c *Cache) NoteVerified() {
	c.mu.Lock()
	c.stats.Verified++
	c.mu.Unlock()
}

// Stats returns a telemetry snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Counters renders the telemetry as standard stats counters
// (cache.hits, cache.misses, cache.stores, cache.verified,
// cache.corrupt, cache.write_errors) for the existing reporting
// plumbing.
func (c *Cache) Counters() *stats.Counters {
	s := c.Stats()
	ctr := stats.NewCounters()
	ctr.Add("cache.hits", s.Hits)
	ctr.Add("cache.misses", s.Misses)
	ctr.Add("cache.stores", s.Stores)
	ctr.Add("cache.verified", s.Verified)
	ctr.Add("cache.corrupt", s.Corrupt)
	if s.Errors > 0 {
		ctr.Add("cache.write_errors", s.Errors)
	}
	return ctr
}
