package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

var codeOnce struct {
	sync.Once
	digest string
	err    error
}

// CodeDigest hashes every non-test Go source file under the
// repository's internal/ tree — the protocol, engine, and harness
// packages whose behaviour determines a simulation's output — into a
// short hex digest. The digest is a key field, so any code change
// naturally invalidates all cached results; there is no manual flush.
//
// The source tree is located relative to this file via runtime.Caller,
// which works for the in-repo binaries and tests this cache serves. If
// the sources are unavailable (e.g. a stripped deployment), CodeDigest
// returns an error and the harness refuses to open a persistent cache
// (memory-only caching still works: within one process the code
// trivially cannot change).
func CodeDigest() (string, error) {
	codeOnce.Do(func() {
		codeOnce.digest, codeOnce.err = computeCodeDigest()
	})
	return codeOnce.digest, codeOnce.err
}

func computeCodeDigest() (string, error) {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("resultcache: cannot locate own source file")
	}
	// thisFile = <repo>/internal/resultcache/codedigest.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	internal := filepath.Join(root, "internal")
	var files []string
	err := filepath.WalkDir(internal, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("resultcache: walking %s: %w", internal, err)
	}
	if len(files) == 0 {
		return "", fmt.Errorf("resultcache: no Go sources under %s", internal)
	}
	sort.Strings(files)
	h := sha256.New()
	h.Write([]byte("tempest-resultcache-code v1\n"))
	var lenBuf [8]byte
	writeBytes := func(b []byte) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return "", fmt.Errorf("resultcache: %w", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("resultcache: %w", err)
		}
		writeBytes([]byte(filepath.ToSlash(rel)))
		writeBytes(data)
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}
