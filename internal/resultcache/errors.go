package resultcache

import "fmt"

// Error is a structured result-cache failure — a corrupted, truncated,
// or version-skewed on-disk entry, an I/O failure on the cache
// directory, or a verification mismatch between a cached entry and its
// re-simulation. Cache lookups return (not panic) an *Error so the
// harness can fall back to simulation and count the event; only a
// verification mismatch is fatal to a sweep, and then deliberately so.
// The same structured-error contract as *network.Error and
// *dirnnb.Error.
type Error struct {
	// Op names the failing operation: "decode", "read", "write", or
	// "verify".
	Op string
	// Path is the on-disk entry involved, when there is one.
	Path string
	// Msg describes the condition.
	Msg string
}

func (e *Error) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("resultcache: %s %s: %s", e.Op, e.Path, e.Msg)
	}
	return fmt.Sprintf("resultcache: %s: %s", e.Op, e.Msg)
}
