package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
)

// A Key is the content address of one simulation result: the sha256 of
// the canonicalized run input (machine configuration, target system,
// application parameters, and the code digest of the simulator
// sources). Two runs with the same key are the same pure function
// applied to the same inputs, so their results are interchangeable.
type Key [32]byte

// String renders the key as lowercase hex — the on-disk file name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes a 64-character lowercase-hex key.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 64 {
		return Key{}, &Error{Op: "decode", Msg: fmt.Sprintf("key %q is not 64 hex characters", s)}
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, &Error{Op: "decode", Msg: fmt.Sprintf("key %q: %v", s, err)}
	}
	if hex.EncodeToString(raw) != s {
		return Key{}, &Error{Op: "decode", Msg: fmt.Sprintf("key %q is not canonical lowercase hex", s)}
	}
	copy(k[:], raw)
	return k, nil
}

// Field is one named input of a run key — an application or protocol
// parameter a call site contributes beyond the machine configuration.
type Field struct{ Name, Value string }

// FStr, FInt, FUint, FBool, and FFloat build key fields. Zero values
// are canonicalized away by the KeyBuilder, so constructing them is
// always safe.
func FStr(name, v string) Field       { return Field{name, v} }
func FInt(name string, v int64) Field { return Field{name, strconv.FormatInt(v, 10)} }
func FUint(name string, v uint64) Field {
	return Field{name, strconv.FormatUint(v, 10)}
}
func FBool(name string, v bool) Field {
	if v {
		return Field{name, "1"}
	}
	return Field{name, ""}
}
func FFloat(name string, v float64) Field {
	return Field{name, strconv.FormatFloat(v, 'g', -1, 64)}
}

// KeyBuilder collects named fields and digests them into a Key
// independent of insertion order. Canonicalization rules:
//
//   - fields are hashed in sorted name order, so call-site ordering
//     never matters;
//   - zero values (empty string, 0, false, 0.0, and the string "0" or
//     "false" produced by the F helpers) are dropped, so a knob added
//     later at its default value does not invalidate existing keys
//     (default-value invariance);
//   - names and values are length-prefixed in the hash, so no
//     (name, value) boundary ambiguity exists.
//
// Setting the same name twice keeps the last value.
type KeyBuilder struct {
	fields map[string]string
}

// NewKey returns an empty builder.
func NewKey() *KeyBuilder { return &KeyBuilder{fields: make(map[string]string)} }

// zeroValue reports whether v is a canonical zero the builder drops.
func zeroValue(v string) bool {
	switch v {
	case "", "0", "false":
		return true
	}
	return false
}

// Set records one field; zero values are dropped (and clear any earlier
// non-zero value of the same name, keeping last-write-wins exact).
func (b *KeyBuilder) Set(name, value string) *KeyBuilder {
	if zeroValue(value) {
		delete(b.fields, name)
		return b
	}
	b.fields[name] = value
	return b
}

// Str, Int, Uint, Bool, and Float are typed conveniences over Set.
func (b *KeyBuilder) Str(name, v string) *KeyBuilder { return b.Set(name, v) }
func (b *KeyBuilder) Int(name string, v int64) *KeyBuilder {
	return b.Set(name, strconv.FormatInt(v, 10))
}
func (b *KeyBuilder) Uint(name string, v uint64) *KeyBuilder {
	return b.Set(name, strconv.FormatUint(v, 10))
}
func (b *KeyBuilder) Bool(name string, v bool) *KeyBuilder {
	if v {
		return b.Set(name, "1")
	}
	return b.Set(name, "")
}
func (b *KeyBuilder) Float(name string, v float64) *KeyBuilder {
	return b.Set(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Add records a slice of pre-built fields.
func (b *KeyBuilder) Add(fields []Field) *KeyBuilder {
	for _, f := range fields {
		b.Set(f.Name, f.Value)
	}
	return b
}

// Sum digests the canonical field set.
func (b *KeyBuilder) Sum() Key {
	names := make([]string, 0, len(b.fields))
	for name := range b.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	h.Write([]byte("tempest-resultcache-key v1\n"))
	var lenBuf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for _, name := range names {
		writeStr(name)
		writeStr(b.fields[name])
	}
	var k Key
	h.Sum(k[:0])
	return k
}
