package resultcache

import (
	"strings"
	"testing"
)

func TestKeyOrderInvariance(t *testing.T) {
	a := NewKey().Str("system", "dirnnb").Int("m.nodes", 8).Float("app.theta", 1.0).Sum()
	b := NewKey().Float("app.theta", 1.0).Str("system", "dirnnb").Int("m.nodes", 8).Sum()
	if a != b {
		t.Errorf("insertion order changed the key: %s vs %s", a, b)
	}
}

func TestKeyDefaultValueInvariance(t *testing.T) {
	// A knob recorded at its zero value must hash identically to the
	// knob never being mentioned — that is what lets a newly added
	// parameter leave old cache entries valid.
	bare := NewKey().Str("system", "dirnnb").Sum()
	padded := NewKey().Str("system", "dirnnb").
		Int("m.link_bw", 0).
		Uint("m.occupancy", 0).
		Bool("app.checkin", false).
		Float("app.theta", 0).
		Str("app.mode", "").
		Sum()
	if bare != padded {
		t.Errorf("zero-valued fields changed the key: %s vs %s", bare, padded)
	}
	// The Add([]Field) path must canonicalize the same way.
	added := NewKey().Add([]Field{
		FStr("system", "dirnnb"),
		FInt("m.link_bw", 0),
		FBool("app.checkin", false),
	}).Sum()
	if bare != added {
		t.Errorf("Add with zero fields changed the key: %s vs %s", bare, added)
	}
}

func TestKeyDistinctInputsDiffer(t *testing.T) {
	base := NewKey().Str("system", "dirnnb").Int("m.nodes", 8).Sum()
	for name, k := range map[string]Key{
		"value-changed": NewKey().Str("system", "dirnnb").Int("m.nodes", 32).Sum(),
		"name-changed":  NewKey().Str("system2", "dirnnb").Int("m.nodes", 8).Sum(),
		"field-added":   NewKey().Str("system", "dirnnb").Int("m.nodes", 8).Bool("x", true).Sum(),
		"field-dropped": NewKey().Str("system", "dirnnb").Sum(),
	} {
		if k == base {
			t.Errorf("%s: key did not change", name)
		}
	}
}

func TestKeyBoundaryNonAmbiguity(t *testing.T) {
	// Length-prefixed hashing: shifting bytes between a name and its
	// value, or between adjacent fields, must change the key.
	pairs := [][2]Key{
		{NewKey().Str("ab", "c").Sum(), NewKey().Str("a", "bc").Sum()},
		{NewKey().Str("a", "b").Str("c", "d").Sum(), NewKey().Str("a", "bc").Str("", "d").Sum()},
		{NewKey().Str("a", "b c d").Sum(), NewKey().Str("a", "b").Str("c", "d").Sum()},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d: distinct field boundaries collide on %s", i, p[0])
		}
	}
}

func TestKeyLastWriteWins(t *testing.T) {
	twice := NewKey().Int("m.nodes", 8).Int("m.nodes", 32).Sum()
	once := NewKey().Int("m.nodes", 32).Sum()
	if twice != once {
		t.Errorf("second Set did not win: %s vs %s", twice, once)
	}
	// Re-setting to the zero value clears the earlier write entirely.
	cleared := NewKey().Int("m.nodes", 8).Int("m.nodes", 0).Sum()
	if cleared != NewKey().Sum() {
		t.Errorf("zero re-set did not clear the field: %s", cleared)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := NewKey().Str("system", "dirnnb").Sum()
	s := k.String()
	if len(s) != 64 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 64 lowercase hex chars", s)
	}
	got, err := ParseKey(s)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", s, err)
	}
	if got != k {
		t.Errorf("round trip diverged: %s vs %s", got, k)
	}
	for name, bad := range map[string]string{
		"short":     s[:63],
		"long":      s + "0",
		"uppercase": strings.ToUpper(s),
		"non-hex":   "zz" + s[2:],
	} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("%s: ParseKey(%q) succeeded, want error", name, bad)
		}
	}
}

func TestFieldHelpers(t *testing.T) {
	if f := FBool("x", false); f.Value != "" {
		t.Errorf("FBool(false) = %q, want zero value", f.Value)
	}
	if f := FBool("x", true); f.Value != "1" {
		t.Errorf("FBool(true) = %q, want \"1\"", f.Value)
	}
	if f := FFloat("x", 1.75); f.Value != "1.75" {
		t.Errorf("FFloat(1.75) = %q", f.Value)
	}
	if f := FInt("x", -3); f.Value != "-3" {
		t.Errorf("FInt(-3) = %q", f.Value)
	}
	if f := FUint("x", 18446744073709551615); f.Value != "18446744073709551615" {
		t.Errorf("FUint(max) = %q", f.Value)
	}
}
