package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/tempest-sim/tempest/internal/network"
)

// entryMagic is the format header; bumping the version invalidates
// every on-disk entry (older files decode to a version-skew *Error and
// fall back to simulation).
const entryMagic = "tempest-resultcache v1"

// ObsRecord is one processor's final observation (machine.Observation
// hash and operation count), recorded when the run had observation
// enabled.
type ObsRecord struct {
	Hash, Ops uint64
}

// Entry is one cached simulation result: everything the harness needs
// to reconstruct a RunResult without re-simulating, stored in a
// versioned, checksummed, canonical text format (one encoding per
// entry — Decode rejects any non-canonical byte, so decode→re-encode
// is the identity on valid entries).
//
// Engine-mechanics counters (the "engine." prefix: dispatch hosting
// and window grants) are deliberately absent: they describe how the
// recording host ran the simulation, not what was simulated, and they
// are the one counter group that legitimately varies with the shard
// count a result was produced at. The cache stores simulated results
// only.
type Entry struct {
	// Key is the content address the entry is stored under.
	Key Key
	// Code is the code digest the key was computed with.
	Code string
	// System and App identify the run for reconstruction and reports.
	System, App string
	// Origin is the entry's provenance: empty for a fresh simulation,
	// or a derivation note (e.g. "witness:4K" for a Figure 3
	// zero-eviction alias — the result proven bit-identical to the run
	// at the named smaller cache size).
	Origin string
	// Cycles and ROI are machine.Result.Cycles and ROICycles.
	Cycles, ROI uint64
	// Obs holds per-processor observation records in node order, when
	// the run had observation enabled.
	Obs []ObsRecord
	// Counters is the simulated-event counter map (engine.* excluded).
	Counters map[string]uint64
	// Net is the interconnect traffic summary.
	Net network.Stats
}

// WithKey returns a shallow copy of e stored under a different content
// address with the given provenance — the Figure 3 witness-alias path.
// The counter map is shared; entries are read-only by convention.
func (e *Entry) WithKey(k Key, origin string) *Entry {
	c := *e
	c.Key = k
	c.Origin = origin
	return &c
}

// Encode renders the canonical byte form: header, ordered sections,
// and a trailing sha256 line over everything before it.
func (e *Entry) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", entryMagic)
	fmt.Fprintf(&b, "key %s\n", e.Key)
	fmt.Fprintf(&b, "code %s\n", e.Code)
	fmt.Fprintf(&b, "system %s\n", e.System)
	fmt.Fprintf(&b, "app %s\n", e.App)
	if e.Origin != "" {
		fmt.Fprintf(&b, "origin %s\n", e.Origin)
	}
	fmt.Fprintf(&b, "cycles %d\n", e.Cycles)
	fmt.Fprintf(&b, "roi %d\n", e.ROI)
	for i, o := range e.Obs {
		fmt.Fprintf(&b, "obs %d %d %d\n", i, o.Hash, o.Ops)
	}
	names := make([]string, 0, len(e.Counters))
	for name := range e.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "counter %s %d\n", name, e.Counters[name])
	}
	for i, v := range e.Net.VNets {
		fmt.Fprintf(&b, "net %d %d %d %d %d\n", i, v.Packets, v.PayloadBytes, v.QueueingCycles, v.MaxQueueDepth)
	}
	fmt.Fprintf(&b, "netlocal %d\n", e.Net.LocalSends)
	sum := sha256.Sum256(b.Bytes())
	fmt.Fprintf(&b, "sum %s\n", hex.EncodeToString(sum[:]))
	return b.Bytes()
}

// decoder walks the canonical line sequence, failing with a structured
// *Error on the first non-canonical byte.
type decoder struct {
	lines []string
	pos   int
	path  string
}

func (d *decoder) fail(msg string) *Error {
	return &Error{Op: "decode", Path: d.path, Msg: msg}
}

// next returns the current line without consuming it ("" when
// exhausted, with ok=false).
func (d *decoder) next() (string, bool) {
	if d.pos >= len(d.lines) {
		return "", false
	}
	return d.lines[d.pos], true
}

// uint parses a canonical base-10 uint64 token (no signs, no leading
// zeros except "0" itself).
func (d *decoder) uint(tok, what string) (uint64, error) {
	v, err := strconv.ParseUint(tok, 10, 64)
	if err != nil || strconv.FormatUint(v, 10) != tok {
		return 0, d.fail(fmt.Sprintf("%s %q is not a canonical unsigned integer", what, tok))
	}
	return v, nil
}

// Decode parses a canonical entry. Every failure is a structured
// *Error: version skew (unknown magic line), truncation (missing
// sections or checksum), and corruption (checksum mismatch, malformed
// or non-canonical fields, trailing bytes) are all reported, never
// panicked on, so a cache lookup can always fall back to simulation.
func Decode(data []byte) (*Entry, error) {
	return decode(data, "")
}

func decode(data []byte, path string) (*Entry, error) {
	d := &decoder{path: path}
	// The checksum line covers every byte before it; locate it first so
	// corruption anywhere is caught before field parsing.
	if len(data) == 0 {
		return nil, d.fail("empty entry")
	}
	text := string(data)
	if !strings.HasSuffix(text, "\n") {
		return nil, d.fail("truncated entry: missing trailing newline")
	}
	body := text[:len(text)-1]
	cut := strings.LastIndex(body, "\n")
	last := body[cut+1:] // final line, without its newline
	sumTok, ok := strings.CutPrefix(last, "sum ")
	if !ok {
		// Distinguish the two decode-failure families tests care about:
		// a recognisable header with no checksum is truncation; anything
		// else on the first line is version skew or corruption.
		if strings.HasPrefix(text, entryMagic+"\n") {
			return nil, d.fail("truncated entry: missing checksum line")
		}
		first, _, _ := strings.Cut(text, "\n")
		if strings.HasPrefix(first, "tempest-resultcache ") {
			return nil, d.fail(fmt.Sprintf("version skew: entry format %q, want %q", first, entryMagic))
		}
		return nil, d.fail("not a result-cache entry (bad magic line)")
	}
	payload := data[:cut+1]
	want := sha256.Sum256(payload)
	if sumTok != hex.EncodeToString(want[:]) {
		return nil, d.fail("checksum mismatch: entry bytes corrupted")
	}

	d.lines = strings.Split(string(payload), "\n")
	d.lines = d.lines[:len(d.lines)-1] // drop empty tail after final \n

	if len(d.lines) == 0 || d.lines[0] != entryMagic {
		first := ""
		if len(d.lines) > 0 {
			first = d.lines[0]
		}
		if strings.HasPrefix(first, "tempest-resultcache ") {
			return nil, d.fail(fmt.Sprintf("version skew: entry format %q, want %q", first, entryMagic))
		}
		return nil, d.fail("not a result-cache entry (bad magic line)")
	}
	d.pos = 1

	e := &Entry{Counters: make(map[string]uint64)}
	// Required headers, in order; values are the rest of the line.
	take := func(prefix string) (string, error) {
		l, ok := d.next()
		if !ok {
			return "", d.fail(fmt.Sprintf("truncated entry: missing %q line", prefix))
		}
		v, ok := strings.CutPrefix(l, prefix+" ")
		if !ok {
			return "", d.fail(fmt.Sprintf("expected %q line, got %q", prefix, l))
		}
		d.pos++
		return v, nil
	}
	keyTok, err := take("key")
	if err != nil {
		return nil, err
	}
	if e.Key, err = ParseKey(keyTok); err != nil {
		return nil, d.fail(err.Error())
	}
	if e.Code, err = take("code"); err != nil {
		return nil, err
	}
	if e.System, err = take("system"); err != nil {
		return nil, err
	}
	if e.App, err = take("app"); err != nil {
		return nil, err
	}
	if l, ok := d.next(); ok {
		if v, isOrigin := strings.CutPrefix(l, "origin "); isOrigin {
			if v == "" {
				return nil, d.fail("empty origin line is not canonical")
			}
			e.Origin = v
			d.pos++
		}
	}
	tok, err := take("cycles")
	if err != nil {
		return nil, err
	}
	if e.Cycles, err = d.uint(tok, "cycles"); err != nil {
		return nil, err
	}
	if tok, err = take("roi"); err != nil {
		return nil, err
	}
	if e.ROI, err = d.uint(tok, "roi"); err != nil {
		return nil, err
	}
	// Observation records: "obs <index> <hash> <ops>", indexes 0..n-1.
	for {
		l, ok := d.next()
		if !ok {
			break
		}
		v, isObs := strings.CutPrefix(l, "obs ")
		if !isObs {
			break
		}
		parts := strings.Split(v, " ")
		if len(parts) != 3 {
			return nil, d.fail(fmt.Sprintf("malformed obs line %q", l))
		}
		idx, err := d.uint(parts[0], "obs index")
		if err != nil {
			return nil, err
		}
		if idx != uint64(len(e.Obs)) {
			return nil, d.fail(fmt.Sprintf("obs index %d out of order (want %d)", idx, len(e.Obs)))
		}
		var o ObsRecord
		if o.Hash, err = d.uint(parts[1], "obs hash"); err != nil {
			return nil, err
		}
		if o.Ops, err = d.uint(parts[2], "obs ops"); err != nil {
			return nil, err
		}
		e.Obs = append(e.Obs, o)
		d.pos++
	}
	// Counters: "counter <name> <value>", strictly ascending names.
	prev := ""
	for {
		l, ok := d.next()
		if !ok {
			break
		}
		v, isCtr := strings.CutPrefix(l, "counter ")
		if !isCtr {
			break
		}
		name, valTok, found := strings.Cut(v, " ")
		if !found || name == "" || strings.Contains(valTok, " ") {
			return nil, d.fail(fmt.Sprintf("malformed counter line %q", l))
		}
		if prev != "" && name <= prev {
			return nil, d.fail(fmt.Sprintf("counter %q out of sorted order (after %q)", name, prev))
		}
		prev = name
		val, err := d.uint(valTok, "counter value")
		if err != nil {
			return nil, err
		}
		e.Counters[name] = val
		d.pos++
	}
	// Per-VNet traffic: exactly one line per virtual network, in order.
	for i := range e.Net.VNets {
		l, ok := d.next()
		if !ok {
			return nil, d.fail("truncated entry: missing net line")
		}
		v, isNet := strings.CutPrefix(l, "net ")
		if !isNet {
			return nil, d.fail(fmt.Sprintf("expected net line, got %q", l))
		}
		parts := strings.Split(v, " ")
		if len(parts) != 5 {
			return nil, d.fail(fmt.Sprintf("malformed net line %q", l))
		}
		idx, err := d.uint(parts[0], "net vnet")
		if err != nil {
			return nil, err
		}
		if idx != uint64(i) {
			return nil, d.fail(fmt.Sprintf("net vnet %d out of order (want %d)", idx, i))
		}
		vs := &e.Net.VNets[i]
		for j, dst := range []*uint64{&vs.Packets, &vs.PayloadBytes, &vs.QueueingCycles, &vs.MaxQueueDepth} {
			if *dst, err = d.uint(parts[j+1], "net field"); err != nil {
				return nil, err
			}
		}
		d.pos++
	}
	tok, err = take("netlocal")
	if err != nil {
		return nil, err
	}
	if e.Net.LocalSends, err = d.uint(tok, "netlocal"); err != nil {
		return nil, err
	}
	if l, ok := d.next(); ok {
		return nil, d.fail(fmt.Sprintf("unexpected line %q after netlocal", l))
	}
	return e, nil
}

// CheckMatch compares a cached entry against a freshly simulated one
// (same key) and returns a structured verify *Error naming the first
// divergence — the -cache-verify failure path. Provenance (Origin) and
// the code digest are not compared: the key already pins the code, and
// a witness alias is by construction the same result.
func CheckMatch(cached, fresh *Entry) error {
	fail := func(format string, args ...any) error {
		return &Error{Op: "verify", Msg: fmt.Sprintf(format, args...)}
	}
	if cached.Cycles != fresh.Cycles {
		return fail("cycles diverge: cached %d, re-simulated %d", cached.Cycles, fresh.Cycles)
	}
	if cached.ROI != fresh.ROI {
		return fail("ROI cycles diverge: cached %d, re-simulated %d", cached.ROI, fresh.ROI)
	}
	for name, v := range cached.Counters {
		if fv, ok := fresh.Counters[name]; !ok || fv != v {
			return fail("counter %s diverges: cached %d, re-simulated %d", name, v, fresh.Counters[name])
		}
	}
	for name, v := range fresh.Counters {
		if _, ok := cached.Counters[name]; !ok {
			return fail("counter %s present only in re-simulation (%d)", name, v)
		}
	}
	if cached.Net != fresh.Net {
		return fail("network stats diverge: cached %+v, re-simulated %+v", cached.Net, fresh.Net)
	}
	if len(cached.Obs) != len(fresh.Obs) {
		return fail("observation record count diverges: cached %d, re-simulated %d", len(cached.Obs), len(fresh.Obs))
	}
	for i := range cached.Obs {
		if cached.Obs[i] != fresh.Obs[i] {
			return fail("node %d observation diverges: cached %+v, re-simulated %+v", i, cached.Obs[i], fresh.Obs[i])
		}
	}
	return nil
}
