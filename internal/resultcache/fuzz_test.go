package resultcache

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCacheEntry feeds Decode arbitrary bytes and requires the decode
// contract that Cache.Get's fallback depends on: every input either
// decodes to an entry whose re-encoding is byte-identical (canonical
// form is unique) or fails with a structured *Error — never a panic,
// never a silently lossy parse.
func FuzzCacheEntry(f *testing.F) {
	valid := sampleEntry().Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])                                        // truncated
	f.Add([]byte("tempest-resultcache v99\nx\n"))                      // version skew
	f.Add([]byte("not a cache entry\n"))                               // bad magic
	f.Add(bytes.Replace(valid, []byte("cycles"), []byte("cYcles"), 1)) // checksum break
	minimal := (&Entry{Key: NewKey().Sum(), Code: "in-memory", System: "s", App: "a", Counters: map[string]uint64{}}).Encode()
	f.Add(minimal)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			var re *Error
			if !errors.As(err, &re) {
				t.Fatalf("Decode error %T is not a *resultcache.Error: %v", err, err)
			}
			if re.Op != "decode" || re.Msg == "" {
				t.Fatalf("malformed decode error: %+v", re)
			}
			return
		}
		if re := e.Encode(); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical input:\n in  %q\n out %q", data, re)
		}
	})
}

// FuzzCacheKey drives the KeyBuilder canonicalization invariants with
// arbitrary field names and values: insertion order never matters,
// zero-valued fields never matter, and last-write-wins holds for
// duplicate names.
func FuzzCacheKey(f *testing.F) {
	f.Add("m.nodes", "8", "system", "dirnnb", "pad")
	f.Add("", "", "", "", "")
	f.Add("a", "bc", "ab", "c", "0")
	f.Add("dup", "1", "dup", "2", "false")
	f.Add("name with spaces", "value\nwith\nnewlines", "\x00", "\xff", "zero")
	f.Fuzz(func(t *testing.T, n1, v1, n2, v2, zn string) {
		if n1 != n2 {
			// Order invariance only holds for distinct names (equal
			// names are last-write-wins by contract, checked below).
			ab := NewKey().Set(n1, v1).Set(n2, v2).Sum()
			ba := NewKey().Set(n2, v2).Set(n1, v1).Sum()
			if ab != ba {
				t.Fatalf("insertion order changed key for (%q,%q): %s vs %s", n1, n2, ab, ba)
			}
		}
		// Duplicate names keep the last value.
		dup := NewKey().Set(n1, v1).Set(n1, v2).Sum()
		last := NewKey().Set(n1, v2).Sum()
		if dup != last {
			t.Fatalf("last-write-wins violated for %q: %s vs %s", n1, dup, last)
		}
		// Zero-valued fields are invisible. The pad is set first, so
		// even a name collision cannot mask a later real write.
		base := NewKey().Set(n1, v1).Set(n2, v2).Sum()
		for _, zero := range []string{"", "0", "false"} {
			padded := NewKey().Set(zn, zero).Set(n1, v1).Set(n2, v2).Sum()
			if padded != base {
				t.Fatalf("zero pad %q=%q changed key: %s vs %s", zn, zero, padded, base)
			}
		}
	})
}
