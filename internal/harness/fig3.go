package harness

import (
	"context"
	"fmt"
	"io"

	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// Fig3Config is one bar of Figure 3: a data set paired with a CPU cache
// size. The paper's five bars per benchmark.
type Fig3Config struct {
	Set     DataSet
	CacheKB int
}

// Fig3Configs returns the dataset/cache combinations for a scale: the
// paper's five at paper scale; at reduced scale the cache sweep shrinks
// with the data sets so the relationships are preserved — the small set
// overflows the smallest cache and fits the biggest, while the large set
// overflows even the biggest.
func Fig3Configs(scale Scale) []Fig3Config {
	if scale == ScalePaper {
		return []Fig3Config{
			{SetSmall, 4},
			{SetSmall, 16},
			{SetSmall, 64},
			{SetSmall, 256},
			{SetLarge, 256},
		}
	}
	return []Fig3Config{
		{SetSmall, 4},
		{SetSmall, 16},
		{SetSmall, 64},
		{SetLarge, 64},
	}
}

// Fig3Cell is one bar of Figure 3.
type Fig3Cell struct {
	App     string
	Set     DataSet
	CacheKB int
	// Typhoon and DirNNB are the measured-region execution times.
	Typhoon, DirNNB sim.Time
	// Relative is Typhoon/Stache time over DirNNB time — the bar height
	// of Figure 3 (shorter is better for Typhoon/Stache).
	Relative float64
}

// Fig3Options selects the sweep's extent.
type Fig3Options struct {
	Scale   Scale
	Apps    []string     // nil = all five
	Configs []Fig3Config // nil = the paper's five
	// Workers sizes the worker pool; <= 0 uses all cores. Results are
	// bit-identical at every worker count.
	Workers int
	// Progress, when non-nil, is called after each simulation finishes.
	Progress func(done, total int)
}

// Figure3 reproduces the paper's Figure 3: the execution time of
// Typhoon/Stache relative to DirNNB across benchmarks and dataset/cache
// combinations. Each (benchmark, config, system) point is one job on
// the RunAll pool.
func Figure3(opts Fig3Options) ([]Fig3Cell, error) {
	names := opts.Apps
	if names == nil {
		names = BenchNames
	}
	configs := opts.Configs
	if configs == nil {
		configs = Fig3Configs(opts.Scale)
	}
	// Two jobs per cell: DirNNB at 2k, Typhoon/Stache at 2k+1.
	var jobs []Job[RunResult]
	for _, name := range names {
		for _, fc := range configs {
			for _, sys := range []System{SysDirNNB, SysStache} {
				jobs = append(jobs, func(context.Context) (RunResult, error) {
					app, err := MakeApp(name, opts.Scale, fc.Set)
					if err != nil {
						return RunResult{}, err
					}
					return Run(MachineConfig(opts.Scale, fc.CacheKB<<10), sys, app)
				})
			}
		}
	}
	results, err := RunAllOpts(jobs, RunOptions{Workers: opts.Workers, Progress: opts.Progress})
	if err != nil {
		return nil, err
	}
	var cells []Fig3Cell
	i := 0
	for _, name := range names {
		for _, fc := range configs {
			dir, typh := results[i], results[i+1]
			i += 2
			cells = append(cells, Fig3Cell{
				App:     name,
				Set:     fc.Set,
				CacheKB: fc.CacheKB,
				Typhoon: typh.Res.ROICycles,
				DirNNB:  dir.Res.ROICycles,
				Relative: float64(typh.Res.ROICycles) /
					float64(dir.Res.ROICycles),
			})
		}
	}
	return cells, nil
}

// RenderFigure3 prints the Figure 3 cells as a table, one row per bar.
func RenderFigure3(w io.Writer, cells []Fig3Cell) error {
	t := &stats.Table{
		Title:  "Figure 3: execution time of Typhoon/Stache relative to DirNNB (shorter bar = lower ratio = Typhoon/Stache better)",
		Header: []string{"benchmark", "data set/cache", "DirNNB cycles", "Typhoon/Stache cycles", "relative"},
	}
	for _, c := range cells {
		t.AddRow(c.App,
			fmt.Sprintf("%s/%dK", c.Set, c.CacheKB),
			stats.D(uint64(c.DirNNB)),
			stats.D(uint64(c.Typhoon)),
			stats.F(c.Relative))
	}
	return t.Render(w)
}
