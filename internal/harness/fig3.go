package harness

import (
	"context"
	"fmt"
	"io"

	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// Fig3Config is one bar of Figure 3: a data set paired with a CPU cache
// size. The paper's five bars per benchmark.
type Fig3Config struct {
	Set     DataSet
	CacheKB int
}

// Fig3Configs returns the dataset/cache combinations for a scale: the
// paper's five at paper scale; at reduced scale the cache sweep shrinks
// with the data sets so the relationships are preserved — the small set
// overflows the smallest cache and fits the biggest, while the large set
// overflows even the biggest.
func Fig3Configs(scale Scale) []Fig3Config {
	if scale == ScalePaper {
		return []Fig3Config{
			{SetSmall, 4},
			{SetSmall, 16},
			{SetSmall, 64},
			{SetSmall, 256},
			{SetLarge, 256},
		}
	}
	return []Fig3Config{
		{SetSmall, 4},
		{SetSmall, 16},
		{SetSmall, 64},
		{SetLarge, 64},
	}
}

// Fig3Cell is one bar of Figure 3.
type Fig3Cell struct {
	App     string
	Set     DataSet
	CacheKB int
	// Typhoon and DirNNB are the measured-region execution times.
	Typhoon, DirNNB sim.Time
	// Relative is Typhoon/Stache time over DirNNB time — the bar height
	// of Figure 3 (shorter is better for Typhoon/Stache).
	Relative float64
}

// Fig3Options selects the sweep's extent.
type Fig3Options struct {
	Scale   Scale
	Apps    []string     // nil = all five
	Configs []Fig3Config // nil = the paper's five
	// Workers sizes the worker pool; <= 0 uses all cores. Results are
	// bit-identical at every worker count.
	Workers int
	// Shards runs each simulation's nodes across this many scheduler
	// goroutines (machine.Config.Shards; <= 0 means 1) for every system,
	// DirNNB included. Results are bit-identical at every value.
	Shards int
	// LinkBytesPerCycle and OccupancyCycles enable the contention model
	// (machine.Config fields of the same names) on every sweep point.
	// Zero values reproduce the paper's infinite-bandwidth,
	// unbounded-concurrency machine — the pinned goldens' configuration.
	LinkBytesPerCycle int
	OccupancyCycles   sim.Time
	// NoDedup disables the redundant-point elimination: normally a sweep
	// point whose run never evicted a CPU cache line is reused for every
	// larger cache size of the same data set, because such a run is
	// provably bit-identical at the larger size. Opting out forces every
	// point to simulate — e.g. to demonstrate the equivalence itself.
	NoDedup bool
	// Logf, when non-nil, receives one line per reused sweep point after
	// the sweep completes, in deterministic sweep order.
	Logf func(format string, args ...any)
	// Progress, when non-nil, is called after each (benchmark, system)
	// sweep finishes.
	Progress func(done, total int)
}

// fig3Systems is the pair every Figure 3 cell compares.
var fig3Systems = []System{SysDirNNB, SysStache}

// fig3Run is one sweep point's result, with its dedup provenance.
type fig3Run struct {
	RunResult
	reusedFromKB int // when > 0, copied from this cache size's run
}

// Figure3 reproduces the paper's Figure 3: the execution time of
// Typhoon/Stache relative to DirNNB across benchmarks and dataset/cache
// combinations. Each (benchmark, system) pair is one job on the RunAll
// pool; within a job the cache sizes of one data set run in the given
// (ascending) order so that redundant points can reuse earlier results.
//
// The dedup witness: the cache indexes sets by block % numSets and
// consults its replacement RNG only when a fill finds no free way. A
// run that performed zero evictions machine-wide therefore never drew
// from the RNG, and at any larger cache whose set count is a multiple
// of the witness's (same ways and block size — cache sizes here are
// powers of two), each set holds a subset of the blocks of the set it
// refines, so it can never overflow either. By induction over the event
// schedule the two runs are bit-identical: same hits, misses, upgrades,
// protocol traffic, and cycle counts. EXPERIMENTS.md's observation that
// appbt and ocean render identical rows at 16K/64K/256K is this effect.
func Figure3(opts Fig3Options) ([]Fig3Cell, error) {
	names := opts.Apps
	if names == nil {
		names = BenchNames
	}
	configs := opts.Configs
	if configs == nil {
		configs = Fig3Configs(opts.Scale)
	}
	var jobs []Job[[]fig3Run]
	for _, name := range names {
		for _, sys := range fig3Systems {
			jobs = append(jobs, func(context.Context) ([]fig3Run, error) {
				// Per data set: the last config actually simulated, and
				// whether that run never evicted a CPU cache line.
				type witness struct {
					cacheKB int
					clean   bool
					res     RunResult
				}
				last := make(map[DataSet]witness)
				out := make([]fig3Run, 0, len(configs))
				for _, fc := range configs {
					if w, ok := last[fc.Set]; ok && !opts.NoDedup && w.clean &&
						fc.CacheKB >= w.cacheKB && fc.CacheKB%w.cacheKB == 0 {
						out = append(out, fig3Run{RunResult: w.res, reusedFromKB: w.cacheKB})
						continue
					}
					app, err := MakeApp(name, opts.Scale, fc.Set)
					if err != nil {
						return nil, err
					}
					cfg := MachineConfig(opts.Scale, fc.CacheKB<<10)
					cfg.Shards = opts.Shards
					cfg.LinkBytesPerCycle = opts.LinkBytesPerCycle
					cfg.OccupancyCycles = opts.OccupancyCycles
					rr, err := Run(cfg, sys, app)
					if err != nil {
						return nil, err
					}
					last[fc.Set] = witness{
						cacheKB: fc.CacheKB,
						clean:   rr.Res.Counters.Get("cpu.evictions") == 0,
						res:     rr,
					}
					out = append(out, fig3Run{RunResult: rr})
				}
				return out, nil
			})
		}
	}
	results, err := RunAllOpts(jobs, RunOptions{Workers: opts.Workers, Progress: opts.Progress})
	if err != nil {
		return nil, err
	}
	var cells []Fig3Cell
	for ni, name := range names {
		dir, typh := results[ni*2], results[ni*2+1]
		for ci, fc := range configs {
			cells = append(cells, Fig3Cell{
				App:     name,
				Set:     fc.Set,
				CacheKB: fc.CacheKB,
				Typhoon: typh[ci].Res.ROICycles,
				DirNNB:  dir[ci].Res.ROICycles,
				Relative: float64(typh[ci].Res.ROICycles) /
					float64(dir[ci].Res.ROICycles),
			})
		}
	}
	if opts.Logf != nil {
		for ni, name := range names {
			for si, sys := range fig3Systems {
				for ci, fc := range configs {
					if r := results[ni*2+si][ci]; r.reusedFromKB > 0 {
						opts.Logf("fig3: %s on %s %s/%dK: reused the %dK result (that run evicted no cache line, so the larger cache is provably identical)",
							name, sys, fc.Set, fc.CacheKB, r.reusedFromKB)
					}
				}
			}
		}
	}
	return cells, nil
}

// RenderFigure3 prints the Figure 3 cells as a table, one row per bar.
func RenderFigure3(w io.Writer, cells []Fig3Cell) error {
	t := &stats.Table{
		Title:  "Figure 3: execution time of Typhoon/Stache relative to DirNNB (shorter bar = lower ratio = Typhoon/Stache better)",
		Header: []string{"benchmark", "data set/cache", "DirNNB cycles", "Typhoon/Stache cycles", "relative"},
	}
	for _, c := range cells {
		t.AddRow(c.App,
			fmt.Sprintf("%s/%dK", c.Set, c.CacheKB),
			stats.D(uint64(c.DirNNB)),
			stats.D(uint64(c.Typhoon)),
			stats.F(c.Relative))
	}
	return t.Render(w)
}
