package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/tempest-sim/tempest/internal/resultcache"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// Fig3Config is one bar of Figure 3: a data set paired with a CPU cache
// size. The paper's five bars per benchmark.
type Fig3Config struct {
	Set     DataSet
	CacheKB int
}

// Fig3Configs returns the dataset/cache combinations for a scale: the
// paper's five at paper scale; at reduced scale the cache sweep shrinks
// with the data sets so the relationships are preserved — the small set
// overflows the smallest cache and fits the biggest, while the large set
// overflows even the biggest.
func Fig3Configs(scale Scale) []Fig3Config {
	if scale == ScalePaper {
		return []Fig3Config{
			{SetSmall, 4},
			{SetSmall, 16},
			{SetSmall, 64},
			{SetSmall, 256},
			{SetLarge, 256},
		}
	}
	return []Fig3Config{
		{SetSmall, 4},
		{SetSmall, 16},
		{SetSmall, 64},
		{SetLarge, 64},
	}
}

// Fig3Cell is one bar of Figure 3.
type Fig3Cell struct {
	App     string
	Set     DataSet
	CacheKB int
	// Typhoon and DirNNB are the measured-region execution times.
	Typhoon, DirNNB sim.Time
	// Relative is Typhoon/Stache time over DirNNB time — the bar height
	// of Figure 3 (shorter is better for Typhoon/Stache).
	Relative float64
}

// Fig3Options selects the sweep's extent.
type Fig3Options struct {
	Scale   Scale
	Apps    []string     // nil = all five
	Configs []Fig3Config // nil = the paper's five
	// Workers sizes the local worker pool; <= 0 uses all cores. Results
	// are bit-identical at every worker count. Ignored when Exec is set.
	Workers int
	// Shards runs each simulation's nodes across this many scheduler
	// goroutines (machine.Config.Shards; <= 0 means 1) for every system,
	// DirNNB included. Results are bit-identical at every value.
	Shards int
	// LinkBytesPerCycle and OccupancyCycles enable the contention model
	// (machine.Config fields of the same names) on every sweep point.
	// Zero values reproduce the paper's infinite-bandwidth,
	// unbounded-concurrency machine — the pinned goldens' configuration.
	LinkBytesPerCycle int
	OccupancyCycles   sim.Time
	// NoDedup bypasses the result cache for this sweep: every point
	// simulates, including the redundant ones a zero-eviction witness
	// would otherwise serve — e.g. to demonstrate the equivalence
	// itself, or to time the uncached sweep.
	NoDedup bool
	// Cache supplies a shared result cache. When nil (and NoDedup is
	// off) the sweep uses a private in-process cache, which preserves
	// the historical zero-eviction dedup behaviour exactly: clean
	// points are stored once and aliased to every larger cache size
	// they are provably identical at.
	Cache CacheParams
	// Exec, when non-nil, runs the sweep's points on that backend (e.g.
	// a fleet coordinator or client) instead of the in-process pool.
	Exec Executor
	// PointTimeout, when > 0, bounds each point's wall-clock run.
	PointTimeout time.Duration
	// Logf, when non-nil, receives one line per reused sweep point after
	// the sweep completes, in deterministic sweep order.
	Logf func(format string, args ...any)
	// Progress, when non-nil, is called after each sweep point finishes.
	Progress func(done, total int)
}

// fig3Systems is the pair every Figure 3 cell compares.
var fig3Systems = []System{SysDirNNB, SysStache}

// fig3Witness is the alias-origin tag format: "witness:<kb>K" marks an
// entry derived from the zero-eviction run at <kb> KB rather than
// simulated at its own cache size.
func fig3Witness(kb int) string { return fmt.Sprintf("witness:%dK", kb) }

// parseFig3Witness extracts the witness cache size from an entry
// origin, or 0 when the origin is not a witness tag.
func parseFig3Witness(origin string) int {
	var kb int
	if n, err := fmt.Sscanf(origin, "witness:%dK", &kb); n == 1 && err == nil {
		return kb
	}
	return 0
}

// Fig3Points builds the sweep's point list: one point per (benchmark,
// system, config) cell, in that nesting order. Points of one
// (benchmark, system) pair share a Group so the cache sizes of one data
// set run sequentially in the given (ascending) order, and each point
// declares the larger cache sizes a clean run of it provably also
// covers (WitnessKB) — how the zero-eviction dedup survives any
// executor backend.
//
// The zero-eviction witness is one layer of the result cache: the CPU
// cache indexes sets by block % numSets and consults its replacement
// RNG only when a fill finds no free way. A run that performed zero
// evictions machine-wide therefore never drew from the RNG, and at any
// larger cache whose set count is a multiple of the witness's (same
// ways and block size — cache sizes here are powers of two), each set
// holds a subset of the blocks of the set it refines, so it can never
// overflow either. By induction over the event schedule the two runs
// are bit-identical: same hits, misses, upgrades, protocol traffic,
// and cycle counts. The sweep exploits this by storing a clean run's
// entry under the derived keys of every larger multiple cache size
// (origin "witness:<kb>K"), so the later points are ordinary cache
// hits — one reuse mechanism, in-process and on-disk alike.
// EXPERIMENTS.md's observation that appbt and ocean render identical
// rows at 16K/64K/256K is this effect.
func Fig3Points(scale Scale, names []string, configs []Fig3Config, sp SimParams, noDedup bool) []Point {
	var points []Point
	for _, name := range names {
		for _, sys := range fig3Systems {
			group := fmt.Sprintf("fig3/%s/%s", name, sys)
			for i, fc := range configs {
				cfg := MachineConfig(scale, fc.CacheKB<<10)
				sp.apply(&cfg)
				pt := Point{
					Cfg:     cfg,
					System:  sys,
					Bench:   name,
					Scale:   scale,
					Set:     fc.Set,
					Group:   group,
					NoCache: noDedup,
				}
				if !noDedup {
					// A clean run at this point proves every larger multiple
					// cache size of the same data set bit-identical.
					for _, fc2 := range configs[i+1:] {
						if fc2.Set != fc.Set || fc2.CacheKB < fc.CacheKB || fc2.CacheKB%fc.CacheKB != 0 {
							continue
						}
						pt.WitnessKB = append(pt.WitnessKB, fc2.CacheKB)
					}
				}
				points = append(points, pt)
			}
		}
	}
	return points
}

// Figure3 reproduces the paper's Figure 3: the execution time of
// Typhoon/Stache relative to DirNNB across benchmarks and dataset/cache
// combinations. The sweep's points are built by Fig3Points and run on
// the configured executor (the in-process pool by default).
func Figure3(opts Fig3Options) ([]Fig3Cell, error) {
	names := opts.Apps
	if names == nil {
		names = BenchNames
	}
	configs := opts.Configs
	if configs == nil {
		configs = Fig3Configs(opts.Scale)
	}
	sp := SimParams{Shards: opts.Shards, LinkBytesPerCycle: opts.LinkBytesPerCycle, OccupancyCycles: opts.OccupancyCycles}
	cp := opts.Cache
	if cp.Cache == nil && !opts.NoDedup {
		// Private in-process cache: exactly the historical dedup scope
		// (one sweep), served through the one shared mechanism.
		c, err := resultcache.New(resultcache.Options{})
		if err != nil {
			return nil, err
		}
		cp.Cache = c
	}
	points := Fig3Points(opts.Scale, names, configs, sp, opts.NoDedup)
	results, err := submitPoints(opts.Exec, cp, opts.Workers, opts.PointTimeout, points, opts.Progress)
	if err != nil {
		return nil, err
	}
	at := func(ni, si, ci int) PointResult {
		return results[(ni*2+si)*len(configs)+ci]
	}
	var cells []Fig3Cell
	for ni, name := range names {
		for ci, fc := range configs {
			dir, typh := at(ni, 0, ci), at(ni, 1, ci)
			cells = append(cells, Fig3Cell{
				App:     name,
				Set:     fc.Set,
				CacheKB: fc.CacheKB,
				Typhoon: typh.Res.ROICycles,
				DirNNB:  dir.Res.ROICycles,
				Relative: float64(typh.Res.ROICycles) /
					float64(dir.Res.ROICycles),
			})
		}
	}
	if opts.Logf != nil {
		for ni, name := range names {
			for si, sys := range fig3Systems {
				for ci, fc := range configs {
					if kb := parseFig3Witness(at(ni, si, ci).Origin); kb > 0 {
						opts.Logf("fig3: %s on %s %s/%dK: reused the %dK result (that run evicted no cache line, so the larger cache is provably identical)",
							name, sys, fc.Set, fc.CacheKB, kb)
					}
				}
			}
		}
	}
	return cells, nil
}

// RenderFigure3 prints the Figure 3 cells as a table, one row per bar.
func RenderFigure3(w io.Writer, cells []Fig3Cell) error {
	t := &stats.Table{
		Title:  "Figure 3: execution time of Typhoon/Stache relative to DirNNB (shorter bar = lower ratio = Typhoon/Stache better)",
		Header: []string{"benchmark", "data set/cache", "DirNNB cycles", "Typhoon/Stache cycles", "relative"},
	}
	for _, c := range cells {
		t.AddRow(c.App,
			fmt.Sprintf("%s/%dK", c.Set, c.CacheKB),
			stats.D(uint64(c.DirNNB)),
			stats.D(uint64(c.Typhoon)),
			stats.F(c.Relative))
	}
	return t.Render(w)
}
