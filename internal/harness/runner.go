package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// The experiments in this package replay the paper's evaluation, which
// itself ran on a parallel simulator (the Wisconsin Wind Tunnel hosted
// on a CM-5). Every simulated machine is a self-contained deterministic
// object — no package-level mutable state anywhere in the simulator —
// so independent (app, system, config) points can run concurrently on
// worker goroutines without changing any result. RunAll is the worker
// pool the sweeps share; results are slotted by job index, never by
// completion order, so parallel output is bit-identical to serial.

// Job is one unit of work for RunAll: typically one simulated machine
// run. The context is cancelled when another job has already failed;
// jobs may check it to stop early, but need not (a running simulation
// is never interrupted mid-flight).
type Job[T any] func(ctx context.Context) (T, error)

// RunOptions configures RunAll's pool.
type RunOptions struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after each job completes with
	// the number done so far and the total. Calls are serialized (never
	// concurrent) but arrive in completion order, not job order.
	Progress func(done, total int)
	// PointTimeout, when > 0, bounds each job's wall-clock run. A job
	// that exceeds it fails with a *PointTimeoutError; the simulation
	// goroutine is abandoned (a machine run cannot be interrupted
	// mid-flight) and its eventual result discarded.
	PointTimeout time.Duration
	// Label, when non-nil, names job i in errors; the default is
	// "job <i>".
	Label func(i int) string
}

// PointTimeoutError reports a sweep point that exceeded the configured
// per-point timeout. The abandoned simulation keeps running on its own
// goroutine until it finishes; its result is discarded.
type PointTimeoutError struct {
	// Point names the timed-out sweep point (a Point.Label or a job
	// label).
	Point string
	// Timeout is the limit that was exceeded.
	Timeout time.Duration
}

func (e *PointTimeoutError) Error() string {
	p := e.Point
	if p == "" {
		p = "point"
	}
	return fmt.Sprintf("%s: no result within the %v point timeout (simulation abandoned)", p, e.Timeout)
}

// RunAll executes every job on a pool of workers goroutines (<= 0 uses
// all cores) and returns the results in job order. On the first error
// the pool stops handing out new jobs (fail-fast via context
// cancellation), waits for in-flight jobs, and returns the error of the
// lowest-indexed job that failed, wrapped with its index; distinct
// errors from other in-flight jobs are aggregated via errors.Join, so a
// slow second failure is never silently dropped.
func RunAll[T any](jobs []Job[T], workers int) ([]T, error) {
	return RunAllOpts(jobs, RunOptions{Workers: workers})
}

// RunAllOpts is RunAll with progress, per-point timeout, and labelling
// options.
func RunAllOpts[T any](jobs []Job[T], opts RunOptions) ([]T, error) {
	n := len(jobs)
	results := make([]T, n)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu   sync.Mutex
		errs map[int]error
		done int
	)
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range jobs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				// After a failure, drain the feed without running: the
				// feeder's select may still hand out an index that raced
				// with cancellation.
				if ctx.Err() != nil {
					continue
				}
				res, err := runJob(ctx, jobs[i], opts.PointTimeout)
				mu.Lock()
				if err != nil {
					var pte *PointTimeoutError
					if errors.As(err, &pte) && pte.Point == "" {
						pte.Point = jobLabel(opts.Label, i)
					}
					if errs == nil {
						errs = make(map[int]error)
					}
					errs[i] = err
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = res
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, joinJobErrors(errs, opts.Label)
	}
	return results, nil
}

// runJob executes one job, enforcing the per-point timeout when one is
// set. On timeout the job's goroutine is abandoned — it keeps running
// until the simulation completes and then discards its result into the
// buffered channel — because a machine run cannot be interrupted.
func runJob[T any](ctx context.Context, job Job[T], timeout time.Duration) (T, error) {
	if timeout <= 0 {
		return job(ctx)
	}
	jctx, cancel := context.WithTimeout(ctx, timeout)
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer cancel()
		v, err := job(jctx)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-jctx.Done():
		if ctx.Err() == nil && errors.Is(jctx.Err(), context.DeadlineExceeded) {
			var zero T
			return zero, &PointTimeoutError{Timeout: timeout}
		}
		// The shared context was cancelled (another job failed): keep
		// the historical behaviour of waiting for the in-flight run.
		o := <-ch
		return o.v, o.err
	}
}

func jobLabel(label func(int) string, i int) string {
	if label != nil {
		return label(i)
	}
	return fmt.Sprintf("job %d", i)
}

// joinJobErrors folds every failed job into one error: the
// lowest-indexed failure leads (stable under fail-fast scheduling),
// and later failures with distinct messages join it rather than being
// dropped. Cancellation fallout — a job that merely observed the
// shared context dying — is omitted when any real failure exists.
func joinJobErrors(errs map[int]error, label func(int) string) error {
	idxs := make([]int, 0, len(errs))
	for i := range errs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	real := idxs[:0:0]
	for _, i := range idxs {
		if !errors.Is(errs[i], context.Canceled) {
			real = append(real, i)
		}
	}
	if len(real) > 0 {
		idxs = real
	}
	var joined []error
	seen := make(map[string]bool)
	for _, i := range idxs {
		msg := errs[i].Error()
		if seen[msg] {
			continue
		}
		seen[msg] = true
		joined = append(joined, fmt.Errorf("harness: %s: %w", jobLabel(label, i), errs[i]))
	}
	if len(joined) == 1 {
		return joined[0]
	}
	return errors.Join(joined...)
}
