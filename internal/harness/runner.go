package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// The experiments in this package replay the paper's evaluation, which
// itself ran on a parallel simulator (the Wisconsin Wind Tunnel hosted
// on a CM-5). Every simulated machine is a self-contained deterministic
// object — no package-level mutable state anywhere in the simulator —
// so independent (app, system, config) points can run concurrently on
// worker goroutines without changing any result. RunAll is the worker
// pool the sweeps share; results are slotted by job index, never by
// completion order, so parallel output is bit-identical to serial.

// Job is one unit of work for RunAll: typically one simulated machine
// run. The context is cancelled when another job has already failed;
// jobs may check it to stop early, but need not (a running simulation
// is never interrupted mid-flight).
type Job[T any] func(ctx context.Context) (T, error)

// RunOptions configures RunAll's pool.
type RunOptions struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after each job completes with
	// the number done so far and the total. Calls are serialized (never
	// concurrent) but arrive in completion order, not job order.
	Progress func(done, total int)
}

// RunAll executes every job on a pool of workers goroutines (<= 0 uses
// all cores) and returns the results in job order. On the first error
// the pool stops handing out new jobs (fail-fast via context
// cancellation), waits for in-flight jobs, and returns the error of the
// lowest-indexed job that failed, wrapped with its index.
func RunAll[T any](jobs []Job[T], workers int) ([]T, error) {
	return RunAllOpts(jobs, RunOptions{Workers: workers})
}

// RunAllOpts is RunAll with a progress callback.
func RunAllOpts[T any](jobs []Job[T], opts RunOptions) ([]T, error) {
	n := len(jobs)
	results := make([]T, n)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		done    int
	)
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range jobs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				// After a failure, drain the feed without running: the
				// feeder's select may still hand out an index that raced
				// with cancellation.
				if ctx.Err() != nil {
					continue
				}
				res, err := jobs[i](ctx)
				mu.Lock()
				if err != nil {
					// Keep the lowest-indexed failure so the error is as
					// stable as fail-fast scheduling allows.
					if errIdx == -1 || i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
					cancel()
					continue
				}
				results[i] = res
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, fmt.Errorf("harness: job %d: %w", errIdx, firstEr)
	}
	return results, nil
}
