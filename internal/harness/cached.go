package harness

import (
	"fmt"
	"strings"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/appbt"
	"github.com/tempest-sim/tempest/internal/apps/barnes"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/mp3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/resultcache"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// CacheParams threads the result cache through a sweep. The zero value
// disables caching entirely (every point simulates).
type CacheParams struct {
	// Cache is the shared store, nil for no caching.
	Cache *resultcache.Cache
	// Verify is the fraction of cache hits to re-simulate and compare
	// ([0, 1]); a mismatch fails the sweep loudly.
	Verify float64
}

// enabled reports whether lookups should happen at all.
func (cp CacheParams) enabled() bool { return cp.Cache != nil }

// NewCacheParams validates and builds the standard
// -cache-dir/-no-cache/-cache-verify flag triple every binary exposes.
// The default (no flags) is an in-process memory cache; -cache-dir adds
// the persistent tier; -no-cache disables caching and conflicts with
// the other two.
func NewCacheParams(dir string, noCache bool, verify float64) (CacheParams, error) {
	if verify < 0 || verify > 1 {
		return CacheParams{}, fmt.Errorf("-cache-verify %v: fraction must be in [0, 1]", verify)
	}
	if noCache {
		if dir != "" {
			return CacheParams{}, fmt.Errorf("-no-cache conflicts with -cache-dir %s", dir)
		}
		if verify > 0 {
			return CacheParams{}, fmt.Errorf("-no-cache conflicts with -cache-verify %v (nothing to verify)", verify)
		}
		return CacheParams{}, nil
	}
	c, err := resultcache.New(resultcache.Options{Dir: dir})
	if err != nil {
		return CacheParams{}, err
	}
	return CacheParams{Cache: c, Verify: verify}, nil
}

// machineKey contributes the machine configuration's semantic fields to
// a key. Simulator-mechanics knobs — Shards, FixedWindow,
// GoroutineDispatch — are deliberately excluded: results are
// bit-identical for every value (the repo's core determinism claim,
// enforced by TestParallelDeterminism and the digest gates), which is
// exactly what makes a result recorded at shards=1 valid for a
// shards=4 run. Everything that changes simulated behaviour — node
// count, cache geometry, latencies, the contention knobs, DRAM budget,
// quantum, seed — is included.
func machineKey(b *resultcache.KeyBuilder, cfg machine.Config) {
	cfg = cfg.Normalized()
	b.Int("m.nodes", int64(cfg.Nodes))
	b.Int("m.cache_bytes", int64(cfg.CacheSize))
	b.Int("m.ways", int64(cfg.CacheWays))
	b.Int("m.block", int64(cfg.BlockSize))
	b.Int("m.tlb", int64(cfg.TLBEntries))
	b.Uint("m.local_miss", uint64(cfg.LocalMissCycles))
	b.Uint("m.tlb_miss", uint64(cfg.TLBMissCycles))
	b.Uint("m.net_latency", uint64(cfg.NetLatency))
	b.Uint("m.barrier_latency", uint64(cfg.BarrierLatency))
	b.Int("m.link_bw", int64(cfg.LinkBytesPerCycle))
	b.Uint("m.occupancy", uint64(cfg.OccupancyCycles))
	b.Int("m.mem_pages", int64(cfg.MemPagesPerNode))
	b.Uint("m.quantum", uint64(cfg.Quantum))
	b.Uint("m.seed", cfg.Seed)
}

// em3dKey contributes an em3d workload's parameters.
func em3dKey(c em3d.Config) []resultcache.Field {
	return []resultcache.Field{
		resultcache.FInt("app.total_nodes", int64(c.TotalNodes)),
		resultcache.FInt("app.degree", int64(c.Degree)),
		resultcache.FInt("app.pct_remote", int64(c.PctRemote)),
		resultcache.FInt("app.remote_reuse", int64(c.RemoteReuse)),
		resultcache.FInt("app.iters", int64(c.Iters)),
		resultcache.FUint("app.seed", c.Seed),
	}
}

// appKeyFields extracts a benchmark instance's workload parameters for
// the key. Every app type must be listed: silently keying an unknown
// app on its name alone would alias different workloads, so this
// errors instead.
func appKeyFields(app apps.App) ([]resultcache.Field, error) {
	switch a := app.(type) {
	case *appbt.App:
		c := a.Config()
		return []resultcache.Field{
			resultcache.FInt("app.n", int64(c.N)),
			resultcache.FInt("app.iters", int64(c.Iters)),
		}, nil
	case *barnes.App:
		c := a.Config()
		return []resultcache.Field{
			resultcache.FInt("app.bodies", int64(c.Bodies)),
			resultcache.FInt("app.iters", int64(c.Iters)),
			resultcache.FFloat("app.theta", c.Theta),
			resultcache.FUint("app.seed", c.Seed),
		}, nil
	case *mp3d.App:
		c := a.Config()
		return []resultcache.Field{
			resultcache.FInt("app.mols", int64(c.Mols)),
			resultcache.FInt("app.cells", int64(c.Cells)),
			resultcache.FInt("app.steps", int64(c.Steps)),
			resultcache.FUint("app.seed", c.Seed),
		}, nil
	case *ocean.App:
		c := a.Config()
		return []resultcache.Field{
			resultcache.FInt("app.n", int64(c.N)),
			resultcache.FInt("app.iters", int64(c.Iters)),
			resultcache.FBool("app.owner_placed", c.OwnerPlaced),
		}, nil
	case *em3d.App:
		return em3dKey(a.Config()), nil
	}
	return nil, fmt.Errorf("harness: no cache key mapping for app %q (%T)", app.Name(), app)
}

// runKey digests one run's full input.
func runKey(code string, cfg machine.Config, system System, appName string, appFields, extra []resultcache.Field) resultcache.Key {
	b := resultcache.NewKey()
	b.Str("code", code)
	b.Str("system", string(system))
	b.Str("app", appName)
	machineKey(b, cfg)
	b.Add(appFields)
	b.Add(extra)
	return b.Sum()
}

// codeDigestFor resolves the code digest for a cache. A persistent
// cache refuses to run without one (its entries outlive the process,
// so keys must pin the code); a memory-only cache falls back to a
// fixed sentinel — within one process the code cannot change.
func codeDigestFor(c *resultcache.Cache) (string, error) {
	code, err := resultcache.CodeDigest()
	if err == nil {
		return code, nil
	}
	if c.Persistent() {
		return "", fmt.Errorf("harness: persistent result cache needs a code digest: %w", err)
	}
	return "in-memory", nil
}

// entryFromResult converts a run into its cached form. Counters under
// the engine. prefix are stripped: they describe how this host ran the
// simulation (dispatch hosting, window grants vary with the shard
// count), not what was simulated, and a cached result must be valid
// for any shard count.
func entryFromResult(key resultcache.Key, code string, system System, appName string, res machine.Result) *resultcache.Entry {
	e := &resultcache.Entry{
		Key:      key,
		Code:     code,
		System:   string(system),
		App:      appName,
		Cycles:   uint64(res.Cycles),
		ROI:      uint64(res.ROICycles),
		Counters: make(map[string]uint64),
		Net:      res.Net,
	}
	for _, name := range res.Counters.Names() {
		if strings.HasPrefix(name, "engine.") {
			continue
		}
		e.Counters[name] = res.Counters.Get(name)
	}
	for i := range res.ObsHashes {
		e.Obs = append(e.Obs, resultcache.ObsRecord{Hash: res.ObsHashes[i], Ops: res.ObsOps[i]})
	}
	return e
}

// resultFromEntry reconstructs a RunResult from a cached entry. The
// engine.* counters a fresh run would carry are absent — by design;
// they never describe simulated behaviour.
func resultFromEntry(e *resultcache.Entry) RunResult {
	ctr := stats.NewCounters()
	for name, v := range e.Counters {
		ctr.Add(name, v)
	}
	res := machine.Result{
		Cycles:    sim.Time(e.Cycles),
		ROICycles: sim.Time(e.ROI),
		Counters:  ctr,
		Net:       e.Net,
	}
	for _, o := range e.Obs {
		res.ObsHashes = append(res.ObsHashes, o.Hash)
		res.ObsOps = append(res.ObsOps, o.Ops)
	}
	return RunResult{System: System(e.System), App: e.App, Res: res}
}

// ResultFromEntry reconstructs a run result from a cache entry — the
// fleet backends rebuild sweep results from entries shipped over the
// wire, after verifying them against the point's canonical key.
func ResultFromEntry(e *resultcache.Entry) RunResult { return resultFromEntry(e) }

// cachedRun is the memoization funnel every cached sweep point goes
// through: look the key up, serve hits (re-simulating the configured
// verification fraction and failing loudly on divergence), simulate
// and store misses. Damaged disk entries fall back to simulation — the
// cache counts them; they never fail a sweep.
func cachedRun(cp CacheParams, cfg machine.Config, system System, appName string,
	appFields, extra []resultcache.Field, simulate func() (RunResult, error)) (RunResult, *resultcache.Entry, error) {
	if !cp.enabled() {
		rr, err := simulate()
		return rr, nil, err
	}
	code, err := codeDigestFor(cp.Cache)
	if err != nil {
		return RunResult{}, nil, err
	}
	key := runKey(code, cfg, system, appName, appFields, extra)
	// A Get error is a structured *resultcache.Error for a damaged entry
	// (the corrupt counter has already ticked) or a read failure; either
	// way the fall-back is the same: simulate.
	cached, _ := cp.Cache.Get(key)
	if cached != nil {
		if cp.Cache.ShouldVerify(key, cp.Verify) {
			rr, err := simulate()
			if err != nil {
				return RunResult{}, nil, fmt.Errorf("harness: cache verify re-simulation: %w", err)
			}
			fresh := entryFromResult(key, code, system, appName, rr.Res)
			if err := resultcache.CheckMatch(cached, fresh); err != nil {
				return RunResult{}, nil, fmt.Errorf("harness: %s on %s: cached result %s does not match re-simulation: %w",
					appName, system, key, err)
			}
			cp.Cache.NoteVerified()
		}
		return resultFromEntry(cached), cached, nil
	}
	rr, err := simulate()
	if err != nil {
		return RunResult{}, nil, err
	}
	e := entryFromResult(key, code, system, appName, rr.Res)
	cp.Cache.Put(e)
	return rr, e, nil
}

// RunCached is Run behind the result cache: a hit reconstructs the
// result without building a machine; a miss simulates and stores. With
// a nil cache it is exactly Run.
func RunCached(cp CacheParams, cfg machine.Config, system System, app apps.App) (RunResult, error) {
	if !cp.enabled() {
		return Run(cfg, system, app)
	}
	appFields, err := appKeyFields(app)
	if err != nil {
		return RunResult{}, err
	}
	rr, _, err := cachedRun(cp, cfg, system, app.Name(), appFields, nil,
		func() (RunResult, error) { return Run(cfg, system, app) })
	return rr, err
}

// RunEM3DUpdateCached is RunEM3DUpdate behind the result cache.
func RunEM3DUpdateCached(cp CacheParams, cfg machine.Config, ecfg em3d.Config) (RunResult, error) {
	if !cp.enabled() {
		return RunEM3DUpdate(cfg, ecfg)
	}
	rr, _, err := cachedRun(cp, cfg, SysUpdate, "em3d-update", em3dKey(ecfg), nil,
		func() (RunResult, error) { return RunEM3DUpdate(cfg, ecfg) })
	return rr, err
}
