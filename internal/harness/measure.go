package harness

import (
	"context"
	"fmt"

	"github.com/tempest-sim/tempest/internal/apps/appbt"
	"github.com/tempest-sim/tempest/internal/apps/barnes"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/mp3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

// MeasureRefetch runs the canonical coherence microbenchmark on a
// two-node machine: node 0 owns and rewrites a block a reader on node 1
// keeps consuming; the returned cost is the reader's steady-state
// refetch latency (invalidation plus remote miss). It quantifies the
// paper's "Stache performs comparably (+-30%) to DirNNB" claim at the
// single-miss level (§6 discusses the handler path lengths behind it).
func MeasureRefetch(cfg machine.Config, system System) (sim.Time, error) {
	cfg.Nodes = 2
	m := machine.New(cfg)
	switch system {
	case SysDirNNB:
		dirnnb.New(m)
	case SysStache:
		typhoon.New(m, stache.New())
	default:
		return 0, fmt.Errorf("harness: MeasureRefetch does not support %q", system)
	}
	seg := m.AllocShared("probe", mem.PageSize, vm.OnNode{Node: 0}, 0)
	var total sim.Time
	const rounds = 8
	_, err := m.Run(func(p *machine.Proc) {
		// Warm both nodes' mappings and the block.
		p.ReadU64(seg.At(0))
		p.Barrier()
		for r := 0; r < rounds+2; r++ {
			if p.ID() == 0 {
				p.WriteU64(seg.At(0), uint64(r))
			}
			p.Barrier()
			if p.ID() == 1 {
				t0 := p.Ctx.Time()
				p.ReadU64(seg.At(0))
				if r >= 2 { // skip cold rounds
					total += p.Ctx.Time() - t0
				}
			}
			p.Barrier()
		}
	})
	if err != nil {
		return 0, err
	}
	return total / rounds, nil
}

// RefetchProbe is one MeasureRefetch point: a machine configuration
// paired with a target system.
type RefetchProbe struct {
	Config machine.Config
	System System
}

// MeasureRefetchAll measures every probe on the RunAll pool (workers
// <= 0 = all cores) and returns the latencies in probe order.
func MeasureRefetchAll(probes []RefetchProbe, workers int) ([]sim.Time, error) {
	var jobs []Job[sim.Time]
	for _, pr := range probes {
		jobs = append(jobs, func(context.Context) (sim.Time, error) {
			return MeasureRefetch(pr.Config, pr.System)
		})
	}
	return RunAll(jobs, workers)
}

// describe renders an app's Table 3 row for tests and reports.
func describe(a interface{ Name() string }) string {
	switch app := a.(type) {
	case *appbt.App:
		n := app.Config().N
		return fmt.Sprintf("%dx%dx%d", n, n, n)
	case *barnes.App:
		return fmt.Sprintf("%d bodies", app.Config().Bodies)
	case *mp3d.App:
		return fmt.Sprintf("%d mols", app.Config().Mols)
	case *ocean.App:
		n := app.Config().N
		return fmt.Sprintf("%dx%d grid", n, n)
	case *em3d.App:
		c := app.Config()
		return fmt.Sprintf("%d nodes, degree %d", c.TotalNodes, c.Degree)
	}
	return "unknown"
}
