package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestRunAllOrdersResultsByJobIndex(t *testing.T) {
	const n = 100
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	for _, workers := range []int{0, 1, 3, 7, n + 5} {
		got, err := RunAll(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunAllEmpty(t *testing.T) {
	got, err := RunAll([]Job[int]{}, 4)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty jobs: got %v, %v", got, err)
	}
}

func TestRunAllFailFast(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 20)
	var started int // guarded by the pool's serial execution (workers=1)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) {
			started++
			if i == 3 {
				return 0, boom
			}
			return i, nil
		}
	}
	_, err := RunAll(jobs, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("error should name the failing job: %v", err)
	}
	// Fail-fast: with one worker, no job after the failure starts except
	// at most those already fed into the pipeline.
	if started > 5 {
		t.Errorf("fail-fast leaked: %d jobs started after job 3 failed", started)
	}
}

func TestRunAllCancelsContextOnFailure(t *testing.T) {
	// Job 1 either never starts (already-cancelled feed drained) or, if
	// it is in flight when job 0 fails, observes cancellation instead of
	// blocking forever.
	var ran, sawCancel bool
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 0, errors.New("first fails") },
		func(ctx context.Context) (int, error) {
			ran = true
			<-ctx.Done()
			sawCancel = true
			return 0, ctx.Err()
		},
	}
	if _, err := RunAll(jobs, 2); err == nil {
		t.Fatal("expected error")
	}
	if ran && !sawCancel {
		t.Fatal("second job ran but never observed cancellation")
	}
}

func TestRunAllProgress(t *testing.T) {
	const n = 17
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) { return i, nil }
	}
	var calls []int
	_, err := RunAllOpts(jobs, RunOptions{Workers: 4, Progress: func(done, total int) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		calls = append(calls, done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress calls = %d, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence broken at %d: %v", i, calls)
		}
	}
}

// TestParallelDeterminism is the tentpole's correctness contract: every
// figure and sweep produces bit-identical results at any worker count,
// because results are slotted by job index and each simulated machine is
// self-contained.
func TestParallelDeterminism(t *testing.T) {
	t.Run("figure3", func(t *testing.T) {
		base := Fig3Options{
			Scale:   ScaleReduced,
			Apps:    []string{"ocean"},
			Configs: []Fig3Config{{SetSmall, 4}, {SetSmall, 64}, {SetLarge, 64}},
		}
		serial := base
		serial.Workers = 1
		parallel := base
		parallel.Workers = 4
		a, err := Figure3(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure3(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("figure 3 parallel != serial:\n%+v\n%+v", a, b)
		}
	})
	t.Run("figure4", func(t *testing.T) {
		if testing.Short() {
			t.Skip("short mode")
		}
		base := Fig4Options{Scale: ScaleReduced, Set: SetSmall, Pcts: []int{0, 30}}
		serial := base
		serial.Workers = 1
		parallel := base
		parallel.Workers = 4
		a, err := Figure4(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure4(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("figure 4 parallel != serial:\n%+v\n%+v", a, b)
		}
	})
	t.Run("ablations", func(t *testing.T) {
		if testing.Short() {
			t.Skip("short mode")
		}
		for _, tc := range []struct {
			name string
			run  func(workers int) ([]AblationRow, error)
		}{
			{"blocksize", func(w int) ([]AblationRow, error) { return AblationBlockSize(ScaleReduced, SimParams{Shards: 1}, w) }},
			{"em3d-protocols", func(w int) ([]AblationRow, error) {
				return AblationEM3DProtocols(ScaleReduced, 30, SimParams{Shards: 1}, w)
			}},
			{"netlatency", func(w int) ([]AblationRow, error) { return AblationNetLatency(ScaleReduced, SimParams{Shards: 1}, w) }},
		} {
			a, err := tc.run(1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tc.run(4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s parallel != serial:\n%+v\n%+v", tc.name, a, b)
			}
		}
	})
	t.Run("refetch", func(t *testing.T) {
		mcfg := MachineConfig(ScaleReduced, 4<<10)
		probes := []RefetchProbe{{mcfg, SysDirNNB}, {mcfg, SysStache}}
		a, err := MeasureRefetchAll(probes, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MeasureRefetchAll(probes, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("refetch parallel != serial: %v vs %v", a, b)
		}
	})
	t.Run("result-cache", func(t *testing.T) {
		// The result cache is a pure memoization layer: a sweep with it
		// (witness aliases included), a sweep without it, and a second
		// sweep served entirely from the warm cache must all render
		// bit-identical cells.
		base := Fig3Options{
			Scale:   ScaleReduced,
			Apps:    []string{"appbt"},
			Configs: []Fig3Config{{SetSmall, 4}, {SetSmall, 16}, {SetSmall, 64}},
			Workers: 4,
		}
		cp, err := NewCacheParams("", false, 0)
		if err != nil {
			t.Fatal(err)
		}
		cached := base
		cached.Cache = cp
		uncached := base
		uncached.NoDedup = true
		a, err := Figure3(cached)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure3(uncached)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("cache on != cache off:\n%+v\n%+v", a, b)
		}
		warm := cached
		warm.Shards = 2 // the warm entries were recorded at shards=1
		c, err := Figure3(warm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, c) {
			t.Errorf("warm cache != cold sweep:\n%+v\n%+v", a, c)
		}
		if s := cp.Cache.Stats(); s.Misses != 4 || s.Hits != 8 || s.Stores != 6 {
			t.Errorf("stats = %+v, want 4 cold misses, 8 hits (2 witness + 6 warm), 6 stores (4 fresh + 2 aliases)", s)
		}
	})
}

// TestFigure3ErrorPropagates checks fail-fast error aggregation through
// a real sweep: an unknown benchmark surfaces as an error, not a panic
// or a partial result.
func TestFigure3ErrorPropagates(t *testing.T) {
	_, err := Figure3(Fig3Options{
		Scale:   ScaleReduced,
		Apps:    []string{"ocean", "nope"},
		Configs: []Fig3Config{{SetSmall, 4}},
		Workers: 4,
	})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown-benchmark error", err)
	}
}

func TestParseScaleAndDataSet(t *testing.T) {
	if _, err := ParseScale("paper"); err != nil {
		t.Error(err)
	}
	if _, err := ParseScale("reduced"); err != nil {
		t.Error(err)
	}
	if _, err := ParseScale("papr"); err == nil {
		t.Error("typo scale accepted")
	}
	if _, err := ParseDataSet("small"); err != nil {
		t.Error(err)
	}
	if _, err := ParseDataSet("big"); err == nil {
		t.Error("unknown data set accepted")
	}
	if !ValidBench("em3d") || ValidBench("em4d") {
		t.Error("ValidBench misclassifies")
	}
}

func ExampleRunAll() {
	jobs := []Job[string]{
		func(context.Context) (string, error) { return "first", nil },
		func(context.Context) (string, error) { return "second", nil },
	}
	out, _ := RunAll(jobs, 2)
	fmt.Println(out[0], out[1])
	// Output: first second
}
