package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestFigure3Shape checks the paper's Figure 3 claims on the reduced
// scale for one capacity-sensitive benchmark: Typhoon/Stache wins when
// the working set overflows the cache and loses (but within reason) when
// it fits.
func TestFigure3Shape(t *testing.T) {
	cells, err := Figure3(Fig3Options{
		Scale:   ScaleReduced,
		Apps:    []string{"ocean"},
		Configs: []Fig3Config{{SetSmall, 4}, {SetSmall, 64}, {SetLarge, 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig3Cell{}
	for _, c := range cells {
		byKey[string(c.Set)+"/"+strconv.Itoa(c.CacheKB)] = c
	}
	if r := byKey["small/4"].Relative; r >= 1 {
		t.Errorf("small/4K relative = %.3f, want < 1 (capacity misses become local)", r)
	}
	if r := byKey["small/64"].Relative; r <= 1 || r > 1.6 {
		t.Errorf("small/64K relative = %.3f, want in (1, 1.6] (cache-resident: DirNNB wins moderately)", r)
	}
	if r := byKey["large/64"].Relative; r >= 1 {
		t.Errorf("large/64K relative = %.3f, want < 1 (working set overflows again)", r)
	}
}

// TestFigure4Shape checks the paper's Figure 4 claims: all three systems
// agree with no remote edges; cost grows with the remote fraction; the
// custom update protocol grows slowest and clearly beats DirNNB at 50%.
func TestFigure4Shape(t *testing.T) {
	pts, err := Figure4(Fig4Options{Scale: ScaleReduced, Set: SetSmall, Pcts: []int{0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	p0, p50 := pts[0], pts[1]
	near := func(a, b float64) bool { return a/b < 1.05 && b/a < 1.05 }
	if !near(p0.DirNNB, p0.Stache) || !near(p0.DirNNB, p0.Update) {
		t.Errorf("at 0%% remote the systems should agree: %+v", p0)
	}
	if p50.DirNNB <= p0.DirNNB || p50.Stache <= p0.Stache || p50.Update <= p0.Update {
		t.Errorf("cycles/edge must grow with remote fraction: %+v vs %+v", p0, p50)
	}
	if p50.Update >= p50.Stache {
		t.Errorf("update (%.2f) must beat stache (%.2f) at 50%%", p50.Update, p50.Stache)
	}
	if p50.Update >= p50.DirNNB*0.8 {
		t.Errorf("update (%.2f) must beat DirNNB (%.2f) by a clear margin at 50%%", p50.Update, p50.DirNNB)
	}
}

// TestMissCostsComparable pins the paper's central quantitative claim:
// the user-level Stache remote-miss path costs about the same as the
// hardware DirNNB path (the paper's +-30%).
func TestMissCostsComparable(t *testing.T) {
	costs := map[System]float64{}
	for _, sys := range []System{SysDirNNB, SysStache} {
		mcfg := MachineConfig(ScaleReduced, 4<<10)
		mcfg.Nodes = 2
		refetch, err := MeasureRefetch(mcfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		costs[sys] = float64(refetch)
	}
	ratio := costs[SysStache] / costs[SysDirNNB]
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("coherence-refetch ratio stache/dirnnb = %.2f, want within +-30%%", ratio)
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	cells := []Fig3Cell{{App: "ocean", Set: SetSmall, CacheKB: 4, Typhoon: 90, DirNNB: 100, Relative: 0.9}}
	if err := RenderFigure3(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ocean") || !strings.Contains(buf.String(), "0.900") {
		t.Errorf("figure 3 render missing content:\n%s", buf.String())
	}
	buf.Reset()
	pts := []Fig4Point{{PctRemote: 50, DirNNB: 49.1, Stache: 45.3, Update: 21.4}}
	if err := RenderFigure4(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "21.400") {
		t.Errorf("figure 4 render missing content:\n%s", buf.String())
	}
}

func TestMakeAppUnknown(t *testing.T) {
	if _, err := MakeApp("nope", ScaleReduced, SetSmall); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestTable3PaperSizes pins the paper's Table 3 data-set parameters.
func TestTable3PaperSizes(t *testing.T) {
	type sized interface{ Name() string }
	check := func(name string, set DataSet, want string) {
		t.Helper()
		app, err := MakeApp(name, ScalePaper, set)
		if err != nil {
			t.Fatal(err)
		}
		got := describe(app)
		if got != want {
			t.Errorf("%s %s = %q, want %q", name, set, got, want)
		}
	}
	check("appbt", SetSmall, "12x12x12")
	check("appbt", SetLarge, "24x24x24")
	check("barnes", SetSmall, "2048 bodies")
	check("barnes", SetLarge, "8192 bodies")
	check("mp3d", SetSmall, "10000 mols")
	check("mp3d", SetLarge, "50000 mols")
	check("ocean", SetSmall, "98x98 grid")
	check("ocean", SetLarge, "386x386 grid")
	check("em3d", SetSmall, "64000 nodes, degree 10")
	check("em3d", SetLarge, "192000 nodes, degree 15")
}

func TestAblationBlockSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationBlockSize(ScaleReduced, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger blocks must reduce the fault count (more data per fetch).
	if rows[2].Extra["faults"] >= rows[0].Extra["faults"] {
		t.Errorf("128B blocks should fault less than 32B: %d vs %d",
			rows[2].Extra["faults"], rows[0].Extra["faults"])
	}
}

func TestAblationPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationPlacement(ScaleReduced, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Careful placement must recover most of DirNNB's disadvantage
	// (paper §6), while Stache barely cares about placement.
	if byLabel["dirnnb/owner-placed"].Cycles >= byLabel["dirnnb/naive"].Cycles {
		t.Errorf("owner placement should help DirNNB: %d vs %d",
			byLabel["dirnnb/owner-placed"].Cycles, byLabel["dirnnb/naive"].Cycles)
	}
	stRatio := float64(byLabel["typhoon-stache/naive"].Cycles) /
		float64(byLabel["typhoon-stache/owner-placed"].Cycles)
	dirRatio := float64(byLabel["dirnnb/naive"].Cycles) /
		float64(byLabel["dirnnb/owner-placed"].Cycles)
	if stRatio > dirRatio {
		t.Errorf("placement sensitivity: stache %.2fx vs dirnnb %.2fx; stache should care less", stRatio, dirRatio)
	}
}

func TestAblationStacheBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationStacheBudget(ScaleReduced, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Extra["replacements"] != 0 {
		t.Errorf("unbounded budget replaced %d pages", rows[0].Extra["replacements"])
	}
	last := rows[len(rows)-1]
	if last.Extra["replacements"] == 0 {
		t.Error("tightest budget produced no replacements")
	}
	// Replacement changes the protocol mix materially (dropped pages
	// trade invalidation round trips for refetches — it can go either
	// way, cf. the paper's check-in discussion in §4).
	diff := float64(last.Cycles) / float64(rows[0].Cycles)
	if diff > 0.99 && diff < 1.01 {
		t.Errorf("tight budget changed cycles by <1%% (%.3f); replacement has no effect?", diff)
	}
}

func TestAblationNetLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationNetLatency(ScaleReduced, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both systems slow down as latency rises.
	if rows[4].Cycles <= rows[0].Cycles || rows[5].Cycles <= rows[1].Cycles {
		t.Error("higher network latency should cost both systems")
	}
}

func TestAblationEM3DProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationEM3DProtocols(ScaleReduced, 30, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	plain := byLabel["typhoon-stache"].Extra["net-messages"]
	checkin := byLabel["typhoon-stache+checkin"].Extra["net-messages"]
	update := byLabel["typhoon-update"].Extra["net-messages"]
	if !(update < checkin && checkin < plain) {
		t.Errorf("message chain should be update < checkin < stache: %d, %d, %d", update, checkin, plain)
	}
	if byLabel["typhoon-update"].Cycles >= byLabel["typhoon-stache"].Cycles {
		t.Error("update protocol should beat plain stache in cycles")
	}
}

func TestAblationMigratory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationMigratory(ScaleReduced, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, mig := rows[0], rows[1]
	if mig.Extra["migratory-grants"] == 0 {
		t.Fatal("migratory detection never fired on mp3d")
	}
	if mig.Cycles >= plain.Cycles {
		t.Errorf("migratory (%d) should beat plain (%d) on mp3d", mig.Cycles, plain.Cycles)
	}
	if mig.Extra["upgrades"] >= plain.Extra["upgrades"] {
		t.Errorf("migratory should cut upgrade requests: %d vs %d",
			mig.Extra["upgrades"], plain.Extra["upgrades"])
	}
}

func TestAblationSoftwareTempest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationSoftwareTempest(ScaleReduced, SimParams{Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	for _, name := range []string{"ocean", "em3d"} {
		hw := float64(byLabel[name+"/typhoon"].Cycles)
		sw := float64(byLabel[name+"/software"].Cycles)
		if sw/hw <= 1.05 || sw/hw > 10 {
			t.Errorf("%s software/typhoon ratio %.2f outside plausible (1.05, 10]", name, sw/hw)
		}
	}
}
