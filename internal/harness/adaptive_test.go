package harness

import (
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// TestAdaptiveVsFixedWindows is the adaptive planner's A/B equivalence
// proof: the same sharded workload with adaptive lookahead windows and
// with the legacy fixed lockstep plan must produce identical results —
// total and ROI cycles, network traffic, and every counter in both
// directions except the engine.window.* group, which describes the
// window plan itself and differs by design (that is the optimisation).
// Together with TestShardedVsSerialEquivalence (serial vs adaptive
// sharded) this pins the full triangle serial = fixed = adaptive. The
// contended cases repeat the proof with finite link bandwidth and agent
// occupancy charged, where delivery times — but never their lower bound
// — depend on queueing.
func TestAdaptiveVsFixedWindows(t *testing.T) {
	cases := []struct {
		name      string
		app       string
		sys       System
		contended bool
	}{
		{"em3d-stache", "em3d", SysStache, false},
		{"ocean-stache", "ocean", SysStache, false},
		{"em3d-dirnnb", "em3d", SysDirNNB, false},
		{"ocean-dirnnb", "ocean", SysDirNNB, false},
		{"em3d-blizzard", "em3d", SysBlizzard, false},
		{"ocean-blizzard", "ocean", SysBlizzard, false},
		{"em3d-stache-contended", "em3d", SysStache, true},
		{"ocean-dirnnb-contended", "ocean", SysDirNNB, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range []int{2, 4} {
				adaptive := windowModeRun(t, tc.app, tc.sys, shards, tc.contended, false)
				fixed := windowModeRun(t, tc.app, tc.sys, shards, tc.contended, true)
				compareWindowModes(t, shards, adaptive, fixed)
			}
		})
	}
}

// TestAdaptiveVsFixedEM3DUpdate repeats the A/B proof for the custom
// EM3D update protocol (NP-to-NP pushes, fuzzy barrier), whose sends
// are the zero-pre-charge case the planner's lookahead claim leans on.
func TestAdaptiveVsFixedEM3DUpdate(t *testing.T) {
	run := func(shards int, fixedWin bool) machine.Result {
		cfg := MachineConfig(ScaleReduced, 16<<10)
		cfg.Shards = shards
		cfg.FixedWindow = fixedWin
		rr, err := RunEM3DUpdate(cfg, EM3DConfig(ScaleReduced, SetSmall))
		if err != nil {
			t.Fatal(err)
		}
		return rr.Res
	}
	for _, shards := range []int{2, 4} {
		compareWindowModes(t, shards, run(shards, false), run(shards, true))
	}
}

// TestAdaptiveVsFixedTracing compares the merged trace event streams of
// an adaptive and a fixed-window sharded run: the strongest observable —
// every protocol event, timestamped and ordered — must be byte-identical,
// so window placement is invisible even at full instrumentation.
func TestAdaptiveVsFixedTracing(t *testing.T) {
	runTraced := func(shards int, fixedWin bool) []trace.Event {
		app, err := MakeApp("em3d", ScaleReduced, SetSmall)
		if err != nil {
			t.Fatal(err)
		}
		cfg := MachineConfig(ScaleReduced, 16<<10)
		cfg.Shards = shards
		cfg.FixedWindow = fixedWin
		m := machine.New(cfg)
		tr := trace.New(0)
		typhoon.New(m, stache.New(), typhoon.WithTracer(tr))
		app.Setup(m)
		if _, err := m.Run(app.Body); err != nil {
			t.Fatal(err)
		}
		out := make([]trace.Event, len(tr.Events()))
		copy(out, tr.Events())
		return out
	}
	for _, shards := range []int{2, 4} {
		adaptive := runTraced(shards, false)
		fixed := runTraced(shards, true)
		if len(adaptive) == 0 {
			t.Fatalf("shards=%d: adaptive run traced no events", shards)
		}
		if len(adaptive) != len(fixed) {
			t.Fatalf("shards=%d: adaptive traced %d events, fixed %d", shards, len(adaptive), len(fixed))
		}
		for i := range adaptive {
			if adaptive[i] != fixed[i] {
				t.Fatalf("shards=%d: event %d adaptive %+v, fixed %+v", shards, i, adaptive[i], fixed[i])
			}
		}
	}
}

// windowModeRun executes one benchmark at the given shard count with the
// window planner in adaptive or fixed mode, contended or ideal.
func windowModeRun(t *testing.T, app string, sys System, shards int, contended, fixedWin bool) machine.Result {
	t.Helper()
	a, err := MakeApp(app, ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cache := 16 << 10
	if contended {
		cache = 4 << 10
	}
	cfg := MachineConfig(ScaleReduced, cache)
	cfg.Shards = shards
	cfg.FixedWindow = fixedWin
	if contended {
		cfg.LinkBytesPerCycle = 4
		cfg.OccupancyCycles = 20
	}
	rr, err := Run(cfg, sys, a)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Res
}

// compareWindowModes asserts two runs are identical in everything but
// the engine.window.* planner telemetry.
func compareWindowModes(t *testing.T, shards int, adaptive, fixed machine.Result) {
	t.Helper()
	if adaptive.Cycles != fixed.Cycles {
		t.Errorf("shards=%d: adaptive cycles %d, fixed %d", shards, adaptive.Cycles, fixed.Cycles)
	}
	if adaptive.ROICycles != fixed.ROICycles {
		t.Errorf("shards=%d: adaptive ROI cycles %d, fixed %d", shards, adaptive.ROICycles, fixed.ROICycles)
	}
	if adaptive.Net != fixed.Net {
		t.Errorf("shards=%d: adaptive network stats %+v, fixed %+v", shards, adaptive.Net, fixed.Net)
	}
	a, f := adaptive.Counters.Snapshot(), fixed.Counters.Snapshot()
	for name, av := range a {
		if strings.HasPrefix(name, "engine.window.") {
			continue
		}
		if fv, ok := f[name]; !ok || fv != av {
			t.Errorf("shards=%d: counter %s: adaptive %d, fixed %d", shards, name, av, fv)
		}
	}
	for name := range f {
		if strings.HasPrefix(name, "engine.window.") {
			continue
		}
		if _, ok := a[name]; !ok {
			t.Errorf("shards=%d: counter %s only present in fixed mode", shards, name)
		}
	}
}
