package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// Fig4Point is one x-position of Figure 4: the cycles-per-edge of all
// three systems at a given remote-edge percentage.
type Fig4Point struct {
	PctRemote int
	// Cycles per graph-edge update in the measured region, per system.
	DirNNB, Stache, Update float64
}

// Fig4Options selects the sweep.
type Fig4Options struct {
	Scale Scale
	// Set selects the data set; the paper uses the large set.
	Set DataSet
	// Pcts are the remote-edge percentages; nil = 0..50 step 10.
	Pcts []int
	// Workers sizes the local worker pool; <= 0 uses all cores. Results
	// are bit-identical at every worker count. Ignored when Exec is set.
	Workers int
	// Shards runs each simulation's nodes across this many scheduler
	// goroutines (machine.Config.Shards; <= 0 means 1) for every system,
	// DirNNB included. Results are bit-identical at every value.
	Shards int
	// LinkBytesPerCycle and OccupancyCycles enable the contention model
	// (machine.Config fields of the same names) on every sweep point;
	// zero values reproduce the paper's contention-free machine.
	LinkBytesPerCycle int
	OccupancyCycles   sim.Time
	// Cache supplies a shared result cache (zero value = no caching).
	Cache CacheParams
	// Exec, when non-nil, runs the sweep's points on that backend
	// instead of the in-process pool.
	Exec Executor
	// PointTimeout, when > 0, bounds each point's wall-clock run.
	PointTimeout time.Duration
	// Progress, when non-nil, is called after each simulation finishes.
	Progress func(done, total int)
}

// fig4Systems is the series order of Figure 4.
var fig4Systems = []System{SysDirNNB, SysStache, SysUpdate}

// Figure4 reproduces the paper's Figure 4: EM3D cycles per edge versus
// the percentage of non-local edges, for DirNNB, Typhoon/Stache, and the
// custom Typhoon update protocol. Each (percentage, system) pair is one
// independent sweep point.
func Figure4(opts Fig4Options) ([]Fig4Point, error) {
	pcts := opts.Pcts
	if pcts == nil {
		pcts = []int{0, 10, 20, 30, 40, 50}
	}
	set := opts.Set
	if set == "" {
		set = SetLarge
	}
	mcfg := MachineConfig(opts.Scale, 0)
	mcfg.Shards = opts.Shards
	mcfg.LinkBytesPerCycle = opts.LinkBytesPerCycle
	mcfg.OccupancyCycles = opts.OccupancyCycles
	var points []Point
	for _, pct := range pcts {
		for _, sys := range fig4Systems {
			ecfg := EM3DConfig(opts.Scale, set)
			ecfg.PctRemote = pct
			points = append(points, Point{Cfg: mcfg, System: sys, EM3D: &ecfg})
		}
	}
	results, err := submitPoints(opts.Exec, opts.Cache, opts.Workers, opts.PointTimeout, points, opts.Progress)
	if err != nil {
		return nil, err
	}
	ecfg := EM3DConfig(opts.Scale, set)
	edges := em3dEdges(ecfg, mcfg.Nodes)
	perEdge := func(r PointResult) float64 {
		return float64(r.Res.ROICycles) / float64(edges*ecfg.Iters)
	}
	var out []Fig4Point
	for i, pct := range pcts {
		base := i * len(fig4Systems)
		out = append(out, Fig4Point{
			PctRemote: pct,
			DirNNB:    perEdge(results[base]),
			Stache:    perEdge(results[base+1]),
			Update:    perEdge(results[base+2]),
		})
	}
	return out, nil
}

// em3dEdges computes the per-processor edges per iteration from the
// configuration (the same partition formula App.Setup uses), so a cache
// hit needs no app instance.
func em3dEdges(ecfg em3d.Config, nodes int) int {
	per := apps.CeilDiv(ecfg.TotalNodes/2, nodes)
	if per == 0 {
		per = 1
	}
	return 2 * per * ecfg.Degree
}

// RenderFigure4 prints the Figure 4 series.
func RenderFigure4(w io.Writer, pts []Fig4Point) error {
	t := &stats.Table{
		Title:  "Figure 4: EM3D cycles per edge vs. percent non-local edges",
		Header: []string{"% remote", "DirNNB", "Typhoon/Stache", "Typhoon/Update"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.PctRemote),
			stats.F(p.DirNNB), stats.F(p.Stache), stats.F(p.Update))
	}
	return t.Render(w)
}
