package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/blizzard"
	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// The differential harness runs the same program under every protocol
// and asserts identical application-visible memory semantics. Two
// signals define "identical":
//
//   - Observations: every processor's program-order (address, value,
//     read/write) history, hashed (machine.Observation) and checkpointed
//     at each barrier release. For a data-race-free program the history
//     is protocol-independent, and at the k-th release each processor
//     has performed exactly its first k phases' operations — so the
//     checkpoint rows are comparable protocol-to-protocol whenever the
//     barrier structure matches (EM3D-update's fuzzy barrier elides
//     hardware barriers, so for it only the final row is compared).
//   - Memory: the coherent post-run contents of every shared segment,
//     digested word-by-word (the home copy, or the owner's when a
//     protocol holds the block dirty remotely).
//
// The timing of the systems differs wildly — that is the paper's point —
// but the memory semantics must not.

// DiffApps are the applications the differential matrix runs: one graph
// kernel with irregular remote traffic and one stencil with regular
// neighbour sharing.
var DiffApps = []string{"em3d", "ocean"}

// DiffSystemsFor lists the systems the differential matrix compares for
// an application: the hardware directory, Typhoon running Stache, the
// software Tempest (Blizzard) running the same unmodified Stache, and —
// for em3d — the application-specific update protocol.
func DiffSystemsFor(app string) []System {
	out := []System{SysDirNNB, SysStache, SysBlizzard}
	if app == "em3d" {
		out = append(out, SysUpdate)
	}
	return out
}

// DiffWorkload sizes the differential matrix's applications.
type DiffWorkload struct {
	EM3D  em3d.Config
	Ocean ocean.Config
}

// TinyWorkload is the committed-corpus scale: big enough to exercise
// misses, invalidations, writebacks, and update traffic on every node,
// small enough that a recorded trace stays a few hundred kilobytes.
func TinyWorkload() DiffWorkload {
	return DiffWorkload{EM3D: em3d.Tiny(), Ocean: ocean.Tiny()}
}

// DiffOptions tunes one observed run.
type DiffOptions struct {
	// Mutate, when non-nil, is applied to the Typhoon system before the
	// run — the conformance suite's fault-injection hook (WrapHandler).
	// Rejected for SysDirNNB, which has no Typhoon system to mutate.
	Mutate func(*typhoon.System)
	// SkipVerify skips the application's own Verify, so an injected
	// protocol bug is caught by the differential comparison itself
	// rather than by the app's answer check.
	SkipVerify bool
	// Tracer, when non-nil, records the run: protocol-level events for
	// Typhoon systems (via typhoon.WithTracer) and, for every system,
	// the network-level message stream through the conformance taps —
	// each network.Network.OnSend as a KNetSend and each
	// agent.Core.OnDispatch as a KNetDeliver.
	Tracer *trace.Tracer
}

// DiffObservation is one observed run of the matrix.
type DiffObservation struct {
	System System
	App    string
	// Epochs holds one row per barrier release: each processor's
	// observation hash at that instant.
	Epochs [][]uint64
	// FinalProcs/FinalOps are the per-processor observation hashes and
	// operation counts after Run.
	FinalProcs []uint64
	FinalOps   []uint64
	// MemDigest is the sha256 of the coherent shared-memory contents.
	MemDigest string
	// ProtoDigest is the protocol's post-run StateDigest (Stache or the
	// update protocol's directory and requester state, DirNNB's
	// directory, transactions, and claims). TagsDigest is the Typhoon
	// system's post-run access-tag digest (zero for DirNNB, whose tags
	// live in the hardware directory already covered by ProtoDigest).
	// Both are recorded in a conformance stream's footer and compared on
	// re-record, never across systems.
	ProtoDigest uint64
	TagsDigest  uint64
	Res         machine.Result
}

// RunObserved executes app under system with observation enabled and
// per-barrier checkpoints, verifying the result (unless opt.SkipVerify)
// and returning the observation. The machine config is used as given —
// the matrix re-runs it at several shard counts.
func RunObserved(cfg machine.Config, system System, app string, w DiffWorkload, opt DiffOptions) (obs DiffObservation, err error) {
	defer func() {
		if r := recover(); r != nil {
			var derr *dirnnb.Error
			var nerr *network.Error
			if e, ok := r.(error); ok && (errors.As(e, &derr) || errors.As(e, &nerr)) {
				err = fmt.Errorf("harness: observed %s on %s: %w", app, system, e)
				return
			}
			panic(r)
		}
	}()
	m := machine.New(cfg)
	var topts []typhoon.Option
	if opt.Tracer != nil {
		topts = append(topts, typhoon.WithTracer(opt.Tracer))
	}
	var st *stache.Protocol
	var tsys *typhoon.System
	var dsys *dirnnb.System
	var upd *em3d.UpdateProtocol
	switch system {
	case SysDirNNB:
		dsys = dirnnb.New(m)
	case SysStache:
		st = stache.New()
		tsys = typhoon.New(m, st, topts...)
	case SysBlizzard:
		tsys, st = blizzard.NewStache(m, blizzard.Config{}, topts...)
	case SysUpdate:
		if app != "em3d" {
			return DiffObservation{}, fmt.Errorf("harness: %s is em3d-only", SysUpdate)
		}
		upd = em3d.NewUpdateProtocol()
		tsys = typhoon.New(m, upd, topts...)
	default:
		return DiffObservation{}, fmt.Errorf("harness: unknown system %q", system)
	}
	if tr := opt.Tracer; tr != nil {
		// The network-level taps exist for every system, DirNNB included:
		// together they record the complete message stream (issue time and
		// SendAfter delay on the sending node, dispatch start and service
		// time on the receiving agent), which is what the conformance
		// replay re-issues standalone. Both taps run on the node's shard,
		// so per-node tracer buffers capture race-free at any shard count.
		tr.Prepare(cfg.Nodes)
		m.Net.OnSend = func(p *network.Packet, issued, extra sim.Time) {
			tr.Emit(trace.Event{T: issued, Node: p.Src, Kind: trace.KNetSend, VA: mem.VA(extra),
				Aux: trace.PackMsg(p.Handler, p.Src, p.Dst, uint8(p.VNet), p.PayloadBytes())})
		}
		m.Net.OnDeliver = func(p *network.Packet) {
			tr.Emit(trace.Event{T: p.DeliveredAt, Node: p.Dst, Kind: trace.KNetArrive,
				Aux: trace.PackMsg(p.Handler, p.Src, p.Dst, uint8(p.VNet), p.PayloadBytes())})
		}
		for i := 0; i < cfg.Nodes; i++ {
			core := agentCore(tsys, dsys, i)
			node := i
			core.OnDispatch = func(pkt *network.Packet, start, end sim.Time) {
				tr.Emit(trace.Event{T: start, Node: node, Kind: trace.KNetDeliver, VA: mem.VA(end - start),
					Aux: trace.PackMsg(pkt.Handler, pkt.Src, pkt.Dst, uint8(pkt.VNet), pkt.PayloadBytes())})
			}
		}
	}
	if opt.Mutate != nil {
		if tsys == nil {
			return DiffObservation{}, fmt.Errorf("harness: cannot mutate %s (no Typhoon system)", system)
		}
		opt.Mutate(tsys)
	}
	var a apps.App
	switch app {
	case "em3d":
		if system == SysUpdate {
			a = em3d.NewUpdateApp(w.EM3D, upd)
		} else {
			a = em3d.New(w.EM3D)
		}
	case "ocean":
		a = ocean.New(w.Ocean)
	default:
		return DiffObservation{}, fmt.Errorf("harness: differential app %q not supported (want em3d or ocean)", app)
	}
	m.EnableObservation()
	a.Setup(m)
	obs = DiffObservation{System: system, App: app}
	// The release callback runs with every participant parked at the
	// barrier (and, sharded, with the coordinator holding every conch),
	// so reading each processor's observation here is the deterministic
	// machine-wide checkpoint — identical at any shard count.
	m.Bar.OnRelease(func(epoch uint64, at sim.Time) {
		row := make([]uint64, len(m.Procs))
		for i, p := range m.Procs {
			row[i], _ = p.Observation()
		}
		obs.Epochs = append(obs.Epochs, row)
	})
	res, err := m.Run(a.Body)
	if err != nil {
		return DiffObservation{}, fmt.Errorf("harness: observed %s on %s: %w", app, system, err)
	}
	if st != nil {
		if err := st.CheckInvariants(); err != nil {
			return DiffObservation{}, fmt.Errorf("harness: observed %s on %s: %w", app, system, err)
		}
	}
	if !opt.SkipVerify {
		if err := a.Verify(m); err != nil {
			return DiffObservation{}, fmt.Errorf("harness: observed %s on %s: %w", app, system, err)
		}
	}
	obs.Res = res
	// machine.Run recorded each processor's final observation in the
	// result (observation was enabled above) — the same records the
	// result cache stores.
	obs.FinalProcs = res.ObsHashes
	obs.FinalOps = res.ObsOps
	obs.MemDigest = SharedMemoryDigest(m)
	switch {
	case dsys != nil:
		obs.ProtoDigest = dsys.StateDigest()
	case upd != nil:
		obs.ProtoDigest, obs.TagsDigest = upd.StateDigest(), tsys.StateDigest()
	default:
		obs.ProtoDigest, obs.TagsDigest = st.StateDigest(), tsys.StateDigest()
	}
	return obs, nil
}

// agentCore returns node's protocol-agent core for whichever system is
// attached — the unified agent layer every delivery dispatches through.
func agentCore(tsys *typhoon.System, dsys *dirnnb.System, node int) *agent.Core {
	if dsys != nil {
		return dsys.AgentCore(node)
	}
	return tsys.NP(node).Core()
}

// SharedMemoryDigest hashes the coherent contents of every shared
// segment, word by word in address order, after Run. "Coherent" is the
// apps.ReadBack view: the home copy unless a protocol holds the block
// dirty remotely. Pages with no home binding or no home mapping (unused
// first-touch pages) are skipped deterministically.
func SharedMemoryDigest(m *machine.Machine) string {
	h := sha256.New()
	var buf [8]byte
	for _, seg := range m.VM.Segments() {
		checkedPage := ^mem.VA(0)
		pageOK := false
		for off := uint64(0); off+8 <= seg.Size; off += 8 {
			va := seg.At(off)
			if pb := va.PageBase(); pb != checkedPage {
				checkedPage = pb
				home := m.VM.Home(va)
				pageOK = home >= 0
				if pageOK {
					_, _, pageOK = m.VM.Translate(home, va)
				}
			}
			if !pageOK {
				continue
			}
			binary.LittleEndian.PutUint64(buf[:], apps.ReadBackU64(m, va))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CompareObservations checks a set of observed runs of the same app for
// identical application-visible memory semantics: equal final
// per-processor observation histories, equal coherent memory, and equal
// per-epoch checkpoints among runs with the same barrier structure. The
// error names the first diverging pair precisely enough to debug from.
func CompareObservations(results []DiffObservation) error {
	if len(results) < 2 {
		return nil
	}
	ref := results[0]
	for _, r := range results[1:] {
		if r.App != ref.App {
			return fmt.Errorf("differential: comparing different apps %q and %q", ref.App, r.App)
		}
		if r.MemDigest != ref.MemDigest {
			return fmt.Errorf("differential: %s: final shared memory differs between %s (%s) and %s (%s)",
				ref.App, ref.System, ref.MemDigest[:12], r.System, r.MemDigest[:12])
		}
		if len(r.FinalProcs) != len(ref.FinalProcs) {
			return fmt.Errorf("differential: %s: node count differs between %s and %s", ref.App, ref.System, r.System)
		}
		for i := range ref.FinalProcs {
			if r.FinalOps[i] != ref.FinalOps[i] {
				return fmt.Errorf("differential: %s: node %d performed %d data ops under %s but %d under %s",
					ref.App, i, ref.FinalOps[i], ref.System, r.FinalOps[i], r.System)
			}
			if r.FinalProcs[i] != ref.FinalProcs[i] {
				return fmt.Errorf("differential: %s: node %d observation history diverges between %s and %s (%#x vs %#x)",
					ref.App, i, ref.System, r.System, ref.FinalProcs[i], r.FinalProcs[i])
			}
		}
		// Epoch-by-epoch comparison only makes sense when the hardware
		// barrier structure matches (the update protocol's fuzzy barrier
		// runs fewer hardware barriers than plain em3d).
		if len(r.Epochs) != len(ref.Epochs) {
			continue
		}
		for e := range ref.Epochs {
			for i := range ref.Epochs[e] {
				if r.Epochs[e][i] != ref.Epochs[e][i] {
					return fmt.Errorf("differential: %s: barrier epoch %d node %d diverges between %s and %s",
						ref.App, e, i, ref.System, r.System)
				}
			}
		}
	}
	return nil
}
