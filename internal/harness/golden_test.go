package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden tests pin the simulator's rendered output bit-for-bit.
// Any change to the timing model, protocol behaviour, or event ordering
// shows up here as a hash mismatch — which is the point: performance
// work must not move a single cycle. Regenerate after an intentional
// model change with:
//
//	go test ./internal/harness -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// checkGolden compares rendered output against testdata/<name>.golden.
// The golden file stores the sha256 on its first line and the full
// rendered text below it, so mismatches are human-diffable.
func checkGolden(t *testing.T, name string, rendered []byte) {
	t.Helper()
	sum := sha256.Sum256(rendered)
	got := hex.EncodeToString(sum[:])
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		content := fmt.Sprintf("sha256:%s\n%s", got, rendered)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 || !bytes.HasPrefix(raw, []byte("sha256:")) {
		t.Fatalf("%s: malformed golden file (want sha256:<hex> first line)", path)
	}
	want := string(raw[len("sha256:"):nl])
	if got != want {
		t.Errorf("%s: output hash %s, golden %s — simulated results changed.\n"+
			"If the timing-model change is intentional, regenerate with -update.\n"+
			"got output:\n%s\ngolden output:\n%s",
			name, got, want, rendered, raw[nl+1:])
	}
}

func TestGoldenFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep; skipped with -short")
	}
	cells, err := Figure3(Fig3Options{Scale: ScaleReduced})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure3(&buf, cells); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure3", buf.Bytes())
}

func TestGoldenFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep; skipped with -short")
	}
	pts, err := Figure4(Fig4Options{
		Scale: ScaleReduced,
		Set:   SetSmall,
		Pcts:  []int{0, 20, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure4(&buf, pts); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure4", buf.Bytes())
}
