package harness

import (
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
)

// TestStepperVsGoroutineEquivalence runs the same workloads with the
// engine's two stepper hosts — inline dispatch on the scheduler
// goroutine (the default) and forced channel dispatch through standby
// goroutines (Config.GoroutineDispatch) — and asserts every simulated
// observable is identical: total and ROI cycles, network traffic, and
// every counter except the engine.* dispatch-mechanics group (which
// trivially differs, since it records the hosting itself). Both hosts
// drive the same context state machine, so a divergence here means the
// inline path changed simulated behaviour, not just speed.
func TestStepperVsGoroutineEquivalence(t *testing.T) {
	for _, app := range []string{"em3d", "ocean"} {
		t.Run(app, func(t *testing.T) {
			run := func(forceG bool) machine.Result {
				a, err := MakeApp(app, ScaleReduced, SetSmall)
				if err != nil {
					t.Fatal(err)
				}
				cfg := MachineConfig(ScaleReduced, 16<<10)
				cfg.GoroutineDispatch = forceG
				rr, err := Run(cfg, SysStache, a)
				if err != nil {
					t.Fatal(err)
				}
				return rr.Res
			}
			inline := run(false)
			forced := run(true)

			if inline.Cycles != forced.Cycles {
				t.Errorf("cycles: inline %d, goroutine %d", inline.Cycles, forced.Cycles)
			}
			if inline.ROICycles != forced.ROICycles {
				t.Errorf("ROI cycles: inline %d, goroutine %d", inline.ROICycles, forced.ROICycles)
			}
			if inline.Net != forced.Net {
				t.Errorf("network stats: inline %+v, goroutine %+v", inline.Net, forced.Net)
			}

			a, b := inline.Counters.Snapshot(), forced.Counters.Snapshot()
			for name, av := range a {
				if strings.HasPrefix(name, "engine.") {
					continue
				}
				if bv, ok := b[name]; !ok || bv != av {
					t.Errorf("counter %s: inline %d, goroutine %d", name, av, bv)
				}
			}
			for name := range b {
				if strings.HasPrefix(name, "engine.") {
					continue
				}
				if _, ok := a[name]; !ok {
					t.Errorf("counter %s: only present under goroutine dispatch", name)
				}
			}

			// Sanity on the mechanics themselves: the default host really
			// dispatched inline, and the forced host really did not.
			if inline.Counters.Get("engine.inline_steps") == 0 {
				t.Error("inline run recorded no inline steps")
			}
			if forced.Counters.Get("engine.inline_steps") != 0 {
				t.Errorf("forced-goroutine run recorded %d inline steps, want 0",
					forced.Counters.Get("engine.inline_steps"))
			}
		})
	}
}
