package harness

import (
	"errors"
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
)

// TestShardedVsSerialEquivalence runs the same workloads serially and
// under sharded execution (2 and 4 shards of the 8 reduced-scale nodes)
// and asserts every observable is identical — total and ROI cycles,
// network traffic, and every counter including the engine.* dispatch
// group: each shard's sub-schedule is the serial schedule restricted to
// its nodes, so even the dispatch mechanics must agree counter for
// counter. Run under -race this doubles as the memory-safety proof of
// the window protocol. The em3d-update case exercises a custom
// user-level protocol (NP-to-NP pushes, fuzzy barrier) under sharding.
func TestShardedVsSerialEquivalence(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, shards int) machine.Result
	}{
		{"em3d", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "em3d", SysStache, shards)
		}},
		{"ocean", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "ocean", SysStache, shards)
		}},
		{"em3d-dirnnb", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "em3d", SysDirNNB, shards)
		}},
		{"ocean-dirnnb", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "ocean", SysDirNNB, shards)
		}},
		{"em3d-update", func(t *testing.T, shards int) machine.Result {
			cfg := MachineConfig(ScaleReduced, 16<<10)
			cfg.Shards = shards
			rr, err := RunEM3DUpdate(cfg, EM3DConfig(ScaleReduced, SetSmall))
			if err != nil {
				t.Fatal(err)
			}
			return rr.Res
		}},
		// Contended cases: the same equivalence with finite link bandwidth
		// and agent occupancy charged. Port and agent busy state is
		// node-local, and head arrivals are at least a wire latency out, so
		// contended deliveries must still be bit-identical at every shard
		// count — including the new queueing counters.
		{"em3d-contended", func(t *testing.T, shards int) machine.Result {
			return contendedRun(t, "em3d", SysStache, shards)
		}},
		{"ocean-contended", func(t *testing.T, shards int) machine.Result {
			return contendedRun(t, "ocean", SysStache, shards)
		}},
		{"em3d-dirnnb-contended", func(t *testing.T, shards int) machine.Result {
			return contendedRun(t, "em3d", SysDirNNB, shards)
		}},
		{"ocean-dirnnb-contended", func(t *testing.T, shards int) machine.Result {
			return contendedRun(t, "ocean", SysDirNNB, shards)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.run(t, 1)
			for _, shards := range []int{2, 4} {
				sharded := tc.run(t, shards)
				if serial.Cycles != sharded.Cycles {
					t.Errorf("shards=%d: cycles %d, serial %d", shards, sharded.Cycles, serial.Cycles)
				}
				if serial.ROICycles != sharded.ROICycles {
					t.Errorf("shards=%d: ROI cycles %d, serial %d", shards, sharded.ROICycles, serial.ROICycles)
				}
				if serial.Net != sharded.Net {
					t.Errorf("shards=%d: network stats %+v, serial %+v", shards, sharded.Net, serial.Net)
				}
				// engine.window.* counters describe the window planner
				// itself (grants, batching, widths) and depend on the
				// shard count by nature — a serial run grants no windows —
				// so they are the one counter group excluded from the
				// serial-vs-sharded comparison.
				a, b := serial.Counters.Snapshot(), sharded.Counters.Snapshot()
				for name, av := range a {
					if strings.HasPrefix(name, "engine.window.") {
						continue
					}
					if bv, ok := b[name]; !ok || bv != av {
						t.Errorf("counter %s: serial %d, shards=%d %d", name, av, shards, bv)
					}
				}
				for name := range b {
					if strings.HasPrefix(name, "engine.window.") {
						continue
					}
					if _, ok := a[name]; !ok {
						t.Errorf("counter %s: only present with shards=%d", name, shards)
					}
				}
			}
		})
	}
}

// shardedRun executes one benchmark on the given system with the given
// shard count.
func shardedRun(t *testing.T, app string, sys System, shards int) machine.Result {
	t.Helper()
	a, err := MakeApp(app, ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(ScaleReduced, 16<<10)
	cfg.Shards = shards
	rr, err := Run(cfg, sys, a)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Res
}

// contendedRun is shardedRun with the contention model enabled at the
// pinned CI configuration (4 bytes/cycle links, 20-cycle agents).
func contendedRun(t *testing.T, app string, sys System, shards int) machine.Result {
	t.Helper()
	a, err := MakeApp(app, ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(ScaleReduced, 4<<10)
	cfg.Shards = shards
	cfg.LinkBytesPerCycle = 4
	cfg.OccupancyCycles = 20
	rr, err := Run(cfg, sys, a)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Res
}

// badSendApp is a degenerate benchmark whose body performs one send
// with a wrapped-negative delay — the classic uint64 underflow a
// protocol's timing math can produce.
type badSendApp struct{ m *machine.Machine }

func (a *badSendApp) Name() string             { return "bad-send" }
func (a *badSendApp) Setup(m *machine.Machine) { a.m = m }
func (a *badSendApp) Body(p *machine.Proc) {
	if p.ID() == 0 {
		var base sim.Time
		a.m.Net.SendAfter(&network.Packet{Src: 0, Dst: 1, VNet: network.VNetRequest}, base-5)
	}
}
func (a *badSendApp) Verify(*machine.Machine) error { return nil }

// TestNetworkErrorSurfaced asserts a *network.Error panic from inside a
// simulated context unwinds through the engine into Run's error — the
// same structured-failure contract TestDirNNBSetupErrorSurfaced pins
// for setup-time panics.
func TestNetworkErrorSurfaced(t *testing.T) {
	cfg := MachineConfig(ScaleReduced, 16<<10)
	_, err := Run(cfg, SysDirNNB, &badSendApp{})
	var nerr *network.Error
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want *network.Error", err)
	}
	if nerr.Op != "send-after" {
		t.Errorf("Op = %q, want send-after", nerr.Op)
	}
}

// TestDirNNBSetupErrorSurfaced drives DirNNB out of frames at segment
// setup and asserts Run reports a structured *dirnnb.Error instead of
// crashing the sweep.
func TestDirNNBSetupErrorSurfaced(t *testing.T) {
	a, err := MakeApp("ocean", ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(ScaleReduced, 16<<10)
	cfg.MemPagesPerNode = 1 // far too small for ocean's grids
	_, err = Run(cfg, SysDirNNB, a)
	var derr *dirnnb.Error
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *dirnnb.Error", err)
	}
	if derr.Op != "alloc-frame" {
		t.Errorf("Op = %q, want alloc-frame", derr.Op)
	}
}
