package harness

import (
	"errors"
	"testing"

	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
)

// TestShardedVsSerialEquivalence runs the same workloads serially and
// under sharded execution (2 and 4 shards of the 8 reduced-scale nodes)
// and asserts every observable is identical — total and ROI cycles,
// network traffic, and every counter including the engine.* dispatch
// group: each shard's sub-schedule is the serial schedule restricted to
// its nodes, so even the dispatch mechanics must agree counter for
// counter. Run under -race this doubles as the memory-safety proof of
// the window protocol. The em3d-update case exercises a custom
// user-level protocol (NP-to-NP pushes, fuzzy barrier) under sharding.
func TestShardedVsSerialEquivalence(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, shards int) machine.Result
	}{
		{"em3d", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "em3d", SysStache, shards)
		}},
		{"ocean", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "ocean", SysStache, shards)
		}},
		{"em3d-dirnnb", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "em3d", SysDirNNB, shards)
		}},
		{"ocean-dirnnb", func(t *testing.T, shards int) machine.Result {
			return shardedRun(t, "ocean", SysDirNNB, shards)
		}},
		{"em3d-update", func(t *testing.T, shards int) machine.Result {
			cfg := MachineConfig(ScaleReduced, 16<<10)
			cfg.Shards = shards
			rr, err := RunEM3DUpdate(cfg, EM3DConfig(ScaleReduced, SetSmall))
			if err != nil {
				t.Fatal(err)
			}
			return rr.Res
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.run(t, 1)
			for _, shards := range []int{2, 4} {
				sharded := tc.run(t, shards)
				if serial.Cycles != sharded.Cycles {
					t.Errorf("shards=%d: cycles %d, serial %d", shards, sharded.Cycles, serial.Cycles)
				}
				if serial.ROICycles != sharded.ROICycles {
					t.Errorf("shards=%d: ROI cycles %d, serial %d", shards, sharded.ROICycles, serial.ROICycles)
				}
				if serial.Net != sharded.Net {
					t.Errorf("shards=%d: network stats %+v, serial %+v", shards, sharded.Net, serial.Net)
				}
				a, b := serial.Counters.Snapshot(), sharded.Counters.Snapshot()
				for name, av := range a {
					if bv, ok := b[name]; !ok || bv != av {
						t.Errorf("counter %s: serial %d, shards=%d %d", name, av, shards, bv)
					}
				}
				for name := range b {
					if _, ok := a[name]; !ok {
						t.Errorf("counter %s: only present with shards=%d", name, shards)
					}
				}
			}
		})
	}
}

// shardedRun executes one benchmark on the given system with the given
// shard count.
func shardedRun(t *testing.T, app string, sys System, shards int) machine.Result {
	t.Helper()
	a, err := MakeApp(app, ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(ScaleReduced, 16<<10)
	cfg.Shards = shards
	rr, err := Run(cfg, sys, a)
	if err != nil {
		t.Fatal(err)
	}
	return rr.Res
}

// TestDirNNBSetupErrorSurfaced drives DirNNB out of frames at segment
// setup and asserts Run reports a structured *dirnnb.Error instead of
// crashing the sweep.
func TestDirNNBSetupErrorSurfaced(t *testing.T) {
	a, err := MakeApp("ocean", ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(ScaleReduced, 16<<10)
	cfg.MemPagesPerNode = 1 // far too small for ocean's grids
	_, err = Run(cfg, SysDirNNB, a)
	var derr *dirnnb.Error
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *dirnnb.Error", err)
	}
	if derr.Op != "alloc-frame" {
		t.Errorf("Op = %q, want alloc-frame", derr.Op)
	}
}
