package harness

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/tempest-sim/tempest/internal/resultcache"
)

// Batch is one sweep submission: an ordered list of points plus the
// execution policy that applies to each of them. Results come back in
// point order regardless of backend or completion order — the same
// determinism contract RunAll has always had.
type Batch struct {
	Points []Point
	// Progress, when non-nil, is called after each point completes with
	// the number done so far and the total. Calls are serialized but
	// arrive in completion order.
	Progress func(done, total int)
	// PointTimeout, when > 0, bounds each point's wall-clock run; a
	// point that exceeds it fails the batch with a *PointTimeoutError
	// naming the point.
	PointTimeout time.Duration
}

// PointResult is one completed point.
type PointResult struct {
	RunResult
	// Origin is the result's cache provenance: "" for a fresh (or
	// uncached) simulation, a tag like "witness:4K" for an alias served
	// from the zero-eviction dedup machinery.
	Origin string
	// Obs carries the full observation for Observed points, nil
	// otherwise.
	Obs *DiffObservation
}

// Executor runs a batch of sweep points. Implementations must preserve
// three invariants the sweeps rely on: results are returned slotted by
// point index; points sharing a Group run sequentially in submission
// order (so earlier points' cache entries and witness aliases can serve
// later ones); and the first point failure fails the whole batch rather
// than returning partial results. The in-process pool (LocalExecutor)
// and the fleet coordinator/client (internal/fleet) are the two
// backends; both produce bit-identical results for the same batch.
type Executor interface {
	Submit(ctx context.Context, batch Batch) ([]PointResult, error)
}

// LocalExecutor runs points on an in-process worker pool — the
// historical RunAll behaviour behind the Executor interface. Each group
// of points is one pool job; ungrouped points are singleton jobs.
type LocalExecutor struct {
	// Workers sizes the pool; <= 0 uses all cores.
	Workers int
	// Cache threads the result cache through every point (zero value =
	// no caching).
	Cache CacheParams
}

// Submit implements Executor.
func (ex LocalExecutor) Submit(ctx context.Context, batch Batch) ([]PointResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pts := batch.Points
	results := make([]PointResult, len(pts))

	// Group points into jobs: points sharing a Group form one job in
	// first-appearance order and run sequentially within it.
	type jobSpec struct {
		idxs  []int
		label string
	}
	var specs []jobSpec
	groupAt := make(map[string]int)
	for i, pt := range pts {
		if pt.Group == "" {
			specs = append(specs, jobSpec{idxs: []int{i}, label: pt.Label()})
			continue
		}
		gi, ok := groupAt[pt.Group]
		if !ok {
			gi = len(specs)
			groupAt[pt.Group] = gi
			specs = append(specs, jobSpec{label: pt.Group})
		}
		specs[gi].idxs = append(specs[gi].idxs, i)
	}

	var mu sync.Mutex
	done := 0
	jobs := make([]Job[struct{}], len(specs))
	for si := range specs {
		spec := specs[si]
		jobs[si] = func(jctx context.Context) (struct{}, error) {
			for _, i := range spec.idxs {
				if err := jctx.Err(); err != nil {
					return struct{}{}, err
				}
				pt := pts[i]
				pr, err := runJob(jctx, func(context.Context) (PointResult, error) {
					return RunPoint(ex.Cache, pt)
				}, batch.PointTimeout)
				if err != nil {
					var pte *PointTimeoutError
					if errors.As(err, &pte) && pte.Point == "" {
						pte.Point = pt.Label()
					}
					return struct{}{}, err
				}
				results[i] = pr
				if batch.Progress != nil {
					mu.Lock()
					done++
					batch.Progress(done, len(pts))
					mu.Unlock()
				}
			}
			return struct{}{}, nil
		}
	}
	_, err := RunAllOpts(jobs, RunOptions{
		Workers: ex.Workers,
		Label:   func(i int) string { return specs[i].label },
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// submitPoints routes a sweep's points through its configured executor,
// defaulting to the in-process pool.
func submitPoints(exec Executor, cp CacheParams, workers int, timeout time.Duration,
	points []Point, progress func(done, total int)) ([]PointResult, error) {
	if exec == nil {
		exec = LocalExecutor{Workers: workers, Cache: cp}
	}
	return exec.Submit(context.Background(), Batch{
		Points:       points,
		Progress:     progress,
		PointTimeout: timeout,
	})
}

// RunPoint executes one point through the cache funnel: Observed points
// go through the differential harness, NoCache (and cache-disabled)
// points simulate directly, everything else memoizes through cachedRun
// and publishes any witness aliases the point declares.
func RunPoint(cp CacheParams, pt Point) (PointResult, error) {
	if err := pt.Validate(); err != nil {
		return PointResult{}, err
	}
	if pt.Observed {
		obs, err := pt.runObserved()
		if err != nil {
			return PointResult{}, err
		}
		return PointResult{
			RunResult: RunResult{System: obs.System, App: obs.App, Res: obs.Res},
			Obs:       &obs,
		}, nil
	}
	if pt.NoCache || !cp.enabled() {
		rr, err := pt.Simulate()
		return PointResult{RunResult: rr}, err
	}
	name, appFields, extra, err := pt.keyParts()
	if err != nil {
		return PointResult{}, err
	}
	rr, entry, err := cachedRun(cp, pt.Cfg, pt.System, name, appFields, extra,
		pt.Simulate)
	if err != nil {
		return PointResult{}, err
	}
	StoreWitnessAliases(cp.Cache, pt, entry)
	return PointResult{RunResult: rr, Origin: entry.Origin}, nil
}

// RunPointEntry is RunPoint for executors that also need the point's
// cache entry — a fleet worker sends the entry over the wire, and the
// entry must exist even when the worker runs cacheless. Observed points
// have no entry form and are rejected.
func RunPointEntry(cp CacheParams, pt Point) (PointResult, *resultcache.Entry, error) {
	if err := pt.Validate(); err != nil {
		return PointResult{}, nil, err
	}
	if pt.Observed {
		return PointResult{}, nil, errors.New("harness: observed points have no cacheable entry form (run them locally)")
	}
	if !pt.NoCache && cp.enabled() {
		name, appFields, extra, err := pt.keyParts()
		if err != nil {
			return PointResult{}, nil, err
		}
		rr, entry, err := cachedRun(cp, pt.Cfg, pt.System, name, appFields, extra,
			pt.Simulate)
		if err != nil {
			return PointResult{}, nil, err
		}
		StoreWitnessAliases(cp.Cache, pt, entry)
		return PointResult{RunResult: rr, Origin: entry.Origin}, entry, nil
	}
	code := CodeID()
	name, appFields, extra, err := pt.keyParts()
	if err != nil {
		return PointResult{}, nil, err
	}
	rr, err := pt.Simulate()
	if err != nil {
		return PointResult{}, nil, err
	}
	entry := entryFromResult(runKey(code, pt.Cfg, pt.System, name, appFields, extra),
		code, pt.System, name, rr.Res)
	return PointResult{RunResult: rr}, entry, nil
}

// StoreWitnessAliases publishes the zero-eviction witness aliases a
// point declares: when its entry is a clean fresh run (not itself an
// alias) that evicted no cache line, the identical result is filed
// under the derived keys of every declared larger cache size. Both the
// local funnel and the fleet coordinator call this after accepting a
// fresh result; existing entries are never overwritten.
func StoreWitnessAliases(cache *resultcache.Cache, pt Point, entry *resultcache.Entry) {
	if cache == nil || entry == nil || len(pt.WitnessKB) == 0 {
		return
	}
	if entry.Origin != "" || entry.Counters["cpu.evictions"] != 0 {
		return
	}
	name, appFields, extra, err := pt.keyParts()
	if err != nil {
		return
	}
	for _, kb := range pt.WitnessKB {
		cfg2 := pt.Cfg
		cfg2.CacheSize = kb << 10
		k2 := runKey(entry.Code, cfg2, pt.System, name, appFields, extra)
		if !cache.Contains(k2) {
			cache.Put(entry.WithKey(k2, fig3Witness(pt.Cfg.CacheSize>>10)))
		}
	}
}
