package harness

import (
	"fmt"
	"io"
	"time"

	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// ContentionPoint is one configuration of the contention sweep: a link
// bandwidth and a protocol-agent occupancy. The zero point is the
// paper's machine (infinite bandwidth, unbounded agent concurrency).
type ContentionPoint struct {
	LinkBytesPerCycle int
	OccupancyCycles   sim.Time
}

func (p ContentionPoint) String() string {
	if p.LinkBytesPerCycle == 0 && p.OccupancyCycles == 0 {
		return "ideal"
	}
	bw := "∞"
	if p.LinkBytesPerCycle > 0 {
		bw = fmt.Sprintf("%dB/c", p.LinkBytesPerCycle)
	}
	return fmt.Sprintf("bw=%s occ=%d", bw, p.OccupancyCycles)
}

// ContentionPoints is the default sweep grid: the ideal machine, link
// bandwidth alone (8 then 4 bytes/cycle — an 80-byte data packet
// serialises for 10 or 20 cycles against the 11-cycle wire), agent
// occupancy alone (20 cycles, on the order of DirNNB's Table 2
// directory terms), and both together.
var ContentionPoints = []ContentionPoint{
	{0, 0},
	{8, 0},
	{4, 0},
	{0, 20},
	{4, 20},
}

// ContentionCell is one (app, point) measurement of the sweep: both
// systems' measured-region times, the Figure 3 ratio, and the queueing
// the contention model made visible — network port-wait cycles and
// protocol-agent occupancy-wait cycles per system.
type ContentionCell struct {
	App             string
	Point           ContentionPoint
	DirNNB, Typhoon sim.Time
	// Relative is Typhoon/Stache over DirNNB, as in Figure 3.
	Relative float64
	// DirNetQueue/TyphNetQueue are cycles packets spent waiting for busy
	// injection/ejection ports, summed over both virtual networks.
	DirNetQueue, TyphNetQueue uint64
	// DirAgentWait/TyphAgentWait are cycles messages spent waiting for a
	// busy directory controller / NP — the hot-home queueing of §6.
	DirAgentWait, TyphAgentWait uint64
}

// ContentionOptions selects the sweep's extent.
type ContentionOptions struct {
	Scale Scale
	// Apps are the benchmarks to sweep; nil = em3d and ocean (the two
	// with the hottest home nodes in the Figure 3 suite).
	Apps []string
	// Points are the contention configurations; nil = ContentionPoints.
	Points []ContentionPoint
	// CacheKB is the CPU cache size; <= 0 means 4 (the most
	// traffic-intensive Figure 3 point, where contention bites hardest).
	CacheKB int
	// Workers sizes the worker pool; <= 0 uses all cores.
	Workers int
	// Shards is machine.Config.Shards for every run; results are
	// bit-identical at every value, contention included.
	Shards int
	// Cache supplies a shared result cache (zero value = no caching).
	// The contention knobs are key fields, so every sweep point has its
	// own entry.
	Cache CacheParams
	// Exec, when non-nil, runs the sweep's points on that backend
	// instead of the in-process pool.
	Exec Executor
	// PointTimeout, when > 0, bounds each point's wall-clock run.
	PointTimeout time.Duration
}

// ContentionSweep reruns a Figure-3-style comparison across contention
// configurations: how do the Typhoon-vs-DirNNB ratios shift once link
// bandwidth and directory/NP occupancy are charged instead of assumed
// free? Each (app, point, system) is one job on the RunAll pool; cells
// are returned in (app, point) order.
func ContentionSweep(opts ContentionOptions) ([]ContentionCell, error) {
	names := opts.Apps
	if names == nil {
		names = []string{"em3d", "ocean"}
	}
	points := opts.Points
	if points == nil {
		points = ContentionPoints
	}
	cacheKB := opts.CacheKB
	if cacheKB <= 0 {
		cacheKB = 4
	}
	var pts []Point
	for _, name := range names {
		for _, pt := range points {
			for _, sys := range []System{SysDirNNB, SysStache} {
				cfg := MachineConfig(opts.Scale, cacheKB<<10)
				cfg.Shards = opts.Shards
				cfg.LinkBytesPerCycle = pt.LinkBytesPerCycle
				cfg.OccupancyCycles = pt.OccupancyCycles
				pts = append(pts, Point{Cfg: cfg, System: sys, Bench: name, Scale: opts.Scale, Set: SetSmall})
			}
		}
	}
	results, err := submitPoints(opts.Exec, opts.Cache, opts.Workers, opts.PointTimeout, pts, nil)
	if err != nil {
		return nil, err
	}
	netQueue := func(rr PointResult) uint64 {
		var q uint64
		for _, v := range rr.Res.Net.VNets {
			q += v.QueueingCycles
		}
		return q
	}
	var cells []ContentionCell
	i := 0
	for _, name := range names {
		for _, pt := range points {
			dir, typh := results[i], results[i+1]
			i += 2
			cells = append(cells, ContentionCell{
				App:           name,
				Point:         pt,
				DirNNB:        dir.Res.ROICycles,
				Typhoon:       typh.Res.ROICycles,
				Relative:      float64(typh.Res.ROICycles) / float64(dir.Res.ROICycles),
				DirNetQueue:   netQueue(dir),
				TyphNetQueue:  netQueue(typh),
				DirAgentWait:  dir.Res.Counters.Get("dirnnb.occ_wait_cycles"),
				TyphAgentWait: typh.Res.Counters.Get("np.occ_wait_cycles"),
			})
		}
	}
	return cells, nil
}

// RenderContention prints the contention sweep, one row per (app, point),
// with the per-cell delta of the Figure 3 ratio against the app's ideal
// (contention-free) row.
func RenderContention(w io.Writer, cells []ContentionCell) error {
	t := &stats.Table{
		Title: "Contention sweep: Figure 3 ratios with finite link bandwidth and agent occupancy charged",
		Header: []string{"benchmark", "config", "DirNNB cycles", "Typhoon/Stache cycles",
			"relative", "Δ vs ideal", "net queue (dir/typh)", "agent wait (dir/typh)"},
	}
	ideal := make(map[string]float64)
	for _, c := range cells {
		if c.Point == (ContentionPoint{}) {
			ideal[c.App] = c.Relative
		}
	}
	for _, c := range cells {
		delta := "—"
		if base, ok := ideal[c.App]; ok && c.Point != (ContentionPoint{}) {
			delta = fmt.Sprintf("%+.3f", c.Relative-base)
		}
		t.AddRow(c.App, c.Point.String(),
			stats.D(uint64(c.DirNNB)),
			stats.D(uint64(c.Typhoon)),
			stats.F(c.Relative),
			delta,
			fmt.Sprintf("%s/%s", stats.D(c.DirNetQueue), stats.D(c.TyphNetQueue)),
			fmt.Sprintf("%s/%s", stats.D(c.DirAgentWait), stats.D(c.TyphAgentWait)))
	}
	return t.Render(w)
}
