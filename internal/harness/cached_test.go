package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tempest-sim/tempest/internal/resultcache"
	"github.com/tempest-sim/tempest/internal/stats"
)

// memCache builds an in-process CacheParams for tests.
func memCache(t *testing.T) CacheParams {
	t.Helper()
	cp, err := NewCacheParams("", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// stripEngine drops the engine.* counters (dispatch hosting, window
// grants) from a freshly simulated result so it can be compared against
// a cache hit, which by design carries simulated-event counters only.
func stripEngine(rr RunResult) RunResult {
	ctr := stats.NewCounters()
	for _, name := range rr.Res.Counters.Names() {
		if !strings.HasPrefix(name, "engine.") {
			ctr.Add(name, rr.Res.Counters.Get(name))
		}
	}
	rr.Res.Counters = ctr
	return rr
}

func TestRunCachedHitSkipsSimulation(t *testing.T) {
	cp := memCache(t)
	cfg := MachineConfig(ScaleReduced, 4<<10)
	run := func() RunResult {
		app, err := MakeApp("ocean", ScaleReduced, SetSmall)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RunCached(cp, cfg, SysStache, app)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	fresh := run()
	if s := cp.Cache.Stats(); s.Misses != 1 || s.Stores != 1 || s.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 1 miss, 1 store", s)
	}
	hit := run()
	if s := cp.Cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("warm stats = %+v, want 1 hit over 1 miss", s)
	}
	if !reflect.DeepEqual(stripEngine(fresh), hit) {
		t.Errorf("cache hit diverges from the simulation it memoizes:\nfresh %+v\nhit   %+v", stripEngine(fresh), hit)
	}
}

// TestWarmCacheServesAcrossShardCounts is the key's shard-invariance
// contract: a result recorded at shards=1 must serve a shards=2 run of
// the same machine, and match what that run would have simulated.
func TestWarmCacheServesAcrossShardCounts(t *testing.T) {
	cp := memCache(t)
	cfgFor := func(shards int) func() RunResult {
		return func() RunResult {
			cfg := MachineConfig(ScaleReduced, 4<<10)
			cfg.Shards = shards
			app, err := MakeApp("ocean", ScaleReduced, SetSmall)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := RunCached(cp, cfg, SysStache, app)
			if err != nil {
				t.Fatal(err)
			}
			return rr
		}
	}
	cfgFor(1)() // warm at shards=1
	served := cfgFor(2)()
	if s := cp.Cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want the shards=2 run to be a pure hit", s)
	}
	// The served result must equal an actual shards=2 simulation
	// (modulo engine.* counters, which describe the host, not the run).
	app, err := MakeApp("ocean", ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineConfig(ScaleReduced, 4<<10)
	cfg.Shards = 2
	fresh, err := Run(cfg, SysStache, app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripEngine(fresh), served) {
		t.Errorf("shards=1 entry diverges from shards=2 simulation:\nfresh %+v\nserved %+v", stripEngine(fresh), served)
	}
}

// findEntryFile locates the single on-disk entry of a one-run cache.
func findEntryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.entry"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("entry files in %s: %v (err %v), want exactly 1", dir, matches, err)
	}
	return matches[0]
}

func TestCacheVerifyPassAndMismatch(t *testing.T) {
	dir := t.TempDir()
	warm := func(verify float64) (CacheParams, RunResult, error) {
		cp, err := NewCacheParams(dir, false, verify)
		if err != nil {
			t.Fatal(err)
		}
		app, err := MakeApp("ocean", ScaleReduced, SetSmall)
		if err != nil {
			t.Fatal(err)
		}
		rr, rerr := RunCached(cp, MachineConfig(ScaleReduced, 4<<10), SysStache, app)
		return cp, rr, rerr
	}
	if _, _, err := warm(0); err != nil {
		t.Fatal(err)
	}

	// A clean warm run at verify fraction 1.0 re-simulates the hit,
	// matches, and counts it.
	cp, _, err := warm(1.0)
	if err != nil {
		t.Fatalf("verified warm run: %v", err)
	}
	if s := cp.Cache.Stats(); s.Hits != 1 || s.Verified != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 verified", s)
	}

	// Doctor the stored entry — valid format, wrong result — and the
	// verify pass must fail the run loudly.
	path := findEntryFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e, err := resultcache.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	e.Cycles++
	if err := os.WriteFile(path, e.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = warm(1.0)
	if err == nil || !strings.Contains(err.Error(), "does not match re-simulation") {
		t.Fatalf("doctored entry passed verification: %v", err)
	}
	if !strings.Contains(err.Error(), "cycles diverge") {
		t.Errorf("mismatch error %q does not name the divergence", err)
	}
}

// TestCacheDamagedEntrySimulates is the harness-level fallback: a
// damaged on-disk entry must not fail the run — it re-simulates, counts
// cache.corrupt, and overwrites the damage.
func TestCacheDamagedEntrySimulates(t *testing.T) {
	dir := t.TempDir()
	cp1, err := NewCacheParams(dir, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	app, err := MakeApp("ocean", ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached(cp1, MachineConfig(ScaleReduced, 4<<10), SysStache, app)
	if err != nil {
		t.Fatal(err)
	}
	path := findEntryFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := NewCacheParams(dir, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	app2, err := MakeApp("ocean", ScaleReduced, SetSmall)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached(cp2, MachineConfig(ScaleReduced, 4<<10), SysStache, app2)
	if err != nil {
		t.Fatalf("damaged entry failed the run: %v", err)
	}
	if s := cp2.Cache.Stats(); s.Corrupt != 1 || s.Stores != 1 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt fallback re-stored", s)
	}
	if !reflect.DeepEqual(stripEngine(want), stripEngine(got)) {
		t.Error("fallback simulation diverges from the original run")
	}
	// The overwritten entry is whole again.
	if fixed, err := os.ReadFile(path); err != nil || !bytes.Equal(fixed, data) {
		t.Errorf("damaged entry not repaired: err %v, equal %v", err, bytes.Equal(fixed, data))
	}
}

func TestNewCacheParamsValidation(t *testing.T) {
	if _, err := NewCacheParams("", true, 0); err != nil {
		t.Errorf("-no-cache alone rejected: %v", err)
	}
	if cp, _ := NewCacheParams("", true, 0); cp.Cache != nil {
		t.Error("-no-cache built a cache")
	}
	for name, call := range map[string]func() (CacheParams, error){
		"no-cache+dir":     func() (CacheParams, error) { return NewCacheParams("/tmp/x", true, 0) },
		"no-cache+verify":  func() (CacheParams, error) { return NewCacheParams("", true, 0.5) },
		"verify-negative":  func() (CacheParams, error) { return NewCacheParams("", false, -0.1) },
		"verify-above-one": func() (CacheParams, error) { return NewCacheParams("", false, 1.5) },
	} {
		if _, err := call(); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

// TestFig3WitnessMatchesSimulation pins the zero-eviction witness: the
// sweep with the cache (and its witness aliases) must render exactly
// the cells a dedup-free sweep simulates point by point.
func TestFig3WitnessMatchesSimulation(t *testing.T) {
	// appbt/small is eviction-free from 16K up, so the 64K points are
	// served by the 16K witness rather than simulated.
	base := Fig3Options{
		Scale:   ScaleReduced,
		Apps:    []string{"appbt"},
		Configs: []Fig3Config{{SetSmall, 4}, {SetSmall, 16}, {SetSmall, 64}},
	}
	cached := base
	cached.Cache = memCache(t)
	nodedup := base
	nodedup.NoDedup = true
	a, err := Figure3(cached)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure3(nodedup)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("cached sweep != simulated sweep:\n%+v\n%+v", a, b)
	}
	// The 16K run is clean on both systems; each 64K point must be a
	// witness-alias hit, not a simulation.
	if s := cached.Cache.Cache.Stats(); s.Hits != 2 {
		t.Errorf("want 2 witness hits (64K on both systems), got stats %+v", s)
	}
}
