package harness

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
)

// testPoints is a representative spread of the point space: every app
// selection mode, every variant knob, every execution directive.
func testPoints() []Point {
	ecfg := em3d.Tiny()
	ocfg := ocean.Tiny()
	cfg := machine.DefaultConfig()
	cfg.Nodes = 4
	cfg.Shards = 2
	cfg.FixedWindow = true
	cfg.LinkBytesPerCycle = 4
	cfg.OccupancyCycles = 20
	return []Point{
		{Cfg: cfg, System: SysDirNNB, Bench: "ocean", Scale: ScaleReduced, Set: SetSmall},
		{Cfg: cfg, System: SysStache, Bench: "appbt", Scale: ScalePaper, Set: SetLarge,
			Group: "fig3/appbt/typhoon-stache", WitnessKB: []int{16, 64}},
		{Cfg: cfg, System: SysStache, EM3D: &ecfg, CheckIn: true},
		{Cfg: cfg, System: SysStache, EM3D: &ecfg, StacheMaxPages: 4},
		{Cfg: cfg, System: SysStache, Bench: "mp3d", Scale: ScaleReduced, Set: SetSmall, StacheMigratory: true},
		{Cfg: cfg, System: SysUpdate, EM3D: &ecfg},
		{Cfg: cfg, System: SysBlizzard, Bench: "em3d", Scale: ScaleReduced, Set: SetSmall, NoCache: true},
		{Cfg: cfg, System: SysDirNNB, Ocean: &ocfg, Observed: true, NoCache: true, Bench: "ocean"},
	}
}

func TestPointEncodeDecodeRoundTrip(t *testing.T) {
	for i, pt := range testPoints() {
		enc := pt.Encode()
		got, err := DecodePoint(enc)
		if err != nil {
			t.Fatalf("point %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, pt) {
			t.Errorf("point %d: round trip changed the point:\n%+v\n%+v", i, pt, got)
		}
		if re := got.Encode(); !bytes.Equal(re, enc) {
			t.Errorf("point %d: re-encode is not byte-identical", i)
		}
	}
}

func TestDecodePointRejectsCorruption(t *testing.T) {
	enc := testPoints()[1].Encode()
	cases := map[string][]byte{
		"empty":      {},
		"no newline": enc[:len(enc)-1],
		"truncated":  enc[:len(enc)/2],
		"bad magic":  []byte("tempest-nonsense v1\nsum 00\n"),
	}
	// A genuine version skew arrives checksum-valid: the sender summed
	// its own (newer) encoding.
	body := enc[:bytes.LastIndex(enc[:len(enc)-1], []byte("\n"))+1]
	skew := bytes.Replace(body, []byte("tempest-point v1"), []byte("tempest-point v9"), 1)
	sum := sha256.Sum256(skew)
	cases["version skew"] = append(skew, []byte("sum "+hex.EncodeToString(sum[:])+"\n")...)
	flipped := append([]byte(nil), enc...)
	flipped[len("tempest-point v1\ncfg ")] ^= 0x01
	cases["flipped byte"] = flipped
	for name, data := range cases {
		if _, err := DecodePoint(data); err == nil {
			t.Errorf("%s: corrupt point decoded without error", name)
		} else if !strings.Contains(err.Error(), "harness: decode point") {
			t.Errorf("%s: error is not structured: %v", name, err)
		}
	}
	// Version skew must be named as such, so a mixed-version fleet fails
	// with a diagnosis rather than a generic parse error.
	if _, err := DecodePoint(cases["version skew"]); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Errorf("version skew not diagnosed: %v", err)
	}
}

func TestPointValidate(t *testing.T) {
	ecfg := em3d.Tiny()
	ocfg := ocean.Tiny()
	cfg := machine.DefaultConfig()
	bad := []Point{
		{Cfg: cfg, System: "nonsense", Bench: "ocean"},
		{Cfg: cfg, System: SysStache, EM3D: &ecfg, Ocean: &ocfg},
		{Cfg: cfg, System: SysUpdate, Bench: "em3d"},
		{Cfg: cfg, System: SysDirNNB, Bench: "ocean", StacheMigratory: true},
		{Cfg: cfg, System: SysStache, Bench: "em3d", CheckIn: true},
		{Cfg: cfg, System: SysStache, EM3D: &ecfg, StacheMaxPages: -1},
	}
	for i, pt := range bad {
		if err := pt.Validate(); err == nil {
			t.Errorf("bad point %d validated: %+v", i, pt)
		}
	}
	for i, pt := range testPoints() {
		if err := pt.Validate(); err != nil {
			t.Errorf("good point %d rejected: %v", i, err)
		}
	}
}

// TestPointKeyVariantCompat pins the key-compatibility invariant the
// cache depends on: a point with zero-valued variant knobs keys
// identically to the plain run (the key builder drops zero fields), and
// an explicit workload config keys identically to the equivalent
// bench/scale/set naming — so entries recorded by any sweep serve every
// other, exactly as before the executor refactor.
func TestPointKeyVariantCompat(t *testing.T) {
	cfg := MachineConfig(ScaleReduced, 0)
	plain := Point{Cfg: cfg, System: SysStache, Bench: "em3d", Scale: ScaleReduced, Set: SetSmall}
	ecfg := EM3DConfig(ScaleReduced, SetSmall)
	explicit := Point{Cfg: cfg, System: SysStache, EM3D: &ecfg}
	budget0 := plain
	budget0.StacheMaxPages = 0
	const code = "testcode"
	k1, err := PointKey(code, plain)
	if err != nil {
		t.Fatal(err)
	}
	for name, pt := range map[string]Point{"explicit-config": explicit, "budget-0": budget0} {
		k2, err := PointKey(code, pt)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Errorf("%s point keys differently from the plain run: %s vs %s", name, k1, k2)
		}
	}
	mig := plain
	mig.StacheMigratory = true
	if k3, _ := PointKey(code, mig); k3 == k1 {
		t.Error("migratory point keys identically to the plain run")
	}
	budget := plain
	budget.StacheMaxPages = 4
	if k4, _ := PointKey(code, budget); k4 == k1 {
		t.Error("budget point keys identically to the plain run")
	}
}

// TestRunAllAggregatesSlowSecondFailure is the satellite-1 contract: a
// second, slower failure with a distinct error is joined into the
// returned error instead of being silently dropped.
func TestRunAllAggregatesSlowSecondFailure(t *testing.T) {
	first := errors.New("first failure")
	second := errors.New("second slow failure")
	started := make(chan struct{})
	jobs := []Job[int]{
		func(_ context.Context) (int, error) {
			<-started // fail only once the slow job is in flight
			return 0, first
		},
		func(ctx context.Context) (int, error) {
			close(started)
			<-ctx.Done() // observe the fail-fast cancellation...
			time.Sleep(20 * time.Millisecond)
			return 0, second // ...and still fail late with a distinct error
		},
	}
	_, err := RunAll(jobs, 2)
	if !errors.Is(err, first) {
		t.Fatalf("first failure lost: %v", err)
	}
	if !errors.Is(err, second) {
		t.Fatalf("slow second failure lost: %v", err)
	}
	if !strings.Contains(err.Error(), "job 0") || !strings.Contains(err.Error(), "job 1") {
		t.Errorf("joined error should name both jobs: %v", err)
	}
}

// TestRunAllPointTimeout is the satellite-2 contract: a hung job fails
// the sweep with a structured error naming the point, and the rest of
// the sweep is not wedged.
func TestRunAllPointTimeout(t *testing.T) {
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { <-hung; return 0, nil },
	}
	_, err := RunAllOpts(jobs, RunOptions{
		Workers:      2,
		PointTimeout: 20 * time.Millisecond,
		Label:        func(i int) string { return fmt.Sprintf("point-%d", i) },
	})
	var pte *PointTimeoutError
	if !errors.As(err, &pte) {
		t.Fatalf("err = %v, want *PointTimeoutError", err)
	}
	if pte.Point != "point-1" {
		t.Errorf("timeout names %q, want point-1", pte.Point)
	}
	if !strings.Contains(err.Error(), "point-1") || !strings.Contains(err.Error(), "timeout") {
		t.Errorf("error should name the point and the timeout: %v", err)
	}
}

// TestLocalExecutorPointTimeoutNamesPoint drives the timeout through a
// real executor batch: the structured error carries the sweep point's
// own label.
func TestLocalExecutorPointTimeoutNamesPoint(t *testing.T) {
	ecfg := em3d.Tiny()
	cfg := machine.DefaultConfig()
	cfg.Nodes = 4
	pt := Point{Cfg: cfg, System: SysStache, EM3D: &ecfg, NoCache: true}
	_, err := LocalExecutor{Workers: 1}.Submit(context.Background(), Batch{
		Points:       []Point{pt},
		PointTimeout: time.Nanosecond,
	})
	var pte *PointTimeoutError
	if !errors.As(err, &pte) {
		t.Fatalf("err = %v, want *PointTimeoutError", err)
	}
	if pte.Point != pt.Label() {
		t.Errorf("timeout names %q, want %q", pte.Point, pt.Label())
	}
}

// TestLocalExecutorMatchesDirectRuns pins the refactor's core claim:
// submitting points through the executor returns exactly what the
// pre-executor harness produced for the same configurations.
func TestLocalExecutorMatchesDirectRuns(t *testing.T) {
	cfg := MachineConfig(ScaleReduced, 4<<10)
	pts := []Point{
		{Cfg: cfg, System: SysDirNNB, Bench: "ocean", Scale: ScaleReduced, Set: SetSmall},
		{Cfg: cfg, System: SysStache, Bench: "ocean", Scale: ScaleReduced, Set: SetSmall},
	}
	got, err := LocalExecutor{Workers: 2}.Submit(context.Background(), Batch{Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		app, err := MakeApp(pt.Bench, pt.Scale, pt.Set)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(pt.Cfg, pt.System, app)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i].RunResult, want) {
			t.Errorf("point %d: executor result differs from direct Run", i)
		}
	}
}
