package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/resultcache"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// Point is one serializable sweep point: the machine configuration, the
// target system, the application instance, and any protocol-variant
// knobs, plus execution directives for the executor running it. A Point
// carries everything needed to reproduce the simulation in another
// process or on another host — no closures — which is what lets the
// fleet coordinator lease sweep points to remote workers and verify
// the results against locally computed cache keys.
type Point struct {
	// Cfg is the machine configuration, simulator-mechanics knobs
	// included (those are excluded from the cache key; results are
	// bit-identical for every value).
	Cfg machine.Config
	// System is the simulated target.
	System System

	// App selection: Bench+Scale+Set name a standard benchmark instance
	// (MakeApp); EM3D or Ocean overrides it with an explicit workload
	// config (at most one may be set). SysUpdate requires EM3D.
	Bench string
	Scale Scale
	Set   DataSet
	EM3D  *em3d.Config
	Ocean *ocean.Config

	// Stache protocol variants (SysStache only). CheckIn runs the em3d
	// check-in app (requires EM3D); StacheMaxPages bounds the per-node
	// stache page budget; StacheMigratory enables the migratory-sharing
	// extension. Each is a cache-key field; zero values key identically
	// to a plain run (the KeyBuilder drops them), which is exactly the
	// historical sharing: budget=0 is the plain Stache run.
	CheckIn         bool
	StacheMaxPages  int
	StacheMigratory bool

	// Execution directives — never part of the result key.

	// NoCache bypasses the result cache for this point: no lookup, no
	// store, no witness aliases (the -no-dedup path).
	NoCache bool
	// Observed runs the point through RunObserved (differential matrix)
	// instead of the plain funnel. Observed points are local-only: their
	// results carry live machine state digests and are not cacheable, so
	// the fleet rejects them.
	Observed bool
	// Group names the sequential unit this point belongs to: points
	// sharing a group run in submission order on one worker (the Figure
	// 3 per-(benchmark, system) ascending cache-size order that lets
	// witness aliases serve later points). Empty = independent point.
	Group string
	// WitnessKB lists the larger cache sizes (KB) this point's result
	// provably also holds at if the run evicts nothing; the funnel
	// publishes aliases under their keys (origin "witness:<kb>K").
	WitnessKB []int
}

// Label names the point in errors and logs.
func (pt Point) Label() string {
	return fmt.Sprintf("%s/%s/%dK", pt.appName(), pt.System, pt.Cfg.CacheSize>>10)
}

// appName resolves the application name without building the app.
func (pt Point) appName() string {
	switch {
	case pt.System == SysUpdate:
		return "em3d-update"
	case pt.CheckIn:
		return "em3d-checkin"
	case pt.EM3D != nil:
		return "em3d"
	case pt.Ocean != nil:
		return "ocean"
	}
	return pt.Bench
}

// stacheVariant reports whether the point needs a hand-built Stache
// protocol instead of the standard Run path.
func (pt Point) stacheVariant() bool {
	return pt.CheckIn || pt.StacheMaxPages > 0 || pt.StacheMigratory
}

// Validate rejects structurally impossible points before any machine is
// built, so a fleet coordinator can refuse them at submit time.
func (pt Point) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("harness: point %s: %s", pt.Label(), fmt.Sprintf(format, args...))
	}
	switch pt.System {
	case SysDirNNB, SysStache, SysUpdate, SysBlizzard:
	default:
		return bad("unknown system %q", pt.System)
	}
	if pt.EM3D != nil && pt.Ocean != nil {
		return bad("both EM3D and Ocean workload overrides set")
	}
	if pt.System == SysUpdate && pt.EM3D == nil {
		return bad("%s needs an explicit EM3D config", SysUpdate)
	}
	if pt.stacheVariant() && pt.System != SysStache {
		return bad("stache variant knobs need %s, not %s", SysStache, pt.System)
	}
	if pt.CheckIn && pt.EM3D == nil {
		return bad("check-in app needs an explicit EM3D config")
	}
	if pt.StacheMaxPages < 0 {
		return bad("negative stache page budget %d", pt.StacheMaxPages)
	}
	if pt.Observed && pt.stacheVariant() {
		return bad("observed runs do not support stache variants")
	}
	return nil
}

// makeApp builds the application instance for the standard run paths.
func (pt Point) makeApp() (apps.App, error) {
	switch {
	case pt.EM3D != nil:
		return em3d.New(*pt.EM3D), nil
	case pt.Ocean != nil:
		return ocean.New(*pt.Ocean), nil
	}
	return MakeApp(pt.Bench, pt.Scale, pt.Set)
}

// keyParts resolves the cache-key ingredients: the app name, the app's
// workload fields, and the variant extras. Zero-valued extras are
// dropped by the key builder, so a plain point keys identically whether
// the variant fields are listed or not — byte-for-byte the same keys
// every pre-executor sweep computed.
func (pt Point) keyParts() (appName string, appFields, extra []resultcache.Field, err error) {
	switch {
	case pt.System == SysUpdate:
		return "em3d-update", em3dKey(*pt.EM3D), nil, nil
	case pt.CheckIn:
		appName = "em3d-checkin"
		appFields = em3dKey(*pt.EM3D)
	default:
		app, err := pt.makeApp()
		if err != nil {
			return "", nil, nil, err
		}
		appName = app.Name()
		if appFields, err = appKeyFields(app); err != nil {
			return "", nil, nil, err
		}
	}
	extra = []resultcache.Field{
		resultcache.FBool("app.checkin", pt.CheckIn),
		resultcache.FInt("stache.max_pages", int64(pt.StacheMaxPages)),
		resultcache.FBool("stache.migratory", pt.StacheMigratory),
	}
	return appName, appFields, extra, nil
}

// PointKey computes the point's content address under a code digest —
// the same key the cachedRun funnel uses, exported so a fleet
// coordinator can verify a remote result's entry against an
// independently computed key.
func PointKey(code string, pt Point) (resultcache.Key, error) {
	if err := pt.Validate(); err != nil {
		return resultcache.Key{}, err
	}
	name, appFields, extra, err := pt.keyParts()
	if err != nil {
		return resultcache.Key{}, err
	}
	return runKey(code, pt.Cfg, pt.System, name, appFields, extra), nil
}

// CodeID resolves the code digest used for fleet handshakes and point
// keys: the repository source digest, or the in-memory sentinel when
// the sources are unavailable (every process on one host then agrees on
// the sentinel; persistent caches still refuse it in codeDigestFor).
func CodeID() string {
	if code, err := resultcache.CodeDigest(); err == nil {
		return code
	}
	return "in-memory"
}

// Simulate runs the point and verifies the result — the one execution
// path every executor backend funnels into.
func (pt Point) Simulate() (RunResult, error) {
	if err := pt.Validate(); err != nil {
		return RunResult{}, err
	}
	if pt.System == SysUpdate {
		return RunEM3DUpdate(pt.Cfg, *pt.EM3D)
	}
	if pt.stacheVariant() {
		return pt.runStacheVariant()
	}
	app, err := pt.makeApp()
	if err != nil {
		return RunResult{}, err
	}
	return Run(pt.Cfg, pt.System, app)
}

// runStacheVariant is Run for points that need a hand-built Stache
// protocol (page budget, migratory sharing, the check-in app). The
// post-run invariant check runs here exactly as in the standard path.
func (pt Point) runStacheVariant() (RunResult, error) {
	m := machine.New(pt.Cfg)
	var sopts []stache.Option
	if pt.StacheMaxPages > 0 {
		sopts = append(sopts, stache.WithMaxPages(pt.StacheMaxPages))
	}
	if pt.StacheMigratory {
		sopts = append(sopts, stache.WithMigratory())
	}
	st := stache.New(sopts...)
	typhoon.New(m, st)
	var app apps.App
	if pt.CheckIn {
		app = em3d.NewCheckInApp(*pt.EM3D, st)
	} else {
		var err error
		if app, err = pt.makeApp(); err != nil {
			return RunResult{}, err
		}
	}
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: %s: %w", pt.Label(), err)
	}
	if err := app.Verify(m); err != nil {
		return RunResult{}, fmt.Errorf("harness: %s: %w", pt.Label(), err)
	}
	if err := st.CheckInvariants(); err != nil {
		return RunResult{}, fmt.Errorf("harness: %s: %w", pt.Label(), err)
	}
	return RunResult{System: SysStache, App: app.Name(), Res: res}, nil
}

// runObserved executes an Observed point through the differential
// harness.
func (pt Point) runObserved() (DiffObservation, error) {
	var w DiffWorkload
	if pt.EM3D != nil {
		w.EM3D = *pt.EM3D
	}
	if pt.Ocean != nil {
		w.Ocean = *pt.Ocean
	}
	return RunObserved(pt.Cfg, pt.System, pt.Bench, w, DiffOptions{})
}

// pointMagic is the wire-format header; bumping the version makes every
// older coordinator/worker pairing reject the payload instead of
// misreading it.
const pointMagic = "tempest-point v1"

// Encode renders the point's canonical byte form: header, fixed-order
// lines (optional ones omitted when zero), and a trailing sha256 line —
// the same checksummed shape as a result-cache entry, so a corrupted
// lease payload is caught before any simulation runs.
func (pt Point) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", pointMagic)
	fmt.Fprintf(&b, "cfg %d %d %d %d %d %d %d %d %d %d %d %d %d %d %s %d %s\n",
		pt.Cfg.Nodes, pt.Cfg.CacheSize, pt.Cfg.CacheWays, pt.Cfg.BlockSize, pt.Cfg.TLBEntries,
		pt.Cfg.LocalMissCycles, pt.Cfg.TLBMissCycles, pt.Cfg.NetLatency, pt.Cfg.BarrierLatency,
		pt.Cfg.LinkBytesPerCycle, pt.Cfg.OccupancyCycles, pt.Cfg.MemPagesPerNode, pt.Cfg.Quantum,
		pt.Cfg.Seed, strconv.FormatBool(pt.Cfg.GoroutineDispatch), pt.Cfg.Shards,
		strconv.FormatBool(pt.Cfg.FixedWindow))
	fmt.Fprintf(&b, "system %s\n", pt.System)
	if pt.Bench != "" {
		fmt.Fprintf(&b, "bench %s\n", pt.Bench)
	}
	if pt.Scale != "" {
		fmt.Fprintf(&b, "scale %s\n", pt.Scale)
	}
	if pt.Set != "" {
		fmt.Fprintf(&b, "set %s\n", pt.Set)
	}
	if c := pt.EM3D; c != nil {
		fmt.Fprintf(&b, "em3d %d %d %d %d %d %d\n",
			c.TotalNodes, c.Degree, c.PctRemote, c.RemoteReuse, c.Iters, c.Seed)
	}
	if c := pt.Ocean; c != nil {
		fmt.Fprintf(&b, "ocean %d %d %s\n", c.N, c.Iters, strconv.FormatBool(c.OwnerPlaced))
	}
	if pt.CheckIn {
		fmt.Fprintf(&b, "checkin true\n")
	}
	if pt.StacheMaxPages != 0 {
		fmt.Fprintf(&b, "stache.max_pages %d\n", pt.StacheMaxPages)
	}
	if pt.StacheMigratory {
		fmt.Fprintf(&b, "stache.migratory true\n")
	}
	if pt.NoCache {
		fmt.Fprintf(&b, "nocache true\n")
	}
	if pt.Observed {
		fmt.Fprintf(&b, "observed true\n")
	}
	if pt.Group != "" {
		fmt.Fprintf(&b, "group %s\n", pt.Group)
	}
	if len(pt.WitnessKB) > 0 {
		fmt.Fprintf(&b, "witness")
		for _, kb := range pt.WitnessKB {
			fmt.Fprintf(&b, " %d", kb)
		}
		fmt.Fprintf(&b, "\n")
	}
	sum := sha256.Sum256(b.Bytes())
	fmt.Fprintf(&b, "sum %s\n", hex.EncodeToString(sum[:]))
	return b.Bytes()
}

// pointDecoder walks the canonical line sequence.
type pointDecoder struct {
	lines []string
	pos   int
}

func (d *pointDecoder) fail(msg string) error {
	return fmt.Errorf("harness: decode point: %s", msg)
}

// peek returns the current line without consuming it.
func (d *pointDecoder) peek() (string, bool) {
	if d.pos >= len(d.lines) {
		return "", false
	}
	return d.lines[d.pos], true
}

// optional consumes "<name> <value>" if the current line carries name.
func (d *pointDecoder) optional(name string) (string, bool) {
	l, ok := d.peek()
	if !ok {
		return "", false
	}
	v, ok := strings.CutPrefix(l, name+" ")
	if !ok || v == "" {
		return "", false
	}
	d.pos++
	return v, true
}

// canonInt parses a canonical base-10 int64 (no leading zeros, no "+",
// no "-0").
func canonInt(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil || strconv.FormatInt(v, 10) != tok {
		return 0, fmt.Errorf("%q is not a canonical integer", tok)
	}
	return v, nil
}

// canonUint is canonInt for uint64.
func canonUint(tok string) (uint64, error) {
	v, err := strconv.ParseUint(tok, 10, 64)
	if err != nil || strconv.FormatUint(v, 10) != tok {
		return 0, fmt.Errorf("%q is not a canonical unsigned integer", tok)
	}
	return v, nil
}

// canonBool parses "true" or "false".
func canonBool(tok string) (bool, error) {
	switch tok {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("%q is not a boolean", tok)
}

// DecodePoint parses a canonical point. Decode is total: every failure
// — bad magic, checksum mismatch, malformed or out-of-order fields,
// trailing bytes — is a structured error, never a panic, and a valid
// payload re-encodes byte-identically.
func DecodePoint(data []byte) (Point, error) {
	var pt Point
	d := &pointDecoder{}
	text := string(data)
	if len(text) == 0 || !strings.HasSuffix(text, "\n") {
		return pt, d.fail("truncated point: missing trailing newline")
	}
	body := text[:len(text)-1]
	cut := strings.LastIndex(body, "\n")
	last := body[cut+1:]
	sumTok, ok := strings.CutPrefix(last, "sum ")
	if !ok {
		return pt, d.fail("truncated point: missing checksum line")
	}
	payload := data[:cut+1]
	want := sha256.Sum256(payload)
	if sumTok != hex.EncodeToString(want[:]) {
		return pt, d.fail("checksum mismatch: point bytes corrupted")
	}
	d.lines = strings.Split(string(payload), "\n")
	d.lines = d.lines[:len(d.lines)-1]
	if len(d.lines) == 0 || d.lines[0] != pointMagic {
		first := ""
		if len(d.lines) > 0 {
			first = d.lines[0]
		}
		if strings.HasPrefix(first, "tempest-point ") {
			return pt, d.fail(fmt.Sprintf("version skew: point format %q, want %q", first, pointMagic))
		}
		return pt, d.fail("not a sweep point (bad magic line)")
	}
	d.pos = 1

	cfgTok, ok := d.optional("cfg")
	if !ok {
		return pt, d.fail("missing cfg line")
	}
	parts := strings.Split(cfgTok, " ")
	if len(parts) != 17 {
		return pt, d.fail(fmt.Sprintf("cfg line has %d fields, want 17", len(parts)))
	}
	ints := make([]int64, 13)
	for i := range ints {
		v, err := canonInt(parts[i])
		if err != nil {
			return pt, d.fail("cfg: " + err.Error())
		}
		ints[i] = v
	}
	pt.Cfg = machine.Config{
		Nodes: int(ints[0]), CacheSize: int(ints[1]), CacheWays: int(ints[2]),
		BlockSize: int(ints[3]), TLBEntries: int(ints[4]),
		LocalMissCycles: sim.Time(ints[5]), TLBMissCycles: sim.Time(ints[6]),
		NetLatency: sim.Time(ints[7]), BarrierLatency: sim.Time(ints[8]),
		LinkBytesPerCycle: int(ints[9]), OccupancyCycles: sim.Time(ints[10]),
		MemPagesPerNode: int(ints[11]), Quantum: sim.Time(ints[12]),
	}
	seed, err := canonUint(parts[13])
	if err != nil {
		return pt, d.fail("cfg seed: " + err.Error())
	}
	pt.Cfg.Seed = seed
	if pt.Cfg.GoroutineDispatch, err = canonBool(parts[14]); err != nil {
		return pt, d.fail("cfg goroutine-dispatch: " + err.Error())
	}
	shards, err := canonInt(parts[15])
	if err != nil {
		return pt, d.fail("cfg shards: " + err.Error())
	}
	pt.Cfg.Shards = int(shards)
	if pt.Cfg.FixedWindow, err = canonBool(parts[16]); err != nil {
		return pt, d.fail("cfg fixed-window: " + err.Error())
	}

	sysTok, ok := d.optional("system")
	if !ok {
		return pt, d.fail("missing system line")
	}
	pt.System = System(sysTok)
	if v, ok := d.optional("bench"); ok {
		pt.Bench = v
	}
	if v, ok := d.optional("scale"); ok {
		pt.Scale = Scale(v)
	}
	if v, ok := d.optional("set"); ok {
		pt.Set = DataSet(v)
	}
	if v, ok := d.optional("em3d"); ok {
		parts := strings.Split(v, " ")
		if len(parts) != 6 {
			return pt, d.fail(fmt.Sprintf("em3d line has %d fields, want 6", len(parts)))
		}
		var c em3d.Config
		vals := make([]int64, 5)
		for i := range vals {
			if vals[i], err = canonInt(parts[i]); err != nil {
				return pt, d.fail("em3d: " + err.Error())
			}
		}
		c.TotalNodes, c.Degree, c.PctRemote = int(vals[0]), int(vals[1]), int(vals[2])
		c.RemoteReuse, c.Iters = int(vals[3]), int(vals[4])
		if c.Seed, err = canonUint(parts[5]); err != nil {
			return pt, d.fail("em3d seed: " + err.Error())
		}
		pt.EM3D = &c
	}
	if v, ok := d.optional("ocean"); ok {
		parts := strings.Split(v, " ")
		if len(parts) != 3 {
			return pt, d.fail(fmt.Sprintf("ocean line has %d fields, want 3", len(parts)))
		}
		var c ocean.Config
		n, err := canonInt(parts[0])
		if err != nil {
			return pt, d.fail("ocean: " + err.Error())
		}
		iters, err := canonInt(parts[1])
		if err != nil {
			return pt, d.fail("ocean: " + err.Error())
		}
		c.N, c.Iters = int(n), int(iters)
		if c.OwnerPlaced, err = canonBool(parts[2]); err != nil {
			return pt, d.fail("ocean owner-placed: " + err.Error())
		}
		pt.Ocean = &c
	}
	boolLine := func(name string, dst *bool) error {
		v, ok := d.optional(name)
		if !ok {
			return nil
		}
		if v != "true" {
			return d.fail(fmt.Sprintf("%s line must be %q, got %q (false is omitted)", name, "true", v))
		}
		*dst = true
		return nil
	}
	if err := boolLine("checkin", &pt.CheckIn); err != nil {
		return pt, err
	}
	if v, ok := d.optional("stache.max_pages"); ok {
		n, err := canonInt(v)
		if err != nil || n == 0 {
			return pt, d.fail("stache.max_pages: non-canonical value")
		}
		pt.StacheMaxPages = int(n)
	}
	if err := boolLine("stache.migratory", &pt.StacheMigratory); err != nil {
		return pt, err
	}
	if err := boolLine("nocache", &pt.NoCache); err != nil {
		return pt, err
	}
	if err := boolLine("observed", &pt.Observed); err != nil {
		return pt, err
	}
	if v, ok := d.optional("group"); ok {
		pt.Group = v
	}
	if v, ok := d.optional("witness"); ok {
		for _, tok := range strings.Split(v, " ") {
			kb, err := canonInt(tok)
			if err != nil || kb <= 0 {
				return pt, d.fail("witness: non-canonical cache size")
			}
			pt.WitnessKB = append(pt.WitnessKB, int(kb))
		}
	}
	if l, ok := d.peek(); ok {
		return pt, d.fail(fmt.Sprintf("unexpected line %q", l))
	}
	return pt, nil
}
