// Package harness defines the paper's experiments: one entry per table
// and figure of the evaluation (§6), plus the ablations DESIGN.md calls
// out. Each experiment builds machines, runs benchmarks on both target
// systems, verifies results, and renders the same rows or series the
// paper reports.
package harness

import (
	"errors"
	"fmt"
	"time"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/appbt"
	"github.com/tempest-sim/tempest/internal/apps/barnes"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/mp3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/blizzard"
	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// System selects the simulated target.
type System string

// Target systems.
const (
	SysDirNNB   System = "dirnnb"
	SysStache   System = "typhoon-stache"
	SysUpdate   System = "typhoon-update" // EM3D only
	SysBlizzard System = "blizzard"       // software Tempest running Stache
)

// RunResult is one benchmark execution.
type RunResult struct {
	System System
	App    string
	Res    machine.Result
}

// Run executes app on the given system and verifies the result. When
// system is SysUpdate the app must be an *em3d.UpdateApp placeholder
// built by the caller via BuildUpdate. All systems — DirNNB included,
// now that the directory is a per-node protocol agent — honour
// cfg.Shards as given.
func Run(cfg machine.Config, system System, app apps.App) (result RunResult, err error) {
	// DirNNB reports user-reachable failures (a page fault outside the
	// shared address space, a home node out of frames) as *dirnnb.Error
	// panics, and the network reports its own (oversized payload,
	// wrapped-negative SendAfter delay from bad config math) as
	// *network.Error. Setup-time ones unwind to here; run-time ones are
	// wrapped into m.Run's error by the engine's context recovery.
	// Surface both as errors so a sweep reports the failing point
	// instead of crashing.
	defer func() {
		if r := recover(); r != nil {
			var derr *dirnnb.Error
			var nerr *network.Error
			if e, ok := r.(error); ok && (errors.As(e, &derr) || errors.As(e, &nerr)) {
				err = fmt.Errorf("harness: %s on %s: %w", app.Name(), system, e)
				return
			}
			panic(r)
		}
	}()
	m := machine.New(cfg)
	var st *stache.Protocol
	switch system {
	case SysDirNNB:
		dirnnb.New(m)
	case SysStache:
		st = stache.New()
		typhoon.New(m, st)
	case SysBlizzard:
		_, st = blizzard.NewStache(m, blizzard.Config{})
	default:
		return RunResult{}, fmt.Errorf("harness: unknown system %q (want dirnnb, typhoon-stache, or blizzard; the custom protocol runs via RunEM3DUpdate)", system)
	}
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: %s on %s: %w", app.Name(), system, err)
	}
	if st != nil {
		if err := st.CheckInvariants(); err != nil {
			return RunResult{}, fmt.Errorf("harness: %s on %s: %w", app.Name(), system, err)
		}
	}
	if err := app.Verify(m); err != nil {
		return RunResult{}, fmt.Errorf("harness: %s on %s: %w", app.Name(), system, err)
	}
	return RunResult{System: system, App: app.Name(), Res: res}, nil
}

// RunEM3DUpdate executes EM3D under the custom delayed-update protocol.
func RunEM3DUpdate(cfg machine.Config, ecfg em3d.Config) (RunResult, error) {
	m := machine.New(cfg)
	upd := em3d.NewUpdateProtocol()
	typhoon.New(m, upd)
	app := em3d.NewUpdateApp(ecfg, upd)
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: em3d-update: %w", err)
	}
	if err := app.Verify(m); err != nil {
		return RunResult{}, fmt.Errorf("harness: em3d-update: %w", err)
	}
	return RunResult{System: SysUpdate, App: app.Name(), Res: res}, nil
}

// Scale selects workload sizes.
type Scale string

// Workload scales. Paper scales use Table 3 sizes on 32 nodes; reduced
// scales preserve the working-set-versus-cache relationships at a size
// that runs in seconds on a laptop.
const (
	ScalePaper   Scale = "paper"
	ScaleReduced Scale = "reduced"
)

// DataSet selects the small or large column of Table 3.
type DataSet string

// Table 3 columns.
const (
	SetSmall DataSet = "small"
	SetLarge DataSet = "large"
)

// ParseScale validates a scale name (e.g. a -scale flag value). Unknown
// values are an error, never a silent fallback to the reduced sweep.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScalePaper, ScaleReduced:
		return Scale(s), nil
	}
	return "", fmt.Errorf("unknown scale %q (want %q or %q)", s, ScaleReduced, ScalePaper)
}

// ParseDataSet validates a data-set name (e.g. a -set flag value).
func ParseDataSet(s string) (DataSet, error) {
	switch DataSet(s) {
	case SetSmall, SetLarge:
		return DataSet(s), nil
	}
	return "", fmt.Errorf("unknown data set %q (want %q or %q)", s, SetSmall, SetLarge)
}

// BenchNames lists the five benchmarks in the paper's Figure 3 order.
var BenchNames = []string{"appbt", "barnes", "mp3d", "ocean", "em3d"}

// ValidBench reports whether name is one of the five benchmarks.
func ValidBench(name string) bool {
	for _, n := range BenchNames {
		if n == name {
			return true
		}
	}
	return false
}

// MakeApp builds a benchmark instance by name, scale, and data set.
func MakeApp(name string, scale Scale, set DataSet) (apps.App, error) {
	paper := scale == ScalePaper
	large := set == SetLarge
	switch name {
	case "appbt":
		c := appbt.Small()
		if large {
			c = appbt.Large()
		}
		if !paper {
			c.N = map[bool]int{false: 8, true: 20}[large]
		}
		return appbt.New(c), nil
	case "barnes":
		c := barnes.Small()
		if large {
			c = barnes.Large()
		}
		if !paper {
			c.Bodies = map[bool]int{false: 256, true: 640}[large]
		}
		return barnes.New(c), nil
	case "mp3d":
		c := mp3d.Small()
		if large {
			c = mp3d.Large()
		}
		if !paper {
			c.Mols = map[bool]int{false: 2000, true: 6000}[large]
			c.Cells = map[bool]int{false: 8, true: 10}[large]
		}
		return mp3d.New(c), nil
	case "ocean":
		c := ocean.Small()
		if large {
			c = ocean.Large()
		}
		if !paper {
			c.N = map[bool]int{false: 66, true: 192}[large]
		}
		return ocean.New(c), nil
	case "em3d":
		c := em3d.Small()
		if large {
			c = em3d.Large()
		}
		if !paper {
			c.TotalNodes = map[bool]int{false: 8000, true: 20000}[large]
			c.Degree = map[bool]int{false: 5, true: 8}[large]
		}
		return em3d.New(c), nil
	}
	return nil, fmt.Errorf("harness: unknown benchmark %q", name)
}

// EM3DConfig returns the em3d configuration for a scale and data set
// (Figure 4 needs the raw config to sweep the remote-edge fraction).
func EM3DConfig(scale Scale, set DataSet) em3d.Config {
	c := em3d.Small()
	if set == SetLarge {
		c = em3d.Large()
	}
	if scale != ScalePaper {
		if set == SetLarge {
			c.TotalNodes, c.Degree = 20000, 8
		} else {
			c.TotalNodes, c.Degree = 8000, 5
		}
	}
	return c
}

// MachineConfig returns the Table 2 machine for a scale: 32 nodes at
// paper scale, 8 reduced.
func MachineConfig(scale Scale, cacheBytes int) machine.Config {
	cfg := machine.DefaultConfig()
	if scale != ScalePaper {
		cfg.Nodes = 8
	}
	if cacheBytes > 0 {
		cfg.CacheSize = cacheBytes
	}
	return cfg
}

// SimParams carries the simulator-level knobs every sweep threads into
// machine.Config: scheduler sharding and the contention model. The zero
// value is the legacy configuration — serial, infinite bandwidth, no
// agent occupancy — under which every pinned golden was produced.
// Results are bit-identical at every Shards value for any contention
// setting.
type SimParams struct {
	// Shards is machine.Config.Shards (<= 0 means 1).
	Shards int
	// LinkBytesPerCycle is machine.Config.LinkBytesPerCycle: per-port
	// link bandwidth of the contention model (0 = infinite).
	LinkBytesPerCycle int
	// OccupancyCycles is machine.Config.OccupancyCycles: protocol-agent
	// service occupancy per message (0 = unbounded concurrency).
	OccupancyCycles sim.Time
	// Cache threads the result cache through the sweep (zero value =
	// no caching). Not a machine knob — apply ignores it; the run
	// funnels consult it.
	Cache CacheParams
	// Exec, when non-nil, runs sweep points on that backend (e.g. a
	// fleet coordinator or client) instead of the in-process pool. Not
	// a machine knob — apply ignores it.
	Exec Executor
	// PointTimeout, when > 0, bounds each sweep point's wall-clock run;
	// a point that exceeds it fails the sweep with a structured
	// *PointTimeoutError naming the point. Not a machine knob.
	PointTimeout time.Duration
}

// apply copies the params onto a machine config.
func (p SimParams) apply(cfg *machine.Config) {
	cfg.Shards = p.Shards
	cfg.LinkBytesPerCycle = p.LinkBytesPerCycle
	cfg.OccupancyCycles = p.OccupancyCycles
}
