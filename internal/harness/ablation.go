package harness

import (
	"fmt"
	"io"

	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label  string
	Cycles sim.Time
	Extra  map[string]uint64
}

// Every ablation takes the SimParams for the simulations themselves
// (shard count, link bandwidth, agent occupancy — applied to every
// system, plus the cache/executor/timeout policy) and a workers count
// for the local pool (<= 0 = all cores); each configuration is one
// independent sweep point, and the row order is fixed by the sweep
// definition regardless of completion order. Rows are bit-identical
// at every shard and worker count.

// ablationPoint pairs a sweep point with its presentation: the row
// label and the counters the row reports.
type ablationPoint struct {
	pt    Point
	label string
	extra func(RunResult) map[string]uint64
}

// runAblation submits an ablation's points and folds the results into
// rows.
func runAblation(sp SimParams, workers int, aps []ablationPoint) ([]AblationRow, error) {
	points := make([]Point, len(aps))
	for i := range aps {
		points[i] = aps[i].pt
	}
	results, err := submitPoints(sp.Exec, sp.Cache, workers, sp.PointTimeout, points, nil)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(aps))
	for i, ap := range aps {
		rows[i] = AblationRow{Label: ap.label, Cycles: results[i].Res.ROICycles}
		if ap.extra != nil {
			rows[i].Extra = ap.extra(results[i].RunResult)
		}
	}
	return rows, nil
}

// netMsgs counts a run's remote network messages (packets minus
// node-local sends).
func netMsgs(res machine.Result) uint64 {
	var msgs uint64
	for _, v := range res.Net.VNets {
		msgs += v.Packets
	}
	return msgs - res.Net.LocalSends
}

// AblationBlockSize sweeps the coherence-block size on Typhoon/Stache
// (the paper fixes 32 bytes but defines blocks as 32-128 bytes, §2.4):
// larger blocks amortise handler overhead against false sharing and
// wasted transfer.
func AblationBlockSize(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var aps []ablationPoint
	for _, bs := range []int{32, 64, 128} {
		cfg := MachineConfig(scale, 0)
		cfg.BlockSize = bs
		sp.apply(&cfg)
		aps = append(aps, ablationPoint{
			pt:    Point{Cfg: cfg, System: SysStache, Bench: "em3d", Scale: scale, Set: SetSmall},
			label: fmt.Sprintf("block=%dB", bs),
			extra: func(rr RunResult) map[string]uint64 {
				return map[string]uint64{"faults": rr.Res.Counters.Get("stache.remote_faults")}
			},
		})
	}
	return runAblation(sp, workers, aps)
}

// AblationPlacement quantifies paper §6's discussion that careful data
// placement recovers much of DirNNB's disadvantage: Ocean under DirNNB
// with the naive round-robin placement of a shared malloc versus
// owner-aligned bands, against Typhoon/Stache which needs no placement.
func AblationPlacement(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	cacheKB := 4
	mcfg := MachineConfig(scale, cacheKB<<10)
	sp.apply(&mcfg)
	ocfg := ocean.Small()
	if scale != ScalePaper {
		ocfg.N = 66
	}

	var aps []ablationPoint
	for _, c := range []struct {
		label string
		sys   System
		owner bool
	}{
		{"dirnnb/naive", SysDirNNB, false},
		{"dirnnb/owner-placed", SysDirNNB, true},
		{"typhoon-stache/naive", SysStache, false},
		{"typhoon-stache/owner-placed", SysStache, true},
	} {
		cfg := ocfg
		cfg.OwnerPlaced = c.owner
		aps = append(aps, ablationPoint{
			pt:    Point{Cfg: mcfg, System: c.sys, Ocean: &cfg},
			label: c.label,
		})
	}
	return runAblation(sp, workers, aps)
}

// AblationStacheBudget sweeps the per-node stache-page budget to expose
// the FIFO page-replacement machinery (§3: "replacements are rare" with
// ample memory; a tight budget makes them common). budget=0 is exactly
// the plain Stache run — the zero key field is dropped, so it shares a
// cache entry with other sweeps' runs.
func AblationStacheBudget(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	ecfg := EM3DConfig(scale, SetSmall)
	mcfg := MachineConfig(scale, 0)
	sp.apply(&mcfg)
	var aps []ablationPoint
	for _, budget := range []int{0, 16, 4, 2} {
		label := "unbounded"
		if budget > 0 {
			label = fmt.Sprintf("%d pages", budget)
		}
		aps = append(aps, ablationPoint{
			pt:    Point{Cfg: mcfg, System: SysStache, EM3D: &ecfg, StacheMaxPages: budget},
			label: label,
			extra: func(rr RunResult) map[string]uint64 {
				return map[string]uint64{"replacements": rr.Res.Counters.Get("stache.replacements")}
			},
		})
	}
	return runAblation(sp, workers, aps)
}

// AblationNetLatency sweeps the network latency (Table 2's 11 cycles is
// "probably optimistic for future systems" and deliberately favours
// DirNNB; this quantifies the sensitivity the paper mentions).
func AblationNetLatency(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var aps []ablationPoint
	for _, lat := range []sim.Time{11, 44, 88} {
		for _, sys := range []System{SysDirNNB, SysStache} {
			cfg := MachineConfig(scale, 4<<10)
			cfg.NetLatency = lat
			sp.apply(&cfg)
			aps = append(aps, ablationPoint{
				pt:    Point{Cfg: cfg, System: sys, Bench: "ocean", Scale: scale, Set: SetSmall},
				label: fmt.Sprintf("net=%d/%s", lat, sys),
			})
		}
	}
	return runAblation(sp, workers, aps)
}

// AblationFirstTouch compares DirNNB's default round-robin placement
// with first-touch page placement on MP3D (paper §6 cites Stenstrom et
// al.'s first-touch result). First touch lands each particle page on the
// node that initialises it — its owner.
func AblationFirstTouch(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	mcfg := MachineConfig(scale, 4<<10)
	sp.apply(&mcfg)
	var aps []ablationPoint
	for _, sys := range []System{SysDirNNB, SysStache} {
		aps = append(aps, ablationPoint{
			pt:    Point{Cfg: mcfg, System: sys, Bench: "ocean", Scale: scale, Set: SetSmall},
			label: "round-robin/" + string(sys),
		})
	}
	// First-touch DirNNB: owner-placed is the steady-state equivalent
	// (the initialising processor is the owner).
	c := ocean.Small()
	if scale != ScalePaper {
		c.N = 66
	}
	c.OwnerPlaced = true
	aps = append(aps, ablationPoint{
		pt:    Point{Cfg: mcfg, System: SysDirNNB, Ocean: &c},
		label: "first-touch/dirnnb",
	})
	return runAblation(sp, workers, aps)
}

// RenderAblation prints an ablation sweep.
func RenderAblation(w io.Writer, title string, rows []AblationRow) error {
	t := &stats.Table{Title: title, Header: []string{"config", "cycles", "notes"}}
	for _, r := range rows {
		notes := ""
		for k, v := range r.Extra {
			notes += fmt.Sprintf("%s=%d ", k, v)
		}
		t.AddRow(r.Label, stats.D(uint64(r.Cycles)), notes)
	}
	return t.Render(w)
}

// AblationEM3DProtocols reproduces the paper §4 argument chain at one
// remote-edge fraction: transparent shared memory needs four messages
// per remote datum per iteration, check-in annotations cut that to
// three by replacing the invalidation round trip, and the custom update
// protocol reaches the minimum of one.
func AblationEM3DProtocols(scale Scale, pctRemote int, sp SimParams, workers int) ([]AblationRow, error) {
	ecfg := EM3DConfig(scale, SetSmall)
	ecfg.PctRemote = pctRemote
	mcfg := MachineConfig(scale, 0)
	sp.apply(&mcfg)

	msgExtra := func(rr RunResult) map[string]uint64 {
		return map[string]uint64{"net-messages": netMsgs(rr.Res)}
	}
	aps := []ablationPoint{
		// DirNNB (hardware messages are not modeled as packets; report cycles).
		{pt: Point{Cfg: mcfg, System: SysDirNNB, EM3D: &ecfg}, label: "dirnnb"},
		{pt: Point{Cfg: mcfg, System: SysStache, EM3D: &ecfg}, label: "typhoon-stache", extra: msgExtra},
		// The check-in app is a distinct program and carries its own key
		// field; the plain variant shares its entry with any other sweep.
		{pt: Point{Cfg: mcfg, System: SysStache, EM3D: &ecfg, CheckIn: true}, label: "typhoon-stache+checkin", extra: msgExtra},
		// Custom update protocol.
		{pt: Point{Cfg: mcfg, System: SysUpdate, EM3D: &ecfg}, label: "typhoon-update", extra: msgExtra},
	}
	return runAblation(sp, workers, aps)
}

// AblationMigratory measures the migratory-sharing optimisation (a
// user-level protocol-policy extension, off by default) on MP3D, whose
// scattered read-modify-writes are the pattern it targets. mig=false
// drops the key field — the plain run shares its entry with any other
// Stache/mp3d sweep at this configuration.
func AblationMigratory(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	mcfg := MachineConfig(scale, 64<<10)
	sp.apply(&mcfg)
	var aps []ablationPoint
	for _, mig := range []bool{false, true} {
		label := "stache/plain"
		if mig {
			label = "stache/migratory"
		}
		aps = append(aps, ablationPoint{
			pt:    Point{Cfg: mcfg, System: SysStache, Bench: "mp3d", Scale: scale, Set: SetSmall, StacheMigratory: mig},
			label: label,
			extra: func(rr RunResult) map[string]uint64 {
				return map[string]uint64{
					"migratory-grants": rr.Res.Counters.Get("stache.migratory_grants"),
					"upgrades":         rr.Res.Counters.Get("stache.upgrades"),
				}
			},
		})
	}
	return runAblation(sp, workers, aps)
}

// AblationSoftwareTempest runs the same benchmark and the same
// unmodified Stache library on Typhoon and on the software Tempest
// implementation (the paper's announced "native version for existing
// machines", later published as Blizzard), quantifying what Typhoon's
// custom hardware buys.
func AblationSoftwareTempest(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var aps []ablationPoint
	for _, name := range []string{"ocean", "em3d"} {
		for _, software := range []bool{false, true} {
			cfg := MachineConfig(scale, 16<<10)
			sp.apply(&cfg)
			sys, label := SysStache, name+"/typhoon"
			if software {
				sys, label = SysBlizzard, name+"/software"
			}
			aps = append(aps, ablationPoint{
				pt:    Point{Cfg: cfg, System: sys, Bench: name, Scale: scale, Set: SetSmall},
				label: label,
			})
		}
	}
	return runAblation(sp, workers, aps)
}
