package harness

import (
	"context"
	"fmt"
	"io"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/resultcache"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label  string
	Cycles sim.Time
	Extra  map[string]uint64
}

// Every ablation takes the SimParams for the simulations themselves
// (shard count, link bandwidth, agent occupancy — applied to every
// system) and a workers count for the RunAll pool (<= 0 = all cores); each
// configuration point is one job, and the row order is fixed by the
// sweep definition regardless of completion order. Rows are bit-identical
// at every shard and worker count.

// AblationBlockSize sweeps the coherence-block size on Typhoon/Stache
// (the paper fixes 32 bytes but defines blocks as 32-128 bytes, §2.4):
// larger blocks amortise handler overhead against false sharing and
// wasted transfer.
func AblationBlockSize(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var jobs []Job[AblationRow]
	for _, bs := range []int{32, 64, 128} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			cfg := MachineConfig(scale, 0)
			cfg.BlockSize = bs
			sp.apply(&cfg)
			app, err := MakeApp("em3d", scale, SetSmall)
			if err != nil {
				return AblationRow{}, err
			}
			rr, err := RunCached(sp.Cache, cfg, SysStache, app)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Label:  fmt.Sprintf("block=%dB", bs),
				Cycles: rr.Res.ROICycles,
				Extra: map[string]uint64{
					"faults": rr.Res.Counters.Get("stache.remote_faults"),
				},
			}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationPlacement quantifies paper §6's discussion that careful data
// placement recovers much of DirNNB's disadvantage: Ocean under DirNNB
// with the naive round-robin placement of a shared malloc versus
// owner-aligned bands, against Typhoon/Stache which needs no placement.
func AblationPlacement(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	cacheKB := 4
	mcfg := MachineConfig(scale, cacheKB<<10)
	sp.apply(&mcfg)
	ocfg := ocean.Small()
	if scale != ScalePaper {
		ocfg.N = 66
	}

	var jobs []Job[AblationRow]
	for _, c := range []struct {
		label string
		sys   System
		owner bool
	}{
		{"dirnnb/naive", SysDirNNB, false},
		{"dirnnb/owner-placed", SysDirNNB, true},
		{"typhoon-stache/naive", SysStache, false},
		{"typhoon-stache/owner-placed", SysStache, true},
	} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			cfg := ocfg
			cfg.OwnerPlaced = c.owner
			app := ocean.New(cfg)
			rr, err := RunCached(sp.Cache, mcfg, c.sys, app)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: c.label, Cycles: rr.Res.ROICycles}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationStacheBudget sweeps the per-node stache-page budget to expose
// the FIFO page-replacement machinery (§3: "replacements are rare" with
// ample memory; a tight budget makes them common).
func AblationStacheBudget(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	ecfg := EM3DConfig(scale, SetSmall)
	mcfg := MachineConfig(scale, 0)
	sp.apply(&mcfg)
	var jobs []Job[AblationRow]
	for _, budget := range []int{0, 16, 4, 2} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			simulate := func() (RunResult, error) {
				m := machine.New(mcfg)
				var opts []stache.Option
				if budget > 0 {
					opts = append(opts, stache.WithMaxPages(budget))
				}
				st := stache.New(opts...)
				typhoon.New(m, st)
				app := em3d.New(ecfg)
				app.Setup(m)
				res, err := m.Run(app.Body)
				if err != nil {
					return RunResult{}, err
				}
				if err := app.Verify(m); err != nil {
					return RunResult{}, fmt.Errorf("harness: budget=%d: %w", budget, err)
				}
				return RunResult{System: SysStache, App: app.Name(), Res: res}, nil
			}
			// budget=0 is exactly the plain Stache run — no extra key
			// field, so it shares a cache entry with other sweeps' runs.
			extra := []resultcache.Field{resultcache.FInt("stache.max_pages", int64(budget))}
			rr, _, err := cachedRun(sp.Cache, mcfg, SysStache, "em3d", em3dKey(ecfg), extra, simulate)
			if err != nil {
				return AblationRow{}, err
			}
			label := "unbounded"
			if budget > 0 {
				label = fmt.Sprintf("%d pages", budget)
			}
			return AblationRow{
				Label:  label,
				Cycles: rr.Res.ROICycles,
				Extra: map[string]uint64{
					"replacements": rr.Res.Counters.Get("stache.replacements"),
				},
			}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationNetLatency sweeps the network latency (Table 2's 11 cycles is
// "probably optimistic for future systems" and deliberately favours
// DirNNB; this quantifies the sensitivity the paper mentions).
func AblationNetLatency(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var jobs []Job[AblationRow]
	for _, lat := range []sim.Time{11, 44, 88} {
		for _, sys := range []System{SysDirNNB, SysStache} {
			jobs = append(jobs, func(context.Context) (AblationRow, error) {
				cfg := MachineConfig(scale, 4<<10)
				cfg.NetLatency = lat
				sp.apply(&cfg)
				app, err := MakeApp("ocean", scale, SetSmall)
				if err != nil {
					return AblationRow{}, err
				}
				rr, err := RunCached(sp.Cache, cfg, sys, app)
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label:  fmt.Sprintf("net=%d/%s", lat, sys),
					Cycles: rr.Res.ROICycles,
				}, nil
			})
		}
	}
	return RunAll(jobs, workers)
}

// AblationFirstTouch compares DirNNB's default round-robin placement
// with first-touch page placement on MP3D (paper §6 cites Stenstrom et
// al.'s first-touch result). First touch lands each particle page on the
// node that initialises it — its owner.
func AblationFirstTouch(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	mcfg := MachineConfig(scale, 4<<10)
	sp.apply(&mcfg)
	var jobs []Job[AblationRow]
	for _, sys := range []System{SysDirNNB, SysStache} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			app, err := MakeApp("ocean", scale, SetSmall)
			if err != nil {
				return AblationRow{}, err
			}
			rr, err := RunCached(sp.Cache, mcfg, sys, app)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: "round-robin/" + string(sys), Cycles: rr.Res.ROICycles}, nil
		})
	}
	// First-touch DirNNB: owner-placed is the steady-state equivalent
	// (the initialising processor is the owner).
	jobs = append(jobs, func(context.Context) (AblationRow, error) {
		c := ocean.Small()
		if scale != ScalePaper {
			c.N = 66
		}
		c.OwnerPlaced = true
		rr, err := RunCached(sp.Cache, mcfg, SysDirNNB, ocean.New(c))
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{Label: "first-touch/dirnnb", Cycles: rr.Res.ROICycles}, nil
	})
	return RunAll(jobs, workers)
}

// RenderAblation prints an ablation sweep.
func RenderAblation(w io.Writer, title string, rows []AblationRow) error {
	t := &stats.Table{Title: title, Header: []string{"config", "cycles", "notes"}}
	for _, r := range rows {
		notes := ""
		for k, v := range r.Extra {
			notes += fmt.Sprintf("%s=%d ", k, v)
		}
		t.AddRow(r.Label, stats.D(uint64(r.Cycles)), notes)
	}
	return t.Render(w)
}

// AblationEM3DProtocols reproduces the paper §4 argument chain at one
// remote-edge fraction: transparent shared memory needs four messages
// per remote datum per iteration, check-in annotations cut that to
// three by replacing the invalidation round trip, and the custom update
// protocol reaches the minimum of one.
func AblationEM3DProtocols(scale Scale, pctRemote int, sp SimParams, workers int) ([]AblationRow, error) {
	ecfg := EM3DConfig(scale, SetSmall)
	ecfg.PctRemote = pctRemote
	mcfg := MachineConfig(scale, 0)
	sp.apply(&mcfg)

	netMsgs := func(res machine.Result) uint64 {
		var msgs uint64
		for _, v := range res.Net.VNets {
			msgs += v.Packets
		}
		return msgs - res.Net.LocalSends
	}
	// stacheRow runs one Stache variant (plain or check-in) through the
	// cache. The plain variant is the standard SysStache run (same key
	// as any other sweep's, so entries are shared); the check-in app is
	// a distinct program and carries its own key field.
	stacheRow := func(label string, checkin bool) (AblationRow, error) {
		simulate := func() (RunResult, error) {
			m := machine.New(mcfg)
			st := stache.New()
			typhoon.New(m, st)
			var app apps.App
			if checkin {
				app = em3d.NewCheckInApp(ecfg, st)
			} else {
				app = em3d.New(ecfg)
			}
			app.Setup(m)
			res, err := m.Run(app.Body)
			if err != nil {
				return RunResult{}, err
			}
			if err := app.Verify(m); err != nil {
				return RunResult{}, err
			}
			return RunResult{System: SysStache, App: app.Name(), Res: res}, nil
		}
		appName := "em3d"
		var extra []resultcache.Field
		if checkin {
			appName = "em3d-checkin"
			extra = []resultcache.Field{resultcache.FBool("app.checkin", true)}
		}
		rr, _, err := cachedRun(sp.Cache, mcfg, SysStache, appName, em3dKey(ecfg), extra, simulate)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{Label: label, Cycles: rr.Res.ROICycles,
			Extra: map[string]uint64{"net-messages": netMsgs(rr.Res)}}, nil
	}
	jobs := []Job[AblationRow]{
		// DirNNB (hardware messages are not modeled as packets; report cycles).
		func(context.Context) (AblationRow, error) {
			dir, err := runEM3DOn(sp.Cache, mcfg, SysDirNNB, ecfg)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: "dirnnb", Cycles: dir.roi}, nil
		},
		func(context.Context) (AblationRow, error) {
			return stacheRow("typhoon-stache", false)
		},
		func(context.Context) (AblationRow, error) {
			return stacheRow("typhoon-stache+checkin", true)
		},
		// Custom update protocol.
		func(context.Context) (AblationRow, error) {
			rr, err := RunEM3DUpdateCached(sp.Cache, mcfg, ecfg)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: "typhoon-update", Cycles: rr.Res.ROICycles,
				Extra: map[string]uint64{"net-messages": netMsgs(rr.Res)}}, nil
		},
	}
	return RunAll(jobs, workers)
}

// AblationMigratory measures the migratory-sharing optimisation (a
// user-level protocol-policy extension, off by default) on MP3D, whose
// scattered read-modify-writes are the pattern it targets.
func AblationMigratory(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	mcfg := MachineConfig(scale, 64<<10)
	sp.apply(&mcfg)
	var jobs []Job[AblationRow]
	for _, mig := range []bool{false, true} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			app, err := MakeApp("mp3d", scale, SetSmall)
			if err != nil {
				return AblationRow{}, err
			}
			label := "stache/plain"
			if mig {
				label = "stache/migratory"
			}
			simulate := func() (RunResult, error) {
				m := machine.New(mcfg)
				var opts []stache.Option
				if mig {
					opts = append(opts, stache.WithMigratory())
				}
				st := stache.New(opts...)
				typhoon.New(m, st)
				app.Setup(m)
				res, err := m.Run(app.Body)
				if err != nil {
					return RunResult{}, err
				}
				if err := app.Verify(m); err != nil {
					return RunResult{}, err
				}
				if err := st.CheckInvariants(); err != nil {
					return RunResult{}, err
				}
				return RunResult{System: SysStache, App: app.Name(), Res: res}, nil
			}
			appFields, err := appKeyFields(app)
			if err != nil {
				return AblationRow{}, err
			}
			// mig=false drops the field — the plain run shares its entry
			// with any other Stache/mp3d sweep at this configuration.
			extra := []resultcache.Field{resultcache.FBool("stache.migratory", mig)}
			rr, _, err := cachedRun(sp.Cache, mcfg, SysStache, app.Name(), appFields, extra, simulate)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: label, Cycles: rr.Res.ROICycles,
				Extra: map[string]uint64{
					"migratory-grants": rr.Res.Counters.Get("stache.migratory_grants"),
					"upgrades":         rr.Res.Counters.Get("stache.upgrades"),
				}}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationSoftwareTempest runs the same benchmark and the same
// unmodified Stache library on Typhoon and on the software Tempest
// implementation (the paper's announced "native version for existing
// machines", later published as Blizzard), quantifying what Typhoon's
// custom hardware buys.
func AblationSoftwareTempest(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var jobs []Job[AblationRow]
	for _, name := range []string{"ocean", "em3d"} {
		for _, software := range []bool{false, true} {
			jobs = append(jobs, func(context.Context) (AblationRow, error) {
				cfg := MachineConfig(scale, 16<<10)
				sp.apply(&cfg)
				sys, label := SysStache, name+"/typhoon"
				if software {
					sys, label = SysBlizzard, name+"/software"
				}
				app, err := MakeApp(name, scale, SetSmall)
				if err != nil {
					return AblationRow{}, err
				}
				rr, err := RunCached(sp.Cache, cfg, sys, app)
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{Label: label, Cycles: rr.Res.ROICycles}, nil
			})
		}
	}
	return RunAll(jobs, workers)
}
