package harness

import (
	"context"
	"fmt"
	"io"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/blizzard"
	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label  string
	Cycles sim.Time
	Extra  map[string]uint64
}

// Every ablation takes the SimParams for the simulations themselves
// (shard count, link bandwidth, agent occupancy — applied to every
// system) and a workers count for the RunAll pool (<= 0 = all cores); each
// configuration point is one job, and the row order is fixed by the
// sweep definition regardless of completion order. Rows are bit-identical
// at every shard and worker count.

// AblationBlockSize sweeps the coherence-block size on Typhoon/Stache
// (the paper fixes 32 bytes but defines blocks as 32-128 bytes, §2.4):
// larger blocks amortise handler overhead against false sharing and
// wasted transfer.
func AblationBlockSize(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var jobs []Job[AblationRow]
	for _, bs := range []int{32, 64, 128} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			cfg := MachineConfig(scale, 0)
			cfg.BlockSize = bs
			sp.apply(&cfg)
			app, err := MakeApp("em3d", scale, SetSmall)
			if err != nil {
				return AblationRow{}, err
			}
			rr, err := Run(cfg, SysStache, app)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Label:  fmt.Sprintf("block=%dB", bs),
				Cycles: rr.Res.ROICycles,
				Extra: map[string]uint64{
					"faults": rr.Res.Counters.Get("stache.remote_faults"),
				},
			}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationPlacement quantifies paper §6's discussion that careful data
// placement recovers much of DirNNB's disadvantage: Ocean under DirNNB
// with the naive round-robin placement of a shared malloc versus
// owner-aligned bands, against Typhoon/Stache which needs no placement.
func AblationPlacement(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	cacheKB := 4
	mcfg := MachineConfig(scale, cacheKB<<10)
	sp.apply(&mcfg)
	ocfg := ocean.Small()
	if scale != ScalePaper {
		ocfg.N = 66
	}

	var jobs []Job[AblationRow]
	for _, c := range []struct {
		label string
		sys   System
		owner bool
	}{
		{"dirnnb/naive", SysDirNNB, false},
		{"dirnnb/owner-placed", SysDirNNB, true},
		{"typhoon-stache/naive", SysStache, false},
		{"typhoon-stache/owner-placed", SysStache, true},
	} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			cfg := ocfg
			cfg.OwnerPlaced = c.owner
			app := ocean.New(cfg)
			rr, err := Run(mcfg, c.sys, app)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: c.label, Cycles: rr.Res.ROICycles}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationStacheBudget sweeps the per-node stache-page budget to expose
// the FIFO page-replacement machinery (§3: "replacements are rare" with
// ample memory; a tight budget makes them common).
func AblationStacheBudget(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	ecfg := EM3DConfig(scale, SetSmall)
	mcfg := MachineConfig(scale, 0)
	sp.apply(&mcfg)
	var jobs []Job[AblationRow]
	for _, budget := range []int{0, 16, 4, 2} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			m := machine.New(mcfg)
			var opts []stache.Option
			if budget > 0 {
				opts = append(opts, stache.WithMaxPages(budget))
			}
			st := stache.New(opts...)
			typhoon.New(m, st)
			app := em3d.New(ecfg)
			app.Setup(m)
			res, err := m.Run(app.Body)
			if err != nil {
				return AblationRow{}, err
			}
			if err := app.Verify(m); err != nil {
				return AblationRow{}, fmt.Errorf("harness: budget=%d: %w", budget, err)
			}
			label := "unbounded"
			if budget > 0 {
				label = fmt.Sprintf("%d pages", budget)
			}
			return AblationRow{
				Label:  label,
				Cycles: res.ROICycles,
				Extra: map[string]uint64{
					"replacements": res.Counters.Get("stache.replacements"),
				},
			}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationNetLatency sweeps the network latency (Table 2's 11 cycles is
// "probably optimistic for future systems" and deliberately favours
// DirNNB; this quantifies the sensitivity the paper mentions).
func AblationNetLatency(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var jobs []Job[AblationRow]
	for _, lat := range []sim.Time{11, 44, 88} {
		for _, sys := range []System{SysDirNNB, SysStache} {
			jobs = append(jobs, func(context.Context) (AblationRow, error) {
				cfg := MachineConfig(scale, 4<<10)
				cfg.NetLatency = lat
				sp.apply(&cfg)
				app, err := MakeApp("ocean", scale, SetSmall)
				if err != nil {
					return AblationRow{}, err
				}
				rr, err := Run(cfg, sys, app)
				if err != nil {
					return AblationRow{}, err
				}
				return AblationRow{
					Label:  fmt.Sprintf("net=%d/%s", lat, sys),
					Cycles: rr.Res.ROICycles,
				}, nil
			})
		}
	}
	return RunAll(jobs, workers)
}

// AblationFirstTouch compares DirNNB's default round-robin placement
// with first-touch page placement on MP3D (paper §6 cites Stenstrom et
// al.'s first-touch result). First touch lands each particle page on the
// node that initialises it — its owner.
func AblationFirstTouch(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	mcfg := MachineConfig(scale, 4<<10)
	sp.apply(&mcfg)
	var jobs []Job[AblationRow]
	for _, sys := range []System{SysDirNNB, SysStache} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			app, err := MakeApp("ocean", scale, SetSmall)
			if err != nil {
				return AblationRow{}, err
			}
			rr, err := Run(mcfg, sys, app)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: "round-robin/" + string(sys), Cycles: rr.Res.ROICycles}, nil
		})
	}
	// First-touch DirNNB: owner-placed is the steady-state equivalent
	// (the initialising processor is the owner).
	jobs = append(jobs, func(context.Context) (AblationRow, error) {
		c := ocean.Small()
		if scale != ScalePaper {
			c.N = 66
		}
		c.OwnerPlaced = true
		m := machine.New(mcfg)
		dirnnb.New(m)
		app := ocean.New(c)
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			return AblationRow{}, err
		}
		if err := app.Verify(m); err != nil {
			return AblationRow{}, err
		}
		return AblationRow{Label: "first-touch/dirnnb", Cycles: res.ROICycles}, nil
	})
	return RunAll(jobs, workers)
}

// RenderAblation prints an ablation sweep.
func RenderAblation(w io.Writer, title string, rows []AblationRow) error {
	t := &stats.Table{Title: title, Header: []string{"config", "cycles", "notes"}}
	for _, r := range rows {
		notes := ""
		for k, v := range r.Extra {
			notes += fmt.Sprintf("%s=%d ", k, v)
		}
		t.AddRow(r.Label, stats.D(uint64(r.Cycles)), notes)
	}
	return t.Render(w)
}

// AblationEM3DProtocols reproduces the paper §4 argument chain at one
// remote-edge fraction: transparent shared memory needs four messages
// per remote datum per iteration, check-in annotations cut that to
// three by replacing the invalidation round trip, and the custom update
// protocol reaches the minimum of one.
func AblationEM3DProtocols(scale Scale, pctRemote int, sp SimParams, workers int) ([]AblationRow, error) {
	ecfg := EM3DConfig(scale, SetSmall)
	ecfg.PctRemote = pctRemote
	mcfg := MachineConfig(scale, 0)
	sp.apply(&mcfg)

	netMsgs := func(res machine.Result) uint64 {
		var msgs uint64
		for _, v := range res.Net.VNets {
			msgs += v.Packets
		}
		return msgs - res.Net.LocalSends
	}
	// stacheRow runs one Stache variant (plain or check-in).
	stacheRow := func(label string, checkin bool) (AblationRow, error) {
		m := machine.New(mcfg)
		st := stache.New()
		typhoon.New(m, st)
		var app apps.App
		if checkin {
			app = em3d.NewCheckInApp(ecfg, st)
		} else {
			app = em3d.New(ecfg)
		}
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			return AblationRow{}, err
		}
		if err := app.Verify(m); err != nil {
			return AblationRow{}, err
		}
		return AblationRow{Label: label, Cycles: res.ROICycles,
			Extra: map[string]uint64{"net-messages": netMsgs(res)}}, nil
	}
	jobs := []Job[AblationRow]{
		// DirNNB (hardware messages are not modeled as packets; report cycles).
		func(context.Context) (AblationRow, error) {
			dir, err := runEM3DOn(mcfg, SysDirNNB, ecfg)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: "dirnnb", Cycles: dir.roi}, nil
		},
		func(context.Context) (AblationRow, error) {
			return stacheRow("typhoon-stache", false)
		},
		func(context.Context) (AblationRow, error) {
			return stacheRow("typhoon-stache+checkin", true)
		},
		// Custom update protocol.
		func(context.Context) (AblationRow, error) {
			m := machine.New(mcfg)
			u := em3d.NewUpdateProtocol()
			typhoon.New(m, u)
			app := em3d.NewUpdateApp(ecfg, u)
			app.Setup(m)
			res, err := m.Run(app.Body)
			if err != nil {
				return AblationRow{}, err
			}
			if err := app.Verify(m); err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: "typhoon-update", Cycles: res.ROICycles,
				Extra: map[string]uint64{"net-messages": netMsgs(res)}}, nil
		},
	}
	return RunAll(jobs, workers)
}

// AblationMigratory measures the migratory-sharing optimisation (a
// user-level protocol-policy extension, off by default) on MP3D, whose
// scattered read-modify-writes are the pattern it targets.
func AblationMigratory(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	mcfg := MachineConfig(scale, 64<<10)
	sp.apply(&mcfg)
	var jobs []Job[AblationRow]
	for _, mig := range []bool{false, true} {
		jobs = append(jobs, func(context.Context) (AblationRow, error) {
			m := machine.New(mcfg)
			var opts []stache.Option
			label := "stache/plain"
			if mig {
				opts = append(opts, stache.WithMigratory())
				label = "stache/migratory"
			}
			st := stache.New(opts...)
			typhoon.New(m, st)
			app, err := MakeApp("mp3d", scale, SetSmall)
			if err != nil {
				return AblationRow{}, err
			}
			app.Setup(m)
			res, err := m.Run(app.Body)
			if err != nil {
				return AblationRow{}, err
			}
			if err := app.Verify(m); err != nil {
				return AblationRow{}, err
			}
			if err := st.CheckInvariants(); err != nil {
				return AblationRow{}, err
			}
			return AblationRow{Label: label, Cycles: res.ROICycles,
				Extra: map[string]uint64{
					"migratory-grants": res.Counters.Get("stache.migratory_grants"),
					"upgrades":         res.Counters.Get("stache.upgrades"),
				}}, nil
		})
	}
	return RunAll(jobs, workers)
}

// AblationSoftwareTempest runs the same benchmark and the same
// unmodified Stache library on Typhoon and on the software Tempest
// implementation (the paper's announced "native version for existing
// machines", later published as Blizzard), quantifying what Typhoon's
// custom hardware buys.
func AblationSoftwareTempest(scale Scale, sp SimParams, workers int) ([]AblationRow, error) {
	var jobs []Job[AblationRow]
	for _, name := range []string{"ocean", "em3d"} {
		for _, software := range []bool{false, true} {
			jobs = append(jobs, func(context.Context) (AblationRow, error) {
				cfg := MachineConfig(scale, 16<<10)
				sp.apply(&cfg)
				m := machine.New(cfg)
				st := stache.New()
				label := name + "/typhoon"
				if software {
					blizzard.New(m, st, blizzard.Config{})
					label = name + "/software"
				} else {
					typhoon.New(m, st)
				}
				app, err := MakeApp(name, scale, SetSmall)
				if err != nil {
					return AblationRow{}, err
				}
				app.Setup(m)
				res, err := m.Run(app.Body)
				if err != nil {
					return AblationRow{}, err
				}
				if err := app.Verify(m); err != nil {
					return AblationRow{}, err
				}
				return AblationRow{Label: label, Cycles: res.ROICycles}, nil
			})
		}
	}
	return RunAll(jobs, workers)
}
