// Package apps defines the benchmark-application abstraction shared by
// the harness, plus layout and PRNG helpers. The concrete applications —
// the paper's five benchmarks (Appbt, Barnes, MP3D, Ocean, EM3D) — live
// in subpackages. Each reproduces the sharing pattern and data-set
// geometry of the original program (Table 3) over the simulated shared
// address space; see DESIGN.md for the substitution argument.
package apps

import (
	"fmt"
	"math"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/vm"
)

// App is one benchmark instance: Setup allocates simulated memory and
// builds Go-side layout tables, Body is the SPMD program, and Verify
// checks the parallel result against a sequential reference after the
// run.
type App interface {
	// Name is the benchmark's short name ("em3d", "ocean", ...).
	Name() string
	// Setup allocates segments and builds layout state. It is called
	// once, before Run.
	Setup(m *machine.Machine)
	// Body is the per-processor SPMD program.
	Body(p *machine.Proc)
	// Verify compares the simulated result with a sequential reference.
	Verify(m *machine.Machine) error
}

// Rand is a small deterministic PRNG (splitmix64) for workload
// construction. Simulated runs must not consult Go's global rand.
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed + 0x9E3779B97F4A7C15} }

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("apps: Intn with non-positive bound")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// DistArray is a shared array of fixed-size elements distributed so each
// processor's elements are homed on that processor (owner-computes
// layout): each processor's chunk is padded to whole pages and the
// segment uses blocked placement.
type DistArray struct {
	Seg      *vm.Segment
	ElemSize uint64
	PerProc  int
	chunk    uint64 // bytes per processor, page-aligned
}

// NewDistArray allocates a distributed array with perProc elements of
// elemSize bytes per processor, homed on the owning processor (the
// owner-computes layout EM3D's Split-C original uses). mode selects the
// protocol page mode (0 = the memory system's default).
func NewDistArray(m *machine.Machine, name string, perProc int, elemSize uint64, mode int) *DistArray {
	return NewDistArrayPlaced(m, name, perProc, elemSize, mode, vm.Blocked{})
}

// NewDistArrayNaive allocates a distributed array whose pages are placed
// round-robin across the machine regardless of which processor computes
// on them — the placement a shared-memory malloc gives the SPLASH
// programs, which the paper runs unmodified ("the Typhoon/Stache
// simulations required no modifications to the existing applications";
// careful placement is the DirNNB improvement the paper discusses but
// does not apply).
func NewDistArrayNaive(m *machine.Machine, name string, perProc int, elemSize uint64, mode int) *DistArray {
	return NewDistArrayPlaced(m, name, perProc, elemSize, mode, vm.RoundRobin{})
}

// NewDistArrayPlaced is NewDistArray with an explicit placement policy.
func NewDistArrayPlaced(m *machine.Machine, name string, perProc int, elemSize uint64, mode int, place vm.Placement) *DistArray {
	if perProc <= 0 || elemSize == 0 {
		panic(fmt.Sprintf("apps: bad DistArray geometry %d x %d", perProc, elemSize))
	}
	chunk := (uint64(perProc)*elemSize + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	seg := m.AllocShared(name, chunk*uint64(m.Cfg.Nodes), place, mode)
	return &DistArray{Seg: seg, ElemSize: elemSize, PerProc: perProc, chunk: chunk}
}

// At returns the address of element idx of processor proc's chunk.
func (a *DistArray) At(proc, idx int) mem.VA {
	if idx < 0 || idx >= a.PerProc {
		panic(fmt.Sprintf("apps: DistArray index %d out of %d", idx, a.PerProc))
	}
	return a.Seg.Base + mem.VA(uint64(proc)*a.chunk+uint64(idx)*a.ElemSize)
}

// AtGlobal maps a global element index (proc-major) to its address.
func (a *DistArray) AtGlobal(idx int) mem.VA {
	return a.At(idx/a.PerProc, idx%a.PerProc)
}

// Total returns the number of elements across all processors.
func (a *DistArray) Total(nodes int) int { return a.PerProc * nodes }

// coherentPA locates the current copy of va at quiescence, with no
// simulated cost — for Verify. Under Typhoon protocols the home copy is
// stale while a remote node holds the block ReadWrite, so the search
// prefers a writable copy; under DirNNB every node maps the home frame
// and the home copy is always current.
func coherentPA(m *machine.Machine, va mem.VA) (mem.PA, *mem.Memory) {
	home := m.VM.Home(va)
	homePA, _, ok := m.VM.Translate(home, va)
	if !ok {
		panic(fmt.Sprintf("apps: %#x not mapped at home %d", va, home))
	}
	if m.Mems[home].Tag(homePA) == mem.TagReadWrite {
		return homePA, m.Mems[home]
	}
	for n := 0; n < m.Cfg.Nodes; n++ {
		if n == home {
			continue
		}
		pa, _, ok := m.VM.Translate(n, va)
		if !ok || pa.Node() != n {
			continue
		}
		if m.Mems[n].Tag(pa) == mem.TagReadWrite {
			return pa, m.Mems[n]
		}
	}
	return homePA, m.Mems[home]
}

// ReadBackF64 reads the coherent value of the float64 at va with no
// simulated cost — for Verify.
func ReadBackF64(m *machine.Machine, va mem.VA) float64 {
	pa, mm := coherentPA(m, va)
	return mm.ReadF64(pa)
}

// ReadBackU64 is ReadBackF64 for integers.
func ReadBackU64(m *machine.Machine, va mem.VA) uint64 {
	pa, mm := coherentPA(m, va)
	return mm.ReadU64(pa)
}

// CeilDiv returns ceil(a/b).
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// ApproxEqual reports |a-b| <= tol * max(1, |a|, |b|).
func ApproxEqual(a, b, tol float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if aa := abs(a); aa > scale {
		scale = aa
	}
	if bb := abs(b); bb > scale {
		scale = bb
	}
	return diff <= tol*scale
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// MemIO abstracts simulated memory access so an application kernel can
// run both on a Proc (charging cycles) and on a Backdoor (free replay
// for verification) with identical semantics.
type MemIO interface {
	ReadF64(va mem.VA) float64
	WriteF64(va mem.VA, v float64)
	ReadU64(va mem.VA) uint64
	WriteU64(va mem.VA, v uint64)
	Compute(n int)
}

// Backdoor replays kernels against the machine's memory with no
// simulated cost and without mutating it: writes land in an overlay that
// subsequent reads observe. Verify implementations replay each
// processor's kernel in program order through one Backdoor and compare
// the overlay against the simulated memory.
type Backdoor struct {
	M       *machine.Machine
	overlay map[mem.VA]uint64
}

// NewBackdoor returns an empty-overlay backdoor for m.
func NewBackdoor(m *machine.Machine) *Backdoor {
	return &Backdoor{M: m, overlay: make(map[mem.VA]uint64)}
}

// ReadU64 implements MemIO.
func (b *Backdoor) ReadU64(va mem.VA) uint64 {
	if v, ok := b.overlay[va]; ok {
		return v
	}
	return ReadBackU64(b.M, va)
}

// WriteU64 implements MemIO.
func (b *Backdoor) WriteU64(va mem.VA, v uint64) { b.overlay[va] = v }

// ReadF64 implements MemIO.
func (b *Backdoor) ReadF64(va mem.VA) float64 {
	return math.Float64frombits(b.ReadU64(va))
}

// WriteF64 implements MemIO.
func (b *Backdoor) WriteF64(va mem.VA, v float64) {
	b.overlay[va] = math.Float64bits(v)
}

// Compute implements MemIO as a no-op.
func (b *Backdoor) Compute(int) {}

// Expect compares the replayed float64 at va with the simulated value.
func (b *Backdoor) Expect(va mem.VA, what string) error {
	want := b.ReadF64(va)
	got := ReadBackF64(b.M, va)
	if !ApproxEqual(got, want, 1e-12) {
		return fmt.Errorf("%s at %#x: simulated %v, replay %v", what, va, got, want)
	}
	return nil
}

// ExpectU64 compares the replayed uint64 at va with the simulated value.
func (b *Backdoor) ExpectU64(va mem.VA, what string) error {
	want := b.ReadU64(va)
	got := ReadBackU64(b.M, va)
	if got != want {
		return fmt.Errorf("%s at %#x: simulated %d, replay %d", what, va, got, want)
	}
	return nil
}
