// Package em3d implements the paper's EM3D benchmark (§4): propagation of
// electromagnetic waves through a bipartite graph in which E nodes are
// recomputed from their H neighbours and vice versa, under the
// owner-computes rule. The graph is static; the fraction of edges that
// cross processor boundaries is the tunable parameter swept in the
// paper's Figure 4.
//
// The package provides both the transparent-shared-memory version
// (Program 1 of the paper, runnable on DirNNB and Typhoon/Stache) and
// the custom Typhoon delayed-update protocol of §4 (update.go).
package em3d

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
)

// Config describes one EM3D instance.
type Config struct {
	// TotalNodes is the total graph size, E plus H (Table 3: 64,000
	// small, 192,000 large).
	TotalNodes int
	// Degree is the number of neighbours per node (10 small, 15 large).
	Degree int
	// PctRemote is the percentage of edges whose target lives on a
	// different processor (Figure 4 sweeps 0-50).
	PctRemote int
	// RemoteReuse is how many remote edges share each distinct remote
	// target value on average (several local nodes read the same remote
	// neighbour in the original's clustered graphs); it is the number of
	// DISTINCT remote values — which grows linearly with the remote-edge
	// fraction at constant reuse — that drives communication. Zero
	// selects 3.
	RemoteReuse int
	// Iters is the number of relaxation iterations.
	Iters int
	// Seed drives graph construction.
	Seed uint64
}

// Small returns the Table 3 small data set.
func Small() Config {
	return Config{TotalNodes: 64000, Degree: 10, PctRemote: 20, Iters: 3, Seed: 1}
}

// Large returns the Table 3 large data set.
func Large() Config {
	return Config{TotalNodes: 192000, Degree: 15, PctRemote: 20, Iters: 3, Seed: 1}
}

// Tiny returns a reduced instance for tests.
func Tiny() Config {
	return Config{TotalNodes: 512, Degree: 4, PctRemote: 30, Iters: 3, Seed: 1}
}

// App is the shared-memory EM3D program.
type App struct {
	cfg     Config
	per     int // E (and H) nodes per processor
	valMode int // page mode for the value segments (0 = default protocol)

	eVals, hVals *apps.DistArray // one float64 per graph node
	eW, hW       *apps.DistArray // one float64 weight per edge

	// Adjacency, Go-side: for processor p, edge slot (k*Degree+d) of its
	// k-th local node targets the value address eAdj[p][...] (an H value
	// for the E phase and vice versa). The index form drives Verify.
	eAdj, hAdj       [][]mem.VA
	eAdjIdx, hAdjIdx [][]int32 // global target indices
	eWv, hWv         [][]float64

	nodes int
}

// New returns an EM3D instance.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements apps.App.
func (a *App) Name() string { return "em3d" }

// Config returns the instance configuration.
func (a *App) Config() Config { return a.cfg }

// EdgesPerProcPerIter returns the per-processor edge updates in one full
// iteration (both phases) — the denominator of Figure 4's cycles/edge.
func (a *App) EdgesPerProcPerIter() int { return 2 * a.per * a.cfg.Degree }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine) {
	a.setup(m, 0)
}

// setup builds the graph with the given page mode for the value
// segments (the update protocol passes its custom mode).
func (a *App) setup(m *machine.Machine, valMode int) {
	P := m.Cfg.Nodes
	a.nodes = P
	a.valMode = valMode
	a.per = apps.CeilDiv(a.cfg.TotalNodes/2, P)
	if a.per == 0 {
		a.per = 1
	}
	a.eVals = apps.NewDistArray(m, "em3d.e", a.per, 8, valMode)
	a.hVals = apps.NewDistArray(m, "em3d.h", a.per, 8, valMode)
	a.eW = apps.NewDistArray(m, "em3d.ew", a.per*a.cfg.Degree, 8, 0)
	a.hW = apps.NewDistArray(m, "em3d.hw", a.per*a.cfg.Degree, 8, 0)

	rng := apps.NewRand(a.cfg.Seed)
	build := func(targets *apps.DistArray) ([][]mem.VA, [][]int32, [][]float64) {
		adj := make([][]mem.VA, P)
		idx := make([][]int32, P)
		wv := make([][]float64, P)
		reuse := a.cfg.RemoteReuse
		if reuse <= 0 {
			reuse = 3
		}
		for p := 0; p < P; p++ {
			adj[p] = make([]mem.VA, a.per*a.cfg.Degree)
			idx[p] = make([]int32, a.per*a.cfg.Degree)
			wv[p] = make([]float64, a.per*a.cfg.Degree)
			// Each processor's remote targets come from a pool of
			// distinct values on other processors, sized so each is
			// shared by ~reuse edges: the count of distinct remote
			// values — the quantity that drives communication — grows
			// linearly with the remote-edge fraction.
			expRemote := a.per * a.cfg.Degree * a.cfg.PctRemote / 100
			poolSize := expRemote / reuse
			if expRemote > 0 && poolSize == 0 {
				poolSize = 1
			}
			type tgt struct{ q, t int }
			pool := make([]tgt, poolSize)
			for i := range pool {
				q := rng.Intn(P - 1)
				if q >= p {
					q++
				}
				pool[i] = tgt{q: q, t: rng.Intn(a.per)}
			}
			for k := 0; k < a.per; k++ {
				for d := 0; d < a.cfg.Degree; d++ {
					q := p
					t := rng.Intn(a.per)
					if P > 1 && len(pool) > 0 && rng.Intn(100) < a.cfg.PctRemote {
						pick := pool[rng.Intn(len(pool))]
						q, t = pick.q, pick.t
					}
					slot := k*a.cfg.Degree + d
					adj[p][slot] = targets.At(q, t)
					idx[p][slot] = int32(q*a.per + t)
					wv[p][slot] = 0.001 + 0.01*rng.Float64()
				}
			}
		}
		return adj, idx, wv
	}
	a.eAdj, a.eAdjIdx, a.eWv = build(a.hVals) // E nodes read H values
	a.hAdj, a.hAdjIdx, a.hWv = build(a.eVals) // H nodes read E values
}

// initVal is the deterministic initial value of a graph node.
func initVal(kind, global int) float64 {
	return float64((global*37+kind*11)%1000)/16.0 + 1.0
}

// Body implements apps.App: Program 1 of the paper, plus the symmetric H
// phase, under the owner-computes rule with barrier separation.
func (a *App) Body(p *machine.Proc) {
	pid := p.ID()
	D := a.cfg.Degree

	// Initialise local values and weights (owner writes, home-local).
	for k := 0; k < a.per; k++ {
		p.WriteF64(a.eVals.At(pid, k), initVal(0, pid*a.per+k))
		p.WriteF64(a.hVals.At(pid, k), initVal(1, pid*a.per+k))
	}
	for s := 0; s < a.per*D; s++ {
		p.WriteF64(a.eW.At(pid, s), a.eWv[pid][s])
		p.WriteF64(a.hW.At(pid, s), a.hWv[pid][s])
	}
	p.Barrier()
	p.ROIStart()
	for it := 0; it < a.cfg.Iters; it++ {
		a.phase(p, a.eVals, a.eAdj[pid], a.eW)
		p.Barrier()
		a.phase(p, a.hVals, a.hAdj[pid], a.hW)
		p.Barrier()
	}
	p.ROIEnd()
}

// phase runs compute_E (or compute_H): for every local node, subtract
// the weighted sum of its neighbours' values.
func (a *App) phase(p *machine.Proc, vals *apps.DistArray, adj []mem.VA, w *apps.DistArray) {
	pid := p.ID()
	D := a.cfg.Degree
	for k := 0; k < a.per; k++ {
		v := p.ReadF64(vals.At(pid, k))
		base := k * D
		for d := 0; d < D; d++ {
			nv := p.ReadF64(adj[base+d])
			wt := p.ReadF64(w.At(pid, base+d))
			// Multiply + subtract plus the loop's index, pointer, and
			// branch instructions (Program 1 charges one cycle per
			// instruction, and the pointer chase is real work).
			p.Compute(6)
			v -= nv * wt
		}
		p.WriteF64(vals.At(pid, k), v)
	}
}

// Verify implements apps.App: it replays the computation sequentially in
// Go (identical operation order, so results are bit-exact) and compares
// every graph node value.
func (a *App) Verify(m *machine.Machine) error {
	P := a.nodes
	D := a.cfg.Degree
	e := make([]float64, P*a.per)
	h := make([]float64, P*a.per)
	for g := range e {
		e[g] = initVal(0, g)
		h[g] = initVal(1, g)
	}
	for it := 0; it < a.cfg.Iters; it++ {
		next := make([]float64, len(e))
		copy(next, e)
		for p := 0; p < P; p++ {
			for k := 0; k < a.per; k++ {
				v := next[p*a.per+k]
				for d := 0; d < D; d++ {
					slot := k*D + d
					v -= h[a.eAdjIdx[p][slot]] * a.eWv[p][slot]
				}
				next[p*a.per+k] = v
			}
		}
		e = next
		nextH := make([]float64, len(h))
		copy(nextH, h)
		for p := 0; p < P; p++ {
			for k := 0; k < a.per; k++ {
				v := nextH[p*a.per+k]
				for d := 0; d < D; d++ {
					slot := k*D + d
					v -= e[a.hAdjIdx[p][slot]] * a.hWv[p][slot]
				}
				nextH[p*a.per+k] = v
			}
		}
		h = nextH
	}
	for p := 0; p < P; p++ {
		for k := 0; k < a.per; k++ {
			if got := apps.ReadBackF64(m, a.eVals.At(p, k)); !apps.ApproxEqual(got, e[p*a.per+k], 1e-12) {
				return fmt.Errorf("em3d: e[%d,%d] = %v, want %v", p, k, got, e[p*a.per+k])
			}
			if got := apps.ReadBackF64(m, a.hVals.At(p, k)); !apps.ApproxEqual(got, h[p*a.per+k], 1e-12) {
				return fmt.Errorf("em3d: h[%d,%d] = %v, want %v", p, k, got, h[p*a.per+k])
			}
		}
	}
	return nil
}
