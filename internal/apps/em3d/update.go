package em3d

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

// The custom EM3D coherence protocol of paper §4: a delayed-update
// protocol in which cache blocks become inconsistent within a step and
// are explicitly updated at the step's end. Two new page types — a
// custom home page and a custom stache page — hold the graph values.
// Home handlers keep a list of all outstanding copies; the end-of-step
// "barrier" is replaced by a flush that pushes modified values to every
// copy, with no acknowledgements: each processor knows how many remote
// blocks it has stached and simply counts arriving updates (the paper's
// fuzzy barrier in the handlers).
//
// Registration epochs make the counting exact: a copy fetched while the
// home has already flushed k times starts receiving updates at flush
// k+1, so the receiver activates it one wait-round later.
const (
	// ModeUpdateHome is the custom home-page mode.
	ModeUpdateHome = stache.ModeNextFree
	// ModeUpdateRemote is the custom stache-page mode.
	ModeUpdateRemote = stache.ModeNextFree + 1
)

// Custom message handlers.
const (
	hUpdGetS uint32 = stache.HNextFree + iota
	hUpdData
	hUpdFlush
	hUpdBlock
)

// updPage is the custom home page's copy list: per block, the nodes
// holding a stache copy.
type updPage struct {
	baseVA  mem.VA
	sharers [][]int16
}

// updSegState is one node's receive-side accounting for one custom
// segment.
type updSegState struct {
	received      uint64 // cumulative update blocks received
	target        uint64 // cumulative blocks expected through the current wait round
	waitRound     int
	runningActive int
	regByEpoch    map[int]int
	waiter        *machine.Proc
}

// updNode is one node's protocol state.
type updNode struct {
	segs         map[mem.VA]*updSegState // keyed by segment base
	homePages    map[mem.VA][]mem.VA     // segment base -> home page VAs on this node
	flushEpoch   map[mem.VA]int          // segment base -> flushes performed as home
	pendingValid bool
	pendingVA    mem.VA
}

// UpdateProtocol composes Stache (which keeps serving ordinary segments)
// with the delayed-update handlers for the graph-value segments.
type UpdateProtocol struct {
	*stache.Protocol
	sys *typhoon.System
	m   *machine.Machine
	bs  int
	per []*updNode
}

var _ typhoon.Protocol = (*UpdateProtocol)(nil)

// NewUpdateProtocol returns the EM3D custom protocol.
func NewUpdateProtocol() *UpdateProtocol {
	return &UpdateProtocol{Protocol: stache.New()}
}

// Name implements typhoon.Protocol.
func (u *UpdateProtocol) Name() string { return "Update" }

// Attach implements typhoon.Protocol.
func (u *UpdateProtocol) Attach(sys *typhoon.System) {
	u.Protocol.Attach(sys)
	u.sys = sys
	u.m = sys.M
	u.bs = sys.M.Cfg.BlockSize
	u.per = make([]*updNode, u.m.Cfg.Nodes)
	for i := range u.per {
		u.per[i] = &updNode{
			segs:       make(map[mem.VA]*updSegState),
			homePages:  make(map[mem.VA][]mem.VA),
			flushEpoch: make(map[mem.VA]int),
		}
	}
	sys.RegisterPageMode(ModeUpdateHome, typhoon.PageModeOps{
		PageFault: u.pageFault,
		BlockFault: func(np *typhoon.NP, f typhoon.Fault) {
			panic(fmt.Sprintf("em3d-update: home block fault on %#x; home tags stay ReadWrite", f.VA))
		},
	})
	sys.RegisterPageMode(ModeUpdateRemote, typhoon.PageModeOps{
		PageFault: func(_ *typhoon.System, p *machine.Proc, va mem.VA, write bool) {
			panic(fmt.Sprintf("em3d-update: page fault on mapped custom stache page %#x", va))
		},
		BlockFault: u.remoteFault,
	})
	sys.RegisterHandler(hUpdGetS, u.handleGetS)
	sys.RegisterHandler(hUpdData, u.handleData)
	sys.RegisterHandler(hUpdFlush, u.handleFlush)
	sys.RegisterHandler(hUpdBlock, u.handleBlock)
}

// SetupSegment implements typhoon.Protocol: custom-mode segments get
// home pages with copy lists; everything else is plain Stache.
func (u *UpdateProtocol) SetupSegment(seg *vm.Segment) {
	if seg.Mode != ModeUpdateHome {
		u.Protocol.SetupSegment(seg)
		return
	}
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + mem.VA(i*mem.PageSize)
		home := u.m.VM.Home(va)
		pa, err := u.m.Mems[home].AllocFrame(mem.TagReadWrite)
		if err != nil {
			panic(fmt.Sprintf("em3d-update: home %d out of frames: %v", home, err))
		}
		frame := u.m.Mems[home].Frame(pa)
		frame.Mode = ModeUpdateHome
		frame.Home = home
		frame.User = &updPage{
			baseVA:  va,
			sharers: make([][]int16, u.m.Mems[home].BlocksPerPage()),
		}
		u.m.VM.Table(home).Map(va.VPN(), vm.PTE{PA: pa, Writable: true, Mode: ModeUpdateHome})
		un := u.per[home]
		un.homePages[seg.Base] = append(un.homePages[seg.Base], va)
	}
}

// segBaseOf returns the base of the custom segment containing va.
func (u *UpdateProtocol) segBaseOf(va mem.VA) mem.VA {
	for _, seg := range u.m.VM.Segments() {
		if seg.Mode == ModeUpdateHome && va >= seg.Base && va < seg.End() {
			return seg.Base
		}
	}
	panic(fmt.Sprintf("em3d-update: %#x not in a custom segment", va))
}

func (u *UpdateProtocol) segState(node int, segBase mem.VA) *updSegState {
	un := u.per[node]
	st, ok := un.segs[segBase]
	if !ok {
		st = &updSegState{regByEpoch: make(map[int]int)}
		un.segs[segBase] = st
	}
	return st
}

// pageFault creates a custom stache page on the faulting node (like
// Stache's, without replacement: the graph is the working set).
func (u *UpdateProtocol) pageFault(sys *typhoon.System, p *machine.Proc, va mem.VA, write bool) {
	node := p.ID()
	p.Compute(100)
	home := u.m.VM.Home(va)
	if home == node {
		panic(fmt.Sprintf("em3d-update: node %d faulted on its own home page %#x", node, va))
	}
	pa, err := u.m.Mems[node].AllocFrame(mem.TagInvalid)
	if err != nil {
		panic(fmt.Sprintf("em3d-update: node %d out of frames: %v", node, err))
	}
	frame := u.m.Mems[node].Frame(pa)
	frame.Mode = ModeUpdateRemote
	frame.Home = home
	u.m.VM.Table(node).Map(va.VPN(), vm.PTE{PA: pa, Writable: true, Mode: ModeUpdateRemote})
}

// remoteFault requests a copy of the block from the home; writes to
// remote graph values never happen under the owner-computes rule.
func (u *UpdateProtocol) remoteFault(np *typhoon.NP, f typhoon.Fault) {
	if f.Write {
		panic(fmt.Sprintf("em3d-update: write fault on remote graph value %#x violates owner-computes", f.VA))
	}
	un := u.per[np.Node()]
	if un.pendingValid {
		panic("em3d-update: second outstanding fault")
	}
	va := f.VA &^ mem.VA(u.bs-1)
	un.pendingValid = true
	un.pendingVA = va
	home := np.FrameOf(f.VA).Home
	np.SetTag(va, mem.TagBusy)
	np.Charge(7)
	np.SendRequest(home, hUpdGetS, []uint64{uint64(va)}, nil)
}

// handleGetS registers the copy in the home's copy list and replies with
// the data and the current flush epoch.
func (u *UpdateProtocol) handleGetS(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	pa, _, ok := np.Translate(va)
	if !ok {
		panic(fmt.Sprintf("em3d-update: GETS for unmapped home block %#x", va))
	}
	page := np.Mem().Frame(pa).User.(*updPage)
	bi := int(va.PageOffset()) / u.bs
	page.sharers[bi] = append(page.sharers[bi], int16(pkt.Src))
	segBase := u.segBaseOf(va)
	epoch := u.per[np.Node()].flushEpoch[segBase]
	data := np.ForceReadBlockScratch(va)
	np.MemRef(mem.MakePA(np.Node(), uint64(1)<<39|(uint64(va)&((1<<38)-1))), true)
	np.Charge(10)
	np.SendReply(pkt.Src, hUpdData, []uint64{uint64(va), uint64(epoch)}, data)
}

// handleData installs the read-only copy, records its activation epoch,
// and restarts the thread.
func (u *UpdateProtocol) handleData(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	epoch := int(pkt.Args[1])
	un := u.per[np.Node()]
	if !un.pendingValid || un.pendingVA != va {
		panic(fmt.Sprintf("em3d-update: unexpected data for %#x", va))
	}
	np.ForceWriteBlock(va, pkt.Data)
	np.SetTag(va, mem.TagReadOnly)
	un.pendingValid = false
	st := u.segState(np.Node(), u.segBaseOf(va))
	st.regByEpoch[epoch]++
	np.Charge(12)
	np.Resume(np.Proc())
}

// handleFlush walks this node's home pages of the segment and pushes the
// current block values to every registered copy — the paper's
// "function that traverses the list and sends modified values".
func (u *UpdateProtocol) handleFlush(np *typhoon.NP, pkt *network.Packet) {
	segBase := mem.VA(pkt.Args[0])
	un := u.per[np.Node()]
	un.flushEpoch[segBase]++
	for _, pageVA := range un.homePages[segBase] {
		pa, _, ok := np.Translate(pageVA)
		if !ok {
			panic("em3d-update: home page unmapped during flush")
		}
		page := np.Mem().Frame(pa).User.(*updPage)
		for bi, sharers := range page.sharers {
			if len(sharers) == 0 {
				continue
			}
			va := pageVA + mem.VA(bi*u.bs)
			data := np.ForceReadBlockScratch(va)
			np.Charge(2)
			for _, s := range sharers {
				np.Charge(2)
				np.SendRequest(int(s), hUpdBlock, []uint64{uint64(va)}, data)
			}
		}
	}
}

// handleBlock applies one pushed update and advances the fuzzy barrier.
func (u *UpdateProtocol) handleBlock(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	np.ForceWriteBlock(va, pkt.Data)
	np.Charge(4)
	st := u.segState(np.Node(), u.segBaseOf(va))
	np.Sync() // the fuzzy-barrier wait polls received without a timed op
	st.received++
	if st.waiter != nil && st.received >= st.target {
		w := st.waiter
		st.waiter = nil
		w.Ctx.Unpark(np.Time())
	}
}

// FlushAndWait replaces the end-of-phase barrier (§4): the processor
// asks its NP to push updates for its home pages of the segment, then
// waits until it has received the updates for every copy it holds whose
// registration predates this round.
func (u *UpdateProtocol) FlushAndWait(p *machine.Proc, seg *vm.Segment) {
	u.sys.Send(p, network.VNetRequest, p.ID(), hUpdFlush, []uint64{uint64(seg.Base)}, nil)
	st := u.segState(p.ID(), seg.Base)
	st.waitRound++
	st.runningActive += st.regByEpoch[st.waitRound-1]
	st.target += uint64(st.runningActive)
	p.Ctx.Advance(4)
	for st.received < st.target {
		st.waiter = p
		p.Ctx.Park("em3d-update fuzzy barrier")
	}
	st.waiter = nil
}

// UpdateApp runs EM3D under the custom delayed-update protocol: the same
// computation as App, with the end-of-phase barriers replaced by the
// protocol's counted update flushes.
type UpdateApp struct {
	*App
	upd *UpdateProtocol
}

// NewUpdateApp pairs an EM3D instance with its custom protocol. The
// protocol must be the one attached to the machine the app will run on.
func NewUpdateApp(cfg Config, upd *UpdateProtocol) *UpdateApp {
	return &UpdateApp{App: New(cfg), upd: upd}
}

// Name implements apps.App.
func (ua *UpdateApp) Name() string { return "em3d-update" }

// Setup implements apps.App: the graph-value segments use the custom
// page mode; weights stay under plain Stache.
func (ua *UpdateApp) Setup(m *machine.Machine) {
	ua.App.setup(m, ModeUpdateHome)
}

// Body implements apps.App.
func (ua *UpdateApp) Body(p *machine.Proc) {
	pid := p.ID()
	D := ua.cfg.Degree
	for k := 0; k < ua.per; k++ {
		p.WriteF64(ua.eVals.At(pid, k), initVal(0, pid*ua.per+k))
		p.WriteF64(ua.hVals.At(pid, k), initVal(1, pid*ua.per+k))
	}
	for s := 0; s < ua.per*D; s++ {
		p.WriteF64(ua.eW.At(pid, s), ua.eWv[pid][s])
		p.WriteF64(ua.hW.At(pid, s), ua.hWv[pid][s])
	}
	p.Barrier()
	p.ROIStart()
	for it := 0; it < ua.cfg.Iters; it++ {
		ua.phase(p, ua.eVals, ua.eAdj[pid], ua.eW)
		if it == 0 {
			// First iteration only: H-phase first-touch fetches of
			// E values must not observe a home still mid-E-phase.
			// After this, the graph is fully stached and the counted
			// updates alone synchronize (the paper's fuzzy barrier).
			p.Barrier()
		}
		ua.upd.FlushAndWait(p, ua.eVals.Seg)
		ua.phase(p, ua.hVals, ua.hAdj[pid], ua.hW)
		ua.upd.FlushAndWait(p, ua.hVals.Seg)
	}
	p.ROIEnd()
}
