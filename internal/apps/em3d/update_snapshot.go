package em3d

import (
	"hash/fnv"
	"sort"

	"github.com/tempest-sim/tempest/internal/mem"
)

// StateDigest folds the update protocol's full state into one hash: the
// embedded Stache digest (the ordinary segments) plus the update layer's
// per-node receive accounting, flush epochs, and every custom home
// page's per-block copy lists. Map keys are visited sorted, so the value
// is independent of map iteration order. Call only while the machine is
// not running.
func (u *UpdateProtocol) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(u.Protocol.StateDigest())
	sortedVAs := func(n int, keys func(int) []mem.VA) []mem.VA {
		vas := keys(n)
		sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
		return vas
	}
	for node, un := range u.per {
		w(uint64(node))
		if un.pendingValid {
			w(uint64(un.pendingVA) | 1<<63)
		}
		for _, segBase := range sortedVAs(node, func(int) []mem.VA {
			out := make([]mem.VA, 0, len(un.segs))
			for va := range un.segs {
				out = append(out, va)
			}
			return out
		}) {
			st := un.segs[segBase]
			w(uint64(segBase))
			w(st.received)
			w(st.target)
			w(uint64(st.waitRound)<<32 | uint64(uint32(st.runningActive)))
			epochs := make([]int, 0, len(st.regByEpoch))
			for e := range st.regByEpoch {
				epochs = append(epochs, e)
			}
			sort.Ints(epochs)
			for _, e := range epochs {
				w(uint64(e)<<32 | uint64(uint32(st.regByEpoch[e])))
			}
			w(^uint64(0))
		}
		for _, segBase := range sortedVAs(node, func(int) []mem.VA {
			out := make([]mem.VA, 0, len(un.flushEpoch))
			for va := range un.flushEpoch {
				out = append(out, va)
			}
			return out
		}) {
			w(uint64(segBase))
			w(uint64(un.flushEpoch[segBase]))
		}
		w(^uint64(0))
		for _, segBase := range sortedVAs(node, func(int) []mem.VA {
			out := make([]mem.VA, 0, len(un.homePages))
			for va := range un.homePages {
				out = append(out, va)
			}
			return out
		}) {
			for _, pageVA := range un.homePages[segBase] {
				pte, ok := u.m.VM.Table(node).Lookup(pageVA.VPN())
				if !ok {
					continue
				}
				pg, ok := u.m.Mems[node].Frame(pte.PA).User.(*updPage)
				if !ok {
					continue
				}
				w(uint64(pg.baseVA))
				for _, sharers := range pg.sharers {
					for _, s := range sharers {
						w(uint64(s) + 1)
					}
					w(^uint64(0))
				}
			}
		}
	}
	return h.Sum64()
}
