package em3d

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

func cfg4() machine.Config {
	return machine.Config{Nodes: 4, CacheSize: 4096, Seed: 1}
}

func TestEM3DOnDirNNB(t *testing.T) {
	m := machine.New(cfg4())
	dirnnb.New(m)
	app := New(Tiny())
	app.Setup(m)
	if _, err := m.Run(app.Body); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := app.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestEM3DOnTyphoonStache(t *testing.T) {
	m := machine.New(cfg4())
	st := stache.New()
	typhoon.New(m, st)
	app := New(Tiny())
	app.Setup(m)
	if _, err := m.Run(app.Body); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if err := app.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestEM3DOnTyphoonUpdate(t *testing.T) {
	m := machine.New(cfg4())
	upd := NewUpdateProtocol()
	typhoon.New(m, upd)
	app := NewUpdateApp(Tiny(), upd)
	app.Setup(m)
	if _, err := m.Run(app.Body); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := app.Verify(m); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateBeatsStacheOnRemoteEdges is the Figure 4 shape at one point:
// with a substantial remote-edge fraction, the custom update protocol
// must finish faster than both invalidation-based systems.
func TestUpdateBeatsStacheOnRemoteEdges(t *testing.T) {
	c := Tiny()
	c.PctRemote = 50
	c.Iters = 4

	exec := func(build func(m *machine.Machine) runnable) sim.Time {
		m := machine.New(cfg4())
		app := build(m)
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := app.Verify(m); err != nil {
			t.Fatal(err)
		}
		return res.ROICycles
	}

	stacheT := exec(func(m *machine.Machine) runnable {
		st := stache.New()
		typhoon.New(m, st)
		return New(c)
	})
	updT := exec(func(m *machine.Machine) runnable {
		u := NewUpdateProtocol()
		typhoon.New(m, u)
		return NewUpdateApp(c, u)
	})
	dirT := exec(func(m *machine.Machine) runnable {
		dirnnb.New(m)
		return New(c)
	})

	t.Logf("cycles: dirnnb=%d stache=%d update=%d", dirT, stacheT, updT)
	if updT >= stacheT {
		t.Errorf("update (%d) not faster than stache (%d)", updT, stacheT)
	}
	if updT >= dirT {
		t.Errorf("update (%d) not faster than dirnnb (%d)", updT, dirT)
	}
}

// apps is the minimal interface the comparison needs.
type runnable interface {
	Setup(m *machine.Machine)
	Body(p *machine.Proc)
	Verify(m *machine.Machine) error
}

func TestEM3DDeterministic(t *testing.T) {
	exec := func() sim.Time {
		m := machine.New(cfg4())
		st := stache.New()
		typhoon.New(m, st)
		app := New(Tiny())
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Cycles
	}
	if a, b := exec(), exec(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// netMessages counts packets that actually crossed the network (the
// paper's message counts exclude a processor's hints to its own NP,
// which short-circuit the network).
func netMessages(res machine.Result) uint64 {
	var msgs uint64
	for _, v := range res.Net.VNets {
		msgs += v.Packets
	}
	return msgs - res.Net.LocalSends
}

// TestCheckInVariantCorrectAndCheaperThanPlain reproduces the paper §4
// argument chain at one sweep point: check-in annotations reduce
// coherence messages versus plain Stache, and the custom update protocol
// reduces them further.
func TestCheckInProtocolChain(t *testing.T) {
	c := Tiny()
	c.PctRemote = 40
	c.Iters = 4

	msgs := map[string]uint64{}
	cycles := map[string]uint64{}

	// Plain Stache.
	{
		m := machine.New(cfg4())
		st := stache.New()
		typhoon.New(m, st)
		app := New(c)
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(m); err != nil {
			t.Fatal(err)
		}
		msgs["stache"] = netMessages(res)
		cycles["stache"] = uint64(res.ROICycles)
	}
	// Stache + check-in annotations.
	{
		m := machine.New(cfg4())
		st := stache.New()
		typhoon.New(m, st)
		app := NewCheckInApp(c, st)
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(m); err != nil {
			t.Fatal(err)
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if res.Counters.Get("stache.checkins") == 0 {
			t.Fatal("no check-ins recorded")
		}
		msgs["checkin"] = netMessages(res)
		cycles["checkin"] = uint64(res.ROICycles)
	}
	// Custom update protocol.
	{
		m := machine.New(cfg4())
		u := NewUpdateProtocol()
		typhoon.New(m, u)
		app := NewUpdateApp(c, u)
		app.Setup(m)
		res, err := m.Run(app.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(m); err != nil {
			t.Fatal(err)
		}
		msgs["update"] = netMessages(res)
		cycles["update"] = uint64(res.ROICycles)
	}

	t.Logf("messages: stache=%d checkin=%d update=%d", msgs["stache"], msgs["checkin"], msgs["update"])
	t.Logf("cycles:   stache=%d checkin=%d update=%d", cycles["stache"], cycles["checkin"], cycles["update"])
	if msgs["checkin"] >= msgs["stache"] {
		t.Errorf("check-in should reduce messages: %d vs %d", msgs["checkin"], msgs["stache"])
	}
	if msgs["update"] >= msgs["checkin"] {
		t.Errorf("update should reduce messages below check-in: %d vs %d", msgs["update"], msgs["checkin"])
	}
}
