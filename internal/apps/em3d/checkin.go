package em3d

import (
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/stache"
)

// CheckInApp is the paper's §4 middle option: the plain shared-memory
// EM3D annotated with check-in operations. After each phase a processor
// checks in the remote blocks it consumed, so the owners' next writes
// need no invalidation/acknowledgement round trips — at the price of
// refetching the blocks next iteration. The paper: check-ins "cut
// communication and latency by replacing the invalidation/acknowledgment
// with an asynchronous notification, but cannot attain the minimum of
// one message" the custom update protocol reaches.
type CheckInApp struct {
	*App
	st *stache.Protocol

	// Per processor: the unique remote blocks its E phase reads (H
	// values) and its H phase reads (E values).
	remoteH, remoteE [][]mem.VA
}

// NewCheckInApp pairs an EM3D instance with the Stache protocol whose
// CheckIn operation it annotates.
func NewCheckInApp(cfg Config, st *stache.Protocol) *CheckInApp {
	return &CheckInApp{App: New(cfg), st: st}
}

// Name implements apps.App.
func (ca *CheckInApp) Name() string { return "em3d-checkin" }

// Setup implements apps.App.
func (ca *CheckInApp) Setup(m *machine.Machine) {
	ca.App.Setup(m)
	block := func(va mem.VA) mem.VA { return va &^ mem.VA(m.Cfg.BlockSize-1) }
	ca.remoteH = make([][]mem.VA, ca.nodes)
	ca.remoteE = make([][]mem.VA, ca.nodes)
	for p := 0; p < ca.nodes; p++ {
		seenH := map[mem.VA]bool{}
		for _, target := range ca.eAdj[p] {
			b := block(target)
			if !seenH[b] && m.VM.Home(b) != p {
				seenH[b] = true
				ca.remoteH[p] = append(ca.remoteH[p], b)
			}
		}
		seenE := map[mem.VA]bool{}
		for _, target := range ca.hAdj[p] {
			b := block(target)
			if !seenE[b] && m.VM.Home(b) != p {
				seenE[b] = true
				ca.remoteE[p] = append(ca.remoteE[p], b)
			}
		}
	}
}

// Body implements apps.App.
func (ca *CheckInApp) Body(p *machine.Proc) {
	pid := p.ID()
	D := ca.cfg.Degree
	for k := 0; k < ca.per; k++ {
		p.WriteF64(ca.eVals.At(pid, k), initVal(0, pid*ca.per+k))
		p.WriteF64(ca.hVals.At(pid, k), initVal(1, pid*ca.per+k))
	}
	for s := 0; s < ca.per*D; s++ {
		p.WriteF64(ca.eW.At(pid, s), ca.eWv[pid][s])
		p.WriteF64(ca.hW.At(pid, s), ca.hWv[pid][s])
	}
	p.Barrier()
	p.ROIStart()
	for it := 0; it < ca.cfg.Iters; it++ {
		ca.phase(p, ca.eVals, ca.eAdj[pid], ca.eW)
		// Done with the H copies for this iteration: hand them back so
		// the owners' updates need no invalidations.
		for _, b := range ca.remoteH[pid] {
			ca.st.CheckIn(p, b)
		}
		p.Barrier()
		ca.phase(p, ca.hVals, ca.hAdj[pid], ca.hW)
		for _, b := range ca.remoteE[pid] {
			ca.st.CheckIn(p, b)
		}
		p.Barrier()
	}
	p.ROIEnd()
}
