package apps_test

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/appbt"
	"github.com/tempest-sim/tempest/internal/apps/barnes"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/mp3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// tiny returns the reduced instances of all five benchmarks.
func tiny() []apps.App {
	return []apps.App{
		appbt.New(appbt.Tiny()),
		barnes.New(barnes.Tiny()),
		mp3d.New(mp3d.Tiny()),
		ocean.New(ocean.Tiny()),
		em3d.New(em3d.Tiny()),
	}
}

func runOn(t *testing.T, app apps.App, system string, nodes int) machine.Result {
	t.Helper()
	cfg := machine.Config{Nodes: nodes, CacheSize: 4096, Seed: 1}
	m := machine.New(cfg)
	var st *stache.Protocol
	switch system {
	case "dirnnb":
		dirnnb.New(m)
	case "stache":
		st = stache.New()
		typhoon.New(m, st)
	default:
		t.Fatalf("unknown system %q", system)
	}
	app.Setup(m)
	res, err := m.Run(app.Body)
	if err != nil {
		t.Fatalf("%s on %s: Run: %v", app.Name(), system, err)
	}
	if st != nil {
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("%s on %s: invariants: %v", app.Name(), system, err)
		}
	}
	if err := app.Verify(m); err != nil {
		t.Fatalf("%s on %s: verify: %v", app.Name(), system, err)
	}
	return res
}

func TestAllAppsOnDirNNB(t *testing.T) {
	for _, app := range tiny() {
		app := app
		t.Run(app.Name(), func(t *testing.T) { runOn(t, app, "dirnnb", 4) })
	}
}

func TestAllAppsOnTyphoonStache(t *testing.T) {
	for _, app := range tiny() {
		app := app
		t.Run(app.Name(), func(t *testing.T) { runOn(t, app, "stache", 4) })
	}
}

func TestAppsOnEightNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, app := range tiny() {
		app := app
		t.Run(app.Name(), func(t *testing.T) { runOn(t, app, "stache", 8) })
	}
}

func TestAppsROIMeasured(t *testing.T) {
	app := ocean.New(ocean.Tiny())
	res := runOn(t, app, "dirnnb", 4)
	if res.ROICycles == 0 || res.ROICycles > res.Cycles {
		t.Fatalf("ROI = %d of %d total", res.ROICycles, res.Cycles)
	}
}

func TestDistArrayLayout(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 4, CacheSize: 4096})
	dirnnb.New(m)
	a := apps.NewDistArray(m, "x", 100, 8, 0)
	// Each proc's chunk starts on its own page and is homed there.
	for p := 0; p < 4; p++ {
		va := a.At(p, 0)
		if va.PageOffset() != 0 {
			t.Fatalf("proc %d chunk not page-aligned", p)
		}
		if home := m.VM.Home(va); home != p {
			t.Fatalf("proc %d chunk homed on %d", p, home)
		}
		if home := m.VM.Home(a.At(p, 99)); home != p {
			t.Fatalf("proc %d chunk end homed on %d", p, home)
		}
	}
	if a.AtGlobal(150) != a.At(1, 50) {
		t.Fatal("AtGlobal mapping wrong")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := apps.NewRand(7), apps.NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("PRNG not deterministic")
		}
	}
	c := apps.NewRand(8)
	same := true
	a2 := apps.NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestBackdoorOverlay(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096})
	dirnnb.New(m)
	a := apps.NewDistArray(m, "x", 4, 8, 0)
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteF64(a.At(0, 0), 3.5)
		}
	}); err != nil {
		t.Fatal(err)
	}
	b := apps.NewBackdoor(m)
	if got := b.ReadF64(a.At(0, 0)); got != 3.5 {
		t.Fatalf("backdoor read %v", got)
	}
	b.WriteF64(a.At(0, 0), 9.0)
	if got := b.ReadF64(a.At(0, 0)); got != 9.0 {
		t.Fatalf("overlay read %v", got)
	}
	// The simulated memory is untouched.
	if got := apps.ReadBackF64(m, a.At(0, 0)); got != 3.5 {
		t.Fatalf("simulated memory changed to %v", got)
	}
	if err := b.Expect(a.At(0, 0), "x"); err == nil {
		t.Fatal("Expect should fail after divergent overlay write")
	}
}
