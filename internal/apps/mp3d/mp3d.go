// Package mp3d implements the MP3D benchmark from the SPLASH suite
// (Table 3: 10,000 molecules small, 50,000 large) as a
// faithful-in-spirit kernel: a rarefied-fluid wind-tunnel simulation in
// which particles stream through a three-dimensional grid of space
// cells. Particles are distributed across processors; every step each
// processor moves its particles (local reads and writes) and scatters
// statistics into the space-cell array, whose cells are touched by
// whichever processors' particles currently occupy them. That scattered
// read-modify-write traffic on the space array is MP3D's signature
// coherence load (and, as in the original, the cell counters are updated
// without locks — they are statistics, not inputs to the trajectories).
package mp3d

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
)

// Config describes one MP3D instance.
type Config struct {
	// Mols is the total particle count (Table 3: 10,000 / 50,000).
	Mols int
	// Cells is the space-array dimension (Cells^3 cells).
	Cells int
	// Steps is the number of time steps.
	Steps int
	// Seed drives the initial particle distribution.
	Seed uint64
}

// Small returns the Table 3 small data set.
func Small() Config { return Config{Mols: 10000, Cells: 12, Steps: 4, Seed: 1} }

// Large returns the Table 3 large data set.
func Large() Config { return Config{Mols: 50000, Cells: 16, Steps: 4, Seed: 1} }

// Tiny returns a reduced instance for tests.
func Tiny() Config { return Config{Mols: 400, Cells: 6, Steps: 3, Seed: 1} }

// Particle layout: x, y, z, vx, vy, vz (six float64 = 48 bytes, padded
// to 64 so two particles share no coherence block... they do at 32-byte
// blocks, which is exactly the original's false-sharing behaviour; keep
// 48 bytes).
const partWords = 6

// Cell layout: hit count plus three momentum sums (32 bytes = one
// coherence block per cell).
const cellWords = 4

// App is the MP3D program.
type App struct {
	cfg   Config
	nodes int
	per   int
	parts *apps.DistArray
	cells *apps.DistArray
	inits [][]float64 // per particle: initial state, Go-side
	space float64     // domain size
}

// New returns an MP3D instance.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements apps.App.
func (a *App) Name() string { return "mp3d" }

// Config returns the instance configuration.
func (a *App) Config() Config { return a.cfg }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine) {
	a.nodes = m.Cfg.Nodes
	a.per = apps.CeilDiv(a.cfg.Mols, a.nodes)
	a.space = float64(a.cfg.Cells)
	a.parts = apps.NewDistArrayNaive(m, "mp3d.parts", a.per*partWords, 8, 0)
	// The space array is deliberately spread round-robin across homes:
	// particles wander, so cell ownership has no stable node affinity.
	perProcCells := apps.CeilDiv(a.cfg.Cells*a.cfg.Cells*a.cfg.Cells, a.nodes)
	a.cells = apps.NewDistArrayNaive(m, "mp3d.cells", perProcCells*cellWords, 8, 0)

	rng := apps.NewRand(a.cfg.Seed)
	a.inits = make([][]float64, a.nodes*a.per)
	for i := range a.inits {
		a.inits[i] = []float64{
			rng.Float64() * a.space,
			rng.Float64() * a.space,
			rng.Float64() * a.space,
			(rng.Float64() - 0.3) * 0.9, // drift along +x: the wind tunnel
			(rng.Float64() - 0.5) * 0.4,
			(rng.Float64() - 0.5) * 0.4,
		}
	}
}

func (a *App) partAt(proc, k, w int) mem.VA { return a.parts.At(proc, k*partWords+w) }

func (a *App) cellAt(idx, w int) mem.VA { return a.cells.AtGlobal(idx*cellWords + w) }

func (a *App) cellIndex(x, y, z float64) int {
	cx, cy, cz := int(x), int(y), int(z)
	n := a.cfg.Cells
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	return (clamp(cz)*n+clamp(cy))*n + clamp(cx)
}

func (a *App) initKernel(io apps.MemIO, proc int) {
	for k := 0; k < a.per; k++ {
		st := a.inits[proc*a.per+k]
		for w := 0; w < partWords; w++ {
			io.WriteF64(a.partAt(proc, k, w), st[w])
		}
	}
}

// moveKernel advances the owner's particles one step: load state, move,
// reflect at the walls (re-injecting at the inlet when a particle leaves
// the outlet), and scatter a sample into the occupied space cell.
func (a *App) moveKernel(io apps.MemIO, proc int) {
	for k := 0; k < a.per; k++ {
		var s [partWords]float64
		for w := 0; w < partWords; w++ {
			s[w] = io.ReadF64(a.partAt(proc, k, w))
		}
		// Advection, wall tests, and cell-index arithmetic: the original
		// spends dozens of instructions per molecule per step.
		io.Compute(30)
		for d := 0; d < 3; d++ {
			s[d] += s[3+d]
			// Reflecting walls in y and z; streamwise wraparound in x.
			if d == 0 {
				if s[0] >= a.space {
					s[0] -= a.space
				}
				if s[0] < 0 {
					s[0] += a.space
				}
			} else if s[d] < 0 || s[d] >= a.space {
				s[3+d] = -s[3+d]
				if s[d] < 0 {
					s[d] = -s[d]
				} else {
					s[d] = 2*a.space - s[d]
					if s[d] >= a.space {
						s[d] = a.space - 1e-9
					}
				}
			}
		}
		for w := 0; w < partWords; w++ {
			io.WriteF64(a.partAt(proc, k, w), s[w])
		}
		// Scatter statistics into the space cell (unsynchronised
		// read-modify-write, as in the original).
		ci := a.cellIndex(s[0], s[1], s[2])
		io.WriteU64(a.cellAt(ci, 0), io.ReadU64(a.cellAt(ci, 0))+1)
		for d := 0; d < 3; d++ {
			io.WriteF64(a.cellAt(ci, 1+d), io.ReadF64(a.cellAt(ci, 1+d))+s[3+d])
		}
		io.Compute(15) // collision-candidate bookkeeping

	}
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	a.initKernel(p, p.ID())
	p.Barrier()
	p.ROIStart()
	for s := 0; s < a.cfg.Steps; s++ {
		a.moveKernel(p, p.ID())
		p.Barrier()
	}
	p.ROIEnd()
}

// Verify implements apps.App: particle trajectories depend only on their
// own state and the walls, so they are replayed exactly; the racy cell
// statistics are checked only for plausibility (total hit count equals
// particles times steps is NOT guaranteed under lost updates, so the
// check is a bound).
func (a *App) Verify(m *machine.Machine) error {
	b := apps.NewBackdoor(m)
	for proc := 0; proc < a.nodes; proc++ {
		a.initKernel(b, proc)
	}
	for s := 0; s < a.cfg.Steps; s++ {
		for proc := 0; proc < a.nodes; proc++ {
			a.moveKernel(b, proc)
		}
	}
	for proc := 0; proc < a.nodes; proc++ {
		for k := 0; k < a.per; k++ {
			for w := 0; w < partWords; w++ {
				if err := b.Expect(a.partAt(proc, k, w), fmt.Sprintf("mp3d particle %d.%d word %d", proc, k, w)); err != nil {
					return err
				}
			}
		}
	}
	// Cell hit counts: each is at most the replayed count (lost updates
	// only lose increments) and the total is positive.
	var total uint64
	n3 := a.cfg.Cells * a.cfg.Cells * a.cfg.Cells
	for ci := 0; ci < n3; ci++ {
		got := apps.ReadBackU64(m, a.cellAt(ci, 0))
		want := b.ReadU64(a.cellAt(ci, 0))
		if got > want {
			return fmt.Errorf("mp3d cell %d count %d exceeds replayed %d", ci, got, want)
		}
		total += got
	}
	if total == 0 {
		return fmt.Errorf("mp3d: no cell samples recorded")
	}
	return nil
}
