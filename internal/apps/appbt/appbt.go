// Package appbt implements the NAS Appbt benchmark (Table 3: 12x12x12
// small, 24x24x24 large) as a faithful-in-spirit kernel: repeated
// line sweeps over a three-dimensional grid of 5-element solution
// vectors (the original solves 5x5 block-tridiagonal systems along each
// dimension). Cells are distributed as contiguous runs of (y,z) columns,
// so the x sweep is entirely local while the y and z sweeps read
// neighbour cells across column — and therefore processor — boundaries.
// Sweeps read the previous sweep's values (Jacobi-style), which keeps
// the synchronisation to one barrier per sweep while preserving the
// communication pattern of the original's boundary exchanges.
package appbt

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
)

// Comp is the number of solution components per grid cell (the 5x5
// block size of the original).
const Comp = 5

// Config describes one Appbt instance.
type Config struct {
	// N is the grid dimension (Table 3: 12 small, 24 large).
	N int
	// Iters is the number of full x+y+z sweep rounds.
	Iters int
}

// Small returns the Table 3 small data set.
func Small() Config { return Config{N: 12, Iters: 3} }

// Large returns the Table 3 large data set.
func Large() Config { return Config{N: 24, Iters: 3} }

// Tiny returns a reduced instance for tests.
func Tiny() Config { return Config{N: 6, Iters: 2} }

// App is the Appbt program.
type App struct {
	cfg     Config
	nodes   int
	colsPer int // (y,z) columns per processor
	// Two copies of the solution, ping-ponged between sweeps so each
	// sweep reads the previous sweep's values everywhere (Jacobi).
	u [2]*apps.DistArray
}

// New returns an Appbt instance.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements apps.App.
func (a *App) Name() string { return "appbt" }

// Config returns the instance configuration.
func (a *App) Config() Config { return a.cfg }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine) {
	a.nodes = m.Cfg.Nodes
	cols := a.cfg.N * a.cfg.N
	a.colsPer = apps.CeilDiv(cols, a.nodes)
	for g := 0; g < 2; g++ {
		a.u[g] = apps.NewDistArrayNaive(m, fmt.Sprintf("appbt.u%d", g), a.colsPer*a.cfg.N*Comp, 8, 0)
	}
}

// col returns the column index of cell (y, z).
func (a *App) col(y, z int) int { return z*a.cfg.N + y }

// at returns the address of component c of cell (x, y, z) in copy g.
func (a *App) at(g, x, y, z, c int) mem.VA {
	col := a.col(y, z)
	return a.u[g].At(col/a.colsPer, ((col%a.colsPer)*a.cfg.N+x)*Comp+c)
}

// ownerCols returns the half-open column range owned by proc.
func (a *App) ownerCols(proc int) (lo, hi int) {
	lo = proc * a.colsPer
	hi = lo + a.colsPer
	if max := a.cfg.N * a.cfg.N; hi > max {
		hi = max
	}
	if max := a.cfg.N * a.cfg.N; lo > max {
		lo = max
	}
	return lo, hi
}

func initCell(x, y, z, c int) float64 {
	return 1.0 + float64((x*7+y*13+z*29+c*3)%64)/8.0
}

func (a *App) initKernel(io apps.MemIO, proc int) {
	lo, hi := a.ownerCols(proc)
	for col := lo; col < hi; col++ {
		y, z := col%a.cfg.N, col/a.cfg.N
		for x := 0; x < a.cfg.N; x++ {
			for c := 0; c < Comp; c++ {
				v := initCell(x, y, z, c)
				io.WriteF64(a.at(0, x, y, z, c), v)
				io.WriteF64(a.at(1, x, y, z, c), v)
			}
		}
	}
}

// sweepKernel performs one directional relaxation from copy src into
// copy 1-src: every interior cell mixes its vector with the previous
// cell's along the sweep axis through a small dense coupling (standing
// in for the 5x5 block solve). dim: 0=x (local), 1=y, 2=z (both cross
// processor boundaries). Boundary cells are copied through unchanged.
func (a *App) sweepKernel(io apps.MemIO, proc, dim, src int) {
	N := a.cfg.N
	dst := 1 - src
	lo, hi := a.ownerCols(proc)
	var prev, cur [Comp]float64
	for col := lo; col < hi; col++ {
		y, z := col%N, col/N
		for x := 0; x < N; x++ {
			px, py, pz := x, y, z
			switch dim {
			case 0:
				px = x - 1
			case 1:
				py = y - 1
			default:
				pz = z - 1
			}
			if px < 0 || py < 0 || pz < 0 {
				for c := 0; c < Comp; c++ {
					io.WriteF64(a.at(dst, x, y, z, c), io.ReadF64(a.at(src, x, y, z, c)))
				}
				continue
			}
			for c := 0; c < Comp; c++ {
				prev[c] = io.ReadF64(a.at(src, px, py, pz, c))
				cur[c] = io.ReadF64(a.at(src, x, y, z, c))
			}
			// Dense 5x5 coupling: each output component mixes every
			// input component (50 multiply-adds, the block-solve work).
			io.Compute(2 * Comp * Comp)
			for c := 0; c < Comp; c++ {
				v := 0.55 * cur[c]
				for k := 0; k < Comp; k++ {
					v += 0.04 * prev[k]
					v += 0.05 * cur[(c+k)%Comp] * 0.5
				}
				io.WriteF64(a.at(dst, x, y, z, c), v)
			}
		}
	}
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	a.initKernel(p, p.ID())
	p.Barrier()
	p.ROIStart()
	src := 0
	for it := 0; it < a.cfg.Iters; it++ {
		for dim := 0; dim < 3; dim++ {
			a.sweepKernel(p, p.ID(), dim, src)
			p.Barrier()
			src = 1 - src
		}
	}
	p.ROIEnd()
}

// Verify implements apps.App via backdoor replay.
func (a *App) Verify(m *machine.Machine) error {
	b := apps.NewBackdoor(m)
	for proc := 0; proc < a.nodes; proc++ {
		a.initKernel(b, proc)
	}
	src := 0
	for it := 0; it < a.cfg.Iters; it++ {
		for dim := 0; dim < 3; dim++ {
			for proc := 0; proc < a.nodes; proc++ {
				a.sweepKernel(b, proc, dim, src)
			}
			src = 1 - src
		}
	}
	N := a.cfg.N
	for z := 0; z < N; z++ {
		for y := 0; y < N; y++ {
			for x := 0; x < N; x++ {
				for c := 0; c < Comp; c++ {
					if err := b.Expect(a.at(src, x, y, z, c), fmt.Sprintf("appbt u[%d][%d][%d].%d", x, y, z, c)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
