// Package ocean implements the Ocean benchmark from the SPLASH suite
// (Table 3: 98x98 small, 386x386 large) as a faithful-in-spirit kernel:
// a hydrodynamic relaxation over a two-dimensional grid. Rows are
// distributed in contiguous bands (owner computes); each Jacobi sweep
// reads the four-point stencil — the rows adjacent to a band boundary
// are the communicated data, giving Ocean's nearest-neighbour sharing
// pattern.
package ocean

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
)

// Config describes one Ocean instance.
type Config struct {
	// N is the grid dimension (Table 3: 98 small, 386 large).
	N int
	// Iters is the number of relaxation sweeps.
	Iters int
	// OwnerPlaced homes each processor's band on that processor instead
	// of the default naive round-robin placement — the "careful data
	// placement" DirNNB improvement of paper §6, used by the placement
	// ablation.
	OwnerPlaced bool
}

// Small returns the Table 3 small data set.
func Small() Config { return Config{N: 98, Iters: 4} }

// Large returns the Table 3 large data set.
func Large() Config { return Config{N: 386, Iters: 4} }

// Tiny returns a reduced instance for tests.
func Tiny() Config { return Config{N: 22, Iters: 3} }

// App is the Ocean program.
type App struct {
	cfg     Config
	rowsPer int
	nodes   int
	// Two grids, ping-ponged between sweeps; both banded by rows.
	grids [2]*apps.DistArray
}

// New returns an Ocean instance.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements apps.App.
func (a *App) Name() string { return "ocean" }

// Config returns the instance configuration.
func (a *App) Config() Config { return a.cfg }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine) {
	a.nodes = m.Cfg.Nodes
	a.rowsPer = apps.CeilDiv(a.cfg.N, a.nodes)
	for g := 0; g < 2; g++ {
		name := fmt.Sprintf("ocean.grid%d", g)
		if a.cfg.OwnerPlaced {
			a.grids[g] = apps.NewDistArray(m, name, a.rowsPer*a.cfg.N, 8, 0)
		} else {
			a.grids[g] = apps.NewDistArrayNaive(m, name, a.rowsPer*a.cfg.N, 8, 0)
		}
	}
}

// at returns the address of cell (i, j) in grid g.
func (a *App) at(g, i, j int) mem.VA {
	return a.grids[g].At(i/a.rowsPer, (i%a.rowsPer)*a.cfg.N+j)
}

// ownerRows returns the half-open row range owned by proc.
func (a *App) ownerRows(proc int) (lo, hi int) {
	lo = proc * a.rowsPer
	hi = lo + a.rowsPer
	if hi > a.cfg.N {
		hi = a.cfg.N
	}
	if lo > a.cfg.N {
		lo = a.cfg.N
	}
	return lo, hi
}

// initCell is the deterministic initial state.
func initCell(i, j int) float64 {
	return float64((i*131+j*17)%256)/32.0 + float64(i+j)/1000.0
}

// initKernel writes the owner's band into both grids.
func (a *App) initKernel(io apps.MemIO, proc int) {
	lo, hi := a.ownerRows(proc)
	for i := lo; i < hi; i++ {
		for j := 0; j < a.cfg.N; j++ {
			v := initCell(i, j)
			io.WriteF64(a.at(0, i, j), v)
			io.WriteF64(a.at(1, i, j), v)
		}
	}
}

// sweepKernel relaxes the owner's interior rows from grid src into grid
// dst: dst = 0.25*(up+down+left+right) + 0.05*self. Boundary cells are
// fixed.
func (a *App) sweepKernel(io apps.MemIO, proc, src int) {
	dst := 1 - src
	lo, hi := a.ownerRows(proc)
	for i := lo; i < hi; i++ {
		if i == 0 || i == a.cfg.N-1 {
			continue
		}
		for j := 1; j < a.cfg.N-1; j++ {
			up := io.ReadF64(a.at(src, i-1, j))
			down := io.ReadF64(a.at(src, i+1, j))
			left := io.ReadF64(a.at(src, i, j-1))
			right := io.ReadF64(a.at(src, i, j+1))
			self := io.ReadF64(a.at(src, i, j))
			io.Compute(6)
			io.WriteF64(a.at(dst, i, j), 0.25*(up+down+left+right)+0.05*self)
		}
	}
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	a.initKernel(p, p.ID())
	p.Barrier()
	p.ROIStart()
	src := 0
	for it := 0; it < a.cfg.Iters; it++ {
		a.sweepKernel(p, p.ID(), src)
		p.Barrier()
		src = 1 - src
	}
	p.ROIEnd()
}

// Verify implements apps.App via backdoor replay.
func (a *App) Verify(m *machine.Machine) error {
	b := apps.NewBackdoor(m)
	for proc := 0; proc < a.nodes; proc++ {
		a.initKernel(b, proc)
	}
	src := 0
	for it := 0; it < a.cfg.Iters; it++ {
		for proc := 0; proc < a.nodes; proc++ {
			a.sweepKernel(b, proc, src)
		}
		src = 1 - src
	}
	for i := 0; i < a.cfg.N; i++ {
		for j := 0; j < a.cfg.N; j++ {
			for g := 0; g < 2; g++ {
				if err := b.Expect(a.at(g, i, j), fmt.Sprintf("ocean grid%d[%d][%d]", g, i, j)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
