package barnes

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// TestTinyOnBothSystems runs the reduced instance end to end on the
// hardware baseline and on Typhoon/Stache and verifies the results
// against the sequential reference. (The cross-application and
// larger-scale suites live in internal/apps and internal/harness.)
func TestTinyOnBothSystems(t *testing.T) {
	for _, system := range []string{"dirnnb", "typhoon-stache"} {
		system := system
		t.Run(system, func(t *testing.T) {
			m := machine.New(machine.Config{Nodes: 4, CacheSize: 4096, Seed: 1})
			var st *stache.Protocol
			if system == "dirnnb" {
				dirnnb.New(m)
			} else {
				st = stache.New()
				typhoon.New(m, st)
			}
			app := New(Tiny())
			app.Setup(m)
			if _, err := m.Run(app.Body); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if st != nil {
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("invariants: %v", err)
				}
			}
			if err := app.Verify(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConfigConstructors(t *testing.T) {
	for _, c := range []Config{Small(), Large(), Tiny()} {
		app := New(c)
		if app.Name() == "" {
			t.Fatal("empty name")
		}
		if app.Config() != c {
			t.Fatal("config not preserved")
		}
	}
}
