// Package barnes implements the Barnes benchmark from the SPLASH suite
// (Table 3: 2048 bodies small, 8192 large): a gravitational N-body
// simulation using the Barnes-Hut octree. Each iteration node 0 rebuilds
// the octree in shared memory from all body positions (scattered remote
// reads and writes — the dynamic, pointer-based structure the paper's
// §2.3 motivates); then every processor computes forces for its own
// bodies by traversing the tree (wide read-only sharing of tree cells)
// and integrates them (owner-local writes). The force phase reads only
// tree cells — leaf cells carry the body's mass moments — so no barrier
// is needed between force and update.
package barnes

import (
	"fmt"
	"math"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
)

// Config describes one Barnes instance.
type Config struct {
	// Bodies is the body count (Table 3: 2048 / 8192).
	Bodies int
	// Iters is the number of time steps.
	Iters int
	// Theta is the opening criterion (cell used whole when
	// size < Theta * distance).
	Theta float64
	// Seed drives the initial distribution.
	Seed uint64
}

// Small returns the Table 3 small data set.
func Small() Config { return Config{Bodies: 2048, Iters: 2, Theta: 0.7, Seed: 1} }

// Large returns the Table 3 large data set.
func Large() Config { return Config{Bodies: 8192, Iters: 2, Theta: 0.7, Seed: 1} }

// Tiny returns a reduced instance for tests.
func Tiny() Config { return Config{Bodies: 64, Iters: 2, Theta: 0.7, Seed: 1} }

// Body record layout (8 words): x, y, z, vx, vy, vz, mass, pad.
const bodyWords = 8

// Tree-cell record layout (24 words):
//
//	0 kind (0 free, 1 leaf, 2 internal)   1 body index (leaf)
//	2 mass sum                            3..5 mass-weighted position sums
//	6 cell size                           7..9 cell centre
//	10..17 children indices               18..23 reserved
const (
	cellWords  = 24
	wKind      = 0
	wBody      = 1
	wMass      = 2
	wWX        = 3
	wSize      = 6
	wCX        = 7
	wChild     = 10
	kindFree   = 0
	kindLeaf   = 1
	kindIntern = 2
	maxDepth   = 40
)

// domain is the simulation cube edge length.
const domain = 16.0

// App is the Barnes program.
type App struct {
	cfg   Config
	nodes int
	per   int

	bodies *apps.DistArray
	cells  *apps.DistArray
	inits  [][7]float64
}

// New returns a Barnes instance.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements apps.App.
func (a *App) Name() string { return "barnes" }

// Config returns the instance configuration.
func (a *App) Config() Config { return a.cfg }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine) {
	a.nodes = m.Cfg.Nodes
	a.per = apps.CeilDiv(a.cfg.Bodies, a.nodes)
	a.bodies = apps.NewDistArrayNaive(m, "barnes.bodies", a.per*bodyWords, 8, 0)
	// The tree pool is spread round-robin: tree cells have no stable
	// node affinity, exactly the transparent-replication case the paper
	// motivates with Barnes-Hut.
	maxCells := 4*a.per*a.nodes + 64
	perProcCells := apps.CeilDiv(maxCells, a.nodes)
	a.cells = apps.NewDistArrayNaive(m, "barnes.cells", perProcCells*cellWords, 8, 0)

	rng := apps.NewRand(a.cfg.Seed)
	a.inits = make([][7]float64, a.per*a.nodes)
	for i := range a.inits {
		a.inits[i] = [7]float64{
			rng.Float64()*domain*0.9 + 0.05*domain,
			rng.Float64()*domain*0.9 + 0.05*domain,
			rng.Float64()*domain*0.9 + 0.05*domain,
			(rng.Float64() - 0.5) * 0.02,
			(rng.Float64() - 0.5) * 0.02,
			(rng.Float64() - 0.5) * 0.02,
			0.5 + rng.Float64(),
		}
	}
}

func (a *App) bodyAt(global, w int) mem.VA {
	return a.bodies.At(global/a.per, (global%a.per)*bodyWords+w)
}

func (a *App) cellAt(idx, w int) mem.VA {
	return a.cells.AtGlobal(idx*cellWords + w)
}

func (a *App) initKernel(io apps.MemIO, proc int) {
	for k := 0; k < a.per; k++ {
		g := proc*a.per + k
		for w := 0; w < 7; w++ {
			io.WriteF64(a.bodyAt(g, w), a.inits[g][w])
		}
	}
}

// allocCell claims the next pool slot and zeroes its header and children.
func (a *App) allocCell(io apps.MemIO, next *int) int {
	idx := *next
	*next++
	io.WriteU64(a.cellAt(idx, wKind), kindFree)
	for c := 0; c < 8; c++ {
		io.WriteU64(a.cellAt(idx, wChild+c), 0)
	}
	io.Compute(4)
	return idx
}

func (a *App) makeLeaf(io apps.MemIO, idx, body int, x, y, z, m float64) {
	io.WriteU64(a.cellAt(idx, wKind), kindLeaf)
	io.WriteU64(a.cellAt(idx, wBody), uint64(body))
	io.WriteF64(a.cellAt(idx, wMass), m)
	io.WriteF64(a.cellAt(idx, wWX), m*x)
	io.WriteF64(a.cellAt(idx, wWX+1), m*y)
	io.WriteF64(a.cellAt(idx, wWX+2), m*z)
	io.Compute(8)
}

// octant returns which child cube of (cx,cy,cz) contains (x,y,z).
func octant(cx, cy, cz, x, y, z float64) int {
	o := 0
	if x >= cx {
		o |= 1
	}
	if y >= cy {
		o |= 2
	}
	if z >= cz {
		o |= 4
	}
	return o
}

func childCenter(cx, cy, cz, half float64, o int) (float64, float64, float64) {
	q := half / 2
	if o&1 != 0 {
		cx += q
	} else {
		cx -= q
	}
	if o&2 != 0 {
		cy += q
	} else {
		cy -= q
	}
	if o&4 != 0 {
		cz += q
	} else {
		cz -= q
	}
	return cx, cy, cz
}

// buildKernel rebuilds the octree from scratch (run by processor 0, as a
// sequential phase of each iteration). It returns the root cell index.
func (a *App) buildKernel(io apps.MemIO, next *int) int {
	*next = 1 // index 0 is the null child
	root := a.allocCell(io, next)
	io.WriteU64(a.cellAt(root, wKind), kindIntern)
	io.WriteF64(a.cellAt(root, wMass), 0)
	io.WriteF64(a.cellAt(root, wWX), 0)
	io.WriteF64(a.cellAt(root, wWX+1), 0)
	io.WriteF64(a.cellAt(root, wWX+2), 0)
	io.WriteF64(a.cellAt(root, wSize), domain)
	io.WriteF64(a.cellAt(root, wCX), domain/2)
	io.WriteF64(a.cellAt(root, wCX+1), domain/2)
	io.WriteF64(a.cellAt(root, wCX+2), domain/2)

	total := a.per * a.nodes
	for g := 0; g < total; g++ {
		x := io.ReadF64(a.bodyAt(g, 0))
		y := io.ReadF64(a.bodyAt(g, 1))
		z := io.ReadF64(a.bodyAt(g, 2))
		m := io.ReadF64(a.bodyAt(g, 6))
		a.insert(io, next, root, g, x, y, z, m)
	}
	return root
}

func (a *App) insert(io apps.MemIO, next *int, root, body int, x, y, z, m float64) {
	cur := root
	for depth := 0; ; depth++ {
		// Accumulate this body's moments on the path.
		io.WriteF64(a.cellAt(cur, wMass), io.ReadF64(a.cellAt(cur, wMass))+m)
		io.WriteF64(a.cellAt(cur, wWX), io.ReadF64(a.cellAt(cur, wWX))+m*x)
		io.WriteF64(a.cellAt(cur, wWX+1), io.ReadF64(a.cellAt(cur, wWX+1))+m*y)
		io.WriteF64(a.cellAt(cur, wWX+2), io.ReadF64(a.cellAt(cur, wWX+2))+m*z)
		io.Compute(8)
		if depth >= maxDepth {
			// Coincident bodies: moments are accounted, the body is
			// folded into this cell rather than splitting forever.
			return
		}
		cx := io.ReadF64(a.cellAt(cur, wCX))
		cy := io.ReadF64(a.cellAt(cur, wCX+1))
		cz := io.ReadF64(a.cellAt(cur, wCX+2))
		size := io.ReadF64(a.cellAt(cur, wSize))
		o := octant(cx, cy, cz, x, y, z)
		io.Compute(6)
		child := int(io.ReadU64(a.cellAt(cur, wChild+o)))
		if child == 0 {
			leaf := a.allocCell(io, next)
			a.makeLeaf(io, leaf, body, x, y, z, m)
			io.WriteU64(a.cellAt(cur, wChild+o), uint64(leaf))
			return
		}
		if kind := io.ReadU64(a.cellAt(child, wKind)); kind == kindLeaf {
			// Split: replace the leaf with an internal cell and
			// reinsert the displaced body below it.
			ob := int(io.ReadU64(a.cellAt(child, wBody)))
			om := io.ReadF64(a.cellAt(child, wMass))
			ox := io.ReadF64(a.cellAt(child, wWX)) / om
			oy := io.ReadF64(a.cellAt(child, wWX+1)) / om
			oz := io.ReadF64(a.cellAt(child, wWX+2)) / om
			inner := a.allocCell(io, next)
			ncx, ncy, ncz := childCenter(cx, cy, cz, size/2, o)
			io.WriteU64(a.cellAt(inner, wKind), kindIntern)
			io.WriteF64(a.cellAt(inner, wMass), 0)
			io.WriteF64(a.cellAt(inner, wWX), 0)
			io.WriteF64(a.cellAt(inner, wWX+1), 0)
			io.WriteF64(a.cellAt(inner, wWX+2), 0)
			io.WriteF64(a.cellAt(inner, wSize), size/2)
			io.WriteF64(a.cellAt(inner, wCX), ncx)
			io.WriteF64(a.cellAt(inner, wCX+1), ncy)
			io.WriteF64(a.cellAt(inner, wCX+2), ncz)
			io.WriteU64(a.cellAt(cur, wChild+o), uint64(inner))
			io.Compute(12)
			a.insert(io, next, inner, ob, ox, oy, oz, om)
			// Continue inserting the new body from the fresh cell.
			cur = inner
			continue
		}
		cur = child
	}
}

// forceKernel computes and integrates forces for the owner's bodies by
// traversing the shared tree. Leaf cells carry the interacting body's
// moments, so the phase reads tree cells only.
func (a *App) forceKernel(io apps.MemIO, proc, root int) {
	const dt = 0.05
	const eps2 = 0.05
	theta2 := a.cfg.Theta * a.cfg.Theta
	stack := make([]int, 0, 64)
	for k := 0; k < a.per; k++ {
		g := proc*a.per + k
		x := io.ReadF64(a.bodyAt(g, 0))
		y := io.ReadF64(a.bodyAt(g, 1))
		z := io.ReadF64(a.bodyAt(g, 2))
		var ax, ay, az float64
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			kind := io.ReadU64(a.cellAt(n, wKind))
			ms := io.ReadF64(a.cellAt(n, wMass))
			if ms == 0 {
				continue
			}
			px := io.ReadF64(a.cellAt(n, wWX)) / ms
			py := io.ReadF64(a.cellAt(n, wWX+1)) / ms
			pz := io.ReadF64(a.cellAt(n, wWX+2)) / ms
			dx, dy, dz := px-x, py-y, pz-z
			d2 := dx*dx + dy*dy + dz*dz + eps2
			io.Compute(12)
			if kind == kindLeaf {
				if int(io.ReadU64(a.cellAt(n, wBody))) == g {
					continue
				}
			} else {
				size := io.ReadF64(a.cellAt(n, wSize))
				if size*size >= theta2*d2 {
					// Too close: open the cell.
					for c := 0; c < 8; c++ {
						if ch := io.ReadU64(a.cellAt(n, wChild+c)); ch != 0 {
							stack = append(stack, int(ch))
						}
					}
					io.Compute(8)
					continue
				}
			}
			inv := 1 / (d2 * math.Sqrt(d2))
			ax += ms * dx * inv
			ay += ms * dy * inv
			az += ms * dz * inv
			io.Compute(15)
		}
		// Integrate (leapfrog-ish Euler step) and keep bodies in the box.
		vx := io.ReadF64(a.bodyAt(g, 3)) + ax*dt
		vy := io.ReadF64(a.bodyAt(g, 4)) + ay*dt
		vz := io.ReadF64(a.bodyAt(g, 5)) + az*dt
		x, vx = bounce(x+vx*dt, vx)
		y, vy = bounce(y+vy*dt, vy)
		z, vz = bounce(z+vz*dt, vz)
		io.WriteF64(a.bodyAt(g, 0), x)
		io.WriteF64(a.bodyAt(g, 1), y)
		io.WriteF64(a.bodyAt(g, 2), z)
		io.WriteF64(a.bodyAt(g, 3), vx)
		io.WriteF64(a.bodyAt(g, 4), vy)
		io.WriteF64(a.bodyAt(g, 5), vz)
		io.Compute(18)
	}
}

func bounce(p, v float64) (float64, float64) {
	if p < 0 {
		return -p, -v
	}
	if p >= domain {
		q := 2*domain - p
		if q >= domain {
			q = domain - 1e-9
		}
		return q, -v
	}
	return p, v
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	a.initKernel(p, p.ID())
	p.Barrier()
	p.ROIStart()
	var next int
	for it := 0; it < a.cfg.Iters; it++ {
		root := 1
		if p.ID() == 0 {
			root = a.buildKernel(p, &next)
		}
		p.Barrier()
		a.forceKernel(p, p.ID(), root)
		p.Barrier()
	}
	p.ROIEnd()
}

// Verify implements apps.App via backdoor replay.
func (a *App) Verify(m *machine.Machine) error {
	b := apps.NewBackdoor(m)
	for proc := 0; proc < a.nodes; proc++ {
		a.initKernel(b, proc)
	}
	var next int
	for it := 0; it < a.cfg.Iters; it++ {
		root := a.buildKernel(b, &next)
		for proc := 0; proc < a.nodes; proc++ {
			a.forceKernel(b, proc, root)
		}
	}
	for g := 0; g < a.per*a.nodes; g++ {
		for w := 0; w < 7; w++ {
			if err := b.Expect(a.bodyAt(g, w), fmt.Sprintf("barnes body %d word %d", g, w)); err != nil {
				return err
			}
		}
	}
	return nil
}
