// Package stache implements the paper's user-level transparent
// shared-memory library (§3): local DRAM managed as a large, fully
// associative cache for remote data, with page-granularity allocation and
// block-granularity coherence. The coherence protocol is the paper's
// default: an invalidation protocol with a LimitLESS-like software
// directory (two bytes of state plus six one-byte pointers per block,
// overflowing to a bit vector), implemented entirely in user-level NP
// handlers through the Tempest interface.
package stache

import (
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// Handler instruction budgets. The paper reports best-case NP path
// lengths of 14 instructions to request a missing block, 30 for the home
// node to respond with data, and 20 when the data arrives at the
// requester (§6). Each handler's total cost is its "extra" budget below
// plus the mechanical operations it performs (tag writes, block
// transfers, send-queue stores), whose costs are defined in
// internal/typhoon. TestHandlerBudgetsMatchPaper pins the sums.
const (
	// costRequestExtra: block-fault handler bookkeeping beyond the tag
	// write and the request send. Total best-case path: 14.
	costRequestExtra = 7
	// costHomeRespExtra: home GETS/GETX handler bookkeeping beyond two
	// directory references, the home tag write, the block read, and the
	// data-reply send. Total best-case path: 30.
	costHomeRespExtra = 13
	// costDataArriveExtra: data-arrival handler bookkeeping beyond the
	// block write, the tag write, and the resume. Total best-case
	// path: 20.
	costDataArriveExtra = 12

	// costInvalExtra: sharer-side invalidate/downgrade handler.
	costInvalExtra = 8
	// costAckExtra: home-side invalidation-acknowledgement handler.
	costAckExtra = 6
	// costNackExtra: requester-side NACK handler (rebuild and resend).
	costNackExtra = 4
	// costWbExtra: home-side writeback application.
	costWbExtra = 8

	// costPageFault: the user-level page-fault handler on the CPU —
	// trap entry/exit, distributed-map lookup with local caching, frame
	// allocation, page map, tag initialisation (§3).
	costPageFault = 120
	// costReplacePageBase / costReplacePerBlock: flushing a victim
	// stache page (FIFO replacement, §3).
	costReplacePageBase    = 60
	costReplacePerBlock    = 2
	costReplaceDirtyPerBlk = 6
)

// sendCost mirrors the NP send cost model: setup plus one cycle per
// 32-bit word plus block transfers for data.
func sendCost(args, dataBytes int) sim.Time {
	c := typhoon.SendSetupCycles + typhoon.SendPerWordCycles*sim.Time(1+2*args)
	if dataBytes > 0 {
		c += typhoon.BlockXferCycles * sim.Time((dataBytes+31)/32)
	}
	return c
}
