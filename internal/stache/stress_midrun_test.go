// Mid-run invariant checking: the companion to stress_test.go's
// at-quiescence checks. This file is an external test package because it
// drives real benchmark kernels (em3d imports stache for the check-in
// ablation, which would cycle with an in-package test).
package stache_test

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/apps"
	"github.com/tempest-sim/tempest/internal/apps/em3d"
	"github.com/tempest-sim/tempest/internal/apps/ocean"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// TestInvariantsAtEveryBarrier runs small EM3D and Ocean instances and
// re-checks the full coherence invariants at every barrier release, not
// only at quiescence — a transient-state bug surfaces at the phase that
// caused it instead of rounds later. At a barrier release every compute
// thread is suspended with its last reference complete, and with
// unbounded frames (no replacement) and no prefetch there are no
// protocol transactions in flight, so the checker's quiescence
// assumptions hold mid-run.
func TestInvariantsAtEveryBarrier(t *testing.T) {
	cases := []struct {
		name string
		app  apps.App
	}{
		{"em3d", em3d.New(em3d.Config{TotalNodes: 256, Degree: 4, PctRemote: 30, Iters: 2, Seed: 1})},
		{"ocean", ocean.New(ocean.Config{N: 18, Iters: 2})},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := machine.New(machine.Config{Nodes: 4, CacheSize: 4096, Seed: 5})
			st := stache.New()
			typhoon.New(m, st)
			tc.app.Setup(m)
			checked := 0
			failed := false
			m.Bar.OnRelease(func(epoch uint64, at sim.Time) {
				if failed {
					return
				}
				checked++
				if err := st.CheckInvariants(); err != nil {
					failed = true
					t.Errorf("invariants broken at barrier epoch %d (cycle %d): %v", epoch, at, err)
				}
			})
			if _, err := m.Run(tc.app.Body); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := tc.app.Verify(m); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("final invariants: %v", err)
			}
			if checked == 0 {
				t.Fatal("no barrier releases observed; the mid-run check never ran")
			}
			t.Logf("%s: invariants checked at %d barrier releases", tc.name, checked)
		})
	}
}
