package stache

import (
	"fmt"
	"math/bits"

	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// Virtual-network aliases: coherence requests ride the low-priority
// network, data and acknowledgements the high-priority one (§5.1).
const (
	netRequest = network.VNetRequest
	netReply   = network.VNetReply
)

// dirAt resolves the home-side directory entry for a block-aligned va on
// np's node, charging one NP data-cache reference for the lookup.
func (st *Protocol) dirAt(np *typhoon.NP, va mem.VA) (*blockDir, *mem.Frame, mem.PA) {
	pa, _, ok := np.Translate(va)
	if !ok {
		panic(fmt.Sprintf("stache: home directory access to unmapped %#x on node %d", va, np.Node()))
	}
	frame := np.Mem().Frame(pa)
	hd, ok := frame.User.(*homeDir)
	if !ok {
		panic(fmt.Sprintf("stache: %#x on node %d is not a home page", va, np.Node()))
	}
	bi := int(va.PageOffset()) / st.bs
	synth := dirAddr(np.Node(), pa.FrameBase().Offset(), bi)
	np.MemRef(synth, false)
	return &hd.blocks[bi], frame, synth
}

// --- Requester side ---

// remoteBlockFault is the stache-page block-access-fault handler (§3):
// retrieve the home node ID from the page's cached state, mark the block
// Busy, send the appropriate request, and terminate (the data-arrival
// handler restarts the thread).
func (st *Protocol) remoteBlockFault(np *typhoon.NP, f typhoon.Fault) {
	ns := st.per[np.Node()]
	if ns.pendingValid {
		panic(fmt.Sprintf("stache: node %d fault on %#x with fault already pending on %#x",
			np.Node(), f.VA, ns.pendingVA))
	}
	st.per[np.Node()].hot.remoteFaults++
	va := st.BlockBase(f.VA)
	home := np.FrameOf(f.VA).Home

	if ns.prefetching[va] {
		// The block is already in flight from a prefetch (the fault's
		// recorded tag may predate the prefetch handler: an earlier
		// queue entry — e.g. a check-in — can have changed the tag
		// between the bus nack and this dispatch): just record the
		// suspended thread; the data arrival resumes it.
		ns.pendingValid = true
		ns.pendingVA = va
		ns.pendingWrite = f.Write
		ns.pendingUpgrade = false
		np.Charge(2)
		return
	}

	kind := HGetS
	upgrade := false
	if f.Write {
		if f.Tag == mem.TagReadOnly {
			kind = HUpgrade
			upgrade = true
		} else {
			kind = HGetX
		}
	}
	ns.pendingValid = true
	ns.pendingVA = va
	ns.pendingWrite = f.Write
	ns.pendingUpgrade = upgrade

	np.SetTag(va, mem.TagBusy)
	np.Charge(costRequestExtra)
	np.SendRequest(home, kind, []uint64{uint64(va)}, nil)
}

// handleDataRO installs a read-only copy and restarts the thread.
func (st *Protocol) handleDataRO(np *typhoon.NP, pkt *network.Packet) {
	st.completeFill(np, pkt, mem.TagReadOnly, true)
}

// handleDataRW installs a writable copy and restarts the thread.
func (st *Protocol) handleDataRW(np *typhoon.NP, pkt *network.Packet) {
	st.completeFill(np, pkt, mem.TagReadWrite, true)
}

// handleUpgAck grants write permission on the copy already held.
func (st *Protocol) handleUpgAck(np *typhoon.NP, pkt *network.Packet) {
	st.completeFill(np, pkt, mem.TagReadWrite, false)
}

func (st *Protocol) completeFill(np *typhoon.NP, pkt *network.Packet, tag mem.Tag, hasData bool) {
	va := mem.VA(pkt.Args[0])
	ns := st.per[np.Node()]
	if ns.orphans[va] > 0 {
		// Reply to a request whose page was replaced: consume it and
		// return the residency the home just granted.
		st.consumeOrphan(np, va, ns)
		return
	}
	if !ns.pendingValid || ns.pendingVA != va {
		if hasData && st.prefetchFill(np, pkt, tag) {
			return
		}
		panic(fmt.Sprintf("stache: node %d data reply (handler %d) for %#x without matching pending fault",
			np.Node(), pkt.Handler, va))
	}
	delete(ns.prefetching, va) // a demand fault absorbed the prefetch
	delete(ns.wbOutstanding, va)
	if hasData {
		np.ForceWriteBlock(va, pkt.Data)
	}
	np.SetTag(va, tag)
	ns.pendingValid = false
	np.Charge(costDataArriveExtra)
	np.Resume(np.Proc())
}

// handleNack retries the pending request after the home reported a busy
// block.
func (st *Protocol) handleNack(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	ns := st.per[np.Node()]
	if ns.orphans[va] > 0 {
		// NACK for an orphaned request: nothing to retry, and the home
		// granted nothing, so no residency to return.
		ns.orphans[va]--
		if ns.orphans[va] == 0 {
			delete(ns.orphans, va)
		}
		np.Charge(1)
		return
	}
	if !ns.pendingValid || ns.pendingVA != va {
		if ns.prefetching[va] {
			// Retry the outstanding prefetch.
			st.per[np.Node()].hot.nacks++
			np.Charge(costNackExtra)
			np.SendRequest(np.FrameOf(va).Home, HGetS, []uint64{uint64(va)}, nil)
			return
		}
		np.Charge(1)
		return // stale: the fault completed through another path
	}
	st.per[np.Node()].hot.nacks++
	kind := HGetS
	if ns.pendingWrite {
		if ns.pendingUpgrade {
			kind = HUpgrade
		} else {
			kind = HGetX
		}
	}
	home := np.FrameOf(va).Home
	np.Charge(costNackExtra)
	np.SendRequest(home, kind, []uint64{uint64(va)}, nil)
}

// handleInval serves a home-initiated invalidation or downgrade at a
// sharer or owner.
func (st *Protocol) handleInval(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	kind := pkt.Args[1]
	ns := st.per[np.Node()]
	if ns.wbOutstanding[va] {
		// This node dropped the block and its writeback (dirty data or
		// a clean drop notice) is still in flight on the request
		// network. Because replies outrank requests at the receiver,
		// this acknowledgement could overtake it — so it carries had=2,
		// telling the home to wait for the writeback itself (which the
		// writeback handlers count as the acknowledgement).
		delete(ns.wbOutstanding, va)
		np.Charge(costInvalExtra)
		np.SendReply(pkt.Src, HInvalAck, []uint64{uint64(va), 2}, nil)
		return
	}
	_, _, ok := np.Translate(va)
	if !ok {
		// The page was replaced with no writeback outstanding (already
		// consumed): a stale directory entry. Acknowledge clean.
		np.Charge(costInvalExtra)
		np.SendReply(pkt.Src, HInvalAck, []uint64{uint64(va), 0}, nil)
		return
	}
	tag := np.ReadTag(va)
	var data []byte
	had := uint64(0)
	switch {
	case tag == mem.TagReadWrite:
		data = np.ForceReadBlockScratch(va)
		had = 1
		if kind == invalDowngrade {
			np.SetTag(va, mem.TagReadOnly)
			np.DowngradeCPU(va)
		} else {
			np.Invalidate(va)
		}
	case tag == mem.TagReadOnly:
		np.Invalidate(va)
	case tag == mem.TagBusy:
		// A fault on this block is in flight (e.g. an upgrade that lost
		// the race): our stale copy is already unusable; the pending
		// request will be answered with fresh data. Acknowledge clean
		// and leave the tag Busy.
	default:
		// Invalid: stale sharer entry (writeback raced); acknowledge.
	}
	np.Charge(costInvalExtra)
	np.SendReply(pkt.Src, HInvalAck, []uint64{uint64(va), had}, data)
}

// --- Home side ---

// handleGetS serves a read request at the home (§3).
func (st *Protocol) handleGetS(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	r := pkt.Src
	st.per[np.Node()].hot.getS++
	d, _, synth := st.dirAt(np, va)
	if st.migratory && d.migratory && d.state != dirBusy {
		// The block migrates: grant the reader an exclusive copy so its
		// expected write needs no second round trip.
		st.per[np.Node()].hot.migratoryGrants++
		switch d.state {
		case dirIdle:
			st.grantExclusive(np, va, d, synth, r, false)
		case dirShared:
			d.sharers.remove(r)
			if d.sharers.count() == 0 {
				st.grantExclusive(np, va, d, synth, r, false)
			} else {
				d.state = dirBusy
				d.pend = pendRemoteWrite
				d.pendReq = int16(r)
				d.pendUpgrade = false
				d.pendDirty = false
				d.waiting.clear()
				for _, s := range d.sharers.members() {
					d.waiting.add(s, st.nodes())
					st.per[np.Node()].hot.invalsSent++
					np.Charge(2)
					np.SendRequest(s, HInval, []uint64{uint64(va), invalKill}, nil)
				}
				d.sharers.clear()
				np.Invalidate(va)
				np.MemRef(synth, true)
				np.Charge(costHomeRespExtra)
			}
		case dirExclusive:
			d.pendDirty = false
			st.startRecall(np, va, d, synth, pendRemoteWrite, r, false, invalKill)
		}
		d.lastGetS = int16(r)
		return
	}
	d.lastGetS = int16(r)
	switch d.state {
	case dirIdle:
		np.DowngradeCPU(va)
		np.SetTag(va, mem.TagReadOnly)
		d.state = dirShared
		d.sharers.add(r, st.nodes())
		np.MemRef(synth, true)
		st.replyData(np, r, va, HDataRO)
	case dirShared:
		d.sharers.add(r, st.nodes())
		np.MemRef(synth, true)
		st.replyData(np, r, va, HDataRO)
	case dirExclusive:
		st.startRecall(np, va, d, synth, pendRemoteRead, r, false, invalDowngrade)
	case dirBusy:
		st.nack(np, r, va)
	}
}

// handleGetX serves a write request at the home.
func (st *Protocol) handleGetX(np *typhoon.NP, pkt *network.Packet) {
	st.per[np.Node()].hot.getX++
	st.serveExclusive(np, pkt, false)
}

// handleUpgrade serves an upgrade request: the requester holds (or held)
// a read-only copy and wants ownership.
func (st *Protocol) handleUpgrade(np *typhoon.NP, pkt *network.Packet) {
	st.per[np.Node()].hot.upgrades++
	st.serveExclusive(np, pkt, true)
}

func (st *Protocol) serveExclusive(np *typhoon.NP, pkt *network.Packet, upgrade bool) {
	va := mem.VA(pkt.Args[0])
	r := pkt.Src
	d, _, synth := st.dirAt(np, va)
	if st.migratory && upgrade && int16(r) == d.lastGetS &&
		d.state == dirShared && d.sharers.count() == 1 && d.sharers.has(r) {
		// Read-then-write by the sole reader: the migratory pattern.
		d.migratory = true
	}
	switch d.state {
	case dirIdle:
		st.grantExclusive(np, va, d, synth, r, false)
	case dirShared:
		wasSharer := d.sharers.has(r)
		d.sharers.remove(r)
		if d.sharers.count() == 0 {
			st.grantExclusive(np, va, d, synth, r, upgrade && wasSharer)
			return
		}
		// Invalidate the other sharers, then grant.
		d.state = dirBusy
		d.pend = pendRemoteWrite
		d.pendReq = int16(r)
		d.pendUpgrade = upgrade && wasSharer
		d.pendDirty = false
		d.waiting.clear()
		for _, s := range d.sharers.members() {
			d.waiting.add(s, st.nodes())
			st.per[np.Node()].hot.invalsSent++
			np.Charge(2)
			np.SendRequest(s, HInval, []uint64{uint64(va), invalKill}, nil)
		}
		d.sharers.clear()
		// The home's own copy dies now.
		np.Invalidate(va)
		np.MemRef(synth, true)
		np.Charge(costHomeRespExtra)
	case dirExclusive:
		st.startRecall(np, va, d, synth, pendRemoteWrite, r, upgrade, invalKill)
	case dirBusy:
		st.nack(np, r, va)
	}
}

// grantExclusive hands the block to remote node r: the home copy is
// invalidated and the data (or a data-less upgrade ack) sent.
func (st *Protocol) grantExclusive(np *typhoon.NP, va mem.VA, d *blockDir, synth mem.PA, r int, upgAck bool) {
	var data []byte
	if !upgAck {
		data = np.ForceReadBlockScratch(va)
	}
	np.Invalidate(va)
	d.state = dirExclusive
	d.owner = int16(r)
	d.sharers.clear()
	np.MemRef(synth, true)
	np.Charge(costHomeRespExtra)
	if upgAck {
		np.SendReply(r, HUpgAck, []uint64{uint64(va)}, nil)
		return
	}
	st.per[np.Node()].hot.dataReplies++
	np.SendReply(r, HDataRW, []uint64{uint64(va)}, data)
}

// replyData sends the home's current copy of va's block.
func (st *Protocol) replyData(np *typhoon.NP, r int, va mem.VA, handler uint32) {
	data := np.ForceReadBlockScratch(va)
	st.per[np.Node()].hot.dataReplies++
	np.Charge(costHomeRespExtra)
	np.SendReply(r, handler, []uint64{uint64(va)}, data)
}

// startRecall begins a Busy transaction that recalls (or downgrades) the
// remote owner's copy.
func (st *Protocol) startRecall(np *typhoon.NP, va mem.VA, d *blockDir, synth mem.PA, kind pendKind, req int, upgrade bool, inval uint64) {
	owner := int(d.owner)
	d.state = dirBusy
	d.pend = kind
	d.pendReq = int16(req)
	d.pendUpgrade = upgrade
	d.pendDirty = false
	d.pendOwner = -1
	if inval == invalDowngrade {
		d.pendOwner = int16(owner) // keeps a read-only copy
	}
	d.owner = -1
	d.waiting.clear()
	d.waiting.add(owner, st.nodes())
	np.MemRef(synth, true)
	st.per[np.Node()].hot.invalsSent++
	np.Charge(costHomeRespExtra)
	np.SendRequest(owner, HInval, []uint64{uint64(va), inval}, nil)
}

// startHomeInvalidate begins a Busy transaction invalidating all sharers
// on behalf of the home CPU's write fault.
func (st *Protocol) startHomeInvalidate(np *typhoon.NP, va mem.VA, d *blockDir, synth mem.PA) {
	d.state = dirBusy
	d.pend = pendHomeWrite
	d.pendReq = -1
	d.pendDirty = false
	d.waiting.clear()
	for _, s := range d.sharers.members() {
		d.waiting.add(s, st.nodes())
		st.per[np.Node()].hot.invalsSent++
		np.Charge(2)
		np.SendRequest(s, HInval, []uint64{uint64(va), invalKill}, nil)
	}
	d.sharers.clear()
	np.MemRef(synth, true)
	np.Charge(costHomeRespExtra)
}

// handleInvalAck collects one invalidation/downgrade acknowledgement.
func (st *Protocol) handleInvalAck(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	src := pkt.Src
	d, _, synth := st.dirAt(np, va)
	st.per[np.Node()].hot.acks++
	if pkt.Args[1] == 2 {
		// The target dropped the page before the invalidation arrived;
		// its in-flight writeback stands in for this acknowledgement
		// (handleWbDirty / handleWbClean complete the transaction).
		np.Charge(1)
		return
	}
	had := pkt.Args[1] == 1
	if d.state != dirBusy || !d.waiting.has(src) {
		// A writeback from src already satisfied this node's part.
		np.Charge(1)
		return
	}
	d.waiting.remove(src)
	if had {
		np.ForceWriteBlock(va, pkt.Data)
		d.pendDirty = true
	}
	np.MemRef(synth, true)
	np.Charge(costAckExtra)
	if d.waiting.count() == 0 {
		st.completePend(np, va, d, synth)
	}
}

// completePend finishes a Busy transaction once every awaited node has
// answered.
func (st *Protocol) completePend(np *typhoon.NP, va mem.VA, d *blockDir, synth mem.PA) {
	pend := d.pend
	d.pend = pendNone
	switch pend {
	case pendRemoteRead:
		r := int(d.pendReq)
		d.state = dirShared
		// The downgraded ex-owner keeps a read-only copy (unless its
		// writeback told us it dropped the page instead).
		if d.pendOwner >= 0 {
			d.sharers.add(int(d.pendOwner), st.nodes())
		}
		d.sharers.add(r, st.nodes())
		np.SetTag(va, mem.TagReadOnly)
		np.MemRef(synth, true)
		st.replyData(np, r, va, HDataRO)
	case pendRemoteWrite:
		r := int(d.pendReq)
		d.state = dirExclusive
		d.owner = d.pendReq
		d.sharers.clear()
		if st.migratory && d.migratory && !d.pendDirty && !d.pendUpgrade {
			// A migratory recall that came back clean means the block
			// is actually read-shared: stop migrating it.
			d.migratory = false
		}
		np.MemRef(synth, true)
		np.Charge(costHomeRespExtra)
		if d.pendUpgrade {
			np.SendReply(r, HUpgAck, []uint64{uint64(va)}, nil)
		} else {
			data := np.ForceReadBlockScratch(va)
			st.per[np.Node()].hot.dataReplies++
			np.SendReply(r, HDataRW, []uint64{uint64(va)}, data)
		}
	case pendHomeRead:
		d.state = dirShared
		if d.pendOwner >= 0 {
			d.sharers.add(int(d.pendOwner), st.nodes())
		}
		np.SetTag(va, mem.TagReadOnly)
		np.MemRef(synth, true)
		np.Charge(costDataArriveExtra)
		np.Resume(np.Proc())
	case pendHomeWrite:
		d.state = dirIdle
		d.owner = -1
		d.sharers.clear()
		np.SetTag(va, mem.TagReadWrite)
		np.MemRef(synth, true)
		np.Charge(costDataArriveExtra)
		np.Resume(np.Proc())
	default:
		panic(fmt.Sprintf("stache: completePend with no pending transaction for %#x", va))
	}
	d.pendOwner = -1
	d.waiting.clear()
	// A home CPU fault queued behind this transaction runs now.
	ns := st.per[np.Node()]
	if ns.homePendingValid && st.BlockBase(ns.homePending.VA) == va {
		f := ns.homePending
		ns.homePendingValid = false
		st.homeBlockFault(np, f)
	}
}

// homeBlockFault serves the home CPU's own block access fault: directory
// work happens locally without request messages (§3).
func (st *Protocol) homeBlockFault(np *typhoon.NP, f typhoon.Fault) {
	st.per[np.Node()].hot.homeFaults++
	va := st.BlockBase(f.VA)
	d, _, synth := st.dirAt(np, va)
	switch d.state {
	case dirBusy:
		// A remote transaction is in flight; retry when it completes.
		ns := st.per[np.Node()]
		ns.homePendingValid = true
		ns.homePending = f
		np.Charge(2)
	case dirExclusive:
		kind := pendKind(pendHomeRead)
		inval := uint64(invalDowngrade)
		if f.Write {
			kind = pendHomeWrite
			inval = invalKill
		}
		st.startRecall(np, va, d, synth, kind, -1, false, inval)
	case dirShared:
		if !f.Write {
			// Read fault on a Shared block: tags were stale (e.g. the
			// last sharer left); fix up and resume.
			np.SetTag(va, mem.TagReadOnly)
			np.Charge(costDataArriveExtra)
			np.Resume(np.Proc())
			return
		}
		st.startHomeInvalidate(np, va, d, synth)
	case dirIdle:
		// No remote copies: the tag was simply left conservative.
		if f.Write {
			np.SetTag(va, mem.TagReadWrite)
		} else {
			np.SetTag(va, mem.TagReadOnly)
		}
		np.Charge(costDataArriveExtra)
		np.Resume(np.Proc())
	}
}

// handleWbDirty applies a replaced page's modified block at the home.
// The data is applied only when the directory still considers src a
// copy holder — a writeback from a node that has since been invalidated
// and re-granted would otherwise clobber newer data.
func (st *Protocol) handleWbDirty(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	src := pkt.Src
	d, _, synth := st.dirAt(np, va)
	current := (d.state == dirBusy && d.waiting.has(src)) ||
		(d.state == dirExclusive && int(d.owner) == src)
	if current {
		np.ForceWriteBlock(va, pkt.Data)
	}
	np.MemRef(synth, true)
	np.Charge(costWbExtra)
	switch {
	case d.state == dirBusy && d.waiting.has(src):
		// The writeback crossed our invalidation; it carries the data
		// and stands in for the acknowledgement. The writer dropped its
		// copy, so it must not be re-added as a sharer.
		if d.pendOwner == int16(src) {
			d.pendOwner = -1
		}
		d.waiting.remove(src)
		if d.waiting.count() == 0 {
			st.completePend(np, va, d, synth)
		}
	case d.state == dirExclusive && int(d.owner) == src:
		d.owner = -1
		d.state = dirIdle
		np.SetTag(va, mem.TagReadWrite)
	case d.state == dirShared:
		d.sharers.remove(src)
		if d.sharers.count() == 0 {
			d.state = dirIdle
		}
	}
}

// handleWbClean drops a replaced page's clean residency at the home: one
// message carries a bit mask of the dropped blocks.
func (st *Protocol) handleWbClean(np *typhoon.NP, pkt *network.Packet) {
	pageVA := mem.VA(pkt.Args[0])
	masks := pkt.Args[1:]
	src := pkt.Src
	for w, mask := range masks {
		for mask != 0 {
			bit := bits.TrailingZeros64(mask)
			mask &^= 1 << bit
			bi := w*64 + bit
			va := pageVA + mem.VA(bi*st.bs)
			d, _, synth := st.dirAt(np, va)
			np.Charge(2)
			switch {
			case d.state == dirBusy && d.waiting.has(src):
				// Clean drop doubles as the acknowledgement; the home
				// copy is already current.
				if d.pendOwner == int16(src) {
					d.pendOwner = -1
				}
				d.waiting.remove(src)
				np.MemRef(synth, true)
				if d.waiting.count() == 0 {
					st.completePend(np, va, d, synth)
				}
			case d.state == dirShared:
				d.sharers.remove(src)
				np.MemRef(synth, true)
				if d.sharers.count() == 0 {
					d.state = dirIdle
				}
			case d.state == dirExclusive && int(d.owner) == src:
				// A migratory-granted copy dropped without ever being
				// written (orphaned reply): the home copy is current.
				d.owner = -1
				d.state = dirIdle
				np.SetTag(va, mem.TagReadWrite)
				np.MemRef(synth, true)
			}
		}
	}
}

// consumeOrphan drops one orphaned reply for va and tells the home this
// node holds no copy (a one-block clean drop; the orphaned requester
// never observed the data, so the home copy is current).
func (st *Protocol) consumeOrphan(np *typhoon.NP, va mem.VA, ns *nodeState) {
	ns.orphans[va]--
	if ns.orphans[va] == 0 {
		delete(ns.orphans, va)
	}
	home := st.m.VM.Home(va)
	bi := int(va.PageOffset()) / st.bs
	masks := make([]uint64, bi/64+1)
	masks[bi/64] = 1 << (bi % 64)
	np.Charge(4)
	np.SendRequest(home, HWbClean, append([]uint64{uint64(va.PageBase())}, masks...), nil)
}

// nack tells the requester to retry later.
func (st *Protocol) nack(np *typhoon.NP, r int, va mem.VA) {
	st.per[np.Node()].hot.nacks++
	np.Charge(2)
	np.SendReply(r, HNack, []uint64{uint64(va)}, nil)
}

func (st *Protocol) nodes() int { return st.m.Cfg.Nodes }
