package stache

import (
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// Non-binding prefetch: the Busy tag exists precisely to distinguish
// "blocks that require special handling, e.g. because they have been
// prefetched" (paper §5.4). Prefetch asks the local NP to fetch a block
// without suspending the compute thread; a later access that beats the
// data takes a block access fault that simply joins the outstanding
// request.

// hPrefetch is the CPU-to-own-NP prefetch request.
const hPrefetch = HNextFree + 16

// Prefetch hints that va's block will be needed soon. The page must
// already be mapped locally (a stache page exists); unmapped pages are
// ignored — prefetch never allocates. Non-blocking: costs the CPU only
// the message send.
func (st *Protocol) Prefetch(p *machine.Proc, va mem.VA) {
	st.sys.Send(p, network.VNetRequest, p.ID(), hPrefetch, []uint64{uint64(st.BlockBase(va))}, nil)
}

// handlePrefetch runs on the requesting node's own NP.
func (st *Protocol) handlePrefetch(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	pa, pte, ok := np.Translate(va)
	if !ok || pte.Mode != ModeRemote {
		np.Charge(2)
		return // unmapped or a home page: nothing to do
	}
	if np.Mem().Tag(pa) != mem.TagInvalid {
		np.Charge(2)
		return // already present (or in flight)
	}
	ns := st.per[np.Node()]
	if ns.pendingValid && ns.pendingVA == va {
		return // a demand fault already covers it
	}
	st.per[np.Node()].hot.prefetches++
	ns.prefetching[va] = true
	home := np.FrameOf(va).Home
	np.SetTag(va, mem.TagBusy)
	np.Charge(costRequestExtra)
	np.SendRequest(home, HGetS, []uint64{uint64(va)}, nil)
}

// prefetchFill completes a data reply that has no matching demand fault:
// it belongs to an outstanding prefetch (or to a prefetch whose page was
// replaced while the data was in flight, in which case the residency is
// dropped back at the home).
func (st *Protocol) prefetchFill(np *typhoon.NP, pkt *network.Packet, tag mem.Tag) bool {
	va := mem.VA(pkt.Args[0])
	ns := st.per[np.Node()]
	if !ns.prefetching[va] {
		return false
	}
	delete(ns.prefetching, va)
	delete(ns.wbOutstanding, va)
	_, pte, ok := np.Translate(va)
	if !ok || pte.Mode != ModeRemote {
		// The page was replaced while the prefetch was in flight; tell
		// the home we hold nothing (a one-block clean drop).
		home := st.m.VM.Home(va)
		bi := int(va.PageOffset()) / st.bs
		masks := make([]uint64, bi/64+1)
		masks[bi/64] = 1 << (bi % 64)
		ns.wbOutstanding[va] = true
		np.Charge(4)
		np.SendRequest(home, HWbClean, append([]uint64{uint64(va.PageBase())}, masks...), nil)
		return true
	}
	np.ForceWriteBlock(va, pkt.Data)
	np.SetTag(va, tag)
	np.Charge(costDataArriveExtra)
	st.per[np.Node()].hot.prefetchFills++
	return true
}
