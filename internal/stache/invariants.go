package stache

import (
	"bytes"
	"fmt"

	"github.com/tempest-sim/tempest/internal/mem"
)

// CheckInvariants audits the whole machine's coherence state at a
// quiescent point (typically after a run): for every shared block it
// verifies the single-writer/multi-reader discipline, the agreement
// between access tags and the home directory, and the byte-identity of
// all readable copies. It returns the first violation found, or nil.
//
// The checker is intentionally conservative about directory staleness:
// the directory may list a node that no longer holds a copy (a race with
// page replacement leaves only harmless extra invalidations), but a node
// holding a copy must be known to the directory.
func (st *Protocol) CheckInvariants() error {
	for _, seg := range st.m.VM.Segments() {
		for off := uint64(0); off < uint64(seg.Pages())*mem.PageSize; off += uint64(st.bs) {
			va := seg.Base + mem.VA(off)
			if err := st.checkBlock(va); err != nil {
				return fmt.Errorf("segment %q block %#x: %w", seg.Name, va, err)
			}
		}
	}
	return nil
}

func (st *Protocol) checkBlock(va mem.VA) error {
	home := st.m.VM.Home(va)
	homePA, _, ok := st.m.VM.Translate(home, va)
	if !ok {
		return fmt.Errorf("home node %d has no mapping", home)
	}
	homeMem := st.m.Mems[home]
	frame := homeMem.Frame(homePA)
	hd, ok := frame.User.(*homeDir)
	if !ok {
		return fmt.Errorf("home frame has no directory")
	}
	d := &hd.blocks[int(va.PageOffset())/st.bs]
	if d.state == dirBusy {
		return fmt.Errorf("directory still Busy (pend=%d) at quiescence", d.pend)
	}
	homeTag := homeMem.Tag(homePA)
	homeData := make([]byte, st.bs)
	homeMem.ReadBlock(homePA, homeData)

	writers := 0
	for n := 0; n < st.m.Cfg.Nodes; n++ {
		if n == home {
			continue
		}
		pa, _, ok := st.m.VM.Translate(n, va)
		if !ok {
			continue
		}
		tag := st.m.Mems[n].Tag(pa)
		switch tag {
		case mem.TagReadWrite:
			writers++
			if d.state != dirExclusive || int(d.owner) != n {
				return fmt.Errorf("node %d holds ReadWrite copy but directory is %v (owner %d)", n, d.state, d.owner)
			}
			if homeTag != mem.TagInvalid {
				return fmt.Errorf("remote owner %d exists but home tag is %v", n, homeTag)
			}
		case mem.TagReadOnly:
			if d.state != dirShared || !d.sharers.has(n) {
				return fmt.Errorf("node %d holds ReadOnly copy but directory is %v / not listed", n, d.state)
			}
			data := make([]byte, st.bs)
			st.m.Mems[n].ReadBlock(pa, data)
			if !bytes.Equal(data, homeData) {
				return fmt.Errorf("node %d ReadOnly copy differs from home data", n)
			}
		case mem.TagBusy:
			return fmt.Errorf("node %d block still Busy at quiescence", n)
		}
	}
	if writers > 1 {
		return fmt.Errorf("%d simultaneous writers", writers)
	}
	if d.state == dirShared && homeTag == mem.TagReadWrite {
		return fmt.Errorf("directory Shared but home tag ReadWrite")
	}
	return nil
}
